package repro

import (
	"context"
	"io"
	"os"
	"sort"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/serve"
	"repro/internal/telemetry"
	"repro/internal/tensor"
)

// cpuTime returns the process's cumulative user+system CPU time. The
// overhead gate compares CPU per request rather than wall time: on a
// shared runner, wall-clock throughput swings ±15% with co-tenant load
// (an A/A null experiment confirms it), while the CPU a request costs
// is far more a property of the code under test.
func cpuTime() time.Duration {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0
	}
	return time.Duration(ru.Utime.Nano() + ru.Stime.Nano())
}

// serveRig is one BenchmarkServe-shaped serving setup (memnet, pooled
// sessions, concurrent closed-loop clients) that can be driven in
// measured windows. With telemetry, the engine carries the full
// production stack: every metric family registered plus request
// tracing at 1/1000, the default -tracedir implies. A traced request
// itself costs roughly 15µs of CPU (~50 spans captured, the events
// copy, and their GC share), which is why the default rate is what it
// is: at 1/1000 that amortizes to noise, while 1/10 is measurably
// ~18% slower.
type serveRig struct {
	engine  *serve.Engine
	reg     *telemetry.Registry
	example map[string]*tensor.Tensor
}

func newServeRig(t testing.TB, withTelemetry bool) *serveRig {
	m, err := core.New("memnet")
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Setup(core.Config{Preset: core.PresetTiny, Seed: 1, Batch: 8}); err != nil {
		t.Fatal(err)
	}
	opts := serve.Options{Sessions: 2, MaxBatch: 8, MaxDelay: 500 * time.Microsecond}
	rig := &serveRig{}
	if withTelemetry {
		rig.reg = telemetry.NewRegistry()
		opts.Trace = telemetry.NewTraceCollector(1000, 64)
	}
	rig.engine, err = serve.New(m, opts)
	if err != nil {
		t.Fatal(err)
	}
	if withTelemetry {
		rig.engine.RegisterMetrics(rig.reg)
	}
	sig := m.Signature(core.ModeInference)
	rig.example = map[string]*tensor.Tensor{}
	for _, in := range sig.Inputs {
		rig.example[in.Name] = tensor.New(in.ExampleShape()...)
	}
	return rig
}

func (r *serveRig) close() {
	if r.reg != nil {
		r.engine.UnregisterMetrics(r.reg)
	}
	r.engine.Close()
}

// drive issues n requests from 8 closed-loop clients and returns the
// CPU consumed per request. When the rig carries a registry it is
// scraped once per window, keeping the exposition path inside the
// measurement at a realistic cadence (real scrapes arrive on the
// order of seconds).
func (r *serveRig) drive(t testing.TB, n int) float64 {
	const clients = 8
	ctx := context.Background()
	cpu0 := cpuTime()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		share := n / clients
		if c < n%clients {
			share++
		}
		wg.Add(1)
		go func(share int) {
			defer wg.Done()
			for i := 0; i < share; i++ {
				if _, err := r.engine.Infer(ctx, r.example); err != nil {
					t.Error(err)
					return
				}
			}
		}(share)
	}
	wg.Wait()
	if r.reg != nil {
		if err := r.reg.WritePrometheus(io.Discard); err != nil {
			t.Fatal(err)
		}
	}
	return float64(cpuTime()-cpu0) / float64(n)
}

// BenchmarkServeTelemetryOff and ...On are the two halves of the
// overhead contract, runnable standalone for profiling either side.
func BenchmarkServeTelemetryOff(b *testing.B) { benchServeTelemetry(b, false) }
func BenchmarkServeTelemetryOn(b *testing.B)  { benchServeTelemetry(b, true) }

func benchServeTelemetry(b *testing.B, withTelemetry bool) {
	rig := newServeRig(b, withTelemetry)
	defer rig.close()
	rig.drive(b, 64) // warm sessions, plans, arenas
	b.ResetTimer()
	b.ReportMetric(rig.drive(b, b.N), "cpu-ns/op")
}

// TestTelemetryOverheadGate is the <2% overhead contract, enforced in
// the CI bench job (TELEMETRY_OVERHEAD_GATE=1): serving with the
// registry populated and default-rate tracing must stay within 2% of
// the bare engine, measured as CPU per request.
//
// Methodology: both engines are built once and kept alive, then
// driven in short alternating windows. Fine-grained interleaving on
// live engines is what makes 2% resolvable at all — rebuilding an
// engine per trial adds heap and scheduler drift an order of
// magnitude larger than the effect under test. The window order flips
// each trial so any fixed first-mover advantage cancels, and the
// median of the per-trial ratios discards interference spikes from
// co-tenant load.
func TestTelemetryOverheadGate(t *testing.T) {
	if os.Getenv("TELEMETRY_OVERHEAD_GATE") == "" {
		t.Skip("set TELEMETRY_OVERHEAD_GATE=1 to run the telemetry overhead gate")
	}
	const (
		trials = 15
		window = 20000
	)
	off := newServeRig(t, false)
	defer off.close()
	on := newServeRig(t, true)
	defer on.close()
	off.drive(t, 2*window) // warm both rigs outside the measurement
	on.drive(t, 2*window)

	ratios := make([]float64, 0, trials)
	for i := 0; i < trials; i++ {
		var offCPU, onCPU float64
		if i%2 == 0 {
			offCPU = off.drive(t, window)
			onCPU = on.drive(t, window)
		} else {
			onCPU = on.drive(t, window)
			offCPU = off.drive(t, window)
		}
		ratios = append(ratios, onCPU/offCPU)
		t.Logf("trial %d: off %.0f cpu-ns/op, on %.0f cpu-ns/op, ratio %.4f", i, offCPU, onCPU, onCPU/offCPU)
	}
	sort.Float64s(ratios)
	overhead := ratios[len(ratios)/2] - 1
	t.Logf("median telemetry overhead: %.2f%%", 100*overhead)
	if overhead > 0.02 {
		t.Fatalf("telemetry overhead %.2f%% exceeds the 2%% contract (ratios %v)", 100*overhead, ratios)
	}
}
