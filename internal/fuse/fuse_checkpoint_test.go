package fuse_test

import (
	"bytes"
	"testing"

	"repro/internal/core"
	"repro/internal/fuse"
	"repro/internal/sched"
	"repro/internal/tensor"

	_ "repro/internal/models/all"
)

// TestFusedArrayCheckpointResume pins the fused checkpoint contract:
// save a fused array mid-run, restore it into a fresh array, and the
// continuation is bit-identical to never having stopped — per-step
// losses and final parameters. This only holds because the ApplyArray*
// optimizer accumulators (velocity, RMS statistic, Adam moments and
// the shared step counter) are "<var>/slot/<name>" graph variables the
// checkpoint captures, not hidden op state: a restored momentum or
// Adam trajectory must continue from the saved accumulators, and the
// resumed step counter keys both the per-(step, chunk) data seeds and
// Adam's bias correction. The two workloads cover both slot shapes —
// attention trains with Momentum (stacked velocity), autoenc with Adam
// (stacked moments plus the shape-{1} step counter).
func TestFusedArrayCheckpointResume(t *testing.T) {
	pool := sched.New(8)
	defer pool.Close()
	const pre, post = 3, 3
	for _, name := range []string{"attention", "autoenc"} {
		name := name
		t.Run(name, func(t *testing.T) {
			opts := fuse.Options{
				Width:    2,
				LRScales: []float32{1, 0.5},
				Preset:   core.PresetTiny,
				Seed:     11,
				Pool:     pool,
			}
			newArray := func() *fuse.Array {
				arr, err := fuse.New(name, opts)
				if err != nil {
					t.Fatal(err)
				}
				t.Cleanup(arr.Close)
				return arr
			}

			// Reference: pre+post uninterrupted steps.
			ref := newArray()
			if err := ref.Train(pre + post); err != nil {
				t.Fatal(err)
			}

			// Interrupted run: pre steps, checkpoint, discard.
			src := newArray()
			if err := src.Train(pre); err != nil {
				t.Fatal(err)
			}
			var ckpt bytes.Buffer
			if err := src.SaveCheckpoint(&ckpt); err != nil {
				t.Fatal(err)
			}
			at := src.Steps()
			src.Close()

			// Fresh array, restored mid-trajectory, trained to the end.
			resumed := newArray()
			if err := resumed.RestoreCheckpoint(bytes.NewReader(ckpt.Bytes()), at); err != nil {
				t.Fatal(err)
			}
			if got := resumed.Steps(); got != pre {
				t.Fatalf("resumed step counter %d, want %d", got, pre)
			}
			if err := resumed.Train(post); err != nil {
				t.Fatal(err)
			}

			for k := 0; k < opts.Width; k++ {
				refTail := ref.Losses(k)[pre:]
				resTail := resumed.Losses(k)
				if len(resTail) != post {
					t.Fatalf("trainee %d: resumed %d losses, want %d", k, len(resTail), post)
				}
				for i := range refTail {
					if refTail[i] != resTail[i] {
						t.Errorf("trainee %d step %d: resumed loss %v != uninterrupted %v",
							k, pre+i, resTail[i], refTail[i])
					}
				}
				refP, resP := ref.TraineeParams(k), resumed.TraineeParams(k)
				for i := range refP {
					if d := tensor.MaxAbsDiff(refP[i], resP[i]); d != 0 {
						t.Errorf("trainee %d param %s: resumed differs (max |Δ| %g)",
							k, ref.ParamNames()[i], d)
					}
				}
			}
		})
	}
}
