// Package fuse is the suite's horizontally fused training subsystem:
// K training instances of one workload — hyperparameter variants
// differing only in learning rate, or plain replicas — fused into a
// single array-batched graph, after HFTA (Wang et al., MLSys 2021).
//
// # Architecture
//
// Where data-parallel training (internal/dist) runs K separate graphs
// that time-slice the shared worker pool, fusion stacks the K
// instances' variables, activations and gradients along a new leading
// fusion axis and runs ONE graph: shared inputs and everything
// computed purely from them execute once for all trainees, stacked
// untransposed matrix products collapse into single BatchMatMul nodes,
// and the optimizer apply-ops take a per-trainee learning-rate vector.
// One session, one scheduler pass, one impure lane — the fused step
// does strictly less work than K standalone steps and feeds the pool
// larger kernels.
//
// # Determinism contract
//
// Fusion admits K instances with the same workload, seed and chunk
// grid, diverging only through per-trainee learning-rate scales. Under
// that admission rule, trainee kk's per-step losses and final variable
// bits are identical to a standalone run of that instance (a
// single-replica dist trainer at learning-rate scale kk) — not merely
// close: every fused node either executes the standalone kernel
// per-trainee on contiguous slices (ops.ArrayWrap, ops.BatchMatMul's
// per-slice loop, the ApplyArray* update rules) or is genuinely shared
// (one dropout mask, one RNG draw — exactly what K seed-identical
// standalone runs each compute). The grad phase reuses dist's chunk
// protocol verbatim: per chunk, reseed to dataset.ChunkSeed, sample,
// fetch loss + raw gradients; combine chunks in ascending order ×
// 1/Chunks; apply through the fed-gradient path. The determinism
// harness (internal/models/determinism_test.go) pins trainee-vs-
// standalone bit-identity across K ∈ {1,2,4} × intra-op {1,4}.
//
// # Scheduling
//
// The fused session is one tenant of the shared worker pool, leased as
// "fuse/<workload>" under the pool's adaptive occupancy-driven grants
// (internal/sched), so a fused array co-resident with a serve engine
// or a dist trainer converges to a share proportional to its demand —
// and degrades to serial execution, never blocking, when the pool is
// saturated.
package fuse

import (
	"errors"
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/graph"
	"repro/internal/models/nn"
	"repro/internal/runtime"
	"repro/internal/sched"
	"repro/internal/telemetry"
	"repro/internal/tensor"
)

// phaseRingSize bounds the per-step phase telemetry ring, matching
// internal/dist.
const phaseRingSize = 256

// ErrClosed is returned by Step after Close.
var ErrClosed = errors.New("fuse: array closed")

// Trainable is what a workload must implement to fuse: the standard
// model interface, a seed-keyed batch sampler, and the training plan
// nn.BuildTraining records — the same surface internal/dist requires.
type Trainable interface {
	core.Model
	core.TrainSampler
	TrainPlan() *nn.TrainPlan
}

// stepListener mirrors dist.StepListener: workloads that advance
// out-of-graph state per step (deepq's target-network sync) cannot
// fuse — their per-instance state has no slice in the fused graph.
type stepListener interface {
	OnTrainStep(step int)
}

// Options configures an Array.
type Options struct {
	// Width is the fusion width K: the number of trainees stacked into
	// the fused graph (default 1).
	Width int
	// LRScales are the per-trainee learning-rate scale factors, length
	// Width; trainee kk trains at scale LRScales[kk] × the workload's
	// base rate. Nil means every trainee at scale 1 (pure replication).
	LRScales []float32
	// Chunks is the canonical micro-batch grid per global step
	// (default 4) — the same grid a standalone dist run uses, so the
	// gradient combine order matches bit for bit.
	Chunks int
	// GlobalBatch is the examples per global step per trainee; Chunks
	// must divide it. 0 derives it as Chunks × the workload's preset
	// batch.
	GlobalBatch int
	// Preset selects the workload scale (default ref).
	Preset core.Preset
	// Seed keys model initialization and the per-(step, chunk) data
	// and RNG streams, shared by every trainee (default 1).
	Seed int64
	// IntraOpWorkers is the fused session's real intra-op width
	// (default 1); InterOpWorkers its inter-op scheduler width.
	// Neither affects result bits.
	IntraOpWorkers int
	InterOpWorkers int
	// Pool is the shared worker pool (default sched.Default()).
	Pool *sched.Pool
}

// Timing accumulates the array's phase walls.
type Timing struct {
	Steps int
	// Grad is the summed per-chunk forward+backward wall, Reduce the
	// gradient combine wall, Apply the fused update wall.
	Grad, Reduce, Apply time.Duration
	// Wall is the total step wall.
	Wall time.Duration
}

// Array drives fused training of K instances of one workload. It is
// confined to a single goroutine: Step and Close must not be called
// concurrently.
type Array struct {
	name string
	opts Options
	part dataset.Partition

	template Trainable
	tmplSess *runtime.Session // sampling handle over the template graph
	plan     *fusedPlan
	sess     *runtime.Session

	fetches    []*graph.Node // fused loss + stacked grads
	feeds      runtime.Feeds
	applyFeeds runtime.Feeds
	comb       []*tensor.Tensor // combined stacked gradients
	paramShape [][]int          // per-trainee parameter shapes
	paramNames []string

	chunkAcc []float64 // per-trainee loss accumulator, reused per step
	step     int
	losses   [][]float64 // [trainee][step]
	timing   Timing
	phases   *telemetry.PhaseRing
	closed   bool
}

// New builds a fused array: one instance of the workload, Setup at the
// chunk micro-batch size, horizontally fused Width times.
func New(name string, opts Options) (*Array, error) {
	if opts.Width < 1 {
		opts.Width = 1
	}
	if opts.Chunks < 1 {
		opts.Chunks = 4
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	if opts.Pool == nil {
		opts.Pool = sched.Default()
	}
	scales := opts.LRScales
	if scales == nil {
		scales = make([]float32, opts.Width)
		for i := range scales {
			scales[i] = 1
		}
	}
	if len(scales) != opts.Width {
		return nil, fmt.Errorf("fuse: %d learning-rate scales for width %d", len(scales), opts.Width)
	}
	chunkBatch := 0
	if opts.GlobalBatch > 0 {
		if opts.GlobalBatch%opts.Chunks != 0 {
			return nil, fmt.Errorf("fuse: chunks %d does not divide global batch %d", opts.Chunks, opts.GlobalBatch)
		}
		chunkBatch = opts.GlobalBatch / opts.Chunks
	}
	m, err := core.New(name)
	if err != nil {
		return nil, err
	}
	tr, ok := m.(Trainable)
	if !ok {
		return nil, fmt.Errorf("fuse: workload %s is not trainable (wants core.TrainSampler + TrainPlan)", name)
	}
	if _, perStep := m.(stepListener); perStep {
		return nil, fmt.Errorf("fuse: workload %s advances out-of-graph state per step and cannot fuse", name)
	}
	if err := m.Setup(core.Config{Preset: opts.Preset, Seed: opts.Seed, Batch: chunkBatch}); err != nil {
		return nil, fmt.Errorf("fuse: setup %s: %w", name, err)
	}
	plan := tr.TrainPlan()
	if plan == nil {
		return nil, fmt.Errorf("fuse: workload %s has no TrainPlan after Setup", name)
	}
	fp, err := transform(tr, opts.Width, scales)
	if err != nil {
		return nil, err
	}
	if chunkBatch == 0 {
		chunkBatch = m.Signature(core.ModeTraining).BatchCapacity()
	}
	part, err := dataset.NewPartition(chunkBatch*opts.Chunks, opts.Chunks, 1)
	if err != nil {
		return nil, err
	}

	a := &Array{
		name:       name,
		opts:       opts,
		part:       part,
		template:   tr,
		plan:       fp,
		fetches:    append([]*graph.Node{fp.loss}, fp.grads...),
		feeds:      runtime.Feeds{},
		applyFeeds: make(runtime.Feeds, len(fp.gradIn)),
		chunkAcc:   make([]float64, opts.Width),
		losses:     make([][]float64, opts.Width),
		phases:     telemetry.NewPhaseRing(phaseRingSize),
	}
	for i, p := range plan.Params() {
		a.paramShape = append(a.paramShape, p.Shape())
		a.paramNames = append(a.paramNames, p.Name())
		a.comb = append(a.comb, tensor.New(fp.params[i].Shape()...))
		a.applyFeeds[fp.gradIn[i]] = a.comb[i]
	}
	lease := "fuse/" + name
	sessOpts := []runtime.Option{
		runtime.WithSeed(opts.Seed),
		runtime.WithWorkerPool(opts.Pool),
		runtime.WithLeaseName(lease),
	}
	if opts.IntraOpWorkers > 1 {
		sessOpts = append(sessOpts, runtime.WithIntraOpWorkers(opts.IntraOpWorkers))
	}
	if opts.InterOpWorkers > 1 {
		sessOpts = append(sessOpts, runtime.WithInterOpWorkers(opts.InterOpWorkers))
	}
	a.sess = runtime.NewSession(fp.g, sessOpts...)
	// The template session exists only as the TrainSample handle (the
	// sampler derives batches from the seed alone); serial, no helpers.
	a.tmplSess = runtime.NewSession(m.Graph(),
		runtime.WithSeed(opts.Seed),
		runtime.WithWorkerPool(opts.Pool),
		runtime.WithLeaseName(lease),
	)
	return a, nil
}

// Name returns the fused workload's name.
func (a *Array) Name() string { return a.name }

// Width returns the fusion width K.
func (a *Array) Width() int { return a.opts.Width }

// Steps returns the number of applied global steps.
func (a *Array) Steps() int { return a.step }

// Partition returns the chunk grid.
func (a *Array) Partition() dataset.Partition { return a.part }

// Timing returns the accumulated phase walls.
func (a *Array) Timing() Timing { return a.timing }

// ResetTiming zeroes the accumulated phase walls (e.g. after warmup).
func (a *Array) ResetTiming() { a.timing = Timing{} }

// Losses returns trainee k's per-step loss trajectory.
func (a *Array) Losses(k int) []float64 { return a.losses[k] }

// ParamNames returns the trainable parameter names, template order.
func (a *Array) ParamNames() []string { return a.paramNames }

// TraineeParams returns trainee k's parameter tensors as views into
// the fused stacks, template order.
func (a *Array) TraineeParams(k int) []*tensor.Tensor {
	out := make([]*tensor.Tensor, len(a.plan.params))
	for i, p := range a.plan.params {
		s := tensor.SizeOf(a.paramShape[i])
		out[i] = tensor.FromSlice(p.Value().Data()[k*s:(k+1)*s], a.paramShape[i]...)
	}
	return out
}

// SaveCheckpoint serializes the fused graph's variables — the stacked
// parameters AND the optimizer slot accumulators (<var>/slot/<name>
// velocity / RMS / moment / step variables the ApplyArray* update
// rules hold their state in) — so a fused run can be suspended and
// resumed mid-trajectory. Pair with RestoreCheckpoint(r, Steps()).
func (a *Array) SaveCheckpoint(w io.Writer) error {
	if a.closed {
		return ErrClosed
	}
	return runtime.SaveCheckpoint(w, a.plan.g)
}

// RestoreCheckpoint restores a SaveCheckpoint image into the fused
// graph and fast-forwards the step counter to step (the Steps() value
// at save time), so the per-(step, chunk) data seeds — and with them
// every subsequent minibatch — continue exactly where the saved run
// left off. Because the optimizer slots are graph variables, the
// restored array's next update applies the exact momentum/RMS/moment
// state of the original run: the continuation is bit-identical to
// never having stopped.
func (a *Array) RestoreCheckpoint(r io.Reader, step int) error {
	if a.closed {
		return ErrClosed
	}
	if step < 0 {
		return fmt.Errorf("fuse: negative resume step %d", step)
	}
	if err := runtime.LoadCheckpoint(r, a.plan.g, false); err != nil {
		return err
	}
	a.step = step
	return nil
}

// Close closes the fused and template sessions, releasing their leases
// on the shared pool. Idempotent; Step afterwards fails with ErrClosed.
func (a *Array) Close() {
	if a.closed {
		return
	}
	a.closed = true
	if a.sess != nil {
		a.sess.Close()
	}
	if a.tmplSess != nil {
		a.tmplSess.Close()
	}
}

// Step executes one fused global step — the dist chunk protocol on the
// fused graph — and returns the per-trainee global losses. Chunk c's
// fetch computes every trainee's loss and raw gradients in one run;
// gradients combine in ascending chunk order × 1/Chunks (per trainee
// slice, the exact float32 sequence a standalone run combines); one
// fetch of the fused apply path then steps every trainee at its own
// learning rate.
func (a *Array) Step() ([]float64, error) {
	if a.closed {
		return nil, ErrClosed
	}
	t0 := time.Now()
	a.sess.SetTraining(true)
	for i := range a.chunkAcc {
		a.chunkAcc[i] = 0
	}
	var sampleStep, gradStep, reduceStep time.Duration
	for c := 0; c < a.part.Chunks; c++ {
		tg := time.Now()
		seed := dataset.ChunkSeed(a.opts.Seed, a.step, c)
		a.sess.Reseed(seed)
		sample, err := a.template.TrainSample(a.tmplSess, seed)
		sampleStep += time.Since(tg)
		if err != nil {
			return nil, fmt.Errorf("fuse: %s chunk %d sample: %w", a.name, c, err)
		}
		clear(a.feeds)
		for name, v := range sample {
			// Inputs outside the training closure have no fused image
			// and are not read by the fetches.
			if node, ok := a.plan.inputs[name]; ok {
				a.feeds[node] = v
			}
		}
		out, err := a.sess.Run(a.fetches, a.feeds)
		if err != nil {
			return nil, fmt.Errorf("fuse: %s chunk %d: %w", a.name, c, err)
		}
		gradStep += time.Since(tg)
		a.timing.Grad += time.Since(tg)

		tr := time.Now()
		lossV := out[0].Data()
		for k := range a.chunkAcc {
			a.chunkAcc[k] += float64(lossV[k])
		}
		for p := range a.comb {
			dst, g := a.comb[p].Data(), out[1+p].Data()
			if c == 0 {
				copy(dst, g)
				continue
			}
			for i := range dst {
				dst[i] += g[i]
			}
		}
		reduceStep += time.Since(tr)
		a.timing.Reduce += time.Since(tr)
	}
	tr := time.Now()
	inv := 1 / float32(a.part.Chunks)
	for p := range a.comb {
		dst := a.comb[p].Data()
		for i := range dst {
			dst[i] *= inv
		}
	}
	reduceStep += time.Since(tr)
	a.timing.Reduce += time.Since(tr)

	ta := time.Now()
	if _, err := a.sess.Run([]*graph.Node{a.plan.apply}, a.applyFeeds); err != nil {
		return nil, fmt.Errorf("fuse: %s apply: %w", a.name, err)
	}
	applyStep := time.Since(ta)
	a.timing.Apply += applyStep

	means := make([]float64, len(a.chunkAcc))
	for k, acc := range a.chunkAcc {
		means[k] = acc / float64(a.part.Chunks)
		a.losses[k] = append(a.losses[k], means[k])
	}
	// Phase telemetry: one entry per fused step. Grad includes Sample
	// (the chunk loop interleaves them); the fused graph computes loss
	// and gradients in one Run, so forward/backward stay one phase.
	a.phases.Record(telemetry.PhaseSample{
		Step:   a.step,
		Sample: sampleStep,
		Grad:   gradStep,
		Reduce: reduceStep,
		Apply:  applyStep,
		Wall:   time.Since(t0),
	})

	a.step++
	a.timing.Steps++
	a.timing.Wall += time.Since(t0)
	return means, nil
}

// PhaseLog returns the retained per-step phase breakdowns, oldest
// first — the fused half of `fathom train -trace`.
func (a *Array) PhaseLog() []telemetry.PhaseSample { return a.phases.Samples() }

// RegisterMetrics exposes the array's trainee-step throughput on reg,
// labeled trainer="fuse/<name>". One fused step advances Width
// trainees, so the counter moves Width per Step — the HFTA-style
// throughput next to dist's per-model rate.
func (a *Array) RegisterMetrics(reg *telemetry.Registry) {
	labels := telemetry.Labels{"trainer": "fuse/" + a.name}
	phases, width := a.phases, a.opts.Width
	reg.CounterFunc("fathom_train_steps_total", "Global training steps executed.", labels,
		func() uint64 { return uint64(phases.Total()) })
	reg.CounterFunc("fathom_trainee_steps_total", "Trainee-steps executed (steps x fusion width).", labels,
		func() uint64 { return uint64(phases.Total() * width) })
	reg.GaugeFunc("fathom_train_step_seconds", "Wall time of the most recent fused step.", labels,
		func() float64 {
			s := phases.Samples()
			if len(s) == 0 {
				return 0
			}
			return s[len(s)-1].Wall.Seconds()
		})
}

// UnregisterMetrics removes the series RegisterMetrics added.
func (a *Array) UnregisterMetrics(reg *telemetry.Registry) {
	labels := telemetry.Labels{"trainer": "fuse/" + a.name}
	reg.Unregister("fathom_train_steps_total", labels)
	reg.Unregister("fathom_trainee_steps_total", labels)
	reg.Unregister("fathom_train_step_seconds", labels)
}

// Train runs n fused global steps.
func (a *Array) Train(n int) error {
	for i := 0; i < n; i++ {
		if _, err := a.Step(); err != nil {
			return err
		}
	}
	return nil
}
