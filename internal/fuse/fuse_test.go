// Package fuse's tests pin the array driver's contract: option
// validation, the equal-scale self-consistency of fused trainees, and
// — run with -race — the mixed-tenancy contract: a fused training
// array and a serving engine sharing one bounded worker pool must both
// make progress and wind down without leaking goroutines. The
// trainee-vs-standalone bit-identity contract lives in the suite-wide
// harness (internal/models/determinism_test.go).
package fuse_test

import (
	"context"
	goruntime "runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/fuse"
	"repro/internal/sched"
	"repro/internal/serve"
	"repro/internal/tensor"

	_ "repro/internal/models/all"
)

func TestFusedOptionValidation(t *testing.T) {
	if _, err := fuse.New("autoenc", fuse.Options{Width: 2, LRScales: []float32{1}}); err == nil {
		t.Fatal("scale/width mismatch must error")
	}
	if _, err := fuse.New("autoenc", fuse.Options{Chunks: 3, GlobalBatch: 8}); err == nil {
		t.Fatal("chunks not dividing global batch must error")
	}
	if _, err := fuse.New("nosuchmodel", fuse.Options{}); err == nil {
		t.Fatal("unknown workload must error")
	}
	// deepq advances out-of-graph state per step (target-network sync);
	// its per-instance state has no slice in a fused graph.
	if _, err := fuse.New("deepq", fuse.Options{Width: 2}); err == nil {
		t.Fatal("step-listener workload must be rejected")
	}
}

func TestFusedClosedArrayRefusesSteps(t *testing.T) {
	pool := sched.New(2)
	defer pool.Close()
	arr, err := fuse.New("autoenc", fuse.Options{Width: 2, Preset: core.PresetTiny, Pool: pool})
	if err != nil {
		t.Fatal(err)
	}
	arr.Close()
	arr.Close() // idempotent
	if _, err := arr.Step(); err == nil {
		t.Fatal("Step after Close must fail")
	}
}

// TestFusedEqualScalesStayInLockstep: trainees that differ in nothing
// (same seed, same data, same learning rate) must remain bitwise
// identical through fused training — the in-package sanity slice of
// the determinism contract.
func TestFusedEqualScalesStayInLockstep(t *testing.T) {
	pool := sched.New(2)
	defer pool.Close()
	arr, err := fuse.New("memnet", fuse.Options{Width: 3, Preset: core.PresetTiny, Seed: 7, Pool: pool})
	if err != nil {
		t.Fatal(err)
	}
	defer arr.Close()
	for step := 0; step < 2; step++ {
		losses, err := arr.Step()
		if err != nil {
			t.Fatal(err)
		}
		for k := 1; k < len(losses); k++ {
			if losses[k] != losses[0] {
				t.Fatalf("step %d: trainee %d loss %v != trainee 0 loss %v", step, k, losses[k], losses[0])
			}
		}
	}
	base := arr.TraineeParams(0)
	for k := 1; k < arr.Width(); k++ {
		pk := arr.TraineeParams(k)
		for i, name := range arr.ParamNames() {
			a, b := base[i].Data(), pk[i].Data()
			for j := range a {
				if a[j] != b[j] {
					t.Fatalf("trainee %d parameter %q differs at element %d", k, name, j)
				}
			}
		}
	}
}

// exampleFrom squeezes one sampled batch of a batch-capacity-1 model
// into a single engine request (dropping each input's length-1 batch
// axis is a pure reshape).
func exampleFrom(t *testing.T, m core.Model) map[string]*tensor.Tensor {
	t.Helper()
	sig := m.Signature(core.ModeInference)
	if sig.BatchCapacity() != 1 {
		t.Fatalf("want batch capacity 1, got %d", sig.BatchCapacity())
	}
	batch := m.(core.Sampler).Sample()
	ex := map[string]*tensor.Tensor{}
	for _, in := range sig.Inputs {
		v := batch[in.Name]
		if in.BatchDim == core.BatchNone {
			ex[in.Name] = v
			continue
		}
		shp := append([]int(nil), v.Shape()...)
		shp = append(shp[:in.BatchDim], shp[in.BatchDim+1:]...)
		ex[in.Name] = tensor.FromSlice(v.Data(), shp...)
	}
	return ex
}

// TestMixedTenantsShareOnePool is the mixed-tenancy contract (run with
// -race): a serving engine and a fused training array draw helpers
// from the same bounded pool under adaptive lease grants. Both sides
// must make progress — neither the engine's sessions nor the fused
// session may starve the other into deadlock — the engine's /stats
// must report both tenants, and after shutdown the only goroutines
// left are the pool's own bounded workers.
func TestMixedTenantsShareOnePool(t *testing.T) {
	pool := sched.New(4)
	defer pool.Close()
	base := goruntime.NumGoroutine()

	m, err := core.New("memnet")
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Setup(core.Config{Preset: core.PresetTiny, Seed: 3, Batch: 1}); err != nil {
		t.Fatal(err)
	}
	e, err := serve.New(m, serve.Options{
		Sessions: 2, MaxBatch: 1, MaxDelay: 100 * time.Microsecond,
		InterOpWorkers: 2, IntraOpWorkers: 2, WorkerPool: pool,
	})
	if err != nil {
		t.Fatal(err)
	}
	arr, err := fuse.New("memnet", fuse.Options{
		Width: 2, LRScales: []float32{1, 0.5}, Preset: core.PresetTiny,
		Seed: 3, IntraOpWorkers: 2, InterOpWorkers: 2, Pool: pool,
	})
	if err != nil {
		e.Close()
		t.Fatal(err)
	}
	ex := exampleFrom(t, m)

	const (
		nRequests = 24
		nSteps    = 4
	)
	var served, trained int
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < nRequests; i++ {
			if _, err := e.Infer(context.Background(), ex); err != nil {
				t.Errorf("inference under mixed tenancy: %v", err)
				return
			}
			served++
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < nSteps; i++ {
			if _, err := arr.Step(); err != nil {
				t.Errorf("fused step under mixed tenancy: %v", err)
				return
			}
			trained++
		}
	}()
	wg.Wait()
	if served == 0 || trained == 0 {
		t.Fatalf("goodput: served %d trained %d; both tenants must progress", served, trained)
	}

	// Both tenants visible in the per-tenant lease report while alive.
	tenants := map[string]bool{}
	for _, ts := range e.Stats().Tenants {
		tenants[ts.Name] = true
	}
	if !tenants["engine/memnet"] || !tenants["fuse/memnet"] {
		t.Fatalf("stats tenants = %v, want engine/memnet and fuse/memnet", tenants)
	}

	arr.Close()
	e.Close()
	// Everything tenant-owned is gone; at most the pool's persistent
	// workers (plus test-runtime slack) remain.
	deadline := time.Now().Add(3 * time.Second)
	for goruntime.NumGoroutine() > base+pool.Size()+1 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := goruntime.NumGoroutine(); got > base+pool.Size()+1 {
		t.Fatalf("goroutines %d after mixed-tenant shutdown (baseline %d, pool %d): leak",
			got, base, pool.Size())
	}
}
