package fuse

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/models/nn"
	"repro/internal/ops"
	"repro/internal/tensor"
)

// fusedPlan is the output of the horizontal-fusion transform: one
// graph training K instances of the template workload at once, plus
// the fetch/feed surface the Array driver needs.
type fusedPlan struct {
	g *graph.Graph
	// loss is the stacked per-trainee loss vector, shape (K).
	loss *graph.Node
	// grads are the stacked raw gradients, shape (K, *param), aligned
	// with params.
	grads []*graph.Node
	// params are the stacked trainable variables, template order.
	params []*graph.Node
	// inputs maps training-signature input names to the fused (shared)
	// placeholders. Inputs outside the training closure are absent.
	inputs map[string]*graph.Node
	// apply/gradIn is the fed-gradient update path: feed the combined
	// stacked gradients into gradIn and fetch apply for one optimizer
	// step per trainee, each at its own learning rate.
	apply  *graph.Node
	gradIn []*graph.Node
}

// mapped is a template node's image in the fused graph: the fused node
// and whether it carries the leading fusion axis.
type mapped struct {
	node    *graph.Node
	stacked bool
}

// transform horizontally fuses K instances of the template workload:
// it walks the training closure (loss + raw gradients) in topological
// order and maps every node into a fresh graph. Trainable parameters
// stack along a new leading axis of size K (each trainee's slice
// initialized to the template's seed-determined values — fusion admits
// only seed-identical instances, so all K standalone initializations
// are that same tensor). Placeholders, constants, non-trainable state
// and every node computed purely from them stay shared: computed once,
// serving all K trainees — the fusion win. Any op touching a stacked
// operand is lifted per-slice (ops.ArrayWrap), routed onto the batched
// GEMM (ops.BatchMatMul) when it is an untransposed product of two
// stacked operands, or replaced by the fused dropout pair, so every
// trainee's arithmetic and the session's RNG draw order are exactly
// those of a standalone run.
func transform(m Trainable, k int, scales []float32) (*fusedPlan, error) {
	plan := m.TrainPlan()
	params := plan.Params()
	paramIdx := make(map[*graph.Node]int, len(params))
	for i, p := range params {
		paramIdx[p] = i
	}

	fg := graph.New()
	mp := map[*graph.Node]mapped{}
	dropMap := map[graph.Op]*graph.Node{} // template dropout op → fused ArrayDropout node
	fusedParams := make([]*graph.Node, len(params))

	// ensureStacked lifts a shared node onto the fusion axis for the
	// few sites that need every operand stacked.
	ensureStacked := func(mv mapped) *graph.Node {
		if mv.stacked {
			return mv.node
		}
		return ops.ArrayBroadcast(k, mv.node)
	}

	fetches := append([]*graph.Node{plan.Loss()}, plan.Grads()...)
	for _, n := range graph.Topo(fetches) {
		switch n.Kind() {
		case graph.KindPlaceholder:
			mp[n] = mapped{fg.Placeholder(n.Name(), n.Shape()...), false}
			continue
		case graph.KindConst:
			mp[n] = mapped{fg.Const(n.Name(), n.Value()), false}
			continue
		case graph.KindVariable:
			if pi, isParam := paramIdx[n]; isParam {
				init := tensor.New(append([]int{k}, n.Shape()...)...)
				src := n.Value().Data()
				for kk := 0; kk < k; kk++ {
					copy(init.Data()[kk*len(src):(kk+1)*len(src)], src)
				}
				v := fg.Variable(n.Name(), init)
				fusedParams[pi] = v
				mp[n] = mapped{v, true}
				continue
			}
			// Non-trainable state (nothing in the training closure
			// mutates it) is shared, with its own storage so the fused
			// run never aliases the template's.
			cp := tensor.New(n.Shape()...)
			copy(cp.Data(), n.Value().Data())
			mp[n] = mapped{fg.Variable(n.Name(), cp), false}
			continue
		}

		ins := make([]mapped, len(n.Inputs()))
		anyStacked := false
		for i, in := range n.Inputs() {
			mv, ok := mp[in]
			if !ok {
				return nil, fmt.Errorf("fuse: %s: input %s of %s escaped the topological walk", m.Name(), in, n)
			}
			ins[i] = mv
			anyStacked = anyStacked || mv.stacked
		}
		op := n.Op()

		fn, stacked, err := func() (*graph.Node, bool, error) {
			// Fused dropout pair: one shared mask per dropout site
			// keeps the RNG stream in draw-count lockstep with a
			// standalone run, and the gradient replays that mask.
			if src, ok := ops.DropoutGradSrc(op); ok {
				fd, seen := dropMap[src]
				if !seen {
					return nil, false, fmt.Errorf("fuse: %s: dropout gradient precedes its forward op", m.Name())
				}
				g, err := ops.ArrayDropoutGrad(fd, ensureStacked(ins[0]))
				return g, true, err
			}
			if rate, ok := ops.DropoutInfo(op); ok {
				d := ops.ArrayDropout(k, ensureStacked(ins[0]), rate)
				dropMap[op] = d
				return d, true, nil
			}
			if _, impure := op.(graph.Impure); impure {
				// Source-only RNG ops (RandomStandardNormal,
				// RandomUniform) are stateless draws: sampled once and
				// shared, exactly one standalone run's worth of draws.
				if len(ins) == 0 {
					nd, err := fg.Apply(op)
					return nd, false, err
				}
				return nil, false, fmt.Errorf("fuse: %s: cannot fuse impure op %s", m.Name(), op.Name())
			}
			if !anyStacked {
				// Computed purely from shared operands: computed once,
				// shared by all trainees.
				shared := make([]*graph.Node, len(ins))
				for i, mv := range ins {
					shared[i] = mv.node
				}
				nd, err := fg.Apply(op, shared...)
				return nd, false, err
			}
			// The batched-GEMM fast path: an untransposed MatMul of
			// two stacked operands is exactly one BatchMatMul over the
			// fusion axis, whose kernel is itself a per-slice MatMul —
			// one fused node serving all K trainees, bit for bit.
			if tA, tB, isMM := ops.MatMulKind(op); isMM && !tA && !tB && ins[0].stacked && ins[1].stacked {
				return ops.BatchMatMul(ins[0].node, ins[1].node), true, nil
			}
			// Everything else lifts per-slice: stacked operands are
			// sliced per trainee, shared operands passed whole.
			flags := make([]bool, len(ins))
			nodes := make([]*graph.Node, len(ins))
			for i, mv := range ins {
				flags[i], nodes[i] = mv.stacked, mv.node
			}
			nd, err := ops.ArrayWrap(k, op, flags, nodes...)
			return nd, true, err
		}()
		if err != nil {
			return nil, err
		}
		mp[n] = mapped{fn, stacked}
	}

	out := &fusedPlan{
		g:      fg,
		loss:   ensureStacked(mp[plan.Loss()]),
		params: fusedParams,
		inputs: map[string]*graph.Node{},
	}
	for _, g := range plan.Grads() {
		out.grads = append(out.grads, ensureStacked(mp[g]))
	}
	for _, in := range m.Signature(core.ModeTraining).Inputs {
		if mv, ok := mp[in.Node]; ok {
			out.inputs[in.Name] = mv.node
		}
	}

	// Fed-gradient apply path: the template recipe rebuilt over the
	// parameter stacks, with trainee kk stepping at lr × scales[kk] —
	// each rate the single float32 product a standalone run at that
	// scale uses, so the update rules match bit for bit.
	opt, lr, clip := plan.Recipe()
	lrs := make([]float32, k)
	for i, s := range scales {
		lrs[i] = lr * s
	}
	updates := make([]*graph.Node, len(fusedParams))
	out.gradIn = make([]*graph.Node, len(fusedParams))
	for i, p := range fusedParams {
		in := fg.Placeholder("fuse/grad/"+params[i].Name(), p.Shape()...)
		out.gradIn[i] = in
		fed := in
		if clip > 0 {
			fed = ops.Maximum(ops.Minimum(fed, ops.ScalarConst(fg, clip)), ops.ScalarConst(fg, -clip))
		}
		switch opt {
		case nn.SGD:
			updates[i] = ops.ApplyArraySGD(p, fed, lrs)
		case nn.Momentum:
			updates[i] = ops.ApplyArrayMomentum(p, fed, lrs, 0.9)
		case nn.RMSProp:
			updates[i] = ops.ApplyArrayRMSProp(p, fed, lrs, 0.95, 0.01)
		case nn.Adam:
			updates[i] = ops.ApplyArrayAdam(p, fed, lrs, 0.9, 0.999, 1e-8)
		case nn.Adagrad:
			updates[i] = ops.ApplyArrayAdagrad(p, fed, lrs, 1e-8)
		default:
			return nil, fmt.Errorf("fuse: %s: unknown optimizer %d", m.Name(), opt)
		}
	}
	out.apply = ops.Group(fg, updates...)
	return out, nil
}
