package experiments

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/models/nn"
	"repro/internal/ops"
	"repro/internal/runtime"
	"repro/internal/tensor"
)

// Ablation quantifies the design choices DESIGN.md calls out:
//
//  1. the compiler-esque graph optimizer (identity elision, constant
//     folding, CSE) on a redundancy-heavy inference graph;
//  2. fused Softmax vs the primitive Max/Sub/Exp/Sum/Div composite the
//     recurrent workloads use (kernel fusion);
//  3. fused BatchMatMul vs the Mul+Tile+Sum attention decomposition
//     the paper's seq2seq/memnet profiles exhibit.
//
// Each comparison reports per-step times on the same inputs.
func Ablation(o Options) (Result, error) {
	o = o.withDefaults()
	var text, csv strings.Builder
	csv.WriteString("ablation,variant,ns_per_step\n")

	// --- 1. graph optimizer ---
	rng := rand.New(rand.NewSource(o.Seed))
	g := graph.New()
	x := g.Placeholder("x", 16, 64)
	// A deliberately redundant inference graph: shared subexpressions
	// written twice, constant chains, and identity wrappers.
	w := g.Variable("fc/W", nn.Glorot(rng, 64, 256, 64, 256))
	b := g.Variable("fc/b", tensor.New(256))
	layer := func() *graph.Node { // built twice: identical subexpression
		return ops.Relu(ops.Add(ops.MatMul(x, w), b))
	}
	scale := ops.Mul(ops.ScalarConst(g, 2), ops.ScalarConst(g, 3))
	branchA := ops.Mul(ops.Identity(layer()), scale)
	branchB := ops.Mul(ops.Identity(layer()), scale) // CSE folds the whole layer
	out := ops.Add(branchA, branchB)

	ctx := &graph.ExecContext{Pool: tensor.NewPool(1), RNG: rand.New(rand.NewSource(o.Seed))}
	optRes, err := graph.Optimize(ctx, []*graph.Node{out})
	if err != nil {
		return Result{}, err
	}
	feed := tensor.RandNormal(rng, 0, 1, 16, 64)
	timeGraph := func(g *graph.Graph, fetch *graph.Node, ph *graph.Node, in *tensor.Tensor) (time.Duration, error) {
		s := runtime.NewSession(g, runtime.WithTrace(), runtime.WithSeed(o.Seed))
		const reps = 20
		for i := 0; i < reps; i++ {
			if _, err := s.Run([]*graph.Node{fetch}, runtime.Feeds{ph: in}); err != nil {
				return 0, err
			}
		}
		return s.SimTime() / reps, nil
	}
	raw, err := timeGraph(g, out, x, feed)
	if err != nil {
		return Result{}, err
	}
	var nx *graph.Node
	for _, n := range optRes.Graph.Nodes() {
		if n.Kind() == graph.KindPlaceholder {
			nx = n
		}
	}
	opt, err := timeGraph(optRes.Graph, optRes.Fetch(out), nx, feed)
	if err != nil {
		return Result{}, err
	}
	fmt.Fprintf(&text, "graph optimizer (identity/fold/CSE) on a redundant inference graph:\n")
	fmt.Fprintf(&text, "  raw graph:       %4d nodes   %v/step\n", g.NumNodes(), raw)
	fmt.Fprintf(&text, "  optimized graph: %4d nodes   %v/step   (%d identities, %d folds, %d CSE merges)\n",
		optRes.Graph.NumNodes(), opt, optRes.IdentitiesElided, optRes.ConstantsFolded, optRes.CSEMerged)
	fmt.Fprintf(&csv, "optimizer,raw,%d\noptimizer,optimized,%d\n", raw.Nanoseconds(), opt.Nanoseconds())

	// --- 2. fused vs primitive softmax ---
	g2 := graph.New()
	in2 := g2.Placeholder("x", 64, 512)
	fused := ops.Softmax(in2)
	prim := nn.PrimitiveSoftmax(in2)
	feed2 := tensor.RandNormal(rng, 0, 1, 64, 512)
	tf, err := timeGraph(g2, fused, in2, feed2)
	if err != nil {
		return Result{}, err
	}
	tp, err := timeGraph(g2, prim, in2, feed2)
	if err != nil {
		return Result{}, err
	}
	fmt.Fprintf(&text, "\nkernel fusion — softmax over (64,512):\n")
	fmt.Fprintf(&text, "  fused Softmax op:            %v/step\n", tf)
	fmt.Fprintf(&text, "  Max/Sub/Exp/Sum/Div recipe:  %v/step (%.2fx)\n", tp, float64(tp)/float64(tf))
	fmt.Fprintf(&csv, "softmax,fused,%d\nsoftmax,primitive,%d\n", tf.Nanoseconds(), tp.Nanoseconds())

	// --- 3. fused BatchMatMul vs Mul+Tile+Sum attention scores ---
	g3 := graph.New()
	enc := g3.Placeholder("enc", 16, 32, 64)  // (B,T,H)
	qry := g3.Placeholder("q", 16, 64)        // (B,H)
	q3 := ops.ExpandDims(qry, 2)              // (B,H,1)
	fusedScores := ops.BatchMatMul(enc, q3)   // (B,T,1)
	qe := ops.ExpandDims(qry, 1)              // (B,1,H)
	qt := ops.TileN(qe, []int{1, 32, 1})      // (B,T,H)
	decScores := ops.Sum(ops.Mul(enc, qt), 2) // (B,T)
	feedEnc := tensor.RandNormal(rng, 0, 1, 16, 32, 64)
	feedQ := tensor.RandNormal(rng, 0, 1, 16, 64)
	timePair := func(fetch *graph.Node) (time.Duration, error) {
		s := runtime.NewSession(g3, runtime.WithTrace(), runtime.WithSeed(o.Seed))
		const reps = 20
		for i := 0; i < reps; i++ {
			if _, err := s.Run([]*graph.Node{fetch}, runtime.Feeds{enc: feedEnc, qry: feedQ}); err != nil {
				return 0, err
			}
		}
		return s.SimTime() / reps, nil
	}
	tb, err := timePair(fusedScores)
	if err != nil {
		return Result{}, err
	}
	td, err := timePair(decScores)
	if err != nil {
		return Result{}, err
	}
	fmt.Fprintf(&text, "\nattention scores (B=16,T=32,H=64) — the decomposition the paper profiles:\n")
	fmt.Fprintf(&text, "  fused BatchMatMul:  %v/step\n", tb)
	fmt.Fprintf(&text, "  Mul+Tile+Sum:       %v/step (%.2fx)\n", td, float64(td)/float64(tb))
	fmt.Fprintf(&csv, "attention,batchmatmul,%d\nattention,mul_tile_sum,%d\n", tb.Nanoseconds(), td.Nanoseconds())

	_ = core.PresetRef // options currently unused beyond seed; keep signature uniform
	return Result{ID: "ablation", Title: "Ablations: optimizer passes and kernel fusion", Text: text.String(), CSV: csv.String()}, nil
}
