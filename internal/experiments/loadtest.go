package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/loadgen"
	"repro/internal/serve"
)

// LoadTestOptions parameterizes the serving load test.
type LoadTestOptions struct {
	Model     string        // workload to serve (required)
	QPS       float64       // 1× stage rate; 0 = measure capacity first
	Duration  time.Duration // per-stage duration (default 2s)
	Arrival   loadgen.Arrival
	BatchFrac float64       // fraction of traffic on the batch lane
	Deadline  time.Duration // per-request deadline budget (default 250ms)

	// Engine shape.
	Sessions int
	MaxBatch int
	MaxDelay time.Duration
	QueueLen int
	InterOp  int
	IntraOp  int
}

// LoadTest is the serving robustness experiment (`fathom loadtest`,
// part of `fathom all`): it builds one engine with admission control
// armed (bounded lanes + deadline budget), measures its closed-loop
// capacity, then drives it open-loop at 0.5×/1×/2× of that capacity
// with mixed-priority traffic. The report shows the overload contract
// in numbers: at 2× the engine must shed early — goodput holding near
// its 1× value and admitted-request p99 inside the deadline budget —
// instead of letting every request's latency collapse. The returned
// Report is what `fathom loadtest` persists as BENCH_serve.json, the
// serving perf trajectory across PRs.
func LoadTest(o Options, lt LoadTestOptions) (Result, *loadgen.Report, error) {
	o = o.withDefaults()
	if lt.Model == "" {
		lt.Model = "memnet"
	}
	if lt.Duration <= 0 {
		lt.Duration = 2 * time.Second
	}
	if lt.Deadline <= 0 {
		lt.Deadline = 250 * time.Millisecond
	}
	if lt.Sessions <= 0 {
		lt.Sessions = 2
	}
	if lt.MaxBatch <= 0 {
		lt.MaxBatch = 8
	}
	if lt.MaxDelay <= 0 {
		lt.MaxDelay = 500 * time.Microsecond
	}
	if lt.BatchFrac < 0 || lt.BatchFrac > 1 {
		return Result{}, nil, fmt.Errorf("loadtest: batch fraction %v outside [0,1]", lt.BatchFrac)
	}
	m, err := core.New(lt.Model)
	if err != nil {
		return Result{}, nil, err
	}
	if err := m.Setup(core.Config{Preset: o.Preset, Seed: o.Seed, Batch: lt.MaxBatch}); err != nil {
		return Result{}, nil, fmt.Errorf("loadtest: setup %s: %w", lt.Model, err)
	}
	eng, err := serve.New(m, serve.Options{
		Sessions:        lt.Sessions,
		MaxBatch:        lt.MaxBatch,
		MaxDelay:        lt.MaxDelay,
		Seed:            o.Seed,
		InterOpWorkers:  lt.InterOp,
		IntraOpWorkers:  lt.IntraOp,
		QueueLen:        lt.QueueLen,
		DefaultDeadline: lt.Deadline,
	})
	if err != nil {
		return Result{}, nil, err
	}
	defer eng.Close()
	examples, err := serve.Examples(m, 4*eng.MaxBatch())
	if err != nil {
		return Result{}, nil, err
	}
	// Warm every worker session's plan cache so capacity and latency
	// reflect steady state, not one-time compilation.
	var warm sync.WaitGroup
	for i := 0; i < lt.Sessions*eng.MaxBatch(); i++ {
		warm.Add(1)
		go func(i int) {
			defer warm.Done()
			_, _ = eng.Infer(context.Background(), examples[i%len(examples)])
		}(i)
	}
	warm.Wait()
	eng.ResetStats()

	capacity := lt.QPS
	if capacity <= 0 {
		capacity, err = loadgen.EstimateCapacity(eng, examples, lt.Sessions*eng.MaxBatch(), 500*time.Millisecond)
		if err != nil {
			return Result{}, nil, err
		}
		eng.ResetStats()
	}
	rep, err := loadgen.Run(eng, examples, loadgen.Config{
		Stages:    loadgen.CapacityStages(capacity, lt.Duration),
		Arrival:   lt.Arrival,
		Seed:      o.Seed,
		BatchFrac: lt.BatchFrac,
		Deadline:  lt.Deadline,
	})
	if err != nil {
		return Result{}, nil, err
	}
	rep.Model = lt.Model
	rep.CapacityQPS = capacity

	var text, csv strings.Builder
	fmt.Fprintf(&text, "open-loop load test: %s (%s preset), capacity %.0f qps, %s arrivals, %.0f%% batch lane, deadline %v\n\n",
		lt.Model, o.Preset, capacity, rep.Arrival, 100*lt.BatchFrac, lt.Deadline)
	fmt.Fprintf(&text, "%-6s %9s %9s %9s %7s %7s %8s %8s %8s | %8s %8s | %8s %8s\n",
		"stage", "offered", "goodput", "achieved", "shed%", "drop", "p50ms", "p99ms", "p999ms", "int-p99", "bat-p99", "wait-p50", "wait-p99")
	csv.WriteString("stage,offered_qps,goodput_qps,achieved_qps,shed_rate,dropped,rejected,shed,expired,p50_ms,p99_ms,p999_ms,interactive_p99_ms,batch_p99_ms,queue_wait_p50_ms,queue_wait_p99_ms,queue_wait_p999_ms\n")
	for _, st := range rep.Stages {
		// The merged quantiles weight each lane by its completions.
		p50, p99, p999 := mergedQuantiles(st)
		fmt.Fprintf(&text, "%-6s %9.1f %9.1f %9.1f %6.1f%% %7d %8.2f %8.2f %8.2f | %8.2f %8.2f | %8.2f %8.2f\n",
			st.Name, st.OfferedQPS, st.GoodputQPS, st.AchievedQPS, 100*st.ShedRate, st.Dropped,
			p50, p99, p999, st.Interactive.P99MS, st.Batch.P99MS,
			st.QueueWaitP50MS, st.QueueWaitP99MS)
		fmt.Fprintf(&csv, "%s,%.2f,%.2f,%.2f,%.4f,%d,%d,%d,%d,%.3f,%.3f,%.3f,%.3f,%.3f,%.3f,%.3f,%.3f\n",
			st.Name, st.OfferedQPS, st.GoodputQPS, st.AchievedQPS, st.ShedRate, st.Dropped,
			st.EngineRejected, st.EngineShed, st.EngineExpired,
			p50, p99, p999, st.Interactive.P99MS, st.Batch.P99MS,
			st.QueueWaitP50MS, st.QueueWaitP99MS, st.QueueWaitP999MS)
	}
	text.WriteString("\ngoodput: completions inside the deadline budget per second — under 2x overload it must hold near the 1x value\n")
	text.WriteString("shed%: requests refused early (queue full, budget shed) or expired, instead of queueing unboundedly\n")
	text.WriteString("int/bat-p99: per-lane p99 — the interactive lane must stay bounded while the batch lane absorbs the overload\n")
	text.WriteString("wait-p50/p99: time admitted requests spent queued before batch pickup — the queueing share of end-to-end latency\n")
	return Result{
		ID:    "loadtest",
		Title: fmt.Sprintf("Serving under overload: %s at 0.5x/1x/2x capacity", lt.Model),
		Text:  text.String(),
		CSV:   csv.String(),
	}, &rep, nil
}

// mergedQuantiles approximates stage-wide latency quantiles from the
// per-lane reports, weighting each lane by its completion count.
func mergedQuantiles(st loadgen.StageReport) (p50, p99, p999 float64) {
	ni, nb := float64(st.Interactive.OK), float64(st.Batch.OK)
	if ni+nb == 0 {
		return 0, 0, 0
	}
	w := func(a, b float64) float64 { return (a*ni + b*nb) / (ni + nb) }
	return w(st.Interactive.P50MS, st.Batch.P50MS),
		w(st.Interactive.P99MS, st.Batch.P99MS),
		w(st.Interactive.P999MS, st.Batch.P999MS)
}

// WriteBenchJSON renders a load-test report as the BENCH_serve.json
// payload: indented, stable field order, with the capacity sweep that
// later PRs diff.
func WriteBenchJSON(rep *loadgen.Report) ([]byte, error) {
	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}
