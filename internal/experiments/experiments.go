// Package experiments regenerates every table and figure of the
// paper's evaluation (Section V): where time is spent by operation
// type and class, how similar the workload profiles are, how training
// compares to inference on the CPU and the modeled GPU, and how
// intra-operation parallelism shifts the bottlenecks. Each experiment
// returns a Result carrying both a human-readable rendering and a CSV
// payload for downstream plotting.
package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/profiling"
	"repro/internal/survey"
)

// Options configures experiment runs.
type Options struct {
	Preset core.Preset
	Steps  int
	Warmup int
	Seed   int64
}

// withDefaults fills unset fields.
func (o Options) withDefaults() Options {
	if o.Steps == 0 {
		o.Steps = 4
	}
	if o.Warmup == 0 {
		o.Warmup = 1
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// Result is one regenerated table or figure.
type Result struct {
	ID    string // "table1", "fig3", ...
	Title string
	Text  string // human-readable rendering
	CSV   string // machine-readable series
}

// Workloads returns the suite's model names in the paper's Figure-3
// display order.
func Workloads() []string {
	return []string{"seq2seq", "memnet", "speech", "autoenc", "residual", "vgg", "alexnet", "deepq"}
}

// ProfileSuite profiles every workload in the given mode and returns
// results keyed by model name. Shared by Fig. 2, 3 and 4 so the CLI
// "all" command profiles the suite once.
func ProfileSuite(o Options, mode core.Mode) (map[string]*core.RunResult, error) {
	o = o.withDefaults()
	out := map[string]*core.RunResult{}
	for _, name := range Workloads() {
		res, err := core.SetupAndRun(name, core.Config{Preset: o.Preset, Seed: o.Seed},
			core.RunOptions{Mode: mode, Steps: o.Steps, Warmup: o.Warmup, Seed: o.Seed})
		if err != nil {
			return nil, fmt.Errorf("experiments: profiling %s: %w", name, err)
		}
		out[name] = res
	}
	return out, nil
}

// ---- Table I ----

// Table1 renders the architecture-literature survey against Fathom.
func Table1() Result {
	metas := suiteMetas()
	text := survey.Render(metas)
	var csv strings.Builder
	csv.WriteString("feature")
	papers := append(survey.Papers(), survey.FathomColumn(metas))
	for _, p := range papers {
		fmt.Fprintf(&csv, ",%s", p.Cite)
	}
	csv.WriteString("\n")
	for f := survey.FullyConnected; f <= survey.FunctionApproximation; f++ {
		csv.WriteString(strings.ReplaceAll(f.String(), ",", ";"))
		for _, p := range papers {
			if p.Features[f] {
				csv.WriteString(",1")
			} else {
				csv.WriteString(",0")
			}
		}
		csv.WriteString("\n")
	}
	return Result{ID: "table1", Title: "Table I: Recent architecture research in deep learning", Text: text, CSV: csv.String()}
}

func suiteMetas() []core.Meta {
	var metas []core.Meta
	for _, name := range core.Names() {
		m, err := core.New(name)
		if err != nil {
			continue
		}
		metas = append(metas, m.Meta())
	}
	return metas
}

// ---- Table II ----

// Table2 renders the workload inventory from live model metadata.
func Table2() Result {
	var text, csv strings.Builder
	fmt.Fprintf(&text, "%-10s %-5s %-22s %-7s %-14s %-10s  %s\n",
		"Model", "Year", "Neuronal Style", "Layers", "Learning Task", "Dataset", "Purpose and Legacy")
	csv.WriteString("model,year,style,layers,task,dataset,purpose\n")
	for _, name := range Workloads() {
		m, err := core.New(name)
		if err != nil {
			continue
		}
		meta := m.Meta()
		fmt.Fprintf(&text, "%-10s %-5d %-22s %-7d %-14s %-10s  %s\n",
			meta.Name, meta.Year, meta.Style, meta.Layers, meta.Task, meta.Dataset, meta.Purpose)
		fmt.Fprintf(&csv, "%s,%d,%s,%d,%s,%s,%q\n",
			meta.Name, meta.Year, meta.Style, meta.Layers, meta.Task, meta.Dataset, meta.Purpose)
	}
	return Result{ID: "table2", Title: "Table II: The Fathom workloads", Text: text.String(), CSV: csv.String()}
}

// ---- Figure 1: stationarity ----

// Fig1 samples per-step operation times across a training run and
// reports the distribution: stationary (low drift), low variance.
func Fig1(o Options) (Result, error) {
	o = o.withDefaults()
	if o.Steps < 16 {
		o.Steps = 16
	}
	res, err := core.SetupAndRun("alexnet", core.Config{Preset: o.Preset, Seed: o.Seed},
		core.RunOptions{Mode: core.ModeTraining, Steps: o.Steps, Warmup: o.Warmup, Seed: o.Seed})
	if err != nil {
		return Result{}, err
	}
	var text, csv strings.Builder
	totals := profiling.StepTotals(res.Events)
	st := profiling.Stationary(totals)
	fmt.Fprintf(&text, "alexnet training, %d steps: per-step op time distribution\n", o.Steps)
	fmt.Fprintf(&text, "  mean %v  std %v  CoV %.4f  drift %.4f  min %v  max %v\n",
		st.Mean, st.Std, st.CoV, st.Drift, st.Min, st.Max)
	edges, counts := profiling.Histogram(totals, 8)
	maxC := 1
	for _, c := range counts {
		if c > maxC {
			maxC = c
		}
	}
	for i, c := range counts {
		bar := strings.Repeat("#", c*40/maxC)
		fmt.Fprintf(&text, "  %10v..%-10v |%s %d\n", edges[i].Round(time.Microsecond), edges[i+1].Round(time.Microsecond), bar, c)
	}
	// Per-op stationarity of the heaviest types.
	text.WriteString("\n  per-op-type stationarity (top types):\n")
	csv.WriteString("op,samples,mean_ns,std_ns,cov,drift\n")
	for i, s := range res.Profile.Shares() {
		if i >= 6 {
			break
		}
		series := profiling.PerStepTimes(res.Events, s.Op)
		ops := profiling.Stationary(series)
		fmt.Fprintf(&text, "  %-20s mean %-12v CoV %.4f drift %+.4f\n", s.Op, ops.Mean, ops.CoV, ops.Drift)
		fmt.Fprintf(&csv, "%s,%d,%d,%d,%.5f,%.5f\n", s.Op, ops.Samples, ops.Mean.Nanoseconds(), ops.Std.Nanoseconds(), ops.CoV, ops.Drift)
	}
	return Result{ID: "fig1", Title: "Figure 1: operation execution times are stationary with low variance", Text: text.String(), CSV: csv.String()}, nil
}

// ---- Figure 2: cumulative op-type curves ----

// Fig2From renders the cumulative heavy-operation curves from a
// profiled suite.
func Fig2From(results map[string]*core.RunResult) Result {
	var text, csv strings.Builder
	csv.WriteString("model,rank,op,cumulative\n")
	text.WriteString("Cumulative fraction of execution time vs number of op types:\n\n")
	for _, name := range Workloads() {
		res := results[name]
		if res == nil {
			continue
		}
		cum := res.Profile.Cumulative()
		fmt.Fprintf(&text, "%-10s", name)
		for i, pt := range cum {
			if i >= 10 {
				break
			}
			fmt.Fprintf(&text, " %5.2f", pt.Cumulative)
		}
		h := res.Profile.HeavyTypes(0.9)
		fmt.Fprintf(&text, "   (%d types reach 90%%, %d total)\n", h, len(cum))
		for _, pt := range cum {
			fmt.Fprintf(&csv, "%s,%d,%s,%.5f\n", name, pt.Rank, pt.Op, pt.Cumulative)
		}
	}
	return Result{ID: "fig2", Title: "Figure 2: a handful of heavy op types dominate execution time", Text: text.String(), CSV: csv.String()}
}

// Fig2 profiles the suite and renders the curves.
func Fig2(o Options) (Result, error) {
	rs, err := ProfileSuite(o, core.ModeTraining)
	if err != nil {
		return Result{}, err
	}
	return Fig2From(rs), nil
}

// ---- Figure 3: class heat map ----

// Fig3From renders the per-class execution-time breakdown.
func Fig3From(results map[string]*core.RunResult) Result {
	var text, csv strings.Builder
	text.WriteString("Breakdown of execution time by operation class (% of total):\n\n")
	fmt.Fprintf(&text, "%-10s", "")
	for c := 0; c < graph.NumClasses; c++ {
		fmt.Fprintf(&text, "%7s", graph.OpClass(c).Letter())
	}
	text.WriteString("\n")
	csv.WriteString("model")
	for c := 0; c < graph.NumClasses; c++ {
		fmt.Fprintf(&csv, ",%s", strings.ReplaceAll(graph.OpClass(c).String(), " ", "_"))
	}
	csv.WriteString("\n")
	for _, name := range Workloads() {
		res := results[name]
		if res == nil {
			continue
		}
		fr := res.Profile.ClassFractions()
		fmt.Fprintf(&text, "%-10s", name)
		fmt.Fprintf(&csv, "%s", name)
		for c := 0; c < graph.NumClasses; c++ {
			fmt.Fprintf(&text, "%7.1f", 100*fr[c])
			fmt.Fprintf(&csv, ",%.4f", fr[c])
		}
		text.WriteString("\n")
		csv.WriteString("\n")
	}
	text.WriteString("\nClasses: A=Matrix Operations B=Convolution C=Elementwise Arithmetic\n" +
		"         D=Reduction and Expansion E=Random Sampling F=Optimization G=Data Movement\n")
	return Result{ID: "fig3", Title: "Figure 3: execution time by operation type for each Fathom workload", Text: text.String(), CSV: csv.String()}
}

// Fig3 profiles the suite and renders the heat map.
func Fig3(o Options) (Result, error) {
	rs, err := ProfileSuite(o, core.ModeTraining)
	if err != nil {
		return Result{}, err
	}
	return Fig3From(rs), nil
}

// ---- Figure 4: similarity dendrogram ----

// Fig4From clusters the op-type profiles and renders the dendrogram.
func Fig4From(results map[string]*core.RunResult) Result {
	var labels []string
	var profs []*profiling.Profile
	for _, name := range Workloads() {
		if res := results[name]; res != nil {
			labels = append(labels, name)
			profs = append(profs, res.Profile)
		}
	}
	_, vectors := profiling.Vectorize(profs)
	merges := analysis.Agglomerate(vectors)
	var text, csv strings.Builder
	text.WriteString("Hierarchical similarity (cosine distance, centroidal linkage):\n\n")
	text.WriteString(analysis.RenderDendrogram(labels, merges, 72))
	text.WriteString("\nclosest pairs:\n")
	for i, p := range analysis.SortedPairs(labels, vectors) {
		if i >= 6 {
			break
		}
		text.WriteString("  " + p + "\n")
	}
	csv.WriteString("merge,a,b,distance\n")
	for i, m := range merges {
		fmt.Fprintf(&csv, "%d,%d,%d,%.5f\n", i, m.A, m.B, m.Dist)
	}
	return Result{ID: "fig4", Title: "Figure 4: hierarchical similarity in the Fathom workloads", Text: text.String(), CSV: csv.String()}
}

// Fig4 profiles the suite and renders the dendrogram.
func Fig4(o Options) (Result, error) {
	rs, err := ProfileSuite(o, core.ModeTraining)
	if err != nil {
		return Result{}, err
	}
	return Fig4From(rs), nil
}

// ---- Figure 5: training vs inference on CPU and GPU ----

// Fig5 measures per-step time for every workload in all four
// (mode, device) configurations, normalized per model to CPU training
// (the paper's lowest-performance configuration).
func Fig5(o Options) (Result, error) {
	o = o.withDefaults()
	var text, csv strings.Builder
	fmt.Fprintf(&text, "Per-step time normalized to CPU training (lower bar = faster):\n\n")
	fmt.Fprintf(&text, "%-10s %14s %14s %14s %14s %10s %9s\n",
		"model", "train_cpu", "infer_cpu", "train_gpu", "infer_gpu", "infer/train", "gpu_gain")
	csv.WriteString("model,config,seconds_per_step,normalized\n")
	type config struct {
		mode core.Mode
		dev  string
	}
	configs := []config{
		{core.ModeTraining, "cpu"}, {core.ModeInference, "cpu"},
		{core.ModeTraining, "gpu"}, {core.ModeInference, "gpu"},
	}
	for _, name := range Workloads() {
		times := make([]time.Duration, len(configs))
		for i, c := range configs {
			res, err := core.SetupAndRun(name, core.Config{Preset: o.Preset, Seed: o.Seed},
				core.RunOptions{Mode: c.mode, Steps: o.Steps, Warmup: o.Warmup, Device: c.dev, Seed: o.Seed})
			if err != nil {
				return Result{}, fmt.Errorf("fig5 %s %s/%s: %w", name, c.mode, c.dev, err)
			}
			times[i] = res.SimTime / time.Duration(o.Steps)
		}
		base := float64(times[0])
		fmt.Fprintf(&text, "%-10s", name)
		for i, c := range configs {
			norm := float64(times[i]) / base
			fmt.Fprintf(&text, " %8.5fx(%3s)", norm, c.dev)
			fmt.Fprintf(&csv, "%s,%s_%s,%.6f,%.6f\n", name, c.mode, c.dev,
				times[i].Seconds(), norm)
		}
		fmt.Fprintf(&text, " %10.3f %9.1f\n",
			float64(times[1])/float64(times[0]), // inference/training on CPU
			float64(times[0])/float64(times[2])) // CPU/GPU speedup for training
	}
	text.WriteString("\n(columns: normalized per-step time for train_cpu, infer_cpu, train_gpu, infer_gpu;\n" +
		" infer/train = CPU inference fraction; gpu_gain = training speedup of modeled GPU)\n")
	return Result{ID: "fig5", Title: "Figure 5: training and inference, CPU and (modeled) GPU", Text: text.String(), CSV: csv.String()}, nil
}

// ---- Figure 6: parallel scaling of op types ----

// Fig6Models are the workloads the paper examines in Figure 6.
func Fig6Models() []string { return []string{"deepq", "seq2seq", "memnet"} }

// Fig6 sweeps intra-op workers for one model and reports absolute
// time per op type — the application-level Amdahl's-law picture.
func Fig6(o Options, model string) (Result, error) {
	o = o.withDefaults()
	workers := []int{1, 2, 4, 8}
	// Profile at each worker count.
	byWorkers := make([]*core.RunResult, len(workers))
	for i, w := range workers {
		res, err := core.SetupAndRun(model, core.Config{Preset: o.Preset, Seed: o.Seed},
			core.RunOptions{Mode: core.ModeTraining, Steps: o.Steps, Warmup: o.Warmup, Workers: w, Seed: o.Seed})
		if err != nil {
			return Result{}, fmt.Errorf("fig6 %s workers=%d: %w", model, w, err)
		}
		byWorkers[i] = res
	}
	// Rank op types by their single-worker time.
	shares := byWorkers[0].Profile.Shares()
	topN := 10
	if len(shares) < topN {
		topN = len(shares)
	}
	var text, csv strings.Builder
	fmt.Fprintf(&text, "%s training: absolute time per op type vs modeled workers\n\n", model)
	fmt.Fprintf(&text, "%-20s %-6s", "op type", "class")
	for _, w := range workers {
		fmt.Fprintf(&text, "%12s", fmt.Sprintf("%d thr", w))
	}
	fmt.Fprintf(&text, "%10s\n", "speedup")
	csv.WriteString("op,class")
	for _, w := range workers {
		fmt.Fprintf(&csv, ",t%d_ns", w)
	}
	csv.WriteString("\n")
	for i := 0; i < topN; i++ {
		op := shares[i].Op
		fmt.Fprintf(&text, "%-20s %-6s", op, shares[i].Class.Letter())
		fmt.Fprintf(&csv, "%s,%s", op, shares[i].Class.Letter())
		var t1, tN time.Duration
		for j := range workers {
			d := byWorkers[j].Profile.ByType[op] / time.Duration(o.Steps)
			if j == 0 {
				t1 = d
			}
			tN = d
			fmt.Fprintf(&text, "%12v", d.Round(time.Microsecond))
			fmt.Fprintf(&csv, ",%d", d.Nanoseconds())
		}
		sp := 0.0
		if tN > 0 {
			sp = float64(t1) / float64(tN)
		}
		fmt.Fprintf(&text, "%9.2fx\n", sp)
		csv.WriteString("\n")
	}
	// Overall step time and the profile flattening effect.
	text.WriteString("\ntotal op time per step and share of the largest op type:\n")
	for j, w := range workers {
		p := byWorkers[j].Profile
		top := p.Shares()[0]
		fmt.Fprintf(&text, "  %d workers: %12v   top=%s (%.1f%%)\n",
			w, (p.Total / time.Duration(o.Steps)).Round(time.Microsecond), top.Op, 100*top.Fraction)
	}
	return Result{
		ID:    "fig6_" + model,
		Title: fmt.Sprintf("Figure 6: operation type scaling in %s", model),
		Text:  text.String(), CSV: csv.String(),
	}, nil
}

// ---- §V-A: inter-operation overhead ----

// Overhead measures the share of wall time spent outside operations
// (the paper reports 1–2% for TensorFlow).
func Overhead(o Options) (Result, error) {
	o = o.withDefaults()
	var text, csv strings.Builder
	text.WriteString("Inter-operation overhead: share of step wall time outside op kernels\n\n")
	csv.WriteString("model,wall_ns,op_ns,overhead_fraction\n")
	for _, name := range Workloads() {
		res, err := core.SetupAndRun(name, core.Config{Preset: o.Preset, Seed: o.Seed},
			core.RunOptions{Mode: core.ModeTraining, Steps: o.Steps, Warmup: o.Warmup, Seed: o.Seed})
		if err != nil {
			return Result{}, err
		}
		over := 1 - float64(res.SimTime)/float64(res.WallTime)
		if over < 0 {
			over = 0
		}
		fmt.Fprintf(&text, "  %-10s wall %12v  in-op %12v  overhead %5.2f%%\n",
			name, res.WallTime/time.Duration(o.Steps), res.SimTime/time.Duration(o.Steps), 100*over)
		fmt.Fprintf(&csv, "%s,%d,%d,%.5f\n", name, res.WallTime.Nanoseconds(), res.SimTime.Nanoseconds(), over)
	}
	return Result{ID: "overhead", Title: "Inter-operation overhead (§V-A)", Text: text.String(), CSV: csv.String()}, nil
}

// ---- parallelism profile (the `fathom profile` command) ----

// ProfileParallel characterizes both parallelism axes per workload and
// emits the same Result shape as the fig commands, so `fathom profile`
// writes CSV with -out and joins the `all` artifact sweep. Per
// workload it runs four instrumented configurations:
//
//   - a serial baseline (the wall and simulated denominators);
//   - a traced inter-op run at width interop (critical path, achieved
//     vs achievable speedup, modeled makespan);
//   - a modeled intra-op run at width intraop (serial+simulated kernel
//     pools — the paper's Fig. 6 axis);
//   - a real intra-op run at width intraop (parallel kernel pools on
//     the shared worker pool — measured wall speedup).
//
// The last two columns are profiling.IntraOpStats's modeled and
// measured speedups side by side; on a loaded or single-core host the
// measured column legitimately hugs 1.0× while the modeled column
// reports what the hardware model predicts.
//
// names selects the workloads to profile; nil or empty profiles the
// whole suite in Workloads() order. device is the execution device
// name ("" or "cpu" for the measured CPU, "gpu" for the roofline
// model).
func ProfileParallel(o Options, mode core.Mode, interop, intraop int, names []string, device string) (Result, error) {
	o = o.withDefaults()
	if interop < 1 {
		interop = 1
	}
	if intraop < 1 {
		intraop = 1
	}
	if len(names) == 0 {
		names = Workloads()
	}
	var text, csv strings.Builder
	fmt.Fprintf(&text, "parallelism profile: %s, %d steps, inter-op %d, intra-op %d\n\n", mode, o.Steps, interop, intraop)
	fmt.Fprintf(&text, "%-10s %6s %12s %12s %12s %9s %10s %9s %9s\n",
		"workload", "ops", "serial/step", "critpath/st", "span/step", "achieved", "achievable", "intra-mod", "intra-real")
	csv.WriteString("workload,ops_per_step,serial_ns,critpath_ns,makespan_ns,achieved,achievable,intraop_modeled,intraop_measured,interop,intraop\n")
	for _, name := range names {
		name = strings.TrimSpace(name)
		run := func(opt core.RunOptions) (*core.RunResult, error) {
			opt.Mode, opt.Steps, opt.Warmup, opt.Seed, opt.Device = mode, o.Steps, o.Warmup, o.Seed, device
			return core.SetupAndRun(name, core.Config{Preset: o.Preset, Seed: o.Seed}, opt)
		}
		base, err := run(core.RunOptions{})
		if err != nil {
			return Result{}, fmt.Errorf("profile %s baseline: %w", name, err)
		}
		inter, err := run(core.RunOptions{InterOp: interop})
		if err != nil {
			return Result{}, fmt.Errorf("profile %s interop=%d: %w", name, interop, err)
		}
		modeled, err := run(core.RunOptions{Workers: intraop})
		if err != nil {
			return Result{}, fmt.Errorf("profile %s workers=%d: %w", name, intraop, err)
		}
		real, err := run(core.RunOptions{IntraOp: intraop})
		if err != nil {
			return Result{}, fmt.Errorf("profile %s intraop=%d: %w", name, intraop, err)
		}
		io := profiling.InterOp(inter.Events)
		ia := profiling.IntraOp(intraop, base.SimTime, modeled.SimTime, base.WallTime, real.WallTime)
		div := io.Steps
		if div == 0 {
			div = 1 // empty trace: print a zero row, never divide by it
		}
		fmt.Fprintf(&text, "%-10s %6d %12v %12v %12v %8.2fx %9.2fx %8.2fx %8.2fx\n",
			name, io.Ops/div, io.Serial/time.Duration(div), io.CritPath/time.Duration(div), io.Makespan/time.Duration(div),
			io.Achieved, io.Achievable, ia.Modeled, ia.Measured)
		fmt.Fprintf(&csv, "%s,%d,%d,%d,%d,%.4f,%.4f,%.4f,%.4f,%d,%d\n",
			name, io.Ops/div, (io.Serial / time.Duration(div)).Nanoseconds(), (io.CritPath / time.Duration(div)).Nanoseconds(),
			(io.Makespan / time.Duration(div)).Nanoseconds(), io.Achieved, io.Achievable, ia.Modeled, ia.Measured, interop, intraop)
	}
	text.WriteString("\nachieved/achievable: inter-op speedup of the traced schedule vs the critical-path bound\n")
	text.WriteString("intra-mod/intra-real: modeled (simulated lanes) vs measured (shared-pool goroutines) intra-op speedup\n")
	return Result{
		ID:    "profile",
		Title: "Parallelism profile: inter-op critical paths and intra-op real vs modeled speedup",
		Text:  text.String(), CSV: csv.String(),
	}, nil
}
