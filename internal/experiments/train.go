package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/profiling"
)

// trainRun is one data-parallel training measurement.
type trainRun struct {
	losses []float64
	timing dist.Timing
	batch  int
	chunks int
}

// runTrain trains one workload for o.Warmup untimed plus steps timed
// global steps at the given replica count on the process-wide pool —
// warmup compiles every replica's forward/backward and apply plans, so
// the reported timings are steady-state, as in every other experiment.
func runTrain(name string, o Options, replicas, chunks, intraop, steps int) (trainRun, error) {
	tr, err := dist.New(name, dist.Options{
		Replicas:       replicas,
		Chunks:         chunks,
		Preset:         o.Preset,
		Seed:           o.Seed,
		IntraOpWorkers: intraop,
	})
	if err != nil {
		return trainRun{}, err
	}
	defer tr.Close()
	if _, err := tr.Train(o.Warmup); err != nil {
		return trainRun{}, err
	}
	tr.ResetTiming()
	if _, err := tr.Train(steps); err != nil {
		return trainRun{}, err
	}
	return trainRun{
		losses: append([]float64(nil), tr.Losses()...),
		timing: tr.Timing(),
		batch:  tr.Partition().GlobalBatch,
		chunks: tr.Partition().Chunks,
	}, nil
}

// TrainScaling is the data-parallel training report (`fathom train`,
// part of `fathom all`): per workload, it trains the same fixed global
// batch at 1 replica and at `replicas` replicas on the shared worker
// pool and puts the achieved wall-clock speedup next to the achievable
// bound the run's own phase structure admits
// (profiling.TrainScaling). The ident column live-checks the
// subsystem's headline invariant — both runs' loss trajectories must
// be bit-identical, because the replica count only repartitions the
// chunk grid.
func TrainScaling(o Options, replicas, chunks, intraop int, names []string) (Result, error) {
	o = o.withDefaults()
	if replicas < 1 {
		replicas = 1
	}
	if chunks < 1 {
		chunks = 4
	}
	if intraop < 1 {
		intraop = 1
	}
	if len(names) == 0 {
		names = core.Names()
	}
	var text, csv strings.Builder
	fmt.Fprintf(&text, "data-parallel training: %d steps, %d chunks/step, replicas 1 vs %d, intra-op %d\n\n",
		o.Steps, chunks, replicas, intraop)
	fmt.Fprintf(&text, "%-10s %6s %10s %11s %11s %9s %10s %6s\n",
		"workload", "batch", "loss", "step/s@1", "step/s@N", "achieved", "achievable", "ident")
	csv.WriteString("workload,replicas,chunks,global_batch,steps,final_loss,serial_steps_per_s,parallel_steps_per_s,achieved,achievable,bit_identical\n")
	for _, name := range names {
		name = strings.TrimSpace(name)
		base, err := runTrain(name, o, 1, chunks, intraop, o.Steps)
		if err != nil {
			return Result{}, fmt.Errorf("train %s replicas=1: %w", name, err)
		}
		par, err := runTrain(name, o, replicas, chunks, intraop, o.Steps)
		if err != nil {
			return Result{}, fmt.Errorf("train %s replicas=%d: %w", name, replicas, err)
		}
		ident := len(base.losses) == len(par.losses)
		for i := 0; ident && i < len(base.losses); i++ {
			ident = base.losses[i] == par.losses[i]
		}
		ts := profiling.TrainScaling(replicas,
			base.timing.Wall, par.timing.Wall,
			par.timing.GradSum, par.timing.GradMax, par.timing.Reduce, par.timing.Apply)
		perSec := func(t dist.Timing) float64 {
			if t.Wall <= 0 {
				return 0
			}
			return float64(t.Steps) / t.Wall.Seconds()
		}
		final := 0.0
		if len(par.losses) > 0 {
			final = par.losses[len(par.losses)-1]
		}
		fmt.Fprintf(&text, "%-10s %6d %10.4f %11.2f %11.2f %8.2fx %9.2fx %6v\n",
			name, base.batch, final, perSec(base.timing), perSec(par.timing),
			ts.Achieved, ts.Achievable, ident)
		fmt.Fprintf(&csv, "%s,%d,%d,%d,%d,%.6f,%.4f,%.4f,%.4f,%.4f,%v\n",
			name, replicas, chunks, base.batch, o.Steps, final,
			perSec(base.timing), perSec(par.timing), ts.Achieved, ts.Achievable, ident)
		if !ident {
			// The determinism harness enforces this in CI; the report
			// surfaces it rather than silently printing a broken run.
			fmt.Fprintf(&text, "  WARNING: %s loss trajectory differs across replica counts\n", name)
		}
	}
	text.WriteString("\nachieved: wall speedup over the 1-replica run of the same global batch\n")
	text.WriteString("achievable: Amdahl bound from the run's phase walls (parallel gradients, serial reduce+apply)\n")
	text.WriteString("ident: loss trajectories bit-identical across replica counts (the dist determinism contract)\n")
	return Result{
		ID:    "train",
		Title: fmt.Sprintf("Data-parallel training scaling at %d replicas", replicas),
		Text:  text.String(), CSV: csv.String(),
	}, nil
}
