package experiments

import (
	"encoding/json"
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/fuse"
	"repro/internal/profiling"
	"repro/internal/telemetry"
)

// trainRun is one data-parallel training measurement.
type trainRun struct {
	losses []float64
	timing dist.Timing
	batch  int
	chunks int
}

// runTrain trains one workload for o.Warmup untimed plus steps timed
// global steps at the given replica count on the process-wide pool —
// warmup compiles every replica's forward/backward and apply plans, so
// the reported timings are steady-state, as in every other experiment.
func runTrain(name string, o Options, replicas, chunks, intraop, steps int) (trainRun, error) {
	tr, err := dist.New(name, dist.Options{
		Replicas:       replicas,
		Chunks:         chunks,
		Preset:         o.Preset,
		Seed:           o.Seed,
		IntraOpWorkers: intraop,
	})
	if err != nil {
		return trainRun{}, err
	}
	defer tr.Close()
	if _, err := tr.Train(o.Warmup); err != nil {
		return trainRun{}, err
	}
	tr.ResetTiming()
	if _, err := tr.Train(steps); err != nil {
		return trainRun{}, err
	}
	return trainRun{
		losses: append([]float64(nil), tr.Losses()...),
		timing: tr.Timing(),
		batch:  tr.Partition().GlobalBatch,
		chunks: tr.Partition().Chunks,
	}, nil
}

// fusedRun is one horizontally fused training measurement: width
// trainees stacked into a single array-batched graph (internal/fuse).
type fusedRun struct {
	losses [][]float64 // [trainee][step]
	timing fuse.Timing
	width  int
}

// runFused trains width fused instances of the workload (pure
// replication: every trainee at learning-rate scale 1, so each must
// reproduce the 1-replica dist run bit for bit) over the same chunk
// grid, warmup untimed plus steps timed.
func runFused(name string, o Options, width, chunks, intraop, steps int) (fusedRun, error) {
	arr, err := fuse.New(name, fuse.Options{
		Width:          width,
		Chunks:         chunks,
		Preset:         o.Preset,
		Seed:           o.Seed,
		IntraOpWorkers: intraop,
	})
	if err != nil {
		return fusedRun{}, err
	}
	defer arr.Close()
	if err := arr.Train(o.Warmup); err != nil {
		return fusedRun{}, err
	}
	arr.ResetTiming()
	if err := arr.Train(steps); err != nil {
		return fusedRun{}, err
	}
	out := fusedRun{timing: arr.Timing(), width: width}
	for k := 0; k < width; k++ {
		out.losses = append(out.losses, append([]float64(nil), arr.Losses(k)...))
	}
	return out, nil
}

// TrainBenchRow is one workload's training-throughput measurement in
// BENCH_train.json.
type TrainBenchRow struct {
	Workload    string  `json:"workload"`
	GlobalBatch int     `json:"global_batch"`
	FinalLoss   float64 `json:"final_loss"`
	// SerialStepsPerS is the 1-replica global-step rate;
	// ParallelStepsPerS the N-replica rate over the same global batch;
	// AchievedSpeedup their ratio.
	SerialStepsPerS   float64 `json:"serial_steps_per_s"`
	ParallelStepsPerS float64 `json:"parallel_steps_per_s"`
	AchievedSpeedup   float64 `json:"achieved_speedup"`
	// FusedTraineeStepsPerS is the fused array's trainee-step rate
	// (width × steps ÷ wall): the throughput of training width model
	// instances at once. FusedSpeedup is that rate over
	// SerialStepsPerS — the speedup against training the instances one
	// after another, the HFTA baseline. Zero when fusion was off.
	FusedTraineeStepsPerS float64 `json:"fused_trainee_steps_per_s"`
	FusedSpeedup          float64 `json:"fused_speedup"`
	// BitIdentical: loss trajectories identical across replica counts.
	// FusedIdentical: every fused trainee's trajectory identical to the
	// 1-replica run (vacuously true when fusion was off).
	BitIdentical   bool `json:"bit_identical"`
	FusedIdentical bool `json:"fused_identical"`
}

// TrainBench is what `fathom train` persists as BENCH_train.json: the
// training-throughput trajectory later PRs diff against, covering both
// the data-parallel axis (replicas) and the horizontal-fusion axis
// (fused width).
type TrainBench struct {
	Kind       string          `json:"kind"`
	Preset     string          `json:"preset"`
	Steps      int             `json:"steps"`
	Chunks     int             `json:"chunks"`
	IntraOp    int             `json:"intraop"`
	Replicas   int             `json:"replicas"`
	FusedWidth int             `json:"fused_width"`
	Workloads  []TrainBenchRow `json:"workloads"`
}

// WriteTrainBenchJSON renders the BENCH_train.json payload.
func WriteTrainBenchJSON(tb *TrainBench) ([]byte, error) {
	return json.MarshalIndent(tb, "", "  ")
}

// sameLosses reports whether two loss trajectories are bit-identical.
func sameLosses(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TrainScaling is the training-scaling report (`fathom train`, part of
// `fathom all`): per workload, it trains the same fixed global batch
// at 1 replica and at `replicas` replicas on the shared worker pool
// and puts the achieved wall-clock speedup next to the achievable
// bound the run's own phase structure admits (profiling.TrainScaling).
// With fused > 0 it additionally trains a horizontally fused array of
// that width (internal/fuse) and reports its trainee-step throughput
// against the sequential-standalone baseline. The ident columns
// live-check the two subsystems' headline invariant — replica counts
// only repartition the chunk grid, and fused trainees reproduce
// standalone runs, so every loss trajectory must be bit-identical.
// Alongside the Result it returns the BENCH_train.json payload.
func TrainScaling(o Options, replicas, chunks, intraop, fused int, names []string) (Result, *TrainBench, error) {
	o = o.withDefaults()
	if replicas < 1 {
		replicas = 1
	}
	if chunks < 1 {
		chunks = 4
	}
	if intraop < 1 {
		intraop = 1
	}
	if fused < 0 {
		fused = 0
	}
	if len(names) == 0 {
		names = core.Names()
	}
	bench := &TrainBench{
		Kind: "train", Preset: o.Preset.String(), Steps: o.Steps,
		Chunks: chunks, IntraOp: intraop, Replicas: replicas, FusedWidth: fused,
	}
	var text, csv strings.Builder
	fmt.Fprintf(&text, "training scaling: %d steps, %d chunks/step, replicas 1 vs %d, intra-op %d",
		o.Steps, chunks, replicas, intraop)
	if fused > 0 {
		fmt.Fprintf(&text, ", fused width %d", fused)
	}
	text.WriteString("\n\n")
	fmt.Fprintf(&text, "%-10s %6s %10s %11s %11s %9s %10s %11s %8s %6s\n",
		"workload", "batch", "loss", "step/s@1", "step/s@N", "achieved", "achievable", "trainee/s@K", "fused-x", "ident")
	csv.WriteString("workload,replicas,chunks,global_batch,steps,final_loss,serial_steps_per_s,parallel_steps_per_s,achieved,achievable,bit_identical,fused_width,fused_trainee_steps_per_s,fused_speedup,fused_identical\n")
	for _, name := range names {
		name = strings.TrimSpace(name)
		base, err := runTrain(name, o, 1, chunks, intraop, o.Steps)
		if err != nil {
			return Result{}, nil, fmt.Errorf("train %s replicas=1: %w", name, err)
		}
		par, err := runTrain(name, o, replicas, chunks, intraop, o.Steps)
		if err != nil {
			return Result{}, nil, fmt.Errorf("train %s replicas=%d: %w", name, replicas, err)
		}
		ident := sameLosses(base.losses, par.losses)
		ts := profiling.TrainScaling(replicas,
			base.timing.Wall, par.timing.Wall,
			par.timing.GradSum, par.timing.GradMax, par.timing.Reduce, par.timing.Apply)
		perSec := func(steps int, wall float64) float64 {
			if wall <= 0 {
				return 0
			}
			return float64(steps) / wall
		}
		serialRate := perSec(base.timing.Steps, base.timing.Wall.Seconds())
		parRate := perSec(par.timing.Steps, par.timing.Wall.Seconds())
		final := 0.0
		if len(par.losses) > 0 {
			final = par.losses[len(par.losses)-1]
		}

		fusedRate, fusedX := 0.0, 0.0
		fusedIdent := true
		if fused > 0 {
			fr, err := runFused(name, o, fused, chunks, intraop, o.Steps)
			if err != nil {
				return Result{}, nil, fmt.Errorf("train %s fused=%d: %w", name, fused, err)
			}
			fusedRate = perSec(fr.timing.Steps*fr.width, fr.timing.Wall.Seconds())
			if serialRate > 0 {
				fusedX = fusedRate / serialRate
			}
			// Pure replication: every fused trainee must reproduce the
			// 1-replica trajectory bit for bit.
			for k := 0; fusedIdent && k < fr.width; k++ {
				fusedIdent = sameLosses(base.losses, fr.losses[k])
			}
		}

		fmt.Fprintf(&text, "%-10s %6d %10.4f %11.2f %11.2f %8.2fx %9.2fx %11.2f %7.2fx %6v\n",
			name, base.batch, final, serialRate, parRate,
			ts.Achieved, ts.Achievable, fusedRate, fusedX, ident && fusedIdent)
		fmt.Fprintf(&csv, "%s,%d,%d,%d,%d,%.6f,%.4f,%.4f,%.4f,%.4f,%v,%d,%.4f,%.4f,%v\n",
			name, replicas, chunks, base.batch, o.Steps, final,
			serialRate, parRate, ts.Achieved, ts.Achievable, ident,
			fused, fusedRate, fusedX, fusedIdent)
		if !ident {
			// The determinism harness enforces this in CI; the report
			// surfaces it rather than silently printing a broken run.
			fmt.Fprintf(&text, "  WARNING: %s loss trajectory differs across replica counts\n", name)
		}
		if !fusedIdent {
			fmt.Fprintf(&text, "  WARNING: %s fused trainee trajectory differs from the standalone run\n", name)
		}
		bench.Workloads = append(bench.Workloads, TrainBenchRow{
			Workload: name, GlobalBatch: base.batch, FinalLoss: final,
			SerialStepsPerS: serialRate, ParallelStepsPerS: parRate,
			AchievedSpeedup:       ts.Achieved,
			FusedTraineeStepsPerS: fusedRate, FusedSpeedup: fusedX,
			BitIdentical: ident, FusedIdentical: fusedIdent,
		})
	}
	text.WriteString("\nachieved: wall speedup over the 1-replica run of the same global batch\n")
	text.WriteString("achievable: Amdahl bound from the run's phase walls (parallel gradients, serial reduce+apply)\n")
	if fused > 0 {
		text.WriteString("trainee/s@K: fused array trainee-step throughput (K instances in one graph)\n")
		text.WriteString("fused-x: that throughput over step/s@1 — speedup vs training the K instances sequentially\n")
	}
	text.WriteString("ident: loss trajectories bit-identical across replica counts and fused trainees (the determinism contract)\n")
	title := fmt.Sprintf("Data-parallel training scaling at %d replicas", replicas)
	if fused > 0 {
		title = fmt.Sprintf("Training scaling: %d replicas data-parallel, width-%d fused", replicas, fused)
	}
	return Result{
		ID:    "train",
		Title: title,
		Text:  text.String(), CSV: csv.String(),
	}, bench, nil
}

// TrainPhases is the training-loop phase-telemetry report
// (`fathom train -trace`): per workload it trains the same warmup +
// timed schedule as TrainScaling, then dumps the per-step
// sample/grad/reduce/apply wall times from the trainer's phase ring —
// the step-level breakdown behind the aggregate Timing sums, which is
// where stragglers, warmup cliffs, and allocator stalls show up.
// With fused > 0 the fused array's phase log follows the data-parallel
// one, so the two execution strategies' step anatomies sit side by
// side.
func TrainPhases(o Options, replicas, chunks, intraop, fused int, names []string) (Result, error) {
	o = o.withDefaults()
	if replicas < 1 {
		replicas = 1
	}
	if chunks < 1 {
		chunks = 4
	}
	if intraop < 1 {
		intraop = 1
	}
	if len(names) == 0 {
		names = core.Names()
	}
	var text strings.Builder
	fmt.Fprintf(&text, "training phase telemetry: %d warmup + %d timed steps, %d chunks/step, %d replicas, intra-op %d\n",
		o.Warmup, o.Steps, chunks, replicas, intraop)
	text.WriteString("phases: sample (input synthesis, included in grad), grad (forward+backward run), reduce (gradient averaging), apply (optimizer)\n")
	for _, name := range names {
		name = strings.TrimSpace(name)
		tr, err := dist.New(name, dist.Options{
			Replicas: replicas, Chunks: chunks,
			Preset: o.Preset, Seed: o.Seed, IntraOpWorkers: intraop,
		})
		if err != nil {
			return Result{}, fmt.Errorf("train -trace %s: %w", name, err)
		}
		if _, err := tr.Train(o.Warmup + o.Steps); err != nil {
			tr.Close()
			return Result{}, fmt.Errorf("train -trace %s: %w", name, err)
		}
		phases := tr.PhaseLog()
		tr.Close()
		fmt.Fprintf(&text, "\n%s (dist, %d replicas):\n", name, replicas)
		telemetry.WritePhaseTable(&text, phases)
		if fused > 0 {
			arr, err := fuse.New(name, fuse.Options{
				Width: fused, Chunks: chunks,
				Preset: o.Preset, Seed: o.Seed, IntraOpWorkers: intraop,
			})
			if err != nil {
				return Result{}, fmt.Errorf("train -trace %s fused=%d: %w", name, fused, err)
			}
			if err := arr.Train(o.Warmup + o.Steps); err != nil {
				arr.Close()
				return Result{}, fmt.Errorf("train -trace %s fused=%d: %w", name, fused, err)
			}
			fphases := arr.PhaseLog()
			arr.Close()
			fmt.Fprintf(&text, "\n%s (fused, width %d):\n", name, fused)
			telemetry.WritePhaseTable(&text, fphases)
		}
	}
	return Result{
		ID:    "train-phases",
		Title: fmt.Sprintf("Training-loop phase telemetry at %d replicas", replicas),
		Text:  text.String(),
	}, nil
}
