package experiments

import (
	"strconv"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"

	_ "repro/internal/models/all"
)

// tinyOpts keeps experiment tests fast.
func tinyOpts() Options {
	return Options{Preset: core.PresetTiny, Steps: 2, Warmup: 1, Seed: 1}
}

func TestWorkloadsOrder(t *testing.T) {
	w := Workloads()
	if len(w) != 8 || w[0] != "seq2seq" || w[7] != "deepq" {
		t.Fatalf("figure order wrong: %v", w)
	}
}

func TestTable1(t *testing.T) {
	r := Table1()
	if r.ID != "table1" || !strings.Contains(r.Text, "Fathom") {
		t.Fatalf("table1: %+v", r.ID)
	}
	if !strings.Contains(r.CSV, "feature,") {
		t.Fatal("table1 CSV header missing")
	}
}

func TestTable2ListsAllModels(t *testing.T) {
	r := Table2()
	for _, name := range Workloads() {
		if !strings.Contains(r.Text, name) {
			t.Fatalf("table2 missing %s", name)
		}
	}
	if len(strings.Split(strings.TrimSpace(r.CSV), "\n")) != 9 { // header + 8
		t.Fatalf("table2 CSV should have 9 lines:\n%s", r.CSV)
	}
}

func TestProfileSuiteCoversAllModels(t *testing.T) {
	rs, err := ProfileSuite(tinyOpts(), core.ModeTraining)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 8 {
		t.Fatalf("suite should have 8 results, got %d", len(rs))
	}
	for name, res := range rs {
		if res.Profile.Total == 0 {
			t.Fatalf("%s profile is empty", name)
		}
	}
}

func TestFig1Stationarity(t *testing.T) {
	r, err := Fig1(Options{Preset: core.PresetTiny, Steps: 16, Warmup: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(r.Text, "CoV") || !strings.Contains(r.CSV, "op,samples") {
		t.Fatalf("fig1 rendering incomplete:\n%s", r.Text)
	}
}

func TestFig2CumulativeCurves(t *testing.T) {
	rs, err := ProfileSuite(tinyOpts(), core.ModeTraining)
	if err != nil {
		t.Fatal(err)
	}
	r := Fig2From(rs)
	if !strings.Contains(r.Text, "90%") {
		t.Fatalf("fig2 text:\n%s", r.Text)
	}
	// CSV rows: model,rank,op,cumulative with final cumulative ≈ 1.
	if !strings.Contains(r.CSV, "model,rank,op,cumulative") {
		t.Fatal("fig2 CSV header")
	}
}

func TestFig3RowsSumNear100(t *testing.T) {
	rs, err := ProfileSuite(tinyOpts(), core.ModeTraining)
	if err != nil {
		t.Fatal(err)
	}
	r := Fig3From(rs)
	for _, name := range Workloads() {
		fr := rs[name].Profile.ClassFractions()
		var sum float64
		for _, f := range fr {
			sum += f
		}
		if sum < 0.999 || sum > 1.001 {
			t.Fatalf("%s class fractions sum to %v", name, sum)
		}
	}
	if !strings.Contains(r.Text, "A=Matrix Operations") {
		t.Fatal("fig3 legend missing")
	}
}

func TestFig4DendrogramHasAllLabels(t *testing.T) {
	rs, err := ProfileSuite(tinyOpts(), core.ModeTraining)
	if err != nil {
		t.Fatal(err)
	}
	r := Fig4From(rs)
	for _, name := range Workloads() {
		if !strings.Contains(r.Text, name) {
			t.Fatalf("fig4 missing %s:\n%s", name, r.Text)
		}
	}
	if !strings.Contains(r.CSV, "merge,a,b,distance") {
		t.Fatal("fig4 CSV header")
	}
}

func TestFig5TrainVsInference(t *testing.T) {
	if testing.Short() {
		t.Skip("fig5 runs 32 configurations")
	}
	r, err := Fig5(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	// Every model must show inference ≤ training on CPU (column 2
	// normalized ≤ 1) — checked via the CSV.
	lines := strings.Split(strings.TrimSpace(r.CSV), "\n")[1:]
	if len(lines) != 8*4 {
		t.Fatalf("fig5 CSV should have 32 rows, got %d", len(lines))
	}
	// At the tiny preset only the compute-dense conv nets are
	// guaranteed to beat the GPU's launch overhead; the skinny-tensor
	// workloads legitimately may not (the paper's own point about
	// profile skew governing GPU benefit).
	gpuMustWin := map[string]bool{"alexnet": true, "vgg": true, "deepq": true}
	for _, line := range lines {
		f := strings.Split(line, ",")
		if len(f) != 4 {
			t.Fatalf("fig5 CSV row %q", line)
		}
		// The CPU columns are measured timings; on a loaded or
		// single-core CI host a tiny-preset inference step can
		// spuriously measure a little above its training step, so the
		// inference≤training invariant gets a noise margin. The GPU
		// column is the deterministic roofline model and stays strict.
		if strings.Contains(f[1], "inference_cpu") && !lessThan(f[3], 1.3) {
			t.Errorf("%s: CPU inference (%s× training) should not exceed CPU training", f[0], f[3])
		}
		if strings.Contains(f[1], "training_gpu") && gpuMustWin[f[0]] && !lessThan(f[3], 1.0) {
			t.Errorf("%s: modeled GPU training should beat CPU training", f[0])
		}
	}
}

func lessThan(s string, bound float64) bool {
	v, err := strconv.ParseFloat(s, 64)
	return err == nil && v < bound
}

func TestFig6ScalingShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("fig6 sweeps worker counts")
	}
	r, err := Fig6(tinyOpts(), "memnet")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(r.Text, "1 thr") || !strings.Contains(r.Text, "8 thr") {
		t.Fatalf("fig6 missing worker columns:\n%s", r.Text)
	}
	if !strings.Contains(r.CSV, "t1_ns") || !strings.Contains(r.CSV, "t8_ns") {
		t.Fatal("fig6 CSV columns")
	}
}

func TestOverheadReportsAllModels(t *testing.T) {
	r, err := Overhead(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range Workloads() {
		if !strings.Contains(r.Text, name) {
			t.Fatalf("overhead missing %s", name)
		}
	}
}

// TestSuiteClassStructure pins the qualitative Figure-3 claims at the
// tiny preset: convolution dominates the conv nets; it is absent from
// the non-convolutional workloads.
func TestSuiteClassStructure(t *testing.T) {
	rs, err := ProfileSuite(tinyOpts(), core.ModeTraining)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"residual", "vgg", "alexnet", "deepq"} {
		fr := rs[name].Profile.ClassFractions()
		if fr[graph.ClassConv] < 0.3 {
			t.Errorf("%s should be convolution-heavy, got %.2f", name, fr[graph.ClassConv])
		}
	}
	for _, name := range []string{"seq2seq", "memnet", "speech", "autoenc"} {
		fr := rs[name].Profile.ClassFractions()
		if fr[graph.ClassConv] > 0.001 {
			t.Errorf("%s should contain no convolution, got %.3f", name, fr[graph.ClassConv])
		}
	}
}

func TestAblation(t *testing.T) {
	r, err := Ablation(Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"optimizer", "fused Softmax", "BatchMatMul", "CSE"} {
		if !strings.Contains(r.Text, want) {
			t.Fatalf("ablation missing %q:\n%s", want, r.Text)
		}
	}
	lines := strings.Split(strings.TrimSpace(r.CSV), "\n")
	if len(lines) != 7 { // header + 3 ablations × 2 variants
		t.Fatalf("ablation CSV rows = %d", len(lines))
	}
}

// TestTrainScaling pins the train command's Result shape: the CSV
// carries the scaling and fusion columns, the achievable bound stays
// within [1, replicas], both workloads' loss trajectories are
// bit-identical across replica counts AND across fused trainees (no
// WARNING row), the fused throughput columns are live, and the
// BENCH_train.json payload mirrors the rows.
func TestTrainScaling(t *testing.T) {
	r, bench, err := TrainScaling(tinyOpts(), 2, 4, 1, 2, []string{"autoenc", "memnet"})
	if err != nil {
		t.Fatal(err)
	}
	if r.ID != "train" {
		t.Fatalf("ID = %q", r.ID)
	}
	if strings.Contains(r.Text, "WARNING") {
		t.Fatalf("train scaling reports a determinism violation:\n%s", r.Text)
	}
	lines := strings.Split(strings.TrimSpace(r.CSV), "\n")
	if lines[0] != "workload,replicas,chunks,global_batch,steps,final_loss,serial_steps_per_s,parallel_steps_per_s,achieved,achievable,bit_identical,fused_width,fused_trainee_steps_per_s,fused_speedup,fused_identical" {
		t.Fatalf("train CSV header %q", lines[0])
	}
	if len(lines) != 1+2 {
		t.Fatalf("train CSV rows = %d", len(lines))
	}
	for _, line := range lines[1:] {
		f := strings.Split(line, ",")
		if f[10] != "true" {
			t.Errorf("%s: loss trajectory not bit-identical across replica counts", f[0])
		}
		bound, _ := strconv.ParseFloat(f[9], 64)
		if bound < 1 || bound > 2.0001 {
			t.Errorf("%s: achievable %v outside [1, replicas]", f[0], bound)
		}
		if f[11] != "2" || f[14] != "true" {
			t.Errorf("%s: fused columns width=%s identical=%s, want 2/true", f[0], f[11], f[14])
		}
		if rate, _ := strconv.ParseFloat(f[12], 64); rate <= 0 {
			t.Errorf("%s: fused trainee rate %v must be positive", f[0], rate)
		}
	}
	if bench == nil || len(bench.Workloads) != 2 || bench.FusedWidth != 2 {
		t.Fatalf("bench payload = %+v", bench)
	}
	for _, row := range bench.Workloads {
		if !row.BitIdentical || !row.FusedIdentical || row.FusedTraineeStepsPerS <= 0 {
			t.Errorf("bench row %+v: identity or fused throughput broken", row)
		}
	}
}

// TestProfileParallel pins the profile command's Result shape: all
// workloads present, the CSV carries both parallelism axes, and the
// inter-op columns respect achieved ≤ achievable.
func TestProfileParallel(t *testing.T) {
	if testing.Short() {
		t.Skip("profile runs 4 configurations per workload")
	}
	r, err := ProfileParallel(tinyOpts(), core.ModeTraining, 4, 2, nil, "")
	if err != nil {
		t.Fatal(err)
	}
	if r.ID != "profile" {
		t.Fatalf("ID = %q", r.ID)
	}
	for _, name := range Workloads() {
		if !strings.Contains(r.Text, name) {
			t.Fatalf("profile missing %s", name)
		}
	}
	lines := strings.Split(strings.TrimSpace(r.CSV), "\n")
	if lines[0] != "workload,ops_per_step,serial_ns,critpath_ns,makespan_ns,achieved,achievable,intraop_modeled,intraop_measured,interop,intraop" {
		t.Fatalf("profile CSV header %q", lines[0])
	}
	if len(lines) != 1+8 {
		t.Fatalf("profile CSV rows = %d", len(lines))
	}
	for _, line := range lines[1:] {
		f := strings.Split(line, ",")
		ach, _ := strconv.ParseFloat(f[5], 64)
		bound, _ := strconv.ParseFloat(f[6], 64)
		// Small tolerance: both are ratios of independently rounded
		// per-step sums.
		if ach > bound*1.02 {
			t.Errorf("%s: achieved %v exceeds achievable %v", f[0], ach, bound)
		}
		if f[9] != "4" || f[10] != "2" {
			t.Errorf("%s: width columns %v,%v want 4,2", f[0], f[9], f[10])
		}
	}
}
