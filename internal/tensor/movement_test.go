package tensor

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTranspose2D(t *testing.T) {
	p := NewPool(1)
	in := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	out, err := Transpose(p, in, []int{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if !SameShape(out.Shape(), []int{3, 2}) {
		t.Fatalf("shape %v", out.Shape())
	}
	if out.At(0, 1) != 4 || out.At(2, 0) != 3 {
		t.Fatalf("transpose values wrong: %v", out.Data())
	}
}

func TestTransposeGeneralPerm(t *testing.T) {
	p := NewPool(1)
	rng := rand.New(rand.NewSource(11))
	in := RandNormal(rng, 0, 1, 2, 3, 4)
	out, err := Transpose(p, in, []int{2, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if !SameShape(out.Shape(), []int{4, 2, 3}) {
		t.Fatalf("shape %v", out.Shape())
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			for k := 0; k < 4; k++ {
				if out.At(k, i, j) != in.At(i, j, k) {
					t.Fatal("permuted element mismatch")
				}
			}
		}
	}
}

func TestTransposeBadPerm(t *testing.T) {
	p := NewPool(1)
	if _, err := Transpose(p, New(2, 2), []int{0, 0}); err == nil {
		t.Fatal("expected bad-perm error")
	}
	if _, err := Transpose(p, New(2, 2), []int{0}); err == nil {
		t.Fatal("expected rank error")
	}
}

// Property: transposing twice with the inverse permutation restores
// the original tensor.
func TestTransposeInvolutionQuick(t *testing.T) {
	p := NewPool(1)
	rng := rand.New(rand.NewSource(12))
	f := func(a0, b0, c0 uint8) bool {
		a, b, c := int(a0%3)+1, int(b0%3)+1, int(c0%3)+1
		x := RandNormal(rng, 0, 1, a, b, c)
		perm := []int{2, 0, 1}
		inv := []int{1, 2, 0}
		y, err := Transpose(p, x, perm)
		if err != nil {
			return false
		}
		z, err := Transpose(p, y, inv)
		if err != nil {
			return false
		}
		return AllClose(x, z, 0, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestTile(t *testing.T) {
	p := NewPool(1)
	in := FromSlice([]float32{1, 2}, 1, 2)
	out, err := Tile(p, in, []int{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if !SameShape(out.Shape(), []int{2, 6}) {
		t.Fatalf("tile shape %v", out.Shape())
	}
	want := []float32{1, 2, 1, 2, 1, 2, 1, 2, 1, 2, 1, 2}
	for i := range want {
		if out.Data()[i] != want[i] {
			t.Fatalf("tile = %v", out.Data())
		}
	}
}

func TestTileGradReduce(t *testing.T) {
	p := NewPool(1)
	orig := []int{1, 2}
	grad := Ones(2, 6)
	g := TileGradReduce(p, grad, orig)
	if g.Data()[0] != 6 || g.Data()[1] != 6 {
		t.Fatalf("tile grad = %v", g.Data())
	}
}

// Property: Tile then TileGradReduce with all-ones grad multiplies each
// element count by the product of multiples.
func TestTileAdjointQuick(t *testing.T) {
	p := NewPool(1)
	rng := rand.New(rand.NewSource(13))
	f := func(m0, n0 uint8) bool {
		m, n := int(m0%3)+1, int(n0%3)+1
		x := RandNormal(rng, 0, 1, 2, 3)
		tiled, err := Tile(p, x, []int{m, n})
		if err != nil {
			return false
		}
		back := TileGradReduce(p, Ones(tiled.Shape()...), x.Shape())
		for _, v := range back.Data() {
			if v != float32(m*n) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestConcatAxis0And1(t *testing.T) {
	p := NewPool(1)
	a := FromSlice([]float32{1, 2, 3, 4}, 2, 2)
	b := FromSlice([]float32{5, 6}, 1, 2)
	out, err := Concat(p, 0, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !SameShape(out.Shape(), []int{3, 2}) || out.At(2, 1) != 6 {
		t.Fatalf("concat0 = %v %v", out.Shape(), out.Data())
	}
	c := FromSlice([]float32{7, 8}, 2, 1)
	out1, err := Concat(p, 1, a, c)
	if err != nil {
		t.Fatal(err)
	}
	if !SameShape(out1.Shape(), []int{2, 3}) || out1.At(0, 2) != 7 || out1.At(1, 2) != 8 {
		t.Fatalf("concat1 = %v %v", out1.Shape(), out1.Data())
	}
}

func TestConcatErrors(t *testing.T) {
	p := NewPool(1)
	if _, err := Concat(p, 0); err == nil {
		t.Fatal("expected empty-input error")
	}
	if _, err := Concat(p, 0, New(2, 2), New(2, 3)); err == nil {
		t.Fatal("expected shape mismatch error")
	}
	if _, err := Concat(p, 5, New(2, 2)); err == nil {
		t.Fatal("expected axis error")
	}
}

func TestSliceTensor(t *testing.T) {
	p := NewPool(1)
	in := FromSlice([]float32{1, 2, 3, 4, 5, 6, 7, 8, 9}, 3, 3)
	out, err := SliceTensor(p, in, []int{1, 0}, []int{2, 2})
	if err != nil {
		t.Fatal(err)
	}
	want := []float32{4, 5, 7, 8}
	for i := range want {
		if out.Data()[i] != want[i] {
			t.Fatalf("slice = %v", out.Data())
		}
	}
	// -1 size means "rest of axis".
	out2, err := SliceTensor(p, in, []int{0, 1}, []int{-1, -1})
	if err != nil {
		t.Fatal(err)
	}
	if !SameShape(out2.Shape(), []int{3, 2}) || out2.At(0, 0) != 2 {
		t.Fatalf("slice rest = %v %v", out2.Shape(), out2.Data())
	}
}

func TestSliceOutOfBounds(t *testing.T) {
	p := NewPool(1)
	if _, err := SliceTensor(p, New(2, 2), []int{1, 1}, []int{2, 1}); err == nil {
		t.Fatal("expected bounds error")
	}
}

func TestSliceGradPadAdjoint(t *testing.T) {
	p := NewPool(1)
	grad := FromSlice([]float32{10, 20}, 1, 2)
	out := SliceGradPad(p, grad, []int{3, 3}, []int{1, 1})
	if out.At(1, 1) != 10 || out.At(1, 2) != 20 || out.At(0, 0) != 0 {
		t.Fatalf("slice grad pad = %v", out.Data())
	}
}

func TestPad(t *testing.T) {
	p := NewPool(1)
	in := FromSlice([]float32{1, 2, 3, 4}, 2, 2)
	out, err := Pad(p, in, []int{1, 0}, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if !SameShape(out.Shape(), []int{3, 3}) {
		t.Fatalf("pad shape %v", out.Shape())
	}
	if out.At(0, 0) != 0 || out.At(1, 0) != 1 || out.At(2, 1) != 4 || out.At(1, 2) != 0 {
		t.Fatalf("pad = %v", out.Data())
	}
}

func TestGatherRowsAndScatterAdd(t *testing.T) {
	p := NewPool(1)
	params := FromSlice([]float32{
		1, 2,
		3, 4,
		5, 6,
	}, 3, 2)
	idx := FromSlice([]float32{2, 0, 2}, 3)
	out, err := GatherRows(p, params, idx)
	if err != nil {
		t.Fatal(err)
	}
	want := []float32{5, 6, 1, 2, 5, 6}
	for i := range want {
		if out.Data()[i] != want[i] {
			t.Fatalf("gather = %v", out.Data())
		}
	}
	grad := Ones(3, 2)
	back := ScatterAddRows(p, grad, idx, []int{3, 2})
	// Row 2 was gathered twice → grad 2; row 0 once; row 1 never.
	if back.At(2, 0) != 2 || back.At(0, 0) != 1 || back.At(1, 0) != 0 {
		t.Fatalf("scatter = %v", back.Data())
	}
}

func TestGatherRowsOutOfRange(t *testing.T) {
	p := NewPool(1)
	if _, err := GatherRows(p, New(2, 2), FromSlice([]float32{5}, 1)); err == nil {
		t.Fatal("expected index error")
	}
}

func TestGatherRows2DIndices(t *testing.T) {
	p := NewPool(1)
	params := FromSlice([]float32{1, 2, 3, 4}, 2, 2)
	idx := FromSlice([]float32{0, 1, 1, 0}, 2, 2)
	out, err := GatherRows(p, params, idx)
	if err != nil {
		t.Fatal(err)
	}
	if !SameShape(out.Shape(), []int{2, 2, 2}) {
		t.Fatalf("gather 2d shape %v", out.Shape())
	}
	if out.At(0, 1, 0) != 3 || out.At(1, 1, 1) != 2 {
		t.Fatalf("gather 2d values %v", out.Data())
	}
}
