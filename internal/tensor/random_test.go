package tensor

import (
	"math"
	"math/rand"
	"testing"
)

func TestFillNormalStatistics(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x := New(20000)
	FillNormal(x, rng, 3, 2)
	var sum, sum2 float64
	for _, v := range x.Data() {
		sum += float64(v)
		sum2 += float64(v) * float64(v)
	}
	n := float64(x.Size())
	mean := sum / n
	std := math.Sqrt(sum2/n - mean*mean)
	if math.Abs(mean-3) > 0.1 {
		t.Fatalf("normal mean = %v want 3", mean)
	}
	if math.Abs(std-2) > 0.1 {
		t.Fatalf("normal std = %v want 2", std)
	}
}

func TestFillUniformRange(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x := RandUniform(rng, -2, 5, 5000)
	lo, hi := x.Data()[0], x.Data()[0]
	for _, v := range x.Data() {
		if v < -2 || v >= 5 {
			t.Fatalf("uniform sample %v outside [-2,5)", v)
		}
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	// With 5000 samples, the extremes should approach the bounds.
	if lo > -1.5 || hi < 4.5 {
		t.Fatalf("uniform samples poorly spread: [%v, %v]", lo, hi)
	}
}

func TestRandHelpersShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := RandNormal(rng, 0, 1, 2, 3, 4)
	if !SameShape(a.Shape(), []int{2, 3, 4}) {
		t.Fatalf("RandNormal shape %v", a.Shape())
	}
	b := RandUniform(rng, 0, 1, 7)
	if b.Size() != 7 {
		t.Fatalf("RandUniform size %d", b.Size())
	}
}
