// Package tensor provides the dense numeric substrate for the Fathom
// reproduction: a row-major float32 tensor, broadcasting, the compute
// kernels that back the operation library (matrix multiplication,
// convolution, pooling, reductions), and a virtual thread pool that
// models intra-operation parallelism (see Pool).
package tensor

import (
	"fmt"
	"math"
	"strings"
)

// Tensor is a dense, row-major float32 array with an explicit shape.
// A scalar is represented by an empty shape and a single element.
type Tensor struct {
	shape []int
	data  []float32
}

// New returns a zero-filled tensor with the given shape.
// It panics if any dimension is negative.
func New(shape ...int) *Tensor {
	n := checkedSize(shape)
	return &Tensor{shape: append([]int(nil), shape...), data: make([]float32, n)}
}

// FromSlice wraps data in a tensor of the given shape. The slice is not
// copied; it must have exactly Size(shape) elements.
func FromSlice(data []float32, shape ...int) *Tensor {
	n := checkedSize(shape)
	if len(data) != n {
		panic(fmt.Sprintf("tensor: data length %d does not match shape %v (size %d)", len(data), shape, n))
	}
	return &Tensor{shape: append([]int(nil), shape...), data: data}
}

// Scalar returns a 0-dimensional tensor holding v.
func Scalar(v float32) *Tensor {
	return &Tensor{shape: []int{}, data: []float32{v}}
}

// Full returns a tensor with every element set to v.
func Full(v float32, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.data {
		t.data[i] = v
	}
	return t
}

// Ones returns a tensor of ones.
func Ones(shape ...int) *Tensor { return Full(1, shape...) }

func checkedSize(shape []int) int {
	n := 1
	for _, d := range shape {
		if d < 0 {
			panic(fmt.Sprintf("tensor: negative dimension in shape %v", shape))
		}
		n *= d
	}
	return n
}

// SizeOf returns the element count of a shape.
func SizeOf(shape []int) int {
	n := 1
	for _, d := range shape {
		n *= d
	}
	return n
}

// SameShape reports whether two shapes are identical.
func SameShape(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// ShapeString formats a shape like "[4 8 8 3]".
func ShapeString(s []int) string {
	parts := make([]string, len(s))
	for i, d := range s {
		parts[i] = fmt.Sprint(d)
	}
	return "[" + strings.Join(parts, " ") + "]"
}

// Shape returns the tensor's shape. The returned slice must not be
// modified.
func (t *Tensor) Shape() []int { return t.shape }

// Data returns the underlying storage. Mutations are visible to every
// view of the tensor.
func (t *Tensor) Data() []float32 { return t.data }

// Size returns the number of elements.
func (t *Tensor) Size() int { return len(t.data) }

// Rank returns the number of dimensions.
func (t *Tensor) Rank() int { return len(t.shape) }

// Dim returns the length of dimension i.
func (t *Tensor) Dim(i int) int { return t.shape[i] }

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	d := make([]float32, len(t.data))
	copy(d, t.data)
	return &Tensor{shape: append([]int(nil), t.shape...), data: d}
}

// Reshape returns a view with a new shape sharing the same storage.
// The new shape must have the same element count.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	if SizeOf(shape) != len(t.data) {
		panic(fmt.Sprintf("tensor: cannot reshape %v (size %d) to %v", t.shape, len(t.data), shape))
	}
	return &Tensor{shape: append([]int(nil), shape...), data: t.data}
}

// Fill sets every element to v.
func (t *Tensor) Fill(v float32) {
	for i := range t.data {
		t.data[i] = v
	}
}

// Zero sets every element to zero.
func (t *Tensor) Zero() { t.Fill(0) }

// At returns the element at the given multi-index.
func (t *Tensor) At(idx ...int) float32 { return t.data[t.offset(idx)] }

// Set stores v at the given multi-index.
func (t *Tensor) Set(v float32, idx ...int) { t.data[t.offset(idx)] = v }

func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.shape) {
		panic(fmt.Sprintf("tensor: index %v does not match rank of shape %v", idx, t.shape))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.shape[i] {
			panic(fmt.Sprintf("tensor: index %v out of bounds for shape %v", idx, t.shape))
		}
		off = off*t.shape[i] + x
	}
	return off
}

// Strides returns the row-major strides of the shape.
func Strides(shape []int) []int {
	s := make([]int, len(shape))
	acc := 1
	for i := len(shape) - 1; i >= 0; i-- {
		s[i] = acc
		acc *= shape[i]
	}
	return s
}

// String renders small tensors fully and large ones as a summary.
func (t *Tensor) String() string {
	if len(t.data) <= 16 {
		return fmt.Sprintf("Tensor%s%v", ShapeString(t.shape), t.data)
	}
	return fmt.Sprintf("Tensor%s[%g %g ... %g]", ShapeString(t.shape), t.data[0], t.data[1], t.data[len(t.data)-1])
}

// AllClose reports whether a and b have identical shapes and every pair
// of elements differs by at most atol + rtol*|b|.
func AllClose(a, b *Tensor, rtol, atol float64) bool {
	if !SameShape(a.shape, b.shape) {
		return false
	}
	for i := range a.data {
		x, y := float64(a.data[i]), float64(b.data[i])
		if math.IsNaN(x) || math.IsNaN(y) {
			return false
		}
		if math.Abs(x-y) > atol+rtol*math.Abs(y) {
			return false
		}
	}
	return true
}

// MaxAbsDiff returns the largest absolute elementwise difference
// between two same-shaped tensors.
func MaxAbsDiff(a, b *Tensor) float64 {
	if !SameShape(a.shape, b.shape) {
		panic("tensor: MaxAbsDiff shape mismatch")
	}
	m := 0.0
	for i := range a.data {
		d := math.Abs(float64(a.data[i]) - float64(b.data[i]))
		if d > m {
			m = d
		}
	}
	return m
}
