package tensor

import (
	"testing"
	"time"
)

func TestPoolSerialWhenOneWorker(t *testing.T) {
	p := NewPool(1)
	var calls int
	p.For(100, 1, func(lo, hi int) {
		calls++
		if lo != 0 || hi != 100 {
			t.Fatalf("one worker should get a single chunk, got [%d,%d)", lo, hi)
		}
	})
	if calls != 1 {
		t.Fatalf("expected 1 call, got %d", calls)
	}
	if p.Regions() != 0 {
		t.Fatal("serial execution must not count as a split region")
	}
}

func TestPoolCoversRangeExactlyOnce(t *testing.T) {
	for _, w := range []int{1, 2, 3, 4, 8} {
		p := NewPool(w)
		seen := make([]int, 1000)
		p.For(1000, 10, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				seen[i]++
			}
		})
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("workers=%d index %d covered %d times", w, i, c)
			}
		}
	}
}

func TestPoolRefusesToSplitSmallLoops(t *testing.T) {
	p := NewPool(8)
	p.ResetOp()
	calls := 0
	p.For(10, 100, func(lo, hi int) { calls++ })
	if calls != 1 {
		t.Fatalf("small loop should not split, got %d chunks", calls)
	}
	if p.Regions() != 0 {
		t.Fatal("small loop must not count as parallel region")
	}
}

func TestPoolChunkCountRespectsGrain(t *testing.T) {
	p := NewPool(8)
	p.ResetOp()
	chunks := 0
	// 40 items, grain 10 → at most 4 chunks even with 8 workers.
	p.For(40, 10, func(lo, hi int) {
		chunks++
		if hi-lo < 10 {
			t.Fatalf("chunk smaller than grain: [%d,%d)", lo, hi)
		}
	})
	if chunks != 4 {
		t.Fatalf("expected 4 chunks, got %d", chunks)
	}
}

func TestPoolSimulatedSpeedup(t *testing.T) {
	// A busy-loop workload long enough to measure. The simulated time
	// with w workers should be roughly serial/w.
	work := func(lo, hi int) {
		s := 0.0
		for i := lo; i < hi; i++ {
			for j := 0; j < 2000; j++ {
				s += float64(i*j) * 1e-9
			}
		}
		_ = s
	}
	measure := func(w int) time.Duration {
		p := NewPool(w)
		p.ResetOp()
		t0 := time.Now()
		p.For(400, 1, work)
		return p.OpTime(time.Since(t0))
	}
	t1 := measure(1)
	t4 := measure(4)
	if t4 >= t1 {
		t.Fatalf("4 workers should model speedup: t1=%v t4=%v", t1, t4)
	}
	// Ideal is 4×; allow generous slack because chunk measurements on
	// a loaded single-core host are noisy.
	ratio := float64(t1) / float64(t4)
	if ratio < 1.5 || ratio > 12 {
		t.Fatalf("speedup ratio %v out of plausible range for 4 workers", ratio)
	}
}

func TestPoolOpTimeNeverNegative(t *testing.T) {
	p := NewPool(4)
	p.ResetOp()
	p.For(1000, 1, func(lo, hi int) {})
	if d := p.OpTime(0); d < 0 {
		t.Fatalf("OpTime must clamp at zero, got %v", d)
	}
}

func TestPoolSetWorkers(t *testing.T) {
	p := NewPool(0)
	if p.Workers() != 1 {
		t.Fatal("worker floor is 1")
	}
	p.SetWorkers(6)
	if p.Workers() != 6 {
		t.Fatal("SetWorkers")
	}
	p.SetWorkers(-3)
	if p.Workers() != 1 {
		t.Fatal("SetWorkers floor")
	}
}

// TestPoolChunkAccounting sweeps (n, grain, workers) combinations and
// asserts the chunking invariants around the n/grain clamp: every
// index covered exactly once, no empty chunk ever invokes fn, and when
// the loop splits every chunk holds at least grain iterations. Small n
// close to grain*2 exercises the clamped-boundary edge case.
func TestPoolChunkAccounting(t *testing.T) {
	for _, w := range []int{1, 2, 3, 4, 7, 8, 16} {
		for _, grain := range []int{1, 2, 3, 5, 10, 100} {
			for n := 0; n <= 64; n++ {
				p := NewPool(w)
				p.ResetOp()
				seen := make([]int, n)
				chunks := 0
				p.For(n, grain, func(lo, hi int) {
					chunks++
					if hi <= lo {
						t.Fatalf("w=%d grain=%d n=%d: empty chunk [%d,%d)", w, grain, n, lo, hi)
					}
					for i := lo; i < hi; i++ {
						seen[i]++
					}
				})
				for i, c := range seen {
					if c != 1 {
						t.Fatalf("w=%d grain=%d n=%d: index %d covered %d times", w, grain, n, i, c)
					}
				}
				if p.Regions() > 0 && chunks < 2 {
					t.Fatalf("w=%d grain=%d n=%d: split region with %d chunks", w, grain, n, chunks)
				}
			}
		}
	}
}

func TestPoolScratchBufPersistsAndGrows(t *testing.T) {
	p := NewPool(2)
	b1 := p.scratchBuf(scratchPackA, 100)
	if len(b1) != 100 {
		t.Fatalf("scratch length %d, want 100", len(b1))
	}
	b1[0] = 42
	b2 := p.scratchBuf(scratchPackA, 50)
	if len(b2) != 50 || b2[0] != 42 {
		t.Fatal("scratch must be reused, not reallocated, when shrinking")
	}
	b3 := p.scratchBuf(scratchPackA, 200)
	if len(b3) != 200 {
		t.Fatalf("scratch length %d, want 200", len(b3))
	}
	// Distinct slots must not share storage.
	a := p.scratchBuf(scratchPackA, 8)
	b := p.scratchBuf(scratchPackB, 8)
	a[0], b[0] = 1, 2
	if a[0] != 1 {
		t.Fatal("scratch slots must be independent")
	}
}

func TestPoolZeroIterations(t *testing.T) {
	p := NewPool(4)
	called := false
	p.For(0, 1, func(lo, hi int) { called = true })
	if called {
		t.Fatal("For(0) must not invoke fn")
	}
}
