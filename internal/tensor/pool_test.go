package tensor

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/sched"
)

func TestPoolSerialWhenOneWorker(t *testing.T) {
	p := NewPool(1)
	var calls int
	p.For(100, 1, func(lo, hi int) {
		calls++
		if lo != 0 || hi != 100 {
			t.Fatalf("one worker should get a single chunk, got [%d,%d)", lo, hi)
		}
	})
	if calls != 1 {
		t.Fatalf("expected 1 call, got %d", calls)
	}
	if p.Regions() != 0 {
		t.Fatal("serial execution must not count as a split region")
	}
}

func TestPoolCoversRangeExactlyOnce(t *testing.T) {
	for _, w := range []int{1, 2, 3, 4, 8} {
		p := NewPool(w)
		seen := make([]int, 1000)
		p.For(1000, 10, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				seen[i]++
			}
		})
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("workers=%d index %d covered %d times", w, i, c)
			}
		}
	}
}

func TestPoolRefusesToSplitSmallLoops(t *testing.T) {
	p := NewPool(8)
	p.ResetOp()
	calls := 0
	p.For(10, 100, func(lo, hi int) { calls++ })
	if calls != 1 {
		t.Fatalf("small loop should not split, got %d chunks", calls)
	}
	if p.Regions() != 0 {
		t.Fatal("small loop must not count as parallel region")
	}
}

func TestPoolChunkCountRespectsGrain(t *testing.T) {
	p := NewPool(8)
	p.ResetOp()
	chunks := 0
	// 40 items, grain 10 → at most 4 chunks even with 8 workers.
	p.For(40, 10, func(lo, hi int) {
		chunks++
		if hi-lo < 10 {
			t.Fatalf("chunk smaller than grain: [%d,%d)", lo, hi)
		}
	})
	if chunks != 4 {
		t.Fatalf("expected 4 chunks, got %d", chunks)
	}
}

func TestPoolSimulatedSpeedup(t *testing.T) {
	// A busy-loop workload long enough to measure. The simulated time
	// with w workers should be roughly serial/w.
	work := func(lo, hi int) {
		s := 0.0
		for i := lo; i < hi; i++ {
			for j := 0; j < 2000; j++ {
				s += float64(i*j) * 1e-9
			}
		}
		_ = s
	}
	measure := func(w int) time.Duration {
		p := NewPool(w)
		p.ResetOp()
		t0 := time.Now()
		p.For(400, 1, work)
		return p.OpTime(time.Since(t0))
	}
	t1 := measure(1)
	t4 := measure(4)
	if t4 >= t1 {
		t.Fatalf("4 workers should model speedup: t1=%v t4=%v", t1, t4)
	}
	// Ideal is 4×; allow generous slack because chunk measurements on
	// a loaded single-core host are noisy.
	ratio := float64(t1) / float64(t4)
	if ratio < 1.5 || ratio > 12 {
		t.Fatalf("speedup ratio %v out of plausible range for 4 workers", ratio)
	}
}

func TestPoolOpTimeNeverNegative(t *testing.T) {
	p := NewPool(4)
	p.ResetOp()
	p.For(1000, 1, func(lo, hi int) {})
	if d := p.OpTime(0); d < 0 {
		t.Fatalf("OpTime must clamp at zero, got %v", d)
	}
}

func TestPoolSetWorkers(t *testing.T) {
	p := NewPool(0)
	if p.Workers() != 1 {
		t.Fatal("worker floor is 1")
	}
	p.SetWorkers(6)
	if p.Workers() != 6 {
		t.Fatal("SetWorkers")
	}
	p.SetWorkers(-3)
	if p.Workers() != 1 {
		t.Fatal("SetWorkers floor")
	}
}

// TestPoolChunkAccounting sweeps (n, grain, workers) combinations and
// asserts the chunking invariants around the n/grain clamp: every
// index covered exactly once, no empty chunk ever invokes fn, and when
// the loop splits every chunk holds at least grain iterations. Small n
// close to grain*2 exercises the clamped-boundary edge case.
func TestPoolChunkAccounting(t *testing.T) {
	for _, w := range []int{1, 2, 3, 4, 7, 8, 16} {
		for _, grain := range []int{1, 2, 3, 5, 10, 100} {
			for n := 0; n <= 64; n++ {
				p := NewPool(w)
				p.ResetOp()
				seen := make([]int, n)
				chunks := 0
				p.For(n, grain, func(lo, hi int) {
					chunks++
					if hi <= lo {
						t.Fatalf("w=%d grain=%d n=%d: empty chunk [%d,%d)", w, grain, n, lo, hi)
					}
					for i := lo; i < hi; i++ {
						seen[i]++
					}
				})
				for i, c := range seen {
					if c != 1 {
						t.Fatalf("w=%d grain=%d n=%d: index %d covered %d times", w, grain, n, i, c)
					}
				}
				if p.Regions() > 0 && chunks < 2 {
					t.Fatalf("w=%d grain=%d n=%d: split region with %d chunks", w, grain, n, chunks)
				}
			}
		}
	}
}

func TestPoolScratchBufPersistsAndGrows(t *testing.T) {
	p := NewPool(2)
	b1 := p.scratchBuf(scratchPackA, 100)
	if len(b1) != 100 {
		t.Fatalf("scratch length %d, want 100", len(b1))
	}
	b1[0] = 42
	b2 := p.scratchBuf(scratchPackA, 50)
	if len(b2) != 50 || b2[0] != 42 {
		t.Fatal("scratch must be reused, not reallocated, when shrinking")
	}
	b3 := p.scratchBuf(scratchPackA, 200)
	if len(b3) != 200 {
		t.Fatalf("scratch length %d, want 200", len(b3))
	}
	// Distinct slots must not share storage.
	a := p.scratchBuf(scratchPackA, 8)
	b := p.scratchBuf(scratchPackB, 8)
	a[0], b[0] = 1, 2
	if a[0] != 1 {
		t.Fatal("scratch slots must be independent")
	}
}

func TestPoolZeroIterations(t *testing.T) {
	p := NewPool(4)
	called := false
	p.For(0, 1, func(lo, hi int) { called = true })
	if called {
		t.Fatal("For(0) must not invoke fn")
	}
}

// ---- real parallel strategy (shared sched pool) ----

func newTestExec(n int) *sched.Pool { return sched.New(n) }

func TestParallelPoolCoversRangeExactlyOnce(t *testing.T) {
	ex := newTestExec(4)
	defer ex.Close()
	for _, w := range []int{1, 2, 4, 8} {
		p := NewParallelPool(w, ex)
		var seen [1000]int32
		p.For(1000, 10, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&seen[i], 1)
			}
		})
		for i := range seen {
			if seen[i] != 1 {
				t.Fatalf("workers=%d index %d covered %d times", w, i, seen[i])
			}
		}
	}
}

// TestParallelPoolBitIdenticalToSerial: an index-pure region produces
// the same bits at every width and strategy.
func TestParallelPoolBitIdenticalToSerial(t *testing.T) {
	ex := newTestExec(4)
	defer ex.Close()
	rng := rand.New(rand.NewSource(7))
	in := make([]float32, 5000)
	for i := range in {
		in[i] = rng.Float32()*2 - 1
	}
	ref := make([]float32, len(in))
	NewPool(1).For(len(in), 64, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ref[i] = in[i]*in[i] + 0.5
		}
	})
	for _, w := range []int{2, 4, 8} {
		got := make([]float32, len(in))
		NewParallelPool(w, ex).For(len(in), 64, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				got[i] = in[i]*in[i] + 0.5
			}
		})
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("width %d differs at %d", w, i)
			}
		}
	}
}

// TestForSumBitIdenticalAcrossWidths is the reduction half of the
// determinism contract: chunk partials combined in chunk order give
// the same float32 bits for the serial strategy at width 1, the
// modeled strategy at width 4, and the parallel strategy at any width.
func TestForSumBitIdenticalAcrossWidths(t *testing.T) {
	ex := newTestExec(4)
	defer ex.Close()
	rng := rand.New(rand.NewSource(11))
	in := make([]float32, 30000)
	for i := range in {
		in[i] = rng.Float32()*2e3 - 1e3
	}
	sum := func(p *Pool) float32 {
		return p.ForSum(len(in), 1024, func(lo, hi int) float32 {
			var s float32
			for _, v := range in[lo:hi] {
				s += v
			}
			return s
		})
	}
	want := sum(NewPool(1))
	for name, p := range map[string]*Pool{
		"serial-w4":   NewPool(4),
		"parallel-w2": NewParallelPool(2, ex),
		"parallel-w4": NewParallelPool(4, ex),
		"parallel-w8": NewParallelPool(8, ex),
	} {
		if got := sum(p); got != want {
			t.Fatalf("%s: ForSum %v != serial %v", name, got, want)
		}
	}
	// And the chunked sum is genuinely chunked: it should equal the
	// explicit chunk-ordered reference, not necessarily the linear fold.
	chunks := len(in) / 1024
	if chunks > maxRegionChunks {
		chunks = maxRegionChunks
	}
	var ref float32
	for i := 0; i < chunks; i++ {
		lo, hi := chunkBounds(len(in), chunks, i)
		var s float32
		for _, v := range in[lo:hi] {
			s += v
		}
		ref += s
	}
	if want != ref {
		t.Fatalf("ForSum %v != chunk-ordered reference %v", want, ref)
	}
}

func TestForMaxMatchesSerial(t *testing.T) {
	ex := newTestExec(4)
	defer ex.Close()
	rng := rand.New(rand.NewSource(13))
	in := make([]float32, 20000)
	for i := range in {
		in[i] = rng.Float32()
	}
	in[13777] = 9.5
	maxOf := func(p *Pool) float32 {
		return p.ForMax(len(in), 512, func(lo, hi int) float32 {
			m := in[lo]
			for _, v := range in[lo+1 : hi] {
				if v > m {
					m = v
				}
			}
			return m
		})
	}
	if got := maxOf(NewParallelPool(4, ex)); got != 9.5 {
		t.Fatalf("ForMax = %v, want 9.5", got)
	}
	if got := maxOf(NewPool(1)); got != 9.5 {
		t.Fatalf("serial ForMax = %v, want 9.5", got)
	}
}

// TestSetWorkersImmutableAfterFor pins the width-mutability fix: a
// mid-plan SetWorkers would silently skew modeled makespans, so it
// panics once any region has executed.
func TestSetWorkersImmutableAfterFor(t *testing.T) {
	p := NewPool(2)
	p.For(100, 1, func(lo, hi int) {})
	defer func() {
		if recover() == nil {
			t.Fatal("SetWorkers after a For region must panic")
		}
	}()
	p.SetWorkers(4)
}

// TestForLaneScratchIsolation: concurrent lanes own disjoint scratch.
// Each chunk stamps its lane scratch and verifies the stamp survives
// the chunk's computation — a shared buffer would be clobbered by
// whichever lane runs concurrently.
func TestForLaneScratchIsolation(t *testing.T) {
	ex := newTestExec(4)
	defer ex.Close()
	p := NewParallelPool(4, ex)
	var bad atomic.Int32
	p.ForLane(64, 1, func(lane, lo, hi int) {
		s := p.laneScratch(lane, scratchPackA, 256)
		stamp := float32(lo + 1)
		for i := range s {
			s[i] = stamp
		}
		// Simulate kernel work long enough for lanes to overlap.
		acc := float32(0)
		for i := 0; i < 20000; i++ {
			acc += float32(i)
		}
		_ = acc
		for i := range s {
			if s[i] != stamp {
				bad.Add(1)
				return
			}
		}
	})
	if bad.Load() != 0 {
		t.Fatalf("%d chunks saw their lane scratch clobbered", bad.Load())
	}
}

// TestParallelPoolPanicRethrown: a panic on a helper lane surfaces on
// the calling goroutine, after every lane joined.
func TestParallelPoolPanicRethrown(t *testing.T) {
	ex := newTestExec(4)
	defer ex.Close()
	p := NewParallelPool(4, ex)
	defer func() {
		if r := recover(); r != "boom" {
			t.Fatalf("recovered %v, want boom", r)
		}
	}()
	p.For(1000, 1, func(lo, hi int) {
		if lo > 0 {
			panic("boom")
		}
	})
	t.Fatal("For should have panicked")
}

// TestManyPoolsOneExecutor hammers a single shared executor from many
// goroutine-confined pools — the race detector checks the handoffs,
// and results must stay bit-identical to serial everywhere.
func TestManyPoolsOneExecutor(t *testing.T) {
	ex := newTestExec(3)
	defer ex.Close()
	in := make([]float32, 4096)
	for i := range in {
		in[i] = float32(i%17) * 0.25
	}
	var want float32
	{
		p := NewPool(1)
		want = p.ForSum(len(in), 128, func(lo, hi int) float32 {
			var s float32
			for _, v := range in[lo:hi] {
				s += v
			}
			return s
		})
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			p := NewParallelPool(1+g%4, ex)
			for rep := 0; rep < 50; rep++ {
				got := p.ForSum(len(in), 128, func(lo, hi int) float32 {
					var s float32
					for _, v := range in[lo:hi] {
						s += v
					}
					return s
				})
				if got != want {
					t.Errorf("goroutine %d rep %d: %v != %v", g, rep, got, want)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// BenchmarkPoolFor compares the strategies on a memory-light compute
// loop; run with -cpu 1,4 in CI to exercise both host widths.
func BenchmarkPoolFor(b *testing.B) {
	work := func(lo, hi int) {
		s := float32(0)
		for i := lo; i < hi; i++ {
			s += float32(i) * 1e-9
		}
		_ = s
	}
	b.Run("serial", func(b *testing.B) {
		p := NewPool(1)
		for i := 0; i < b.N; i++ {
			p.For(1<<16, 1024, work)
		}
	})
	b.Run("parallel4", func(b *testing.B) {
		ex := newTestExec(4)
		defer ex.Close()
		p := NewParallelPool(4, ex)
		for i := 0; i < b.N; i++ {
			p.For(1<<16, 1024, work)
		}
	})
}
