package tensor

import (
	"fmt"
	"math"
)

// This file implements the fused streaming-softmax attention kernel:
// out = softmax(Q·Kᵀ·scale)·V for a batch of G independent attention
// groups (batch × heads), all operands shaped (G, S, Dh). The naive
// chain materializes the (G, S, S) score and probability matrices —
// for sequence lengths past a few hundred that traffic dominates the
// op and makes it arena-bandwidth-bound rather than FLOP-bound. The
// fused kernel streams K and V through one per-lane score row of
// length S instead, so its working set is O(S) per lane no matter the
// sequence length.
//
// # Bit-equality contract
//
// The kernel is bit-identical to the unfused reference chain
// (BatchMatMul → scalar Mul → Softmax → BatchMatMul) at every pool
// width, because every float32 operation happens in the same order:
//
//   - the QKᵀ dot runs ascending over Dh with a single accumulator —
//     exactly the per-element accumulation order the matmul kernels
//     guarantee (see the determinism note in matmul.go);
//   - the scale multiply rounds the finished dot once, like the
//     elementwise Mul that follows the reference BatchMatMul;
//   - the softmax replays softmaxInto verbatim: running max with
//     `if v > m` seeded from element 0, exp/sum ascending, then one
//     1/sum reciprocal applied per element (so ±Inf and NaN rows
//     degenerate identically to the reference);
//   - the probability·V accumulation runs ascending over S with one
//     accumulator per output element, again matching the matmul
//     order.
//
// Rows (one per query position) are index-pure — row (g,i) writes only
// out[g,i,:] — so the pool's deterministic chunking gives bit-identical
// results at every intra-op width.

// attnGrain is the For grain for one (group, query-row) unit: each row
// costs about 2·S·Dh mul-adds for QKᵀ, S exps, and S·Dh mul-adds for
// the P·V product. Purely a function of shape, per the determinism
// contract.
func attnGrain(s, dh int) int { return 1 + 65536/(3*s*dh+1) }

// Attention computes softmax(Q·Kᵀ·scale)·V with the fused streaming
// kernel; see AttentionInto.
func Attention(p *Pool, q, k, v *Tensor, scale float32) (*Tensor, error) {
	out := New(q.shape...)
	if err := AttentionInto(p, out, q, k, v, scale); err != nil {
		return nil, err
	}
	return out, nil
}

// AttentionInto computes out = softmax(Q·Kᵀ·scale)·V for rank-3
// operands shaped (G, S, Dh) without materializing the (G, S, S)
// score matrix. out must have q's shape, is fully overwritten, and
// must not alias any input. Results are bit-identical to the unfused
// BatchMatMul/Mul/Softmax/BatchMatMul chain at every pool width.
func AttentionInto(p *Pool, out, q, k, v *Tensor, scale float32) error {
	g, s, dh, err := attentionDims(out, q, k, v)
	if err != nil {
		return err
	}
	checkNoAlias("AttentionInto", out, q, k, v)
	qd, kd, vd, od := q.data, k.data, v.data, out.data
	p.ForLane(g*s, attnGrain(s, dh), func(lane, lo, hi int) {
		// Two score rows of scratch: adjacent query rows of the same
		// group are processed as a pair so the streamed K and V rows
		// are loaded once per pair. Pairing changes only the memory
		// access interleaving — each output element keeps its own
		// single accumulator and order — so results are independent
		// of how chunk boundaries split pairs.
		scratch := p.laneScratch(lane, scratchAttn, 2*s)
		for r := lo; r < hi; {
			gi := r / s
			kg := kd[gi*s*dh : (gi+1)*s*dh]
			vg := vd[gi*s*dh : (gi+1)*s*dh]
			if r+1 < hi && (r+1)/s == gi {
				attnRowPair(scratch, qd[r*dh:(r+2)*dh], kg, vg, od[r*dh:(r+2)*dh], s, dh, scale)
				r += 2
			} else {
				attnRow(scratch[:s], qd[r*dh:(r+1)*dh], kg, vg, od[r*dh:(r+1)*dh], s, dh, scale)
				r++
			}
		}
	})
	return nil
}

// attnRow computes one query row: scores into row (length s), softmax
// in place, then the probability·V product into orow. Keys are blocked
// four at a time purely for load reuse; every score keeps a single
// ascending-Dh accumulator (the matmul per-element order) and the
// scale multiply rounds each finished dot once, like the elementwise
// Mul after the reference BatchMatMul.
func attnRow(row, qrow, kg, vg, orow []float32, s, dh int, scale float32) {
	j := 0
	for ; j+4 <= s; j += 4 {
		k0 := kg[j*dh:][:dh]
		k1 := kg[(j+1)*dh:][:dh]
		k2 := kg[(j+2)*dh:][:dh]
		k3 := kg[(j+3)*dh:][:dh]
		var d0, d1, d2, d3 float32
		for d := 0; d < dh; d++ {
			qv := qrow[d]
			d0 += qv * k0[d]
			d1 += qv * k1[d]
			d2 += qv * k2[d]
			d3 += qv * k3[d]
		}
		row[j] = d0 * scale
		row[j+1] = d1 * scale
		row[j+2] = d2 * scale
		row[j+3] = d3 * scale
	}
	for ; j < s; j++ {
		krow := kg[j*dh:][:dh]
		var dot float32
		for d := 0; d < dh; d++ {
			dot += qrow[d] * krow[d]
		}
		row[j] = dot * scale
	}

	inv := attnSoftmaxRow(row)

	// out = Σ_j p_j · v_j, ascending over j with one accumulator per
	// output element: normalize each weight first (the reference's
	// in-place `*= inv`), then accumulate — the BatchMatMul(P, V)
	// element order. The j-blocking issues the same adds in the same
	// order as a serial j loop, as separate statements so no fused
	// multiply-add can merge them.
	for d := range orow {
		orow[d] = 0
	}
	j = 0
	for ; j+4 <= s; j += 4 {
		p0 := row[j] * inv
		p1 := row[j+1] * inv
		p2 := row[j+2] * inv
		p3 := row[j+3] * inv
		v0 := vg[j*dh:][:dh]
		v1 := vg[(j+1)*dh:][:dh]
		v2 := vg[(j+2)*dh:][:dh]
		v3 := vg[(j+3)*dh:][:dh]
		for d := 0; d < dh; d++ {
			o := orow[d]
			o += p0 * v0[d]
			o += p1 * v1[d]
			o += p2 * v2[d]
			o += p3 * v3[d]
			orow[d] = o
		}
	}
	for ; j < s; j++ {
		pj := row[j] * inv
		vrow := vg[j*dh:][:dh]
		for d := 0; d < dh; d++ {
			orow[d] += pj * vrow[d]
		}
	}
}

// attnRowPair computes two adjacent query rows of one group together,
// streaming each K and V row once for both queries. qrows and orows
// hold the two rows back to back; scratch holds two score rows.
func attnRowPair(scratch, qrows, kg, vg, orows []float32, s, dh int, scale float32) {
	rowA, rowB := scratch[:s], scratch[s:2*s]
	qa, qb := qrows[:dh], qrows[dh:][:dh]
	oa, ob := orows[:dh], orows[dh:][:dh]
	j := 0
	for ; j+4 <= s; j += 4 {
		k0 := kg[j*dh:][:dh]
		k1 := kg[(j+1)*dh:][:dh]
		k2 := kg[(j+2)*dh:][:dh]
		k3 := kg[(j+3)*dh:][:dh]
		var a0, a1, a2, a3, b0, b1, b2, b3 float32
		d := 0
		for ; d+2 <= dh; d += 2 {
			qv, qw := qa[d], qb[d]
			a0 += qv * k0[d]
			a1 += qv * k1[d]
			a2 += qv * k2[d]
			a3 += qv * k3[d]
			b0 += qw * k0[d]
			b1 += qw * k1[d]
			b2 += qw * k2[d]
			b3 += qw * k3[d]
			qv, qw = qa[d+1], qb[d+1]
			a0 += qv * k0[d+1]
			a1 += qv * k1[d+1]
			a2 += qv * k2[d+1]
			a3 += qv * k3[d+1]
			b0 += qw * k0[d+1]
			b1 += qw * k1[d+1]
			b2 += qw * k2[d+1]
			b3 += qw * k3[d+1]
		}
		for ; d < dh; d++ {
			qv, qw := qa[d], qb[d]
			a0 += qv * k0[d]
			a1 += qv * k1[d]
			a2 += qv * k2[d]
			a3 += qv * k3[d]
			b0 += qw * k0[d]
			b1 += qw * k1[d]
			b2 += qw * k2[d]
			b3 += qw * k3[d]
		}
		rowA[j], rowA[j+1], rowA[j+2], rowA[j+3] = a0*scale, a1*scale, a2*scale, a3*scale
		rowB[j], rowB[j+1], rowB[j+2], rowB[j+3] = b0*scale, b1*scale, b2*scale, b3*scale
	}
	for ; j < s; j++ {
		krow := kg[j*dh:][:dh]
		var da, db float32
		for d := 0; d < dh; d++ {
			da += qa[d] * krow[d]
			db += qb[d] * krow[d]
		}
		rowA[j] = da * scale
		rowB[j] = db * scale
	}

	invA := attnSoftmaxRow(rowA)
	invB := attnSoftmaxRow(rowB)

	for d := range oa {
		oa[d] = 0
		ob[d] = 0
	}
	j = 0
	for ; j+4 <= s; j += 4 {
		pa0 := rowA[j] * invA
		pa1 := rowA[j+1] * invA
		pa2 := rowA[j+2] * invA
		pa3 := rowA[j+3] * invA
		pb0 := rowB[j] * invB
		pb1 := rowB[j+1] * invB
		pb2 := rowB[j+2] * invB
		pb3 := rowB[j+3] * invB
		v0 := vg[j*dh:][:dh]
		v1 := vg[(j+1)*dh:][:dh]
		v2 := vg[(j+2)*dh:][:dh]
		v3 := vg[(j+3)*dh:][:dh]
		for d := 0; d < dh; d++ {
			o := oa[d]
			o += pa0 * v0[d]
			o += pa1 * v1[d]
			o += pa2 * v2[d]
			o += pa3 * v3[d]
			oa[d] = o
			o = ob[d]
			o += pb0 * v0[d]
			o += pb1 * v1[d]
			o += pb2 * v2[d]
			o += pb3 * v3[d]
			ob[d] = o
		}
	}
	for ; j < s; j++ {
		pa := rowA[j] * invA
		pb := rowB[j] * invB
		vrow := vg[j*dh:][:dh]
		for d := 0; d < dh; d++ {
			oa[d] += pa * vrow[d]
			ob[d] += pb * vrow[d]
		}
	}
}

// attnSoftmaxRow replays softmaxInto's arithmetic exactly on one score
// row in place (max seeded from element 0, exp and sum ascending) and
// returns the 1/sum reciprocal the caller folds into the P·V pass —
// ±Inf and NaN rows degenerate identically to the reference.
func attnSoftmaxRow(row []float32) float32 {
	m := row[0]
	for _, x := range row {
		if x > m {
			m = x
		}
	}
	var sum float32
	for j, x := range row {
		e := float32(math.Exp(float64(x - m)))
		row[j] = e
		sum += e
	}
	return 1 / sum
}

func attentionDims(out, q, k, v *Tensor) (g, s, dh int, err error) {
	if len(q.shape) != 3 {
		return 0, 0, 0, fmt.Errorf("tensor: Attention wants rank-3 (G,S,Dh) operands, got q %v", q.shape)
	}
	if !SameShape(q.shape, k.shape) || !SameShape(q.shape, v.shape) {
		return 0, 0, 0, fmt.Errorf("tensor: Attention operand shapes differ: q %v k %v v %v", q.shape, k.shape, v.shape)
	}
	if !SameShape(out.shape, q.shape) {
		return 0, 0, 0, fmt.Errorf("tensor: Attention destination %v, want %v", out.shape, q.shape)
	}
	return q.shape[0], q.shape[1], q.shape[2], nil
}
