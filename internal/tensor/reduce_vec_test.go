package tensor

import (
	"math/rand"
	"testing"
)

// execN is a minimal Executor lending up to n concurrent helper
// goroutines, for exercising the real-parallel strategy in-package.
type execN struct{ sem chan struct{} }

func newExecN(n int) *execN { return &execN{sem: make(chan struct{}, n)} }

func (e *execN) TryRun(task func()) bool {
	select {
	case e.sem <- struct{}{}:
		go func() {
			defer func() { <-e.sem }()
			task()
		}()
		return true
	default:
		return false
	}
}

// TestForSumVecBitIdenticalAcrossWidths is the vector counterpart of
// the ForSum width-invariance contract: per-chunk partials combined in
// ascending chunk order give the same bits under the serial, modeled
// and real-parallel strategies at every width.
func TestForSumVecBitIdenticalAcrossWidths(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const n, w = 50000, 7
	in := make([]float32, n)
	for i := range in {
		in[i] = rng.Float32()*2 - 1
	}
	body := func(lo, hi int, acc []float32) {
		for i := lo; i < hi; i++ {
			acc[i%w] += in[i]
		}
	}
	sum := func(p *Pool) []float32 {
		out := make([]float32, w)
		p.ForSumVec(n, 1024, w, out, body)
		return out
	}
	want := sum(NewPool(1))

	// Reference: explicit ascending-chunk combination.
	chunks := regionChunks(n, 1024)
	ref := make([]float32, w)
	for c := 0; c < chunks; c++ {
		lo, hi := chunkBounds(n, chunks, c)
		part := make([]float32, w)
		body(lo, hi, part)
		for i := range ref {
			ref[i] += part[i]
		}
	}
	for i := range ref {
		if want[i] != ref[i] {
			t.Fatalf("width-1 ForSumVec[%d] = %v != chunk-ordered reference %v", i, want[i], ref[i])
		}
	}

	check := func(name string, got []float32) {
		t.Helper()
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("%s: ForSumVec[%d] = %v != width-1 %v", name, i, got[i], want[i])
			}
		}
	}
	for _, workers := range []int{2, 4, 8} {
		check("modeled", sum(NewPool(workers)))
		for rep := 0; rep < 5; rep++ {
			check("parallel", sum(NewParallelPool(workers, newExecN(workers-1))))
		}
	}
}

// TestAxisReduceSmallOuterParallel pins the axis-reduction satellite:
// sum/mean reductions whose outputs are small (batch-norm channel
// statistics) split the input walk into chunks, and the result bits
// are identical at every pool width — and equal to an explicit
// ascending-chunk reference.
func TestAxisReduceSmallOuterParallel(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	in := RandUniform(rng, -1, 1, 6, 28, 28, 5) // NHWC, C=5 outer dim
	for _, kind := range []string{"sum", "mean"} {
		want, err := Reduce(NewPool(1), in, []int{0, 1, 2}, true, kind)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 8} {
			got, err := Reduce(NewPool(workers), in, []int{0, 1, 2}, true, kind)
			if err != nil {
				t.Fatal(err)
			}
			if i, ok := firstDiff(want.Data(), got.Data()); !ok {
				t.Fatalf("%s modeled width %d differs from width 1 at %d", kind, workers, i)
			}
			par, err := Reduce(NewParallelPool(workers, newExecN(workers-1)), in, []int{0, 1, 2}, true, kind)
			if err != nil {
				t.Fatal(err)
			}
			if i, ok := firstDiff(want.Data(), par.Data()); !ok {
				t.Fatalf("%s parallel width %d differs from width 1 at %d", kind, workers, i)
			}
		}
	}

	// The width-1 result itself must follow the ascending-chunk
	// combine order over the flattened input walk.
	// The kept axis is the contiguous last one, so a position's output
	// index is simply pos % C.
	id := in.Data()
	w := 5
	chunks := regionChunks(len(id), 4096)
	ref := make([]float32, w)
	for c := 0; c < chunks; c++ {
		lo, hi := chunkBounds(len(id), chunks, c)
		part := make([]float32, w)
		for pos := lo; pos < hi; pos++ {
			part[pos%w] += id[pos]
		}
		for i := range ref {
			ref[i] += part[i]
		}
	}
	got, err := Reduce(NewPool(1), in, []int{0, 1, 2}, false, "sum")
	if err != nil {
		t.Fatal(err)
	}
	if i, ok := firstDiff(ref, got.Data()); !ok {
		t.Fatalf("axis sum does not follow ascending-chunk combine order at %d", i)
	}
}

// TestAxisReduceMaxAndLargeOuterExact: max reductions and large-outer
// reductions (both parallel since kernel tier 2) still match an exact
// per-fiber left-to-right fold — the output-parallel path assigns each
// fiber whole to one chunk, so the element order within a fiber never
// changes.
func TestAxisReduceMaxAndLargeOuterExact(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	in := RandUniform(rng, -1, 1, 64, 40)
	mx, err := Reduce(NewPool(4), in, []int{0}, false, "max")
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < 40; j++ {
		want := in.At(0, j)
		for i := 1; i < 64; i++ {
			if v := in.At(i, j); v > want {
				want = v
			}
		}
		if mx.Data()[j] != want {
			t.Fatalf("max over axis 0 wrong at %d", j)
		}
	}
	// Large outer dim (> axisVecElems): stays on the serial walk and
	// matches an exact per-fiber left-to-right fold.
	big := RandUniform(rng, -1, 1, 3, 2048)
	sum, err := Reduce(NewPool(4), big, []int{0}, false, "sum")
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < 2048; j++ {
		want := big.At(0, j) + big.At(1, j) + big.At(2, j)
		if sum.Data()[j] != want {
			t.Fatalf("large-outer sum wrong at %d", j)
		}
	}
}

func firstDiff(a, b []float32) (int, bool) {
	if len(a) != len(b) {
		return -1, false
	}
	for i := range a {
		if a[i] != b[i] {
			return i, false
		}
	}
	return 0, true
}
