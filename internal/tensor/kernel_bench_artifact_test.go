package tensor

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"os"
	goruntime "runtime"
	"testing"
	"time"

	"repro/internal/sched"
)

// TestKernelBenchArtifact writes the BENCH_kernels.json trajectory
// artifact: the tier-2 2-D tiled GEMM against the pre-tier-2 row-only
// kernel it replaced, at pool widths 1 and 8, over the shapes the
// refactor targets — a big square product, a tall/skinny product, and
// a short-and-wide streaming product. The row-only kernels below are
// verbatim copies of the replaced code, kept here as the measurement
// baseline; the test also pins bit-equality between old and new before
// timing anything, since the tiling refactor must not change a single
// accumulation order.
//
// Gated behind KERNEL_BENCH=<path> (the CI bench job sets it); skipped
// otherwise so the regular test sweep stays fast.
func TestKernelBenchArtifact(t *testing.T) {
	path := os.Getenv("KERNEL_BENCH")
	if path == "" {
		t.Skip("set KERNEL_BENCH=<path> to write the kernel bench artifact")
	}

	ex := sched.New(7)
	defer ex.Close()
	pools := map[int]*Pool{1: NewPool(1), 8: NewParallelPool(8, ex)}

	type row struct {
		Kernel  string  `json:"kernel"`
		Workers int     `json:"workers"`
		MsPerOp float64 `json:"ms_per_op"`
		GFLOPS  float64 `json:"gflops"`
	}
	type shapeResult struct {
		Shape             string  `json:"shape"`
		M                 int     `json:"m"`
		K                 int     `json:"k"`
		N                 int     `json:"n"`
		Rows              []row   `json:"rows"`
		NewScalingW8      float64 `json:"new_scaling_w8"`       // new w1 time / new w8 time
		BaselineScalingW8 float64 `json:"baseline_scaling_w8"`  // old w1 time / old w8 time
		NewOverBaselineW8 float64 `json:"new_over_baseline_w8"` // old w8 time / new w8 time
	}

	shapes := []struct {
		name    string
		m, k, n int
		iters   int
	}{
		{"square_1024", 1024, 1024, 1024, 2},
		{"tall_4096x256x64", 4096, 256, 64, 4},
		{"wide_2x64x4096", 2, 64, 4096, 10},
	}

	rng := rand.New(rand.NewSource(31))
	var results []shapeResult
	for _, s := range shapes {
		a := RandNormal(rng, 0, 1, s.m, s.k)
		b := RandNormal(rng, 0, 1, s.k, s.n)
		dst := New(s.m, s.n)
		ref := New(s.m, s.n)
		blocked := int64(s.m)*int64(s.k)*int64(s.n) >= blockedMinWork

		newKernel := func(p *Pool) {
			matmulInto(p, dst.data, a.data, b.data, s.m, s.n, s.k, s.k, s.n, false, false)
		}
		var oldKernel func(p *Pool)
		if blocked {
			oldKernel = func(p *Pool) {
				matmulBlockedRowOnly(p, ref.data, a.data, b.data, s.m, s.n, s.k, s.k, s.n, false, false)
			}
		} else {
			oldKernel = func(p *Pool) {
				matmulStreamRowOnly(p, ref.data, a.data, b.data, s.m, s.n, s.k, s.k, s.n)
			}
		}

		// Bit-equality gate before timing: the tiled kernel keeps every
		// output element's accumulation order, so old and new must agree
		// exactly at both widths.
		for w, p := range pools {
			newKernel(p)
			oldKernel(p)
			if d := MaxAbsDiff(dst, ref); d != 0 {
				t.Fatalf("%s width %d: tiled kernel differs from row-only baseline (max |Δ| %g)", s.name, w, d)
			}
		}

		res := shapeResult{Shape: s.name, M: s.m, K: s.k, N: s.n}
		times := map[string]float64{}
		for _, cfg := range []struct {
			label  string
			kernel func(p *Pool)
		}{{"tiled2d", newKernel}, {"row_only", oldKernel}} {
			for _, w := range []int{1, 8} {
				p := pools[w]
				cfg.kernel(p) // warmup
				best := math.MaxFloat64
				for i := 0; i < s.iters; i++ {
					t0 := time.Now()
					cfg.kernel(p)
					if d := time.Since(t0).Seconds(); d < best {
						best = d
					}
				}
				flops := 2 * float64(s.m) * float64(s.k) * float64(s.n)
				res.Rows = append(res.Rows, row{
					Kernel:  cfg.label,
					Workers: w,
					MsPerOp: best * 1e3,
					GFLOPS:  flops / best / 1e9,
				})
				times[fmt.Sprintf("%s/%d", cfg.label, w)] = best
			}
		}
		res.NewScalingW8 = times["tiled2d/1"] / times["tiled2d/8"]
		res.BaselineScalingW8 = times["row_only/1"] / times["row_only/8"]
		res.NewOverBaselineW8 = times["row_only/8"] / times["tiled2d/8"]
		results = append(results, res)
		t.Logf("%s: tiled w8 %.1fms (scaling %.2fx) vs row-only w8 %.1fms (scaling %.2fx)",
			s.name, times["tiled2d/8"]*1e3, res.NewScalingW8, times["row_only/8"]*1e3, res.BaselineScalingW8)
	}

	// Attention section: the fused streaming-softmax kernel against
	// the unfused materialized chain (Transpose → BatchMatMul → Mul →
	// Softmax → BatchMatMul), bit-equality gated like the GEMM entry.
	// Alongside throughput it records the working-set story the fusion
	// exists for: the naive chain materializes Kᵀ plus three (G,S,S)
	// tensors and a per-slice matmul result, while the fused kernel
	// holds two score rows per lane.
	type attnShapeResult struct {
		Shape             string  `json:"shape"`
		G                 int     `json:"g"`
		S                 int     `json:"s"`
		Dh                int     `json:"dh"`
		Rows              []row   `json:"rows"`
		FusedOverNaiveW8  float64 `json:"fused_over_naive_w8"` // naive w8 time / fused w8 time
		NaivePeakBytes    int64   `json:"naive_peak_bytes"`    // materialized intermediates
		FusedScratchBytes int64   `json:"fused_scratch_bytes"` // per-lane score rows, all lanes
	}
	attnShapes := []struct {
		name     string
		g, s, dh int
		iters    int
	}{
		{"longseq_4x1024x16", 4, 1024, 16, 3},
		{"tinyhead_16x256x8", 16, 256, 8, 5},
		{"base_8x256x64", 8, 256, 64, 3},
	}
	var attnResults []attnShapeResult
	for _, s := range attnShapes {
		arng := rand.New(rand.NewSource(47))
		q := RandNormal(arng, 0, 1, s.g, s.s, s.dh)
		k := RandNormal(arng, 0, 1, s.g, s.s, s.dh)
		v := RandNormal(arng, 0, 1, s.g, s.s, s.dh)
		scale := float32(1 / math.Sqrt(float64(s.dh)))
		out := New(s.g, s.s, s.dh)

		// Bit-equality gate at both widths before timing anything.
		for w, p := range pools {
			if err := AttentionInto(p, out, q, k, v, scale); err != nil {
				t.Fatal(err)
			}
			ref := naiveAttentionRef(t, p, q, k, v, scale)
			if d := MaxAbsDiff(out, ref); d != 0 {
				t.Fatalf("%s width %d: fused attention differs from naive chain (max |Δ| %g)", s.name, w, d)
			}
		}

		res := attnShapeResult{Shape: s.name, G: s.g, S: s.s, Dh: s.dh}
		times := map[string]float64{}
		for _, cfg := range []struct {
			label  string
			kernel func(p *Pool)
		}{
			{"fused_stream", func(p *Pool) { _ = AttentionInto(p, out, q, k, v, scale) }},
			{"naive_chain", func(p *Pool) { naiveAttentionRef(t, p, q, k, v, scale) }},
		} {
			for _, w := range []int{1, 8} {
				p := pools[w]
				cfg.kernel(p) // warmup
				best := math.MaxFloat64
				for i := 0; i < s.iters; i++ {
					t0 := time.Now()
					cfg.kernel(p)
					if d := time.Since(t0).Seconds(); d < best {
						best = d
					}
				}
				// QKᵀ and P·V mul-adds; the softmax between them is
				// O(S) per row and excluded, as is conventional.
				flops := 4 * float64(s.g) * float64(s.s) * float64(s.s) * float64(s.dh)
				res.Rows = append(res.Rows, row{
					Kernel:  cfg.label,
					Workers: w,
					MsPerOp: best * 1e3,
					GFLOPS:  flops / best / 1e9,
				})
				times[fmt.Sprintf("%s/%d", cfg.label, w)] = best
			}
		}
		res.FusedOverNaiveW8 = times["naive_chain/8"] / times["fused_stream/8"]
		gss := int64(s.g) * int64(s.s) * int64(s.s)
		res.NaivePeakBytes = 4 * (3*gss + int64(s.g)*int64(s.s)*int64(s.dh) + int64(s.s)*int64(s.s))
		res.FusedScratchBytes = 4 * 2 * int64(s.s) * 8
		attnResults = append(attnResults, res)
		t.Logf("%s: fused w8 %.1fms vs naive w8 %.1fms (%.2fx), naive peak %d bytes vs fused scratch %d",
			s.name, times["fused_stream/8"]*1e3, times["naive_chain/8"]*1e3,
			res.FusedOverNaiveW8, res.NaivePeakBytes, res.FusedScratchBytes)
	}

	artifact := struct {
		Kind      string            `json:"kind"`
		HostCPUs  int               `json:"host_cpus"`
		Widths    []int             `json:"widths"`
		Shapes    []shapeResult     `json:"shapes"`
		Attention []attnShapeResult `json:"attention"`
	}{"kernels", goruntime.NumCPU(), []int{1, 8}, results, attnResults}
	data, err := json.MarshalIndent(artifact, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}

// matmulBlockedRowOnly is the pre-tier-2 blocked GEMM, verbatim: one
// column panel at a time, B packed per (panel, slab), and parallelism
// only over the rows inside the current panel. Kept as the measurement
// baseline for BENCH_kernels.json.
func matmulBlockedRowOnly(p *Pool, dst, a, b []float32, m, n, k, lda, ldb int, transA, transB bool) {
	packB := p.scratchBuf(scratchPackB, blockK*blockN)
	for jc := 0; jc < n; jc += blockN {
		nc := min(blockN, n-jc)
		for pc := 0; pc < k; pc += blockK {
			kc := min(blockK, k-pc)
			packPanelB(packB, b, pc, kc, jc, nc, ldb, transB)
			grain := 1 + 65536/(nc*kc+1)
			p.ForLane(m, grain, func(lane, lo, hi int) {
				packA := p.laneScratch(lane, scratchPackA, blockM*blockK)
				for ic := lo; ic < hi; ic += blockM {
					mc := min(blockM, hi-ic)
					packPanelA(packA, a, ic, mc, pc, kc, lda, transA)
					matmulMicro(dst, packA, packB, ic, mc, jc, nc, kc, n, pc == 0)
				}
			})
		}
	}
}

// matmulStreamRowOnly is the pre-tier-2 streaming dispatch, verbatim in
// effect: rows are the only split axis, so short-and-wide products ran
// on at most m chunks regardless of width.
func matmulStreamRowOnly(p *Pool, dst, a, b []float32, m, n, k, lda, ldb int) {
	rowGrain := 1 + 65536/(n*k+1)
	p.For(m, rowGrain, func(lo, hi int) {
		matmulRows(dst, a, b, lo, hi, 0, n, n, k, lda, ldb)
	})
}
