package tensor

import "testing"

func TestArenaGetPutRecycles(t *testing.T) {
	a := NewArena()
	b1 := a.Get(100)
	if len(b1) != 100 {
		t.Fatalf("Get(100) length %d", len(b1))
	}
	if cap(b1) != 128 {
		t.Fatalf("Get(100) capacity %d, want bucket 128", cap(b1))
	}
	a.Put(b1)
	b2 := a.Get(120) // same bucket
	if &b1[0] != &b2[0] {
		t.Fatal("second Get in the same bucket must recycle the buffer")
	}
	if len(b2) != 120 {
		t.Fatalf("recycled length %d, want 120", len(b2))
	}
	st := a.Stats()
	if st.TotalBuffers != 1 || st.Reuses != 1 || st.LiveBuffers != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestArenaBucketsAreSizeClasses(t *testing.T) {
	cases := map[int]int{0: 64, 1: 64, 64: 64, 65: 128, 128: 128, 1000: 1024, 1 << 20: 1 << 20}
	for n, want := range cases {
		if got := bucketFor(n); got != want {
			t.Fatalf("bucketFor(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestArenaDistinctBucketsDoNotMix(t *testing.T) {
	a := NewArena()
	small := a.Get(10)
	big := a.Get(1000)
	a.Put(small)
	b := a.Get(1000) // must not get the small buffer
	if cap(b) < 1000 {
		t.Fatalf("got %d-cap buffer from wrong bucket", cap(b))
	}
	a.Put(big)
	a.Put(b)
	if st := a.Stats(); st.LiveBuffers != 0 {
		t.Fatalf("live buffers %d after returning all", st.LiveBuffers)
	}
}

func TestArenaPutNilIsNoop(t *testing.T) {
	a := NewArena()
	a.Put(nil)
	if st := a.Stats(); st.LiveBuffers != 0 {
		t.Fatalf("nil Put must not change stats: %+v", st)
	}
}

func TestArenaZeroSizeGet(t *testing.T) {
	a := NewArena()
	b := a.Get(0)
	if len(b) != 0 || cap(b) != arenaMinBucket {
		t.Fatalf("Get(0): len %d cap %d", len(b), cap(b))
	}
	a.Put(b)
}

// TestBufferGuardDetectsOverlaps pins the assertion hook's semantics:
// concurrent readers are fine, a write with readers outstanding (the
// corruption a scheduler without anti-dependency gating would allow)
// is a violation, as are overlapping writers and reads during a write.
func TestBufferGuardDetectsOverlaps(t *testing.T) {
	buf := make([]float32, 8)
	other := make([]float32, 8)

	g := NewBufferGuard()
	g.BeginRead(buf)
	g.BeginRead(buf) // concurrent readers are legal
	g.EndRead(buf)
	g.EndRead(buf)
	g.BeginWrite(buf) // write with no readers is legal
	g.EndWrite(buf)
	g.BeginWrite(other) // distinct buffers never interact
	g.BeginRead(buf)
	g.EndRead(buf)
	g.EndWrite(other)
	if v := g.Violations(); len(v) != 0 {
		t.Fatalf("legal sequence reported violations: %v", v)
	}

	g = NewBufferGuard()
	g.BeginRead(buf)
	g.BeginWrite(buf) // writer while a reader is outstanding
	if v := g.Violations(); len(v) != 1 {
		t.Fatalf("expected 1 violation for write-under-read, got %v", v)
	}

	g = NewBufferGuard()
	g.BeginWrite(buf)
	g.BeginWrite(buf) // overlapping writers
	g.BeginRead(buf)  // read during a write
	if v := g.Violations(); len(v) != 2 {
		t.Fatalf("expected 2 violations, got %v", v)
	}

	// Empty buffers are ignored rather than keyed on a nil pointer.
	g = NewBufferGuard()
	g.BeginWrite(nil)
	g.BeginRead(nil)
	if v := g.Violations(); len(v) != 0 {
		t.Fatalf("nil buffers must be ignored: %v", v)
	}
}
