package tensor

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// naiveMatMul is an obviously-correct reference implementation.
func naiveMatMul(a, b *Tensor, transA, transB bool) *Tensor {
	get := func(t *Tensor, i, j int, tr bool) float32 {
		if tr {
			return t.At(j, i)
		}
		return t.At(i, j)
	}
	m, k := a.Dim(0), a.Dim(1)
	if transA {
		m, k = k, m
	}
	n := b.Dim(1)
	if transB {
		n = b.Dim(0)
	}
	out := New(m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var s float32
			for l := 0; l < k; l++ {
				s += get(a, i, l, transA) * get(b, l, j, transB)
			}
			out.Set(s, i, j)
		}
	}
	return out
}

func TestMatMulKnown(t *testing.T) {
	p := NewPool(1)
	a := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	b := FromSlice([]float32{7, 8, 9, 10, 11, 12}, 3, 2)
	out, err := MatMul(p, a, b, false, false)
	if err != nil {
		t.Fatal(err)
	}
	want := []float32{58, 64, 139, 154}
	for i := range want {
		if out.Data()[i] != want[i] {
			t.Fatalf("MatMul = %v want %v", out.Data(), want)
		}
	}
}

func TestMatMulAllTransposeCombos(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	p := NewPool(1)
	m, k, n := 5, 7, 3
	for _, ta := range []bool{false, true} {
		for _, tb := range []bool{false, true} {
			ashape := []int{m, k}
			if ta {
				ashape = []int{k, m}
			}
			bshape := []int{k, n}
			if tb {
				bshape = []int{n, k}
			}
			a := RandNormal(rng, 0, 1, ashape...)
			b := RandNormal(rng, 0, 1, bshape...)
			got, err := MatMul(p, a, b, ta, tb)
			if err != nil {
				t.Fatal(err)
			}
			want := naiveMatMul(a, b, ta, tb)
			if !AllClose(got, want, 1e-4, 1e-4) {
				t.Fatalf("transA=%v transB=%v mismatch (max diff %g)", ta, tb, MaxAbsDiff(got, want))
			}
		}
	}
}

func TestMatMulParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := RandNormal(rng, 0, 1, 64, 32)
	b := RandNormal(rng, 0, 1, 32, 48)
	s, _ := MatMul(NewPool(1), a, b, false, false)
	q, _ := MatMul(NewPool(8), a, b, false, false)
	if !AllClose(s, q, 1e-6, 1e-6) {
		t.Fatal("parallel matmul differs from serial")
	}
}

func TestMatMulShapeErrors(t *testing.T) {
	p := NewPool(1)
	if _, err := MatMul(p, New(2, 3), New(4, 5), false, false); err == nil {
		t.Fatal("expected inner-dimension error")
	}
	if _, err := MatMul(p, New(2), New(2, 2), false, false); err == nil {
		t.Fatal("expected rank error")
	}
}

// Property: (A·B)ᵀ == Bᵀ·Aᵀ for random sizes.
func TestMatMulTransposeIdentityQuick(t *testing.T) {
	p := NewPool(2)
	rng := rand.New(rand.NewSource(3))
	f := func(m0, k0, n0 uint8) bool {
		m, k, n := int(m0%6)+1, int(k0%6)+1, int(n0%6)+1
		a := RandNormal(rng, 0, 1, m, k)
		b := RandNormal(rng, 0, 1, k, n)
		ab, err := MatMul(p, a, b, false, false)
		if err != nil {
			return false
		}
		abT, err := Transpose(p, ab, []int{1, 0})
		if err != nil {
			return false
		}
		// Bᵀ·Aᵀ computed with transpose flags on the stored tensors.
		bTaT, err := MatMul(p, b, a, true, true)
		if err != nil {
			return false
		}
		return AllClose(abT, bTaT, 1e-4, 1e-4)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
