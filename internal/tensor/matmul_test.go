package tensor

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/sched"
)

// naiveMatMul is an obviously-correct reference implementation.
func naiveMatMul(a, b *Tensor, transA, transB bool) *Tensor {
	get := func(t *Tensor, i, j int, tr bool) float32 {
		if tr {
			return t.At(j, i)
		}
		return t.At(i, j)
	}
	m, k := a.Dim(0), a.Dim(1)
	if transA {
		m, k = k, m
	}
	n := b.Dim(1)
	if transB {
		n = b.Dim(0)
	}
	out := New(m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var s float32
			for l := 0; l < k; l++ {
				s += get(a, i, l, transA) * get(b, l, j, transB)
			}
			out.Set(s, i, j)
		}
	}
	return out
}

func TestMatMulKnown(t *testing.T) {
	p := NewPool(1)
	a := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	b := FromSlice([]float32{7, 8, 9, 10, 11, 12}, 3, 2)
	out, err := MatMul(p, a, b, false, false)
	if err != nil {
		t.Fatal(err)
	}
	want := []float32{58, 64, 139, 154}
	for i := range want {
		if out.Data()[i] != want[i] {
			t.Fatalf("MatMul = %v want %v", out.Data(), want)
		}
	}
}

func TestMatMulAllTransposeCombos(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	p := NewPool(1)
	m, k, n := 5, 7, 3
	for _, ta := range []bool{false, true} {
		for _, tb := range []bool{false, true} {
			ashape := []int{m, k}
			if ta {
				ashape = []int{k, m}
			}
			bshape := []int{k, n}
			if tb {
				bshape = []int{n, k}
			}
			a := RandNormal(rng, 0, 1, ashape...)
			b := RandNormal(rng, 0, 1, bshape...)
			got, err := MatMul(p, a, b, ta, tb)
			if err != nil {
				t.Fatal(err)
			}
			want := naiveMatMul(a, b, ta, tb)
			if !AllClose(got, want, 1e-4, 1e-4) {
				t.Fatalf("transA=%v transB=%v mismatch (max diff %g)", ta, tb, MaxAbsDiff(got, want))
			}
		}
	}
}

func TestMatMulParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := RandNormal(rng, 0, 1, 64, 32)
	b := RandNormal(rng, 0, 1, 32, 48)
	s, _ := MatMul(NewPool(1), a, b, false, false)
	q, _ := MatMul(NewPool(8), a, b, false, false)
	if !AllClose(s, q, 1e-6, 1e-6) {
		t.Fatal("parallel matmul differs from serial")
	}
}

func TestMatMulShapeErrors(t *testing.T) {
	p := NewPool(1)
	if _, err := MatMul(p, New(2, 3), New(4, 5), false, false); err == nil {
		t.Fatal("expected inner-dimension error")
	}
	if _, err := MatMul(p, New(2), New(2, 2), false, false); err == nil {
		t.Fatal("expected rank error")
	}
}

// TestMatMulBlockedMatchesStreaming drives the tiled/packed kernel at
// sizes past blockedMinWork — with odd dimensions so partial panels in
// every blocking loop are exercised — and compares it against the
// streaming kernels on the identical operands.
func TestMatMulBlockedMatchesStreaming(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	p := NewPool(1)
	m, k, n := 131, 157, 101 // m·n·k > blockedMinWork, nothing divides a block
	if int64(m)*int64(n)*int64(k) < blockedMinWork {
		t.Fatal("test sizes must engage the blocked kernel")
	}
	for _, ta := range []bool{false, true} {
		for _, tb := range []bool{false, true} {
			ashape := []int{m, k}
			if ta {
				ashape = []int{k, m}
			}
			bshape := []int{k, n}
			if tb {
				bshape = []int{n, k}
			}
			a := RandNormal(rng, 0, 1, ashape...)
			b := RandNormal(rng, 0, 1, bshape...)
			got := New(m, n)
			matmulBlocked(p, got.data, a.data, b.data, m, n, k, a.shape[1], b.shape[1], ta, tb)
			want := New(m, n)
			matmulStreamingForTest(p, want.data, a.data, b.data, m, n, k, a.shape[1], b.shape[1], ta, tb)
			if !AllClose(got, want, 1e-3, 1e-3) {
				t.Fatalf("transA=%v transB=%v: blocked kernel diverges (max diff %g)", ta, tb, MaxAbsDiff(got, want))
			}
		}
	}
}

// matmulStreamingForTest runs the small-size kernels regardless of the
// dispatch threshold.
func matmulStreamingForTest(p *Pool, dst, a, b []float32, m, n, k, lda, ldb int, ta, tb bool) {
	switch {
	case !ta && !tb:
		matmulRows(dst, a, b, 0, m, 0, n, n, k, lda, ldb)
	case !ta && tb:
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				var s float32
				for l := 0; l < k; l++ {
					s += a[i*lda+l] * b[j*ldb+l]
				}
				dst[i*n+j] = s
			}
		}
	case ta && !tb:
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				var s float32
				for l := 0; l < k; l++ {
					s += a[l*lda+i] * b[l*ldb+j]
				}
				dst[i*n+j] = s
			}
		}
	default:
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				var s float32
				for l := 0; l < k; l++ {
					s += a[l*lda+i] * b[j*ldb+l]
				}
				dst[i*n+j] = s
			}
		}
	}
}

func TestMatMulIntoOverwritesDirtyDestination(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	p := NewPool(1)
	a := RandNormal(rng, 0, 1, 6, 8)
	b := RandNormal(rng, 0, 1, 8, 5)
	want, err := MatMul(p, a, b, false, false)
	if err != nil {
		t.Fatal(err)
	}
	dst := Full(99, 6, 5) // dirty, as arena buffers are
	if err := MatMulInto(p, dst, a, b, false, false); err != nil {
		t.Fatal(err)
	}
	if !AllClose(dst, want, 0, 0) {
		t.Fatal("MatMulInto must fully overwrite the destination")
	}
}

func TestMatMulIntoShapeErrors(t *testing.T) {
	p := NewPool(1)
	if err := MatMulInto(p, New(2, 2), New(2, 3), New(3, 4), false, false); err == nil {
		t.Fatal("expected destination shape error")
	}
	if err := MatMulInto(p, New(2, 2), New(2, 3), New(4, 4), false, false); err == nil {
		t.Fatal("expected inner-dimension error")
	}
}

// Property: (A·B)ᵀ == Bᵀ·Aᵀ for random sizes.
func TestMatMulTransposeIdentityQuick(t *testing.T) {
	p := NewPool(2)
	rng := rand.New(rand.NewSource(3))
	f := func(m0, k0, n0 uint8) bool {
		m, k, n := int(m0%6)+1, int(k0%6)+1, int(n0%6)+1
		a := RandNormal(rng, 0, 1, m, k)
		b := RandNormal(rng, 0, 1, k, n)
		ab, err := MatMul(p, a, b, false, false)
		if err != nil {
			return false
		}
		abT, err := Transpose(p, ab, []int{1, 0})
		if err != nil {
			return false
		}
		// Bᵀ·Aᵀ computed with transpose flags on the stored tensors.
		bTaT, err := MatMul(p, b, a, true, true)
		if err != nil {
			return false
		}
		return AllClose(abT, bTaT, 1e-4, 1e-4)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestMatMulParallelBitIdentical drives both kernel paths (streaming
// and blocked/packed — the latter via a product over the
// blockedMinWork threshold) at several real-parallel widths and
// demands bitwise equality with the serial pool: chunk boundaries are
// width-independent and per-row accumulation order never changes, so
// the parallel strategy must be invisible in the result bits.
func TestMatMulParallelBitIdentical(t *testing.T) {
	ex := sched.New(4)
	defer ex.Close()
	rng := rand.New(rand.NewSource(3))
	cases := []struct{ m, k, n int }{
		{33, 40, 29},   // streaming kernel
		{128, 96, 128}, // streaming kernel, larger
		{160, 144, 80}, // blocked kernel (m·n·k ≥ 2^20)
		{256, 128, 64}, // blocked kernel, uneven tiles
	}
	for _, tc := range cases {
		a := RandNormal(rng, 0, 1, tc.m, tc.k)
		b := RandNormal(rng, 0, 1, tc.k, tc.n)
		want, err := MatMul(NewPool(1), a, b, false, false)
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range []int{2, 4} {
			p := NewParallelPool(w, ex)
			for _, tr := range []struct{ ta, tb bool }{{false, false}} {
				got, err := MatMul(p, a, b, tr.ta, tr.tb)
				if err != nil {
					t.Fatal(err)
				}
				if d := MaxAbsDiff(got, want); d != 0 {
					t.Fatalf("(%d,%d,%d) width %d: parallel matmul differs (max |Δ| %g)", tc.m, tc.k, tc.n, w, d)
				}
			}
		}
		// Transposed operands through the blocked path too.
		at := RandNormal(rng, 0, 1, tc.k, tc.m)
		wantT, err := MatMul(NewPool(1), at, b, true, false)
		if err != nil {
			t.Fatal(err)
		}
		gotT, err := MatMul(NewParallelPool(4, ex), at, b, true, false)
		if err != nil {
			t.Fatal(err)
		}
		if d := MaxAbsDiff(gotT, wantT); d != 0 {
			t.Fatalf("(%d,%d,%d) transA width 4: differs (max |Δ| %g)", tc.m, tc.k, tc.n, d)
		}
	}
}

// TestConv2DParallelBitIdentical covers the conv kernels (direct and
// im2col dispatch) under the real parallel strategy.
func TestConv2DParallelBitIdentical(t *testing.T) {
	ex := sched.New(4)
	defer ex.Close()
	rng := rand.New(rand.NewSource(5))
	in := RandNormal(rng, 0, 1, 2, 12, 12, 8)
	filt := RandNormal(rng, 0, 1, 3, 3, 8, 16)
	spec := ConvSpec{StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	want, err := Conv2D(NewPool(1), in, filt, spec)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Conv2D(NewParallelPool(4, ex), in, filt, spec)
	if err != nil {
		t.Fatal(err)
	}
	if d := MaxAbsDiff(got, want); d != 0 {
		t.Fatalf("parallel conv differs (max |Δ| %g)", d)
	}
	// Strided direct path.
	spec2 := ConvSpec{StrideH: 2, StrideW: 2}
	want2, _ := Conv2D(NewPool(1), in, filt, spec2)
	got2, _ := Conv2D(NewParallelPool(4, ex), in, filt, spec2)
	if d := MaxAbsDiff(got2, want2); d != 0 {
		t.Fatalf("parallel strided conv differs (max |Δ| %g)", d)
	}
}
