package tensor

import "fmt"

// MatMul computes C = op(A) · op(B) for 2-D tensors, where op is an
// optional transpose. The destination is freshly allocated. The kernel
// parallelizes over output rows through the pool.
func MatMul(p *Pool, a, b *Tensor, transA, transB bool) (*Tensor, error) {
	m, n, _, err := matmulDims(a, b, transA, transB)
	if err != nil {
		return nil, err
	}
	out := New(m, n)
	matmulInto(p, out.data, a.data, b.data, m, n, matmulK(a, transA), a.shape[1], b.shape[1], transA, transB)
	return out, nil
}

// MatMulInto computes op(A)·op(B) into out, which must have the result
// shape (m, n). out may hold arbitrary data; it is fully overwritten
// and never read before being written, so it must not alias a or b.
func MatMulInto(p *Pool, out, a, b *Tensor, transA, transB bool) error {
	m, n, k, err := matmulDims(a, b, transA, transB)
	if err != nil {
		return err
	}
	if out.Rank() != 2 || out.shape[0] != m || out.shape[1] != n {
		return fmt.Errorf("tensor: MatMulInto destination %v, want [%d %d]", out.shape, m, n)
	}
	checkNoAlias("MatMulInto", out, a, b)
	matmulInto(p, out.data, a.data, b.data, m, n, k, a.shape[1], b.shape[1], transA, transB)
	return nil
}

func matmulDims(a, b *Tensor, transA, transB bool) (m, n, k int, err error) {
	if a.Rank() != 2 || b.Rank() != 2 {
		return 0, 0, 0, fmt.Errorf("tensor: MatMul requires rank-2 inputs, got %v and %v", a.shape, b.shape)
	}
	m, ka := a.shape[0], a.shape[1]
	if transA {
		m, ka = ka, m
	}
	kb, n := b.shape[0], b.shape[1]
	if transB {
		kb, n = n, kb
	}
	if ka != kb {
		return 0, 0, 0, fmt.Errorf("tensor: MatMul inner dimensions disagree: %v (transA=%v) × %v (transB=%v)", a.shape, transA, b.shape, transB)
	}
	return m, n, ka, nil
}

func matmulK(a *Tensor, transA bool) int {
	if transA {
		return a.shape[0]
	}
	return a.shape[1]
}

// Cache-blocking parameters for the packed kernel (float32 elements):
// a packed A panel is blockM×blockK (64 KB), a packed B panel is
// blockK×blockN (128 KB) — together they sit comfortably in a 2016-era
// L2 cache while C microtile rows stream from L1.
const (
	blockM = 64
	blockK = 256
	blockN = 128

	// blockedMinWork is the m·n·k multiply-add count above which the
	// packed, tiled kernel beats the streaming kernels (packing has a
	// fixed per-panel cost that small products never amortize).
	blockedMinWork = 1 << 20

	// maxSlabPanels caps how many B column panels pack together per
	// reduction slab of the blocked kernel, bounding packed-B scratch
	// at maxSlabPanels × blockK × blockN floats (2 MB). The cap only
	// binds for short-and-wide products, where many panels per group
	// are what keeps the 2-D tile grid deep enough to chunk.
	maxSlabPanels = 16

	// streamSplitRows is the row count below which the streaming
	// kernels chunk over columns instead of rows: with fewer rows than
	// this, a row split cannot feed even a modest worker set, and
	// wide-but-short products (single-row inference GEMMs) would stay
	// single-threaded.
	streamSplitRows = 8
)

// matmulInto writes op(A)·op(B) into dst (len m*n). lda and ldb are the
// row strides of the *stored* A and B. Large products dispatch to the
// tiled, packed kernel; small ones keep the streaming kernels whose
// setup cost is near zero.
func matmulInto(p *Pool, dst, a, b []float32, m, n, k, lda, ldb int, transA, transB bool) {
	if int64(m)*int64(n)*int64(k) >= blockedMinWork {
		matmulBlocked(p, dst, a, b, m, n, k, lda, ldb, transA, transB)
		return
	}
	// Streaming kernels, chunked through the pool. The split axis is a
	// pure function of shape (never of width): products with enough
	// rows split over rows, short-and-wide products (below
	// streamSplitRows) split over columns, so single-row inference
	// GEMMs parallelize too. Every output element's k-accumulation
	// order is identical under either split, so the axis choice cannot
	// change result bits. Grains target roughly 64k multiply-adds per
	// chunk minimum.
	if m < streamSplitRows {
		colGrain := 1 + 65536/(m*k+1)
		p.For(n, colGrain, func(jlo, jhi int) {
			matmulStream(dst, a, b, 0, m, jlo, jhi, n, k, lda, ldb, transA, transB)
		})
		return
	}
	rowGrain := 1 + 65536/(n*k+1)
	p.For(m, rowGrain, func(lo, hi int) {
		matmulStream(dst, a, b, lo, hi, 0, n, n, k, lda, ldb, transA, transB)
	})
}

// matmulStream computes the [lo,hi)×[jlo,jhi) block of C = op(A)·op(B)
// with the streaming kernels (no packing): one transpose case each.
func matmulStream(dst, a, b []float32, lo, hi, jlo, jhi, n, k, lda, ldb int, transA, transB bool) {
	switch {
	case !transA && !transB:
		matmulRows(dst, a, b, lo, hi, jlo, jhi, n, k, lda, ldb)
	case !transA && transB:
		// B stored as (n, k): C[i,j] = Σ a[i,l]·b[j,l] — dot of rows.
		for i := lo; i < hi; i++ {
			ai := a[i*lda : i*lda+k]
			ri := dst[i*n : (i+1)*n]
			for j := jlo; j < jhi; j++ {
				bj := b[j*ldb : j*ldb+k]
				var s float32
				for l := 0; l < k; l++ {
					s += ai[l] * bj[l]
				}
				ri[j] = s
			}
		}
	case transA && !transB:
		// A stored as (k, m): C[i,j] = Σ a[l,i]·b[l,j].
		w := jhi - jlo
		for i := lo; i < hi; i++ {
			ri := dst[i*n+jlo : i*n+jhi]
			for x := range ri {
				ri[x] = 0
			}
			for l := 0; l < k; l++ {
				av := a[l*lda+i]
				bl := b[l*ldb+jlo : l*ldb+jlo+w]
				for j, bv := range bl {
					ri[j] += av * bv
				}
			}
		}
	default: // transA && transB
		for i := lo; i < hi; i++ {
			ri := dst[i*n : (i+1)*n]
			for j := jlo; j < jhi; j++ {
				var s float32
				for l := 0; l < k; l++ {
					s += a[l*lda+i] * b[j*ldb+l]
				}
				ri[j] = s
			}
		}
	}
}

// matmulBlocked is the tiled GEMM. The output is decomposed into a 2-D
// grid of blockM×blockN tiles — row blocks × column panels — and the
// tiles of one reduction slab form a single flat parallel region, so
// big square and tall/skinny products alike expose mBlocks×gPanels
// independent work units instead of the row-only split inside one
// column panel that stopped scaling near the row-chunk cap. Column
// panels are grouped (gPanels per group, shape-derived) so short
// matrices still yield a deep tile grid; B panels of a (group, slab)
// are packed once on the calling goroutine and shared read-only by
// every lane, while each executing lane packs A into its own per-lane
// panel, reused across the consecutive column panels of a row block
// (tiles iterate row-block-major within a chunk).
//
// Determinism: the tile grid, the panel groups and the chunk
// boundaries are pure functions of (m, n, k) — never of width — each
// tile owns a disjoint dst block, and the per-element accumulation
// over reduction slabs happens in the ascending pc order of the serial
// outer loop (ForLane joins between slabs). packA/packB contents are
// pure functions of the tile coordinates, so lane assignment cannot
// perturb results; bits match the row-only kernel exactly, because
// every output element still accumulates the same products in the same
// order.
func matmulBlocked(p *Pool, dst, a, b []float32, m, n, k, lda, ldb int, transA, transB bool) {
	mBlocks := (m + blockM - 1) / blockM
	nPanels := (n + blockN - 1) / blockN
	// Panels per group: enough that mBlocks×groupPanels tiles reach the
	// region chunk cap even when m is short, bounded by maxSlabPanels
	// of packed-B scratch. Purely shape-derived.
	groupPanels := (maxRegionChunks + mBlocks - 1) / mBlocks
	if groupPanels > maxSlabPanels {
		groupPanels = maxSlabPanels
	}
	if groupPanels > nPanels {
		groupPanels = nPanels
	}
	packB := p.scratchBuf(scratchPackB, groupPanels*blockK*blockN)
	for jg := 0; jg < nPanels; jg += groupPanels {
		gPanels := min(groupPanels, nPanels-jg)
		for pc := 0; pc < k; pc += blockK {
			kc := min(blockK, k-pc)
			// The group's B panels are packed once per slab, outside
			// the parallel region: workers share the packed panels
			// rather than each repacking them.
			for jp := 0; jp < gPanels; jp++ {
				jc := (jg + jp) * blockN
				nc := min(blockN, n-jc)
				packPanelB(packB[jp*blockK*blockN:], b, pc, kc, jc, nc, ldb, transB)
			}
			tiles := mBlocks * gPanels
			p.ForLane(tiles, 1, func(lane, lo, hi int) {
				packA := p.laneScratch(lane, scratchPackA, blockM*blockK)
				lastIB := -1
				for t := lo; t < hi; t++ {
					ib, jp := t/gPanels, t%gPanels
					ic := ib * blockM
					mc := min(blockM, m-ic)
					jc := (jg + jp) * blockN
					nc := min(blockN, n-jc)
					if ib != lastIB {
						packPanelA(packA, a, ic, mc, pc, kc, lda, transA)
						lastIB = ib
					}
					matmulMicro(dst, packA, packB[jp*blockK*blockN:], ic, mc, jc, nc, kc, n, pc == 0)
				}
			})
		}
	}
}

// packPanelA copies op(A)[ic:ic+mc, pc:pc+kc] into pa, row-major mc×kc.
func packPanelA(pa, a []float32, ic, mc, pc, kc, lda int, transA bool) {
	if !transA {
		for r := 0; r < mc; r++ {
			base := (ic+r)*lda + pc
			copy(pa[r*kc:r*kc+kc], a[base:base+kc])
		}
		return
	}
	// A stored (k, m): transpose while packing.
	for l := 0; l < kc; l++ {
		col := a[(pc+l)*lda+ic : (pc+l)*lda+ic+mc]
		for r, v := range col {
			pa[r*kc+l] = v
		}
	}
}

// packPanelB copies op(B)[pc:pc+kc, jc:jc+nc] into pb, row-major kc×nc.
func packPanelB(pb, b []float32, pc, kc, jc, nc, ldb int, transB bool) {
	if !transB {
		for l := 0; l < kc; l++ {
			base := (pc+l)*ldb + jc
			copy(pb[l*nc:l*nc+nc], b[base:base+nc])
		}
		return
	}
	// B stored (n, k): transpose while packing.
	for j := 0; j < nc; j++ {
		row := b[(jc+j)*ldb+pc : (jc+j)*ldb+pc+kc]
		for l, v := range row {
			pb[l*nc+j] = v
		}
	}
}

// matmulMicro accumulates C[ic:ic+mc, jc:jc+nc] += packA·packB with
// 4×2 register tiling — the extension of matmulRows' 4-row blocking:
// eight scalar accumulators live in registers across the whole K loop,
// so the inner loop performs six loads and no stores per eight
// multiply-adds (4×4 tiling spills accumulators on amd64's sixteen
// vector registers and measures slower). When first is true the C
// microtile starts from zero instead of its current contents.
func matmulMicro(dst, pa, pb []float32, ic, mc, jc, nc, kc, ldc int, first bool) {
	i := 0
	for ; i+4 <= mc; i += 4 {
		a0 := pa[i*kc : i*kc+kc]
		a1 := pa[(i+1)*kc : (i+1)*kc+kc]
		a2 := pa[(i+2)*kc : (i+2)*kc+kc]
		a3 := pa[(i+3)*kc : (i+3)*kc+kc]
		o0 := (ic + i) * ldc
		r0 := dst[o0+jc : o0+jc+nc]
		r1 := dst[o0+ldc+jc : o0+ldc+jc+nc]
		r2 := dst[o0+2*ldc+jc : o0+2*ldc+jc+nc]
		r3 := dst[o0+3*ldc+jc : o0+3*ldc+jc+nc]
		j := 0
		for ; j+2 <= nc; j += 2 {
			var c00, c01, c10, c11, c20, c21, c30, c31 float32
			if !first {
				c00, c01 = r0[j], r0[j+1]
				c10, c11 = r1[j], r1[j+1]
				c20, c21 = r2[j], r2[j+1]
				c30, c31 = r3[j], r3[j+1]
			}
			bo := j
			for l := 0; l < kc; l++ {
				b0, b1 := pb[bo], pb[bo+1]
				c00 += a0[l] * b0
				c01 += a0[l] * b1
				c10 += a1[l] * b0
				c11 += a1[l] * b1
				c20 += a2[l] * b0
				c21 += a2[l] * b1
				c30 += a3[l] * b0
				c31 += a3[l] * b1
				bo += nc
			}
			r0[j], r0[j+1] = c00, c01
			r1[j], r1[j+1] = c10, c11
			r2[j], r2[j+1] = c20, c21
			r3[j], r3[j+1] = c30, c31
		}
		if j < nc {
			var s0, s1, s2, s3 float32
			if !first {
				s0, s1, s2, s3 = r0[j], r1[j], r2[j], r3[j]
			}
			bo := j
			for l := 0; l < kc; l++ {
				bv := pb[bo]
				s0 += a0[l] * bv
				s1 += a1[l] * bv
				s2 += a2[l] * bv
				s3 += a3[l] * bv
				bo += nc
			}
			r0[j], r1[j], r2[j], r3[j] = s0, s1, s2, s3
		}
	}
	for ; i < mc; i++ {
		ai := pa[i*kc : i*kc+kc]
		o := (ic + i) * ldc
		ri := dst[o+jc : o+jc+nc]
		j := 0
		for ; j+2 <= nc; j += 2 {
			var c0, c1 float32
			if !first {
				c0, c1 = ri[j], ri[j+1]
			}
			bo := j
			for l := 0; l < kc; l++ {
				av := ai[l]
				c0 += av * pb[bo]
				c1 += av * pb[bo+1]
				bo += nc
			}
			ri[j], ri[j+1] = c0, c1
		}
		if j < nc {
			var s float32
			if !first {
				s = ri[j]
			}
			bo := j
			for l := 0; l < kc; l++ {
				s += ai[l] * pb[bo]
				bo += nc
			}
			ri[j] = s
		}
	}
}

// matmulRows computes the [lo,hi)×[jlo,jhi) block of C = A·B with
// 4-row register blocking: each pass over a B row feeds four
// accumulator rows, quartering memory traffic on B.
func matmulRows(dst, a, b []float32, lo, hi, jlo, jhi, n, k, lda, ldb int) {
	w := jhi - jlo
	i := lo
	for ; i+4 <= hi; i += 4 {
		r0 := dst[i*n+jlo : i*n+jhi]
		r1 := dst[(i+1)*n+jlo : (i+1)*n+jhi]
		r2 := dst[(i+2)*n+jlo : (i+2)*n+jhi]
		r3 := dst[(i+3)*n+jlo : (i+3)*n+jhi]
		for x := 0; x < w; x++ {
			r0[x], r1[x], r2[x], r3[x] = 0, 0, 0, 0
		}
		a0 := a[i*lda : i*lda+k]
		a1 := a[(i+1)*lda : (i+1)*lda+k]
		a2 := a[(i+2)*lda : (i+2)*lda+k]
		a3 := a[(i+3)*lda : (i+3)*lda+k]
		for l := 0; l < k; l++ {
			bl := b[l*ldb+jlo : l*ldb+jlo+w]
			av0, av1, av2, av3 := a0[l], a1[l], a2[l], a3[l]
			for j, bv := range bl {
				r0[j] += av0 * bv
				r1[j] += av1 * bv
				r2[j] += av2 * bv
				r3[j] += av3 * bv
			}
		}
	}
	for ; i < hi; i++ {
		ri := dst[i*n+jlo : i*n+jhi]
		for x := range ri {
			ri[x] = 0
		}
		ai := a[i*lda : i*lda+k]
		for l := 0; l < k; l++ {
			av := ai[l]
			bl := b[l*ldb+jlo : l*ldb+jlo+w]
			for j, bv := range bl {
				ri[j] += av * bv
			}
		}
	}
}
