package tensor

import "fmt"

// MatMul computes C = op(A) · op(B) for 2-D tensors, where op is an
// optional transpose. The destination is freshly allocated. The kernel
// parallelizes over output rows through the pool.
func MatMul(p *Pool, a, b *Tensor, transA, transB bool) (*Tensor, error) {
	if a.Rank() != 2 || b.Rank() != 2 {
		return nil, fmt.Errorf("tensor: MatMul requires rank-2 inputs, got %v and %v", a.shape, b.shape)
	}
	m, ka := a.shape[0], a.shape[1]
	if transA {
		m, ka = ka, m
	}
	kb, n := b.shape[0], b.shape[1]
	if transB {
		kb, n = n, kb
	}
	if ka != kb {
		return nil, fmt.Errorf("tensor: MatMul inner dimensions disagree: %v (transA=%v) × %v (transB=%v)", a.shape, transA, b.shape, transB)
	}
	out := New(m, n)
	matmulInto(p, out.data, a.data, b.data, m, n, ka, a.shape[1], b.shape[1], transA, transB)
	return out, nil
}

// matmulInto writes op(A)·op(B) into dst (len m*n). lda and ldb are the
// row strides of the *stored* A and B.
func matmulInto(p *Pool, dst, a, b []float32, m, n, k, lda, ldb int, transA, transB bool) {
	// Choose a grain so each chunk is a meaningful amount of work:
	// roughly 64k multiply-adds per chunk minimum.
	grain := 1 + 65536/(n*k+1)
	switch {
	case !transA && !transB:
		p.For(m, grain, func(lo, hi int) {
			matmulRows(dst, a, b, lo, hi, n, k, lda, ldb)
		})
	case !transA && transB:
		// B stored as (n, k): C[i,j] = Σ a[i,l]·b[j,l] — dot of rows.
		p.For(m, grain, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				ai := a[i*lda : i*lda+k]
				ri := dst[i*n : (i+1)*n]
				for j := 0; j < n; j++ {
					bj := b[j*ldb : j*ldb+k]
					var s float32
					for l := 0; l < k; l++ {
						s += ai[l] * bj[l]
					}
					ri[j] = s
				}
			}
		})
	case transA && !transB:
		// A stored as (k, m): C[i,j] = Σ a[l,i]·b[l,j].
		p.For(m, grain, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				ri := dst[i*n : (i+1)*n]
				for x := range ri {
					ri[x] = 0
				}
				for l := 0; l < k; l++ {
					av := a[l*lda+i]
					bl := b[l*ldb : l*ldb+n]
					for j := 0; j < n; j++ {
						ri[j] += av * bl[j]
					}
				}
			}
		})
	default: // transA && transB
		p.For(m, grain, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				ri := dst[i*n : (i+1)*n]
				for j := 0; j < n; j++ {
					var s float32
					for l := 0; l < k; l++ {
						s += a[l*lda+i] * b[j*ldb+l]
					}
					ri[j] = s
				}
			}
		})
	}
}

// matmulRows computes rows [lo,hi) of C = A·B with 4-row register
// blocking: each pass over a B row feeds four accumulator rows,
// quartering memory traffic on B.
func matmulRows(dst, a, b []float32, lo, hi, n, k, lda, ldb int) {
	i := lo
	for ; i+4 <= hi; i += 4 {
		r0 := dst[i*n : (i+1)*n]
		r1 := dst[(i+1)*n : (i+2)*n]
		r2 := dst[(i+2)*n : (i+3)*n]
		r3 := dst[(i+3)*n : (i+4)*n]
		for x := 0; x < n; x++ {
			r0[x], r1[x], r2[x], r3[x] = 0, 0, 0, 0
		}
		a0 := a[i*lda : i*lda+k]
		a1 := a[(i+1)*lda : (i+1)*lda+k]
		a2 := a[(i+2)*lda : (i+2)*lda+k]
		a3 := a[(i+3)*lda : (i+3)*lda+k]
		for l := 0; l < k; l++ {
			bl := b[l*ldb : l*ldb+n]
			av0, av1, av2, av3 := a0[l], a1[l], a2[l], a3[l]
			for j, bv := range bl {
				r0[j] += av0 * bv
				r1[j] += av1 * bv
				r2[j] += av2 * bv
				r3[j] += av3 * bv
			}
		}
	}
	for ; i < hi; i++ {
		ri := dst[i*n : (i+1)*n]
		for x := range ri {
			ri[x] = 0
		}
		ai := a[i*lda : i*lda+k]
		for l := 0; l < k; l++ {
			av := ai[l]
			bl := b[l*ldb : l*ldb+n]
			for j, bv := range bl {
				ri[j] += av * bv
			}
		}
	}
}
