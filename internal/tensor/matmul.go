package tensor

import "fmt"

// MatMul computes C = op(A) · op(B) for 2-D tensors, where op is an
// optional transpose. The destination is freshly allocated. The kernel
// parallelizes over output rows through the pool.
func MatMul(p *Pool, a, b *Tensor, transA, transB bool) (*Tensor, error) {
	m, n, _, err := matmulDims(a, b, transA, transB)
	if err != nil {
		return nil, err
	}
	out := New(m, n)
	matmulInto(p, out.data, a.data, b.data, m, n, matmulK(a, transA), a.shape[1], b.shape[1], transA, transB)
	return out, nil
}

// MatMulInto computes op(A)·op(B) into out, which must have the result
// shape (m, n). out may hold arbitrary data; it is fully overwritten
// and never read before being written, so it must not alias a or b.
func MatMulInto(p *Pool, out, a, b *Tensor, transA, transB bool) error {
	m, n, k, err := matmulDims(a, b, transA, transB)
	if err != nil {
		return err
	}
	if out.Rank() != 2 || out.shape[0] != m || out.shape[1] != n {
		return fmt.Errorf("tensor: MatMulInto destination %v, want [%d %d]", out.shape, m, n)
	}
	matmulInto(p, out.data, a.data, b.data, m, n, k, a.shape[1], b.shape[1], transA, transB)
	return nil
}

func matmulDims(a, b *Tensor, transA, transB bool) (m, n, k int, err error) {
	if a.Rank() != 2 || b.Rank() != 2 {
		return 0, 0, 0, fmt.Errorf("tensor: MatMul requires rank-2 inputs, got %v and %v", a.shape, b.shape)
	}
	m, ka := a.shape[0], a.shape[1]
	if transA {
		m, ka = ka, m
	}
	kb, n := b.shape[0], b.shape[1]
	if transB {
		kb, n = n, kb
	}
	if ka != kb {
		return 0, 0, 0, fmt.Errorf("tensor: MatMul inner dimensions disagree: %v (transA=%v) × %v (transB=%v)", a.shape, transA, b.shape, transB)
	}
	return m, n, ka, nil
}

func matmulK(a *Tensor, transA bool) int {
	if transA {
		return a.shape[0]
	}
	return a.shape[1]
}

// Cache-blocking parameters for the packed kernel (float32 elements):
// a packed A panel is blockM×blockK (64 KB), a packed B panel is
// blockK×blockN (128 KB) — together they sit comfortably in a 2016-era
// L2 cache while C microtile rows stream from L1.
const (
	blockM = 64
	blockK = 256
	blockN = 128

	// blockedMinWork is the m·n·k multiply-add count above which the
	// packed, tiled kernel beats the streaming kernels (packing has a
	// fixed per-panel cost that small products never amortize).
	blockedMinWork = 1 << 20
)

// matmulInto writes op(A)·op(B) into dst (len m*n). lda and ldb are the
// row strides of the *stored* A and B. Large products dispatch to the
// tiled, packed kernel; small ones keep the streaming kernels whose
// setup cost is near zero.
func matmulInto(p *Pool, dst, a, b []float32, m, n, k, lda, ldb int, transA, transB bool) {
	if int64(m)*int64(n)*int64(k) >= blockedMinWork {
		matmulBlocked(p, dst, a, b, m, n, k, lda, ldb, transA, transB)
		return
	}
	// Choose a grain so each chunk is a meaningful amount of work:
	// roughly 64k multiply-adds per chunk minimum.
	grain := 1 + 65536/(n*k+1)
	switch {
	case !transA && !transB:
		p.For(m, grain, func(lo, hi int) {
			matmulRows(dst, a, b, lo, hi, n, k, lda, ldb)
		})
	case !transA && transB:
		// B stored as (n, k): C[i,j] = Σ a[i,l]·b[j,l] — dot of rows.
		p.For(m, grain, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				ai := a[i*lda : i*lda+k]
				ri := dst[i*n : (i+1)*n]
				for j := 0; j < n; j++ {
					bj := b[j*ldb : j*ldb+k]
					var s float32
					for l := 0; l < k; l++ {
						s += ai[l] * bj[l]
					}
					ri[j] = s
				}
			}
		})
	case transA && !transB:
		// A stored as (k, m): C[i,j] = Σ a[l,i]·b[l,j].
		p.For(m, grain, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				ri := dst[i*n : (i+1)*n]
				for x := range ri {
					ri[x] = 0
				}
				for l := 0; l < k; l++ {
					av := a[l*lda+i]
					bl := b[l*ldb : l*ldb+n]
					for j := 0; j < n; j++ {
						ri[j] += av * bl[j]
					}
				}
			}
		})
	default: // transA && transB
		p.For(m, grain, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				ri := dst[i*n : (i+1)*n]
				for j := 0; j < n; j++ {
					var s float32
					for l := 0; l < k; l++ {
						s += a[l*lda+i] * b[j*ldb+l]
					}
					ri[j] = s
				}
			}
		})
	}
}

// matmulBlocked is the tiled GEMM: it walks the output in blockN-wide
// column panels and blockK-deep reduction slabs, packing the active A
// and B panels into contiguous, cache-resident scratch so the
// register-tiled microkernel reads them independently of the operands'
// transpose state. The row loop may really run in parallel, so each
// executing lane packs A into its own per-lane panel (packA contents
// are a pure function of the chunk's rows, so lane assignment cannot
// perturb results); the read-only B panel is packed once per slab on
// the calling goroutine and shared by every lane.
func matmulBlocked(p *Pool, dst, a, b []float32, m, n, k, lda, ldb int, transA, transB bool) {
	packB := p.scratchBuf(scratchPackB, blockK*blockN)
	for jc := 0; jc < n; jc += blockN {
		nc := min(blockN, n-jc)
		for pc := 0; pc < k; pc += blockK {
			kc := min(blockK, k-pc)
			// B is packed once per panel, outside the row-parallel
			// region: workers share the packed panel rather than each
			// repacking it.
			packPanelB(packB, b, pc, kc, jc, nc, ldb, transB)
			grain := 1 + 65536/(nc*kc+1)
			p.ForLane(m, grain, func(lane, lo, hi int) {
				packA := p.laneScratch(lane, scratchPackA, blockM*blockK)
				for ic := lo; ic < hi; ic += blockM {
					mc := min(blockM, hi-ic)
					packPanelA(packA, a, ic, mc, pc, kc, lda, transA)
					matmulMicro(dst, packA, packB, ic, mc, jc, nc, kc, n, pc == 0)
				}
			})
		}
	}
}

// packPanelA copies op(A)[ic:ic+mc, pc:pc+kc] into pa, row-major mc×kc.
func packPanelA(pa, a []float32, ic, mc, pc, kc, lda int, transA bool) {
	if !transA {
		for r := 0; r < mc; r++ {
			base := (ic+r)*lda + pc
			copy(pa[r*kc:r*kc+kc], a[base:base+kc])
		}
		return
	}
	// A stored (k, m): transpose while packing.
	for l := 0; l < kc; l++ {
		col := a[(pc+l)*lda+ic : (pc+l)*lda+ic+mc]
		for r, v := range col {
			pa[r*kc+l] = v
		}
	}
}

// packPanelB copies op(B)[pc:pc+kc, jc:jc+nc] into pb, row-major kc×nc.
func packPanelB(pb, b []float32, pc, kc, jc, nc, ldb int, transB bool) {
	if !transB {
		for l := 0; l < kc; l++ {
			base := (pc+l)*ldb + jc
			copy(pb[l*nc:l*nc+nc], b[base:base+nc])
		}
		return
	}
	// B stored (n, k): transpose while packing.
	for j := 0; j < nc; j++ {
		row := b[(jc+j)*ldb+pc : (jc+j)*ldb+pc+kc]
		for l, v := range row {
			pb[l*nc+j] = v
		}
	}
}

// matmulMicro accumulates C[ic:ic+mc, jc:jc+nc] += packA·packB with
// 4×2 register tiling — the extension of matmulRows' 4-row blocking:
// eight scalar accumulators live in registers across the whole K loop,
// so the inner loop performs six loads and no stores per eight
// multiply-adds (4×4 tiling spills accumulators on amd64's sixteen
// vector registers and measures slower). When first is true the C
// microtile starts from zero instead of its current contents.
func matmulMicro(dst, pa, pb []float32, ic, mc, jc, nc, kc, ldc int, first bool) {
	i := 0
	for ; i+4 <= mc; i += 4 {
		a0 := pa[i*kc : i*kc+kc]
		a1 := pa[(i+1)*kc : (i+1)*kc+kc]
		a2 := pa[(i+2)*kc : (i+2)*kc+kc]
		a3 := pa[(i+3)*kc : (i+3)*kc+kc]
		o0 := (ic + i) * ldc
		r0 := dst[o0+jc : o0+jc+nc]
		r1 := dst[o0+ldc+jc : o0+ldc+jc+nc]
		r2 := dst[o0+2*ldc+jc : o0+2*ldc+jc+nc]
		r3 := dst[o0+3*ldc+jc : o0+3*ldc+jc+nc]
		j := 0
		for ; j+2 <= nc; j += 2 {
			var c00, c01, c10, c11, c20, c21, c30, c31 float32
			if !first {
				c00, c01 = r0[j], r0[j+1]
				c10, c11 = r1[j], r1[j+1]
				c20, c21 = r2[j], r2[j+1]
				c30, c31 = r3[j], r3[j+1]
			}
			bo := j
			for l := 0; l < kc; l++ {
				b0, b1 := pb[bo], pb[bo+1]
				c00 += a0[l] * b0
				c01 += a0[l] * b1
				c10 += a1[l] * b0
				c11 += a1[l] * b1
				c20 += a2[l] * b0
				c21 += a2[l] * b1
				c30 += a3[l] * b0
				c31 += a3[l] * b1
				bo += nc
			}
			r0[j], r0[j+1] = c00, c01
			r1[j], r1[j+1] = c10, c11
			r2[j], r2[j+1] = c20, c21
			r3[j], r3[j+1] = c30, c31
		}
		if j < nc {
			var s0, s1, s2, s3 float32
			if !first {
				s0, s1, s2, s3 = r0[j], r1[j], r2[j], r3[j]
			}
			bo := j
			for l := 0; l < kc; l++ {
				bv := pb[bo]
				s0 += a0[l] * bv
				s1 += a1[l] * bv
				s2 += a2[l] * bv
				s3 += a3[l] * bv
				bo += nc
			}
			r0[j], r1[j], r2[j], r3[j] = s0, s1, s2, s3
		}
	}
	for ; i < mc; i++ {
		ai := pa[i*kc : i*kc+kc]
		o := (ic + i) * ldc
		ri := dst[o+jc : o+jc+nc]
		j := 0
		for ; j+2 <= nc; j += 2 {
			var c0, c1 float32
			if !first {
				c0, c1 = ri[j], ri[j+1]
			}
			bo := j
			for l := 0; l < kc; l++ {
				av := ai[l]
				c0 += av * pb[bo]
				c1 += av * pb[bo+1]
				bo += nc
			}
			ri[j], ri[j+1] = c0, c1
		}
		if j < nc {
			var s float32
			if !first {
				s = ri[j]
			}
			bo := j
			for l := 0; l < kc; l++ {
				s += ai[l] * pb[bo]
				bo += nc
			}
			ri[j] = s
		}
	}
}

// matmulRows computes rows [lo,hi) of C = A·B with 4-row register
// blocking: each pass over a B row feeds four accumulator rows,
// quartering memory traffic on B.
func matmulRows(dst, a, b []float32, lo, hi, n, k, lda, ldb int) {
	i := lo
	for ; i+4 <= hi; i += 4 {
		r0 := dst[i*n : (i+1)*n]
		r1 := dst[(i+1)*n : (i+2)*n]
		r2 := dst[(i+2)*n : (i+3)*n]
		r3 := dst[(i+3)*n : (i+4)*n]
		for x := 0; x < n; x++ {
			r0[x], r1[x], r2[x], r3[x] = 0, 0, 0, 0
		}
		a0 := a[i*lda : i*lda+k]
		a1 := a[(i+1)*lda : (i+1)*lda+k]
		a2 := a[(i+2)*lda : (i+2)*lda+k]
		a3 := a[(i+3)*lda : (i+3)*lda+k]
		for l := 0; l < k; l++ {
			bl := b[l*ldb : l*ldb+n]
			av0, av1, av2, av3 := a0[l], a1[l], a2[l], a3[l]
			for j, bv := range bl {
				r0[j] += av0 * bv
				r1[j] += av1 * bv
				r2[j] += av2 * bv
				r3[j] += av3 * bv
			}
		}
	}
	for ; i < hi; i++ {
		ri := dst[i*n : (i+1)*n]
		for x := range ri {
			ri[x] = 0
		}
		ai := a[i*lda : i*lda+k]
		for l := 0; l < k; l++ {
			av := ai[l]
			bl := b[l*ldb : l*ldb+n]
			for j, bv := range bl {
				ri[j] += av * bv
			}
		}
	}
}
