package tensor

import (
	"fmt"
	"math"
)

// normAxes validates reduction axes against a rank, sorts out
// duplicates, and returns a lookup set.
func normAxes(rank int, axes []int) (map[int]bool, error) {
	set := make(map[int]bool, len(axes))
	for _, a := range axes {
		if a < 0 {
			a += rank
		}
		if a < 0 || a >= rank {
			return nil, fmt.Errorf("tensor: reduction axis out of range for rank %d", rank)
		}
		set[a] = true
	}
	return set, nil
}

// ReducedShape returns the shape after reducing the given axes. When
// keepDims is true the reduced axes remain with length 1; otherwise
// they are removed (a full reduction yields a scalar shape).
func ReducedShape(shape, axes []int, keepDims bool) ([]int, error) {
	set, err := normAxes(len(shape), axes)
	if err != nil {
		return nil, err
	}
	if len(axes) == 0 { // reduce all
		if keepDims {
			out := make([]int, len(shape))
			for i := range out {
				out[i] = 1
			}
			return out, nil
		}
		return []int{}, nil
	}
	var out []int
	for i, d := range shape {
		if set[i] {
			if keepDims {
				out = append(out, 1)
			}
			continue
		}
		out = append(out, d)
	}
	if out == nil {
		out = []int{}
	}
	return out, nil
}

// reduceGrain is the minimum per-chunk element count of a parallel
// full reduction — small enough that the losses of the tiny presets
// still split deterministically, large enough that chunk bookkeeping
// stays negligible.
const reduceGrain = 4096

// sumRange folds id[lo:hi] left to right — each chunk's partial is
// computed in the same index order at every width.
func sumRange(id []float32, lo, hi int) float32 {
	var s float32
	for _, v := range id[lo:hi] {
		s += v
	}
	return s
}

// Reduce applies a sum/max reduction over the given axes (empty axes =
// all). kind is "sum", "mean" or "max".
func Reduce(p *Pool, in *Tensor, axes []int, keepDims bool, kind string) (*Tensor, error) {
	outShape, err := ReducedShape(in.shape, axes, keepDims)
	if err != nil {
		return nil, err
	}
	out := New(outShape...)
	if err := ReduceInto(p, out, in, axes, keepDims, kind); err != nil {
		return nil, err
	}
	return out, nil
}

// ReduceInto applies the reduction into out, which must have the
// reduced shape. out is reinitialized first, so it may hold arbitrary
// data but must not alias in.
func ReduceInto(p *Pool, out, in *Tensor, axes []int, keepDims bool, kind string) error {
	outShape, err := ReducedShape(in.shape, axes, keepDims)
	if err != nil {
		return err
	}
	if !SameShape(out.shape, outShape) {
		return fmt.Errorf("tensor: ReduceInto destination %v, want %v", out.shape, outShape)
	}
	checkNoAlias("ReduceInto", out, in)
	set, _ := normAxes(in.Rank(), axes)
	reduceAll := len(axes) == 0
	// Full reductions take the parallel path: per-chunk float32
	// partials combined in ascending chunk order (see Pool.ForSum), so
	// the result bits are identical at every pool width. The chunking
	// applies at width 1 too — a full reduction is never a plain linear
	// fold anymore, which is what keeps serial and parallel sessions
	// bit-identical.
	if reduceAll {
		id, od := in.data, out.data
		switch kind {
		case "sum", "mean":
			od[0] = p.ForSum(len(id), reduceGrain, func(lo, hi int) float32 {
				return sumRange(id, lo, hi)
			})
			if count := float64(in.Size()) / float64(max(1, out.Size())); kind == "mean" && count > 0 {
				od[0] *= float32(1 / count)
			}
		case "max":
			od[0] = p.ForMax(len(id), reduceGrain, func(lo, hi int) float32 {
				m := id[lo]
				for _, v := range id[lo+1 : hi] {
					if v > m {
						m = v
					}
				}
				return m
			})
		}
		return nil
	}
	// Build strides of the output aligned to the input's index space:
	// reduced axes contribute stride 0.
	ost := make([]int, in.Rank())
	{
		full := make([]int, 0, in.Rank())
		for i, d := range in.shape {
			if reduceAll || set[i] {
				full = append(full, 1)
			} else {
				full = append(full, d)
			}
		}
		fs := Strides(full)
		for i := range ost {
			ost[i] = fs[i]
			if reduceAll || set[i] {
				ost[i] = 0
			}
		}
	}
	id, od := in.data, out.data
	rank := in.Rank()
	var count float64
	if kind == "mean" {
		count = float64(in.Size()) / float64(max(1, out.Size()))
	}
	// Axis reductions with small outer dims take the chunked-partial
	// path: the input walk is chunked (same rule as every For region),
	// each chunk accumulates into a chunk-private output-sized partial
	// vector, and the partials combine elementwise in ascending chunk
	// order (Pool.ForSumVec / Pool.ForMaxVec) — the same determinism
	// contract as the full reductions above, so the result bits are
	// identical at every pool width, including 1.
	if out.Size() <= axisVecElems {
		ist := Strides(in.shape)
		walk := func(lo, hi int, acc []float32, fold func(acc []float32, oo int, v float32)) {
			idx := make([]int, rank)
			rem, oo := lo, 0
			for i := 0; i < rank; i++ {
				idx[i] = rem / ist[i]
				rem %= ist[i]
				oo += idx[i] * ost[i]
			}
			for pos := lo; pos < hi; pos++ {
				fold(acc, oo, id[pos])
				for i := rank - 1; i >= 0; i-- {
					idx[i]++
					oo += ost[i]
					if idx[i] < in.shape[i] {
						break
					}
					idx[i] = 0
					oo -= ost[i] * in.shape[i]
				}
			}
		}
		if kind == "max" {
			p.ForMaxVec(len(id), reduceGrain, len(od), od, func(lo, hi int, acc []float32) {
				walk(lo, hi, acc, func(acc []float32, oo int, v float32) {
					if v > acc[oo] {
						acc[oo] = v
					}
				})
			})
			return nil
		}
		p.ForSumVec(len(id), reduceGrain, len(od), od, func(lo, hi int, acc []float32) {
			walk(lo, hi, acc, func(acc []float32, oo int, v float32) {
				acc[oo] += v
			})
		})
		if kind == "mean" && count > 0 {
			inv := float32(1 / count)
			for i := range od {
				od[i] *= inv
			}
		}
		return nil
	}
	// Large outer dims parallelize over output elements instead: each
	// output element owns its whole reduced fiber, walked in ascending
	// input order — the same element order the old serial input-major
	// walk used for that output — so the result bits match the serial
	// path exactly, and chunk boundaries (a function of out.Size() and
	// grain only) can never split a fiber, making the path bit-identical
	// at every width.
	ist := Strides(in.shape)
	var outDims, outIst, redDims, redIst []int
	for i, d := range in.shape {
		if set[i] {
			redDims = append(redDims, d)
			redIst = append(redIst, ist[i])
		} else {
			outDims = append(outDims, d)
			outIst = append(outIst, ist[i])
		}
	}
	redTotal := 1
	for _, d := range redDims {
		redTotal *= d
	}
	outStrides := Strides(outDims)
	isMax := kind == "max"
	grain := 1 + reduceGrain/max(1, redTotal)
	p.For(len(od), grain, func(lo, hi int) {
		ridx := make([]int, len(redDims))
		for o := lo; o < hi; o++ {
			// Decompose the output index over the non-reduced dims to
			// find the fiber's base input offset. keepDims axes have
			// length 1 in out, so the flat index is the same either way.
			base, rem := 0, o
			for i := range outDims {
				base += (rem / outStrides[i]) * outIst[i]
				rem %= outStrides[i]
			}
			acc := float32(0)
			if isMax {
				acc = negInf
			}
			off := base
			for i := range ridx {
				ridx[i] = 0
			}
			for cnt := 0; cnt < redTotal; cnt++ {
				v := id[off]
				if isMax {
					if v > acc {
						acc = v
					}
				} else {
					acc += v
				}
				for i := len(ridx) - 1; i >= 0; i-- {
					ridx[i]++
					off += redIst[i]
					if ridx[i] < redDims[i] {
						break
					}
					ridx[i] = 0
					off -= redIst[i] * redDims[i]
				}
			}
			od[o] = acc
		}
	})
	if kind == "mean" && count > 0 {
		inv := float32(1 / count)
		for i := range od {
			od[i] *= inv
		}
	}
	return nil
}

// axisVecElems caps the output size eligible for the chunked-partial
// axis-reduction path: per-chunk accumulators cost maxRegionChunks ×
// output elements, so only small outer dims (batch-norm channel
// statistics, per-class sums) qualify — exactly the shapes that were
// stuck serial before, since their outer loop is too short to split.
const axisVecElems = 1024

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Softmax computes row-wise softmax over the last axis.
func Softmax(p *Pool, in *Tensor) *Tensor {
	out := New(in.shape...)
	softmaxInto(p, out, in)
	return out
}

// SoftmaxInto computes row-wise softmax into out, which must have in's
// shape; it is fully overwritten and must not alias in.
func SoftmaxInto(p *Pool, out, in *Tensor) error {
	if !SameShape(out.shape, in.shape) {
		return fmt.Errorf("tensor: SoftmaxInto destination %v, want %v", out.shape, in.shape)
	}
	checkNoAlias("SoftmaxInto", out, in)
	softmaxInto(p, out, in)
	return nil
}

func softmaxInto(p *Pool, out, in *Tensor) {
	c := in.shape[len(in.shape)-1]
	rows := in.Size() / c
	id, od := in.data, out.data
	p.For(rows, 64, func(lo, hi int) {
		for r := lo; r < hi; r++ {
			row := id[r*c : (r+1)*c]
			orow := od[r*c : (r+1)*c]
			m := row[0]
			for _, v := range row {
				if v > m {
					m = v
				}
			}
			var sum float32
			for j, v := range row {
				e := float32(math.Exp(float64(v - m)))
				orow[j] = e
				sum += e
			}
			inv := 1 / sum
			for j := range orow {
				orow[j] *= inv
			}
		}
	})
}

// LogSumExp computes log(Σ exp(x)) over the last axis, one value per
// row, returned with the last axis removed.
func LogSumExp(p *Pool, in *Tensor) *Tensor {
	c := in.shape[len(in.shape)-1]
	rows := in.Size() / c
	out := New(in.shape[:len(in.shape)-1]...)
	id, od := in.data, out.data
	p.For(rows, 64, func(lo, hi int) {
		for r := lo; r < hi; r++ {
			row := id[r*c : (r+1)*c]
			m := row[0]
			for _, v := range row {
				if v > m {
					m = v
				}
			}
			var sum float64
			for _, v := range row {
				sum += math.Exp(float64(v - m))
			}
			od[r] = m + float32(math.Log(sum))
		}
	})
	return out
}

// ArgMax returns the index of the maximum along the last axis, stored
// as float32 values, with the last axis removed.
func ArgMax(in *Tensor) *Tensor {
	c := in.shape[len(in.shape)-1]
	rows := in.Size() / c
	out := New(in.shape[:len(in.shape)-1]...)
	for r := 0; r < rows; r++ {
		row := in.data[r*c : (r+1)*c]
		bi, bv := 0, row[0]
		for j, v := range row {
			if v > bv {
				bv, bi = v, j
			}
		}
		out.data[r] = float32(bi)
	}
	return out
}
