package tensor

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/sched"
)

// naiveAttentionRef is the unfused reference chain exactly as the
// graph executes it — Transpose, BatchMatMul, elementwise Mul by the
// scale constant, Softmax, BatchMatMul — materializing the rank-3
// Kᵀ, score, scaled-score and probability tensors (the (G,S,S)
// intermediates the fused kernel exists to avoid), with the batched
// matmul's per-slice result copies. Kept as the bit-equality baseline
// for the fused streaming kernel and as the measurement baseline in
// BENCH_kernels.json.
func naiveAttentionRef(t testing.TB, p *Pool, q, k, v *Tensor, scale float32) *Tensor {
	kt, err := Transpose(p, k, []int{0, 2, 1})
	if err != nil {
		t.Fatal(err)
	}
	scores := naiveBatchMatMul(t, p, q, kt)
	scaled, err := BinaryOp(p, scores, Scalar(scale), func(a, b float32) float32 { return a * b })
	if err != nil {
		t.Fatal(err)
	}
	w := Softmax(p, scaled)
	return naiveBatchMatMul(t, p, w, v)
}

// naiveBatchMatMul mirrors the BatchMatMul op's Forward: one MatMul
// per stacked slice, each result copied into the rank-3 output.
func naiveBatchMatMul(t testing.TB, p *Pool, a, b *Tensor) *Tensor {
	g, m, k := a.shape[0], a.shape[1], a.shape[2]
	n := b.shape[2]
	out := New(g, m, n)
	for i := 0; i < g; i++ {
		ai := FromSlice(a.data[i*m*k:(i+1)*m*k], m, k)
		bi := FromSlice(b.data[i*k*n:(i+1)*k*n], k, n)
		ci, err := MatMul(p, ai, bi, false, false)
		if err != nil {
			t.Fatal(err)
		}
		copy(out.data[i*m*n:(i+1)*m*n], ci.data)
	}
	return out
}

func attnPools(t testing.TB, widths []int) map[int]*Pool {
	ex := sched.New(8)
	t.Cleanup(ex.Close)
	pools := make(map[int]*Pool, len(widths))
	for _, w := range widths {
		if w == 1 {
			pools[w] = NewPool(1)
		} else {
			pools[w] = NewParallelPool(w, ex)
		}
	}
	return pools
}

// TestAttentionMatchesNaive pins the fused streaming-softmax kernel
// bit-identical to the unfused reference chain across shapes and
// intra-op widths — the kernel keeps every float operation in the
// reference order, so the max |Δ| must be exactly zero.
func TestAttentionMatchesNaive(t *testing.T) {
	pools := attnPools(t, []int{1, 2, 4, 8})
	shapes := []struct{ g, s, dh int }{
		{1, 1, 1},
		{1, 7, 3},
		{2, 33, 8},
		{8, 64, 16},
		{3, 130, 24}, // rows split across many chunks
	}
	rng := rand.New(rand.NewSource(5))
	for _, sh := range shapes {
		q := RandNormal(rng, 0, 1, sh.g, sh.s, sh.dh)
		k := RandNormal(rng, 0, 1, sh.g, sh.s, sh.dh)
		v := RandNormal(rng, 0, 1, sh.g, sh.s, sh.dh)
		scale := float32(1 / math.Sqrt(float64(sh.dh)))
		ref := naiveAttentionRef(t, NewPool(1), q, k, v, scale)
		for w, p := range pools {
			got, err := Attention(p, q, k, v, scale)
			if err != nil {
				t.Fatal(err)
			}
			if d := MaxAbsDiff(got, ref); d != 0 {
				t.Errorf("(%d,%d,%d) width %d: fused differs from naive (max |Δ| %g)", sh.g, sh.s, sh.dh, w, d)
			}
			refW := naiveAttentionRef(t, p, q, k, v, scale)
			if d := MaxAbsDiff(refW, ref); d != 0 {
				t.Errorf("(%d,%d,%d) width %d: naive chain not width-invariant (max |Δ| %g)", sh.g, sh.s, sh.dh, w, d)
			}
		}
	}
}

// TestAttentionStreamingSoftmaxStability is the softmax stability
// property test: rows with large-magnitude logits (up to ±1e4 before
// scaling, far past float32 exp range without the max-shift) and with
// ±Inf mask entries must agree bit-for-bit between the streaming
// kernel and the materialized reference at widths {1,2,8}. The -Inf
// masks follow the standard additive attention-mask idiom; a row
// masked everywhere degenerates to NaN in the reference and must do
// so identically in the fused kernel.
func TestAttentionStreamingSoftmaxStability(t *testing.T) {
	pools := attnPools(t, []int{1, 2, 8})
	const g, s, dh = 4, 48, 8
	rng := rand.New(rand.NewSource(17))
	q := RandNormal(rng, 0, 100, g, s, dh)
	k := RandNormal(rng, 0, 100, g, s, dh)
	v := RandNormal(rng, 0, 1, g, s, dh)

	// Group 1: huge-magnitude keys so scores reach ±1e4.
	for i := s * dh; i < 2*s*dh; i++ {
		k.data[i] *= 100
	}
	ninf := float32(math.Inf(-1))
	pinf := float32(math.Inf(1))
	// Group 2: causal-style -Inf mask via -Inf keys — every score in
	// the masked columns becomes ±Inf or NaN depending on q's sign,
	// exercising the degenerate exp paths.
	for j := s / 2; j < s; j++ {
		for d := 0; d < dh; d++ {
			k.data[2*s*dh+j*dh+d] = ninf
		}
	}
	// Group 3: one fully +Inf row of queries (max is +Inf, exp(Inf-Inf)
	// is NaN) and one all--Inf score row.
	for d := 0; d < dh; d++ {
		q.data[3*s*dh+d] = pinf
		k.data[3*s*dh+d] = ninf
	}

	ref := naiveAttentionRef(t, NewPool(1), q, k, v, 0.125)
	for w, p := range pools {
		got, err := Attention(p, q, k, v, 0.125)
		if err != nil {
			t.Fatal(err)
		}
		for i := range got.data {
			r, o := ref.data[i], got.data[i]
			if math.IsNaN(float64(r)) != math.IsNaN(float64(o)) || (!math.IsNaN(float64(r)) && r != o) {
				t.Fatalf("width %d: element %d differs: fused %v vs naive %v", w, i, o, r)
			}
		}
	}
}

// TestAttentionShapeErrors pins the kernel's operand validation.
func TestAttentionShapeErrors(t *testing.T) {
	p := NewPool(1)
	q := New(2, 4, 8)
	bad := New(2, 4, 7)
	rank2 := New(4, 8)
	if _, err := Attention(p, rank2, rank2, rank2, 1); err == nil {
		t.Error("rank-2 operands should be rejected")
	}
	if _, err := Attention(p, q, bad, New(2, 4, 8), 1); err == nil {
		t.Error("mismatched K shape should be rejected")
	}
	if err := AttentionInto(p, bad, q, New(2, 4, 8), New(2, 4, 8), 1); err == nil {
		t.Error("mismatched destination should be rejected")
	}
}

// benchAttnOperands builds the standard benchmark shape: 8 groups
// (e.g. batch 2 × 4 heads) at sequence length 256, head dim 64 — the
// seq-len ≥ 256 regime where the naive chain's (G,S,S) score traffic
// dominates.
func benchAttnOperands() (q, k, v *Tensor, scale float32) {
	rng := rand.New(rand.NewSource(23))
	const g, s, dh = 8, 256, 64
	return RandNormal(rng, 0, 1, g, s, dh),
		RandNormal(rng, 0, 1, g, s, dh),
		RandNormal(rng, 0, 1, g, s, dh),
		float32(1 / math.Sqrt(float64(dh)))
}

func BenchmarkAttentionFused(b *testing.B) {
	ex := sched.New(8)
	defer ex.Close()
	p := NewParallelPool(8, ex)
	q, k, v, scale := benchAttnOperands()
	out := New(q.shape...)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := AttentionInto(p, out, q, k, v, scale); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAttentionNaive(b *testing.B) {
	ex := sched.New(8)
	defer ex.Close()
	p := NewParallelPool(8, ex)
	q, k, v, scale := benchAttnOperands()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		naiveAttentionRef(b, p, q, k, v, scale)
	}
}
