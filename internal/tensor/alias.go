package tensor

import (
	"fmt"
	"unsafe"
)

// AliasChecks enables the overlap guard of the *Into kernels
// (MatMulInto, ReduceInto, SoftmaxInto). Those kernels document that
// the destination must not alias an input — they write the destination
// before they are done reading the inputs — but the contract was never
// enforced, so an aliasing caller corrupted results silently. With
// AliasChecks on, an aliasing call panics instead. Like
// tensor.BufferGuard, the guard is debug-gated: test binaries switch it
// on (the determinism and kernel suites run fully guarded) and
// production paths skip the pointer comparisons.
var AliasChecks = false

// checkNoAlias panics when dst shares backing memory with any input.
// It is a no-op unless AliasChecks is set.
func checkNoAlias(kernel string, dst *Tensor, ins ...*Tensor) {
	if !AliasChecks || dst == nil {
		return
	}
	for _, in := range ins {
		if in == nil || in == dst {
			if in == dst && in != nil {
				panic(fmt.Sprintf("tensor: %s destination aliases an input (same tensor) — *Into kernels require distinct storage", kernel))
			}
			continue
		}
		if slicesOverlap(dst.data, in.data) {
			panic(fmt.Sprintf("tensor: %s destination %v overlaps input %v — *Into kernels require distinct storage", kernel, dst.shape, in.shape))
		}
	}
}

// slicesOverlap reports whether two float32 slices share any backing
// elements. The uintptr comparison is only ever used to detect overlap
// of live slices passed in by the caller, never to derive a pointer.
func slicesOverlap(a, b []float32) bool {
	if len(a) == 0 || len(b) == 0 {
		return false
	}
	as := uintptr(unsafe.Pointer(&a[0]))
	bs := uintptr(unsafe.Pointer(&b[0]))
	size := unsafe.Sizeof(a[0])
	ae := as + uintptr(len(a))*size
	be := bs + uintptr(len(b))*size
	return as < be && bs < ae
}
