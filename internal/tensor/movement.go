package tensor

import "fmt"

// Transpose permutes the axes of a tensor. perm must be a permutation
// of [0,rank).
func Transpose(p *Pool, in *Tensor, perm []int) (*Tensor, error) {
	rank := in.Rank()
	if len(perm) != rank {
		return nil, fmt.Errorf("tensor: Transpose perm %v does not match rank %d", perm, rank)
	}
	seen := make([]bool, rank)
	outShape := make([]int, rank)
	for i, a := range perm {
		if a < 0 || a >= rank || seen[a] {
			return nil, fmt.Errorf("tensor: Transpose perm %v is not a permutation", perm)
		}
		seen[a] = true
		outShape[i] = in.shape[a]
	}
	out := New(outShape...)
	if rank == 2 && perm[0] == 1 && perm[1] == 0 {
		// Fast common case.
		r, c := in.shape[0], in.shape[1]
		id, od := in.data, out.data
		p.For(r, 64, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				for j := 0; j < c; j++ {
					od[j*r+i] = id[i*c+j]
				}
			}
		})
		return out, nil
	}
	// Stride of output position per input axis.
	ostByIn := make([]int, rank)
	ost := Strides(outShape)
	for i, a := range perm {
		ostByIn[a] = ost[i]
	}
	id, od := in.data, out.data
	idx := make([]int, rank)
	opos := 0
	for pos := 0; pos < len(id); pos++ {
		od[opos] = id[pos]
		for i := rank - 1; i >= 0; i-- {
			idx[i]++
			opos += ostByIn[i]
			if idx[i] < in.shape[i] {
				break
			}
			idx[i] = 0
			opos -= ostByIn[i] * in.shape[i]
		}
	}
	return out, nil
}

// Tile repeats a tensor multiples[i] times along each axis.
func Tile(p *Pool, in *Tensor, multiples []int) (*Tensor, error) {
	rank := in.Rank()
	if len(multiples) != rank {
		return nil, fmt.Errorf("tensor: Tile multiples %v does not match rank %d", multiples, rank)
	}
	outShape := make([]int, rank)
	for i := range outShape {
		if multiples[i] < 1 {
			return nil, fmt.Errorf("tensor: Tile multiple must be >= 1, got %v", multiples)
		}
		outShape[i] = in.shape[i] * multiples[i]
	}
	out := New(outShape...)
	ist := Strides(in.shape)
	ost := Strides(outShape)
	id, od := in.data, out.data
	total := out.Size()
	p.For(total/max(1, outShape[rank-1]), 256, func(lo, hi int) {
		// Iterate over output rows (all but last axis), copying with
		// wrapped last axis.
		lastIn := in.shape[rank-1]
		lastOut := outShape[rank-1]
		for row := lo; row < hi; row++ {
			// Decompose row into leading output indices.
			rem := row
			ibase := 0
			for i := 0; i < rank-1; i++ {
				d := rem / (ost[i] / lastOut)
				rem %= ost[i] / lastOut
				ibase += (d % in.shape[i]) * ist[i]
			}
			orow := od[row*lastOut : (row+1)*lastOut]
			irow := id[ibase : ibase+lastIn]
			for j := 0; j < lastOut; j++ {
				orow[j] = irow[j%lastIn]
			}
		}
	})
	return out, nil
}

// TileGradReduce sums a gradient of the tiled shape back to the
// original shape (the adjoint of Tile).
func TileGradReduce(p *Pool, grad *Tensor, origShape []int) *Tensor {
	out := New(origShape...)
	ist := Strides(origShape)
	rank := len(origShape)
	gd, od := grad.data, out.data
	idx := make([]int, rank)
	for pos := 0; pos < len(gd); pos++ {
		off := 0
		for i := 0; i < rank; i++ {
			off += (idx[i] % origShape[i]) * ist[i]
		}
		od[off] += gd[pos]
		for i := rank - 1; i >= 0; i-- {
			idx[i]++
			if idx[i] < grad.shape[i] {
				break
			}
			idx[i] = 0
		}
	}
	return out
}

// Concat joins tensors along the given axis. All inputs must agree on
// every other dimension.
func Concat(p *Pool, axis int, ins ...*Tensor) (*Tensor, error) {
	if len(ins) == 0 {
		return nil, fmt.Errorf("tensor: Concat requires at least one input")
	}
	rank := ins[0].Rank()
	if axis < 0 {
		axis += rank
	}
	if axis < 0 || axis >= rank {
		return nil, fmt.Errorf("tensor: Concat axis %d out of range for rank %d", axis, rank)
	}
	outShape := append([]int(nil), ins[0].shape...)
	concatDim := 0
	for _, t := range ins {
		if t.Rank() != rank {
			return nil, fmt.Errorf("tensor: Concat rank mismatch")
		}
		for i := range t.shape {
			if i != axis && t.shape[i] != outShape[i] {
				return nil, fmt.Errorf("tensor: Concat shape mismatch %v vs %v on axis %d", t.shape, outShape, i)
			}
		}
		concatDim += t.shape[axis]
	}
	outShape[axis] = concatDim
	out := New(outShape...)
	// outer = product of dims before axis; inner = product after.
	outer := 1
	for i := 0; i < axis; i++ {
		outer *= outShape[i]
	}
	inner := 1
	for i := axis + 1; i < rank; i++ {
		inner *= outShape[i]
	}
	rowOut := concatDim * inner
	off := 0
	for _, t := range ins {
		rowIn := t.shape[axis] * inner
		td := t.data
		for o := 0; o < outer; o++ {
			copy(out.data[o*rowOut+off:o*rowOut+off+rowIn], td[o*rowIn:(o+1)*rowIn])
		}
		off += rowIn
	}
	return out, nil
}

// SliceTensor extracts a contiguous region: out[i...] =
// in[begin[0]+i0, begin[1]+i1, ...] with the given size per axis. A
// size of -1 means "to the end of that axis".
func SliceTensor(p *Pool, in *Tensor, begin, size []int) (*Tensor, error) {
	rank := in.Rank()
	if len(begin) != rank || len(size) != rank {
		return nil, fmt.Errorf("tensor: Slice begin/size must match rank %d", rank)
	}
	outShape := make([]int, rank)
	for i := range outShape {
		s := size[i]
		if s == -1 {
			s = in.shape[i] - begin[i]
		}
		if begin[i] < 0 || s < 0 || begin[i]+s > in.shape[i] {
			return nil, fmt.Errorf("tensor: Slice [%v:%v] out of bounds for %v", begin, size, in.shape)
		}
		outShape[i] = s
	}
	out := New(outShape...)
	ist := Strides(in.shape)
	copySlice(in.data, out.data, in.shape, outShape, begin, ist, 0, 0, 0)
	return out, nil
}

func copySlice(id, od []float32, inShape, outShape, begin, ist []int, axis, ioff, ooff int) {
	if axis == len(outShape)-1 {
		base := ioff + begin[axis]
		copy(od[ooff:ooff+outShape[axis]], id[base:base+outShape[axis]])
		return
	}
	ostride := 1
	for i := axis + 1; i < len(outShape); i++ {
		ostride *= outShape[i]
	}
	for i := 0; i < outShape[axis]; i++ {
		copySlice(id, od, inShape, outShape, begin, ist, axis+1,
			ioff+(begin[axis]+i)*ist[axis], ooff+i*ostride)
	}
}

// SliceGradPad places grad back into a zero tensor of the original
// shape at the slice position (the adjoint of SliceTensor).
func SliceGradPad(p *Pool, grad *Tensor, origShape, begin []int) *Tensor {
	out := New(origShape...)
	ist := Strides(origShape)
	addSlice(out.data, grad.data, origShape, grad.shape, begin, ist, 0, 0, 0)
	return out
}

func addSlice(od, gd []float32, origShape, gShape, begin, ist []int, axis, ooff, goff int) {
	if axis == len(gShape)-1 {
		base := ooff + begin[axis]
		for j := 0; j < gShape[axis]; j++ {
			od[base+j] += gd[goff+j]
		}
		return
	}
	gstride := 1
	for i := axis + 1; i < len(gShape); i++ {
		gstride *= gShape[i]
	}
	for i := 0; i < gShape[axis]; i++ {
		addSlice(od, gd, origShape, gShape, begin, ist, axis+1,
			ooff+(begin[axis]+i)*ist[axis], goff+i*gstride)
	}
}

// Pad zero-pads each axis with before[i] leading and after[i] trailing
// zeros.
func Pad(p *Pool, in *Tensor, before, after []int) (*Tensor, error) {
	rank := in.Rank()
	if len(before) != rank || len(after) != rank {
		return nil, fmt.Errorf("tensor: Pad before/after must match rank %d", rank)
	}
	outShape := make([]int, rank)
	for i := range outShape {
		if before[i] < 0 || after[i] < 0 {
			return nil, fmt.Errorf("tensor: Pad amounts must be non-negative")
		}
		outShape[i] = in.shape[i] + before[i] + after[i]
	}
	out := New(outShape...)
	ost := Strides(outShape)
	addSliceSet(out.data, in.data, outShape, in.shape, before, ost, 0, 0, 0)
	return out, nil
}

func addSliceSet(od, id []float32, outShape, inShape, begin, ost []int, axis, ooff, ioff int) {
	if axis == len(inShape)-1 {
		base := ooff + begin[axis]
		copy(od[base:base+inShape[axis]], id[ioff:ioff+inShape[axis]])
		return
	}
	istride := 1
	for i := axis + 1; i < len(inShape); i++ {
		istride *= inShape[i]
	}
	for i := 0; i < inShape[axis]; i++ {
		addSliceSet(od, id, outShape, inShape, begin, ost, axis+1,
			ooff+(begin[axis]+i)*ost[axis], ioff+i*istride)
	}
}

// GatherRows selects rows of params (axis 0) by integer indices stored
// as float32 values: out[i, ...] = params[indices[i], ...]. The index
// tensor may have any shape; its shape replaces axis 0 of params.
func GatherRows(p *Pool, params, indices *Tensor) (*Tensor, error) {
	if params.Rank() < 1 {
		return nil, fmt.Errorf("tensor: GatherRows requires rank >= 1 params")
	}
	rowLen := params.Size() / params.shape[0]
	outShape := append(append([]int(nil), indices.shape...), params.shape[1:]...)
	out := New(outShape...)
	pd, idd, od := params.data, indices.data, out.data
	n := indices.Size()
	for i := 0; i < n; i++ {
		r := int(idd[i])
		if r < 0 || r >= params.shape[0] {
			return nil, fmt.Errorf("tensor: GatherRows index %d out of range [0,%d)", r, params.shape[0])
		}
		copy(od[i*rowLen:(i+1)*rowLen], pd[r*rowLen:(r+1)*rowLen])
	}
	return out, nil
}

// ScatterAddRows accumulates grad rows back into a zero tensor of
// paramShape at the indexed rows (the adjoint of GatherRows).
func ScatterAddRows(p *Pool, grad, indices *Tensor, paramShape []int) *Tensor {
	out := New(paramShape...)
	rowLen := out.Size() / paramShape[0]
	gd, idd, od := grad.data, indices.data, out.data
	n := indices.Size()
	for i := 0; i < n; i++ {
		r := int(idd[i])
		dst := od[r*rowLen : (r+1)*rowLen]
		src := gd[i*rowLen : (i+1)*rowLen]
		for j := range dst {
			dst[j] += src[j]
		}
	}
	return out
}
