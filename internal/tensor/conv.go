package tensor

import "fmt"

// ConvSpec describes a 2-D convolution in NHWC layout.
type ConvSpec struct {
	StrideH, StrideW int
	PadH, PadW       int // symmetric zero padding applied to each side
}

// ConvOutSize returns the output spatial size for an input of size in,
// filter size k, stride s and padding p on each side.
func ConvOutSize(in, k, s, p int) int {
	o := (in+2*p-k)/s + 1
	if o < 0 {
		o = 0
	}
	return o
}

// SamePad returns the padding that keeps output = ceil(in/stride) for
// odd filter sizes (TensorFlow "SAME" with symmetric padding).
func SamePad(k int) int { return (k - 1) / 2 }

func (c ConvSpec) check() ConvSpec {
	if c.StrideH < 1 {
		c.StrideH = 1
	}
	if c.StrideW < 1 {
		c.StrideW = 1
	}
	return c
}

// Conv2D computes a 2-D convolution: input (N,H,W,Cin) with filter
// (KH,KW,Cin,Cout) producing (N,OH,OW,Cout). Parallelized over N*OH.
func Conv2D(p *Pool, in, filter *Tensor, spec ConvSpec) (*Tensor, error) {
	spec = spec.check()
	if in.Rank() != 4 || filter.Rank() != 4 {
		return nil, fmt.Errorf("tensor: Conv2D requires NHWC input and KHKWCinCout filter, got %v and %v", in.shape, filter.shape)
	}
	n, h, w, cin := in.shape[0], in.shape[1], in.shape[2], in.shape[3]
	kh, kw, fcin, cout := filter.shape[0], filter.shape[1], filter.shape[2], filter.shape[3]
	if cin != fcin {
		return nil, fmt.Errorf("tensor: Conv2D channel mismatch: input %v filter %v", in.shape, filter.shape)
	}
	oh := ConvOutSize(h, kh, spec.StrideH, spec.PadH)
	ow := ConvOutSize(w, kw, spec.StrideW, spec.PadW)
	out := New(n, oh, ow, cout)
	id, fd, od := in.data, filter.data, out.data
	rows := n * oh
	grain := 1 + 32768/(ow*cout*kh*kw*cin+1)
	p.For(rows, grain, func(lo, hi int) {
		for r := lo; r < hi; r++ {
			b := r / oh
			oy := r % oh
			for ox := 0; ox < ow; ox++ {
				obase := ((b*oh+oy)*ow + ox) * cout
				acc := od[obase : obase+cout]
				iy0 := oy*spec.StrideH - spec.PadH
				ix0 := ox*spec.StrideW - spec.PadW
				for ky := 0; ky < kh; ky++ {
					iy := iy0 + ky
					if iy < 0 || iy >= h {
						continue
					}
					for kx := 0; kx < kw; kx++ {
						ix := ix0 + kx
						if ix < 0 || ix >= w {
							continue
						}
						ibase := ((b*h+iy)*w + ix) * cin
						fbase := (ky*kw + kx) * cin * cout
						for c := 0; c < cin; c++ {
							v := id[ibase+c]
							frow := fd[fbase+c*cout : fbase+(c+1)*cout]
							for co := 0; co < cout; co++ {
								acc[co] += v * frow[co]
							}
						}
					}
				}
			}
		}
	})
	return out, nil
}

// Conv2DBackFilter computes the gradient of Conv2D with respect to the
// filter: input (N,H,W,Cin), gradOut (N,OH,OW,Cout) → (KH,KW,Cin,Cout).
// Parallelized over filter rows (each chunk owns disjoint output cells).
func Conv2DBackFilter(p *Pool, in, gradOut *Tensor, kh, kw int, spec ConvSpec) (*Tensor, error) {
	spec = spec.check()
	n, h, w, cin := in.shape[0], in.shape[1], in.shape[2], in.shape[3]
	gn, oh, ow, cout := gradOut.shape[0], gradOut.shape[1], gradOut.shape[2], gradOut.shape[3]
	if n != gn {
		return nil, fmt.Errorf("tensor: Conv2DBackFilter batch mismatch %v vs %v", in.shape, gradOut.shape)
	}
	out := New(kh, kw, cin, cout)
	id, gd, od := in.data, gradOut.data, out.data
	grain := 1 // kh is small; each row is heavy
	p.For(kh, grain, func(lo, hi int) {
		for ky := lo; ky < hi; ky++ {
			for kx := 0; kx < kw; kx++ {
				fbase := (ky*kw + kx) * cin * cout
				for b := 0; b < n; b++ {
					for oy := 0; oy < oh; oy++ {
						iy := oy*spec.StrideH - spec.PadH + ky
						if iy < 0 || iy >= h {
							continue
						}
						for ox := 0; ox < ow; ox++ {
							ix := ox*spec.StrideW - spec.PadW + kx
							if ix < 0 || ix >= w {
								continue
							}
							ibase := ((b*h+iy)*w + ix) * cin
							gbase := ((b*oh+oy)*ow + ox) * cout
							grow := gd[gbase : gbase+cout]
							for c := 0; c < cin; c++ {
								v := id[ibase+c]
								frow := od[fbase+c*cout : fbase+(c+1)*cout]
								for co := 0; co < cout; co++ {
									frow[co] += v * grow[co]
								}
							}
						}
					}
				}
			}
		}
	})
	return out, nil
}

// Conv2DBackInput computes the gradient of Conv2D with respect to the
// input: filter (KH,KW,Cin,Cout), gradOut (N,OH,OW,Cout) → (N,H,W,Cin).
// Parallelized over batch entries (disjoint output regions).
func Conv2DBackInput(p *Pool, filter, gradOut *Tensor, h, w int, spec ConvSpec) (*Tensor, error) {
	spec = spec.check()
	kh, kw, cin, cout := filter.shape[0], filter.shape[1], filter.shape[2], filter.shape[3]
	n, oh, ow, gcout := gradOut.shape[0], gradOut.shape[1], gradOut.shape[2], gradOut.shape[3]
	if cout != gcout {
		return nil, fmt.Errorf("tensor: Conv2DBackInput channel mismatch filter %v gradOut %v", filter.shape, gradOut.shape)
	}
	out := New(n, h, w, cin)
	fd, gd, od := filter.data, gradOut.data, out.data
	p.For(n, 1, func(lo, hi int) {
		for b := lo; b < hi; b++ {
			for oy := 0; oy < oh; oy++ {
				iy0 := oy*spec.StrideH - spec.PadH
				for ox := 0; ox < ow; ox++ {
					ix0 := ox*spec.StrideW - spec.PadW
					gbase := ((b*oh+oy)*ow + ox) * cout
					grow := gd[gbase : gbase+cout]
					for ky := 0; ky < kh; ky++ {
						iy := iy0 + ky
						if iy < 0 || iy >= h {
							continue
						}
						for kx := 0; kx < kw; kx++ {
							ix := ix0 + kx
							if ix < 0 || ix >= w {
								continue
							}
							ibase := ((b*h+iy)*w + ix) * cin
							fbase := (ky*kw + kx) * cin * cout
							for c := 0; c < cin; c++ {
								frow := fd[fbase+c*cout : fbase+(c+1)*cout]
								var s float32
								for co := 0; co < cout; co++ {
									s += frow[co] * grow[co]
								}
								od[ibase+c] += s
							}
						}
					}
				}
			}
		}
	})
	return out, nil
}

// MaxPool computes max pooling over (N,H,W,C) with window k and stride
// s (symmetric padding p, padded cells treated as -inf).
func MaxPool(p *Pool, in *Tensor, k, s, pad int) (*Tensor, error) {
	if in.Rank() != 4 {
		return nil, fmt.Errorf("tensor: MaxPool requires NHWC input, got %v", in.shape)
	}
	n, h, w, c := in.shape[0], in.shape[1], in.shape[2], in.shape[3]
	oh := ConvOutSize(h, k, s, pad)
	ow := ConvOutSize(w, k, s, pad)
	out := New(n, oh, ow, c)
	id, od := in.data, out.data
	rows := n * oh
	p.For(rows, 4, func(lo, hi int) {
		for r := lo; r < hi; r++ {
			b := r / oh
			oy := r % oh
			for ox := 0; ox < ow; ox++ {
				obase := ((b*oh+oy)*ow + ox) * c
				for ch := 0; ch < c; ch++ {
					best := float32(negInf)
					for ky := 0; ky < k; ky++ {
						iy := oy*s - pad + ky
						if iy < 0 || iy >= h {
							continue
						}
						for kx := 0; kx < k; kx++ {
							ix := ox*s - pad + kx
							if ix < 0 || ix >= w {
								continue
							}
							v := id[((b*h+iy)*w+ix)*c+ch]
							if v > best {
								best = v
							}
						}
					}
					od[obase+ch] = best
				}
			}
		}
	})
	return out, nil
}

const negInf = float32(-3.4e38)

// MaxPoolGrad routes gradOut back to the argmax input cell of each
// pooling window (ties go to the first maximum, matching MaxPool).
func MaxPoolGrad(p *Pool, in, gradOut *Tensor, k, s, pad int) (*Tensor, error) {
	n, h, w, c := in.shape[0], in.shape[1], in.shape[2], in.shape[3]
	oh, ow := gradOut.shape[1], gradOut.shape[2]
	out := New(in.shape...)
	id, gd, od := in.data, gradOut.data, out.data
	// Pooling windows can overlap when s < k, so parallelize over batch
	// entries only (disjoint input regions).
	p.For(n, 1, func(lo, hi int) {
		for b := lo; b < hi; b++ {
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					gbase := ((b*oh+oy)*ow + ox) * c
					for ch := 0; ch < c; ch++ {
						best := float32(negInf)
						bi := -1
						for ky := 0; ky < k; ky++ {
							iy := oy*s - pad + ky
							if iy < 0 || iy >= h {
								continue
							}
							for kx := 0; kx < k; kx++ {
								ix := ox*s - pad + kx
								if ix < 0 || ix >= w {
									continue
								}
								off := ((b*h+iy)*w+ix)*c + ch
								if id[off] > best {
									best = id[off]
									bi = off
								}
							}
						}
						if bi >= 0 {
							od[bi] += gd[gbase+ch]
						}
					}
				}
			}
		}
	})
	return out, nil
}

// AvgPool computes average pooling over valid (unpadded) cells.
func AvgPool(p *Pool, in *Tensor, k, s, pad int) (*Tensor, error) {
	if in.Rank() != 4 {
		return nil, fmt.Errorf("tensor: AvgPool requires NHWC input, got %v", in.shape)
	}
	n, h, w, c := in.shape[0], in.shape[1], in.shape[2], in.shape[3]
	oh := ConvOutSize(h, k, s, pad)
	ow := ConvOutSize(w, k, s, pad)
	out := New(n, oh, ow, c)
	id, od := in.data, out.data
	rows := n * oh
	p.For(rows, 4, func(lo, hi int) {
		for r := lo; r < hi; r++ {
			b := r / oh
			oy := r % oh
			for ox := 0; ox < ow; ox++ {
				obase := ((b*oh+oy)*ow + ox) * c
				var cnt float32
				// Count once per window; same for all channels.
				for ky := 0; ky < k; ky++ {
					iy := oy*s - pad + ky
					if iy < 0 || iy >= h {
						continue
					}
					for kx := 0; kx < k; kx++ {
						ix := ox*s - pad + kx
						if ix >= 0 && ix < w {
							cnt++
						}
					}
				}
				if cnt == 0 {
					continue
				}
				for ky := 0; ky < k; ky++ {
					iy := oy*s - pad + ky
					if iy < 0 || iy >= h {
						continue
					}
					for kx := 0; kx < k; kx++ {
						ix := ox*s - pad + kx
						if ix < 0 || ix >= w {
							continue
						}
						ibase := ((b*h+iy)*w + ix) * c
						for ch := 0; ch < c; ch++ {
							od[obase+ch] += id[ibase+ch]
						}
					}
				}
				inv := 1 / cnt
				for ch := 0; ch < c; ch++ {
					od[obase+ch] *= inv
				}
			}
		}
	})
	return out, nil
}

// AvgPoolGrad distributes gradOut uniformly over each window's valid
// input cells.
func AvgPoolGrad(p *Pool, inShape []int, gradOut *Tensor, k, s, pad int) (*Tensor, error) {
	n, h, w, c := inShape[0], inShape[1], inShape[2], inShape[3]
	oh, ow := gradOut.shape[1], gradOut.shape[2]
	out := New(inShape...)
	gd, od := gradOut.data, out.data
	p.For(n, 1, func(lo, hi int) {
		for b := lo; b < hi; b++ {
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					gbase := ((b*oh+oy)*ow + ox) * c
					var cnt float32
					for ky := 0; ky < k; ky++ {
						iy := oy*s - pad + ky
						if iy < 0 || iy >= h {
							continue
						}
						for kx := 0; kx < k; kx++ {
							ix := ox*s - pad + kx
							if ix >= 0 && ix < w {
								cnt++
							}
						}
					}
					if cnt == 0 {
						continue
					}
					inv := 1 / cnt
					for ky := 0; ky < k; ky++ {
						iy := oy*s - pad + ky
						if iy < 0 || iy >= h {
							continue
						}
						for kx := 0; kx < k; kx++ {
							ix := ox*s - pad + kx
							if ix < 0 || ix >= w {
								continue
							}
							ibase := ((b*h+iy)*w + ix) * c
							for ch := 0; ch < c; ch++ {
								od[ibase+ch] += gd[gbase+ch] * inv
							}
						}
					}
				}
			}
		}
	})
	return out, nil
}
