package tensor

import "fmt"

// ConvSpec describes a 2-D convolution in NHWC layout.
type ConvSpec struct {
	StrideH, StrideW int
	PadH, PadW       int // symmetric zero padding applied to each side
}

// ConvOutSize returns the output spatial size for an input of size in,
// filter size k, stride s and padding p on each side.
func ConvOutSize(in, k, s, p int) int {
	o := (in+2*p-k)/s + 1
	if o < 0 {
		o = 0
	}
	return o
}

// SamePad returns the padding that keeps output = ceil(in/stride) for
// odd filter sizes (TensorFlow "SAME" with symmetric padding).
func SamePad(k int) int { return (k - 1) / 2 }

func (c ConvSpec) check() ConvSpec {
	if c.StrideH < 1 {
		c.StrideH = 1
	}
	if c.StrideW < 1 {
		c.StrideW = 1
	}
	return c
}

// Conv2D computes a 2-D convolution: input (N,H,W,Cin) with filter
// (KH,KW,Cin,Cout) producing (N,OH,OW,Cout). See Conv2DInto for the
// kernel dispatch strategy.
func Conv2D(p *Pool, in, filter *Tensor, spec ConvSpec) (*Tensor, error) {
	spec = spec.check()
	if err := conv2DCheck(in, filter); err != nil {
		return nil, err
	}
	oh := ConvOutSize(in.shape[1], filter.shape[0], spec.StrideH, spec.PadH)
	ow := ConvOutSize(in.shape[2], filter.shape[1], spec.StrideW, spec.PadW)
	out := New(in.shape[0], oh, ow, filter.shape[3])
	conv2DInto(p, out, in, filter, spec)
	return out, nil
}

// Conv2DInto computes the convolution into out, which must have the
// inferred output shape. out may hold arbitrary data; it is fully
// overwritten and must not alias in or filter.
//
// The kernel is chosen by a size heuristic:
//   - 1×1 unit-stride unpadded convolutions are a pure matrix product
//     and dispatch straight to the tiled MatMul kernel;
//   - large unit-stride convolutions lower to im2col: input patches are
//     gathered into a row-major patch matrix (in row blocks bounded by
//     the scratch budget) and multiplied against the filter viewed as a
//     (KH·KW·Cin, Cout) matrix with the packed matmul kernel;
//   - small or strided convolutions keep the direct loop, whose gather
//     cost would dominate the im2col matrix assembly.
func Conv2DInto(p *Pool, out, in, filter *Tensor, spec ConvSpec) error {
	spec = spec.check()
	if err := conv2DCheck(in, filter); err != nil {
		return err
	}
	oh := ConvOutSize(in.shape[1], filter.shape[0], spec.StrideH, spec.PadH)
	ow := ConvOutSize(in.shape[2], filter.shape[1], spec.StrideW, spec.PadW)
	want := []int{in.shape[0], oh, ow, filter.shape[3]}
	if !SameShape(out.shape, want) {
		return fmt.Errorf("tensor: Conv2DInto destination %v, want %v", out.shape, want)
	}
	conv2DInto(p, out, in, filter, spec)
	return nil
}

func conv2DCheck(in, filter *Tensor) error {
	if in.Rank() != 4 || filter.Rank() != 4 {
		return fmt.Errorf("tensor: Conv2D requires NHWC input and KHKWCinCout filter, got %v and %v", in.shape, filter.shape)
	}
	if in.shape[3] != filter.shape[2] {
		return fmt.Errorf("tensor: Conv2D channel mismatch: input %v filter %v", in.shape, filter.shape)
	}
	return nil
}

// im2colMinWork is the per-output-cell multiply count (KH·KW·Cin·Cout)
// above which patch gathering is amortized and the im2col path wins.
const im2colMinWork = 2048

func conv2DInto(p *Pool, out, in, filter *Tensor, spec ConvSpec) {
	kh, kw, cin, cout := filter.shape[0], filter.shape[1], filter.shape[2], filter.shape[3]
	unit := spec.StrideH == 1 && spec.StrideW == 1
	switch {
	case kh == 1 && kw == 1 && unit && spec.PadH == 0 && spec.PadW == 0:
		// A 1×1 convolution is exactly (N·H·W, Cin)·(Cin, Cout).
		rows := in.shape[0] * in.shape[1] * in.shape[2]
		matmulInto(p, out.data, in.data, filter.data, rows, cout, cin, cin, cout, false, false)
	case unit && kh*kw*cin*cout >= im2colMinWork:
		conv2DIm2col(p, out, in, filter, spec)
	default:
		conv2DDirect(p, out, in, filter, spec)
	}
}

// conv2DDirect is the straightforward gather-multiply-accumulate loop,
// parallelized over N·OH output rows.
func conv2DDirect(p *Pool, out, in, filter *Tensor, spec ConvSpec) {
	n, h, w, cin := in.shape[0], in.shape[1], in.shape[2], in.shape[3]
	kh, kw, cout := filter.shape[0], filter.shape[1], filter.shape[3]
	oh, ow := out.shape[1], out.shape[2]
	id, fd, od := in.data, filter.data, out.data
	rows := n * oh
	grain := 1 + 32768/(ow*cout*kh*kw*cin+1)
	p.For(rows, grain, func(lo, hi int) {
		for r := lo; r < hi; r++ {
			b := r / oh
			oy := r % oh
			for ox := 0; ox < ow; ox++ {
				obase := ((b*oh+oy)*ow + ox) * cout
				acc := od[obase : obase+cout]
				for co := range acc {
					acc[co] = 0
				}
				iy0 := oy*spec.StrideH - spec.PadH
				ix0 := ox*spec.StrideW - spec.PadW
				for ky := 0; ky < kh; ky++ {
					iy := iy0 + ky
					if iy < 0 || iy >= h {
						continue
					}
					for kx := 0; kx < kw; kx++ {
						ix := ix0 + kx
						if ix < 0 || ix >= w {
							continue
						}
						ibase := ((b*h+iy)*w + ix) * cin
						fbase := (ky*kw + kx) * cin * cout
						for c := 0; c < cin; c++ {
							v := id[ibase+c]
							frow := fd[fbase+c*cout : fbase+(c+1)*cout]
							for co := 0; co < cout; co++ {
								acc[co] += v * frow[co]
							}
						}
					}
				}
			}
		}
	})
}

// im2colScratchCap bounds the patch-matrix scratch to about 1 MB of
// float32s; larger outputs are processed in row blocks.
const im2colScratchCap = 1 << 18

// conv2DIm2col lowers the convolution to matrix multiplication: each
// output position's receptive field becomes one row of a patch matrix,
// multiplied against the filter reshaped to (KH·KW·Cin, Cout). The
// NHWC output layout makes the product land directly in out.
func conv2DIm2col(p *Pool, out, in, filter *Tensor, spec ConvSpec) {
	kh, kw, cin, cout := filter.shape[0], filter.shape[1], filter.shape[2], filter.shape[3]
	oh, ow := out.shape[1], out.shape[2]
	rows := out.shape[0] * oh * ow
	kk := kh * kw * cin
	blockRows := im2colScratchCap / kk
	if blockRows < 1 {
		blockRows = 1
	}
	if blockRows > rows {
		blockRows = rows
	}
	col := p.scratchBuf(scratchIm2col, blockRows*kk)
	for r0 := 0; r0 < rows; r0 += blockRows {
		r1 := min(rows, r0+blockRows)
		im2colRows(p, col, in, r0, r1, kh, kw, oh, ow, spec)
		matmulInto(p, out.data[r0*cout:r1*cout], col, filter.data,
			r1-r0, cout, kk, kk, cout, false, false)
	}
}

// im2colRows fills col (row-major (r1-r0)×(KH·KW·Cin)) with the
// receptive fields of global output rows [r0, r1). Out-of-image taps
// are written as zeros, so every row is fully overwritten.
func im2colRows(p *Pool, col []float32, in *Tensor, r0, r1, kh, kw, oh, ow int, spec ConvSpec) {
	h, w, cin := in.shape[1], in.shape[2], in.shape[3]
	kk := kh * kw * cin
	id := in.data
	p.For(r1-r0, 16, func(lo, hi int) {
		for rr := lo; rr < hi; rr++ {
			r := r0 + rr
			ox := r % ow
			oy := (r / ow) % oh
			b := r / (ow * oh)
			row := col[rr*kk : (rr+1)*kk]
			iy0 := oy*spec.StrideH - spec.PadH
			ix0 := ox*spec.StrideW - spec.PadW
			pos := 0
			for ky := 0; ky < kh; ky++ {
				iy := iy0 + ky
				if iy < 0 || iy >= h {
					for z := 0; z < kw*cin; z++ {
						row[pos+z] = 0
					}
					pos += kw * cin
					continue
				}
				ibase := (b*h + iy) * w
				for kx := 0; kx < kw; kx++ {
					ix := ix0 + kx
					if ix < 0 || ix >= w {
						for z := 0; z < cin; z++ {
							row[pos+z] = 0
						}
					} else {
						src := (ibase + ix) * cin
						copy(row[pos:pos+cin], id[src:src+cin])
					}
					pos += cin
				}
			}
		}
	})
}

// Conv2DBackFilter computes the gradient of Conv2D with respect to the
// filter: input (N,H,W,Cin), gradOut (N,OH,OW,Cout) → (KH,KW,Cin,Cout).
// Parallelized over filter rows (each chunk owns disjoint output cells).
func Conv2DBackFilter(p *Pool, in, gradOut *Tensor, kh, kw int, spec ConvSpec) (*Tensor, error) {
	out := New(kh, kw, in.shape[3], gradOut.shape[3])
	if err := Conv2DBackFilterInto(p, out, in, gradOut, kh, kw, spec); err != nil {
		return nil, err
	}
	return out, nil
}

// Conv2DBackFilterInto accumulates the filter gradient into out after
// zeroing it; out must have shape (kh, kw, Cin, Cout) and must not
// alias in or gradOut.
func Conv2DBackFilterInto(p *Pool, out, in, gradOut *Tensor, kh, kw int, spec ConvSpec) error {
	spec = spec.check()
	n, h, w, cin := in.shape[0], in.shape[1], in.shape[2], in.shape[3]
	gn, oh, ow, cout := gradOut.shape[0], gradOut.shape[1], gradOut.shape[2], gradOut.shape[3]
	if n != gn {
		return fmt.Errorf("tensor: Conv2DBackFilter batch mismatch %v vs %v", in.shape, gradOut.shape)
	}
	if !SameShape(out.shape, []int{kh, kw, cin, cout}) {
		return fmt.Errorf("tensor: Conv2DBackFilterInto destination %v, want %v", out.shape, []int{kh, kw, cin, cout})
	}
	out.Zero()
	id, gd, od := in.data, gradOut.data, out.data
	grain := 1 // kh is small; each row is heavy
	p.For(kh, grain, func(lo, hi int) {
		for ky := lo; ky < hi; ky++ {
			for kx := 0; kx < kw; kx++ {
				fbase := (ky*kw + kx) * cin * cout
				for b := 0; b < n; b++ {
					for oy := 0; oy < oh; oy++ {
						iy := oy*spec.StrideH - spec.PadH + ky
						if iy < 0 || iy >= h {
							continue
						}
						for ox := 0; ox < ow; ox++ {
							ix := ox*spec.StrideW - spec.PadW + kx
							if ix < 0 || ix >= w {
								continue
							}
							ibase := ((b*h+iy)*w + ix) * cin
							gbase := ((b*oh+oy)*ow + ox) * cout
							grow := gd[gbase : gbase+cout]
							for c := 0; c < cin; c++ {
								v := id[ibase+c]
								frow := od[fbase+c*cout : fbase+(c+1)*cout]
								for co := 0; co < cout; co++ {
									frow[co] += v * grow[co]
								}
							}
						}
					}
				}
			}
		}
	})
	return nil
}

// Conv2DBackInput computes the gradient of Conv2D with respect to the
// input: filter (KH,KW,Cin,Cout), gradOut (N,OH,OW,Cout) → (N,H,W,Cin).
// Parallelized over batch entries (disjoint output regions).
func Conv2DBackInput(p *Pool, filter, gradOut *Tensor, h, w int, spec ConvSpec) (*Tensor, error) {
	out := New(gradOut.shape[0], h, w, filter.shape[2])
	if err := Conv2DBackInputInto(p, out, filter, gradOut, h, w, spec); err != nil {
		return nil, err
	}
	return out, nil
}

// Conv2DBackInputInto accumulates the input gradient into out after
// zeroing it; out must have shape (N, h, w, Cin) and must not alias
// filter or gradOut.
func Conv2DBackInputInto(p *Pool, out, filter, gradOut *Tensor, h, w int, spec ConvSpec) error {
	spec = spec.check()
	kh, kw, cin, cout := filter.shape[0], filter.shape[1], filter.shape[2], filter.shape[3]
	n, oh, ow, gcout := gradOut.shape[0], gradOut.shape[1], gradOut.shape[2], gradOut.shape[3]
	if cout != gcout {
		return fmt.Errorf("tensor: Conv2DBackInput channel mismatch filter %v gradOut %v", filter.shape, gradOut.shape)
	}
	if !SameShape(out.shape, []int{n, h, w, cin}) {
		return fmt.Errorf("tensor: Conv2DBackInputInto destination %v, want %v", out.shape, []int{n, h, w, cin})
	}
	out.Zero()
	fd, gd, od := filter.data, gradOut.data, out.data
	p.For(n, 1, func(lo, hi int) {
		for b := lo; b < hi; b++ {
			for oy := 0; oy < oh; oy++ {
				iy0 := oy*spec.StrideH - spec.PadH
				for ox := 0; ox < ow; ox++ {
					ix0 := ox*spec.StrideW - spec.PadW
					gbase := ((b*oh+oy)*ow + ox) * cout
					grow := gd[gbase : gbase+cout]
					for ky := 0; ky < kh; ky++ {
						iy := iy0 + ky
						if iy < 0 || iy >= h {
							continue
						}
						for kx := 0; kx < kw; kx++ {
							ix := ix0 + kx
							if ix < 0 || ix >= w {
								continue
							}
							ibase := ((b*h+iy)*w + ix) * cin
							fbase := (ky*kw + kx) * cin * cout
							for c := 0; c < cin; c++ {
								frow := fd[fbase+c*cout : fbase+(c+1)*cout]
								var s float32
								for co := 0; co < cout; co++ {
									s += frow[co] * grow[co]
								}
								od[ibase+c] += s
							}
						}
					}
				}
			}
		}
	})
	return nil
}

// MaxPool computes max pooling over (N,H,W,C) with window k and stride
// s (symmetric padding p, padded cells treated as -inf).
func MaxPool(p *Pool, in *Tensor, k, s, pad int) (*Tensor, error) {
	if in.Rank() != 4 {
		return nil, fmt.Errorf("tensor: MaxPool requires NHWC input, got %v", in.shape)
	}
	oh := ConvOutSize(in.shape[1], k, s, pad)
	ow := ConvOutSize(in.shape[2], k, s, pad)
	out := New(in.shape[0], oh, ow, in.shape[3])
	if err := MaxPoolInto(p, out, in, k, s, pad); err != nil {
		return nil, err
	}
	return out, nil
}

// poolOutCheck validates a pooling destination against the inferred
// output shape.
func poolOutCheck(name string, out, in *Tensor, k, s, pad int) error {
	if in.Rank() != 4 {
		return fmt.Errorf("tensor: %s requires NHWC input, got %v", name, in.shape)
	}
	want := []int{in.shape[0], ConvOutSize(in.shape[1], k, s, pad), ConvOutSize(in.shape[2], k, s, pad), in.shape[3]}
	if !SameShape(out.shape, want) {
		return fmt.Errorf("tensor: %s destination %v, want %v", name, out.shape, want)
	}
	return nil
}

// MaxPoolInto computes max pooling into out, fully overwriting it.
func MaxPoolInto(p *Pool, out, in *Tensor, k, s, pad int) error {
	if err := poolOutCheck("MaxPoolInto", out, in, k, s, pad); err != nil {
		return err
	}
	n, h, w, c := in.shape[0], in.shape[1], in.shape[2], in.shape[3]
	oh, ow := out.shape[1], out.shape[2]
	id, od := in.data, out.data
	rows := n * oh
	p.For(rows, 4, func(lo, hi int) {
		for r := lo; r < hi; r++ {
			b := r / oh
			oy := r % oh
			for ox := 0; ox < ow; ox++ {
				obase := ((b*oh+oy)*ow + ox) * c
				for ch := 0; ch < c; ch++ {
					best := float32(negInf)
					for ky := 0; ky < k; ky++ {
						iy := oy*s - pad + ky
						if iy < 0 || iy >= h {
							continue
						}
						for kx := 0; kx < k; kx++ {
							ix := ox*s - pad + kx
							if ix < 0 || ix >= w {
								continue
							}
							v := id[((b*h+iy)*w+ix)*c+ch]
							if v > best {
								best = v
							}
						}
					}
					od[obase+ch] = best
				}
			}
		}
	})
	return nil
}

const negInf = float32(-3.4e38)

// MaxPoolGrad routes gradOut back to the argmax input cell of each
// pooling window (ties go to the first maximum, matching MaxPool).
func MaxPoolGrad(p *Pool, in, gradOut *Tensor, k, s, pad int) (*Tensor, error) {
	out := New(in.shape...)
	if err := MaxPoolGradInto(p, out, in, gradOut, k, s, pad); err != nil {
		return nil, err
	}
	return out, nil
}

// MaxPoolGradInto accumulates the pooling gradient into out after
// zeroing it; out must have the input's shape.
func MaxPoolGradInto(p *Pool, out, in, gradOut *Tensor, k, s, pad int) error {
	if !SameShape(out.shape, in.shape) {
		return fmt.Errorf("tensor: MaxPoolGradInto destination %v, want %v", out.shape, in.shape)
	}
	if err := poolOutCheck("MaxPoolGradInto", gradOut, in, k, s, pad); err != nil {
		return err
	}
	n, h, w, c := in.shape[0], in.shape[1], in.shape[2], in.shape[3]
	oh, ow := gradOut.shape[1], gradOut.shape[2]
	out.Zero()
	id, gd, od := in.data, gradOut.data, out.data
	// Pooling windows can overlap when s < k, so parallelize over batch
	// entries only (disjoint input regions).
	p.For(n, 1, func(lo, hi int) {
		for b := lo; b < hi; b++ {
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					gbase := ((b*oh+oy)*ow + ox) * c
					for ch := 0; ch < c; ch++ {
						best := float32(negInf)
						bi := -1
						for ky := 0; ky < k; ky++ {
							iy := oy*s - pad + ky
							if iy < 0 || iy >= h {
								continue
							}
							for kx := 0; kx < k; kx++ {
								ix := ox*s - pad + kx
								if ix < 0 || ix >= w {
									continue
								}
								off := ((b*h+iy)*w+ix)*c + ch
								if id[off] > best {
									best = id[off]
									bi = off
								}
							}
						}
						if bi >= 0 {
							od[bi] += gd[gbase+ch]
						}
					}
				}
			}
		}
	})
	return nil
}

// AvgPool computes average pooling over valid (unpadded) cells.
func AvgPool(p *Pool, in *Tensor, k, s, pad int) (*Tensor, error) {
	if in.Rank() != 4 {
		return nil, fmt.Errorf("tensor: AvgPool requires NHWC input, got %v", in.shape)
	}
	oh := ConvOutSize(in.shape[1], k, s, pad)
	ow := ConvOutSize(in.shape[2], k, s, pad)
	out := New(in.shape[0], oh, ow, in.shape[3])
	if err := AvgPoolInto(p, out, in, k, s, pad); err != nil {
		return nil, err
	}
	return out, nil
}

// AvgPoolInto computes average pooling into out after zeroing it.
func AvgPoolInto(p *Pool, out, in *Tensor, k, s, pad int) error {
	if err := poolOutCheck("AvgPoolInto", out, in, k, s, pad); err != nil {
		return err
	}
	n, h, w, c := in.shape[0], in.shape[1], in.shape[2], in.shape[3]
	oh, ow := out.shape[1], out.shape[2]
	out.Zero()
	id, od := in.data, out.data
	rows := n * oh
	p.For(rows, 4, func(lo, hi int) {
		for r := lo; r < hi; r++ {
			b := r / oh
			oy := r % oh
			for ox := 0; ox < ow; ox++ {
				obase := ((b*oh+oy)*ow + ox) * c
				var cnt float32
				// Count once per window; same for all channels.
				for ky := 0; ky < k; ky++ {
					iy := oy*s - pad + ky
					if iy < 0 || iy >= h {
						continue
					}
					for kx := 0; kx < k; kx++ {
						ix := ox*s - pad + kx
						if ix >= 0 && ix < w {
							cnt++
						}
					}
				}
				if cnt == 0 {
					continue
				}
				for ky := 0; ky < k; ky++ {
					iy := oy*s - pad + ky
					if iy < 0 || iy >= h {
						continue
					}
					for kx := 0; kx < k; kx++ {
						ix := ox*s - pad + kx
						if ix < 0 || ix >= w {
							continue
						}
						ibase := ((b*h+iy)*w + ix) * c
						for ch := 0; ch < c; ch++ {
							od[obase+ch] += id[ibase+ch]
						}
					}
				}
				inv := 1 / cnt
				for ch := 0; ch < c; ch++ {
					od[obase+ch] *= inv
				}
			}
		}
	})
	return nil
}

// AvgPoolGrad distributes gradOut uniformly over each window's valid
// input cells.
func AvgPoolGrad(p *Pool, inShape []int, gradOut *Tensor, k, s, pad int) (*Tensor, error) {
	out := New(inShape...)
	if err := AvgPoolGradInto(p, out, gradOut, k, s, pad); err != nil {
		return nil, err
	}
	return out, nil
}

// AvgPoolGradInto accumulates the average-pooling gradient into out
// (whose shape is the original input shape) after zeroing it.
func AvgPoolGradInto(p *Pool, out, gradOut *Tensor, k, s, pad int) error {
	if out.Rank() != 4 || gradOut.Rank() != 4 {
		return fmt.Errorf("tensor: AvgPoolGradInto wants NHWC tensors, got %v and %v", out.shape, gradOut.shape)
	}
	if err := poolOutCheck("AvgPoolGradInto", gradOut, out, k, s, pad); err != nil {
		return err
	}
	n, h, w, c := out.shape[0], out.shape[1], out.shape[2], out.shape[3]
	oh, ow := gradOut.shape[1], gradOut.shape[2]
	out.Zero()
	gd, od := gradOut.data, out.data
	p.For(n, 1, func(lo, hi int) {
		for b := lo; b < hi; b++ {
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					gbase := ((b*oh+oy)*ow + ox) * c
					var cnt float32
					for ky := 0; ky < k; ky++ {
						iy := oy*s - pad + ky
						if iy < 0 || iy >= h {
							continue
						}
						for kx := 0; kx < k; kx++ {
							ix := ox*s - pad + kx
							if ix >= 0 && ix < w {
								cnt++
							}
						}
					}
					if cnt == 0 {
						continue
					}
					inv := 1 / cnt
					for ky := 0; ky < k; ky++ {
						iy := oy*s - pad + ky
						if iy < 0 || iy >= h {
							continue
						}
						for kx := 0; kx < k; kx++ {
							ix := ox*s - pad + kx
							if ix < 0 || ix >= w {
								continue
							}
							ibase := ((b*h+iy)*w + ix) * c
							for ch := 0; ch < c; ch++ {
								od[ibase+ch] += gd[gbase+ch] * inv
							}
						}
					}
				}
			}
		}
	})
	return nil
}
