package tensor

// Arena is a size-bucketed recycler of float32 buffers, the storage
// substrate for compiled execution plans: the runtime's planner runs
// liveness analysis over a topological schedule and assigns every
// operation output a buffer from an arena, so that tensors with
// disjoint lifetimes share storage and steady-state steps perform
// near-zero heap allocation.
//
// Buffers are grouped into power-of-two size classes. Get returns a
// buffer whose length is exactly the requested element count but whose
// capacity is the bucket size; Put recycles a buffer obtained from Get
// into its bucket. Buffers are handed out dirty — callers must fully
// overwrite (or Zero) them before reading.
//
// An Arena is not safe for concurrent use; like Pool, it is owned by a
// single session whose operations execute sequentially.
type Arena struct {
	buckets map[int][][]float32

	// Stats.
	liveBuffers  int   // buffers created and not currently in a bucket
	totalBuffers int   // buffers ever created
	totalFloats  int64 // elements ever allocated from the heap
	reuses       int   // Gets served from a bucket instead of the heap
}

// NewArena returns an empty arena.
func NewArena() *Arena {
	return &Arena{buckets: map[int][][]float32{}}
}

// arenaMinBucket is the smallest size class; tiny tensors (scalars,
// biases) all share it rather than fragmenting into many buckets.
const arenaMinBucket = 64

// bucketFor returns the size class for a buffer of n elements: the
// smallest power of two >= max(n, arenaMinBucket).
func bucketFor(n int) int {
	b := arenaMinBucket
	for b < n {
		b <<= 1
	}
	return b
}

// Get returns a buffer of exactly n elements (n >= 0), recycling one
// from the matching size class when available. The contents are
// unspecified.
func (a *Arena) Get(n int) []float32 {
	b := bucketFor(n)
	a.liveBuffers++
	if free := a.buckets[b]; len(free) > 0 {
		buf := free[len(free)-1]
		a.buckets[b] = free[:len(free)-1]
		a.reuses++
		return buf[:n]
	}
	a.totalBuffers++
	a.totalFloats += int64(b)
	return make([]float32, b)[:n]
}

// Put returns a buffer obtained from Get to its size class. Passing a
// buffer the arena did not create corrupts the bucket invariants; the
// capacity must be a size class.
func (a *Arena) Put(buf []float32) {
	if buf == nil {
		return
	}
	b := cap(buf)
	a.liveBuffers--
	a.buckets[b] = append(a.buckets[b], buf[:b])
}

// ArenaStats summarizes arena usage.
type ArenaStats struct {
	// LiveBuffers is the number of buffers currently checked out.
	LiveBuffers int
	// TotalBuffers is the number of distinct buffers ever allocated.
	TotalBuffers int
	// TotalBytes is the heap footprint of all buffers ever allocated.
	TotalBytes int64
	// Reuses counts Gets served by recycling instead of allocation.
	Reuses int
}

// Stats reports usage counters.
func (a *Arena) Stats() ArenaStats {
	return ArenaStats{
		LiveBuffers:  a.liveBuffers,
		TotalBuffers: a.totalBuffers,
		TotalBytes:   a.totalFloats * elemSize,
		Reuses:       a.reuses,
	}
}

// elemSize is the storage size of one element in bytes.
const elemSize = 4
