package tensor

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Arena is a size-bucketed recycler of float32 buffers, the storage
// substrate for compiled execution plans: the runtime's planner runs
// liveness analysis over a topological schedule and assigns every
// operation output a buffer from an arena, so that tensors with
// disjoint lifetimes share storage and steady-state steps perform
// near-zero heap allocation.
//
// Buffers are grouped into power-of-two size classes. Get returns a
// buffer whose length is exactly the requested element count but whose
// capacity is the bucket size; Put recycles a buffer obtained from Get
// into its bucket. Buffers are handed out dirty — callers must fully
// overwrite (or Zero) them before reading.
//
// An Arena is not safe for concurrent use; like Pool, it is owned by a
// single session whose operations execute sequentially.
type Arena struct {
	buckets map[int][][]float32

	// guard, when non-nil (test builds), observes every read and write
	// of arena-backed plan buffers at execution time so tests can
	// assert the scheduler's lifetime invariant: no buffer is rewritten
	// while readers of its previous value are outstanding.
	guard *BufferGuard

	// Stats. Atomic so concurrent observers (the serving engine's
	// /stats and /metrics scrapes) can read them while the owning
	// session executes; the buckets themselves stay single-owner.
	liveBuffers  atomic.Int64 // buffers created and not currently in a bucket
	totalBuffers atomic.Int64 // buffers ever created
	totalFloats  atomic.Int64 // elements ever allocated from the heap
	reuses       atomic.Int64 // Gets served from a bucket instead of the heap
}

// NewArena returns an empty arena.
func NewArena() *Arena {
	return &Arena{buckets: map[int][][]float32{}}
}

// arenaMinBucket is the smallest size class; tiny tensors (scalars,
// biases) all share it rather than fragmenting into many buckets.
const arenaMinBucket = 64

// bucketFor returns the size class for a buffer of n elements: the
// smallest power of two >= max(n, arenaMinBucket).
func bucketFor(n int) int {
	b := arenaMinBucket
	for b < n {
		b <<= 1
	}
	return b
}

// BucketFor reports the size class Get would serve a request of n
// elements from — exported for the runtime planner, whose
// parallelism-aware buffer assignment pools freed buffers by the same
// classes the arena uses.
func BucketFor(n int) int { return bucketFor(n) }

// Get returns a buffer of exactly n elements (n >= 0), recycling one
// from the matching size class when available. The contents are
// unspecified.
func (a *Arena) Get(n int) []float32 {
	b := bucketFor(n)
	a.liveBuffers.Add(1)
	if free := a.buckets[b]; len(free) > 0 {
		buf := free[len(free)-1]
		a.buckets[b] = free[:len(free)-1]
		a.reuses.Add(1)
		return buf[:n]
	}
	a.totalBuffers.Add(1)
	a.totalFloats.Add(int64(b))
	return make([]float32, b)[:n]
}

// Put returns a buffer obtained from Get to its size class. Passing a
// buffer the arena did not create corrupts the bucket invariants; the
// capacity must be a size class.
func (a *Arena) Put(buf []float32) {
	if buf == nil {
		return
	}
	b := cap(buf)
	a.liveBuffers.Add(-1)
	a.buckets[b] = append(a.buckets[b], buf[:b])
}

// SetGuard installs (or, with nil, removes) the execution-time
// assertion hook. Tests attach a guard before running plans; the
// runtime consults it around every operation that touches arena
// memory. Production sessions leave it nil.
func (a *Arena) SetGuard(g *BufferGuard) { a.guard = g }

// Guard returns the installed assertion hook (nil outside tests).
func (a *Arena) Guard() *BufferGuard { return a.guard }

// BufferGuard is the test-build assertion hook for plan-buffer
// lifetimes. The executor brackets every operation with BeginRead
// calls for each arena buffer its inputs may reference and a
// BeginWrite call for its destination buffer. The guard records a
// violation whenever a buffer is written while concurrent readers of
// its previous contents are outstanding, or while another writer owns
// it — exactly the corruption a scheduler without completion-count
// gating of slot reuse would permit. It is safe for concurrent use.
type BufferGuard struct {
	mu         sync.Mutex
	readers    map[*float32]int
	writing    map[*float32]bool
	violations []string
}

// NewBufferGuard returns an empty guard.
func NewBufferGuard() *BufferGuard {
	return &BufferGuard{readers: map[*float32]int{}, writing: map[*float32]bool{}}
}

func bufKey(buf []float32) *float32 {
	if len(buf) == 0 {
		return nil
	}
	return &buf[0]
}

// BeginRead registers an outstanding reader of buf's current value.
// Reading concurrently with the buffer's writer is a violation.
func (g *BufferGuard) BeginRead(buf []float32) {
	k := bufKey(buf)
	if k == nil {
		return
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.writing[k] {
		g.violations = append(g.violations, fmt.Sprintf("read of buffer %p while a writer owns it", k))
	}
	g.readers[k]++
}

// EndRead retires a reader registered by BeginRead.
func (g *BufferGuard) EndRead(buf []float32) {
	k := bufKey(buf)
	if k == nil {
		return
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	g.readers[k]--
}

// BeginWrite registers buf's next writer. Outstanding readers of the
// previous value, or a concurrent writer, are violations.
func (g *BufferGuard) BeginWrite(buf []float32) {
	k := bufKey(buf)
	if k == nil {
		return
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if n := g.readers[k]; n > 0 {
		g.violations = append(g.violations, fmt.Sprintf("write of buffer %p with %d readers outstanding", k, n))
	}
	if g.writing[k] {
		g.violations = append(g.violations, fmt.Sprintf("write of buffer %p while another writer owns it", k))
	}
	g.writing[k] = true
}

// EndWrite retires the writer registered by BeginWrite.
func (g *BufferGuard) EndWrite(buf []float32) {
	k := bufKey(buf)
	if k == nil {
		return
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	delete(g.writing, k)
}

// Violations returns every recorded invariant breach.
func (g *BufferGuard) Violations() []string {
	g.mu.Lock()
	defer g.mu.Unlock()
	return append([]string(nil), g.violations...)
}

// ArenaStats summarizes arena usage.
type ArenaStats struct {
	// LiveBuffers is the number of buffers currently checked out.
	LiveBuffers int
	// TotalBuffers is the number of distinct buffers ever allocated.
	TotalBuffers int
	// TotalBytes is the heap footprint of all buffers ever allocated.
	TotalBytes int64
	// Reuses counts Gets served by recycling instead of allocation.
	Reuses int
}

// Stats reports usage counters. Unlike the rest of the arena, Stats is
// safe to call concurrently with the owning session's Get/Put.
func (a *Arena) Stats() ArenaStats {
	return ArenaStats{
		LiveBuffers:  int(a.liveBuffers.Load()),
		TotalBuffers: int(a.totalBuffers.Load()),
		TotalBytes:   a.totalFloats.Load() * elemSize,
		Reuses:       int(a.reuses.Load()),
	}
}

// ReuseRatio is the fraction of Gets served by recycling: Reuses over
// all Gets (Reuses + TotalBuffers). Zero before any Get.
func (s ArenaStats) ReuseRatio() float64 {
	gets := s.Reuses + s.TotalBuffers
	if gets == 0 {
		return 0
	}
	return float64(s.Reuses) / float64(gets)
}

// elemSize is the storage size of one element in bytes.
const elemSize = 4
