package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/sched"
)

func TestReduceSumAll(t *testing.T) {
	p := NewPool(1)
	in := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	out, err := Reduce(p, in, nil, false, "sum")
	if err != nil {
		t.Fatal(err)
	}
	if out.Rank() != 0 || out.Data()[0] != 21 {
		t.Fatalf("sum all = %v", out)
	}
}

func TestReduceSumAxis(t *testing.T) {
	p := NewPool(1)
	in := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	out, err := Reduce(p, in, []int{0}, false, "sum")
	if err != nil {
		t.Fatal(err)
	}
	want := []float32{5, 7, 9}
	for i := range want {
		if out.Data()[i] != want[i] {
			t.Fatalf("sum axis0 = %v want %v", out.Data(), want)
		}
	}
	out1, _ := Reduce(p, in, []int{1}, false, "sum")
	if out1.Data()[0] != 6 || out1.Data()[1] != 15 {
		t.Fatalf("sum axis1 = %v", out1.Data())
	}
	// Negative axis.
	outn, _ := Reduce(p, in, []int{-1}, false, "sum")
	if outn.Data()[0] != 6 || outn.Data()[1] != 15 {
		t.Fatalf("sum axis -1 = %v", outn.Data())
	}
}

func TestReduceKeepDims(t *testing.T) {
	p := NewPool(1)
	in := FromSlice([]float32{1, 2, 3, 4}, 2, 2)
	out, err := Reduce(p, in, []int{1}, true, "sum")
	if err != nil {
		t.Fatal(err)
	}
	if !SameShape(out.Shape(), []int{2, 1}) {
		t.Fatalf("keepdims shape %v", out.Shape())
	}
}

func TestReduceMeanMax(t *testing.T) {
	p := NewPool(1)
	in := FromSlice([]float32{1, 5, 3, -2}, 4)
	mean, _ := Reduce(p, in, nil, false, "mean")
	if mean.Data()[0] != 1.75 {
		t.Fatalf("mean = %v", mean.Data())
	}
	mx, _ := Reduce(p, in, nil, false, "max")
	if mx.Data()[0] != 5 {
		t.Fatalf("max = %v", mx.Data())
	}
}

func TestReduceAxisOutOfRange(t *testing.T) {
	p := NewPool(1)
	if _, err := Reduce(p, New(2, 2), []int{5}, false, "sum"); err == nil {
		t.Fatal("expected axis error")
	}
}

func TestSoftmaxRowsSumToOne(t *testing.T) {
	p := NewPool(1)
	rng := rand.New(rand.NewSource(8))
	in := RandNormal(rng, 0, 3, 5, 7)
	out := Softmax(p, in)
	for r := 0; r < 5; r++ {
		var s float64
		for c := 0; c < 7; c++ {
			v := out.At(r, c)
			if v < 0 || v > 1 {
				t.Fatalf("softmax out of range: %v", v)
			}
			s += float64(v)
		}
		if math.Abs(s-1) > 1e-4 {
			t.Fatalf("row %d sums to %v", r, s)
		}
	}
}

func TestSoftmaxNumericalStability(t *testing.T) {
	p := NewPool(1)
	in := FromSlice([]float32{1000, 1000, 1000}, 1, 3)
	out := Softmax(p, in)
	for _, v := range out.Data() {
		if math.Abs(float64(v)-1.0/3) > 1e-5 {
			t.Fatalf("large-logit softmax wrong: %v", out.Data())
		}
	}
}

func TestLogSumExp(t *testing.T) {
	p := NewPool(1)
	in := FromSlice([]float32{0, 0, 0, 0}, 1, 4)
	out := LogSumExp(p, in)
	if math.Abs(float64(out.Data()[0])-math.Log(4)) > 1e-5 {
		t.Fatalf("logsumexp = %v want log(4)", out.Data()[0])
	}
}

func TestArgMax(t *testing.T) {
	in := FromSlice([]float32{1, 9, 3, 7, 2, 8}, 2, 3)
	out := ArgMax(in)
	if out.Data()[0] != 1 || out.Data()[1] != 2 {
		t.Fatalf("argmax = %v", out.Data())
	}
}

// Property: softmax is shift-invariant: softmax(x) == softmax(x + c).
func TestSoftmaxShiftInvarianceQuick(t *testing.T) {
	p := NewPool(1)
	rng := rand.New(rand.NewSource(9))
	f := func(c0 int8) bool {
		c := float32(c0) / 8
		x := RandNormal(rng, 0, 2, 3, 5)
		shifted := UnaryOp(p, x, func(v float32) float32 { return v + c })
		return AllClose(Softmax(p, x), Softmax(p, shifted), 1e-4, 1e-5)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: Reduce(sum, axis) then total equals Reduce(sum, all).
func TestReduceSumDecompositionQuick(t *testing.T) {
	p := NewPool(1)
	rng := rand.New(rand.NewSource(10))
	f := func(r0, c0 uint8) bool {
		r, c := int(r0%5)+1, int(c0%5)+1
		x := RandNormal(rng, 0, 1, r, c)
		partial, err := Reduce(p, x, []int{0}, false, "sum")
		if err != nil {
			return false
		}
		total1, err := Reduce(p, partial, nil, false, "sum")
		if err != nil {
			return false
		}
		total2, err := Reduce(p, x, nil, false, "sum")
		if err != nil {
			return false
		}
		return math.Abs(float64(total1.Data()[0]-total2.Data()[0])) < 1e-3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestReduceAllDeterministicAcrossWidths: the full-reduction path
// combines chunk partials in chunk order, so sum/mean/max bits match
// across the serial pool, the modeled pool and real parallel pools of
// any width.
func TestReduceAllDeterministicAcrossWidths(t *testing.T) {
	ex := sched.New(4)
	defer ex.Close()
	rng := rand.New(rand.NewSource(19))
	in := New(64, 512) // big enough that reduceGrain splits it
	for i := range in.Data() {
		in.Data()[i] = rng.Float32()*2 - 1
	}
	pools := map[string]*Pool{
		"serial-1":    NewPool(1),
		"serial-8":    NewPool(8),
		"parallel-2":  NewParallelPool(2, ex),
		"parallel-4":  NewParallelPool(4, ex),
		"parallel-16": NewParallelPool(16, ex),
	}
	for _, kind := range []string{"sum", "mean", "max"} {
		ref, err := Reduce(NewPool(1), in, nil, false, kind)
		if err != nil {
			t.Fatal(err)
		}
		for name, p := range pools {
			got, err := Reduce(p, in, nil, false, kind)
			if err != nil {
				t.Fatal(err)
			}
			if got.Data()[0] != ref.Data()[0] {
				t.Fatalf("%s %s: %v != %v", kind, name, got.Data()[0], ref.Data()[0])
			}
		}
	}
}

// TestReduceAllMatchesFloat64 keeps the chunked sum honest against a
// float64 reference within float32 tolerance.
func TestReduceAllMatchesFloat64(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	in := New(40000)
	var want float64
	for i := range in.Data() {
		v := rng.Float32()
		in.Data()[i] = v
		want += float64(v)
	}
	got, err := Reduce(NewPool(1), in, nil, false, "sum")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(got.Data()[0])-want)/want > 1e-4 {
		t.Fatalf("chunked sum %v vs float64 %v", got.Data()[0], want)
	}
}
