package tensor

import "fmt"

// BroadcastShapes returns the NumPy-style broadcast of two shapes, or
// an error when they are incompatible. Dimensions align from the
// trailing end; a dimension broadcasts when either side is 1.
func BroadcastShapes(a, b []int) ([]int, error) {
	n := len(a)
	if len(b) > n {
		n = len(b)
	}
	out := make([]int, n)
	for i := 0; i < n; i++ {
		da, db := 1, 1
		if i >= n-len(a) {
			da = a[i-(n-len(a))]
		}
		if i >= n-len(b) {
			db = b[i-(n-len(b))]
		}
		switch {
		case da == db:
			out[i] = da
		case da == 1:
			out[i] = db
		case db == 1:
			out[i] = da
		default:
			return nil, fmt.Errorf("tensor: cannot broadcast shapes %v and %v", a, b)
		}
	}
	return out, nil
}

// broadcastStrides returns element strides for iterating a tensor of
// shape `shape` as if it had the broadcast shape `out` (stride 0 on
// broadcast dimensions).
func broadcastStrides(shape, out []int) []int {
	st := make([]int, len(out))
	real := Strides(shape)
	off := len(out) - len(shape)
	for i := range out {
		if i < off {
			st[i] = 0
			continue
		}
		d := shape[i-off]
		if d == 1 && out[i] != 1 {
			st[i] = 0
		} else {
			st[i] = real[i-off]
		}
	}
	return st
}

// BinaryOp applies fn elementwise over broadcast inputs a and b,
// writing into a freshly allocated tensor of the broadcast shape. The
// pool parallelizes over the leading axis of the output when profitable.
func BinaryOp(p *Pool, a, b *Tensor, fn func(x, y float32) float32) (*Tensor, error) {
	shape, err := BroadcastShapes(a.shape, b.shape)
	if err != nil {
		return nil, err
	}
	out := New(shape...)
	binaryOpInto(p, out, a, b, shape, fn)
	return out, nil
}

// BinaryOpInto applies fn elementwise over broadcast inputs into out,
// which must have the broadcast shape. out is fully overwritten and
// must not alias a or b.
func BinaryOpInto(p *Pool, out, a, b *Tensor, fn func(x, y float32) float32) error {
	shape, err := BroadcastShapes(a.shape, b.shape)
	if err != nil {
		return err
	}
	if !SameShape(out.shape, shape) {
		return fmt.Errorf("tensor: BinaryOpInto destination %v, want %v", out.shape, shape)
	}
	binaryOpInto(p, out, a, b, shape, fn)
	return nil
}

func binaryOpInto(p *Pool, out, a, b *Tensor, shape []int, fn func(x, y float32) float32) {
	// Fast path: identical shapes, flat loop.
	if SameShape(a.shape, b.shape) {
		ad, bd, od := a.data, b.data, out.data
		p.For(len(od), 16384, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				od[i] = fn(ad[i], bd[i])
			}
		})
		return
	}
	// Fast path: b is scalar.
	if b.Size() == 1 {
		s := b.data[0]
		ad, od := a.data, out.data
		p.For(len(od), 16384, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				od[i] = fn(ad[i], s)
			}
		})
		return
	}
	// Fast path: a is scalar.
	if a.Size() == 1 {
		s := a.data[0]
		bd, od := b.data, out.data
		p.For(len(od), 16384, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				od[i] = fn(s, bd[i])
			}
		})
		return
	}
	// Fast path: trailing broadcast a[..,C] op b[C] (bias add pattern).
	if len(b.shape) == 1 && len(a.shape) >= 1 && a.shape[len(a.shape)-1] == b.shape[0] && SameShape(shape, a.shape) {
		c := b.shape[0]
		ad, bd, od := a.data, b.data, out.data
		rows := len(od) / c
		p.For(rows, 256, func(lo, hi int) {
			for r := lo; r < hi; r++ {
				base := r * c
				for j := 0; j < c; j++ {
					od[base+j] = fn(ad[base+j], bd[j])
				}
			}
		})
		return
	}
	// General case: strided iteration.
	sa := broadcastStrides(a.shape, shape)
	sb := broadcastStrides(b.shape, shape)
	so := Strides(shape)
	total := out.Size()
	ad, bd, od := a.data, b.data, out.data
	rank := len(shape)
	p.For(total, 8192, func(lo, hi int) {
		idx := make([]int, rank)
		// Decompose lo into the starting multi-index.
		rem := lo
		for i := 0; i < rank; i++ {
			idx[i] = rem / so[i]
			rem %= so[i]
		}
		oa, ob := 0, 0
		for i := 0; i < rank; i++ {
			oa += idx[i] * sa[i]
			ob += idx[i] * sb[i]
		}
		for pos := lo; pos < hi; pos++ {
			od[pos] = fn(ad[oa], bd[ob])
			// Increment the multi-index (odometer).
			for i := rank - 1; i >= 0; i-- {
				idx[i]++
				oa += sa[i]
				ob += sb[i]
				if idx[i] < shape[i] {
					break
				}
				idx[i] = 0
				oa -= sa[i] * shape[i]
				ob -= sb[i] * shape[i]
			}
		}
	})
}

// BinaryOpInPlace applies fn elementwise over out and other, writing
// the result back into out: out = fn(out, other), or fn(other, out)
// when swap is set. other must broadcast to out's shape without
// broadening it (out's shape is the result shape). This is the fused
// epilogue primitive — unlike the *Into kernels, aliasing out with the
// full-shape operand is the point, and it is safe in every path of the
// shared kernel: the operand carrying out's shape is always read at
// exactly the index being written (identity index mapping, no
// broadcast strides), so each element load happens before its store.
func BinaryOpInPlace(p *Pool, out, other *Tensor, swap bool, fn func(x, y float32) float32) error {
	shape, err := BroadcastShapes(out.shape, other.shape)
	if err != nil {
		return err
	}
	if !SameShape(shape, out.shape) {
		return fmt.Errorf("tensor: BinaryOpInPlace operand %v broadens destination %v", other.shape, out.shape)
	}
	if swap {
		binaryOpInto(p, out, other, out, shape, fn)
	} else {
		binaryOpInto(p, out, out, other, shape, fn)
	}
	return nil
}

// UnaryOpInPlace applies fn elementwise in place over out — the unary
// fused epilogue primitive. Trivially alias-safe: each element is read
// once, at the index being written.
func UnaryOpInPlace(p *Pool, out *Tensor, fn func(x float32) float32) {
	unaryOpInto(p, out, out, fn)
}

// UnaryOp applies fn elementwise into a new tensor.
func UnaryOp(p *Pool, a *Tensor, fn func(x float32) float32) *Tensor {
	out := New(a.shape...)
	unaryOpInto(p, out, a, fn)
	return out
}

// UnaryOpInto applies fn elementwise into out, which must have a's
// shape. out is fully overwritten and must not alias a.
func UnaryOpInto(p *Pool, out, a *Tensor, fn func(x float32) float32) error {
	if !SameShape(out.shape, a.shape) {
		return fmt.Errorf("tensor: UnaryOpInto destination %v, want %v", out.shape, a.shape)
	}
	unaryOpInto(p, out, a, fn)
	return nil
}

func unaryOpInto(p *Pool, out, a *Tensor, fn func(x float32) float32) {
	ad, od := a.data, out.data
	p.For(len(od), 16384, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			od[i] = fn(ad[i])
		}
	})
}

// ReduceGradToShape sums grad (of the broadcast output shape) down to
// `shape`, undoing broadcasting: summed over leading extra axes and
// over axes where shape has 1 but grad does not. Used by gradients of
// broadcasting binary operations.
func ReduceGradToShape(p *Pool, grad *Tensor, shape []int) *Tensor {
	if SameShape(grad.shape, shape) {
		return grad.Clone()
	}
	out := New(shape...)
	reduceGradToShapeInto(p, out, grad)
	return out
}

// ReduceGradToShapeInto is ReduceGradToShape into a preallocated out
// (whose shape is the reduction target); out is reinitialized and must
// not alias grad.
func ReduceGradToShapeInto(p *Pool, out, grad *Tensor) error {
	if b, err := BroadcastShapes(out.shape, grad.shape); err != nil || !SameShape(b, grad.shape) {
		return fmt.Errorf("tensor: ReduceGradToShapeInto target %v does not broadcast to %v", out.shape, grad.shape)
	}
	if SameShape(grad.shape, out.shape) {
		copy(out.data, grad.data)
		return nil
	}
	out.Zero()
	reduceGradToShapeInto(p, out, grad)
	return nil
}

func reduceGradToShapeInto(p *Pool, out, grad *Tensor) {
	shape := out.shape
	st := broadcastStrides(shape, grad.shape)
	rank := len(grad.shape)
	gd, od := grad.data, out.data
	idx := make([]int, rank)
	oo := 0
	for pos := 0; pos < len(gd); pos++ {
		od[oo] += gd[pos]
		for i := rank - 1; i >= 0; i-- {
			idx[i]++
			oo += st[i]
			if idx[i] < grad.shape[i] {
				break
			}
			idx[i] = 0
			oo -= st[i] * grad.shape[i]
		}
	}
}
