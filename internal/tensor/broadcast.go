package tensor

import "fmt"

// BroadcastShapes returns the NumPy-style broadcast of two shapes, or
// an error when they are incompatible. Dimensions align from the
// trailing end; a dimension broadcasts when either side is 1.
func BroadcastShapes(a, b []int) ([]int, error) {
	n := len(a)
	if len(b) > n {
		n = len(b)
	}
	out := make([]int, n)
	for i := 0; i < n; i++ {
		da, db := 1, 1
		if i >= n-len(a) {
			da = a[i-(n-len(a))]
		}
		if i >= n-len(b) {
			db = b[i-(n-len(b))]
		}
		switch {
		case da == db:
			out[i] = da
		case da == 1:
			out[i] = db
		case db == 1:
			out[i] = da
		default:
			return nil, fmt.Errorf("tensor: cannot broadcast shapes %v and %v", a, b)
		}
	}
	return out, nil
}

// broadcastStrides returns element strides for iterating a tensor of
// shape `shape` as if it had the broadcast shape `out` (stride 0 on
// broadcast dimensions).
func broadcastStrides(shape, out []int) []int {
	st := make([]int, len(out))
	real := Strides(shape)
	off := len(out) - len(shape)
	for i := range out {
		if i < off {
			st[i] = 0
			continue
		}
		d := shape[i-off]
		if d == 1 && out[i] != 1 {
			st[i] = 0
		} else {
			st[i] = real[i-off]
		}
	}
	return st
}

// BinaryOp applies fn elementwise over broadcast inputs a and b,
// writing into a freshly allocated tensor of the broadcast shape. The
// pool parallelizes over the leading axis of the output when profitable.
func BinaryOp(p *Pool, a, b *Tensor, fn func(x, y float32) float32) (*Tensor, error) {
	shape, err := BroadcastShapes(a.shape, b.shape)
	if err != nil {
		return nil, err
	}
	out := New(shape...)
	// Fast path: identical shapes, flat loop.
	if SameShape(a.shape, b.shape) {
		ad, bd, od := a.data, b.data, out.data
		p.For(len(od), 16384, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				od[i] = fn(ad[i], bd[i])
			}
		})
		return out, nil
	}
	// Fast path: b is scalar.
	if b.Size() == 1 {
		s := b.data[0]
		ad, od := a.data, out.data
		p.For(len(od), 16384, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				od[i] = fn(ad[i], s)
			}
		})
		return out, nil
	}
	// Fast path: a is scalar.
	if a.Size() == 1 {
		s := a.data[0]
		bd, od := b.data, out.data
		p.For(len(od), 16384, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				od[i] = fn(s, bd[i])
			}
		})
		return out, nil
	}
	// Fast path: trailing broadcast a[..,C] op b[C] (bias add pattern).
	if len(b.shape) == 1 && len(a.shape) >= 1 && a.shape[len(a.shape)-1] == b.shape[0] && SameShape(shape, a.shape) {
		c := b.shape[0]
		ad, bd, od := a.data, b.data, out.data
		rows := len(od) / c
		p.For(rows, 256, func(lo, hi int) {
			for r := lo; r < hi; r++ {
				base := r * c
				for j := 0; j < c; j++ {
					od[base+j] = fn(ad[base+j], bd[j])
				}
			}
		})
		return out, nil
	}
	// General case: strided iteration.
	sa := broadcastStrides(a.shape, shape)
	sb := broadcastStrides(b.shape, shape)
	so := Strides(shape)
	total := out.Size()
	ad, bd, od := a.data, b.data, out.data
	rank := len(shape)
	p.For(total, 8192, func(lo, hi int) {
		idx := make([]int, rank)
		// Decompose lo into the starting multi-index.
		rem := lo
		for i := 0; i < rank; i++ {
			idx[i] = rem / so[i]
			rem %= so[i]
		}
		oa, ob := 0, 0
		for i := 0; i < rank; i++ {
			oa += idx[i] * sa[i]
			ob += idx[i] * sb[i]
		}
		for pos := lo; pos < hi; pos++ {
			od[pos] = fn(ad[oa], bd[ob])
			// Increment the multi-index (odometer).
			for i := rank - 1; i >= 0; i-- {
				idx[i]++
				oa += sa[i]
				ob += sb[i]
				if idx[i] < shape[i] {
					break
				}
				idx[i] = 0
				oa -= sa[i] * shape[i]
				ob -= sb[i] * shape[i]
			}
		}
	})
	return out, nil
}

// UnaryOp applies fn elementwise into a new tensor.
func UnaryOp(p *Pool, a *Tensor, fn func(x float32) float32) *Tensor {
	out := New(a.shape...)
	ad, od := a.data, out.data
	p.For(len(od), 16384, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			od[i] = fn(ad[i])
		}
	})
	return out
}

// ReduceGradToShape sums grad (of the broadcast output shape) down to
// `shape`, undoing broadcasting: summed over leading extra axes and
// over axes where shape has 1 but grad does not. Used by gradients of
// broadcasting binary operations.
func ReduceGradToShape(p *Pool, grad *Tensor, shape []int) *Tensor {
	if SameShape(grad.shape, shape) {
		return grad.Clone()
	}
	out := New(shape...)
	st := broadcastStrides(shape, grad.shape)
	rank := len(grad.shape)
	gd, od := grad.data, out.data
	idx := make([]int, rank)
	oo := 0
	for pos := 0; pos < len(gd); pos++ {
		od[oo] += gd[pos]
		for i := rank - 1; i >= 0; i-- {
			idx[i]++
			oo += st[i]
			if idx[i] < grad.shape[i] {
				break
			}
			idx[i] = 0
			oo -= st[i] * grad.shape[i]
		}
	}
	return out
}
