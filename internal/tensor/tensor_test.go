package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewZeroFilled(t *testing.T) {
	x := New(2, 3)
	if x.Size() != 6 || x.Rank() != 2 || x.Dim(0) != 2 || x.Dim(1) != 3 {
		t.Fatalf("unexpected metadata: %v", x)
	}
	for _, v := range x.Data() {
		if v != 0 {
			t.Fatalf("New not zero-filled: %v", x.Data())
		}
	}
}

func TestFromSliceAndAtSet(t *testing.T) {
	x := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	if x.At(0, 0) != 1 || x.At(1, 2) != 6 || x.At(0, 2) != 3 {
		t.Fatalf("At wrong: %v", x)
	}
	x.Set(42, 1, 1)
	if x.At(1, 1) != 42 {
		t.Fatalf("Set failed")
	}
}

func TestFromSliceSizeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on size mismatch")
		}
	}()
	FromSlice([]float32{1, 2, 3}, 2, 2)
}

func TestScalar(t *testing.T) {
	s := Scalar(3.5)
	if s.Rank() != 0 || s.Size() != 1 || s.Data()[0] != 3.5 {
		t.Fatalf("bad scalar: %v", s)
	}
}

func TestReshapeSharesStorage(t *testing.T) {
	x := FromSlice([]float32{1, 2, 3, 4}, 2, 2)
	y := x.Reshape(4)
	y.Data()[0] = 99
	if x.At(0, 0) != 99 {
		t.Fatal("Reshape must share storage")
	}
	if !SameShape(y.Shape(), []int{4}) {
		t.Fatalf("bad reshape shape %v", y.Shape())
	}
}

func TestReshapeBadSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(2, 2).Reshape(5)
}

func TestCloneIndependent(t *testing.T) {
	x := FromSlice([]float32{1, 2}, 2)
	y := x.Clone()
	y.Data()[0] = 7
	if x.Data()[0] != 1 {
		t.Fatal("Clone must copy storage")
	}
}

func TestStrides(t *testing.T) {
	s := Strides([]int{2, 3, 4})
	want := []int{12, 4, 1}
	for i := range want {
		if s[i] != want[i] {
			t.Fatalf("Strides = %v, want %v", s, want)
		}
	}
}

func TestAllCloseAndMaxAbsDiff(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3}, 3)
	b := FromSlice([]float32{1, 2.0005, 3}, 3)
	if !AllClose(a, b, 1e-3, 1e-3) {
		t.Fatal("should be close")
	}
	if AllClose(a, b, 0, 1e-6) {
		t.Fatal("should not be close at tight tolerance")
	}
	if d := MaxAbsDiff(a, b); math.Abs(d-0.0005) > 1e-4 {
		t.Fatalf("MaxAbsDiff = %v", d)
	}
	c := FromSlice([]float32{1, 2, 3}, 1, 3)
	if AllClose(a, c, 1, 1) {
		t.Fatal("different shapes must not be close")
	}
}

func TestAllCloseNaN(t *testing.T) {
	a := FromSlice([]float32{float32(math.NaN())}, 1)
	if AllClose(a, a, 1, 1) {
		t.Fatal("NaN must not compare close")
	}
}

// --- Broadcasting ---

func TestBroadcastShapes(t *testing.T) {
	cases := []struct {
		a, b, want []int
		err        bool
	}{
		{[]int{2, 3}, []int{2, 3}, []int{2, 3}, false},
		{[]int{2, 3}, []int{3}, []int{2, 3}, false},
		{[]int{2, 1}, []int{1, 5}, []int{2, 5}, false},
		{[]int{}, []int{4}, []int{4}, false},
		{[]int{2, 3}, []int{4}, nil, true},
	}
	for _, c := range cases {
		got, err := BroadcastShapes(c.a, c.b)
		if c.err != (err != nil) {
			t.Fatalf("BroadcastShapes(%v,%v) err=%v", c.a, c.b, err)
		}
		if err == nil && !SameShape(got, c.want) {
			t.Fatalf("BroadcastShapes(%v,%v)=%v want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestBinaryOpSameShape(t *testing.T) {
	p := NewPool(1)
	a := FromSlice([]float32{1, 2, 3, 4}, 2, 2)
	b := FromSlice([]float32{10, 20, 30, 40}, 2, 2)
	out, err := BinaryOp(p, a, b, func(x, y float32) float32 { return x + y })
	if err != nil {
		t.Fatal(err)
	}
	want := []float32{11, 22, 33, 44}
	for i, v := range out.Data() {
		if v != want[i] {
			t.Fatalf("got %v want %v", out.Data(), want)
		}
	}
}

func TestBinaryOpScalar(t *testing.T) {
	p := NewPool(1)
	a := FromSlice([]float32{1, 2, 3}, 3)
	s := Scalar(2)
	out, err := BinaryOp(p, a, s, func(x, y float32) float32 { return x * y })
	if err != nil {
		t.Fatal(err)
	}
	if out.Data()[2] != 6 {
		t.Fatalf("scalar broadcast wrong: %v", out.Data())
	}
	out2, err := BinaryOp(p, s, a, func(x, y float32) float32 { return x - y })
	if err != nil || out2.Data()[0] != 1 {
		t.Fatalf("scalar-first broadcast wrong: %v %v", out2, err)
	}
}

func TestBinaryOpBiasPattern(t *testing.T) {
	p := NewPool(1)
	a := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	bias := FromSlice([]float32{10, 20, 30}, 3)
	out, err := BinaryOp(p, a, bias, func(x, y float32) float32 { return x + y })
	if err != nil {
		t.Fatal(err)
	}
	want := []float32{11, 22, 33, 14, 25, 36}
	for i := range want {
		if out.Data()[i] != want[i] {
			t.Fatalf("bias add: got %v want %v", out.Data(), want)
		}
	}
}

func TestBinaryOpGeneralBroadcast(t *testing.T) {
	p := NewPool(1)
	a := FromSlice([]float32{1, 2}, 2, 1)
	b := FromSlice([]float32{10, 20, 30}, 1, 3)
	out, err := BinaryOp(p, a, b, func(x, y float32) float32 { return x + y })
	if err != nil {
		t.Fatal(err)
	}
	want := []float32{11, 21, 31, 12, 22, 32}
	for i := range want {
		if out.Data()[i] != want[i] {
			t.Fatalf("general broadcast: got %v want %v", out.Data(), want)
		}
	}
}

func TestBinaryOpShapeError(t *testing.T) {
	p := NewPool(1)
	_, err := BinaryOp(p, New(2, 3), New(4), func(x, y float32) float32 { return x })
	if err == nil {
		t.Fatal("expected broadcast error")
	}
}

func TestUnaryOp(t *testing.T) {
	p := NewPool(1)
	a := FromSlice([]float32{-1, 2, -3}, 3)
	out := UnaryOp(p, a, func(x float32) float32 {
		if x < 0 {
			return 0
		}
		return x
	})
	if out.Data()[0] != 0 || out.Data()[1] != 2 || out.Data()[2] != 0 {
		t.Fatalf("relu wrong: %v", out.Data())
	}
}

func TestReduceGradToShape(t *testing.T) {
	p := NewPool(1)
	grad := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	got := ReduceGradToShape(p, grad, []int{3})
	want := []float32{5, 7, 9}
	for i := range want {
		if got.Data()[i] != want[i] {
			t.Fatalf("ReduceGradToShape = %v want %v", got.Data(), want)
		}
	}
	got2 := ReduceGradToShape(p, grad, []int{2, 1})
	if got2.Data()[0] != 6 || got2.Data()[1] != 15 {
		t.Fatalf("keepdim reduce = %v", got2.Data())
	}
	// Same shape: identity copy.
	got3 := ReduceGradToShape(p, grad, []int{2, 3})
	if MaxAbsDiff(got3, grad) != 0 {
		t.Fatal("same-shape reduce should copy")
	}
}

// Property: for any broadcastable pair, a+b == b+a elementwise.
func TestBinaryOpCommutativityQuick(t *testing.T) {
	p := NewPool(1)
	rng := rand.New(rand.NewSource(7))
	f := func(r0, c0 uint8) bool {
		r := int(r0%4) + 1
		c := int(c0%4) + 1
		a := RandNormal(rng, 0, 1, r, c)
		b := RandNormal(rng, 0, 1, c) // broadcasts over rows
		x, err1 := BinaryOp(p, a, b, func(u, v float32) float32 { return u + v })
		y, err2 := BinaryOp(p, b, a, func(u, v float32) float32 { return u + v })
		if err1 != nil || err2 != nil {
			return false
		}
		return AllClose(x, y, 1e-6, 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
