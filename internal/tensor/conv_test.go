package tensor

import (
	"math/rand"
	"testing"
)

// naiveConv2D is a reference convolution used to validate the kernel.
func naiveConv2D(in, f *Tensor, spec ConvSpec) *Tensor {
	n, h, w, cin := in.Dim(0), in.Dim(1), in.Dim(2), in.Dim(3)
	kh, kw, _, cout := f.Dim(0), f.Dim(1), f.Dim(2), f.Dim(3)
	oh := ConvOutSize(h, kh, spec.StrideH, spec.PadH)
	ow := ConvOutSize(w, kw, spec.StrideW, spec.PadW)
	out := New(n, oh, ow, cout)
	for b := 0; b < n; b++ {
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				for co := 0; co < cout; co++ {
					var s float32
					for ky := 0; ky < kh; ky++ {
						for kx := 0; kx < kw; kx++ {
							iy := oy*spec.StrideH - spec.PadH + ky
							ix := ox*spec.StrideW - spec.PadW + kx
							if iy < 0 || iy >= h || ix < 0 || ix >= w {
								continue
							}
							for c := 0; c < cin; c++ {
								s += in.At(b, iy, ix, c) * f.At(ky, kx, c, co)
							}
						}
					}
					out.Set(s, b, oy, ox, co)
				}
			}
		}
	}
	return out
}

func TestConv2DMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	p := NewPool(2)
	cases := []struct {
		n, h, w, cin, kh, kw, cout int
		spec                       ConvSpec
	}{
		{1, 5, 5, 1, 3, 3, 2, ConvSpec{1, 1, 0, 0}},
		{2, 8, 8, 3, 3, 3, 4, ConvSpec{1, 1, 1, 1}},
		{1, 9, 9, 2, 3, 3, 3, ConvSpec{2, 2, 1, 1}},
		{2, 11, 11, 1, 5, 5, 2, ConvSpec{2, 2, 2, 2}},
		{1, 12, 12, 2, 4, 4, 2, ConvSpec{4, 4, 0, 0}},
	}
	for _, c := range cases {
		in := RandNormal(rng, 0, 1, c.n, c.h, c.w, c.cin)
		f := RandNormal(rng, 0, 1, c.kh, c.kw, c.cin, c.cout)
		got, err := Conv2D(p, in, f, c.spec)
		if err != nil {
			t.Fatal(err)
		}
		want := naiveConv2D(in, f, c.spec)
		if !AllClose(got, want, 1e-4, 1e-4) {
			t.Fatalf("conv mismatch %+v (max diff %g)", c, MaxAbsDiff(got, want))
		}
	}
}

// TestConv2DIm2colMatchesDirect forces both kernel paths on shapes
// large enough to engage the im2col heuristic and checks they agree
// (and match the naive reference).
func TestConv2DIm2colMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	p := NewPool(2)
	cases := []struct {
		n, h, w, cin, kh, kw, cout int
		spec                       ConvSpec
	}{
		{2, 9, 9, 16, 3, 3, 16, ConvSpec{1, 1, 1, 1}}, // SAME, padded taps
		{1, 7, 5, 8, 3, 3, 32, ConvSpec{1, 1, 0, 0}},  // VALID, non-square
		{1, 6, 6, 24, 5, 5, 12, ConvSpec{1, 1, 2, 2}}, // window > half image
	}
	for _, c := range cases {
		if c.kh*c.kw*c.cin*c.cout < im2colMinWork {
			t.Fatalf("case %+v does not engage the im2col path", c)
		}
		in := RandNormal(rng, 0, 1, c.n, c.h, c.w, c.cin)
		f := RandNormal(rng, 0, 1, c.kh, c.kw, c.cin, c.cout)
		oh := ConvOutSize(c.h, c.kh, 1, c.spec.PadH)
		ow := ConvOutSize(c.w, c.kw, 1, c.spec.PadW)
		viaIm2col := Full(99, c.n, oh, ow, c.cout) // dirty, like an arena buffer
		conv2DIm2col(p, viaIm2col, in, f, c.spec)
		viaDirect := New(c.n, oh, ow, c.cout)
		conv2DDirect(p, viaDirect, in, f, c.spec)
		if !AllClose(viaIm2col, viaDirect, 1e-4, 1e-4) {
			t.Fatalf("im2col vs direct mismatch %+v (max diff %g)", c, MaxAbsDiff(viaIm2col, viaDirect))
		}
		want := naiveConv2D(in, f, c.spec)
		if !AllClose(viaIm2col, want, 1e-4, 1e-4) {
			t.Fatalf("im2col vs naive mismatch %+v (max diff %g)", c, MaxAbsDiff(viaIm2col, want))
		}
	}
}

// TestConv2D1x1MatMulPath checks the pointwise-convolution fast path.
func TestConv2D1x1MatMulPath(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	p := NewPool(1)
	in := RandNormal(rng, 0, 1, 2, 6, 6, 8)
	f := RandNormal(rng, 0, 1, 1, 1, 8, 16)
	got, err := Conv2D(p, in, f, ConvSpec{1, 1, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	want := naiveConv2D(in, f, ConvSpec{1, 1, 0, 0})
	if !AllClose(got, want, 1e-4, 1e-4) {
		t.Fatalf("1x1 path mismatch (max diff %g)", MaxAbsDiff(got, want))
	}
}

// TestConvIntoVariantsOverwriteDirtyDestinations feeds dirty buffers
// (as arena slots are) to every Into kernel and checks full overwrite.
func TestConvIntoVariantsOverwriteDirtyDestinations(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	p := NewPool(1)
	in := RandNormal(rng, 0, 1, 1, 6, 6, 2)
	f := RandNormal(rng, 0, 1, 3, 3, 2, 3)
	spec := ConvSpec{1, 1, 1, 1}
	out, err := Conv2D(p, in, f, spec)
	if err != nil {
		t.Fatal(err)
	}
	dirty := Full(99, out.Shape()...)
	if err := Conv2DInto(p, dirty, in, f, spec); err != nil {
		t.Fatal(err)
	}
	if !AllClose(dirty, out, 0, 0) {
		t.Fatal("Conv2DInto must fully overwrite a dirty destination")
	}

	grad := RandNormal(rng, 0, 1, out.Shape()...)
	gf, err := Conv2DBackFilter(p, in, grad, 3, 3, spec)
	if err != nil {
		t.Fatal(err)
	}
	dirty = Full(99, 3, 3, 2, 3)
	if err := Conv2DBackFilterInto(p, dirty, in, grad, 3, 3, spec); err != nil {
		t.Fatal(err)
	}
	if !AllClose(dirty, gf, 0, 0) {
		t.Fatal("Conv2DBackFilterInto must zero before accumulating")
	}

	gi, err := Conv2DBackInput(p, f, grad, 6, 6, spec)
	if err != nil {
		t.Fatal(err)
	}
	dirty = Full(99, 1, 6, 6, 2)
	if err := Conv2DBackInputInto(p, dirty, f, grad, 6, 6, spec); err != nil {
		t.Fatal(err)
	}
	if !AllClose(dirty, gi, 0, 0) {
		t.Fatal("Conv2DBackInputInto must zero before accumulating")
	}

	mp, err := MaxPool(p, in, 2, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	dirty = Full(99, mp.Shape()...)
	if err := MaxPoolInto(p, dirty, in, 2, 2, 0); err != nil {
		t.Fatal(err)
	}
	if !AllClose(dirty, mp, 0, 0) {
		t.Fatal("MaxPoolInto must fully overwrite a dirty destination")
	}

	ap, err := AvgPool(p, in, 2, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	dirty = Full(99, ap.Shape()...)
	if err := AvgPoolInto(p, dirty, in, 2, 2, 0); err != nil {
		t.Fatal(err)
	}
	if !AllClose(dirty, ap, 0, 0) {
		t.Fatal("AvgPoolInto must zero before accumulating")
	}
}

func TestConv2DChannelMismatch(t *testing.T) {
	p := NewPool(1)
	if _, err := Conv2D(p, New(1, 4, 4, 3), New(3, 3, 2, 4), ConvSpec{}); err == nil {
		t.Fatal("expected channel mismatch error")
	}
}

// Gradient checks: compare BackFilter/BackInput against finite
// differences of a scalar loss L = Σ conv(in, f).
func TestConv2DGradientsFiniteDiff(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	p := NewPool(1)
	spec := ConvSpec{2, 2, 1, 1}
	in := RandNormal(rng, 0, 0.5, 1, 6, 6, 2)
	f := RandNormal(rng, 0, 0.5, 3, 3, 2, 2)
	out, err := Conv2D(p, in, f, spec)
	if err != nil {
		t.Fatal(err)
	}
	gradOut := Ones(out.Shape()...)

	gf, err := Conv2DBackFilter(p, in, gradOut, 3, 3, spec)
	if err != nil {
		t.Fatal(err)
	}
	gi, err := Conv2DBackInput(p, f, gradOut, 6, 6, spec)
	if err != nil {
		t.Fatal(err)
	}

	loss := func() float64 {
		o, _ := Conv2D(p, in, f, spec)
		var s float64
		for _, v := range o.Data() {
			s += float64(v)
		}
		return s
	}
	const eps = 1e-2
	// Spot-check a handful of coordinates in each gradient.
	for _, i := range []int{0, 3, 7, len(f.Data()) - 1} {
		orig := f.Data()[i]
		f.Data()[i] = orig + eps
		lp := loss()
		f.Data()[i] = orig - eps
		lm := loss()
		f.Data()[i] = orig
		num := (lp - lm) / (2 * eps)
		if d := num - float64(gf.Data()[i]); d > 1e-2 || d < -1e-2 {
			t.Fatalf("filter grad[%d]: analytic %g numeric %g", i, gf.Data()[i], num)
		}
	}
	for _, i := range []int{0, 5, 20, len(in.Data()) - 1} {
		orig := in.Data()[i]
		in.Data()[i] = orig + eps
		lp := loss()
		in.Data()[i] = orig - eps
		lm := loss()
		in.Data()[i] = orig
		num := (lp - lm) / (2 * eps)
		if d := num - float64(gi.Data()[i]); d > 1e-2 || d < -1e-2 {
			t.Fatalf("input grad[%d]: analytic %g numeric %g", i, gi.Data()[i], num)
		}
	}
}

func TestMaxPoolKnown(t *testing.T) {
	p := NewPool(1)
	in := FromSlice([]float32{
		1, 2, 3, 4,
		5, 6, 7, 8,
		9, 10, 11, 12,
		13, 14, 15, 16,
	}, 1, 4, 4, 1)
	out, err := MaxPool(p, in, 2, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := []float32{6, 8, 14, 16}
	for i := range want {
		if out.Data()[i] != want[i] {
			t.Fatalf("MaxPool = %v want %v", out.Data(), want)
		}
	}
}

func TestMaxPoolGradRoutesToArgmax(t *testing.T) {
	p := NewPool(1)
	in := FromSlice([]float32{
		1, 2,
		3, 4,
	}, 1, 2, 2, 1)
	gradOut := FromSlice([]float32{10}, 1, 1, 1, 1)
	g, err := MaxPoolGrad(p, in, gradOut, 2, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := []float32{0, 0, 0, 10}
	for i := range want {
		if g.Data()[i] != want[i] {
			t.Fatalf("MaxPoolGrad = %v want %v", g.Data(), want)
		}
	}
}

func TestAvgPoolKnownAndGrad(t *testing.T) {
	p := NewPool(1)
	in := FromSlice([]float32{
		1, 2, 3, 4,
		5, 6, 7, 8,
		9, 10, 11, 12,
		13, 14, 15, 16,
	}, 1, 4, 4, 1)
	out, err := AvgPool(p, in, 2, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := []float32{3.5, 5.5, 11.5, 13.5}
	for i := range want {
		if out.Data()[i] != want[i] {
			t.Fatalf("AvgPool = %v want %v", out.Data(), want)
		}
	}
	gradOut := FromSlice([]float32{4, 4, 4, 4}, 1, 2, 2, 1)
	g, err := AvgPoolGrad(p, in.Shape(), gradOut, 2, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range g.Data() {
		if v != 1 {
			t.Fatalf("AvgPoolGrad should spread 4 over 4 cells: %v", g.Data())
		}
	}
}

func TestPoolingWithPadding(t *testing.T) {
	p := NewPool(1)
	rng := rand.New(rand.NewSource(6))
	in := RandNormal(rng, 0, 1, 2, 7, 7, 3)
	out, err := MaxPool(p, in, 3, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !SameShape(out.Shape(), []int{2, 4, 4, 3}) {
		t.Fatalf("padded maxpool shape %v", out.Shape())
	}
	out2, err := AvgPool(p, in, 3, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !SameShape(out2.Shape(), []int{2, 4, 4, 3}) {
		t.Fatalf("padded avgpool shape %v", out2.Shape())
	}
}

func TestConvOutSize(t *testing.T) {
	if ConvOutSize(224, 11, 4, 2) != 55 {
		t.Fatal("AlexNet conv1 output size should be 55")
	}
	if ConvOutSize(4, 2, 2, 0) != 2 {
		t.Fatal("basic out size")
	}
	if SamePad(3) != 1 || SamePad(5) != 2 || SamePad(7) != 3 {
		t.Fatal("SamePad")
	}
}
