package tensor

import "math/rand"

// FillNormal fills t with samples from N(mean, std²) using rng.
func FillNormal(t *Tensor, rng *rand.Rand, mean, std float64) {
	for i := range t.data {
		t.data[i] = float32(rng.NormFloat64()*std + mean)
	}
}

// FillUniform fills t with samples from U[lo, hi).
func FillUniform(t *Tensor, rng *rand.Rand, lo, hi float64) {
	for i := range t.data {
		t.data[i] = float32(lo + rng.Float64()*(hi-lo))
	}
}

// RandNormal returns a fresh tensor of N(mean, std²) samples.
func RandNormal(rng *rand.Rand, mean, std float64, shape ...int) *Tensor {
	t := New(shape...)
	FillNormal(t, rng, mean, std)
	return t
}

// RandUniform returns a fresh tensor of U[lo, hi) samples.
func RandUniform(rng *rand.Rand, lo, hi float64, shape ...int) *Tensor {
	t := New(shape...)
	FillUniform(t, rng, lo, hi)
	return t
}
