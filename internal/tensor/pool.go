package tensor

import (
	"sync"
	"sync/atomic"
	"time"
)

// Executor supplies helper goroutines to a parallel Pool. It is
// implemented by sched.Pool and sched.Lease (the tensor package stays
// dependency-free by naming only the interface). TryRun must never
// block: it either accepts the task — which then must run — or reports
// false, in which case the pool runs the chunk on the calling
// goroutine instead.
type Executor interface {
	TryRun(task func()) bool
}

// Pool runs the chunked loops of tensor kernels — the analogue of the
// Eigen thread pool TensorFlow used on CPUs when the paper was
// written. It has two execution strategies behind one interface, used
// by the matmul, conv, reduce and broadcast kernels alike:
//
//   - Serial + simulated (NewPool): every chunk executes serially on
//     the calling goroutine and is measured; the pool then reports the
//     makespan the kernel would have had under list scheduling of the
//     measured chunks across Workers modeled lanes. This is the
//     strategy behind the paper's Fig. 6 intra-op profiles, where the
//     host may not have the cores the model assumes.
//   - Real parallel (NewParallelPool): chunks execute on up to Workers
//     goroutines — the caller plus helpers drawn non-blockingly from a
//     shared Executor (the process-wide sched pool) — and OpTime
//     reports plain wall time. Helper scarcity degrades to serial
//     execution on the caller, never blocks, never deadlocks.
//
// # Determinism contract
//
// Chunk boundaries are a function of the trip count and grain only —
// never of the worker count and never of how many helpers showed up —
// so the chunks of a region are identical at every configured width.
// For's body must be index-pure (chunk [lo,hi) writes only outputs
// indexed by [lo,hi) and reads no other chunk's output), which makes
// results bit-identical across widths and lane assignments; ForSum and
// ForMax carry cross-chunk float32 reductions by combining per-chunk
// partials in ascending chunk order, at every width including 1, so
// reductions are bit-identical too. The determinism harness
// (internal/models/determinism_test.go) pins this across intra-op ×
// inter-op width combinations for all ten workloads.
//
// A Pool is confined to one goroutine from the caller's perspective:
// only the internal parallel strategy fans chunks out, and every
// region joins before For returns. Width is immutable after the first
// region executes (SetWorkers panics), so a plan's modeled makespans
// can never be skewed by a mid-plan width change.
type Pool struct {
	workers int
	frozen  bool // width immutable once any region has executed
	exec    Executor

	// Accumulators for the operation currently executing, maintained
	// by the serial+simulated strategy. ResetOp clears them; OpTime
	// folds them into a simulated duration. The parallel strategy
	// leaves them zero, so OpTime degenerates to measured wall time.
	simPar  time.Duration // modeled parallel time of For regions
	realPar time.Duration // measured serial time of For regions
	regions int           // number of For regions that actually split

	// Persistent per-lane kernel scratch (see laneScratch). Lane 0 is
	// the calling goroutine; parallel helpers use lanes 1..Workers-1.
	// They survive across operations so steady-state kernels allocate
	// nothing.
	lanes []laneScratchSet

	clocks   []time.Duration // modeled lane clocks, reused per region
	partials []float32       // ForSum/ForMax chunk partials, reused
	vecParts [][]float32     // ForSumVec per-chunk accumulators, reused
}

type laneScratchSet [scratchSlots][]float32

// Scratch slot assignments for the pool's kernel workspaces. Kernels
// may nest (Conv2D's im2col path calls the matmul kernel), so each
// concern owns a distinct slot.
const (
	scratchPackA  = iota // matmul: packed A panel (per lane)
	scratchPackB         // matmul: packed B panel (caller-side)
	scratchIm2col        // conv: im2col patch matrix (caller-side)
	scratchAttn          // attention: one score row of length S (per lane)
	scratchSlots
)

// maxRegionChunks caps how many chunks one region splits into. The cap
// is a constant — independent of worker count — so boundaries never
// depend on width; it merely bounds per-chunk bookkeeping while
// keeping enough chunks (4× a typical width) for load balance.
const maxRegionChunks = 32

// regionChunks is the deterministic chunking rule shared by both
// strategies and every For variant: purely a function of (n, grain).
// A region below 2×grain does not split; otherwise it splits into
// n/grain chunks (each at least grain iterations) capped at
// maxRegionChunks.
func regionChunks(n, grain int) int {
	if grain < 1 {
		grain = 1
	}
	if n < 2*grain {
		return 1
	}
	c := n / grain
	if c > maxRegionChunks {
		c = maxRegionChunks
	}
	return c
}

// chunkBounds returns chunk i of [0,n) split into `chunks` pieces.
// Boundaries i*n/chunks are strictly increasing because chunks <=
// n/grain <= n, which also keeps every chunk at least grain iterations
// (floor(n/chunks) >= grain); no chunk is ever empty.
// TestPoolChunkAccounting pins both invariants across a sweep of
// (n, grain, workers).
func chunkBounds(n, chunks, i int) (lo, hi int) {
	return i * n / chunks, (i + 1) * n / chunks
}

// NewPool returns a serial pool modeling n workers. n < 1 is treated
// as 1.
func NewPool(n int) *Pool {
	if n < 1 {
		n = 1
	}
	return &Pool{workers: n, lanes: make([]laneScratchSet, 1)}
}

// NewParallelPool returns a pool that really executes chunks on up to
// n goroutines: the caller plus helpers drawn from ex. A nil ex or
// n <= 1 yields caller-only execution (still deterministic — the
// chunking rule does not change with width).
func NewParallelPool(n int, ex Executor) *Pool {
	p := NewPool(n)
	p.exec = ex
	return p
}

// Workers returns the pool width: modeled lanes for the serial
// strategy, the max concurrent executors for the parallel one.
func (p *Pool) Workers() int { return p.workers }

// Parallel reports whether the pool really executes chunks
// concurrently (vs. modeling the speedup).
func (p *Pool) Parallel() bool { return p.exec != nil && p.workers > 1 }

// SetWorkers changes the pool width. The width is immutable once any
// region has executed: a mid-plan change would silently skew modeled
// makespans (and per-lane scratch sizing), so SetWorkers panics after
// the first For.
func (p *Pool) SetWorkers(n int) {
	if p.frozen {
		panic("tensor: Pool width is immutable after the first For region")
	}
	if n < 1 {
		n = 1
	}
	p.workers = n
}

// ResetOp clears the per-operation accumulators. The executor calls it
// before running each operation.
func (p *Pool) ResetOp() {
	p.simPar = 0
	p.realPar = 0
	p.regions = 0
}

// OpTime converts the measured wall time of an operation into its
// simulated duration: serial (non-For) time is kept as-is, while each
// For region contributes its modeled makespan instead of its measured
// serial time. For the parallel strategy the accumulators stay zero
// and OpTime returns the wall time unchanged — the op really ran that
// fast.
func (p *Pool) OpTime(wall time.Duration) time.Duration {
	d := wall - p.realPar + p.simPar
	if d < 0 {
		d = 0
	}
	return d
}

// Regions reports how many For regions split during the current
// operation (used by tests).
func (p *Pool) Regions() int { return p.regions }

// growLanes ensures per-lane scratch exists for lanes [0,n). It runs
// on the owning goroutine before helpers spawn, so laneScratch never
// appends concurrently.
func (p *Pool) growLanes(n int) {
	for len(p.lanes) < n {
		p.lanes = append(p.lanes, laneScratchSet{})
	}
}

// laneScratch returns lane's persistent workspace for a slot, grown to
// at least n elements. Contents are unspecified. A lane is owned by
// exactly one executing goroutine at a time (the chunk driver hands
// each concurrent executor a distinct lane), so per-lane buffers are
// race-free without locking.
func (p *Pool) laneScratch(lane, slot, n int) []float32 {
	b := p.lanes[lane][slot]
	if cap(b) < n {
		b = make([]float32, n)
		p.lanes[lane][slot] = b
	}
	return b[:n]
}

// scratchBuf returns lane 0's workspace for a slot: the caller-side
// scratch used outside parallel regions (packed B panels, im2col patch
// matrices).
func (p *Pool) scratchBuf(slot, n int) []float32 {
	return p.laneScratch(0, slot, n)
}

// For executes fn over [0,n) in chunks fixed by (n, grain); see the
// determinism contract above. fn must be index-pure: chunk [lo,hi)
// writes only outputs indexed by it. Under the serial strategy chunks
// run in order and are measured; under the parallel strategy they run
// on the caller plus available helpers. Either way every chunk
// completes before For returns.
//
// grain is the minimum number of iterations that justifies splitting:
// if n < grain*2 or the pool has one worker, the loop runs as a single
// serial chunk and its time counts fully toward the operation (no
// modeled speedup) — a coalescing that index-purity makes bitwise
// invisible.
func (p *Pool) For(n, grain int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	p.frozen = true
	chunks := regionChunks(n, grain)
	if chunks == 1 || p.workers == 1 {
		fn(0, n)
		return
	}
	p.regions++
	if p.exec == nil {
		p.runModeled(n, chunks, func(chunk, lo, hi int) { fn(lo, hi) })
		return
	}
	p.runChunks(n, chunks, func(lane, chunk, lo, hi int) { fn(lo, hi) })
}

// ForLane is For for kernels that need per-executor scratch: fn
// additionally receives the lane owning the chunk, valid for
// laneScratch access. Lanes identify concurrent executors, not chunks
// — two chunks may share a lane (sequentially), and which lane runs
// which chunk is not deterministic; only per-chunk outputs are, so the
// index-purity contract applies unchanged and lane state must not leak
// into results.
func (p *Pool) ForLane(n, grain int, fn func(lane, lo, hi int)) {
	if n <= 0 {
		return
	}
	p.frozen = true
	chunks := regionChunks(n, grain)
	if chunks == 1 || p.workers == 1 {
		fn(0, 0, n)
		return
	}
	p.regions++
	if p.exec == nil {
		p.runModeled(n, chunks, func(chunk, lo, hi int) { fn(0, lo, hi) })
		return
	}
	p.runChunks(n, chunks, func(lane, chunk, lo, hi int) { fn(lane, lo, hi) })
}

// ForSum reduces [0,n) to a float32 sum: fn returns each chunk's
// partial and ForSum combines the partials in ascending chunk order.
// Unlike For, the region is chunked identically at every width —
// including width 1 — so the float32 combination order, and therefore
// the result bits, never depend on the configured parallelism.
func (p *Pool) ForSum(n, grain int, fn func(lo, hi int) float32) float32 {
	parts, chunks := p.forPartials(n, grain, fn)
	if chunks == 0 {
		return 0
	}
	if chunks == 1 {
		return parts[0]
	}
	var s float32
	for _, v := range parts[:chunks] {
		s += v
	}
	return s
}

// ForMax reduces [0,n) to a float32 maximum with the same
// deterministic chunking as ForSum. fn returns each chunk's maximum;
// chunks of an empty region yield none and ForMax returns negInf.
func (p *Pool) ForMax(n, grain int, fn func(lo, hi int) float32) float32 {
	parts, chunks := p.forPartials(n, grain, fn)
	if chunks == 0 {
		return negInf
	}
	m := parts[0]
	for _, v := range parts[1:chunks] {
		if v > m {
			m = v
		}
	}
	return m
}

// ForSumVec reduces [0,n) to a float32 vector of length w — the
// vector-valued counterpart of ForSum, used by axis reductions whose
// output is small (the outer dims the reduced axes leave behind). fn
// accumulates chunk [lo,hi)'s contribution into a zeroed chunk-private
// accumulator acc of length w; the per-chunk partials then combine
// elementwise in ascending chunk order into out (length w, fully
// overwritten). As with ForSum, the region is chunked identically at
// every width — including width 1 — so the float32 combination order,
// and therefore the result bits, never depend on the configured
// parallelism. Per-chunk accumulator memory is bounded by
// maxRegionChunks × w and reused across regions.
func (p *Pool) ForSumVec(n, grain, w int, out []float32, fn func(lo, hi int, acc []float32)) {
	out = out[:w]
	for i := range out {
		out[i] = 0
	}
	if n <= 0 || w <= 0 {
		return
	}
	p.frozen = true
	chunks := regionChunks(n, grain)
	if chunks == 1 {
		fn(0, n, out)
		return
	}
	parts := p.vecPartials(chunks, w, 0)
	p.runVecChunks(n, chunks, parts, fn)
	copy(out, parts[0])
	for c := 1; c < chunks; c++ {
		part := parts[c]
		for i := range out {
			out[i] += part[i]
		}
	}
}

// ForMaxVec is ForSumVec's max-kind counterpart, used by max axis
// reductions whose output is small: fn folds chunk [lo,hi)'s maxima
// into a chunk-private accumulator initialized to negInf, and the
// per-chunk partials combine elementwise in ascending chunk order with
// the same v > cur comparison the serial walk uses (so a NaN never
// displaces a partial, matching the serial semantics exactly). As with
// ForSumVec, chunk boundaries and combination order are identical at
// every width including 1.
func (p *Pool) ForMaxVec(n, grain, w int, out []float32, fn func(lo, hi int, acc []float32)) {
	out = out[:w]
	for i := range out {
		out[i] = negInf
	}
	if n <= 0 || w <= 0 {
		return
	}
	p.frozen = true
	chunks := regionChunks(n, grain)
	if chunks == 1 {
		fn(0, n, out)
		return
	}
	parts := p.vecPartials(chunks, w, negInf)
	p.runVecChunks(n, chunks, parts, fn)
	copy(out, parts[0])
	for c := 1; c < chunks; c++ {
		part := parts[c]
		for i := range out {
			if part[i] > out[i] {
				out[i] = part[i]
			}
		}
	}
}

// vecPartials returns chunk-private accumulators of length w, each
// initialized to init, reused across regions.
func (p *Pool) vecPartials(chunks, w int, init float32) [][]float32 {
	for len(p.vecParts) < chunks {
		p.vecParts = append(p.vecParts, nil)
	}
	parts := p.vecParts[:chunks]
	for c := range parts {
		if cap(parts[c]) < w {
			parts[c] = make([]float32, w)
		}
		parts[c] = parts[c][:w]
		for i := range parts[c] {
			parts[c][i] = init
		}
	}
	return parts
}

// runVecChunks drives the chunks of a vector-valued reduction region,
// handing chunk c its private accumulator parts[c] under whichever
// execution strategy the pool uses (the chunk set is identical under
// all three).
func (p *Pool) runVecChunks(n, chunks int, parts [][]float32, fn func(lo, hi int, acc []float32)) {
	switch {
	case p.exec != nil && p.workers > 1:
		p.regions++
		p.runChunks(n, chunks, func(lane, chunk, lo, hi int) { fn(lo, hi, parts[chunk]) })
	case p.workers > 1:
		p.regions++
		p.runModeled(n, chunks, func(chunk, lo, hi int) { fn(lo, hi, parts[chunk]) })
	default:
		for c := 0; c < chunks; c++ {
			lo, hi := chunkBounds(n, chunks, c)
			fn(lo, hi, parts[c])
		}
	}
}

// forPartials runs the deterministic chunks of a reduction region and
// returns the per-chunk partials (valid until the next reduction on
// this pool) along with the chunk count.
func (p *Pool) forPartials(n, grain int, fn func(lo, hi int) float32) ([]float32, int) {
	if n <= 0 {
		return nil, 0
	}
	p.frozen = true
	chunks := regionChunks(n, grain)
	if cap(p.partials) < chunks {
		p.partials = make([]float32, chunks)
	}
	parts := p.partials[:chunks]
	if chunks == 1 {
		parts[0] = fn(0, n)
		return parts, 1
	}
	switch {
	case p.exec != nil && p.workers > 1:
		p.regions++
		p.runChunks(n, chunks, func(lane, chunk, lo, hi int) {
			parts[chunk] = fn(lo, hi)
		})
	case p.workers > 1:
		// Serial strategy with modeled lanes: measure and model.
		p.regions++
		p.runModeled(n, chunks, func(chunk, lo, hi int) { parts[chunk] = fn(lo, hi) })
	default:
		// Width 1: same chunks, same combination order, no modeling.
		for i := 0; i < chunks; i++ {
			lo, hi := chunkBounds(n, chunks, i)
			parts[i] = fn(lo, hi)
		}
	}
	return parts, chunks
}

// runModeled is the serial+simulated strategy's chunk driver: every
// chunk executes in order on the calling goroutine and is measured,
// and each measurement is assigned to the earliest-free of Workers
// modeled lanes (in-order list scheduling). The region's measured
// serial time and modeled makespan feed OpTime. One driver serves
// For, ForLane and the reductions so the three variants can never
// model different makespans.
func (p *Pool) runModeled(n, chunks int, fn func(chunk, lo, hi int)) {
	clocks := p.laneClocks()
	var sum time.Duration
	for i := 0; i < chunks; i++ {
		lo, hi := chunkBounds(n, chunks, i)
		t0 := time.Now()
		fn(i, lo, hi)
		d := time.Since(t0)
		sum += d
		l := 0
		for j := 1; j < len(clocks); j++ {
			if clocks[j] < clocks[l] {
				l = j
			}
		}
		clocks[l] += d
	}
	p.realPar += sum
	p.simPar += maxClock(clocks)
}

// laneClocks returns the zeroed modeled-lane clock array (len Workers),
// reused across regions so the serial strategy stays allocation-free.
func (p *Pool) laneClocks() []time.Duration {
	if cap(p.clocks) < p.workers {
		p.clocks = make([]time.Duration, p.workers)
	}
	c := p.clocks[:p.workers]
	for i := range c {
		c[i] = 0
	}
	return c
}

func maxClock(clocks []time.Duration) time.Duration {
	var m time.Duration
	for _, c := range clocks {
		if c > m {
			m = c
		}
	}
	return m
}

// runChunks is the parallel strategy's chunk driver: a shared atomic
// cursor feeds chunks to the caller (lane 0) and up to Workers-1
// helpers acquired non-blockingly from the Executor (each on a
// distinct lane, so laneScratch stays executor-private). The caller
// always participates, so progress never depends on helper
// availability. A panic on a helper is captured and re-raised on the
// calling goroutine after every lane has joined, preserving the
// serial strategy's panic semantics.
func (p *Pool) runChunks(n, chunks int, fn func(lane, chunk, lo, hi int)) {
	p.growLanes(p.workers)
	var cursor atomic.Int64
	run := func(lane int) {
		for {
			i := int(cursor.Add(1)) - 1
			if i >= chunks {
				return
			}
			lo, hi := chunkBounds(n, chunks, i)
			fn(lane, i, lo, hi)
		}
	}
	helpers := p.workers - 1
	if helpers > chunks-1 {
		helpers = chunks - 1
	}
	var (
		wg    sync.WaitGroup
		pmu   sync.Mutex
		pval  any
		pseen bool
	)
	for h := 1; h <= helpers; h++ {
		lane := h
		wg.Add(1)
		ok := p.exec.TryRun(func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					pmu.Lock()
					if !pseen {
						pseen, pval = true, r
					}
					pmu.Unlock()
				}
			}()
			run(lane)
		})
		if !ok {
			wg.Done()
			break // no helper free: the caller absorbs the rest
		}
	}
	// Join helpers even if the caller's own chunk panics: they may be
	// touching lane scratch this pool owns.
	defer func() {
		wg.Wait()
		if pseen {
			panic(pval)
		}
	}()
	run(0)
}
