package tensor

import "time"

// Pool models an intra-operation worker pool, the analogue of the Eigen
// thread pool TensorFlow used on CPUs when the paper was written.
//
// The reproduction environment has a single physical core, so real
// threads cannot exhibit parallel speedup. Instead the pool executes
// every chunk serially and *measures* each chunk, then reports the
// makespan the kernel would have had under static scheduling across
// Workers threads: max over workers of the summed chunk times. Kernels
// whose trip count is below the parallel grain refuse to split and run
// (and are accounted) serially, which reproduces the paper's
// observation that small, skinny tensors do not parallelize.
//
// A Pool is not safe for concurrent use; the executor runs operations
// sequentially (TensorFlow's inter-op parallelism is outside the scope
// of the intra-op study in Fig. 6).
type Pool struct {
	workers int

	// Accumulators for the operation currently executing. ResetOp
	// clears them; OpTime folds them into a simulated duration.
	simPar  time.Duration // modeled parallel time of For regions
	realPar time.Duration // measured serial time of For regions
	regions int           // number of For regions that actually split

	// Persistent kernel scratch buffers (see scratchBuf). They survive
	// across operations so steady-state kernels allocate nothing.
	scratch [scratchSlots][]float32
}

// Scratch slot assignments for the pool's kernel workspaces. Kernels
// may nest (Conv2D's im2col path calls the matmul kernel), so each
// concern owns a distinct slot.
const (
	scratchPackA  = iota // matmul: packed A panel
	scratchPackB         // matmul: packed B panel
	scratchIm2col        // conv: im2col patch matrix
	scratchSlots
)

// scratchBuf returns the pool's persistent workspace for a slot, grown
// to at least n elements. Contents are unspecified. Chunks of a For
// region execute serially (see above), so a single buffer per slot is
// safe even under modeled parallelism.
func (p *Pool) scratchBuf(slot, n int) []float32 {
	if cap(p.scratch[slot]) < n {
		p.scratch[slot] = make([]float32, n)
	}
	return p.scratch[slot][:n]
}

// NewPool returns a pool modeling n workers. n < 1 is treated as 1.
func NewPool(n int) *Pool {
	if n < 1 {
		n = 1
	}
	return &Pool{workers: n}
}

// Workers returns the modeled worker count.
func (p *Pool) Workers() int { return p.workers }

// SetWorkers changes the modeled worker count.
func (p *Pool) SetWorkers(n int) {
	if n < 1 {
		n = 1
	}
	p.workers = n
}

// ResetOp clears the per-operation accumulators. The executor calls it
// before running each operation.
func (p *Pool) ResetOp() {
	p.simPar = 0
	p.realPar = 0
	p.regions = 0
}

// OpTime converts the measured wall time of an operation into its
// simulated duration: serial (non-For) time is kept as-is, while each
// For region contributes its modeled makespan instead of its measured
// serial time.
func (p *Pool) OpTime(wall time.Duration) time.Duration {
	d := wall - p.realPar + p.simPar
	if d < 0 {
		d = 0
	}
	return d
}

// Regions reports how many For regions split during the current
// operation (used by tests).
func (p *Pool) Regions() int { return p.regions }

// For executes fn over [0,n) in per-worker chunks. grain is the minimum
// number of iterations that justifies splitting: if n < grain*2 or the
// pool has one worker, the loop runs as a single serial chunk and its
// time counts fully toward the operation (no modeled speedup).
//
// When the loop does split, it is divided into exactly Workers
// contiguous chunks; chunk i is assigned to worker i. Each chunk runs
// serially and is timed; the modeled parallel contribution is the
// maximum chunk time (workers run disjoint chunks concurrently in the
// model).
func (p *Pool) For(n, grain int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if grain < 1 {
		grain = 1
	}
	w := p.workers
	if w == 1 || n < grain*2 {
		fn(0, n)
		return
	}
	chunks := w
	if c := n / grain; c < chunks {
		chunks = c // keep every chunk at least grain iterations
	}
	if chunks < 2 {
		fn(0, n)
		return
	}
	p.regions++
	var maxChunk, sum time.Duration
	// Chunk boundaries i*n/chunks are strictly increasing because
	// chunks <= n/grain <= n, which also keeps every chunk at least
	// grain iterations (floor(n/chunks) >= grain); no chunk is ever
	// empty. TestPoolChunkAccounting pins both invariants across a
	// sweep of (n, grain, workers).
	for i := 0; i < chunks; i++ {
		lo := i * n / chunks
		hi := (i + 1) * n / chunks
		t0 := time.Now()
		fn(lo, hi)
		d := time.Since(t0)
		sum += d
		if d > maxChunk {
			maxChunk = d
		}
	}
	p.realPar += sum
	p.simPar += maxChunk
}
