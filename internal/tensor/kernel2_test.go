package tensor

import (
	"math/rand"
	"testing"

	"repro/internal/sched"
)

// Kernel tier 2 coverage: the 2-D tiled GEMM, the column-chunked
// streaming kernels, the parallel max / large-outer reductions, and
// the no-alias contract guard. The alias guard runs for the whole
// package test binary — every kernel invocation in every tensor test
// is checked.

func init() { AliasChecks = true }

// TestMatMulPropertyRandomShapes is the tier-2 GEMM property test:
// random shapes on both sides of the blocked threshold, all four
// transpose combinations, checked against the naive reference and
// required bit-identical across pool widths 1, 2 and 8 (modeled and
// real-parallel). Per-output-element accumulation order is a pure
// function of shape, so width must be invisible in the bits.
func TestMatMulPropertyRandomShapes(t *testing.T) {
	ex := sched.New(8)
	defer ex.Close()
	rng := rand.New(rand.NewSource(11))
	dim := func(limit int) int { return 1 + rng.Intn(limit) }
	for trial := 0; trial < 24; trial++ {
		var m, k, n int
		if trial%3 == 2 {
			// Every third trial crosses blockedMinWork (2^20).
			m, k, n = 96+dim(96), 96+dim(96), 96+dim(96)
		} else {
			m, k, n = dim(48), dim(48), dim(48)
		}
		ta, tb := rng.Intn(2) == 1, rng.Intn(2) == 1
		ashape := []int{m, k}
		if ta {
			ashape = []int{k, m}
		}
		bshape := []int{k, n}
		if tb {
			bshape = []int{n, k}
		}
		a := RandNormal(rng, 0, 1, ashape...)
		b := RandNormal(rng, 0, 1, bshape...)
		want, err := MatMul(NewPool(1), a, b, ta, tb)
		if err != nil {
			t.Fatal(err)
		}
		naive := naiveMatMul(a, b, ta, tb)
		if !AllClose(want, naive, 1e-3, 1e-3) {
			t.Fatalf("(%d,%d,%d) ta=%v tb=%v: diverges from naive reference (max diff %g)",
				m, k, n, ta, tb, MaxAbsDiff(want, naive))
		}
		for _, w := range []int{2, 8} {
			got, err := MatMul(NewPool(w), a, b, ta, tb)
			if err != nil {
				t.Fatal(err)
			}
			if d := MaxAbsDiff(got, want); d != 0 {
				t.Fatalf("(%d,%d,%d) ta=%v tb=%v modeled width %d: not bit-identical (max |Δ| %g)",
					m, k, n, ta, tb, w, d)
			}
			got, err = MatMul(NewParallelPool(w, ex), a, b, ta, tb)
			if err != nil {
				t.Fatal(err)
			}
			if d := MaxAbsDiff(got, want); d != 0 {
				t.Fatalf("(%d,%d,%d) ta=%v tb=%v parallel width %d: not bit-identical (max |Δ| %g)",
					m, k, n, ta, tb, w, d)
			}
		}
	}
}

// TestMatMulWideStreamingSplitsColumns drives the small-m wide-n
// streaming shape that used to serialize (one row = one ForLane unit):
// the column-chunked path must match the naive reference and stay
// bit-identical across widths.
func TestMatMulWideStreamingSplitsColumns(t *testing.T) {
	ex := sched.New(4)
	defer ex.Close()
	rng := rand.New(rand.NewSource(13))
	for _, shape := range []struct{ m, k, n int }{
		{1, 64, 4096}, {2, 32, 2048}, {4, 100, 1000},
	} {
		a := RandNormal(rng, 0, 1, shape.m, shape.k)
		b := RandNormal(rng, 0, 1, shape.k, shape.n)
		want, err := MatMul(NewPool(1), a, b, false, false)
		if err != nil {
			t.Fatal(err)
		}
		naive := naiveMatMul(a, b, false, false)
		if !AllClose(want, naive, 1e-3, 1e-3) {
			t.Fatalf("(%d,%d,%d): wide streaming diverges from naive (max diff %g)",
				shape.m, shape.k, shape.n, MaxAbsDiff(want, naive))
		}
		got, err := MatMul(NewParallelPool(4, ex), a, b, false, false)
		if err != nil {
			t.Fatal(err)
		}
		if d := MaxAbsDiff(got, want); d != 0 {
			t.Fatalf("(%d,%d,%d): wide streaming parallel differs (max |Δ| %g)",
				shape.m, shape.k, shape.n, d)
		}
	}
}

// TestAxisReduceMaxSmallOuterWidthInvariant pins the new ForMaxVec
// path: max reductions with small outer dims are chunk-parallel and
// bit-identical at every width, and agree exactly with a per-fiber
// fold (max is order-insensitive over a fiber, so exact equality is
// the right bar).
func TestAxisReduceMaxSmallOuterWidthInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	in := RandUniform(rng, -1, 1, 6, 28, 28, 5)
	want, err := Reduce(NewPool(1), in, []int{0, 1, 2}, false, "max")
	if err != nil {
		t.Fatal(err)
	}
	// Naive per-fiber reference.
	for c := 0; c < 5; c++ {
		ref := in.At(0, 0, 0, c)
		for i := 0; i < 6; i++ {
			for h := 0; h < 28; h++ {
				for w := 0; w < 28; w++ {
					if v := in.At(i, h, w, c); v > ref {
						ref = v
					}
				}
			}
		}
		if want.Data()[c] != ref {
			t.Fatalf("small-outer max wrong at channel %d", c)
		}
	}
	for _, workers := range []int{2, 8} {
		got, err := Reduce(NewPool(workers), in, []int{0, 1, 2}, false, "max")
		if err != nil {
			t.Fatal(err)
		}
		if i, ok := firstDiff(want.Data(), got.Data()); !ok {
			t.Fatalf("max modeled width %d differs from width 1 at %d", workers, i)
		}
		par, err := Reduce(NewParallelPool(workers, newExecN(workers-1)), in, []int{0, 1, 2}, false, "max")
		if err != nil {
			t.Fatal(err)
		}
		if i, ok := firstDiff(want.Data(), par.Data()); !ok {
			t.Fatalf("max parallel width %d differs from width 1 at %d", workers, i)
		}
	}
}

// TestAxisReduceLargeOuterWidthInvariant pins the output-parallel
// large-outer path: outputs past axisVecElems parallelize over fibers,
// each fiber folded whole in ascending input order, so all kinds are
// bit-identical at every width.
func TestAxisReduceLargeOuterWidthInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for _, shape := range []struct {
		dims []int
		axes []int
	}{
		{[]int{8, 4096}, []int{0}},    // leading reduce, strided fibers
		{[]int{4096, 8}, []int{1}},    // trailing reduce, contiguous fibers
		{[]int{16, 40, 65}, []int{1}}, // middle reduce, 1040 outputs
	} {
		if SizeOf(shape.dims)/productOf(shape.dims, shape.axes) <= axisVecElems {
			t.Fatalf("shape %v does not exercise the large-outer path", shape.dims)
		}
		in := RandUniform(rng, -1, 1, shape.dims...)
		for _, kind := range []string{"sum", "mean", "max"} {
			want, err := Reduce(NewPool(1), in, shape.axes, false, kind)
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{2, 8} {
				got, err := Reduce(NewPool(workers), in, shape.axes, false, kind)
				if err != nil {
					t.Fatal(err)
				}
				if i, ok := firstDiff(want.Data(), got.Data()); !ok {
					t.Fatalf("%v %s modeled width %d differs at %d", shape.dims, kind, workers, i)
				}
				par, err := Reduce(NewParallelPool(workers, newExecN(workers-1)), in, shape.axes, false, kind)
				if err != nil {
					t.Fatal(err)
				}
				if i, ok := firstDiff(want.Data(), par.Data()); !ok {
					t.Fatalf("%v %s parallel width %d differs at %d", shape.dims, kind, workers, i)
				}
			}
		}
	}
}

// productOf multiplies the dims named by axes.
func productOf(dims, axes []int) int {
	p := 1
	for _, a := range axes {
		p *= dims[a]
	}
	return p
}

// TestAliasGuardCatchesOverlap pins the debug no-alias guard: the Into
// kernels must panic (under AliasChecks) when the destination aliases
// an input — the contract violation that silently corrupts results in
// release mode.
func TestAliasGuardCatchesOverlap(t *testing.T) {
	p := NewPool(1)
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: aliased destination did not panic under AliasChecks", name)
			}
		}()
		f()
	}
	a := Full(1, 4, 4)
	mustPanic("MatMulInto", func() { _ = MatMulInto(p, a, a, Full(1, 4, 4), false, false) })
	// A length-1 reduced axis with keepDims keeps the shape valid, so
	// the call reaches the kernel and the guard must fire.
	rin := Full(2, 1, 4)
	mustPanic("ReduceInto", func() { _ = ReduceInto(p, rin, rin, []int{0}, true, "sum") })
	in := Full(2, 4, 4)
	mustPanic("SoftmaxInto", func() { _ = SoftmaxInto(p, in, in) })

	// Disjoint tensors sharing no storage must pass untouched.
	out := New(4, 4)
	if err := SoftmaxInto(p, out, in); err != nil {
		t.Fatal(err)
	}
}
