package tensor

import (
	"math/rand"
	"testing"
)

func benchMatMul(b *testing.B, m, k, n int) {
	rng := rand.New(rand.NewSource(1))
	p := NewPool(1)
	a := RandNormal(rng, 0, 1, m, k)
	bb := RandNormal(rng, 0, 1, k, n)
	b.SetBytes(int64(2 * m * k * n)) // MACs as "bytes" => shows MFLOP/s*2
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := MatMul(p, a, bb, false, false); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMatMul128(b *testing.B)    { benchMatMul(b, 128, 128, 128) }
func BenchmarkMatMul512(b *testing.B)    { benchMatMul(b, 512, 512, 512) }
func BenchmarkMatMulSkinny(b *testing.B) { benchMatMul(b, 8, 64, 256) }
