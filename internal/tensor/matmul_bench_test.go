package tensor

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/sched"
)

func benchMatMul(b *testing.B, m, k, n int) {
	rng := rand.New(rand.NewSource(1))
	p := NewPool(1)
	a := RandNormal(rng, 0, 1, m, k)
	bb := RandNormal(rng, 0, 1, k, n)
	b.SetBytes(int64(2 * m * k * n)) // MACs as "bytes" => shows MFLOP/s*2
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := MatMul(p, a, bb, false, false); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMatMul sweeps square sizes across the streaming→blocked
// dispatch threshold; the tiled/packed kernel's win should grow with
// size as the working set falls out of cache.
func BenchmarkMatMul(b *testing.B) {
	for _, s := range []int{64, 128, 256, 384, 512} {
		b.Run(fmt.Sprintf("%dx%dx%d", s, s, s), func(b *testing.B) { benchMatMul(b, s, s, s) })
	}
}

func BenchmarkMatMul128(b *testing.B)    { benchMatMul(b, 128, 128, 128) }
func BenchmarkMatMul512(b *testing.B)    { benchMatMul(b, 512, 512, 512) }
func BenchmarkMatMulSkinny(b *testing.B) { benchMatMul(b, 8, 64, 256) }

// BenchmarkMatMulInto measures the allocation-free fast path compiled
// plans use.
func BenchmarkMatMulInto(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	p := NewPool(1)
	const s = 256
	a := RandNormal(rng, 0, 1, s, s)
	bb := RandNormal(rng, 0, 1, s, s)
	out := New(s, s)
	b.SetBytes(int64(2 * s * s * s))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := MatMulInto(p, out, a, bb, false, false); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMatMulIntraOpLarge is the tier-2 acceptance shape: a 1024³
// product on the 2-D tiled kernel at widths 1 and 8. The tile grid
// exposes mBlocks×gPanels flat work units per reduction slab, so on a
// multi-core host width 8 should track the row-only kernel's width-1
// time divided by close to the worker count (BENCH_kernels.json records
// the same comparison against the retained row-only baseline).
func BenchmarkMatMulIntraOpLarge(b *testing.B) {
	const s = 1024
	rng := rand.New(rand.NewSource(1))
	a := RandNormal(rng, 0, 1, s, s)
	bb := RandNormal(rng, 0, 1, s, s)
	out := New(s, s)
	for _, w := range []int{1, 8} {
		b.Run(fmt.Sprintf("intraop%d", w), func(b *testing.B) {
			var p *Pool
			if w == 1 {
				p = NewPool(1)
			} else {
				ex := sched.New(w - 1)
				defer ex.Close()
				p = NewParallelPool(w, ex)
			}
			b.SetBytes(int64(2 * s * s * s))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := MatMulInto(p, out, a, bb, false, false); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMatMulTallSkinny drives the tall/skinny blocked shape
// (gradient-accumulation GEMMs): a single column panel, where the 2-D
// tile grid is what keeps more than one worker busy.
func BenchmarkMatMulTallSkinny(b *testing.B) {
	benchMatMulWidths(b, 4096, 256, 64)
}

// BenchmarkMatMulWideStream drives the short-and-wide streaming shape
// (single-row inference GEMMs): below streamSplitRows the kernel chunks
// over columns, the axis the row-only dispatch could not split.
func BenchmarkMatMulWideStream(b *testing.B) {
	benchMatMulWidths(b, 2, 64, 4096)
}

func benchMatMulWidths(b *testing.B, m, k, n int) {
	rng := rand.New(rand.NewSource(1))
	a := RandNormal(rng, 0, 1, m, k)
	bb := RandNormal(rng, 0, 1, k, n)
	out := New(m, n)
	for _, w := range []int{1, 4} {
		b.Run(fmt.Sprintf("intraop%d", w), func(b *testing.B) {
			var p *Pool
			if w == 1 {
				p = NewPool(1)
			} else {
				ex := sched.New(w - 1)
				defer ex.Close()
				p = NewParallelPool(w, ex)
			}
			b.SetBytes(int64(2 * m * k * n))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := MatMulInto(p, out, a, bb, false, false); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkConv2D measures the convolution kernel at a VGG-like layer
// shape (unit stride, SAME padding) where the im2col path engages, and
// an AlexNet-conv1-like strided shape kept on the direct path.
func BenchmarkConv2D(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	cases := []struct {
		name            string
		n, h, w, cin    int
		kh, kw, cout    int
		stride, padding int
	}{
		{"vgg_56x56x64", 1, 56, 56, 64, 3, 3, 64, 1, 1},
		{"alexnet_conv1", 1, 64, 64, 3, 11, 11, 24, 4, 2},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			p := NewPool(1)
			in := RandNormal(rng, 0, 1, c.n, c.h, c.w, c.cin)
			f := RandNormal(rng, 0, 1, c.kh, c.kw, c.cin, c.cout)
			spec := ConvSpec{StrideH: c.stride, StrideW: c.stride, PadH: c.padding, PadW: c.padding}
			oh := ConvOutSize(c.h, c.kh, c.stride, c.padding)
			ow := ConvOutSize(c.w, c.kw, c.stride, c.padding)
			b.SetBytes(2 * int64(c.n) * int64(oh) * int64(ow) * int64(c.cout) * int64(c.kh*c.kw*c.cin))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := Conv2D(p, in, f, spec); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMatMulIntraOp puts the two intra-op strategies side by
// side at a blocked-kernel size: serial baseline vs real parallel
// chunks on a shared worker pool. On a multi-core host the intraopN
// variants show measured (not modeled) speedup; run with -cpu 1,4 to
// see both. Throughput (SetBytes = 2·m·k·n) is the comparable metric.
func BenchmarkMatMulIntraOp(b *testing.B) {
	const s = 384
	rng := rand.New(rand.NewSource(1))
	a := RandNormal(rng, 0, 1, s, s)
	bb := RandNormal(rng, 0, 1, s, s)
	out := New(s, s)
	for _, w := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("intraop%d", w), func(b *testing.B) {
			var p *Pool
			if w == 1 {
				p = NewPool(1)
			} else {
				ex := sched.New(w - 1)
				defer ex.Close()
				p = NewParallelPool(w, ex)
			}
			b.SetBytes(int64(2 * s * s * s))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := MatMulInto(p, out, a, bb, false, false); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
