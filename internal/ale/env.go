package ale

import "repro/internal/tensor"

// Env wraps a Game with the DQN preprocessing pipeline: frame skip
// (each agent action repeats for several emulator frames, rewards
// summed) and frame stacking (the state is the last HistoryLen
// screens, giving the network motion information).
type Env struct {
	game    Game
	skip    int
	history int
	frames  [][]float32 // ring of the last `history` screens
	done    bool
	episode int
	seed    int64
}

// DefaultFrameSkip matches the DQN paper's action repeat.
const DefaultFrameSkip = 4

// DefaultHistory matches the DQN paper's stacked-frame count.
const DefaultHistory = 4

// NewEnv wraps game with frame skip and history (0 selects defaults)
// and resets it.
func NewEnv(game Game, skip, history int, seed int64) *Env {
	if skip <= 0 {
		skip = DefaultFrameSkip
	}
	if history <= 0 {
		history = DefaultHistory
	}
	e := &Env{game: game, skip: skip, history: history, seed: seed}
	e.Reset()
	return e
}

// Game exposes the wrapped game.
func (e *Env) Game() Game { return e.game }

// HistoryLen returns the number of stacked frames per state.
func (e *Env) HistoryLen() int { return e.history }

// NumActions returns the wrapped game's action count.
func (e *Env) NumActions() int { return e.game.NumActions() }

// Reset starts a new episode (advancing the seed so episodes differ
// deterministically).
func (e *Env) Reset() {
	e.game.Reset(e.seed + int64(e.episode))
	e.episode++
	e.done = false
	e.frames = make([][]float32, e.history)
	screen := make([]float32, Width*Height)
	e.game.Render(screen)
	for i := range e.frames {
		f := make([]float32, len(screen))
		copy(f, screen)
		e.frames[i] = f
	}
}

// Done reports whether the current episode has ended.
func (e *Env) Done() bool { return e.done }

// Episode returns the number of episodes started.
func (e *Env) Episode() int { return e.episode }

// Step applies action a for `skip` frames, summing rewards, then
// pushes the resulting screen into the history. If the episode ends
// the environment stays done until Reset.
func (e *Env) Step(a Action) (reward float64, done bool) {
	if e.done {
		return 0, true
	}
	for i := 0; i < e.skip && !e.done; i++ {
		r, d := e.game.Step(a)
		reward += r
		e.done = d
	}
	screen := make([]float32, Width*Height)
	e.game.Render(screen)
	e.frames = append(e.frames[1:], screen)
	return reward, e.done
}

// State writes the stacked frames as an (H, W, history) tensor.
func (e *Env) State() *tensor.Tensor {
	out := tensor.New(Height, Width, e.history)
	d := out.Data()
	for f, frame := range e.frames {
		for p, v := range frame {
			d[p*e.history+f] = v
		}
	}
	return out
}

// StateInto writes the stacked frames into dst (length H*W*history) in
// NHWC channel order.
func (e *Env) StateInto(dst []float32) {
	for f, frame := range e.frames {
		for p, v := range frame {
			dst[p*e.history+f] = v
		}
	}
}
