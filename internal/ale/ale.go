// Package ale is a compact Arcade Learning Environment standing in for
// Bellemare et al.'s Atari 2600 emulator, which needs game ROMs that
// are unavailable offline. It implements two playable paddle-and-ball
// games — Pong-like and Breakout-like — with real physics, scoring,
// lives and 84×84 grayscale screens, so the deep-Q workload exercises
// its complete reinforcement-learning loop (ε-greedy action selection,
// score feedback, experience replay, target networks) against a
// genuine environment rather than a mock.
package ale

import "math/rand"

// Screen dimensions match the DQN preprocessing pipeline.
const (
	Width  = 84
	Height = 84
)

// Action is a discrete game input.
type Action int

// The minimal joystick set shared by both games.
const (
	ActNoop Action = iota
	ActLeft
	ActRight
	// NumActions is the size of the action set.
	NumActions = 3
)

// Game is one emulated title.
type Game interface {
	// Name returns the title ("pong", "breakout").
	Name() string
	// NumActions returns the size of the legal action set.
	NumActions() int
	// Reset restarts the episode with the given seed.
	Reset(seed int64)
	// Step advances one frame under action a, returning the reward
	// earned this frame and whether the episode ended.
	Step(a Action) (reward float64, done bool)
	// Render writes the 84×84 grayscale screen (row-major, values in
	// [0,1]) into dst, which must have length Width*Height.
	Render(dst []float32)
	// Lives returns the remaining lives.
	Lives() int
	// Score returns the accumulated episode score.
	Score() float64
}

// common holds the paddle/ball state shared by both games.
type common struct {
	rng     *rand.Rand
	paddleX float64 // center of the paddle
	ballX   float64
	ballY   float64
	velX    float64
	velY    float64
	lives   int
	score   float64
	frame   int
}

const (
	paddleW     = 14.0
	paddleH     = 3.0
	paddleY     = float64(Height) - 5
	ballSize    = 2.0
	paddleSpeed = 3.0
)

func (c *common) reset(seed int64, lives int) {
	c.rng = rand.New(rand.NewSource(seed))
	c.paddleX = Width / 2
	c.lives = lives
	c.score = 0
	c.frame = 0
	c.serve()
}

// serve launches the ball downward at a random angle.
func (c *common) serve() {
	c.ballX = 10 + c.rng.Float64()*(Width-20)
	c.ballY = Height / 3
	c.velX = 1.2 + 0.8*c.rng.Float64()
	if c.rng.Intn(2) == 0 {
		c.velX = -c.velX
	}
	c.velY = 1.5 + 0.5*c.rng.Float64()
}

func (c *common) movePaddle(a Action) {
	switch a {
	case ActLeft:
		c.paddleX -= paddleSpeed
	case ActRight:
		c.paddleX += paddleSpeed
	}
	if c.paddleX < paddleW/2 {
		c.paddleX = paddleW / 2
	}
	if c.paddleX > Width-paddleW/2 {
		c.paddleX = Width - paddleW/2
	}
}

// stepBall advances the ball one frame, bouncing off walls and the
// paddle. Returns (hitPaddle, lostBall).
func (c *common) stepBall() (hit, lost bool) {
	c.ballX += c.velX
	c.ballY += c.velY
	// Side walls.
	if c.ballX < 1 {
		c.ballX = 1
		c.velX = -c.velX
	}
	if c.ballX > Width-1-ballSize {
		c.ballX = Width - 1 - ballSize
		c.velX = -c.velX
	}
	// Ceiling.
	if c.ballY < 1 {
		c.ballY = 1
		c.velY = -c.velY
	}
	// Paddle.
	if c.velY > 0 && c.ballY+ballSize >= paddleY && c.ballY <= paddleY+paddleH {
		if c.ballX+ballSize >= c.paddleX-paddleW/2 && c.ballX <= c.paddleX+paddleW/2 {
			c.ballY = paddleY - ballSize
			c.velY = -c.velY
			// English: hitting off-center skews the ball.
			c.velX += (c.ballX + ballSize/2 - c.paddleX) * 0.15
			if c.velX > 2.5 {
				c.velX = 2.5
			}
			if c.velX < -2.5 {
				c.velX = -2.5
			}
			return true, false
		}
	}
	// Floor: ball lost.
	if c.ballY > Height {
		return false, true
	}
	return false, false
}

// fillRect paints a rectangle into the screen buffer.
func fillRect(dst []float32, x0, y0, x1, y1 int, v float32) {
	if x0 < 0 {
		x0 = 0
	}
	if y0 < 0 {
		y0 = 0
	}
	if x1 > Width {
		x1 = Width
	}
	if y1 > Height {
		y1 = Height
	}
	for y := y0; y < y1; y++ {
		row := dst[y*Width : (y+1)*Width]
		for x := x0; x < x1; x++ {
			row[x] = v
		}
	}
}

func (c *common) renderCommon(dst []float32) {
	for i := range dst {
		dst[i] = 0
	}
	// Walls.
	fillRect(dst, 0, 0, Width, 1, 0.4)
	fillRect(dst, 0, 0, 1, Height, 0.4)
	fillRect(dst, Width-1, 0, Width, Height, 0.4)
	// Paddle.
	fillRect(dst, int(c.paddleX-paddleW/2), int(paddleY), int(c.paddleX+paddleW/2), int(paddleY+paddleH), 1)
	// Ball.
	fillRect(dst, int(c.ballX), int(c.ballY), int(c.ballX+ballSize), int(c.ballY+ballSize), 1)
}

// Pong is a single-player Pong-like game: keep the rally going. Each
// paddle hit scores a point; each miss costs a life.
type Pong struct {
	common
}

// NewPong returns a Pong game, unreset.
func NewPong() *Pong { return &Pong{} }

// Name implements Game.
func (p *Pong) Name() string { return "pong" }

// NumActions implements Game.
func (p *Pong) NumActions() int { return NumActions }

// Reset implements Game.
func (p *Pong) Reset(seed int64) { p.reset(seed, 5) }

// Lives implements Game.
func (p *Pong) Lives() int { return p.lives }

// Score implements Game.
func (p *Pong) Score() float64 { return p.score }

// Step implements Game.
func (p *Pong) Step(a Action) (float64, bool) {
	p.frame++
	p.movePaddle(a)
	hit, lost := p.stepBall()
	var r float64
	if hit {
		r = 1
		p.score++
	}
	if lost {
		r = -1
		p.lives--
		if p.lives <= 0 {
			return r, true
		}
		p.serve()
	}
	return r, false
}

// Render implements Game.
func (p *Pong) Render(dst []float32) { p.renderCommon(dst) }

// Breakout adds a wall of bricks; breaking a brick scores a point and
// clearing the wall rebuilds it.
type Breakout struct {
	common
	bricks [][]bool // rows × cols
}

const (
	brickRows = 4
	brickCols = 7
	brickW    = float64(Width) / brickCols
	brickH    = 4.0
	brickTop  = 12.0
)

// NewBreakout returns a Breakout game, unreset.
func NewBreakout() *Breakout { return &Breakout{} }

// Name implements Game.
func (b *Breakout) Name() string { return "breakout" }

// NumActions implements Game.
func (b *Breakout) NumActions() int { return NumActions }

// Reset implements Game.
func (b *Breakout) Reset(seed int64) {
	b.reset(seed, 5)
	b.rebuildWall()
}

func (b *Breakout) rebuildWall() {
	b.bricks = make([][]bool, brickRows)
	for r := range b.bricks {
		b.bricks[r] = make([]bool, brickCols)
		for c := range b.bricks[r] {
			b.bricks[r][c] = true
		}
	}
}

// Lives implements Game.
func (b *Breakout) Lives() int { return b.lives }

// Score implements Game.
func (b *Breakout) Score() float64 { return b.score }

// Step implements Game.
func (b *Breakout) Step(a Action) (float64, bool) {
	b.frame++
	b.movePaddle(a)
	_, lost := b.stepBall()
	var r float64
	// Brick collisions.
	row := int((b.ballY - brickTop) / brickH)
	col := int(b.ballX / brickW)
	if row >= 0 && row < brickRows && col >= 0 && col < brickCols && b.bricks[row][col] {
		b.bricks[row][col] = false
		b.velY = -b.velY
		r += 1
		b.score++
		// Cleared the wall: rebuild it (and keep playing).
		cleared := true
		for _, br := range b.bricks {
			for _, v := range br {
				if v {
					cleared = false
				}
			}
		}
		if cleared {
			b.rebuildWall()
		}
	}
	if lost {
		r = -1
		b.lives--
		if b.lives <= 0 {
			return r, true
		}
		b.serve()
	}
	return r, false
}

// Render implements Game.
func (b *Breakout) Render(dst []float32) {
	b.renderCommon(dst)
	for r := range b.bricks {
		for c := range b.bricks[r] {
			if !b.bricks[r][c] {
				continue
			}
			x0 := int(float64(c) * brickW)
			y0 := int(brickTop + float64(r)*brickH)
			fillRect(dst, x0+1, y0+1, x0+int(brickW)-1, y0+int(brickH)-1, 0.7)
		}
	}
}

// New constructs a game by name; it panics on unknown titles.
func New(name string) Game {
	switch name {
	case "pong":
		return NewPong()
	case "breakout":
		return NewBreakout()
	}
	panic("ale: unknown game " + name)
}
