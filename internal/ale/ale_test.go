package ale

import (
	"testing"
)

func TestPongBasics(t *testing.T) {
	p := NewPong()
	p.Reset(1)
	if p.Lives() != 5 || p.Score() != 0 {
		t.Fatalf("initial lives=%d score=%v", p.Lives(), p.Score())
	}
	if p.Name() != "pong" || p.NumActions() != NumActions {
		t.Fatal("metadata")
	}
	screen := make([]float32, Width*Height)
	p.Render(screen)
	var lit int
	for _, v := range screen {
		if v < 0 || v > 1 {
			t.Fatalf("pixel %v out of range", v)
		}
		if v > 0 {
			lit++
		}
	}
	if lit == 0 {
		t.Fatal("screen should show paddle/ball/walls")
	}
}

func TestPongDeterministicUnderSeed(t *testing.T) {
	run := func() (float64, int) {
		p := NewPong()
		p.Reset(42)
		for i := 0; i < 500; i++ {
			if _, done := p.Step(Action(i % 3)); done {
				break
			}
		}
		return p.Score(), p.Lives()
	}
	s1, l1 := run()
	s2, l2 := run()
	if s1 != s2 || l1 != l2 {
		t.Fatalf("pong must be deterministic: (%v,%d) vs (%v,%d)", s1, l1, s2, l2)
	}
}

func TestPongEpisodeEndsAfterLostLives(t *testing.T) {
	p := NewPong()
	p.Reset(3)
	done := false
	var steps int
	for !done && steps < 100000 {
		_, done = p.Step(ActNoop) // never move: eventually loses all lives
		steps++
	}
	if !done {
		t.Fatal("episode should eventually end")
	}
	if p.Lives() != 0 {
		t.Fatalf("lives at end = %d", p.Lives())
	}
}

func TestPongBallStaysInBounds(t *testing.T) {
	p := NewPong()
	p.Reset(7)
	for i := 0; i < 2000; i++ {
		_, done := p.Step(Action(i % 3))
		if p.ballX < 0 || p.ballX > Width {
			t.Fatalf("ball x out of bounds: %v", p.ballX)
		}
		if p.ballY < 0 {
			t.Fatalf("ball above ceiling: %v", p.ballY)
		}
		if done {
			p.Reset(int64(i))
		}
	}
}

func TestPongPaddleClamped(t *testing.T) {
	p := NewPong()
	p.Reset(1)
	for i := 0; i < 100; i++ {
		p.Step(ActLeft)
	}
	if p.paddleX < paddleW/2-0.01 {
		t.Fatalf("paddle escaped left: %v", p.paddleX)
	}
	for i := 0; i < 200; i++ {
		p.Step(ActRight)
	}
	if p.paddleX > Width-paddleW/2+0.01 {
		t.Fatalf("paddle escaped right: %v", p.paddleX)
	}
}

func TestBreakoutBricksAndScore(t *testing.T) {
	b := NewBreakout()
	b.Reset(5)
	if b.Name() != "breakout" {
		t.Fatal("name")
	}
	// Run an active policy until some bricks break.
	var gotReward bool
	for i := 0; i < 20000 && !gotReward; i++ {
		// Track the ball crudely to keep rallies alive.
		var a Action
		switch {
		case b.ballX < b.paddleX-2:
			a = ActLeft
		case b.ballX > b.paddleX+2:
			a = ActRight
		}
		r, done := b.Step(a)
		if r > 0 {
			gotReward = true
		}
		if done {
			b.Reset(int64(i))
		}
	}
	if !gotReward {
		t.Fatal("tracking policy should eventually break a brick")
	}
	if b.Score() <= 0 {
		t.Fatalf("score should be positive, got %v", b.Score())
	}
}

func TestBreakoutRendersBricks(t *testing.T) {
	b := NewBreakout()
	b.Reset(1)
	screen := make([]float32, Width*Height)
	b.Render(screen)
	// Brick band should contain many 0.7 pixels.
	var brickPix int
	for _, v := range screen {
		if v == 0.7 {
			brickPix++
		}
	}
	if brickPix < 50 {
		t.Fatalf("expected rendered bricks, got %d pixels", brickPix)
	}
}

func TestNewByName(t *testing.T) {
	if New("pong").Name() != "pong" || New("breakout").Name() != "breakout" {
		t.Fatal("factory")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("unknown game should panic")
		}
	}()
	New("chess")
}

func TestEnvFrameSkipAndHistory(t *testing.T) {
	e := NewEnv(NewPong(), 4, 4, 9)
	if e.NumActions() != NumActions || e.HistoryLen() != 4 {
		t.Fatal("env metadata")
	}
	st := e.State()
	if st.Dim(0) != Height || st.Dim(1) != Width || st.Dim(2) != 4 {
		t.Fatalf("state shape %v", st.Shape())
	}
	// After a step, the newest frame differs from the oldest.
	e.Step(ActLeft)
	e.Step(ActLeft)
	st2 := e.State()
	diff := false
	for p := 0; p < Width*Height; p++ {
		if st2.Data()[p*4+0] != st2.Data()[p*4+3] {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("history frames should differ after movement")
	}
}

func TestEnvEpisodeLifecycle(t *testing.T) {
	e := NewEnv(NewPong(), 8, 2, 11)
	steps := 0
	for !e.Done() && steps < 100000 {
		e.Step(ActNoop)
		steps++
	}
	if !e.Done() {
		t.Fatal("episode should end")
	}
	// Done env ignores steps.
	r, done := e.Step(ActLeft)
	if r != 0 || !done {
		t.Fatal("done env should be inert")
	}
	ep := e.Episode()
	e.Reset()
	if e.Done() || e.Episode() != ep+1 {
		t.Fatal("reset should start a fresh episode")
	}
}

func TestEnvStateInto(t *testing.T) {
	e := NewEnv(NewBreakout(), 2, 3, 13)
	buf := make([]float32, Width*Height*3)
	e.StateInto(buf)
	st := e.State()
	for i := range buf {
		if buf[i] != st.Data()[i] {
			t.Fatal("StateInto must match State")
		}
	}
}
