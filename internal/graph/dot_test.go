package graph

import (
	"strings"
	"testing"

	"repro/internal/tensor"
)

func TestDOTContainsNodesAndEdges(t *testing.T) {
	g := New()
	x := g.Placeholder("x", 2)
	w := g.Variable("weights", tensor.Ones(2))
	y := g.MustApply(testMul{}, x, w)
	out := DOT("toy", []*Node{y})
	for _, want := range []string{"digraph \"toy\"", "Mul", "weights", "invhouse", "box3d", "->"} {
		if !strings.Contains(out, want) {
			t.Fatalf("DOT missing %q:\n%s", want, out)
		}
	}
	// Two edges: x->mul, w->mul.
	if strings.Count(out, "->") != 2 {
		t.Fatalf("expected 2 edges:\n%s", out)
	}
}

func TestDOTOnlyReachableNodes(t *testing.T) {
	g := New()
	a := g.Const("used", tensor.Ones(1))
	g.Const("unused", tensor.Ones(1))
	y := g.MustApply(testSquare{}, a)
	out := DOT("g", []*Node{y})
	if strings.Contains(out, "unused") {
		t.Fatal("DOT should only render the fetched subgraph")
	}
}

func TestClassColorsDistinct(t *testing.T) {
	seen := map[string]OpClass{}
	for c := OpClass(0); int(c) < NumClasses; c++ {
		col := classColor(c)
		if prev, dup := seen[col]; dup && prev != c {
			t.Fatalf("classes %v and %v share color %s", prev, c, col)
		}
		seen[col] = c
	}
}
