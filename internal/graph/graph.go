package graph

import (
	"fmt"

	"repro/internal/tensor"
)

// NodeKind distinguishes the four node varieties of the graph.
type NodeKind int

const (
	// KindOp nodes compute a tensor from their inputs.
	KindOp NodeKind = iota
	// KindPlaceholder nodes are fed externally at Run time.
	KindPlaceholder
	// KindVariable nodes hold mutable model state (weights).
	KindVariable
	// KindConst nodes hold immutable tensors.
	KindConst
)

func (k NodeKind) String() string {
	switch k {
	case KindOp:
		return "Op"
	case KindPlaceholder:
		return "Placeholder"
	case KindVariable:
		return "Variable"
	case KindConst:
		return "Const"
	}
	return "Unknown"
}

// Node is a vertex of the dataflow graph.
type Node struct {
	id     int
	kind   NodeKind
	op     Op
	inputs []*Node
	shape  []int
	name   string
	value  *tensor.Tensor // Const and Variable payload
	g      *Graph
}

// ID returns the node's unique id within its graph.
func (n *Node) ID() int { return n.id }

// Kind returns the node variety.
func (n *Node) Kind() NodeKind { return n.kind }

// Op returns the node's operation (nil unless KindOp).
func (n *Node) Op() Op { return n.op }

// Inputs returns the node's input edges.
func (n *Node) Inputs() []*Node { return n.inputs }

// Shape returns the statically inferred output shape.
func (n *Node) Shape() []int { return n.shape }

// Name returns the diagnostic name.
func (n *Node) Name() string { return n.name }

// Graph returns the owning graph.
func (n *Node) Graph() *Graph { return n.g }

// Value returns the payload of a Const or Variable node.
func (n *Node) Value() *tensor.Tensor { return n.value }

// SetValue copies t into the Variable node's storage (in place, so
// every alias of the variable — including optimized graphs sharing
// it — observes the update). It panics on other kinds or on a shape
// mismatch: variables have fixed shapes.
func (n *Node) SetValue(t *tensor.Tensor) {
	if n.kind != KindVariable {
		panic(fmt.Sprintf("graph: SetValue on %v node %q", n.kind, n.name))
	}
	if !tensor.SameShape(t.Shape(), n.shape) {
		panic(fmt.Sprintf("graph: SetValue shape %v does not match variable %q shape %v", t.Shape(), n.name, n.shape))
	}
	copy(n.value.Data(), t.Data())
}

// OpName returns the profile name of the node: the op type for op
// nodes, the kind otherwise.
func (n *Node) OpName() string {
	if n.op != nil {
		return n.op.Name()
	}
	return n.kind.String()
}

func (n *Node) String() string {
	return fmt.Sprintf("%s#%d(%s)%s", n.OpName(), n.id, n.name, tensor.ShapeString(n.shape))
}

// Graph is a dataflow graph under construction or execution.
type Graph struct {
	nodes []*Node
}

// New returns an empty graph.
func New() *Graph { return &Graph{} }

// Nodes returns every node in insertion order.
func (g *Graph) Nodes() []*Node { return g.nodes }

// NumNodes returns the node count.
func (g *Graph) NumNodes() int { return len(g.nodes) }

// Variables returns every variable node in insertion order.
func (g *Graph) Variables() []*Node {
	var vs []*Node
	for _, n := range g.nodes {
		if n.kind == KindVariable {
			vs = append(vs, n)
		}
	}
	return vs
}

func (g *Graph) add(n *Node) *Node {
	n.id = len(g.nodes)
	n.g = g
	g.nodes = append(g.nodes, n)
	return n
}

// Placeholder declares an externally fed input of a fixed shape.
func (g *Graph) Placeholder(name string, shape ...int) *Node {
	return g.add(&Node{kind: KindPlaceholder, name: name, shape: append([]int(nil), shape...)})
}

// Variable declares mutable state initialized to t.
func (g *Graph) Variable(name string, t *tensor.Tensor) *Node {
	return g.add(&Node{kind: KindVariable, name: name, shape: append([]int(nil), t.Shape()...), value: t})
}

// Const declares an immutable tensor.
func (g *Graph) Const(name string, t *tensor.Tensor) *Node {
	return g.add(&Node{kind: KindConst, name: name, shape: append([]int(nil), t.Shape()...), value: t})
}

// Apply adds an operation node, running static shape inference.
func (g *Graph) Apply(op Op, inputs ...*Node) (*Node, error) {
	shapes := make([][]int, len(inputs))
	for i, in := range inputs {
		if in == nil {
			return nil, fmt.Errorf("graph: nil input %d to %s", i, op.Name())
		}
		if in.g != g {
			return nil, fmt.Errorf("graph: input %d to %s belongs to a different graph", i, op.Name())
		}
		shapes[i] = in.shape
	}
	out, err := op.InferShape(shapes)
	if err != nil {
		return nil, fmt.Errorf("graph: %s: %w", op.Name(), err)
	}
	return g.add(&Node{kind: KindOp, op: op, inputs: append([]*Node(nil), inputs...), shape: out, name: op.Name()}), nil
}

// MustApply is Apply for model construction code, where a shape error
// is a programming bug: it panics on error.
func (g *Graph) MustApply(op Op, inputs ...*Node) *Node {
	n, err := g.Apply(op, inputs...)
	if err != nil {
		panic(err)
	}
	return n
}

// Topo returns the transitive dependencies of fetches in topological
// order (inputs before consumers), deduplicated.
func Topo(fetches []*Node) []*Node {
	var order []*Node
	state := map[*Node]int{} // 0 unvisited, 1 visiting, 2 done
	var visit func(n *Node)
	visit = func(n *Node) {
		switch state[n] {
		case 2:
			return
		case 1:
			panic("graph: cycle detected") // impossible by construction
		}
		state[n] = 1
		for _, in := range n.inputs {
			visit(in)
		}
		state[n] = 2
		order = append(order, n)
	}
	for _, f := range fetches {
		visit(f)
	}
	return order
}

// Consumers builds the reverse adjacency for the subgraph reachable
// from fetches: for each node, the list of nodes that consume it.
func Consumers(fetches []*Node) map[*Node][]*Node {
	out := map[*Node][]*Node{}
	for _, n := range Topo(fetches) {
		for _, in := range n.inputs {
			out[in] = append(out[in], n)
		}
	}
	return out
}
