package graph

import (
	"fmt"
	"strings"

	"repro/internal/tensor"
)

// DOT renders the subgraph feeding fetches in Graphviz format — the
// TensorBoard-style graph visualization the paper's Related Work
// discusses. Nodes are colored by kind and operation class.
func DOT(name string, fetches []*Node) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", name)
	b.WriteString("  rankdir=BT;\n  node [fontname=\"Helvetica\" fontsize=10];\n")
	for _, n := range Topo(fetches) {
		label := fmt.Sprintf("%s\\n%s", n.OpName(), tensor.ShapeString(n.Shape()))
		attr := ""
		switch n.Kind() {
		case KindPlaceholder:
			attr = "shape=invhouse style=filled fillcolor=lightblue"
		case KindVariable:
			attr = "shape=box3d style=filled fillcolor=khaki"
			label = fmt.Sprintf("%s\\n%s", n.Name(), tensor.ShapeString(n.Shape()))
		case KindConst:
			attr = "shape=note style=filled fillcolor=gray90"
		case KindOp:
			attr = fmt.Sprintf("shape=box style=filled fillcolor=%q", classColor(n.Op().Class()))
		}
		fmt.Fprintf(&b, "  n%d [label=%q %s];\n", n.ID(), label, attr)
		for _, in := range n.Inputs() {
			fmt.Fprintf(&b, "  n%d -> n%d;\n", in.ID(), n.ID())
		}
	}
	b.WriteString("}\n")
	return b.String()
}

func classColor(c OpClass) string {
	switch c {
	case ClassMatrix:
		return "#ffcccc"
	case ClassConv:
		return "#ffe4b3"
	case ClassElementwise:
		return "#ccffcc"
	case ClassReduction:
		return "#cce5ff"
	case ClassRandom:
		return "#f0ccff"
	case ClassOptimization:
		return "#ffffcc"
	default:
		return "#e8e8e8"
	}
}
