package graph

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

// Minimal test ops: elementwise add and square with symbolic grads.

type testAdd struct{}

func (testAdd) Name() string   { return "Add" }
func (testAdd) Class() OpClass { return ClassElementwise }
func (testAdd) InferShape(in [][]int) ([]int, error) {
	if len(in) != 2 || !tensor.SameShape(in[0], in[1]) {
		return nil, fmt.Errorf("add wants two same-shape inputs")
	}
	return append([]int(nil), in[0]...), nil
}
func (testAdd) Forward(ctx *ExecContext, in []*tensor.Tensor) (*tensor.Tensor, error) {
	return tensor.BinaryOp(ctx.Pool, in[0], in[1], func(a, b float32) float32 { return a + b })
}
func (testAdd) Grad(g *Graph, n *Node, grad *Node) ([]*Node, error) {
	return []*Node{grad, grad}, nil
}

type testSquare struct{}

func (testSquare) Name() string   { return "Square" }
func (testSquare) Class() OpClass { return ClassElementwise }
func (testSquare) InferShape(in [][]int) ([]int, error) {
	return append([]int(nil), in[0]...), nil
}
func (testSquare) Forward(ctx *ExecContext, in []*tensor.Tensor) (*tensor.Tensor, error) {
	return tensor.UnaryOp(ctx.Pool, in[0], func(x float32) float32 { return x * x }), nil
}
func (testSquare) Grad(g *Graph, n *Node, grad *Node) ([]*Node, error) {
	two := g.Const("two", tensor.Scalar(2))
	_ = two
	// d(x²)/dx = 2x: grad * x * 2. Using Add twice keeps test deps minimal:
	gx, err := g.Apply(testMul{}, grad, n.inputs[0])
	if err != nil {
		return nil, err
	}
	gx2, err := g.Apply(testAdd{}, gx, gx)
	if err != nil {
		return nil, err
	}
	return []*Node{gx2}, nil
}

type testMul struct{}

func (testMul) Name() string   { return "Mul" }
func (testMul) Class() OpClass { return ClassElementwise }
func (testMul) InferShape(in [][]int) ([]int, error) {
	return append([]int(nil), in[0]...), nil
}
func (testMul) Forward(ctx *ExecContext, in []*tensor.Tensor) (*tensor.Tensor, error) {
	return tensor.BinaryOp(ctx.Pool, in[0], in[1], func(a, b float32) float32 { return a * b })
}
func (testMul) Grad(g *Graph, n *Node, grad *Node) ([]*Node, error) {
	ga, err := g.Apply(testMul{}, grad, n.inputs[1])
	if err != nil {
		return nil, err
	}
	gb, err := g.Apply(testMul{}, grad, n.inputs[0])
	if err != nil {
		return nil, err
	}
	return []*Node{ga, gb}, nil
}

type testSum struct{}

func (testSum) Name() string                         { return "Sum" }
func (testSum) Class() OpClass                       { return ClassReduction }
func (testSum) InferShape(in [][]int) ([]int, error) { return []int{}, nil }
func (testSum) Forward(ctx *ExecContext, in []*tensor.Tensor) (*tensor.Tensor, error) {
	return tensor.Reduce(ctx.Pool, in[0], nil, false, "sum")
}
func (testSum) Grad(g *Graph, n *Node, grad *Node) ([]*Node, error) {
	// Broadcast scalar grad to input shape via Mul with ones.
	ones := g.Const("ones", tensor.Ones(n.inputs[0].shape...))
	gb, err := g.Apply(testBroadcastMul{}, grad, ones)
	if err != nil {
		return nil, err
	}
	return []*Node{gb}, nil
}

type testBroadcastMul struct{}

func (testBroadcastMul) Name() string   { return "Mul" }
func (testBroadcastMul) Class() OpClass { return ClassElementwise }
func (testBroadcastMul) InferShape(in [][]int) ([]int, error) {
	return tensor.BroadcastShapes(in[0], in[1])
}
func (testBroadcastMul) Forward(ctx *ExecContext, in []*tensor.Tensor) (*tensor.Tensor, error) {
	return tensor.BinaryOp(ctx.Pool, in[0], in[1], func(a, b float32) float32 { return a * b })
}
func (testBroadcastMul) Grad(g *Graph, n *Node, grad *Node) ([]*Node, error) {
	return nil, fmt.Errorf("not needed")
}

func newCtx() *ExecContext {
	return &ExecContext{Pool: tensor.NewPool(1), RNG: rand.New(rand.NewSource(1))}
}

// evalNode executes the subgraph feeding node n (no placeholders).
func evalNode(t *testing.T, n *Node, feeds map[*Node]*tensor.Tensor) *tensor.Tensor {
	t.Helper()
	ctx := newCtx()
	vals := map[*Node]*tensor.Tensor{}
	for _, x := range Topo([]*Node{n}) {
		switch x.kind {
		case KindConst, KindVariable:
			vals[x] = x.value
		case KindPlaceholder:
			v, ok := feeds[x]
			if !ok {
				t.Fatalf("missing feed for %v", x)
			}
			vals[x] = v
		case KindOp:
			ins := make([]*tensor.Tensor, len(x.inputs))
			for i, in := range x.inputs {
				ins[i] = vals[in]
			}
			out, err := x.op.Forward(ctx, ins)
			if err != nil {
				t.Fatalf("forward %v: %v", x, err)
			}
			vals[x] = out
		}
	}
	return vals[n]
}

func TestGraphConstruction(t *testing.T) {
	g := New()
	a := g.Placeholder("a", 2, 2)
	b := g.Variable("w", tensor.Ones(2, 2))
	c, err := g.Apply(testAdd{}, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if c.Kind() != KindOp || c.OpName() != "Add" || !tensor.SameShape(c.Shape(), []int{2, 2}) {
		t.Fatalf("bad op node: %v", c)
	}
	if g.NumNodes() != 3 {
		t.Fatalf("expected 3 nodes, got %d", g.NumNodes())
	}
	if len(g.Variables()) != 1 || g.Variables()[0] != b {
		t.Fatal("Variables() wrong")
	}
	if a.Graph() != g || a.Kind() != KindPlaceholder {
		t.Fatal("placeholder metadata wrong")
	}
}

func TestApplyShapeError(t *testing.T) {
	g := New()
	a := g.Placeholder("a", 2, 2)
	b := g.Placeholder("b", 3, 3)
	if _, err := g.Apply(testAdd{}, a, b); err == nil {
		t.Fatal("expected shape inference error")
	}
}

func TestApplyCrossGraphError(t *testing.T) {
	g1, g2 := New(), New()
	a := g1.Placeholder("a", 1)
	b := g2.Placeholder("b", 1)
	if _, err := g1.Apply(testAdd{}, a, b); err == nil {
		t.Fatal("expected cross-graph error")
	}
}

func TestApplyNilInputError(t *testing.T) {
	g := New()
	a := g.Placeholder("a", 1)
	if _, err := g.Apply(testAdd{}, a, nil); err == nil {
		t.Fatal("expected nil input error")
	}
}

func TestMustApplyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	g := New()
	g.MustApply(testAdd{}, g.Placeholder("a", 2), g.Placeholder("b", 3))
}

func TestSetValueChecksKindAndShape(t *testing.T) {
	g := New()
	v := g.Variable("v", tensor.Ones(2))
	v.SetValue(tensor.FromSlice([]float32{5, 6}, 2))
	if v.Value().Data()[0] != 5 {
		t.Fatal("SetValue did not take effect")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("expected shape panic")
			}
		}()
		v.SetValue(tensor.Ones(3))
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("expected kind panic")
			}
		}()
		g.Const("c", tensor.Ones(1)).SetValue(tensor.Ones(1))
	}()
}

func TestTopoOrder(t *testing.T) {
	g := New()
	a := g.Placeholder("a", 1)
	b := g.MustApply(testSquare{}, a)
	c := g.MustApply(testAdd{}, b, b)
	order := Topo([]*Node{c})
	pos := map[*Node]int{}
	for i, n := range order {
		pos[n] = i
	}
	if !(pos[a] < pos[b] && pos[b] < pos[c]) {
		t.Fatalf("topological order violated: %v", order)
	}
	if len(order) != 3 {
		t.Fatalf("diamond should dedup, got %d nodes", len(order))
	}
}

func TestConsumers(t *testing.T) {
	g := New()
	a := g.Placeholder("a", 1)
	b := g.MustApply(testSquare{}, a)
	c := g.MustApply(testAdd{}, b, b)
	cons := Consumers([]*Node{c})
	if len(cons[a]) != 1 || cons[a][0] != b {
		t.Fatal("consumers of a wrong")
	}
	if len(cons[b]) != 2 {
		t.Fatalf("b should have two consumer edges, got %d", len(cons[b]))
	}
}

func TestGradientsSimpleChain(t *testing.T) {
	// loss = sum((x+w)²); dloss/dw = 2(x+w).
	g := New()
	x := g.Placeholder("x", 3)
	w := g.Variable("w", tensor.FromSlice([]float32{1, 2, 3}, 3))
	s := g.MustApply(testAdd{}, x, w)
	sq := g.MustApply(testSquare{}, s)
	loss := g.MustApply(testSum{}, sq)

	grads, err := Gradients(loss, []*Node{w})
	if err != nil {
		t.Fatal(err)
	}
	if grads[0] == nil {
		t.Fatal("expected gradient for w")
	}
	feeds := map[*Node]*tensor.Tensor{x: tensor.FromSlice([]float32{10, 20, 30}, 3)}
	gv := evalNode(t, grads[0], feeds)
	want := []float32{22, 44, 66} // 2*(x+w)
	for i := range want {
		if gv.Data()[i] != want[i] {
			t.Fatalf("grad = %v want %v", gv.Data(), want)
		}
	}
}

func TestGradientsFanOutUsesAddN(t *testing.T) {
	// loss = sum(w*w + w*w) — w feeds two muls; its gradient must
	// accumulate via AddN.
	g := New()
	w := g.Variable("w", tensor.FromSlice([]float32{3}, 1))
	m1 := g.MustApply(testMul{}, w, w)
	m2 := g.MustApply(testMul{}, w, w)
	s := g.MustApply(testAdd{}, m1, m2)
	loss := g.MustApply(testSum{}, s)
	grads, err := Gradients(loss, []*Node{w})
	if err != nil {
		t.Fatal(err)
	}
	gv := evalNode(t, grads[0], nil)
	if gv.Data()[0] != 12 { // d/dw (2w²) = 4w = 12
		t.Fatalf("fan-out grad = %v want 12", gv.Data())
	}
	// The backward graph must contain an AddN node.
	found := false
	for _, n := range g.Nodes() {
		if n.OpName() == "AddN" {
			found = true
		}
	}
	if !found {
		t.Fatal("expected AddN in backward graph")
	}
}

func TestGradientsNoPathReturnsNil(t *testing.T) {
	g := New()
	w := g.Variable("w", tensor.Ones(1))
	u := g.Variable("u", tensor.Ones(1)) // not connected to loss
	sq := g.MustApply(testSquare{}, w)
	loss := g.MustApply(testSum{}, sq)
	grads, err := Gradients(loss, []*Node{w, u})
	if err != nil {
		t.Fatal(err)
	}
	if grads[0] == nil {
		t.Fatal("w should have a gradient")
	}
	if grads[1] != nil {
		t.Fatal("u has no path to loss; gradient must be nil")
	}
}

func TestGradientsNonScalarLossRejected(t *testing.T) {
	g := New()
	w := g.Variable("w", tensor.Ones(2))
	sq := g.MustApply(testSquare{}, w)
	if _, err := Gradients(sq, []*Node{w}); err == nil {
		t.Fatal("expected scalar-loss error")
	}
}

func TestAddNForwardAndShape(t *testing.T) {
	g := New()
	a := g.Const("a", tensor.FromSlice([]float32{1, 2}, 2))
	b := g.Const("b", tensor.FromSlice([]float32{10, 20}, 2))
	c := g.Const("c", tensor.FromSlice([]float32{100, 200}, 2))
	n, err := AddNNodes(g, []*Node{a, b, c})
	if err != nil {
		t.Fatal(err)
	}
	v := evalNode(t, n, nil)
	if v.Data()[0] != 111 || v.Data()[1] != 222 {
		t.Fatalf("AddN = %v", v.Data())
	}
	// One-element case collapses to the node itself.
	same, err := AddNNodes(g, []*Node{a})
	if err != nil || same != a {
		t.Fatal("single-input AddN should collapse")
	}
	// Mismatched shapes rejected.
	d := g.Const("d", tensor.Ones(3))
	if _, err := AddNNodes(g, []*Node{a, d}); err == nil {
		t.Fatal("expected AddN shape error")
	}
}

func TestOpClassNames(t *testing.T) {
	if ClassMatrix.Letter() != "A" || ClassDataMovement.Letter() != "G" {
		t.Fatal("class letters wrong")
	}
	if ClassConv.String() != "Convolution" {
		t.Fatal("class name wrong")
	}
	if OpClass(99).String() != "Unknown" || OpClass(99).Letter() != "?" {
		t.Fatal("out-of-range class should be unknown")
	}
	if NumClasses != 7 {
		t.Fatal("the paper defines seven op classes")
	}
}
