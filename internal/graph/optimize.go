package graph

import (
	"fmt"
	"strings"

	"repro/internal/tensor"
)

// This file implements the application-level, compiler-esque graph
// optimizer that Section III of the paper lists as a defining feature
// of production deep-learning frameworks. Passes operate on the
// subgraph feeding a set of fetches and rewrite it into a new Graph:
//
//   - identity elimination: pass-through ops are bypassed;
//   - constant folding: pure ops whose inputs are all constants are
//     evaluated once at optimization time;
//   - common-subexpression elimination: structurally identical pure
//     ops applied to identical inputs are merged.
//
// Optimization never folds or merges across Impure operations (random
// sampling, stateful kernels, mutating optimizer updates) — the same
// barriers TensorFlow's optimizer respects.

// IdentityOp marks operations that pass their single input through
// unchanged so the optimizer can bypass them.
type IdentityOp interface {
	Op
	// IsIdentity reports whether the op is a pure pass-through for
	// its current attributes.
	IsIdentity() bool
}

// Impure marks operations that must not be folded or merged: random
// sampling, mode-dependent kernels, and mutating optimizer updates.
type Impure interface {
	Impure()
}

// EpilogueProducer marks operations whose kernel can absorb a trailing
// elementwise consumer — the tier-2 fusion producers (MatMul, the
// im2col Conv2D, and already-fused chains). AbsorbEpilogue returns an
// op computing consumer∘producer in one kernel; pos is the input slot
// of the consumer fed by the producer. The fused op's inputs are the
// producer's inputs followed by the consumer's remaining inputs in
// order. Returning false declines the consumer.
type EpilogueProducer interface {
	Op
	AbsorbEpilogue(consumer Op, pos int) (Op, bool)
}

// OptimizeResult reports what the optimizer did.
type OptimizeResult struct {
	Graph *Graph
	// Mapping from original nodes to their rewritten equivalents.
	Mapping map[*Node]*Node
	// Pass statistics.
	IdentitiesElided int
	ConstantsFolded  int
	CSEMerged        int
	FusedAttention   int
	FusedEpilogues   int
}

// Fetch returns the rewritten node for an original fetch.
func (r *OptimizeResult) Fetch(n *Node) *Node { return r.Mapping[n] }

// opFingerprint captures an op's type and attributes. Ops are small
// attribute structs, so the Go-syntax representation is a complete,
// deterministic description of their configuration.
func opFingerprint(op Op) string {
	return fmt.Sprintf("%s|%#v", op.Name(), op)
}

// Optimize rewrites the subgraph feeding fetches into a fresh graph
// with the standard passes applied. ctx is used to evaluate folded
// constants. Variables are shared, not copied: the optimized graph
// reads and updates the same parameters as the original.
func Optimize(ctx *ExecContext, fetches []*Node) (*OptimizeResult, error) {
	if len(fetches) == 0 {
		return nil, fmt.Errorf("graph: Optimize requires fetches")
	}
	src := fetches[0].g
	res := &OptimizeResult{Graph: New(), Mapping: map[*Node]*Node{}}
	ng := res.Graph
	cse := map[string]*Node{}

	var rewrite func(n *Node) (*Node, error)
	rewrite = func(n *Node) (*Node, error) {
		if m, ok := res.Mapping[n]; ok {
			return m, nil
		}
		var nn *Node
		switch n.kind {
		case KindPlaceholder:
			nn = ng.Placeholder(n.name, n.shape...)
		case KindVariable:
			// Share the variable node's storage: updates must be
			// visible through both graphs.
			nn = ng.add(&Node{kind: KindVariable, name: n.name, shape: copyInts(n.shape), value: n.value})
		case KindConst:
			nn = ng.Const(n.name, n.value)
		case KindOp:
			ins := make([]*Node, len(n.inputs))
			allConst := true
			for i, in := range n.inputs {
				r, err := rewrite(in)
				if err != nil {
					return nil, err
				}
				ins[i] = r
				if r.kind != KindConst {
					allConst = false
				}
			}
			_, impure := n.op.(Impure)
			// Pass 1: identity elision.
			if id, ok := n.op.(IdentityOp); ok && id.IsIdentity() && len(ins) == 1 {
				res.IdentitiesElided++
				nn = ins[0]
				break
			}
			// Pass 2: constant folding.
			if allConst && !impure && len(ins) > 0 {
				vals := make([]*tensor.Tensor, len(ins))
				for i, in := range ins {
					vals[i] = in.value
				}
				if folded, err := n.op.Forward(ctx, vals); err == nil {
					res.ConstantsFolded++
					nn = ng.Const("folded/"+n.op.Name(), folded)
					break
				}
				// Folding failure is not fatal: rewrite normally.
			}
			// Pass 3: common-subexpression elimination.
			if !impure {
				var b strings.Builder
				b.WriteString(opFingerprint(n.op))
				for _, in := range ins {
					fmt.Fprintf(&b, "|%d", in.ID())
				}
				key := b.String()
				if prev, hit := cse[key]; hit {
					res.CSEMerged++
					nn = prev
					break
				}
				out, err := ng.Apply(n.op, ins...)
				if err != nil {
					return nil, err
				}
				cse[key] = out
				nn = out
				break
			}
			out, err := ng.Apply(n.op, ins...)
			if err != nil {
				return nil, err
			}
			nn = out
		}
		res.Mapping[n] = nn
		return nn, nil
	}
	for _, f := range fetches {
		if f.g != src {
			return nil, fmt.Errorf("graph: Optimize fetches must share a graph")
		}
		if _, err := rewrite(f); err != nil {
			return nil, err
		}
	}
	// Pass 4: fusion on the rewritten graph. The rewrite above
	// deduplicated consumers, so the single-reader gates see accurate
	// counts. In-place, so the Mapping stays valid. Attention chains
	// fuse first — the epilogue pass would otherwise absorb the
	// chain's scalar Mul into an unrelated fused op and break the
	// pattern.
	mapped := make([]*Node, 0, len(fetches))
	for _, f := range fetches {
		mapped = append(mapped, res.Mapping[f])
	}
	res.FusedAttention = FuseAttention(ng, mapped...)
	res.FusedEpilogues = FuseEpilogues(ng, mapped...)
	return res, nil
}

// FuseEpilogues folds elementwise consumers into their
// EpilogueProducer input — bias adds and activations chained onto a
// GEMM or im2col convolution become one fused kernel, killing the
// intermediate arena buffer and its anti-dependency edges. The rewrite
// is in place and mutates only the consumer node (its op becomes the
// fused op over the producer's inputs plus the consumer's remaining
// operands), so node identity is preserved: fetches, gradients and
// signatures referencing the consumer keep working, and the absorbed
// producer merely goes dead. Because it runs over nodes in insertion
// (topological) order, a fused node can absorb further consumers
// downstream, folding whole MatMul+Add+…+Act chains.
//
// Fusion is gated conservatively — it never crosses:
//
//   - Impure or Mutator ops, on either side: stateful kernels and
//     in-place variable updates keep their scheduling barriers;
//   - multi-reader intermediates: a producer with more than one
//     consumer anywhere in the graph (gradient taps included) stays
//     materialized, so nothing is ever computed twice. This is what
//     keeps ReLU pre-activations unfused in training — ReluGrad reads
//     them — while Tanh/Sigmoid chains fuse fully (their gradients
//     read the activation node, which fusion preserves);
//   - nodes listed in keep: externally fetched producers.
//
// The fused kernel applies the same float operations in the same
// order as the unfused chain (the epilogue runs in place on the
// producer kernel's output buffer), so results are bit-identical with
// fusion on or off. Returns the number of absorbed consumers.
func FuseEpilogues(g *Graph, keep ...*Node) int {
	keepSet := make(map[*Node]bool, len(keep))
	for _, n := range keep {
		keepSet[n] = true
	}
	counts := make(map[*Node]int, len(g.nodes))
	for _, n := range g.nodes {
		for _, in := range n.inputs {
			counts[in]++
		}
	}
	fused := 0
	for _, n := range g.nodes { // insertion order is topological
		if n.kind != KindOp {
			continue
		}
		if _, impure := n.op.(Impure); impure {
			continue
		}
		if _, mut := n.op.(Mutator); mut {
			continue
		}
		for pos, in := range n.inputs {
			if in.kind != KindOp || keepSet[in] || counts[in] != 1 {
				continue
			}
			if _, impure := in.op.(Impure); impure {
				continue
			}
			if _, mut := in.op.(Mutator); mut {
				continue
			}
			prod, ok := in.op.(EpilogueProducer)
			if !ok {
				continue
			}
			f, ok := prod.AbsorbEpilogue(n.op, pos)
			if !ok {
				continue
			}
			inputs := make([]*Node, 0, len(in.inputs)+len(n.inputs)-1)
			inputs = append(inputs, in.inputs...)
			for i, other := range n.inputs {
				if i != pos {
					inputs = append(inputs, other)
				}
			}
			shapes := make([][]int, len(inputs))
			for i, x := range inputs {
				shapes[i] = x.shape
			}
			outShape, err := f.InferShape(shapes)
			if err != nil || !tensor.SameShape(outShape, n.shape) {
				// The consumer broadens the producer's shape (or the
				// fused op rejects the combination): not an epilogue.
				continue
			}
			counts[in]--
			for _, pi := range in.inputs {
				counts[pi]++
			}
			n.op, n.inputs, n.name = f, inputs, f.Name()
			fused++
			break // one producer per consumer
		}
	}
	return fused
}

func copyInts(s []int) []int { return append([]int(nil), s...) }
