package graph

import (
	"fmt"
	"strings"

	"repro/internal/tensor"
)

// This file implements the application-level, compiler-esque graph
// optimizer that Section III of the paper lists as a defining feature
// of production deep-learning frameworks. Passes operate on the
// subgraph feeding a set of fetches and rewrite it into a new Graph:
//
//   - identity elimination: pass-through ops are bypassed;
//   - constant folding: pure ops whose inputs are all constants are
//     evaluated once at optimization time;
//   - common-subexpression elimination: structurally identical pure
//     ops applied to identical inputs are merged.
//
// Optimization never folds or merges across Impure operations (random
// sampling, stateful kernels, mutating optimizer updates) — the same
// barriers TensorFlow's optimizer respects.

// IdentityOp marks operations that pass their single input through
// unchanged so the optimizer can bypass them.
type IdentityOp interface {
	Op
	// IsIdentity reports whether the op is a pure pass-through for
	// its current attributes.
	IsIdentity() bool
}

// Impure marks operations that must not be folded or merged: random
// sampling, mode-dependent kernels, and mutating optimizer updates.
type Impure interface {
	Impure()
}

// OptimizeResult reports what the optimizer did.
type OptimizeResult struct {
	Graph *Graph
	// Mapping from original nodes to their rewritten equivalents.
	Mapping map[*Node]*Node
	// Pass statistics.
	IdentitiesElided int
	ConstantsFolded  int
	CSEMerged        int
}

// Fetch returns the rewritten node for an original fetch.
func (r *OptimizeResult) Fetch(n *Node) *Node { return r.Mapping[n] }

// opFingerprint captures an op's type and attributes. Ops are small
// attribute structs, so the Go-syntax representation is a complete,
// deterministic description of their configuration.
func opFingerprint(op Op) string {
	return fmt.Sprintf("%s|%#v", op.Name(), op)
}

// Optimize rewrites the subgraph feeding fetches into a fresh graph
// with the standard passes applied. ctx is used to evaluate folded
// constants. Variables are shared, not copied: the optimized graph
// reads and updates the same parameters as the original.
func Optimize(ctx *ExecContext, fetches []*Node) (*OptimizeResult, error) {
	if len(fetches) == 0 {
		return nil, fmt.Errorf("graph: Optimize requires fetches")
	}
	src := fetches[0].g
	res := &OptimizeResult{Graph: New(), Mapping: map[*Node]*Node{}}
	ng := res.Graph
	cse := map[string]*Node{}

	var rewrite func(n *Node) (*Node, error)
	rewrite = func(n *Node) (*Node, error) {
		if m, ok := res.Mapping[n]; ok {
			return m, nil
		}
		var nn *Node
		switch n.kind {
		case KindPlaceholder:
			nn = ng.Placeholder(n.name, n.shape...)
		case KindVariable:
			// Share the variable node's storage: updates must be
			// visible through both graphs.
			nn = ng.add(&Node{kind: KindVariable, name: n.name, shape: copyInts(n.shape), value: n.value})
		case KindConst:
			nn = ng.Const(n.name, n.value)
		case KindOp:
			ins := make([]*Node, len(n.inputs))
			allConst := true
			for i, in := range n.inputs {
				r, err := rewrite(in)
				if err != nil {
					return nil, err
				}
				ins[i] = r
				if r.kind != KindConst {
					allConst = false
				}
			}
			_, impure := n.op.(Impure)
			// Pass 1: identity elision.
			if id, ok := n.op.(IdentityOp); ok && id.IsIdentity() && len(ins) == 1 {
				res.IdentitiesElided++
				nn = ins[0]
				break
			}
			// Pass 2: constant folding.
			if allConst && !impure && len(ins) > 0 {
				vals := make([]*tensor.Tensor, len(ins))
				for i, in := range ins {
					vals[i] = in.value
				}
				if folded, err := n.op.Forward(ctx, vals); err == nil {
					res.ConstantsFolded++
					nn = ng.Const("folded/"+n.op.Name(), folded)
					break
				}
				// Folding failure is not fatal: rewrite normally.
			}
			// Pass 3: common-subexpression elimination.
			if !impure {
				var b strings.Builder
				b.WriteString(opFingerprint(n.op))
				for _, in := range ins {
					fmt.Fprintf(&b, "|%d", in.ID())
				}
				key := b.String()
				if prev, hit := cse[key]; hit {
					res.CSEMerged++
					nn = prev
					break
				}
				out, err := ng.Apply(n.op, ins...)
				if err != nil {
					return nil, err
				}
				cse[key] = out
				nn = out
				break
			}
			out, err := ng.Apply(n.op, ins...)
			if err != nil {
				return nil, err
			}
			nn = out
		}
		res.Mapping[n] = nn
		return nn, nil
	}
	for _, f := range fetches {
		if f.g != src {
			return nil, fmt.Errorf("graph: Optimize fetches must share a graph")
		}
		if _, err := rewrite(f); err != nil {
			return nil, err
		}
	}
	return res, nil
}

func copyInts(s []int) []int { return append([]int(nil), s...) }
