// Package graph implements the coarse-grained dataflow graph at the
// heart of the Fathom reproduction: nodes are primitive operations (the
// smallest schedulable units, mirroring TensorFlow), edges carry
// tensors, and gradients are built symbolically as additional graph
// nodes so that backward-pass operations (Conv2DBackFilter, MatMul with
// transposes, ApplyRMSProp, ...) show up in performance profiles as
// first-class operation types — exactly the property the paper's
// characterization methodology relies on.
package graph

import (
	"math/rand"

	"repro/internal/tensor"
)

// OpClass is the coarse taxonomy of operation types used by the
// paper's Figure 3 (groups A through G).
type OpClass int

const (
	// ClassMatrix is group A: dense matrix operations (MatMul).
	ClassMatrix OpClass = iota
	// ClassConv is group B: convolutions and their gradients.
	ClassConv
	// ClassElementwise is group C: elementwise arithmetic.
	ClassElementwise
	// ClassReduction is group D: reductions and expansions
	// (Sum, Mean, Max, Softmax, Tile, losses with reduced outputs).
	ClassReduction
	// ClassRandom is group E: random sampling.
	ClassRandom
	// ClassOptimization is group F: optimizer update rules.
	ClassOptimization
	// ClassDataMovement is group G: reshapes, transposes, gathers,
	// concatenation, slicing and other layout changes.
	ClassDataMovement

	// NumClasses is the number of operation classes.
	NumClasses = int(ClassDataMovement) + 1
)

var classNames = [...]string{
	"Matrix Operations",
	"Convolution",
	"Elementwise Arithmetic",
	"Reduction and Expansion",
	"Random Sampling",
	"Optimization",
	"Data Movement",
}

var classLetters = [...]string{"A", "B", "C", "D", "E", "F", "G"}

// String returns the descriptive name of the class.
func (c OpClass) String() string {
	if int(c) < 0 || int(c) >= NumClasses {
		return "Unknown"
	}
	return classNames[c]
}

// Letter returns the paper's single-letter group label (A–G).
func (c OpClass) Letter() string {
	if int(c) < 0 || int(c) >= NumClasses {
		return "?"
	}
	return classLetters[c]
}

// ExecContext carries per-execution state into operation kernels.
type ExecContext struct {
	// Pool provides intra-operation parallelism (and its simulated
	// timing; see tensor.Pool).
	Pool *tensor.Pool
	// RNG drives every stochastic operation, seeded per session for
	// reproducibility.
	RNG *rand.Rand
	// Training selects training behaviour in mode-dependent ops
	// (Dropout, BatchNorm).
	Training bool
	// Step is the session's run counter, available to ops that decay
	// schedules.
	Step int
}

// Op is a primitive operation: the smallest schedulable unit of the
// runtime, and the unit at which all profiling in this repository is
// performed.
type Op interface {
	// Name returns the operation type name as it appears in profiles
	// (e.g. "MatMul", "Conv2DBackFilter").
	Name() string
	// Class returns the Figure-3 operation class.
	Class() OpClass
	// InferShape computes the static output shape from input shapes.
	InferShape(in [][]int) ([]int, error)
	// Forward executes the operation.
	Forward(ctx *ExecContext, in []*tensor.Tensor) (*tensor.Tensor, error)
}

// IntoOp is implemented by operations that can write their result into
// a caller-provided destination tensor instead of allocating one — the
// fast path compiled execution plans use to run steady-state steps
// without heap allocation (see the runtime package).
//
// Contract: out has the statically inferred output shape, holds
// arbitrary stale data, and never aliases any input; ForwardInto must
// fully overwrite it (zeroing first if it accumulates) and must return
// exactly the values Forward would. Ops that may return a view of an
// input (Identity, Reshape, inference-mode Dropout) must not implement
// IntoOp.
type IntoOp interface {
	Op
	ForwardInto(ctx *ExecContext, in []*tensor.Tensor, out *tensor.Tensor) error
}

// GradOp is implemented by differentiable operations. Grad emits new
// graph nodes computing the gradient with respect to each input given
// the upstream gradient node; a nil entry means "no gradient flows to
// this input" (e.g. the label input of a loss).
type GradOp interface {
	Op
	Grad(g *Graph, n *Node, grad *Node) ([]*Node, error)
}

// Mutator is the statefulness flag for operations that write state
// outside their own output tensor — optimizer apply-ops updating their
// target Variable in place. Mutates reports the nodes whose storage the
// operation rewrites. The runtime's inter-op scheduler serializes a
// mutator against every other access (read or write) to the same node
// in schedule order, so parallel execution preserves the sequential
// read-then-update semantics bit-exactly.
//
// Operations whose only hidden state is op-internal (dropout's saved
// mask, optimizer slot accumulators, RNG draws) do not need Mutator;
// marking them Impure is sufficient, because the scheduler already
// pins all Impure operations to a serial lane in schedule order.
type Mutator interface {
	Op
	Mutates() []*Node
}

// Coster is implemented by operations that can estimate their
// computational cost; the modeled GPU device uses it for roofline
// timing. Operations without a Coster get a bytes-dominated default.
type Coster interface {
	Cost(in [][]int, out []int) (flops, bytes int64)
}
