package graph

import (
	"repro/internal/tensor"
)

// AttentionComposer marks operations that can replace a whole
// softmax(score·scale)·value chain with one fused kernel — the
// attention analogue of EpilogueProducer. The receiver is the final
// (probabilities × values) matmul of the chain; ComposeAttention
// receives the upstream ops (the Softmax, the scalar Mul, the score
// matmul and the key Transpose) plus the scale constant's value, and
// returns the fused op or declines. The structural gates — node kinds,
// reader counts, purity — are the pass's job; the composer only judges
// whether the ops themselves form the pattern it implements.
type AttentionComposer interface {
	Op
	ComposeAttention(softmax, scale, score, transpose Op, scaleVal *tensor.Tensor) (Op, bool)
}

// FuseAttention rewrites Softmax(BatchMatMul(Q, Transpose(K))·scale)·V
// chains into single fused streaming-softmax attention nodes. Like
// FuseEpilogues the rewrite is in place and mutates only the final
// consumer node (the probabilities×values matmul), so node identity is
// preserved — fetches, gradients and signatures referencing it keep
// working — and the absorbed chain merely goes dead.
//
// The gates mirror FuseEpilogues exactly. Every interior node of the
// chain (the Softmax, the scalar Mul, the score matmul and the key
// Transpose) must be:
//
//   - a KindOp node — Variables, Placeholders and Consts stay put;
//   - pure: not Impure and not a Mutator, on either side, so stateful
//     kernels and in-place updates keep their scheduling barriers;
//   - single-reader: an intermediate with a second consumer anywhere
//     in the graph (gradient taps included) stays materialized, so
//     nothing is ever computed twice. This is why training graphs must
//     be fused before gradient construction — the backward pass reads
//     the probability matrix, and fusing afterwards would be blocked
//     here (fusedAttentionOp instead recomputes it in its own Grad);
//   - not listed in keep: externally fetched producers stay.
//
// The fused kernel applies the same float operations in the same order
// as the unfused chain, so results are bit-identical with fusion on or
// off. Returns the number of chains rewritten.
func FuseAttention(g *Graph, keep ...*Node) int {
	keepSet := make(map[*Node]bool, len(keep))
	for _, n := range keep {
		keepSet[n] = true
	}
	counts := make(map[*Node]int, len(g.nodes))
	for _, n := range g.nodes {
		for _, in := range n.inputs {
			counts[in]++
		}
	}
	fusible := func(n *Node) bool {
		if n.kind != KindOp || keepSet[n] || counts[n] != 1 {
			return false
		}
		if _, impure := n.op.(Impure); impure {
			return false
		}
		if _, mut := n.op.(Mutator); mut {
			return false
		}
		return true
	}
	fused := 0
	for _, n := range g.nodes { // insertion order is topological
		if n.kind != KindOp || len(n.inputs) != 2 {
			continue
		}
		if _, impure := n.op.(Impure); impure {
			continue
		}
		if _, mut := n.op.(Mutator); mut {
			continue
		}
		comp, ok := n.op.(AttentionComposer)
		if !ok {
			continue
		}
		w, vNode := n.inputs[0], n.inputs[1] // probabilities, values
		if !fusible(w) || len(w.inputs) != 1 {
			continue
		}
		s := w.inputs[0] // scaled scores
		if !fusible(s) || len(s.inputs) != 2 {
			continue
		}
		// The scale is a size-1 constant on either side of the Mul.
		var p, scaleNode *Node
		for i, in := range s.inputs {
			if in.kind == KindConst && in.value != nil && in.value.Size() == 1 {
				p, scaleNode = s.inputs[1-i], in
				break
			}
		}
		if p == nil || !fusible(p) || len(p.inputs) != 2 {
			continue
		}
		qNode, ktNode := p.inputs[0], p.inputs[1]
		if !fusible(ktNode) || len(ktNode.inputs) != 1 {
			continue
		}
		kNode := ktNode.inputs[0]
		f, ok := comp.ComposeAttention(w.op, s.op, p.op, ktNode.op, scaleNode.value)
		if !ok {
			continue
		}
		outShape, err := f.InferShape([][]int{qNode.shape, kNode.shape, vNode.shape})
		if err != nil || !tensor.SameShape(outShape, n.shape) {
			continue
		}
		// Bookkeeping mirrors FuseEpilogues: n stops reading the
		// probability node and reads Q and K directly; the dead
		// chain's own reads stay counted, which only makes later
		// single-reader gates more conservative.
		counts[w]--
		counts[qNode]++
		counts[kNode]++
		n.op, n.inputs, n.name = f, []*Node{qNode, kNode, vNode}, f.Name()
		fused++
	}
	return fused
}
