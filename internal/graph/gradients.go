package graph

import (
	"fmt"
	"sort"

	"repro/internal/tensor"
)

// addN is the gradient-accumulation op emitted when a node has several
// consumers. It lives in this package so the autodiff machinery has no
// dependency on the main operation library.
type addN struct{}

func (addN) Name() string   { return "AddN" }
func (addN) Class() OpClass { return ClassElementwise }

func (addN) InferShape(in [][]int) ([]int, error) {
	if len(in) == 0 {
		return nil, fmt.Errorf("AddN requires at least one input")
	}
	for _, s := range in[1:] {
		if !tensor.SameShape(s, in[0]) {
			return nil, fmt.Errorf("AddN shape mismatch: %v vs %v", in[0], s)
		}
	}
	return append([]int(nil), in[0]...), nil
}

func (addN) Forward(ctx *ExecContext, in []*tensor.Tensor) (*tensor.Tensor, error) {
	out := in[0].Clone()
	od := out.Data()
	for _, t := range in[1:] {
		td := t.Data()
		ctx.Pool.For(len(od), 16384, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				od[i] += td[i]
			}
		})
	}
	return out, nil
}

func (addN) Cost(in [][]int, out []int) (int64, int64) {
	n := int64(tensor.SizeOf(out))
	return n * int64(len(in)-1), 4 * n * int64(len(in)+1)
}

// Grad of AddN distributes the upstream gradient to every input.
func (a addN) Grad(g *Graph, n *Node, grad *Node) ([]*Node, error) {
	out := make([]*Node, len(n.inputs))
	for i := range out {
		out[i] = grad
	}
	return out, nil
}

// AddNNodes sums same-shaped nodes, collapsing the one-input case.
func AddNNodes(g *Graph, ns []*Node) (*Node, error) {
	if len(ns) == 1 {
		return ns[0], nil
	}
	return g.Apply(addN{}, ns...)
}

// ZeroPadGradOp is implemented by zero-padding operations (the
// gradients of slices). When every gradient contribution to a node is
// such a pad and the pads form an exact partition along one axis, the
// autodiff engine assembles them with a single concatenation instead
// of summing full-size padded tensors — the optimization TensorFlow
// applies to split/unstack gradients, which turns the O(T²) gradient
// of a T-way sliced tensor (unrolled RNNs) back into O(T).
type ZeroPadGradOp interface {
	Op
	// PadAmounts returns the leading and trailing zero counts per axis.
	PadAmounts() (before, after []int)
}

// concatAssembler is installed by the operation library (it owns the
// Concat op). It must concatenate pieces along axis.
var concatAssembler func(g *Graph, axis int, pieces []*Node) (*Node, error)

// RegisterConcatAssembler installs the partition-assembly hook.
func RegisterConcatAssembler(fn func(g *Graph, axis int, pieces []*Node) (*Node, error)) {
	concatAssembler = fn
}

// assemblePartition returns a Concat of the pad pieces when the
// contributions exactly partition the target shape along one axis,
// or nil when the pattern does not apply.
func assemblePartition(g *Graph, target []int, contribs []*Node) *Node {
	if concatAssembler == nil || len(contribs) < 2 {
		return nil
	}
	type piece struct {
		start int
		node  *Node
	}
	axis := -1
	pieces := make([]piece, 0, len(contribs))
	for _, c := range contribs {
		if c.kind != KindOp {
			return nil
		}
		pad, ok := c.op.(ZeroPadGradOp)
		if !ok || len(c.inputs) != 1 {
			return nil
		}
		before, after := pad.PadAmounts()
		if len(before) != len(target) {
			return nil
		}
		// Exactly one padded axis, shared by all pieces.
		pa := -1
		for i := range before {
			if before[i] != 0 || after[i] != 0 {
				if pa != -1 {
					return nil // padding on two axes
				}
				pa = i
			}
		}
		if pa == -1 {
			return nil // a full-size pad: not a partition piece
		}
		if axis == -1 {
			axis = pa
		} else if axis != pa {
			return nil
		}
		pieces = append(pieces, piece{start: before[pa], node: c.inputs[0]})
	}
	sort.Slice(pieces, func(i, j int) bool { return pieces[i].start < pieces[j].start })
	// Verify the pieces tile [0, target[axis]) exactly.
	off := 0
	for _, p := range pieces {
		if p.start != off {
			return nil
		}
		off += p.node.shape[axis]
	}
	if off != target[axis] {
		return nil
	}
	ns := make([]*Node, len(pieces))
	for i, p := range pieces {
		ns[i] = p.node
	}
	out, err := concatAssembler(g, axis, ns)
	if err != nil {
		return nil
	}
	return out
}

// Gradients builds the symbolic backward graph of a scalar loss with
// respect to wrt, returning one gradient node per entry (nil when no
// gradient path exists). New nodes are appended to the loss's graph;
// they are ordinary operations and appear in execution profiles.
func Gradients(loss *Node, wrt []*Node) ([]*Node, error) {
	g := loss.g
	if tensor.SizeOf(loss.shape) != 1 {
		return nil, fmt.Errorf("graph: Gradients requires a scalar loss, got shape %v", loss.shape)
	}
	order := Topo([]*Node{loss})
	inSub := map[*Node]bool{}
	for _, n := range order {
		inSub[n] = true
	}
	// needsGrad: nodes on a path from some wrt target to the loss.
	needs := map[*Node]bool{}
	for _, w := range wrt {
		if w != nil && inSub[w] {
			needs[w] = true
		}
	}
	for _, n := range order { // topological: inputs come first
		if needs[n] {
			continue
		}
		for _, in := range n.inputs {
			if needs[in] {
				needs[n] = true
				break
			}
		}
	}
	if !needs[loss] {
		// No wrt target reaches the loss: all gradients are nil.
		return make([]*Node, len(wrt)), nil
	}

	// Accumulated gradient contributions per node.
	contrib := map[*Node][]*Node{}
	seed := g.Const("grad_seed", tensor.Ones(loss.shape...))
	contrib[loss] = []*Node{seed}

	gradOf := func(n *Node) (*Node, error) {
		cs := contrib[n]
		if len(cs) == 0 {
			return nil, nil
		}
		if asm := assemblePartition(g, n.shape, cs); asm != nil {
			return asm, nil
		}
		return AddNNodes(g, cs)
	}

	// Walk in reverse topological order, propagating gradients.
	gradDone := map[*Node]*Node{}
	for i := len(order) - 1; i >= 0; i-- {
		n := order[i]
		if !needs[n] {
			continue
		}
		gn, err := gradOf(n)
		if err != nil {
			return nil, err
		}
		if gn == nil {
			continue
		}
		gradDone[n] = gn
		if n.kind != KindOp {
			continue
		}
		gop, ok := n.op.(GradOp)
		if !ok {
			return nil, fmt.Errorf("graph: op %s is not differentiable", n.op.Name())
		}
		inGrads, err := gop.Grad(g, n, gn)
		if err != nil {
			return nil, fmt.Errorf("graph: grad of %s: %w", n.op.Name(), err)
		}
		if len(inGrads) != len(n.inputs) {
			return nil, fmt.Errorf("graph: grad of %s returned %d gradients for %d inputs", n.op.Name(), len(inGrads), len(n.inputs))
		}
		for j, ig := range inGrads {
			if ig == nil {
				continue
			}
			in := n.inputs[j]
			if !needs[in] {
				continue // gradient not needed below this point
			}
			if !tensor.SameShape(ig.shape, in.shape) {
				return nil, fmt.Errorf("graph: grad of %s input %d has shape %v, want %v", n.op.Name(), j, ig.shape, in.shape)
			}
			contrib[in] = append(contrib[in], ig)
		}
	}

	out := make([]*Node, len(wrt))
	for i, w := range wrt {
		out[i] = gradDone[w]
	}
	return out, nil
}
