package graph

import (
	"testing"

	"repro/internal/tensor"
)

// Stub fusion producer/consumer ops. testGemm is a stand-in for the
// real MatMul: a two-input op implementing EpilogueProducer that
// absorbs the elementwise stubs (testAdd, testSquare) into
// testFusedGemm — base kernel followed by the epilogue chain, same
// float sequence as the unfused graph.

type testGemm struct{}

func (testGemm) Name() string   { return "Gemm" }
func (testGemm) Class() OpClass { return ClassMatrix }
func (testGemm) InferShape(in [][]int) ([]int, error) {
	return append([]int(nil), in[0]...), nil
}
func (testGemm) Forward(ctx *ExecContext, in []*tensor.Tensor) (*tensor.Tensor, error) {
	return tensor.BinaryOp(ctx.Pool, in[0], in[1], func(a, b float32) float32 { return a*2 + b })
}
func (o testGemm) AbsorbEpilogue(consumer Op, pos int) (Op, bool) {
	switch consumer.(type) {
	case testAdd, testSquare, testBroadcastAdd:
		return testFusedGemm{eps: []Op{consumer}}, true
	}
	return nil, false
}

type testFusedGemm struct{ eps []Op }

func (o testFusedGemm) Name() string {
	s := "Gemm"
	for _, e := range o.eps {
		s += "+" + e.Name()
	}
	return s
}
func (testFusedGemm) Class() OpClass { return ClassMatrix }
func (o testFusedGemm) InferShape(in [][]int) ([]int, error) {
	return append([]int(nil), in[0]...), nil
}
func (o testFusedGemm) Forward(ctx *ExecContext, in []*tensor.Tensor) (*tensor.Tensor, error) {
	out, err := testGemm{}.Forward(ctx, in[:2])
	if err != nil {
		return nil, err
	}
	next := 2
	for _, e := range o.eps {
		switch e.(type) {
		case testAdd:
			out, err = e.Forward(ctx, []*tensor.Tensor{out, in[next]})
			next++
		case testSquare:
			out, err = e.Forward(ctx, []*tensor.Tensor{out})
		}
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
func (o testFusedGemm) AbsorbEpilogue(consumer Op, pos int) (Op, bool) {
	switch consumer.(type) {
	case testAdd, testSquare:
		eps := make([]Op, len(o.eps), len(o.eps)+1)
		copy(eps, o.eps)
		return testFusedGemm{eps: append(eps, consumer)}, true
	}
	return nil, false
}

// testImpureGemm is a producer that would fuse but is Impure — the
// pass must refuse to absorb it.
type testImpureGemm struct{ testGemm }

func (testImpureGemm) Impure() {}

// testMutAdd is an elementwise consumer that mutates a variable — the
// pass must refuse to rewrite it.
type testMutAdd struct {
	testAdd
	target *Node
}

func (o testMutAdd) Mutates() []*Node { return []*Node{o.target} }

func TestFuseEpiloguesChain(t *testing.T) {
	build := func() (*Graph, *Node, *Node, *Node) {
		g := New()
		x := g.Placeholder("x", 4)
		w := g.Const("w", tensor.FromSlice([]float32{1, 2, 3, 4}, 4))
		c := g.Const("c", tensor.FromSlice([]float32{5, 6, 7, 8}, 4))
		mm := g.MustApply(testGemm{}, x, w)
		biased := g.MustApply(testAdd{}, mm, c)
		out := g.MustApply(testSquare{}, biased)
		return g, x, mm, out
	}
	g, x, _, out := build()
	if fused := FuseEpilogues(g, out); fused != 2 {
		t.Fatalf("expected 2 absorbed consumers, got %d", fused)
	}
	if out.OpName() != "Gemm+Add+Square" {
		t.Fatalf("chain did not fold into one op: %q", out.OpName())
	}
	if len(out.Inputs()) != 3 {
		t.Fatalf("fused node should read x, w, c — got %d inputs", len(out.Inputs()))
	}
	// Same bits as the unfused graph.
	feed := tensor.FromSlice([]float32{1, -1, 2, -2}, 4)
	got := evalNode(t, out, map[*Node]*tensor.Tensor{x: feed})
	g2, x2, _, out2 := build()
	_ = g2
	want := evalNode(t, out2, map[*Node]*tensor.Tensor{x2: feed})
	if d := tensor.MaxAbsDiff(got, want); d != 0 {
		t.Fatalf("fused result differs from unfused (max |Δ| %g)", d)
	}
}

func TestFuseEpiloguesMultiReaderGate(t *testing.T) {
	g := New()
	x := g.Placeholder("x", 4)
	w := g.Const("w", tensor.Ones(4))
	c := g.Const("c", tensor.Ones(4))
	mm := g.MustApply(testGemm{}, x, w)
	a := g.MustApply(testAdd{}, mm, c)
	b := g.MustApply(testSquare{}, mm) // second reader of mm
	if fused := FuseEpilogues(g, a, b); fused != 0 {
		t.Fatalf("multi-reader intermediate must stay materialized, got %d fusions", fused)
	}
	if a.OpName() != "Add" || b.OpName() != "Square" {
		t.Fatalf("consumers rewritten despite multi-reader gate: %q, %q", a.OpName(), b.OpName())
	}
}

func TestFuseEpiloguesKeepGate(t *testing.T) {
	g := New()
	x := g.Placeholder("x", 4)
	w := g.Const("w", tensor.Ones(4))
	c := g.Const("c", tensor.Ones(4))
	mm := g.MustApply(testGemm{}, x, w)
	out := g.MustApply(testAdd{}, mm, c)
	// mm is externally fetched: keeping it must block the absorb.
	if fused := FuseEpilogues(g, out, mm); fused != 0 {
		t.Fatalf("kept producer must not be absorbed, got %d fusions", fused)
	}
}

func TestFuseEpiloguesImpureAndMutatorGates(t *testing.T) {
	g := New()
	x := g.Placeholder("x", 4)
	w := g.Const("w", tensor.Ones(4))
	c := g.Const("c", tensor.Ones(4))
	// Impure producer: never absorbed even though it implements
	// EpilogueProducer.
	rnd := g.MustApply(testImpureGemm{}, x, w)
	outA := g.MustApply(testAdd{}, rnd, c)
	// Mutator consumer: never rewritten even though its producer is
	// fusable.
	v := g.Variable("v", tensor.Ones(4))
	mm := g.MustApply(testGemm{}, x, w)
	outB := g.MustApply(testMutAdd{target: v}, mm, c)
	if fused := FuseEpilogues(g, outA, outB); fused != 0 {
		t.Fatalf("fusion crossed an Impure/Mutator barrier: %d fusions", fused)
	}
	if outA.OpName() != "Add" || outB.OpName() != "Add" {
		t.Fatalf("barrier ops rewritten: %q, %q", outA.OpName(), outB.OpName())
	}
}

func TestFuseEpiloguesShapeGate(t *testing.T) {
	// A consumer that broadens the producer's shape is not an epilogue:
	// the fused InferShape returns the producer shape, which differs
	// from the consumer node's, so the pass must skip it. testAdd
	// requires same shapes, so emulate with a stub producing shape {1}.
	g := New()
	x := g.Placeholder("x", 1)
	w := g.Const("w", tensor.Ones(1))
	c := g.Const("c", tensor.Ones(4))
	mm := g.MustApply(testGemm{}, x, w)
	// Manually apply a consumer whose shape differs via a broadcast op.
	out := g.MustApply(testBroadcastAdd{}, mm, c)
	if fused := FuseEpilogues(g, out); fused != 0 {
		t.Fatalf("shape-broadening consumer fused: %d", fused)
	}
}

// testBroadcastAdd broadens its first operand to the second's shape —
// the anti-pattern the fusion shape gate must reject (the stub
// producer would absorb it, since testGemm absorbs by type only; the
// gate is the output-shape comparison in FuseEpilogues).
type testBroadcastAdd struct{ testAdd }

func (testBroadcastAdd) Name() string { return "Add" }
func (testBroadcastAdd) InferShape(in [][]int) ([]int, error) {
	return append([]int(nil), in[1]...), nil
}
func (testBroadcastAdd) Forward(ctx *ExecContext, in []*tensor.Tensor) (*tensor.Tensor, error) {
	return tensor.BinaryOp(ctx.Pool, in[0], in[1], func(a, b float32) float32 { return a + b })
}
