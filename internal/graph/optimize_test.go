package graph

import (
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

// test ops for the optimizer (reusing the arithmetic ops from
// graph_test.go) plus an identity and an impure random op.

type testIdentity struct{}

func (testIdentity) Name() string   { return "Identity" }
func (testIdentity) Class() OpClass { return ClassDataMovement }
func (testIdentity) InferShape(in [][]int) ([]int, error) {
	return append([]int(nil), in[0]...), nil
}
func (testIdentity) Forward(ctx *ExecContext, in []*tensor.Tensor) (*tensor.Tensor, error) {
	return in[0], nil
}
func (testIdentity) IsIdentity() bool { return true }

type testRandom struct{ n int }

func (testRandom) Name() string   { return "Random" }
func (testRandom) Class() OpClass { return ClassRandom }
func (o testRandom) InferShape(in [][]int) ([]int, error) {
	return []int{o.n}, nil
}
func (o testRandom) Forward(ctx *ExecContext, in []*tensor.Tensor) (*tensor.Tensor, error) {
	t := tensor.New(o.n)
	tensor.FillUniform(t, ctx.RNG, 0, 1)
	return t, nil
}
func (testRandom) Impure() {}

func optCtx() *ExecContext {
	return &ExecContext{Pool: tensor.NewPool(1), RNG: rand.New(rand.NewSource(1))}
}

func TestOptimizeIdentityElision(t *testing.T) {
	g := New()
	x := g.Placeholder("x", 2)
	y := g.MustApply(testIdentity{}, g.MustApply(testIdentity{}, x))
	out := g.MustApply(testSquare{}, y)
	res, err := Optimize(optCtx(), []*Node{out})
	if err != nil {
		t.Fatal(err)
	}
	if res.IdentitiesElided != 2 {
		t.Fatalf("expected 2 identities elided, got %d", res.IdentitiesElided)
	}
	f := res.Fetch(out)
	if f.OpName() != "Square" || f.Inputs()[0].Kind() != KindPlaceholder {
		t.Fatalf("identity chain should collapse to Square(placeholder), got %v", f)
	}
}

func TestOptimizeConstantFolding(t *testing.T) {
	g := New()
	a := g.Const("a", tensor.FromSlice([]float32{2, 3}, 2))
	b := g.Const("b", tensor.FromSlice([]float32{10, 20}, 2))
	sum := g.MustApply(testAdd{}, a, b)  // foldable
	sq := g.MustApply(testSquare{}, sum) // foldable transitively
	x := g.Placeholder("x", 2)
	out := g.MustApply(testAdd{}, sq, x) // not foldable (placeholder)
	res, err := Optimize(optCtx(), []*Node{out})
	if err != nil {
		t.Fatal(err)
	}
	if res.ConstantsFolded != 2 {
		t.Fatalf("expected 2 folds, got %d", res.ConstantsFolded)
	}
	f := res.Fetch(out)
	c := f.Inputs()[0]
	if c.Kind() != KindConst {
		t.Fatalf("folded input should be a constant, got %v", c)
	}
	if c.Value().Data()[0] != 144 || c.Value().Data()[1] != 529 {
		t.Fatalf("folded value wrong: %v", c.Value().Data())
	}
}

func TestOptimizeCSE(t *testing.T) {
	g := New()
	x := g.Placeholder("x", 3)
	a := g.MustApply(testSquare{}, x)
	b := g.MustApply(testSquare{}, x) // identical subexpression
	out := g.MustApply(testAdd{}, a, b)
	res, err := Optimize(optCtx(), []*Node{out})
	if err != nil {
		t.Fatal(err)
	}
	if res.CSEMerged != 1 {
		t.Fatalf("expected 1 CSE merge, got %d", res.CSEMerged)
	}
	f := res.Fetch(out)
	if f.Inputs()[0] != f.Inputs()[1] {
		t.Fatal("CSE should make both Add inputs the same node")
	}
}

func TestOptimizeDoesNotTouchImpure(t *testing.T) {
	g := New()
	r1 := g.MustApply(testRandom{4})
	r2 := g.MustApply(testRandom{4}) // identical but random: keep both
	out := g.MustApply(testAdd{}, r1, r2)
	res, err := Optimize(optCtx(), []*Node{out})
	if err != nil {
		t.Fatal(err)
	}
	if res.CSEMerged != 0 || res.ConstantsFolded != 0 {
		t.Fatalf("impure ops must not be merged/folded: %+v", res)
	}
	f := res.Fetch(out)
	if f.Inputs()[0] == f.Inputs()[1] {
		t.Fatal("two random draws must remain distinct")
	}
}

func TestOptimizeSharesVariables(t *testing.T) {
	g := New()
	v := g.Variable("v", tensor.FromSlice([]float32{5}, 1))
	out := g.MustApply(testSquare{}, v)
	res, err := Optimize(optCtx(), []*Node{out})
	if err != nil {
		t.Fatal(err)
	}
	nv := res.Fetch(out).Inputs()[0]
	if nv.Kind() != KindVariable {
		t.Fatal("variable should remain a variable")
	}
	// Updating through either node is visible through the other.
	v.SetValue(tensor.FromSlice([]float32{9}, 1))
	if nv.Value().Data()[0] != 9 {
		t.Fatal("optimized graph must share variable storage")
	}
}

func TestOptimizePreservesSemantics(t *testing.T) {
	// A mixed expression: the optimized graph must compute the same
	// value as the original.
	g := New()
	x := g.Placeholder("x", 2)
	c := g.Const("c", tensor.FromSlice([]float32{3, 4}, 2))
	c2 := g.MustApply(testSquare{}, c) // folds to {9,16}
	s1 := g.MustApply(testMul{}, x, c2)
	s2 := g.MustApply(testMul{}, x, c2) // CSE with s1
	out := g.MustApply(testAdd{}, s1, g.MustApply(testIdentity{}, s2))
	res, err := Optimize(optCtx(), []*Node{out})
	if err != nil {
		t.Fatal(err)
	}
	feed := tensor.FromSlice([]float32{2, 2}, 2)
	want := evalNode(t, out, map[*Node]*tensor.Tensor{x: feed})
	// The rewritten placeholder is a different node: find it.
	var nx *Node
	for _, n := range res.Graph.Nodes() {
		if n.Kind() == KindPlaceholder {
			nx = n
		}
	}
	got := evalNode(t, res.Fetch(out), map[*Node]*tensor.Tensor{nx: feed})
	if !tensor.AllClose(got, want, 1e-6, 1e-6) {
		t.Fatalf("optimized output %v differs from original %v", got.Data(), want.Data())
	}
	if res.Graph.NumNodes() >= g.NumNodes() {
		t.Fatalf("optimized graph should be smaller: %d vs %d", res.Graph.NumNodes(), g.NumNodes())
	}
}

func TestOptimizeErrors(t *testing.T) {
	if _, err := Optimize(optCtx(), nil); err == nil {
		t.Fatal("empty fetches should error")
	}
	g1, g2 := New(), New()
	a := g1.Const("a", tensor.Ones(1))
	b := g2.Const("b", tensor.Ones(1))
	if _, err := Optimize(optCtx(), []*Node{a, b}); err == nil {
		t.Fatal("cross-graph fetches should error")
	}
}
