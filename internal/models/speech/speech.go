// Package speech implements the Fathom speech workload: Hannun et
// al.'s Deep Speech — three fully-connected layers with the clipped
// ReLU activation applied framewise, one bidirectional vanilla
// recurrent layer (deliberately not LSTM: the authors "limited
// ourselves to a single recurrent layer… and do not use
// Long-Short-Term-Memory circuits"), a framewise output layer, and the
// connectionist temporal classification loss over unsegmented
// synthetic TIMIT-like utterances. As in the paper's profile, runtime
// is dominated by matrix multiplication plus the CTC dynamic program.
package speech

import (
	"math/rand"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/graph"
	"repro/internal/models/nn"
	"repro/internal/ops"
	"repro/internal/runtime"
	"repro/internal/tensor"
)

func init() {
	core.Register("speech", func() core.Model { return New() })
}

// Model is the speech workload.
type Model struct {
	cfg           core.Config
	dims          dims
	g             *graph.Graph
	x, y          *graph.Node
	loss, trainOp *graph.Node
	train         *nn.TrainPlan
	logits        *graph.Node
	data          *dataset.TIMIT
	lastLoss      float64
}

type dims struct {
	frames, batch, freq int // T, B, F
	hidden              int
	phonemes, maxLabels int
	lr                  float32
}

func dimsFor(p core.Preset) dims {
	switch p {
	case core.PresetTiny:
		return dims{frames: 12, batch: 2, freq: 8, hidden: 16, phonemes: 6, maxLabels: 4, lr: 1e-3}
	case core.PresetSmall:
		return dims{frames: 48, batch: 4, freq: 32, hidden: 96, phonemes: 30, maxLabels: 16, lr: 1e-3}
	default:
		return dims{frames: 100, batch: 8, freq: 64, hidden: 256, phonemes: 39, maxLabels: 35, lr: 1e-3}
	}
}

// New returns an unbuilt Deep Speech model.
func New() *Model { return &Model{} }

// Name implements core.Model.
func (m *Model) Name() string { return "speech" }

// Meta implements core.Model.
func (m *Model) Meta() core.Meta {
	return core.Meta{
		Name: "speech", Year: 2014, Ref: "Hannun et al., arXiv 2014",
		Style: "Recurrent, Full", Layers: 5, Task: "Supervised",
		Dataset: "TIMIT",
		Purpose: "Baidu's speech recognition engine. Proved purely deep-learned networks can beat hand-tuned systems.",
	}
}

// Graph implements core.Model.
func (m *Model) Graph() *graph.Graph { return m.g }

// LastLoss implements core.LossReporter.
func (m *Model) LastLoss() float64 { return m.lastLoss }

// Setup implements core.Model.
func (m *Model) Setup(cfg core.Config) error {
	m.cfg = cfg
	m.dims = dimsFor(cfg.Preset)
	m.dims.batch = cfg.BatchOr(m.dims.batch)
	d := m.dims
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	rng := rand.New(rand.NewSource(seed))
	m.data = dataset.NewTIMIT(d.phonemes, d.freq, d.frames, d.maxLabels, seed+1)

	g := graph.New()
	m.g = g
	m.x = g.Placeholder("spectrograms", d.frames, d.batch, d.freq)
	m.y = g.Placeholder("labels", d.batch, d.maxLabels)

	var params []*graph.Node
	clipped := func(x *graph.Node) *graph.Node { return ops.ClippedRelu(x, 20) }

	// Layers 1–3: framewise dense stack over all T·B frames at once —
	// the big fused matrix multiplications Deep Speech was designed
	// around.
	h := ops.Reshape(m.x, d.frames*d.batch, d.freq)
	h, p := nn.Dense(g, rng, "fc1", h, d.freq, d.hidden, clipped)
	params = append(params, p...)
	h, p = nn.Dense(g, rng, "fc2", h, d.hidden, d.hidden, clipped)
	params = append(params, p...)
	h, p = nn.Dense(g, rng, "fc3", h, d.hidden, d.hidden, clipped)
	params = append(params, p...)

	// Layer 4: bidirectional simple recurrence. Forward and backward
	// passes share per-direction weights across time (unrolled).
	fw := nn.NewRNNCell(g, rng, "rnn_fw", d.hidden, d.hidden)
	bw := nn.NewRNNCell(g, rng, "rnn_bw", d.hidden, d.hidden)
	params = append(params, fw.Params()...)
	params = append(params, bw.Params()...)

	// One slice node per frame, shared by both directions, so the
	// frame gradients form an exact partition of h and autodiff
	// assembles them with a single Concat instead of O(T²) padding.
	frames := make([]*graph.Node, d.frames)
	frame := func(t int) *graph.Node {
		if frames[t] == nil {
			frames[t] = ops.SliceN(h, []int{t * d.batch, 0}, []int{d.batch, d.hidden})
		}
		return frames[t]
	}
	fwOut := make([]*graph.Node, d.frames)
	state := nn.ZeroState(g, "h0_fw", d.batch, d.hidden)
	for t := 0; t < d.frames; t++ {
		state = fw.Step(frame(t), state)
		fwOut[t] = state
	}
	bwOut := make([]*graph.Node, d.frames)
	state = nn.ZeroState(g, "h0_bw", d.batch, d.hidden)
	for t := d.frames - 1; t >= 0; t-- {
		state = bw.Step(frame(t), state)
		bwOut[t] = state
	}
	// h4_t = fw_t + bw_t, re-stacked to (T·B, H).
	combined := make([]*graph.Node, d.frames)
	for t := 0; t < d.frames; t++ {
		combined[t] = ops.Add(fwOut[t], bwOut[t])
	}
	h4 := ops.ConcatN(0, combined...)

	// Layer 5 + output: dense then per-frame phoneme logits
	// (phonemes + 1 for the CTC blank).
	h5, p := nn.Dense(g, rng, "fc5", h4, d.hidden, d.hidden, clipped)
	params = append(params, p...)
	k := d.phonemes + 1
	logitsFlat, p := nn.Dense(g, rng, "out", h5, d.hidden, k, nil)
	params = append(params, p...)
	m.logits = ops.Reshape(logitsFlat, d.frames, d.batch, k)

	m.loss = ops.CTCLoss(m.logits, m.y)
	var err error
	m.train, err = nn.BuildTraining(g, m.loss, params, nn.SGD, d.lr)
	if err != nil {
		return err
	}
	m.trainOp = m.train.TrainOp()
	m.train.Fuse(m.logits)
	return nil
}

// TrainPlan exposes the training structure (loss, gradient and update
// fetch surface) for data-parallel training (internal/dist).
func (m *Model) TrainPlan() *nn.TrainPlan { return m.train }

// TrainSample implements core.TrainSampler: one training minibatch
// drawn from a generator derived entirely from seed.
func (m *Model) TrainSample(_ *runtime.Session, seed int64) (map[string]*tensor.Tensor, error) {
	d := m.dims
	spec, labels := dataset.NewTIMIT(d.phonemes, d.freq, d.frames, d.maxLabels, seed).Batch(d.batch)
	return map[string]*tensor.Tensor{"spectrograms": spec, "labels": labels}, nil
}

// Signature implements core.Model. Spectrograms and logits are
// frame-major (T, B, …), so the example axis is dim 1. Inference
// transcribes: framewise logits only (decoding is a host-side argmax,
// as in the original implementation).
func (m *Model) Signature(mode core.Mode) core.Signature {
	if mode == core.ModeTraining {
		return core.Signature{
			Inputs:  []core.IOSpec{core.InAt("spectrograms", m.x, 1), core.In("labels", m.y)},
			Outputs: []core.IOSpec{core.ScalarOut("loss", m.loss)},
		}
	}
	return core.Signature{
		Inputs:  []core.IOSpec{core.InAt("spectrograms", m.x, 1)},
		Outputs: []core.IOSpec{core.OutAt("logits", m.logits, 1)},
	}
}

// Infer implements core.Inferencer.
func (m *Model) Infer(s *runtime.Session, feeds map[string]*tensor.Tensor) (map[string]*tensor.Tensor, error) {
	return core.RunInference(m, s, feeds)
}

// TrainStep implements core.Trainer.
func (m *Model) TrainStep(s *runtime.Session) (float64, error) {
	spec, labels := m.data.Batch(m.dims.batch)
	s.SetTraining(true)
	out, err := s.Run([]*graph.Node{m.loss, m.trainOp}, runtime.Feeds{m.x: spec, m.y: labels})
	if err != nil {
		return 0, err
	}
	m.lastLoss = float64(out[0].Data()[0])
	return m.lastLoss, nil
}

// Sample implements core.Sampler: one synthetic inference batch.
func (m *Model) Sample() map[string]*tensor.Tensor {
	spec, _ := m.data.Batch(m.dims.batch)
	return map[string]*tensor.Tensor{"spectrograms": spec}
}
