// Package alexnet implements the Fathom alexnet workload: Krizhevsky,
// Sutskever & Hinton's 2012 ImageNet classifier — five convolutional
// layers with local response normalization and max pooling, three
// fully-connected layers with dropout, trained with softmax
// cross-entropy and SGD.
//
// The reference preset keeps the original topology (kernel sizes,
// strides, LRN, dropout) with input resolution 112² and proportionally
// reduced channel and FC widths (DESIGN.md §4.4).
package alexnet

import (
	"math/rand"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/graph"
	"repro/internal/models/nn"
	"repro/internal/ops"
	"repro/internal/runtime"
	"repro/internal/tensor"
)

func init() {
	core.Register("alexnet", func() core.Model { return New() })
}

// Model is the alexnet workload.
type Model struct {
	cfg                  core.Config
	dims                 dims
	g                    *graph.Graph
	x, y                 *graph.Node
	loss, trainOp, probs *graph.Node
	train                *nn.TrainPlan
	data                 *dataset.ImageNet
	lastLoss             float64
}

type dims struct {
	side, batch, classes   int
	c1, c2, c3, c4, c5, fc int
	lr                     float32
}

func dimsFor(p core.Preset) dims {
	switch p {
	case core.PresetTiny:
		return dims{side: 64, batch: 1, classes: 10, c1: 8, c2: 16, c3: 24, c4: 24, c5: 16, fc: 32, lr: 0.01}
	case core.PresetSmall:
		return dims{side: 64, batch: 2, classes: 20, c1: 24, c2: 64, c3: 96, c4: 96, c5: 64, fc: 512, lr: 0.01}
	default:
		return dims{side: 112, batch: 4, classes: 100, c1: 48, c2: 128, c3: 192, c4: 192, c5: 128, fc: 2560, lr: 0.01}
	}
}

// New returns an unbuilt alexnet.
func New() *Model { return &Model{} }

// Name implements core.Model.
func (m *Model) Name() string { return "alexnet" }

// Meta implements core.Model.
func (m *Model) Meta() core.Meta {
	return core.Meta{
		Name: "alexnet", Year: 2012, Ref: "Krizhevsky et al., NIPS 2012",
		Style: "Convolutional, Full", Layers: 5, Task: "Supervised",
		Dataset: "ImageNet",
		Purpose: "Image classifier. Watershed for deep learning by beating hand-tuned image systems at ILSVRC 2012.",
	}
}

// Graph implements core.Model.
func (m *Model) Graph() *graph.Graph { return m.g }

// LastLoss implements core.LossReporter.
func (m *Model) LastLoss() float64 { return m.lastLoss }

// Setup implements core.Model.
func (m *Model) Setup(cfg core.Config) error {
	m.cfg = cfg
	m.dims = dimsFor(cfg.Preset)
	m.dims.batch = cfg.BatchOr(m.dims.batch)
	d := m.dims
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	rng := rand.New(rand.NewSource(seed))
	m.data = dataset.NewImageNet(d.classes, d.side, seed+1)

	g := graph.New()
	m.g = g
	m.x = g.Placeholder("images", d.batch, d.side, d.side, 3)
	m.y = g.Placeholder("labels", d.batch)

	var params []*graph.Node
	// Conv stack with AlexNet's kernel plan: 11×11/4, 5×5, 3×3 ×3.
	h, p := nn.Conv(g, rng, "conv1", m.x, 11, 11, d.c1, 4, 2, ops.Relu)
	params = append(params, p...)
	h = ops.LRN(h, 5, 2, 1e-4, 0.75)
	h = ops.MaxPool(h, 3, 2, 0)

	h, p = nn.Conv(g, rng, "conv2", h, 5, 5, d.c2, 1, 2, ops.Relu)
	params = append(params, p...)
	h = ops.LRN(h, 5, 2, 1e-4, 0.75)
	h = ops.MaxPool(h, 3, 2, 0)

	h, p = nn.Conv(g, rng, "conv3", h, 3, 3, d.c3, 1, 1, ops.Relu)
	params = append(params, p...)
	h, p = nn.Conv(g, rng, "conv4", h, 3, 3, d.c4, 1, 1, ops.Relu)
	params = append(params, p...)
	h, p = nn.Conv(g, rng, "conv5", h, 3, 3, d.c5, 1, 1, ops.Relu)
	params = append(params, p...)
	h = ops.MaxPool(h, 3, 2, 0)

	flatDim := h.Shape()[1] * h.Shape()[2] * h.Shape()[3]
	h = ops.Reshape(h, d.batch, flatDim)
	h, p = nn.Dense(g, rng, "fc6", h, flatDim, d.fc, ops.Relu)
	params = append(params, p...)
	h = ops.Dropout(h, 0.5)
	h, p = nn.Dense(g, rng, "fc7", h, d.fc, d.fc, ops.Relu)
	params = append(params, p...)
	h = ops.Dropout(h, 0.5)
	logits, p := nn.Dense(g, rng, "fc8", h, d.fc, d.classes, nil)
	params = append(params, p...)

	m.loss = ops.CrossEntropy(logits, m.y)
	m.probs = ops.Softmax(logits)
	var err error
	m.train, err = nn.BuildTraining(g, m.loss, params, nn.SGD, d.lr)
	if err != nil {
		return err
	}
	m.trainOp = m.train.TrainOp()
	m.train.Fuse(m.probs)
	return nil
}

// TrainPlan exposes the training structure (loss, gradient and update
// fetch surface) for data-parallel training (internal/dist).
func (m *Model) TrainPlan() *nn.TrainPlan { return m.train }

// TrainSample implements core.TrainSampler: one training minibatch
// drawn from a generator derived entirely from seed.
func (m *Model) TrainSample(_ *runtime.Session, seed int64) (map[string]*tensor.Tensor, error) {
	d := m.dims
	images, labels := dataset.NewImageNet(d.classes, d.side, seed).Batch(d.batch)
	return map[string]*tensor.Tensor{"images": images, "labels": labels}, nil
}

// Signature implements core.Model.
func (m *Model) Signature(mode core.Mode) core.Signature {
	if mode == core.ModeTraining {
		return core.Signature{
			Inputs:  []core.IOSpec{core.In("images", m.x), core.In("labels", m.y)},
			Outputs: []core.IOSpec{core.ScalarOut("loss", m.loss)},
		}
	}
	return core.Signature{
		Inputs:  []core.IOSpec{core.In("images", m.x)},
		Outputs: []core.IOSpec{core.Out("probs", m.probs)},
	}
}

// Infer implements core.Inferencer.
func (m *Model) Infer(s *runtime.Session, feeds map[string]*tensor.Tensor) (map[string]*tensor.Tensor, error) {
	return core.RunInference(m, s, feeds)
}

// TrainStep implements core.Trainer.
func (m *Model) TrainStep(s *runtime.Session) (float64, error) {
	images, labels := m.data.Batch(m.dims.batch)
	s.SetTraining(true)
	out, err := s.Run([]*graph.Node{m.loss, m.trainOp}, runtime.Feeds{m.x: images, m.y: labels})
	if err != nil {
		return 0, err
	}
	m.lastLoss = float64(out[0].Data()[0])
	return m.lastLoss, nil
}

// Sample implements core.Sampler: one synthetic inference batch.
func (m *Model) Sample() map[string]*tensor.Tensor {
	images, _ := m.data.Batch(m.dims.batch)
	return map[string]*tensor.Tensor{"images": images}
}
