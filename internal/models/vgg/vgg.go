// Package vgg implements the Fathom vgg workload: Simonyan &
// Zisserman's 19-layer network of small 3×3 convolutional filters —
// sixteen convolutions in five pooled blocks followed by three
// fully-connected layers with dropout.
//
// The reference preset keeps the 19-layer topology with input
// resolution 112² and quarter channel widths (DESIGN.md §4.4).
package vgg

import (
	"math/rand"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/graph"
	"repro/internal/models/nn"
	"repro/internal/ops"
	"repro/internal/runtime"
	"repro/internal/tensor"
)

func init() {
	core.Register("vgg", func() core.Model { return New() })
}

// Model is the vgg workload.
type Model struct {
	cfg                  core.Config
	dims                 dims
	g                    *graph.Graph
	x, y                 *graph.Node
	loss, trainOp, probs *graph.Node
	train                *nn.TrainPlan
	data                 *dataset.ImageNet
	lastLoss             float64
}

type dims struct {
	side, batch, classes int
	widths               [5]int // channels per block
	fc                   int
	lr                   float32
}

func dimsFor(p core.Preset) dims {
	switch p {
	case core.PresetTiny:
		return dims{side: 32, batch: 1, classes: 10, widths: [5]int{4, 8, 16, 16, 16}, fc: 32, lr: 0.01}
	case core.PresetSmall:
		return dims{side: 64, batch: 1, classes: 20, widths: [5]int{8, 16, 32, 64, 64}, fc: 1024, lr: 0.01}
	default:
		return dims{side: 112, batch: 2, classes: 100, widths: [5]int{16, 32, 64, 128, 128}, fc: 4096, lr: 0.01}
	}
}

// New returns an unbuilt vgg.
func New() *Model { return &Model{} }

// Name implements core.Model.
func (m *Model) Name() string { return "vgg" }

// Meta implements core.Model.
func (m *Model) Meta() core.Meta {
	return core.Meta{
		Name: "vgg", Year: 2014, Ref: "Simonyan & Zisserman, arXiv 2014",
		Style: "Convolutional, Full", Layers: 19, Task: "Supervised",
		Dataset: "ImageNet",
		Purpose: "Image classifier demonstrating the power of small convolutional filters. ILSVRC 2014 winner.",
	}
}

// Graph implements core.Model.
func (m *Model) Graph() *graph.Graph { return m.g }

// LastLoss implements core.LossReporter.
func (m *Model) LastLoss() float64 { return m.lastLoss }

// convsPerBlock is VGG-19's plan: 2,2,4,4,4 convolutions per block.
var convsPerBlock = [5]int{2, 2, 4, 4, 4}

// Setup implements core.Model.
func (m *Model) Setup(cfg core.Config) error {
	m.cfg = cfg
	m.dims = dimsFor(cfg.Preset)
	m.dims.batch = cfg.BatchOr(m.dims.batch)
	d := m.dims
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	rng := rand.New(rand.NewSource(seed))
	m.data = dataset.NewImageNet(d.classes, d.side, seed+1)

	g := graph.New()
	m.g = g
	m.x = g.Placeholder("images", d.batch, d.side, d.side, 3)
	m.y = g.Placeholder("labels", d.batch)

	var params []*graph.Node
	h := m.x
	for b := 0; b < 5; b++ {
		for c := 0; c < convsPerBlock[b]; c++ {
			var p []*graph.Node
			h, p = nn.Conv(g, rng, name("conv", b, c), h, 3, 3, d.widths[b], 1, 1, ops.Relu)
			params = append(params, p...)
		}
		h = ops.MaxPool(h, 2, 2, 0)
	}
	flatDim := h.Shape()[1] * h.Shape()[2] * h.Shape()[3]
	h = ops.Reshape(h, d.batch, flatDim)
	h, p := nn.Dense(g, rng, "fc1", h, flatDim, d.fc, ops.Relu)
	params = append(params, p...)
	h = ops.Dropout(h, 0.5)
	h, p = nn.Dense(g, rng, "fc2", h, d.fc, d.fc, ops.Relu)
	params = append(params, p...)
	h = ops.Dropout(h, 0.5)
	logits, p := nn.Dense(g, rng, "fc3", h, d.fc, d.classes, nil)
	params = append(params, p...)

	m.loss = ops.CrossEntropy(logits, m.y)
	m.probs = ops.Softmax(logits)
	var err error
	m.train, err = nn.BuildTraining(g, m.loss, params, nn.SGD, d.lr)
	if err != nil {
		return err
	}
	m.trainOp = m.train.TrainOp()
	m.train.Fuse(m.probs)
	return nil
}

// TrainPlan exposes the training structure (loss, gradient and update
// fetch surface) for data-parallel training (internal/dist).
func (m *Model) TrainPlan() *nn.TrainPlan { return m.train }

// TrainSample implements core.TrainSampler: one training minibatch
// drawn from a generator derived entirely from seed.
func (m *Model) TrainSample(_ *runtime.Session, seed int64) (map[string]*tensor.Tensor, error) {
	d := m.dims
	images, labels := dataset.NewImageNet(d.classes, d.side, seed).Batch(d.batch)
	return map[string]*tensor.Tensor{"images": images, "labels": labels}, nil
}

func name(prefix string, b, c int) string {
	return prefix + string(rune('1'+b)) + "_" + string(rune('1'+c))
}

// Signature implements core.Model.
func (m *Model) Signature(mode core.Mode) core.Signature {
	if mode == core.ModeTraining {
		return core.Signature{
			Inputs:  []core.IOSpec{core.In("images", m.x), core.In("labels", m.y)},
			Outputs: []core.IOSpec{core.ScalarOut("loss", m.loss)},
		}
	}
	return core.Signature{
		Inputs:  []core.IOSpec{core.In("images", m.x)},
		Outputs: []core.IOSpec{core.Out("probs", m.probs)},
	}
}

// Infer implements core.Inferencer.
func (m *Model) Infer(s *runtime.Session, feeds map[string]*tensor.Tensor) (map[string]*tensor.Tensor, error) {
	return core.RunInference(m, s, feeds)
}

// TrainStep implements core.Trainer.
func (m *Model) TrainStep(s *runtime.Session) (float64, error) {
	images, labels := m.data.Batch(m.dims.batch)
	s.SetTraining(true)
	out, err := s.Run([]*graph.Node{m.loss, m.trainOp}, runtime.Feeds{m.x: images, m.y: labels})
	if err != nil {
		return 0, err
	}
	m.lastLoss = float64(out[0].Data()[0])
	return m.lastLoss, nil
}

// Sample implements core.Sampler: one synthetic inference batch.
func (m *Model) Sample() map[string]*tensor.Tensor {
	images, _ := m.data.Batch(m.dims.batch)
	return map[string]*tensor.Tensor{"images": images}
}
