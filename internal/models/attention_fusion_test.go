package models_test

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/runtime"
	"repro/internal/tensor"

	_ "repro/internal/models/all"
)

// countOps tallies KindOp nodes by op name.
func countOps(nodes []*graph.Node, name string) int {
	n := 0
	for _, nd := range nodes {
		if nd.Kind() == graph.KindOp && nd.OpName() == name {
			n++
		}
	}
	return n
}

// TestAttentionFusionFires pins graph.FuseAttention as an active part
// of the attention workload in both execution modes: the training
// graph Setup builds must contain one FusedAttention node per head
// (the unfused Softmax(QKᵀ·scale)·V chains are rewritten before
// gradient construction), and the serving-side optimizer pipeline
// must preserve them — an optimized inference graph executes no
// unfused BatchMatMul at all.
func TestAttentionFusionFires(t *testing.T) {
	m, err := core.New("attention")
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Setup(core.Config{Preset: core.PresetTiny, Seed: 7}); err != nil {
		t.Fatal(err)
	}
	const tinyHeads = 2

	// Training graph: every head fused, and the backward pass's
	// softmax recompute present (the fused op's Grad rebuilds the
	// probability chain instead of retaining it).
	nodes := m.Graph().Nodes()
	if got := countOps(nodes, "FusedAttention"); got != tinyHeads {
		t.Errorf("training graph has %d FusedAttention nodes, want %d", got, tinyHeads)
	}
	if got := countOps(nodes, "SoftmaxGrad"); got < tinyHeads {
		t.Errorf("training graph has %d SoftmaxGrad nodes, want >= %d (fused Grad recompute)", got, tinyHeads)
	}

	// Serving graph: optimize the inference fetch like a serving
	// engine does and require the fused nodes to survive with no
	// unfused batched matmul left in the executed subgraph.
	sig := m.Signature(core.ModeInference)
	fetch := make([]*graph.Node, 0, len(sig.Outputs))
	for _, out := range sig.Outputs {
		fetch = append(fetch, out.Node)
	}
	ctx := &graph.ExecContext{Pool: tensor.NewPool(1), RNG: rand.New(rand.NewSource(1))}
	res, err := graph.Optimize(ctx, fetch)
	if err != nil {
		t.Fatal(err)
	}
	opt := res.Graph.Nodes()
	if got := countOps(opt, "FusedAttention"); got != tinyHeads {
		t.Errorf("optimized serving graph has %d FusedAttention nodes, want %d", got, tinyHeads)
	}
	if got := countOps(opt, "BatchMatMul"); got != 0 {
		t.Errorf("optimized serving graph still executes %d BatchMatMul nodes, want 0", got)
	}

	// The fused and unfused forward must agree bit for bit: replaying
	// Setup with fusion left intact is covered above; here the
	// optimized serving graph must reproduce the training graph's
	// probs output exactly.
	inf, smp := m.(core.Inferencer), m.(core.Sampler)
	feeds := smp.Sample()
	s := runtime.NewSession(m.Graph(), runtime.WithSeed(3))
	defer s.Close()
	want, err := inf.Infer(s, feeds)
	if err != nil {
		t.Fatal(err)
	}
	so := runtime.NewSession(res.Graph, runtime.WithSeed(3))
	defer so.Close()
	var in *graph.Node
	for _, spec := range sig.Inputs {
		if spec.Name == "tokens" {
			in = res.Fetch(spec.Node)
		}
	}
	got, err := so.Run([]*graph.Node{res.Fetch(fetch[0])}, runtime.Feeds{in: feeds["tokens"]})
	if err != nil {
		t.Fatal(err)
	}
	if d := tensor.MaxAbsDiff(got[0], want["probs"]); d != 0 {
		t.Errorf("optimized serving graph differs from setup graph (max |Δ| %g)", d)
	}
}
