// Package models_test exercises the full Fathom suite end to end:
// every workload must build, train (finite decreasing loss), and run
// inference under the standard interface. The cross-workload
// determinism harness (determinism_test.go, same suite) additionally
// pins every workload's train + infer trajectory bit-exactly across
// WithSeed replays and inter-op scheduler widths.
package models_test

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/runtime"

	_ "repro/internal/models/all"
)

// The paper's eight workloads plus the neuraltalk and attention
// extensions (registered alphabetically).
var allNames = []string{
	"alexnet", "attention", "autoenc", "deepq", "memnet",
	"neuraltalk", "residual", "seq2seq", "speech", "vgg",
}

// paperNames are the original eight (the extension demonstrates the
// "living suite" the paper's conclusion calls for).
var paperNames = []string{
	"alexnet", "autoenc", "deepq", "memnet",
	"residual", "seq2seq", "speech", "vgg",
}

func TestRegistryHasSuiteAndExtension(t *testing.T) {
	names := core.Names()
	if len(names) != 10 {
		t.Fatalf("expected 8 workloads + 2 extensions, got %v", names)
	}
	for i, n := range allNames {
		if names[i] != n {
			t.Fatalf("registry = %v, want %v", names, allNames)
		}
	}
}

func TestPaperSuiteRegistered(t *testing.T) {
	for _, n := range paperNames {
		if _, err := core.New(n); err != nil {
			t.Fatalf("paper workload %s missing: %v", n, err)
		}
	}
}

func TestUnknownWorkloadRejected(t *testing.T) {
	if _, err := core.New("gpt"); err == nil {
		t.Fatal("unknown workload must error")
	}
}

func TestMetasMatchTableII(t *testing.T) {
	want := map[string]struct {
		year   int
		style  string
		layers int
		task   string
		data   string
	}{
		"seq2seq":  {2014, "Recurrent", 7, "Supervised", "WMT-15"},
		"memnet":   {2015, "Memory Network", 3, "Supervised", "bAbI"},
		"speech":   {2014, "Recurrent, Full", 5, "Supervised", "TIMIT"},
		"autoenc":  {2014, "Full", 3, "Unsupervised", "MNIST"},
		"residual": {2015, "Convolutional", 34, "Supervised", "ImageNet"},
		"vgg":      {2014, "Convolutional, Full", 19, "Supervised", "ImageNet"},
		"alexnet":  {2012, "Convolutional, Full", 5, "Supervised", "ImageNet"},
		"deepq":    {2013, "Convolutional, Full", 5, "Reinforcement", "Atari ALE"},
	}
	for name, w := range want {
		m, err := core.New(name)
		if err != nil {
			t.Fatal(err)
		}
		meta := m.Meta()
		if meta.Year != w.year || meta.Style != w.style || meta.Layers != w.layers ||
			meta.Task != w.task || meta.Dataset != w.data {
			t.Errorf("%s meta = %+v, want %+v", name, meta, w)
		}
		if meta.Purpose == "" || meta.Ref == "" {
			t.Errorf("%s meta missing purpose/ref", name)
		}
	}
}

// TestEveryWorkloadMeetsRequestContract is the request-driven half of
// the standard interface: every workload must publish non-empty
// signatures for both modes, implement the Trainer capability and
// either Inferencer+Sampler or its own InferenceStepper, and answer a
// request fed through its inference signature with outputs of the
// declared shapes.
func TestEveryWorkloadMeetsRequestContract(t *testing.T) {
	for _, name := range allNames {
		name := name
		t.Run(name, func(t *testing.T) {
			m, err := core.New(name)
			if err != nil {
				t.Fatal(err)
			}
			if err := m.Setup(core.Config{Preset: core.PresetTiny, Seed: 3}); err != nil {
				t.Fatal(err)
			}
			if _, ok := m.(core.Trainer); !ok {
				t.Fatal("must implement core.Trainer")
			}
			inf, isInf := m.(core.Inferencer)
			if !isInf {
				t.Fatal("must implement core.Inferencer")
			}
			for _, mode := range []core.Mode{core.ModeTraining, core.ModeInference} {
				sig := m.Signature(mode)
				if len(sig.Inputs) == 0 || len(sig.Outputs) == 0 {
					t.Fatalf("%v signature must name inputs and outputs", mode)
				}
				for _, in := range sig.Inputs {
					if in.Node == nil || in.Node.Kind() != graph.KindPlaceholder {
						t.Fatalf("%v input %q must be a placeholder", mode, in.Name)
					}
				}
				if sig.BatchCapacity() < 1 {
					t.Fatalf("%v batch capacity = %d", mode, sig.BatchCapacity())
				}
			}
			smp, isSmp := m.(core.Sampler)
			if _, selfDriven := m.(core.InferenceStepper); !selfDriven && !isSmp {
				t.Fatal("must implement core.Sampler or core.InferenceStepper")
			}
			if !isSmp {
				return
			}
			// A sampled batch must satisfy the inference signature and
			// produce every declared output at its declared shape.
			sig := m.Signature(core.ModeInference)
			s := runtime.NewSession(m.Graph(), runtime.WithSeed(3))
			outs, err := inf.Infer(s, smp.Sample())
			if err != nil {
				t.Fatalf("Infer on sampled batch: %v", err)
			}
			for _, spec := range sig.Outputs {
				got, ok := outs[spec.Name]
				if !ok {
					t.Fatalf("missing output %q", spec.Name)
				}
				if len(got.Shape()) != len(spec.Shape()) {
					t.Fatalf("output %q rank %v, want %v", spec.Name, got.Shape(), spec.Shape())
				}
			}
		})
	}
}

// TestBatchOverrideRebuildsGraph: Config.Batch must widen the batch
// axis of every batched input (the knob serving builds on).
func TestBatchOverrideRebuildsGraph(t *testing.T) {
	for _, name := range []string{"alexnet", "seq2seq", "speech"} {
		name := name
		t.Run(name, func(t *testing.T) {
			m, err := core.New(name)
			if err != nil {
				t.Fatal(err)
			}
			if err := m.Setup(core.Config{Preset: core.PresetTiny, Seed: 3, Batch: 5}); err != nil {
				t.Fatal(err)
			}
			sig := m.Signature(core.ModeInference)
			if got := sig.BatchCapacity(); got != 5 {
				t.Fatalf("batch capacity = %d, want 5", got)
			}
			for _, in := range sig.Inputs {
				if in.Shape()[in.BatchDim] != 5 {
					t.Fatalf("input %q shape %v: batch axis %d not widened", in.Name, in.Shape(), in.BatchDim)
				}
			}
		})
	}
}

// TestEveryWorkloadTrainsAndInfers is the standard-interface contract:
// Setup, a few training steps with finite loss, then inference.
func TestEveryWorkloadTrainsAndInfers(t *testing.T) {
	for _, name := range allNames {
		name := name
		t.Run(name, func(t *testing.T) {
			m, err := core.New(name)
			if err != nil {
				t.Fatal(err)
			}
			if err := m.Setup(core.Config{Preset: core.PresetTiny, Seed: 3}); err != nil {
				t.Fatalf("setup: %v", err)
			}
			if m.Graph() == nil || m.Graph().NumNodes() == 0 {
				t.Fatal("graph must be built by Setup")
			}
			s := runtime.NewSession(m.Graph(), runtime.WithSeed(3))
			for i := 0; i < 4; i++ {
				if err := core.Step(m, s, core.ModeTraining); err != nil {
					t.Fatalf("training step %d: %v", i, err)
				}
			}
			if lr, ok := m.(core.LossReporter); ok {
				if name == "deepq" && lr.LastLoss() == 0 {
					// deepq needs to fill its replay buffer first; loss
					// may legitimately still be zero after 4 steps.
				} else if math.IsNaN(lr.LastLoss()) || math.IsInf(lr.LastLoss(), 0) {
					t.Fatalf("loss not finite: %v", lr.LastLoss())
				}
			}
			for i := 0; i < 2; i++ {
				if err := core.Step(m, s, core.ModeInference); err != nil {
					t.Fatalf("inference step %d: %v", i, err)
				}
			}
		})
	}
}

// TestWorkloadsLearn verifies the loss decreases on the synthetic
// tasks — the models are real learners, not shape-correct mockups.
func TestWorkloadsLearn(t *testing.T) {
	if testing.Short() {
		t.Skip("learning curves are slow")
	}
	// deepq is excluded: a handful of Q-learning steps has no
	// monotonicity guarantee (tested separately for mechanics).
	cases := map[string]int{
		"attention":  60,
		"autoenc":    40,
		"memnet":     60,
		"seq2seq":    50,
		"speech":     40,
		"alexnet":    30,
		"neuraltalk": 60,
	}
	for name, steps := range cases {
		name, steps := name, steps
		t.Run(name, func(t *testing.T) {
			m, err := core.New(name)
			if err != nil {
				t.Fatal(err)
			}
			if err := m.Setup(core.Config{Preset: core.PresetTiny, Seed: 5}); err != nil {
				t.Fatal(err)
			}
			s := runtime.NewSession(m.Graph(), runtime.WithSeed(5))
			lr := m.(core.LossReporter)
			var first, last float64
			for i := 0; i < steps; i++ {
				if err := core.Step(m, s, core.ModeTraining); err != nil {
					t.Fatal(err)
				}
				if i < 5 {
					first += lr.LastLoss() / 5
				}
				if i >= steps-5 {
					last += lr.LastLoss() / 5
				}
			}
			if !(last < first) {
				t.Fatalf("loss did not decrease: first5=%.4f last5=%.4f", first, last)
			}
		})
	}
}

// TestInferenceCheaperThanTraining checks the Fig.-5 invariant at the
// profile level for every workload.
func TestInferenceCheaperThanTraining(t *testing.T) {
	for _, name := range []string{"alexnet", "memnet", "autoenc", "speech"} {
		name := name
		t.Run(name, func(t *testing.T) {
			train, err := core.SetupAndRun(name, core.Config{Preset: core.PresetTiny, Seed: 7},
				core.RunOptions{Mode: core.ModeTraining, Steps: 3, Warmup: 1})
			if err != nil {
				t.Fatal(err)
			}
			infer, err := core.SetupAndRun(name, core.Config{Preset: core.PresetTiny, Seed: 7},
				core.RunOptions{Mode: core.ModeInference, Steps: 3, Warmup: 1})
			if err != nil {
				t.Fatal(err)
			}
			if infer.SimTime >= train.SimTime {
				t.Fatalf("inference (%v) should be cheaper than training (%v)",
					infer.SimTime, train.SimTime)
			}
		})
	}
}

// TestBackwardOpsAppearInTrainingProfiles checks that gradient ops are
// first-class profile citizens (the property the methodology needs).
func TestBackwardOpsAppearInTrainingProfiles(t *testing.T) {
	res, err := core.SetupAndRun("alexnet", core.Config{Preset: core.PresetTiny, Seed: 9},
		core.RunOptions{Mode: core.ModeTraining, Steps: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range []string{"Conv2DBackFilter", "Conv2DBackInput", "ApplyGradientDescent"} {
		if res.Profile.ByType[op] == 0 {
			t.Errorf("training profile missing %s", op)
		}
	}
	inf, err := core.SetupAndRun("alexnet", core.Config{Preset: core.PresetTiny, Seed: 9},
		core.RunOptions{Mode: core.ModeInference, Steps: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range []string{"Conv2DBackFilter", "ApplyGradientDescent"} {
		if inf.Profile.ByType[op] != 0 {
			t.Errorf("inference profile should not contain %s", op)
		}
	}
}

// TestProfileClassesMatchPaperExpectations spot-checks the Fig.-3
// structure: conv nets dominated by class B, speech by class A,
// autoenc exercising class E (random sampling) in inference.
func TestProfileClassesMatchPaperExpectations(t *testing.T) {
	if testing.Short() {
		t.Skip("profiling runs are slow")
	}
	run := func(name string, mode core.Mode) *core.RunResult {
		t.Helper()
		res, err := core.SetupAndRun(name, core.Config{Preset: core.PresetSmall, Seed: 11},
			core.RunOptions{Mode: mode, Steps: 2, Warmup: 1})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	conv := run("alexnet", core.ModeTraining).Profile.ClassFractions()
	if conv[graph.ClassConv] < 0.5 {
		t.Errorf("alexnet should be convolution-dominated, got %.2f", conv[graph.ClassConv])
	}
	sp := run("speech", core.ModeTraining).Profile.ClassFractions()
	if sp[graph.ClassMatrix] < 0.3 {
		t.Errorf("speech should be MatMul-heavy, got %.2f", sp[graph.ClassMatrix])
	}
	if sp[graph.ClassConv] > 0.01 {
		t.Errorf("speech contains no convolution, got %.2f", sp[graph.ClassConv])
	}
	ae := run("autoenc", core.ModeInference).Profile
	if ae.ByType["RandomStandardNormal"] == 0 {
		t.Error("autoenc inference must sample (RandomStandardNormal)")
	}
}

var _ = math.Pi // keep math imported even if assertions change
