// Package memnet implements the Fathom memnet workload: Sukhbaatar et
// al.'s end-to-end memory network — embedding matrices A (memory
// keys), C (memory values) and B (query), three memory hops of
// softmax-attention over the stored sentences with a linear inter-hop
// mapping, and a final classifier over answer candidates, trained on
// synthetic bAbI task-1 stories. As in the paper, the profile consists
// of many small Mul/Tile/Sum/Reshape/Shape/Softmax/Add/Div operations
// on skinny tensors that resist parallelization (Fig. 6c).
package memnet

import (
	"math/rand"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/graph"
	"repro/internal/models/nn"
	"repro/internal/ops"
	"repro/internal/runtime"
	"repro/internal/tensor"
)

func init() {
	core.Register("memnet", func() core.Model { return New() })
}

// Model is the memnet workload.
type Model struct {
	cfg                  core.Config
	dims                 dims
	g                    *graph.Graph
	stories, query, ans  *graph.Node
	loss, trainOp, probs *graph.Node
	train                *nn.TrainPlan
	data                 *dataset.BABI
	lastLoss             float64
}

type dims struct {
	memories, sentenceLen int // M, L
	embed                 int // d
	hops                  int
	batch                 int
	lr                    float32
}

func dimsFor(p core.Preset) dims {
	switch p {
	case core.PresetTiny:
		return dims{memories: 5, sentenceLen: 5, embed: 16, hops: 2, batch: 8, lr: 0.1}
	case core.PresetSmall:
		return dims{memories: 20, sentenceLen: 6, embed: 32, hops: 3, batch: 16, lr: 0.02}
	default:
		return dims{memories: 50, sentenceLen: 6, embed: 64, hops: 3, batch: 32, lr: 0.02}
	}
}

// New returns an unbuilt memory network.
func New() *Model { return &Model{} }

// Name implements core.Model.
func (m *Model) Name() string { return "memnet" }

// Meta implements core.Model.
func (m *Model) Meta() core.Meta {
	return core.Meta{
		Name: "memnet", Year: 2015, Ref: "Sukhbaatar et al., NIPS 2015",
		Style: "Memory Network", Layers: 3, Task: "Supervised",
		Dataset: "bAbI",
		Purpose: "Facebook's memory-oriented neural system. One of two novel architectures which explore a topology beyond feed-forward lattices of neurons.",
	}
}

// Graph implements core.Model.
func (m *Model) Graph() *graph.Graph { return m.g }

// LastLoss implements core.LossReporter.
func (m *Model) LastLoss() float64 { return m.lastLoss }

// Setup implements core.Model.
func (m *Model) Setup(cfg core.Config) error {
	m.cfg = cfg
	m.dims = dimsFor(cfg.Preset)
	m.dims.batch = cfg.BatchOr(m.dims.batch)
	d := m.dims
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	rng := rand.New(rand.NewSource(seed))
	m.data = dataset.NewBABI(d.memories, d.sentenceLen, seed+1)
	vocab := dataset.BABIVocabSize()
	answers := dataset.BABIAnswerClasses()

	g := graph.New()
	m.g = g
	m.stories = g.Placeholder("stories", d.batch, d.memories, d.sentenceLen)
	m.query = g.Placeholder("query", d.batch, d.sentenceLen)
	m.ans = g.Placeholder("answers", d.batch)

	embA := nn.Embedding(g, rng, "A", vocab, d.embed) // memory keys
	embB := nn.Embedding(g, rng, "B", vocab, d.embed) // query
	embC := nn.Embedding(g, rng, "C", vocab, d.embed) // memory values
	// Temporal encodings T_A/T_C: learned per-slot vectors that let
	// the model distinguish "latest" from earlier mentions — the TE
	// component of the original end-to-end memory network.
	teA := g.Variable("TA", tensor.RandNormal(rng, 0, 0.1, 1, d.memories, d.embed))
	teC := g.Variable("TC", tensor.RandNormal(rng, 0, 0.1, 1, d.memories, d.embed))
	hmap := g.Variable("H", nn.Glorot(rng, d.embed, d.embed, d.embed, d.embed))
	wOut := g.Variable("W", nn.Glorot(rng, answers, d.embed, answers, d.embed))
	params := []*graph.Node{embA, embB, embC, teA, teC, hmap, wOut}

	// Bag-of-words sentence encoding: embed every word and sum within
	// the sentence. The dynamic-reshape pattern (Reshape fed by a
	// Shape node) mirrors TensorFlow memory-network implementations
	// and is why Shape ops appear in the paper's memnet profile.
	flatStories := ops.Reshape(m.stories, d.batch*d.memories*d.sentenceLen)
	storyTemplate := g.Const("story_shape", tensor.New(d.batch, d.memories, d.sentenceLen, d.embed))
	memKeys := ops.Sum(ops.ReshapeLike(ops.Gather(embA, flatStories), storyTemplate), 2) // (B,M,d)
	memVals := ops.Sum(ops.ReshapeLike(ops.Gather(embC, flatStories), storyTemplate), 2) // (B,M,d)
	memKeys = ops.Add(memKeys, teA)                                                      // broadcast (1,M,d) over the batch
	memVals = ops.Add(memVals, teC)

	flatQuery := ops.Reshape(m.query, d.batch*d.sentenceLen)
	qTemplate := g.Const("query_shape", tensor.New(d.batch, d.sentenceLen, d.embed))
	u := ops.Sum(ops.ReshapeLike(ops.Gather(embB, flatQuery), qTemplate), 1) // (B,d)

	for hop := 0; hop < d.hops; hop++ {
		// p = softmax(m·u) via explicit Tile + Mul + Sum on skinny
		// tensors, then the primitive Max/Sub/Exp/Sum/Div softmax.
		u3 := ops.ExpandDims(u, 1)                       // (B,1,d)
		uTiled := ops.TileN(u3, []int{1, d.memories, 1}) // (B,M,d)
		scores := ops.Sum(ops.Mul(memKeys, uTiled), 2)   // (B,M)
		p := nn.PrimitiveSoftmax(scores)                 // (B,M)
		p3 := ops.ExpandDims(p, 2)                       // (B,M,1)
		pTiled := ops.TileN(p3, []int{1, 1, d.embed})    // (B,M,d)
		o := ops.Sum(ops.Mul(memVals, pTiled), 1)        // (B,d)
		u = ops.Add(ops.MatMul(u, hmap), o)
	}

	// Answer distribution: W is stored (answers, d); the explicit
	// Transpose matches the weight-tying layout of the original model.
	logits := ops.MatMul(u, ops.Transpose(wOut)) // (B, answers)
	m.loss = ops.CrossEntropy(logits, m.ans)
	m.probs = ops.Softmax(logits)

	var err error
	m.train, err = nn.BuildTraining(g, m.loss, params, nn.SGD, d.lr)
	if err != nil {
		return err
	}
	m.trainOp = m.train.TrainOp()
	m.train.Fuse(m.probs)
	return nil
}

// TrainPlan exposes the training structure (loss, gradient and update
// fetch surface) for data-parallel training (internal/dist).
func (m *Model) TrainPlan() *nn.TrainPlan { return m.train }

// TrainSample implements core.TrainSampler: one training minibatch
// drawn from a generator derived entirely from seed.
func (m *Model) TrainSample(_ *runtime.Session, seed int64) (map[string]*tensor.Tensor, error) {
	d := m.dims
	stories, query, ans := dataset.NewBABI(d.memories, d.sentenceLen, seed).Batch(d.batch)
	return map[string]*tensor.Tensor{"stories": stories, "query": query, "answers": ans}, nil
}

// Signature implements core.Model.
func (m *Model) Signature(mode core.Mode) core.Signature {
	if mode == core.ModeTraining {
		return core.Signature{
			Inputs: []core.IOSpec{
				core.In("stories", m.stories), core.In("query", m.query), core.In("answers", m.ans),
			},
			Outputs: []core.IOSpec{core.ScalarOut("loss", m.loss)},
		}
	}
	return core.Signature{
		Inputs:  []core.IOSpec{core.In("stories", m.stories), core.In("query", m.query)},
		Outputs: []core.IOSpec{core.Out("probs", m.probs)},
	}
}

// Infer implements core.Inferencer.
func (m *Model) Infer(s *runtime.Session, feeds map[string]*tensor.Tensor) (map[string]*tensor.Tensor, error) {
	return core.RunInference(m, s, feeds)
}

// TrainStep implements core.Trainer.
func (m *Model) TrainStep(s *runtime.Session) (float64, error) {
	stories, query, ans := m.data.Batch(m.dims.batch)
	s.SetTraining(true)
	out, err := s.Run([]*graph.Node{m.loss, m.trainOp},
		runtime.Feeds{m.stories: stories, m.query: query, m.ans: ans})
	if err != nil {
		return 0, err
	}
	m.lastLoss = float64(out[0].Data()[0])
	return m.lastLoss, nil
}

// Sample implements core.Sampler: one synthetic inference batch.
func (m *Model) Sample() map[string]*tensor.Tensor {
	stories, query, _ := m.data.Batch(m.dims.batch)
	return map[string]*tensor.Tensor{"stories": stories, "query": query}
}
