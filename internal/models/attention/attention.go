// Package attention implements the transformer-style extension
// workload: a small encoder block — multi-head scaled-dot-product
// self-attention, a position-wise feed-forward network, residual
// connections and primitive-op layer normalization — trained on a
// synthetic sequence-reversal task (the output at position i is the
// input token at position S-1-i, so information must move across
// positions through the attention heads; positional embeddings alone
// cannot solve it). It exists to drive the fused streaming-softmax
// attention path end to end: Setup builds each head as the unfused
// Softmax(Q·Kᵀ·scale)·V chain and then runs graph.FuseAttention, so
// every head executes as one FusedAttention kernel in both training
// and serving graphs while remaining bit-identical to the unfused
// reference (the fusion happens before gradient construction; the
// fused op recomputes the probability matrix in its own Grad).
package attention

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/models/nn"
	"repro/internal/ops"
	"repro/internal/runtime"
	"repro/internal/tensor"
)

func init() {
	core.Register("attention", func() core.Model { return New() })
}

// Model is the attention workload.
type Model struct {
	cfg             core.Config
	dims            dims
	g               *graph.Graph
	tokens, targets *graph.Node
	loss, trainOp   *graph.Node
	probs           *graph.Node
	train           *nn.TrainPlan
	rng             *rand.Rand
	lastLoss        float64
}

type dims struct {
	vocab, seqLen int
	embed, heads  int
	ffn           int
	batch         int
	lr            float32
}

func dimsFor(p core.Preset) dims {
	switch p {
	case core.PresetTiny:
		return dims{vocab: 12, seqLen: 8, embed: 32, heads: 2, ffn: 64, batch: 8, lr: 0.1}
	case core.PresetSmall:
		return dims{vocab: 24, seqLen: 12, embed: 32, heads: 4, ffn: 64, batch: 8, lr: 0.05}
	default:
		return dims{vocab: 32, seqLen: 16, embed: 64, heads: 4, ffn: 128, batch: 16, lr: 0.05}
	}
}

// New returns an unbuilt attention encoder.
func New() *Model { return &Model{} }

// Name implements core.Model.
func (m *Model) Name() string { return "attention" }

// Meta implements core.Model.
func (m *Model) Meta() core.Meta {
	return core.Meta{
		Name: "attention", Year: 2017, Ref: "Vaswani et al., NIPS 2017",
		Style: "Attention", Layers: 1, Task: "Supervised",
		Dataset: "synthetic reversal",
		Purpose: "Suite extension: the attention-only topology that displaced recurrence. Drives the fused streaming-softmax kernel (batched softmax(QKᵀ)V) end to end.",
	}
}

// Graph implements core.Model.
func (m *Model) Graph() *graph.Graph { return m.g }

// LastLoss implements core.LossReporter.
func (m *Model) LastLoss() float64 { return m.lastLoss }

// layerNorm normalizes x (N, d) over the feature axis with primitive
// operations (Mean, Sub, Square, Sqrt, Div, Mul, Add), the same way
// nn.BatchNorm expresses normalization, plus a learned gain and bias.
func layerNorm(g *graph.Graph, name string, x *graph.Node) (*graph.Node, []*graph.Node) {
	d := x.Shape()[1]
	gamma := g.Variable(name+"/gamma", tensor.Ones(1, d))
	beta := g.Variable(name+"/beta", tensor.New(1, d))
	mean := ops.MeanKeep(x, 1)
	cent := ops.Sub(x, mean)
	variance := ops.MeanKeep(ops.Square(cent), 1)
	inv := ops.Sqrt(ops.Add(variance, ops.ScalarConst(g, 1e-5)))
	y := ops.Add(ops.Mul(ops.Div(cent, inv), gamma), beta)
	return y, []*graph.Node{gamma, beta}
}

// Setup implements core.Model.
func (m *Model) Setup(cfg core.Config) error {
	m.cfg = cfg
	m.dims = dimsFor(cfg.Preset)
	m.dims.batch = cfg.BatchOr(m.dims.batch)
	m.dims.heads = cfg.HeadsOr(m.dims.heads)
	d := m.dims
	if d.heads < 1 || d.embed%d.heads != 0 {
		return fmt.Errorf("attention: embed dim %d not divisible by %d heads", d.embed, d.heads)
	}
	dh := d.embed / d.heads
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	rng := rand.New(rand.NewSource(seed))
	m.rng = rand.New(rand.NewSource(seed + 1))

	g := graph.New()
	m.g = g
	m.tokens = g.Placeholder("tokens", d.batch, d.seqLen)
	m.targets = g.Placeholder("targets", d.batch, d.seqLen)

	emb := nn.Embedding(g, rng, "embed", d.vocab, d.embed)
	pos := g.Variable("pos", tensor.RandNormal(rng, 0, 0.1, 1, d.seqLen, d.embed))
	params := []*graph.Node{emb, pos}

	flat := ops.Reshape(m.tokens, d.batch*d.seqLen)
	x3 := ops.Add(ops.Reshape(ops.Gather(emb, flat), d.batch, d.seqLen, d.embed), pos)
	x := ops.Reshape(x3, d.batch*d.seqLen, d.embed) // (B·S, d)

	// Multi-head self-attention: shared Q/K/V projections, split per
	// head, each head built as the unfused attention chain over rank-3
	// (B, S, Dh) operands. graph.FuseAttention below rewrites every
	// chain into one FusedAttention node.
	wq := g.Variable("attn/Wq", nn.Glorot(rng, d.embed, d.embed, d.embed, d.embed))
	wk := g.Variable("attn/Wk", nn.Glorot(rng, d.embed, d.embed, d.embed, d.embed))
	wv := g.Variable("attn/Wv", nn.Glorot(rng, d.embed, d.embed, d.embed, d.embed))
	wo := g.Variable("attn/Wo", nn.Glorot(rng, d.embed, d.embed, d.embed, d.embed))
	params = append(params, wq, wk, wv, wo)

	q := ops.Split(ops.MatMul(x, wq), 1, d.heads)
	k := ops.Split(ops.MatMul(x, wk), 1, d.heads)
	v := ops.Split(ops.MatMul(x, wv), 1, d.heads)
	scale := float32(1 / math.Sqrt(float64(dh)))
	heads := make([]*graph.Node, d.heads)
	for h := 0; h < d.heads; h++ {
		qh := ops.Reshape(q[h], d.batch, d.seqLen, dh)
		kh := ops.Reshape(k[h], d.batch, d.seqLen, dh)
		vh := ops.Reshape(v[h], d.batch, d.seqLen, dh)
		oh := ops.NaiveAttention(qh, kh, vh, scale) // (B,S,Dh)
		heads[h] = ops.Reshape(oh, d.batch*d.seqLen, dh)
	}
	attnOut := ops.MatMul(ops.ConcatN(1, heads...), wo)
	h1, lnP1 := layerNorm(g, "ln1", ops.Add(x, attnOut))
	params = append(params, lnP1...)

	f1, fp1 := nn.Dense(g, rng, "ffn/1", h1, d.embed, d.ffn, ops.Relu)
	f2, fp2 := nn.Dense(g, rng, "ffn/2", f1, d.ffn, d.embed, nil)
	h2, lnP2 := layerNorm(g, "ln2", ops.Add(h1, f2))
	params = append(params, fp1...)
	params = append(params, fp2...)
	params = append(params, lnP2...)

	logits, outP := nn.Dense(g, rng, "out", h2, d.embed, d.vocab, nil)
	params = append(params, outP...)
	m.loss = ops.CrossEntropy(logits, ops.Reshape(m.targets, d.batch*d.seqLen))
	// Serving output is batch-major rank-3 (B, S, vocab): the engine
	// micro-batches along axis 0, so it must index examples, not B·S rows.
	m.probs = ops.Reshape(ops.Softmax(logits), d.batch, d.seqLen, d.vocab)

	// Fuse the attention chains before gradient construction: the
	// backward pass would otherwise multi-read every probability matrix
	// and block the single-reader gate. The fused op recomputes the
	// probabilities in its own Grad, bit-identically.
	if fused := graph.FuseAttention(g, m.loss, m.probs); fused != d.heads {
		return fmt.Errorf("attention: fused %d attention chains, want %d", fused, d.heads)
	}

	var err error
	m.train, err = nn.BuildTraining(g, m.loss, params, nn.Momentum, d.lr)
	if err != nil {
		return err
	}
	m.trainOp = m.train.TrainOp()
	m.train.Fuse(m.probs)
	return nil
}

// TrainPlan exposes the training structure (loss, gradient and update
// fetch surface) for data-parallel training (internal/dist).
func (m *Model) TrainPlan() *nn.TrainPlan { return m.train }

// batch materializes one (tokens, targets) minibatch from rng: random
// token sequences paired with their reversals.
func (m *Model) batch(rng *rand.Rand) (tokens, targets *tensor.Tensor) {
	d := m.dims
	tokens = tensor.New(d.batch, d.seqLen)
	targets = tensor.New(d.batch, d.seqLen)
	td, gd := tokens.Data(), targets.Data()
	for b := 0; b < d.batch; b++ {
		for i := 0; i < d.seqLen; i++ {
			td[b*d.seqLen+i] = float32(rng.Intn(d.vocab))
		}
		for i := 0; i < d.seqLen; i++ {
			gd[b*d.seqLen+i] = td[b*d.seqLen+(d.seqLen-1-i)]
		}
	}
	return tokens, targets
}

// TrainSample implements core.TrainSampler: one training minibatch
// drawn from a generator derived entirely from seed.
func (m *Model) TrainSample(_ *runtime.Session, seed int64) (map[string]*tensor.Tensor, error) {
	tokens, targets := m.batch(rand.New(rand.NewSource(seed)))
	return map[string]*tensor.Tensor{"tokens": tokens, "targets": targets}, nil
}

// Signature implements core.Model.
func (m *Model) Signature(mode core.Mode) core.Signature {
	if mode == core.ModeTraining {
		return core.Signature{
			Inputs:  []core.IOSpec{core.In("tokens", m.tokens), core.In("targets", m.targets)},
			Outputs: []core.IOSpec{core.ScalarOut("loss", m.loss)},
		}
	}
	return core.Signature{
		Inputs:  []core.IOSpec{core.In("tokens", m.tokens)},
		Outputs: []core.IOSpec{core.Out("probs", m.probs)},
	}
}

// Infer implements core.Inferencer.
func (m *Model) Infer(s *runtime.Session, feeds map[string]*tensor.Tensor) (map[string]*tensor.Tensor, error) {
	return core.RunInference(m, s, feeds)
}

// TrainStep implements core.Trainer.
func (m *Model) TrainStep(s *runtime.Session) (float64, error) {
	tokens, targets := m.batch(m.rng)
	s.SetTraining(true)
	out, err := s.Run([]*graph.Node{m.loss, m.trainOp},
		runtime.Feeds{m.tokens: tokens, m.targets: targets})
	if err != nil {
		return 0, err
	}
	m.lastLoss = float64(out[0].Data()[0])
	return m.lastLoss, nil
}

// Sample implements core.Sampler: one synthetic inference batch.
func (m *Model) Sample() map[string]*tensor.Tensor {
	tokens, _ := m.batch(m.rng)
	return map[string]*tensor.Tensor{"tokens": tokens}
}
