// Package seq2seq implements the Fathom seq2seq workload: Sutskever,
// Vinyals & Le's sequence-to-sequence translation model — a
// multi-layer LSTM encoder–decoder with Bahdanau-style attention over
// the encoder states, embeddings on both sides, and per-step softmax
// cross-entropy, trained with SGD on synthetic WMT-style parallel
// text. The statically unrolled recurrence with tied weights produces
// the many small MatMul/Mul/Add/Tile/Transpose/Sum/AddN operations
// that characterize the paper's seq2seq profile (Fig. 6b).
package seq2seq

import (
	"math/rand"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/graph"
	"repro/internal/models/nn"
	"repro/internal/ops"
	"repro/internal/runtime"
	"repro/internal/tensor"
)

func init() {
	core.Register("seq2seq", func() core.Model { return New() })
}

// Model is the seq2seq workload.
type Model struct {
	cfg           core.Config
	dims          dims
	g             *graph.Graph
	src, dst      *graph.Node
	loss, trainOp *graph.Node
	train         *nn.TrainPlan
	preds         *graph.Node
	data          *dataset.Translation
	lastLoss      float64
}

type dims struct {
	vocab, embed, hidden int
	layers               int
	srcLen               int // source tokens (EOS added by the dataset)
	batch                int
	lr                   float32
}

func dimsFor(p core.Preset) dims {
	switch p {
	case core.PresetTiny:
		return dims{vocab: 40, embed: 12, hidden: 12, layers: 2, srcLen: 4, batch: 4, lr: 0.05}
	case core.PresetSmall:
		return dims{vocab: 300, embed: 16, hidden: 16, layers: 2, srcLen: 12, batch: 4, lr: 0.1}
	default:
		return dims{vocab: 1000, embed: 32, hidden: 32, layers: 3, srcLen: 20, batch: 8, lr: 0.1}
	}
}

// New returns an unbuilt translation model.
func New() *Model { return &Model{} }

// Name implements core.Model.
func (m *Model) Name() string { return "seq2seq" }

// Meta implements core.Model.
func (m *Model) Meta() core.Meta {
	return core.Meta{
		Name: "seq2seq", Year: 2014, Ref: "Sutskever et al., NIPS 2014",
		Style: "Recurrent", Layers: 7, Task: "Supervised",
		Dataset: "WMT-15",
		Purpose: "Direct language-to-language sentence translation. State-of-the-art accuracy with a simple, language-agnostic architecture.",
	}
}

// Graph implements core.Model.
func (m *Model) Graph() *graph.Graph { return m.g }

// LastLoss implements core.LossReporter.
func (m *Model) LastLoss() float64 { return m.lastLoss }

// Setup implements core.Model.
func (m *Model) Setup(cfg core.Config) error {
	m.cfg = cfg
	m.dims = dimsFor(cfg.Preset)
	m.dims.batch = cfg.BatchOr(m.dims.batch)
	d := m.dims
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	rng := rand.New(rand.NewSource(seed))
	m.data = dataset.NewTranslation(d.vocab, d.srcLen, seed+1)

	tEnc := d.srcLen + 1 // + EOS
	tDec := d.srcLen + 2 // BOS + body + EOS

	g := graph.New()
	m.g = g
	m.src = g.Placeholder("src_tokens", tEnc, d.batch)
	m.dst = g.Placeholder("dst_tokens", tDec, d.batch)

	var params []*graph.Node
	embSrc := nn.Embedding(g, rng, "emb_src", d.vocab, d.embed)
	embDst := nn.Embedding(g, rng, "emb_dst", d.vocab, d.embed)
	params = append(params, embSrc, embDst)

	// Stacked LSTM cells, weights tied across time.
	enc := make([]*nn.LSTMCell, d.layers)
	dec := make([]*nn.LSTMCell, d.layers)
	for l := 0; l < d.layers; l++ {
		in := d.hidden
		if l == 0 {
			in = d.embed
		}
		enc[l] = nn.NewLSTMCell(g, rng, name("enc", l), in, d.hidden)
		dec[l] = nn.NewLSTMCell(g, rng, name("dec", l), in, d.hidden)
		params = append(params, enc[l].Params()...)
		params = append(params, dec[l].Params()...)
	}

	tokenAt := func(seq *graph.Node, t int) *graph.Node {
		s := ops.SliceN(seq, []int{t, 0}, []int{1, d.batch})
		return ops.Reshape(s, d.batch)
	}

	// --- Encoder ---
	hs := make([]*graph.Node, d.layers)
	cs := make([]*graph.Node, d.layers)
	for l := range hs {
		hs[l] = nn.ZeroState(g, name("h0_enc", l), d.batch, d.hidden)
		cs[l] = nn.ZeroState(g, name("c0_enc", l), d.batch, d.hidden)
	}
	topStates := make([]*graph.Node, tEnc)
	for t := 0; t < tEnc; t++ {
		x := ops.Gather(embSrc, tokenAt(m.src, t))
		for l := 0; l < d.layers; l++ {
			hs[l], cs[l] = enc[l].Step(x, hs[l], cs[l])
			x = hs[l]
		}
		topStates[t] = ops.ExpandDims(hs[d.layers-1], 0) // (1,B,H)
	}
	// Stack time-major then transpose to (B, T, H) for attention —
	// the layout change TensorFlow's seq2seq performs too.
	encTB := ops.ConcatN(0, topStates...)             // (T,B,H)
	encBT := ops.TransposePerm(encTB, []int{1, 0, 2}) // (B,T,H)

	// Attention parameters (Bahdanau-style additive scoring reduced
	// to a dot product after a learned projection).
	wAtt := g.Variable("att/W", nn.Glorot(rng, d.hidden, d.hidden, d.hidden, d.hidden))
	params = append(params, wAtt)
	wOut := g.Variable("out/W", nn.Glorot(rng, 2*d.hidden, d.vocab, 2*d.hidden, d.vocab))
	bOut := g.Variable("out/b", tensor.New(d.vocab))
	params = append(params, wOut, bOut)

	attend := func(query *graph.Node) *graph.Node {
		// score_t = Σ_h enc[b,t,h] · (W·q)[b,h]
		proj := ops.MatMul(query, wAtt)                // (B,H)
		q3 := ops.ExpandDims(proj, 1)                  // (B,1,H)
		qTiled := ops.TileN(q3, []int{1, tEnc, 1})     // (B,T,H)
		scores := ops.Sum(ops.Mul(encBT, qTiled), 2)   // (B,T)
		alpha := nn.PrimitiveSoftmax(scores)           // Max/Sub/Exp/Sum/Div
		a3 := ops.ExpandDims(alpha, 2)                 // (B,T,1)
		aTiled := ops.TileN(a3, []int{1, 1, d.hidden}) // (B,T,H)
		return ops.Sum(ops.Mul(encBT, aTiled), 1)      // (B,H)
	}

	// --- Decoder with teacher forcing: it starts from the encoder's
	// final state (hs/cs currently hold those states). ---
	losses := make([]*graph.Node, 0, tDec-1)
	var lastLogits *graph.Node
	for t := 0; t < tDec-1; t++ {
		x := ops.Gather(embDst, tokenAt(m.dst, t))
		for l := 0; l < d.layers; l++ {
			hs[l], cs[l] = dec[l].Step(x, hs[l], cs[l])
			x = hs[l]
		}
		ctxVec := attend(hs[d.layers-1])
		joined := ops.ConcatN(1, hs[d.layers-1], ctxVec) // (B,2H)
		logits := ops.Add(ops.MatMul(joined, wOut), bOut)
		lastLogits = logits
		losses = append(losses, ops.CrossEntropy(logits, tokenAt(m.dst, t+1)))
	}
	total := losses[0]
	for _, l := range losses[1:] {
		total = ops.Add(total, l)
	}
	m.loss = ops.Div(total, ops.ScalarConst(g, float32(len(losses))))
	m.preds = ops.ArgMax(lastLogits)

	var err error
	m.train, err = nn.BuildTrainingClipped(g, m.loss, params, nn.SGD, d.lr, 1)
	if err != nil {
		return err
	}
	m.trainOp = m.train.TrainOp()
	m.train.Fuse(m.preds)
	return nil
}

// TrainPlan exposes the training structure (loss, gradient and update
// fetch surface) for data-parallel training (internal/dist).
func (m *Model) TrainPlan() *nn.TrainPlan { return m.train }

// TrainSample implements core.TrainSampler: one training minibatch
// drawn from a generator derived entirely from seed.
func (m *Model) TrainSample(_ *runtime.Session, seed int64) (map[string]*tensor.Tensor, error) {
	d := m.dims
	src, dst := dataset.NewTranslation(d.vocab, d.srcLen, seed).Batch(d.batch)
	return map[string]*tensor.Tensor{"src_tokens": src, "dst_tokens": dst}, nil
}

func name(prefix string, l int) string { return prefix + "_" + string(rune('0'+l)) }

// Signature implements core.Model. Token sequences are time-major
// (T, B), so the example axis is dim 1. Inference is the forward
// translation pass (teacher-forced layout, the same operation mix as
// deployed greedy decoding): it scores the fed target alongside the
// final-step predictions.
func (m *Model) Signature(mode core.Mode) core.Signature {
	ins := []core.IOSpec{core.InAt("src_tokens", m.src, 1), core.InAt("dst_tokens", m.dst, 1)}
	if mode == core.ModeTraining {
		return core.Signature{
			Inputs:  ins,
			Outputs: []core.IOSpec{core.ScalarOut("loss", m.loss)},
		}
	}
	return core.Signature{
		Inputs:  ins,
		Outputs: []core.IOSpec{core.Out("preds", m.preds), core.ScalarOut("loss", m.loss)},
	}
}

// Infer implements core.Inferencer.
func (m *Model) Infer(s *runtime.Session, feeds map[string]*tensor.Tensor) (map[string]*tensor.Tensor, error) {
	return core.RunInference(m, s, feeds)
}

// TrainStep implements core.Trainer.
func (m *Model) TrainStep(s *runtime.Session) (float64, error) {
	src, dst := m.data.Batch(m.dims.batch)
	s.SetTraining(true)
	out, err := s.Run([]*graph.Node{m.loss, m.trainOp}, runtime.Feeds{m.src: src, m.dst: dst})
	if err != nil {
		return 0, err
	}
	m.lastLoss = float64(out[0].Data()[0])
	return m.lastLoss, nil
}

// Sample implements core.Sampler: one synthetic inference batch.
func (m *Model) Sample() map[string]*tensor.Tensor {
	src, dst := m.data.Batch(m.dims.batch)
	return map[string]*tensor.Tensor{"src_tokens": src, "dst_tokens": dst}
}
