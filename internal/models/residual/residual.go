// Package residual implements the Fathom residual workload: He et
// al.'s ResNet-34 — a 7×7 stem followed by four stages of basic
// residual blocks ([3,4,6,3] blocks of two 3×3 convolutions each) with
// identity shortcuts and batch normalization, global average pooling,
// and a single fully-connected classifier trained with momentum SGD.
//
// Batch normalization is built from primitive operations, as 2016-era
// TensorFlow models expressed it, so its cost is visible in profiles
// as elementwise and reduction operations. The reference preset keeps
// all 34 layers at input resolution 112² with reduced widths
// (DESIGN.md §4.4).
package residual

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/graph"
	"repro/internal/models/nn"
	"repro/internal/ops"
	"repro/internal/runtime"
	"repro/internal/tensor"
)

func init() {
	core.Register("residual", func() core.Model { return New() })
}

// Model is the residual workload.
type Model struct {
	cfg                  core.Config
	dims                 dims
	g                    *graph.Graph
	x, y                 *graph.Node
	loss, trainOp, probs *graph.Node
	train                *nn.TrainPlan
	data                 *dataset.ImageNet
	lastLoss             float64
}

type dims struct {
	side, batch, classes int
	width                int // channels of the first stage
	lr                   float32
}

func dimsFor(p core.Preset) dims {
	switch p {
	case core.PresetTiny:
		return dims{side: 32, batch: 1, classes: 10, width: 4, lr: 0.01}
	case core.PresetSmall:
		return dims{side: 64, batch: 1, classes: 20, width: 8, lr: 0.01}
	default:
		return dims{side: 112, batch: 2, classes: 100, width: 16, lr: 0.01}
	}
}

// New returns an unbuilt residual network.
func New() *Model { return &Model{} }

// Name implements core.Model.
func (m *Model) Name() string { return "residual" }

// Meta implements core.Model.
func (m *Model) Meta() core.Meta {
	return core.Meta{
		Name: "residual", Year: 2015, Ref: "He et al., arXiv 2015",
		Style: "Convolutional", Layers: 34, Task: "Supervised",
		Dataset: "ImageNet",
		Purpose: "Image classifier from Microsoft Research Asia. Dramatically increased the practical depth of convolutional networks. ILSVRC 2015 winner.",
	}
}

// Graph implements core.Model.
func (m *Model) Graph() *graph.Graph { return m.g }

// LastLoss implements core.LossReporter.
func (m *Model) LastLoss() float64 { return m.lastLoss }

// BatchCoupled implements core.BatchCoupled: the primitive-op batch
// normalization computes statistics over the whole batch, so examples
// are not independent and requests must not share an execution.
func (m *Model) BatchCoupled() bool { return true }

// blocksPerStage is ResNet-34's plan.
var blocksPerStage = [4]int{3, 4, 6, 3}

// Setup implements core.Model.
func (m *Model) Setup(cfg core.Config) error {
	m.cfg = cfg
	m.dims = dimsFor(cfg.Preset)
	m.dims.batch = cfg.BatchOr(m.dims.batch)
	d := m.dims
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	rng := rand.New(rand.NewSource(seed))
	m.data = dataset.NewImageNet(d.classes, d.side, seed+1)

	g := graph.New()
	m.g = g
	m.x = g.Placeholder("images", d.batch, d.side, d.side, 3)
	m.y = g.Placeholder("labels", d.batch)

	var params []*graph.Node
	add := func(p []*graph.Node) { params = append(params, p...) }

	// Stem: 7×7/2 conv, BN, ReLU, 3×3/2 max pool.
	h, p := nn.Conv(g, rng, "stem", m.x, 7, 7, d.width, 2, 3, nil)
	add(p)
	h, p = nn.BatchNorm(g, rng, "stem/bn", h)
	add(p)
	h = ops.Relu(h)
	h = ops.MaxPool(h, 3, 2, 1)

	// basicBlock builds conv-BN-ReLU-conv-BN + shortcut, then ReLU.
	basicBlock := func(name string, x *graph.Node, cout, stride int) *graph.Node {
		h, p := nn.Conv(g, rng, name+"/conv1", x, 3, 3, cout, stride, 1, nil)
		add(p)
		h, p = nn.BatchNorm(g, rng, name+"/bn1", h)
		add(p)
		h = ops.Relu(h)
		h, p = nn.Conv(g, rng, name+"/conv2", h, 3, 3, cout, 1, 1, nil)
		add(p)
		h, p = nn.BatchNorm(g, rng, name+"/bn2", h)
		add(p)
		short := x
		if stride != 1 || x.Shape()[3] != cout {
			short, p = nn.Conv(g, rng, name+"/down", x, 1, 1, cout, stride, 0, nil)
			add(p)
			short, p = nn.BatchNorm(g, rng, name+"/downbn", short)
			add(p)
		}
		return ops.Relu(ops.Add(h, short))
	}

	width := d.width
	for stage := 0; stage < 4; stage++ {
		for blk := 0; blk < blocksPerStage[stage]; blk++ {
			stride := 1
			if stage > 0 && blk == 0 {
				stride = 2
			}
			h = basicBlock(fmt.Sprintf("s%d_b%d", stage+1, blk+1), h, width, stride)
		}
		width *= 2
	}

	// Global average pool and the lone FC classifier (<1% of runtime
	// in the paper's longitudinal comparison).
	spatial := h.Shape()[1]
	h = ops.AvgPool(h, spatial, 1, 0)
	flat := h.Shape()[3]
	h = ops.Reshape(h, d.batch, flat)
	logits, p := nn.Dense(g, rng, "fc", h, flat, d.classes, nil)
	add(p)

	m.loss = ops.CrossEntropy(logits, m.y)
	m.probs = ops.Softmax(logits)
	var err error
	m.train, err = nn.BuildTraining(g, m.loss, params, nn.Momentum, d.lr)
	if err != nil {
		return err
	}
	m.trainOp = m.train.TrainOp()
	m.train.Fuse(m.probs)
	return nil
}

// TrainPlan exposes the training structure (loss, gradient and update
// fetch surface) for data-parallel training (internal/dist).
func (m *Model) TrainPlan() *nn.TrainPlan { return m.train }

// TrainSample implements core.TrainSampler: one training minibatch
// drawn from a generator derived entirely from seed.
func (m *Model) TrainSample(_ *runtime.Session, seed int64) (map[string]*tensor.Tensor, error) {
	d := m.dims
	images, labels := dataset.NewImageNet(d.classes, d.side, seed).Batch(d.batch)
	return map[string]*tensor.Tensor{"images": images, "labels": labels}, nil
}

// Signature implements core.Model. Note that the primitive-op batch
// normalization couples examples across the batch axis: unlike the
// other convolutional workloads, residual's per-example outputs depend
// on what shares the batch (relevant to micro-batched serving).
func (m *Model) Signature(mode core.Mode) core.Signature {
	if mode == core.ModeTraining {
		return core.Signature{
			Inputs:  []core.IOSpec{core.In("images", m.x), core.In("labels", m.y)},
			Outputs: []core.IOSpec{core.ScalarOut("loss", m.loss)},
		}
	}
	return core.Signature{
		Inputs:  []core.IOSpec{core.In("images", m.x)},
		Outputs: []core.IOSpec{core.Out("probs", m.probs)},
	}
}

// Infer implements core.Inferencer.
func (m *Model) Infer(s *runtime.Session, feeds map[string]*tensor.Tensor) (map[string]*tensor.Tensor, error) {
	return core.RunInference(m, s, feeds)
}

// TrainStep implements core.Trainer.
func (m *Model) TrainStep(s *runtime.Session) (float64, error) {
	images, labels := m.data.Batch(m.dims.batch)
	s.SetTraining(true)
	out, err := s.Run([]*graph.Node{m.loss, m.trainOp}, runtime.Feeds{m.x: images, m.y: labels})
	if err != nil {
		return 0, err
	}
	m.lastLoss = float64(out[0].Data()[0])
	return m.lastLoss, nil
}

// Sample implements core.Sampler: one synthetic inference batch.
func (m *Model) Sample() map[string]*tensor.Tensor {
	images, _ := m.data.Batch(m.dims.batch)
	return map[string]*tensor.Tensor{"images": images}
}
