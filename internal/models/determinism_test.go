// Cross-workload determinism harness: the executable contract behind
// the parallel inter-op scheduler. Every registered workload's train +
// infer trajectory must be bit-identical (a) across two serial runs
// under the same WithSeed — the replay contract — and (b) between
// serial execution and a 4-wide inter-op schedule — the scheduler
// contract. Any future scheduler change that perturbs RNG order,
// variable update order, or arena buffer lifetimes fails this test
// for at least one of the nine workloads.
package models_test

import (
	"sort"
	"testing"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/fuse"
	"repro/internal/runtime"
	"repro/internal/sched"
	"repro/internal/tensor"

	_ "repro/internal/models/all"
)

// fingerprint captures everything observable about a short workload
// trajectory: per-step training losses, the named inference outputs of
// a sampled batch (when the workload serves requests via Sampler), and
// the final bits of every graph variable.
type fingerprint struct {
	losses []float64
	infer  map[string][]float32
	vars   map[string][]float32
}

// workloadFingerprint builds a fresh instance of the workload and
// drives it through trainSteps optimizer updates and two self-feeding
// inference steps on a session of the given intra-op × inter-op
// widths, then snapshots the trajectory. Model config and session
// seed are fixed, so two calls differ only in scheduler widths.
func workloadFingerprint(t *testing.T, name string, intraop, interop, trainSteps int) fingerprint {
	t.Helper()
	m, err := core.New(name)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Setup(core.Config{Preset: core.PresetTiny, Seed: 3}); err != nil {
		t.Fatal(err)
	}
	s := runtime.NewSession(m.Graph(),
		runtime.WithSeed(11),
		runtime.WithIntraOpWorkers(intraop),
		runtime.WithInterOpWorkers(interop),
	)
	defer s.Close()
	fp := fingerprint{infer: map[string][]float32{}, vars: map[string][]float32{}}
	tr, ok := m.(core.Trainer)
	if !ok {
		t.Fatalf("%s does not implement core.Trainer", name)
	}
	for i := 0; i < trainSteps; i++ {
		loss, err := tr.TrainStep(s)
		if err != nil {
			t.Fatalf("train step %d: %v", i, err)
		}
		fp.losses = append(fp.losses, loss)
	}
	// Self-feeding inference advances the same state (emulator, data
	// cursor, RNG) either path exercises.
	for i := 0; i < 2; i++ {
		if err := core.Step(m, s, core.ModeInference); err != nil {
			t.Fatalf("inference step %d: %v", i, err)
		}
	}
	// Request-driven inference fetches, when the workload samples
	// batches (deepq drives its emulator instead).
	if smp, ok := m.(core.Sampler); ok {
		inf := m.(core.Inferencer)
		outs, err := inf.Infer(s, smp.Sample())
		if err != nil {
			t.Fatalf("infer: %v", err)
		}
		for name, v := range outs {
			fp.infer[name] = append([]float32(nil), v.Data()...)
		}
	}
	for _, v := range m.Graph().Variables() {
		fp.vars[v.Name()] = append([]float32(nil), v.Value().Data()...)
	}
	return fp
}

func sameFloat32s(a, b []float32) (int, bool) {
	if len(a) != len(b) {
		return -1, false
	}
	for i := range a {
		if a[i] != b[i] {
			return i, false
		}
	}
	return 0, true
}

// compareFingerprints asserts bitwise equality of two trajectories.
func compareFingerprints(t *testing.T, label string, a, b fingerprint) {
	t.Helper()
	for i := range a.losses {
		if a.losses[i] != b.losses[i] {
			t.Fatalf("%s: step-%d loss %v != %v", label, i, a.losses[i], b.losses[i])
		}
	}
	if len(a.infer) != len(b.infer) {
		t.Fatalf("%s: inference outputs %d != %d", label, len(a.infer), len(b.infer))
	}
	names := make([]string, 0, len(a.infer))
	for n := range a.infer {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if i, ok := sameFloat32s(a.infer[n], b.infer[n]); !ok {
			t.Fatalf("%s: inference output %q differs at element %d", label, n, i)
		}
	}
	if len(a.vars) != len(b.vars) {
		t.Fatalf("%s: variable count %d != %d", label, len(a.vars), len(b.vars))
	}
	for n, av := range a.vars {
		if i, ok := sameFloat32s(av, b.vars[n]); !ok {
			t.Fatalf("%s: variable %q differs at element %d", label, n, i)
		}
	}
}

// TestCrossWorkloadDeterminism is the suite-wide determinism harness:
// for all nine workloads, serial replay under WithSeed is bit-exact,
// and every intra-op × inter-op width combination — real parallel
// kernel chunks crossed with the parallel plan scheduler, all drawing
// helpers from the shared worker pool — is bit-identical to serial.
func TestCrossWorkloadDeterminism(t *testing.T) {
	const trainSteps = 3
	widths := []struct {
		label          string
		intra, interop int
	}{
		{"intraop 4 vs serial", 4, 1},
		{"interop 4 vs serial", 1, 4},
		{"intraop 4 × interop 4 vs serial", 4, 4},
	}
	for _, name := range allNames {
		name := name
		t.Run(name, func(t *testing.T) {
			base := workloadFingerprint(t, name, 1, 1, trainSteps)
			replay := workloadFingerprint(t, name, 1, 1, trainSteps)
			compareFingerprints(t, "serial replay (WithSeed)", base, replay)
			for _, w := range widths {
				par := workloadFingerprint(t, name, w.intra, w.interop, trainSteps)
				compareFingerprints(t, w.label, base, par)
			}
		})
	}
}

// distFingerprint trains `name` data-parallel for trainSteps global
// steps at the given replica count and intra-op width over a fixed
// chunk grid, on a scoped shared pool, and snapshots the trajectory:
// per-step global losses and the final bits of every replica-0
// variable (every other replica is bitwise identical to it —
// TestReplicasStayInLockstep in internal/dist pins that directly).
func distFingerprint(t *testing.T, name string, replicas, intraop, interop, trainSteps int) fingerprint {
	t.Helper()
	pool := sched.New(8)
	defer pool.Close()
	tr, err := dist.New(name, dist.Options{
		Replicas:       replicas,
		Chunks:         4,
		Preset:         core.PresetTiny,
		Seed:           3,
		IntraOpWorkers: intraop,
		InterOpWorkers: interop,
		Pool:           pool,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	fp := fingerprint{infer: map[string][]float32{}, vars: map[string][]float32{}}
	losses, err := tr.Train(trainSteps)
	if err != nil {
		t.Fatal(err)
	}
	fp.losses = losses
	for _, v := range tr.Replica(0).Graph().Variables() {
		fp.vars[v.Name()] = append([]float32(nil), v.Value().Data()...)
	}
	return fp
}

// TestDataParallelDeterminism extends the harness to the data-parallel
// training subsystem (internal/dist): for all ten workloads, a fixed
// global batch (the 4-chunk grid), chunk count and seed yield
// bit-identical loss trajectories and final variables across replica
// counts {1, 2, 4} and across replica × intra-op width combinations —
// the replica count changes only the partition of the chunk grid,
// never the math.
func TestDataParallelDeterminism(t *testing.T) {
	const trainSteps = 2
	widths := []struct {
		label                      string
		replicas, intraop, interop int
	}{
		{"replicas 2", 2, 1, 1},
		{"replicas 4", 4, 1, 1},
		{"replicas 1 × intraop 4", 1, 4, 1},
		{"replicas 2 × intraop 4", 2, 4, 1},
		{"replicas 4 × intraop 4", 4, 4, 1},
		{"replicas 2 × interop 4", 2, 1, 4},
	}
	for _, name := range allNames {
		name := name
		t.Run(name, func(t *testing.T) {
			base := distFingerprint(t, name, 1, 1, 1, trainSteps)
			replay := distFingerprint(t, name, 1, 1, 1, trainSteps)
			compareFingerprints(t, "dist serial replay", base, replay)
			for i, w := range widths {
				if testing.Short() && i >= 2 {
					break // -short keeps the replica axis, trims the matrix tail
				}
				par := distFingerprint(t, name, w.replicas, w.intraop, w.interop, trainSteps)
				compareFingerprints(t, w.label+" vs replicas 1", base, par)
			}
		})
	}
}

// standaloneScaled fingerprints one standalone trainee at a
// learning-rate scale: a single-replica dist run over the canonical
// 4-chunk grid — the bit-exact reference a fused trainee at that scale
// must reproduce.
func standaloneScaled(t *testing.T, name string, scale float32, trainSteps int) fingerprint {
	t.Helper()
	pool := sched.New(8)
	defer pool.Close()
	tr, err := dist.New(name, dist.Options{
		Replicas: 1,
		Chunks:   4,
		Preset:   core.PresetTiny,
		Seed:     3,
		LRScale:  scale,
		Pool:     pool,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	fp := fingerprint{infer: map[string][]float32{}, vars: map[string][]float32{}}
	losses, err := tr.Train(trainSteps)
	if err != nil {
		t.Fatal(err)
	}
	fp.losses = losses
	for _, v := range tr.Replica(0).Graph().Variables() {
		fp.vars[v.Name()] = append([]float32(nil), v.Value().Data()...)
	}
	return fp
}

// TestFusedArrayDeterminism extends the harness to horizontally fused
// training (internal/fuse): for every fuseable workload, each trainee
// of a fused array — K instances stacked into one graph, diverging
// only by learning-rate scale — must reproduce its standalone run bit
// for bit, per-step losses and final parameters, across fusion widths
// K ∈ {1, 2, 4} and fused intra-op widths {1, 4}. deepq is excluded by
// construction: it advances out-of-graph state per step.
func TestFusedArrayDeterminism(t *testing.T) {
	const trainSteps = 2
	scales := []float32{1, 0.5, 2, 0.25}
	widths := []struct {
		label    string
		k, intra int
	}{
		{"fused 1", 1, 1},
		{"fused 2", 2, 1},
		{"fused 4", 4, 1},
		{"fused 4 × intraop 4", 4, 4},
	}
	for _, name := range allNames {
		if name == "deepq" {
			continue
		}
		name := name
		t.Run(name, func(t *testing.T) {
			// Standalone references, one per learning-rate scale,
			// built lazily: the widths share them.
			refs := map[float32]fingerprint{}
			ref := func(scale float32) fingerprint {
				fp, ok := refs[scale]
				if !ok {
					fp = standaloneScaled(t, name, scale, trainSteps)
					refs[scale] = fp
				}
				return fp
			}
			for i, w := range widths {
				if testing.Short() && i >= 2 {
					break // -short keeps the width axis, trims the matrix tail
				}
				pool := sched.New(8)
				arr, err := fuse.New(name, fuse.Options{
					Width:          w.k,
					LRScales:       scales[:w.k],
					Chunks:         4,
					Preset:         core.PresetTiny,
					Seed:           3,
					IntraOpWorkers: w.intra,
					Pool:           pool,
				})
				if err != nil {
					pool.Close()
					t.Fatal(err)
				}
				if err := arr.Train(trainSteps); err != nil {
					arr.Close()
					pool.Close()
					t.Fatal(err)
				}
				for k := 0; k < w.k; k++ {
					want := ref(scales[k])
					got := fingerprint{
						losses: arr.Losses(k),
						infer:  map[string][]float32{},
						vars:   map[string][]float32{},
					}
					params := arr.TraineeParams(k)
					for i, pn := range arr.ParamNames() {
						got.vars[pn] = append([]float32(nil), params[i].Data()...)
						// Compare trainable parameters only: the fused
						// graph shares non-trainable state.
						if _, ok := want.vars[pn]; !ok {
							t.Fatalf("%s trainee %d: parameter %q missing from standalone run", w.label, k, pn)
						}
					}
					// Fused runs have no inference leg; compare losses and
					// trainable parameters.
					trimmed := fingerprint{losses: want.losses, infer: map[string][]float32{}, vars: map[string][]float32{}}
					for pn := range got.vars {
						trimmed.vars[pn] = want.vars[pn]
					}
					compareFingerprints(t, w.label+" trainee vs standalone", got, trimmed)
				}
				arr.Close()
				pool.Close()
			}
		})
	}
}

// TestDeterminismHarnessGuardedByArena runs one representative wide
// workload (memnet: parallel hops) under the arena's buffer-lifetime
// assertion hook at inter-op width 4.
func TestDeterminismHarnessGuardedByArena(t *testing.T) {
	m, err := core.New("memnet")
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Setup(core.Config{Preset: core.PresetTiny, Seed: 3}); err != nil {
		t.Fatal(err)
	}
	s := runtime.NewSession(m.Graph(), runtime.WithSeed(11), runtime.WithInterOpWorkers(4))
	guard := tensor.NewBufferGuard()
	s.Arena().SetGuard(guard)
	tr := m.(core.Trainer)
	for i := 0; i < 3; i++ {
		if _, err := tr.TrainStep(s); err != nil {
			t.Fatal(err)
		}
	}
	if v := guard.Violations(); len(v) != 0 {
		t.Fatalf("arena guard violations during memnet training: %v", v)
	}
}
