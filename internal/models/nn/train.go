package nn

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/ops"
)

// TrainPlan records the training structure BuildTraining assembles for
// a workload: the loss, the trainable parameters, their raw gradient
// nodes, the self-contained optimizer step (TrainOp — the node the
// classic TrainStep fetches), and the optimizer recipe. It is the
// gradient/update fetch surface data-parallel training (internal/dist)
// drives: a dist replica fetches Loss plus Grads to compute one
// micro-batch's unclipped gradients without touching any variable,
// and applies an externally combined gradient through the fed-gradient
// path DistApply builds on first use.
type TrainPlan struct {
	g       *graph.Graph
	loss    *graph.Node
	params  []*graph.Node
	grads   []*graph.Node
	trainOp *graph.Node

	opt      Optimizer
	lr, clip float32

	// Fed-gradient apply paths, built lazily by DistApplyScaled and
	// keyed by learning-rate scale: one placeholder per parameter and
	// apply-ops reading them. Each path shares the parameters — and
	// nothing else — with TrainOp: its apply-ops hold their own
	// optimizer slots, so driving one path never perturbs the other's
	// state.
	distPaths map[float32]distPath
}

// distPath is one scale's fed-gradient apply surface.
type distPath struct {
	apply  *graph.Node
	gradIn []*graph.Node
}

// Loss returns the scalar training loss node.
func (tp *TrainPlan) Loss() *graph.Node { return tp.loss }

// Params returns the trainable parameters, in registration order.
func (tp *TrainPlan) Params() []*graph.Node { return tp.params }

// Grads returns the raw (unclipped) gradient nodes, aligned with
// Params. Fetching them runs forward + backward only: no optimizer
// apply-op is in their dependency closure, so variables and optimizer
// slots are untouched.
func (tp *TrainPlan) Grads() []*graph.Node { return tp.grads }

// TrainOp returns the self-contained optimizer step: the group node
// whose fetch applies the live gradients (clipped per the recipe) to
// every parameter.
func (tp *TrainPlan) TrainOp() *graph.Node { return tp.trainOp }

// DistApply returns the fed-gradient update path, building it on first
// use: gradIn[i] is a placeholder shaped like Params()[i], and
// fetching apply performs the recipe's optimizer step — gradient
// clipping included — reading the fed tensors instead of the live
// gradients. Every dist replica feeds the same combined tensors and
// fetches the same node, so all replicas take one identical step. The
// path is lazy so plain (non-distributed) training never pays for its
// apply-ops or their optimizer slots.
func (tp *TrainPlan) DistApply() (apply *graph.Node, gradIn []*graph.Node, err error) {
	return tp.DistApplyScaled(1)
}

// DistApplyScaled is DistApply with the recipe's base learning rate
// multiplied by scale (as a single float32 product, the same
// arithmetic a horizontally fused array applies per trainee — see
// internal/fuse), so a standalone run can reproduce one fused
// trainee's update rule bit for bit. Paths are cached per scale; each
// holds its own placeholders and optimizer slots.
func (tp *TrainPlan) DistApplyScaled(scale float32) (apply *graph.Node, gradIn []*graph.Node, err error) {
	if path, ok := tp.distPaths[scale]; ok {
		return path.apply, path.gradIn, nil
	}
	g := tp.g
	lr := tp.lr * scale
	prefix := "dist/grad/"
	if scale != 1 {
		prefix = fmt.Sprintf("dist/grad@%g/", scale)
	}
	ins := make([]*graph.Node, len(tp.params))
	updates := make([]*graph.Node, len(tp.params))
	for i, p := range tp.params {
		in := g.Placeholder(prefix+p.Name(), p.Shape()...)
		ins[i] = in
		fed := in
		if tp.clip > 0 {
			fed = ops.Maximum(ops.Minimum(fed, ops.ScalarConst(g, tp.clip)), ops.ScalarConst(g, -tp.clip))
		}
		u, err := applyOne(tp.opt, p, fed, lr)
		if err != nil {
			return nil, nil, err
		}
		updates[i] = u
	}
	if tp.distPaths == nil {
		tp.distPaths = map[float32]distPath{}
	}
	path := distPath{apply: ops.Group(g, updates...), gradIn: ins}
	tp.distPaths[scale] = path
	return path.apply, path.gradIn, nil
}

// Fuse runs the tier-2 epilogue-fusion pass (graph.FuseEpilogues) over
// the assembled graph, folding bias-add and activation consumers into
// their MatMul/Conv2D producers. The plan's own fetch surface — loss,
// raw gradients, and the optimizer step — is kept materialized
// automatically; extra lists any additional externally fetched nodes
// (inference heads, probes). Call it at the end of model Setup, after
// every head is built. Fused graphs compute bit-identical values, so
// the determinism contract is unaffected. Returns the number of
// absorbed consumers.
func (tp *TrainPlan) Fuse(extra ...*graph.Node) int {
	keep := make([]*graph.Node, 0, 2+len(tp.grads)+len(extra))
	keep = append(keep, tp.loss, tp.trainOp)
	keep = append(keep, tp.grads...)
	keep = append(keep, extra...)
	return graph.FuseEpilogues(tp.g, keep...)
}

// Recipe exposes the optimizer recipe BuildTraining recorded: the
// optimizer, its base learning rate, and the elementwise clip bound (0
// when unclipped). The horizontal-fusion transform (internal/fuse)
// reads it to rebuild the identical update rule over the fused
// parameter stack.
func (tp *TrainPlan) Recipe() (opt Optimizer, lr, clip float32) {
	return tp.opt, tp.lr, tp.clip
}

// applyOne adds one optimizer apply-op for param p reading grad.
func applyOne(opt Optimizer, p, grad *graph.Node, lr float32) (*graph.Node, error) {
	switch opt {
	case SGD:
		return ops.ApplySGD(p, grad, lr), nil
	case Momentum:
		return ops.ApplyMomentum(p, grad, lr, 0.9), nil
	case RMSProp:
		return ops.ApplyRMSProp(p, grad, lr, 0.95, 0.01), nil
	case Adam:
		return ops.ApplyAdam(p, grad, lr, 0.9, 0.999, 1e-8), nil
	case Adagrad:
		return ops.ApplyAdagrad(p, grad, lr, 1e-8), nil
	}
	return nil, fmt.Errorf("nn: unknown optimizer %d", opt)
}

// BuildTraining builds gradient nodes for loss w.r.t. params and the
// chosen optimizer's apply-ops, returning the full TrainPlan.
// Parameters without a gradient path are rejected.
func BuildTraining(g *graph.Graph, loss *graph.Node, params []*graph.Node, opt Optimizer, lr float32) (*TrainPlan, error) {
	return BuildTrainingClipped(g, loss, params, opt, lr, 0)
}

// BuildTrainingClipped is BuildTraining with elementwise gradient
// clipping to [-clip, clip] when clip > 0 — the stabilization the
// recurrent workloads rely on (Sutskever et al. clip gradients; DQN
// clips TD errors). The recorded Grads stay raw; clipping applies in
// both update paths (TrainOp and DistApply), so combined dist
// gradients are clipped exactly once, after combination — the
// N-independent order.
func BuildTrainingClipped(g *graph.Graph, loss *graph.Node, params []*graph.Node, opt Optimizer, lr, clip float32) (*TrainPlan, error) {
	grads, err := graph.Gradients(loss, params)
	if err != nil {
		return nil, err
	}
	updates := make([]*graph.Node, 0, len(params))
	for i, p := range params {
		if grads[i] == nil {
			return nil, fmt.Errorf("nn: parameter %s has no gradient path to the loss", p.Name())
		}
		fed := grads[i]
		if clip > 0 {
			fed = ops.Maximum(ops.Minimum(fed, ops.ScalarConst(g, clip)), ops.ScalarConst(g, -clip))
		}
		u, err := applyOne(opt, p, fed, lr)
		if err != nil {
			return nil, err
		}
		updates = append(updates, u)
	}
	return &TrainPlan{
		g: g, loss: loss,
		params:  append([]*graph.Node(nil), params...),
		grads:   grads,
		trainOp: ops.Group(g, updates...),
		opt:     opt, lr: lr, clip: clip,
	}, nil
}
