package nn

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/ops"
	"repro/internal/runtime"
	"repro/internal/tensor"
)

func sess(g *graph.Graph) *runtime.Session {
	s := runtime.NewSession(g, runtime.WithSeed(2))
	s.SetTraining(true)
	return s
}

func TestGlorotBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	w := Glorot(rng, 100, 100, 100, 100)
	limit := float32(math.Sqrt(6.0 / 200))
	for _, v := range w.Data() {
		if v < -limit || v > limit {
			t.Fatalf("Glorot value %v outside ±%v", v, limit)
		}
	}
}

func TestHeNormalScale(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	w := HeNormal(rng, 200, 200, 50)
	var sum2 float64
	for _, v := range w.Data() {
		sum2 += float64(v) * float64(v)
	}
	std := math.Sqrt(sum2 / float64(w.Size()))
	want := math.Sqrt(2.0 / 200)
	if std < want*0.8 || std > want*1.2 {
		t.Fatalf("He std = %v, want ≈ %v", std, want)
	}
}

func TestDenseShapesAndParams(t *testing.T) {
	g := graph.New()
	rng := rand.New(rand.NewSource(3))
	x := g.Placeholder("x", 4, 10)
	y, params := Dense(g, rng, "fc", x, 10, 7, ops.Relu)
	if !tensor.SameShape(y.Shape(), []int{4, 7}) {
		t.Fatalf("dense output shape %v", y.Shape())
	}
	if len(params) != 2 {
		t.Fatalf("dense should create W and b, got %d params", len(params))
	}
	out := sess(g).MustRun([]*graph.Node{y}, runtime.Feeds{x: tensor.Ones(4, 10)})[0]
	for _, v := range out.Data() {
		if v < 0 {
			t.Fatal("ReLU output must be non-negative")
		}
	}
}

func TestConvShapes(t *testing.T) {
	g := graph.New()
	rng := rand.New(rand.NewSource(4))
	x := g.Placeholder("x", 2, 8, 8, 3)
	y, params := Conv(g, rng, "c", x, 3, 3, 16, 2, 1, ops.Relu)
	if !tensor.SameShape(y.Shape(), []int{2, 4, 4, 16}) {
		t.Fatalf("conv output shape %v", y.Shape())
	}
	if len(params) != 2 {
		t.Fatal("conv should create W and b")
	}
}

func TestBatchNormNormalizes(t *testing.T) {
	g := graph.New()
	rng := rand.New(rand.NewSource(5))
	x := g.Placeholder("x", 4, 3, 3, 2)
	y, params := BatchNorm(g, rng, "bn", x)
	if len(params) != 2 {
		t.Fatal("BN should create gamma and beta")
	}
	in := tensor.RandNormal(rng, 5, 3, 4, 3, 3, 2) // mean 5, std 3
	out := sess(g).MustRun([]*graph.Node{y}, runtime.Feeds{x: in})[0]
	// With gamma=1, beta=0 the per-channel mean must be ≈0, var ≈1.
	for c := 0; c < 2; c++ {
		var sum, sum2 float64
		n := 0
		for b := 0; b < 4; b++ {
			for i := 0; i < 3; i++ {
				for j := 0; j < 3; j++ {
					v := float64(out.At(b, i, j, c))
					sum += v
					sum2 += v * v
					n++
				}
			}
		}
		mean := sum / float64(n)
		variance := sum2/float64(n) - mean*mean
		if math.Abs(mean) > 1e-3 {
			t.Fatalf("BN channel %d mean = %v", c, mean)
		}
		if math.Abs(variance-1) > 1e-2 {
			t.Fatalf("BN channel %d var = %v", c, variance)
		}
	}
}

func TestBatchNormGradientFlows(t *testing.T) {
	g := graph.New()
	rng := rand.New(rand.NewSource(6))
	x := g.Variable("x", tensor.RandNormal(rng, 0, 1, 2, 2, 2, 3))
	y, params := BatchNorm(g, rng, "bn", x)
	loss := ops.Sum(ops.Square(y))
	grads, err := graph.Gradients(loss, append([]*graph.Node{x}, params...))
	if err != nil {
		t.Fatal(err)
	}
	for i, gn := range grads {
		if gn == nil {
			t.Fatalf("BN grad %d missing", i)
		}
	}
	outs := sess(g).MustRun(grads, nil)
	for _, o := range outs {
		for _, v := range o.Data() {
			if math.IsNaN(float64(v)) {
				t.Fatal("BN gradient contains NaN")
			}
		}
	}
}

func TestLSTMCellStep(t *testing.T) {
	g := graph.New()
	rng := rand.New(rand.NewSource(7))
	cell := NewLSTMCell(g, rng, "lstm", 6, 5)
	if len(cell.Params()) != 3 {
		t.Fatal("LSTM cell should have Wx, Wh, b")
	}
	x := g.Placeholder("x", 3, 6)
	h0 := ZeroState(g, "h0", 3, 5)
	c0 := ZeroState(g, "c0", 3, 5)
	h1, c1 := cell.Step(x, h0, c0)
	if !tensor.SameShape(h1.Shape(), []int{3, 5}) || !tensor.SameShape(c1.Shape(), []int{3, 5}) {
		t.Fatalf("LSTM output shapes %v %v", h1.Shape(), c1.Shape())
	}
	// Chain two steps and check values stay bounded (tanh/sigmoid).
	h2, _ := cell.Step(x, h1, c1)
	out := sess(g).MustRun([]*graph.Node{h2}, runtime.Feeds{x: tensor.Ones(3, 6)})[0]
	for _, v := range out.Data() {
		if v < -1 || v > 1 {
			t.Fatalf("LSTM hidden out of tanh range: %v", v)
		}
	}
}

func TestRNNCellClips(t *testing.T) {
	g := graph.New()
	rng := rand.New(rand.NewSource(8))
	cell := NewRNNCell(g, rng, "rnn", 4, 4)
	x := g.Placeholder("x", 2, 4)
	h := cell.Step(x, ZeroState(g, "h0", 2, 4))
	out := sess(g).MustRun([]*graph.Node{h}, runtime.Feeds{x: tensor.Full(1000, 2, 4)})[0]
	for _, v := range out.Data() {
		if v < 0 || v > 20 {
			t.Fatalf("clipped ReLU must stay in [0,20]: %v", v)
		}
	}
}

func TestPrimitiveSoftmaxMatchesFused(t *testing.T) {
	g := graph.New()
	rng := rand.New(rand.NewSource(9))
	x := g.Const("x", tensor.RandNormal(rng, 0, 2, 4, 6))
	prim := PrimitiveSoftmax(x)
	fused := ops.Softmax(x)
	outs := sess(g).MustRun([]*graph.Node{prim, fused}, nil)
	if !tensor.AllClose(outs[0], outs[1], 1e-4, 1e-5) {
		t.Fatalf("primitive softmax diverges from fused (max diff %g)",
			tensor.MaxAbsDiff(outs[0], outs[1]))
	}
	// The primitive version must consist of primitive ops.
	names := map[string]bool{}
	for _, n := range g.Nodes() {
		names[n.OpName()] = true
	}
	for _, want := range []string{"Max", "Sub", "Exp", "Sum", "Div"} {
		if !names[want] {
			t.Errorf("primitive softmax should emit %s", want)
		}
	}
}

func TestApplyUpdatesAllOptimizers(t *testing.T) {
	for _, opt := range []Optimizer{SGD, Momentum, RMSProp, Adam} {
		g := graph.New()
		w := g.Variable("w", tensor.Full(1, 3))
		loss := ops.Sum(ops.Square(w))
		up, err := ApplyUpdates(g, loss, []*graph.Node{w}, opt, 0.1)
		if err != nil {
			t.Fatalf("opt %v: %v", opt, err)
		}
		before := w.Value().Clone()
		sess(g).MustRun([]*graph.Node{up}, nil)
		if tensor.MaxAbsDiff(before, w.Value()) == 0 {
			t.Fatalf("optimizer %v did not move the weights", opt)
		}
		// Loss 3w² has gradient 6w > 0 at w=1: weights must decrease.
		if w.Value().Data()[0] >= 1 {
			t.Fatalf("optimizer %v moved weights the wrong way: %v", opt, w.Value().Data())
		}
	}
}

func TestApplyUpdatesRejectsDisconnectedParam(t *testing.T) {
	g := graph.New()
	w := g.Variable("w", tensor.Ones(2))
	u := g.Variable("unused", tensor.Ones(2))
	loss := ops.Sum(ops.Square(w))
	if _, err := ApplyUpdates(g, loss, []*graph.Node{w, u}, SGD, 0.1); err == nil {
		t.Fatal("disconnected parameter should be rejected")
	}
}

func TestEmbeddingShape(t *testing.T) {
	g := graph.New()
	rng := rand.New(rand.NewSource(10))
	e := Embedding(g, rng, "emb", 50, 8)
	if !tensor.SameShape(e.Shape(), []int{50, 8}) {
		t.Fatalf("embedding shape %v", e.Shape())
	}
	if e.Kind() != graph.KindVariable {
		t.Fatal("embedding must be trainable")
	}
}
