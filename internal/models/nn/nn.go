// Package nn provides the layer-construction helpers shared by the
// eight Fathom workloads: initializers, dense/convolutional layers,
// batch normalization built from primitive operations (as TensorFlow
// 0.8-era models did), LSTM cells, embeddings, and the primitive
// softmax composite whose Max/Sub/Exp/Sum/Div operations populate the
// recurrent models' profiles in the paper.
package nn

import (
	"math"
	"math/rand"

	"repro/internal/graph"
	"repro/internal/ops"
	"repro/internal/tensor"
)

// Glorot returns a Glorot/Xavier-uniform initialized tensor.
func Glorot(rng *rand.Rand, fanIn, fanOut int, shape ...int) *tensor.Tensor {
	limit := math.Sqrt(6.0 / float64(fanIn+fanOut))
	return tensor.RandUniform(rng, -limit, limit, shape...)
}

// HeNormal returns a He-normal initialized tensor (ReLU networks).
func HeNormal(rng *rand.Rand, fanIn int, shape ...int) *tensor.Tensor {
	std := math.Sqrt(2.0 / float64(fanIn))
	return tensor.RandNormal(rng, 0, std, shape...)
}

// Activation is a node-level nonlinearity constructor.
type Activation func(*graph.Node) *graph.Node

// Dense builds y = act(x·W + b) with x of shape (B, in).
// It returns the output and the layer's trainable variables.
func Dense(g *graph.Graph, rng *rand.Rand, name string, x *graph.Node, in, out int, act Activation) (*graph.Node, []*graph.Node) {
	w := g.Variable(name+"/W", Glorot(rng, in, out, in, out))
	b := g.Variable(name+"/b", tensor.New(out))
	y := ops.Add(ops.MatMul(x, w), b)
	if act != nil {
		y = act(y)
	}
	return y, []*graph.Node{w, b}
}

// Conv builds a convolutional layer y = act(conv(x, W) + b) in NHWC.
func Conv(g *graph.Graph, rng *rand.Rand, name string, x *graph.Node, kh, kw, cout, stride, pad int, act Activation) (*graph.Node, []*graph.Node) {
	cin := x.Shape()[3]
	w := g.Variable(name+"/W", HeNormal(rng, kh*kw*cin, kh, kw, cin, cout))
	b := g.Variable(name+"/b", tensor.New(cout))
	y := ops.Add(ops.Conv2D(x, w, stride, stride, pad, pad), b)
	if act != nil {
		y = act(y)
	}
	return y, []*graph.Node{w, b}
}

// BatchNorm normalizes x (N,H,W,C) over batch and spatial axes using
// primitive operations (Mean, Sub, Square, Sqrt, Div, Mul, Add), the
// way 2016-era TensorFlow models expressed it, so its cost appears in
// profiles as elementwise and reduction operations. It uses batch
// statistics in both modes (adequate for characterization; documented
// in DESIGN.md).
func BatchNorm(g *graph.Graph, rng *rand.Rand, name string, x *graph.Node) (*graph.Node, []*graph.Node) {
	c := x.Shape()[len(x.Shape())-1]
	shape := make([]int, len(x.Shape()))
	for i := range shape {
		shape[i] = 1
	}
	shape[len(shape)-1] = c
	gamma := g.Variable(name+"/gamma", tensor.Ones(shape...))
	beta := g.Variable(name+"/beta", tensor.New(shape...))
	axes := make([]int, len(x.Shape())-1)
	for i := range axes {
		axes[i] = i
	}
	mean := ops.MeanKeep(x, axes...)
	cent := ops.Sub(x, mean)
	variance := ops.MeanKeep(ops.Square(cent), axes...)
	inv := ops.Sqrt(ops.Add(variance, ops.ScalarConst(g, 1e-5)))
	norm := ops.Div(cent, inv)
	y := ops.Add(ops.Mul(norm, gamma), beta)
	return y, []*graph.Node{gamma, beta}
}

// Embedding declares a (vocab, dim) lookup table variable.
func Embedding(g *graph.Graph, rng *rand.Rand, name string, vocab, dim int) *graph.Node {
	return g.Variable(name, tensor.RandNormal(rng, 0, 0.1, vocab, dim))
}

// LSTMCell is one long short-term memory layer with tied weights
// across time steps (unrolled statically, as 2016 TensorFlow did).
type LSTMCell struct {
	Hidden int
	Wx     *graph.Node // (in, 4H)
	Wh     *graph.Node // (H, 4H)
	B      *graph.Node // (4H)
}

// NewLSTMCell allocates the cell's weights.
func NewLSTMCell(g *graph.Graph, rng *rand.Rand, name string, in, hidden int) *LSTMCell {
	return &LSTMCell{
		Hidden: hidden,
		Wx:     g.Variable(name+"/Wx", Glorot(rng, in, 4*hidden, in, 4*hidden)),
		Wh:     g.Variable(name+"/Wh", Glorot(rng, hidden, 4*hidden, hidden, 4*hidden)),
		B:      g.Variable(name+"/b", tensor.New(4*hidden)),
	}
}

// Params returns the cell's trainable variables.
func (c *LSTMCell) Params() []*graph.Node { return []*graph.Node{c.Wx, c.Wh, c.B} }

// Step advances one time step: x (B,in), h and cs (B,H) → h', cs'.
// The gate order is input, forget, output, candidate.
func (c *LSTMCell) Step(x, h, cs *graph.Node) (hNext, csNext *graph.Node) {
	gates := ops.Add(ops.Add(ops.MatMul(x, c.Wx), ops.MatMul(h, c.Wh)), c.B)
	H := c.Hidden
	slice := func(k int) *graph.Node {
		return ops.SliceN(gates, []int{0, k * H}, []int{-1, H})
	}
	i := ops.Sigmoid(slice(0))
	f := ops.Sigmoid(slice(1))
	o := ops.Sigmoid(slice(2))
	cand := ops.Tanh(slice(3))
	csNext = ops.Add(ops.Mul(f, cs), ops.Mul(i, cand))
	hNext = ops.Mul(o, ops.Tanh(csNext))
	return hNext, csNext
}

// RNNCell is a simple tanh recurrence (Deep Speech's recurrent layer).
type RNNCell struct {
	Hidden int
	Wx     *graph.Node
	Wh     *graph.Node
	B      *graph.Node
}

// NewRNNCell allocates the cell's weights.
func NewRNNCell(g *graph.Graph, rng *rand.Rand, name string, in, hidden int) *RNNCell {
	return &RNNCell{
		Hidden: hidden,
		Wx:     g.Variable(name+"/Wx", Glorot(rng, in, hidden, in, hidden)),
		Wh:     g.Variable(name+"/Wh", Glorot(rng, hidden, hidden, hidden, hidden)),
		B:      g.Variable(name+"/b", tensor.New(hidden)),
	}
}

// Params returns the cell's trainable variables.
func (c *RNNCell) Params() []*graph.Node { return []*graph.Node{c.Wx, c.Wh, c.B} }

// Step advances one time step with a clipped-ReLU nonlinearity
// (Deep Speech's activation).
func (c *RNNCell) Step(x, h *graph.Node) *graph.Node {
	pre := ops.Add(ops.Add(ops.MatMul(x, c.Wx), ops.MatMul(h, c.Wh)), c.B)
	return ops.ClippedRelu(pre, 20)
}

// PrimitiveSoftmax computes softmax over the last axis from primitive
// operations — Max, Sub, Exp, Sum, Div — the pattern that populates
// the seq2seq and memnet rows of the paper's figures (fused Softmax is
// available separately as ops.Softmax).
func PrimitiveSoftmax(x *graph.Node) *graph.Node {
	last := len(x.Shape()) - 1
	m := ops.MaxReduceKeep(x, last)
	e := ops.Exp(ops.Sub(x, m))
	z := ops.SumKeep(e, last)
	return ops.Div(e, z)
}

// ZeroState returns a constant zero tensor node (initial RNN state).
func ZeroState(g *graph.Graph, name string, shape ...int) *graph.Node {
	return g.Const(name, tensor.New(shape...))
}

// Optimizer names the update rule a workload uses.
type Optimizer int

const (
	// SGD is plain gradient descent.
	SGD Optimizer = iota
	// Momentum is Polyak momentum SGD.
	Momentum
	// RMSProp is Hinton's RMSProp (DQN's optimizer).
	RMSProp
	// Adam is Kingma & Ba's Adam (the VAE's optimizer).
	Adam
	// Adagrad is Duchi et al.'s AdaGrad.
	Adagrad
)

// ApplyUpdates builds gradient nodes for loss w.r.t. params and the
// chosen optimizer's apply-ops, grouped behind a single fetchable
// node. Parameters without a gradient path are rejected. It is the
// TrainOp-only convenience over BuildTraining (see train.go), for
// callers that never need the gradient fetch surface.
func ApplyUpdates(g *graph.Graph, loss *graph.Node, params []*graph.Node, opt Optimizer, lr float32) (*graph.Node, error) {
	return ApplyUpdatesClipped(g, loss, params, opt, lr, 0)
}

// ApplyUpdatesClipped is ApplyUpdates with elementwise gradient
// clipping to [-clip, clip] when clip > 0 — the stabilization the
// recurrent workloads rely on (Sutskever et al. clip gradients; DQN
// clips TD errors).
func ApplyUpdatesClipped(g *graph.Graph, loss *graph.Node, params []*graph.Node, opt Optimizer, lr, clip float32) (*graph.Node, error) {
	tp, err := BuildTrainingClipped(g, loss, params, opt, lr, clip)
	if err != nil {
		return nil, err
	}
	return tp.TrainOp(), nil
}
