// Package neuraltalk is an *extension* workload beyond the original
// eight: a Karpathy & Fei-Fei-style image-captioning model (the
// NeuralTalk network that Han et al. [24] evaluated, per the paper's
// survey). The paper's conclusion hopes Fathom becomes "a living
// workload suite, incorporating advances as they are discovered";
// this package demonstrates that extensibility — a new model category
// (CNN encoder feeding an LSTM caption decoder) registers through the
// same standard interface and participates in the same tooling.
//
// The synthetic task: procedural textured images (the ImageNet
// substitute) paired with template captions naming their class; the
// decoder must learn to emit the caption from the CNN embedding.
package neuraltalk

import (
	"math/rand"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/graph"
	"repro/internal/models/nn"
	"repro/internal/ops"
	"repro/internal/runtime"
	"repro/internal/tensor"
)

func init() {
	core.Register("neuraltalk", func() core.Model { return New() })
}

// Caption vocabulary: BOS, EOS, then one word per image class.
const (
	capBOS = 0
	capEOS = 1
	// capFirstWord is the first class-word token id.
	capFirstWord = 2
)

// Model is the neuraltalk extension workload.
type Model struct {
	cfg           core.Config
	dims          dims
	g             *graph.Graph
	img, caption  *graph.Node
	loss, trainOp *graph.Node
	train         *nn.TrainPlan
	preds         *graph.Node
	data          *dataset.ImageNet
	rng           *rand.Rand
	lastLoss      float64
}

type dims struct {
	side, batch, classes int
	conv1, conv2         int
	embed, hidden        int
	capLen               int // decoder steps (BOS + word + EOS)
	lr                   float32
}

func dimsFor(p core.Preset) dims {
	switch p {
	case core.PresetTiny:
		return dims{side: 24, batch: 4, classes: 6, conv1: 8, conv2: 16, embed: 16, hidden: 16, capLen: 3, lr: 0.05}
	case core.PresetSmall:
		return dims{side: 32, batch: 8, classes: 12, conv1: 16, conv2: 32, embed: 32, hidden: 32, capLen: 3, lr: 0.05}
	default:
		return dims{side: 64, batch: 8, classes: 24, conv1: 32, conv2: 64, embed: 64, hidden: 64, capLen: 3, lr: 0.05}
	}
}

// New returns an unbuilt captioning model.
func New() *Model { return &Model{} }

// Name implements core.Model.
func (m *Model) Name() string { return "neuraltalk" }

// Meta implements core.Model.
func (m *Model) Meta() core.Meta {
	return core.Meta{
		Name: "neuraltalk", Year: 2015, Ref: "Karpathy & Fei-Fei, CVPR 2015",
		Style: "Convolutional, Recurrent", Layers: 5, Task: "Supervised",
		Dataset: "MS COCO",
		Purpose: "Image captioning (extension workload): a convolutional encoder driving a recurrent language decoder — the hybrid topology the paper's survey found only in heavily modified form in prior hardware studies.",
	}
}

// Graph implements core.Model.
func (m *Model) Graph() *graph.Graph { return m.g }

// LastLoss implements core.LossReporter.
func (m *Model) LastLoss() float64 { return m.lastLoss }

// Setup implements core.Model.
func (m *Model) Setup(cfg core.Config) error {
	m.cfg = cfg
	m.dims = dimsFor(cfg.Preset)
	m.dims.batch = cfg.BatchOr(m.dims.batch)
	d := m.dims
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	m.rng = rand.New(rand.NewSource(seed + 3))
	rng := rand.New(rand.NewSource(seed))
	m.data = dataset.NewImageNet(d.classes, d.side, seed+1)
	vocab := capFirstWord + d.classes

	g := graph.New()
	m.g = g
	m.img = g.Placeholder("images", d.batch, d.side, d.side, 3)
	m.caption = g.Placeholder("captions", d.capLen, d.batch)

	var params []*graph.Node
	// CNN encoder: two conv blocks then a projection to the LSTM
	// hidden size (the CNN-embedding handoff NeuralTalk popularized).
	h, p := nn.Conv(g, rng, "conv1", m.img, 5, 5, d.conv1, 2, 2, ops.Relu)
	params = append(params, p...)
	h = ops.MaxPool(h, 2, 2, 0)
	h, p = nn.Conv(g, rng, "conv2", h, 3, 3, d.conv2, 1, 1, ops.Relu)
	params = append(params, p...)
	h = ops.MaxPool(h, 2, 2, 0)
	flat := h.Shape()[1] * h.Shape()[2] * h.Shape()[3]
	h = ops.Reshape(h, d.batch, flat)
	imgEmb, p := nn.Dense(g, rng, "proj", h, flat, d.hidden, ops.Tanh)
	params = append(params, p...)

	// LSTM decoder conditioned on the image embedding as the initial
	// hidden state.
	emb := nn.Embedding(g, rng, "emb", vocab, d.embed)
	params = append(params, emb)
	cell := nn.NewLSTMCell(g, rng, "lstm", d.embed, d.hidden)
	params = append(params, cell.Params()...)
	wOut := g.Variable("out/W", nn.Glorot(rng, d.hidden, vocab, d.hidden, vocab))
	bOut := g.Variable("out/b", tensor.New(vocab))
	params = append(params, wOut, bOut)

	hState := imgEmb
	cState := nn.ZeroState(g, "c0", d.batch, d.hidden)
	tokenAt := func(t int) *graph.Node {
		s := ops.SliceN(m.caption, []int{t, 0}, []int{1, d.batch})
		return ops.Reshape(s, d.batch)
	}
	var losses []*graph.Node
	var lastLogits *graph.Node
	for t := 0; t < d.capLen-1; t++ {
		x := ops.Gather(emb, tokenAt(t))
		hState, cState = cell.Step(x, hState, cState)
		logits := ops.Add(ops.MatMul(hState, wOut), bOut)
		lastLogits = logits
		losses = append(losses, ops.CrossEntropy(logits, tokenAt(t+1)))
	}
	total := losses[0]
	for _, l := range losses[1:] {
		total = ops.Add(total, l)
	}
	m.loss = ops.Div(total, ops.ScalarConst(g, float32(len(losses))))
	m.preds = ops.ArgMax(lastLogits)

	var err error
	m.train, err = nn.BuildTrainingClipped(g, m.loss, params, nn.SGD, d.lr, 1)
	if err != nil {
		return err
	}
	m.trainOp = m.train.TrainOp()
	m.train.Fuse(m.preds)
	return nil
}

// TrainPlan exposes the training structure (loss, gradient and update
// fetch surface) for data-parallel training (internal/dist).
func (m *Model) TrainPlan() *nn.TrainPlan { return m.train }

// batch assembles images plus their template captions
// (BOS, class-word, EOS).
func (m *Model) batch() (*tensor.Tensor, *tensor.Tensor) {
	images, labels := m.data.Batch(m.dims.batch)
	return images, m.captionsFor(labels)
}

// captionsFor builds the template captions of a label batch.
func (m *Model) captionsFor(labels *tensor.Tensor) *tensor.Tensor {
	d := m.dims
	caps := tensor.New(d.capLen, d.batch)
	for b := 0; b < d.batch; b++ {
		caps.Set(capBOS, 0, b)
		caps.Set(float32(capFirstWord+int(labels.At(b))), 1, b)
		if d.capLen > 2 {
			caps.Set(capEOS, 2, b)
		}
	}
	return caps
}

// TrainSample implements core.TrainSampler: one training minibatch
// drawn from a generator derived entirely from seed.
func (m *Model) TrainSample(_ *runtime.Session, seed int64) (map[string]*tensor.Tensor, error) {
	d := m.dims
	images, labels := dataset.NewImageNet(d.classes, d.side, seed).Batch(d.batch)
	return map[string]*tensor.Tensor{"images": images, "captions": m.captionsFor(labels)}, nil
}

// Signature implements core.Model. Captions are time-major (T, B), so
// their example axis is dim 1; inference scores the fed caption
// (teacher-forced) alongside the final-step predictions.
func (m *Model) Signature(mode core.Mode) core.Signature {
	ins := []core.IOSpec{core.In("images", m.img), core.InAt("captions", m.caption, 1)}
	if mode == core.ModeTraining {
		return core.Signature{
			Inputs:  ins,
			Outputs: []core.IOSpec{core.ScalarOut("loss", m.loss)},
		}
	}
	return core.Signature{
		Inputs:  ins,
		Outputs: []core.IOSpec{core.Out("preds", m.preds), core.ScalarOut("loss", m.loss)},
	}
}

// Infer implements core.Inferencer.
func (m *Model) Infer(s *runtime.Session, feeds map[string]*tensor.Tensor) (map[string]*tensor.Tensor, error) {
	return core.RunInference(m, s, feeds)
}

// TrainStep implements core.Trainer.
func (m *Model) TrainStep(s *runtime.Session) (float64, error) {
	images, caps := m.batch()
	s.SetTraining(true)
	out, err := s.Run([]*graph.Node{m.loss, m.trainOp}, runtime.Feeds{m.img: images, m.caption: caps})
	if err != nil {
		return 0, err
	}
	m.lastLoss = float64(out[0].Data()[0])
	return m.lastLoss, nil
}

// Sample implements core.Sampler: one synthetic inference batch.
func (m *Model) Sample() map[string]*tensor.Tensor {
	images, caps := m.batch()
	return map[string]*tensor.Tensor{"images": images, "captions": caps}
}
