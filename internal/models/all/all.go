// Package all registers every Fathom workload. Import it for side
// effect wherever the full suite is needed:
//
//	import _ "repro/internal/models/all"
package all

import (
	_ "repro/internal/models/alexnet"
	_ "repro/internal/models/attention"
	_ "repro/internal/models/autoenc"
	_ "repro/internal/models/deepq"
	_ "repro/internal/models/memnet"
	_ "repro/internal/models/neuraltalk"
	_ "repro/internal/models/residual"
	_ "repro/internal/models/seq2seq"
	_ "repro/internal/models/speech"
	_ "repro/internal/models/vgg"
)
