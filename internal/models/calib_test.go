package models_test

import (
	"fmt"
	"repro/internal/core"
	_ "repro/internal/models/all"
	"testing"
)

func TestCalibrateRef(t *testing.T) {
	if testing.Short() {
		t.Skip("reference-preset calibration is slow")
	}
	for _, name := range []string{"alexnet", "autoenc", "deepq", "memnet", "residual", "seq2seq", "speech", "vgg"} {
		res, err := core.SetupAndRun(name, core.Config{Preset: core.PresetRef, Seed: 1},
			core.RunOptions{Mode: core.ModeTraining, Steps: 2, Warmup: 1})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		fmt.Printf("%-10s sim/step=%-14v wall/step=%-14v ops/step=%d types=%d\n",
			name, res.SimTime/2, res.WallTime/2, len(res.Events)/2, len(res.Profile.ByType))
	}
}
