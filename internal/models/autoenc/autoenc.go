// Package autoenc implements the Fathom autoenc workload: Kingma &
// Welling's variational autoencoder — a fully-connected encoder
// producing the mean and log-variance of a latent Gaussian, stochastic
// sampling through the reparameterization trick (a
// RandomStandardNormal operation in the forward pass: the model is
// unusual in requiring sampling during inference, as the paper notes),
// a fully-connected decoder, and the ELBO loss (sigmoid
// cross-entropy reconstruction + analytic KL divergence) optimized
// with Adam.
package autoenc

import (
	"math/rand"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/graph"
	"repro/internal/models/nn"
	"repro/internal/ops"
	"repro/internal/runtime"
	"repro/internal/tensor"
)

func init() {
	core.Register("autoenc", func() core.Model { return New() })
}

// Model is the autoenc workload.
type Model struct {
	cfg                  core.Config
	dims                 dims
	g                    *graph.Graph
	x                    *graph.Node
	loss, trainOp, recon *graph.Node
	train                *nn.TrainPlan
	data                 *dataset.MNIST
	lastLoss             float64
}

type dims struct {
	batch, hidden, latent int
	lr                    float32
}

func dimsFor(p core.Preset) dims {
	switch p {
	case core.PresetTiny:
		return dims{batch: 4, hidden: 32, latent: 4, lr: 1e-3}
	case core.PresetSmall:
		return dims{batch: 16, hidden: 128, latent: 10, lr: 1e-3}
	default:
		return dims{batch: 64, hidden: 512, latent: 20, lr: 1e-3}
	}
}

// input dimensionality (28×28 MNIST-like digits).
const inputDim = dataset.MNISTSide * dataset.MNISTSide

// New returns an unbuilt variational autoencoder.
func New() *Model { return &Model{} }

// Name implements core.Model.
func (m *Model) Name() string { return "autoenc" }

// Meta implements core.Model.
func (m *Model) Meta() core.Meta {
	return core.Meta{
		Name: "autoenc", Year: 2014, Ref: "Kingma & Welling, ICLR 2014",
		Style: "Full", Layers: 3, Task: "Unsupervised",
		Dataset: "MNIST",
		Purpose: "Variational autoencoder. An efficient, generative model for feature learning.",
	}
}

// Graph implements core.Model.
func (m *Model) Graph() *graph.Graph { return m.g }

// LastLoss implements core.LossReporter.
func (m *Model) LastLoss() float64 { return m.lastLoss }

// Setup implements core.Model.
func (m *Model) Setup(cfg core.Config) error {
	m.cfg = cfg
	m.dims = dimsFor(cfg.Preset)
	m.dims.batch = cfg.BatchOr(m.dims.batch)
	d := m.dims
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	rng := rand.New(rand.NewSource(seed))
	m.data = dataset.NewMNIST(seed + 1)

	g := graph.New()
	m.g = g
	m.x = g.Placeholder("images", d.batch, inputDim)

	var params []*graph.Node
	// Encoder.
	h, p := nn.Dense(g, rng, "enc1", m.x, inputDim, d.hidden, ops.Tanh)
	params = append(params, p...)
	mu, p := nn.Dense(g, rng, "mu", h, d.hidden, d.latent, nil)
	params = append(params, p...)
	logvar, p := nn.Dense(g, rng, "logvar", h, d.hidden, d.latent, nil)
	params = append(params, p...)

	// Reparameterization: z = μ + exp(logσ²/2)·ε, ε ~ N(0,1).
	eps := ops.RandomStandardNormal(g, d.batch, d.latent)
	std := ops.Exp(ops.Mul(logvar, ops.ScalarConst(g, 0.5)))
	z := ops.Add(mu, ops.Mul(std, eps))

	// Decoder.
	h, p = nn.Dense(g, rng, "dec1", z, d.latent, d.hidden, ops.Tanh)
	params = append(params, p...)
	logits, p := nn.Dense(g, rng, "dec2", h, d.hidden, inputDim, nil)
	params = append(params, p...)
	m.recon = ops.Sigmoid(logits)

	// ELBO: reconstruction + KL(q(z|x) ‖ N(0,1)), both mean-per-example.
	rec := ops.SigmoidCrossEntropy(logits, m.x)
	// KL = −½ Σ (1 + logσ² − μ² − σ²), averaged over the batch.
	one := ops.ScalarConst(g, 1)
	klInner := ops.Sub(ops.Add(one, logvar), ops.Add(ops.Square(mu), ops.Exp(logvar)))
	kl := ops.Div(
		ops.Mul(ops.Sum(klInner), ops.ScalarConst(g, -0.5)),
		ops.ScalarConst(g, float32(d.batch)),
	)
	m.loss = ops.Add(rec, kl)

	var err error
	m.train, err = nn.BuildTraining(g, m.loss, params, nn.Adam, d.lr)
	if err != nil {
		return err
	}
	m.trainOp = m.train.TrainOp()
	m.train.Fuse(m.recon)
	return nil
}

// TrainPlan exposes the training structure (loss, gradient and update
// fetch surface) for data-parallel training (internal/dist).
func (m *Model) TrainPlan() *nn.TrainPlan { return m.train }

// TrainSample implements core.TrainSampler: one training minibatch
// drawn from a generator derived entirely from seed.
func (m *Model) TrainSample(_ *runtime.Session, seed int64) (map[string]*tensor.Tensor, error) {
	images, _ := dataset.NewMNIST(seed).Batch(m.dims.batch)
	return map[string]*tensor.Tensor{"images": images}, nil
}

// Signature implements core.Model. Inference reconstructs the batch —
// sampling included, which is what makes the VAE's inference profile
// contain random ops.
func (m *Model) Signature(mode core.Mode) core.Signature {
	if mode == core.ModeTraining {
		return core.Signature{
			Inputs:  []core.IOSpec{core.In("images", m.x)},
			Outputs: []core.IOSpec{core.ScalarOut("loss", m.loss)},
		}
	}
	return core.Signature{
		Inputs:  []core.IOSpec{core.In("images", m.x)},
		Outputs: []core.IOSpec{core.Out("reconstruction", m.recon)},
	}
}

// Infer implements core.Inferencer.
func (m *Model) Infer(s *runtime.Session, feeds map[string]*tensor.Tensor) (map[string]*tensor.Tensor, error) {
	return core.RunInference(m, s, feeds)
}

// TrainStep implements core.Trainer.
func (m *Model) TrainStep(s *runtime.Session) (float64, error) {
	images, _ := m.data.Batch(m.dims.batch)
	s.SetTraining(true)
	out, err := s.Run([]*graph.Node{m.loss, m.trainOp}, runtime.Feeds{m.x: images})
	if err != nil {
		return 0, err
	}
	m.lastLoss = float64(out[0].Data()[0])
	return m.lastLoss, nil
}

// Sample implements core.Sampler: one synthetic inference batch.
func (m *Model) Sample() map[string]*tensor.Tensor {
	images, _ := m.data.Batch(m.dims.batch)
	return map[string]*tensor.Tensor{"images": images}
}
