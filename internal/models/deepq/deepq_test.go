package deepq

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/runtime"
	"repro/internal/tensor"
)

func TestReplayBufferRing(t *testing.T) {
	r := newReplayBuffer(3)
	for i := 0; i < 5; i++ {
		r.add(transition{action: i})
	}
	if r.len() != 3 {
		t.Fatalf("buffer should cap at 3, got %d", r.len())
	}
	// Oldest entries (0, 1) must have been evicted.
	seen := map[int]bool{}
	for _, tr := range r.buf {
		seen[tr.action] = true
	}
	if seen[0] || seen[1] || !seen[2] || !seen[3] || !seen[4] {
		t.Fatalf("ring eviction wrong: %v", seen)
	}
}

func TestReplayBufferSample(t *testing.T) {
	r := newReplayBuffer(10)
	for i := 0; i < 10; i++ {
		r.add(transition{action: i})
	}
	rng := rand.New(rand.NewSource(1))
	batch := r.sample(rng, 32)
	if len(batch) != 32 {
		t.Fatalf("sample size %d", len(batch))
	}
	for _, tr := range batch {
		if tr.action < 0 || tr.action > 9 {
			t.Fatal("sampled transition out of range")
		}
	}
}

func TestSetupPrefillsReplay(t *testing.T) {
	m := New()
	if err := m.Setup(core.Config{Preset: core.PresetTiny, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	if m.replay.len() < m.dims.batch {
		t.Fatalf("replay should be prefilled to at least batch size: %d < %d",
			m.replay.len(), m.dims.batch)
	}
}

func TestTargetSyncCopiesWeights(t *testing.T) {
	m := New()
	if err := m.Setup(core.Config{Preset: core.PresetTiny, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	// Perturb online weights, then sync.
	m.onlineVars[0].Value().Data()[0] = 123
	if m.targetVars[0].Value().Data()[0] == 123 {
		t.Fatal("target should not alias online weights")
	}
	m.syncTarget()
	if m.targetVars[0].Value().Data()[0] != 123 {
		t.Fatal("sync should copy online weights to target")
	}
	// And the copy must be deep.
	m.onlineVars[0].Value().Data()[0] = 7
	if m.targetVars[0].Value().Data()[0] != 123 {
		t.Fatal("target must hold an independent copy")
	}
}

func TestEpsilonAnneals(t *testing.T) {
	m := New()
	if err := m.Setup(core.Config{Preset: core.PresetTiny, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	s := runtime.NewSession(m.Graph(), runtime.WithSeed(1))
	e0 := m.Epsilon()
	for i := 0; i < 20; i++ {
		if err := core.Step(m, s, core.ModeTraining); err != nil {
			t.Fatal(err)
		}
	}
	if m.Epsilon() >= e0 {
		t.Fatalf("epsilon should anneal: %v -> %v", e0, m.Epsilon())
	}
}

func TestTrainingUpdatesOnlineWeights(t *testing.T) {
	m := New()
	if err := m.Setup(core.Config{Preset: core.PresetTiny, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	s := runtime.NewSession(m.Graph(), runtime.WithSeed(1))
	before := m.onlineVars[0].Value().Clone()
	for i := 0; i < 3; i++ {
		if err := core.Step(m, s, core.ModeTraining); err != nil {
			t.Fatal(err)
		}
	}
	if tensor.MaxAbsDiff(before, m.onlineVars[0].Value()) == 0 {
		t.Fatal("training steps should update the Q-network")
	}
}

func TestInferenceDoesNotTrain(t *testing.T) {
	m := New()
	if err := m.Setup(core.Config{Preset: core.PresetTiny, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	s := runtime.NewSession(m.Graph(), runtime.WithSeed(1))
	before := m.onlineVars[0].Value().Clone()
	for i := 0; i < 5; i++ {
		if err := core.Step(m, s, core.ModeInference); err != nil {
			t.Fatal(err)
		}
	}
	if tensor.MaxAbsDiff(before, m.onlineVars[0].Value()) != 0 {
		t.Fatal("inference must not change weights")
	}
}

func TestEnvExposed(t *testing.T) {
	m := New()
	if err := m.Setup(core.Config{Preset: core.PresetTiny, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	if m.Env() == nil || m.Env().NumActions() < 2 {
		t.Fatal("environment should be live after setup")
	}
}
