// Package deepq implements the Fathom deepq workload: Mnih et al.'s
// deep Q-network — a convolutional action-value network (8×8/4, 4×4/2
// convolutions and two dense layers in the 2013 configuration) trained
// by Q-learning with experience replay, an ε-greedy behaviour policy,
// a periodically synchronized target network, Huber-clipped TD errors
// and RMSProp. The environment is the package ale game simulator
// (DESIGN.md §4.3); training steps interleave acting in the emulator
// with minibatch updates, exactly like the original agent.
package deepq

import (
	"math/rand"

	"repro/internal/ale"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/models/nn"
	"repro/internal/ops"
	"repro/internal/runtime"
	"repro/internal/tensor"
)

func init() {
	core.Register("deepq", func() core.Model { return New() })
}

// Model is the deepq workload.
type Model struct {
	cfg  core.Config
	dims dims
	g    *graph.Graph

	// Online network (training batch) and its action-selection twin
	// (batch 1), sharing variables.
	stateB  *graph.Node // (B, 84, 84, hist)
	onehotB *graph.Node // (B, actions)
	targetY *graph.Node // (B)
	qB      *graph.Node // (B, actions)
	loss    *graph.Node
	trainOp *graph.Node
	train   *nn.TrainPlan

	stateOne *graph.Node // (1, 84, 84, hist)
	qOne     *graph.Node // (1, actions)

	stateNext *graph.Node // (B, 84, 84, hist) through the target net
	qTarget   *graph.Node // (B, actions)

	onlineVars, targetVars []*graph.Node

	env      *ale.Env
	replay   *replayBuffer
	rng      *rand.Rand
	steps    int
	epsilon  float64
	lastLoss float64
}

type dims struct {
	batch      int
	hist       int
	c1, c2, fc int
	replayCap  int
	syncEvery  int
	gamma      float32
	lr         float32
}

func dimsFor(p core.Preset) dims {
	switch p {
	case core.PresetTiny:
		return dims{batch: 4, hist: 2, c1: 4, c2: 8, fc: 32, replayCap: 64, syncEvery: 8, gamma: 0.99, lr: 25e-5}
	case core.PresetSmall:
		return dims{batch: 8, hist: 4, c1: 8, c2: 16, fc: 128, replayCap: 200, syncEvery: 16, gamma: 0.99, lr: 25e-5}
	default:
		// The 2013 DQN configuration: 16 and 32 filters, 256-unit FC.
		return dims{batch: 32, hist: 4, c1: 16, c2: 32, fc: 256, replayCap: 500, syncEvery: 32, gamma: 0.99, lr: 25e-5}
	}
}

// New returns an unbuilt DQN.
func New() *Model { return &Model{} }

// Name implements core.Model.
func (m *Model) Name() string { return "deepq" }

// Meta implements core.Model.
func (m *Model) Meta() core.Meta {
	return core.Meta{
		Name: "deepq", Year: 2013, Ref: "Mnih et al., NIPS DL Workshop 2013",
		Style: "Convolutional, Full", Layers: 5, Task: "Reinforcement",
		Dataset: "Atari ALE",
		Purpose: "Atari-playing neural network from DeepMind. Achieves superhuman performance on the majority of Atari 2600 games, without any preconceptions.",
	}
}

// Graph implements core.Model.
func (m *Model) Graph() *graph.Graph { return m.g }

// LastLoss implements core.LossReporter.
func (m *Model) LastLoss() float64 { return m.lastLoss }

// buildNet constructs the Q-network body on input x, returning the
// action-value head and the variables created.
func (m *Model) buildNet(g *graph.Graph, rng *rand.Rand, prefix string, x *graph.Node, actions int) (*graph.Node, []*graph.Node) {
	d := m.dims
	var params []*graph.Node
	h, p := nn.Conv(g, rng, prefix+"/conv1", x, 8, 8, d.c1, 4, 0, ops.Relu)
	params = append(params, p...)
	h, p = nn.Conv(g, rng, prefix+"/conv2", h, 4, 4, d.c2, 2, 0, ops.Relu)
	params = append(params, p...)
	b := x.Shape()[0]
	flat := h.Shape()[1] * h.Shape()[2] * h.Shape()[3]
	h = ops.Reshape(h, b, flat)
	h, p = nn.Dense(g, rng, prefix+"/fc1", h, flat, d.fc, ops.Relu)
	params = append(params, p...)
	q, p := nn.Dense(g, rng, prefix+"/q", h, d.fc, actions, nil)
	params = append(params, p...)
	return q, params
}

// buildShared re-applies existing variables to a new input (the
// batch-1 action path shares the online network's weights).
func buildShared(vars []*graph.Node, x *graph.Node, d dims, actions int) *graph.Node {
	h := ops.Relu(ops.Add(ops.Conv2D(x, vars[0], 4, 4, 0, 0), vars[1]))
	h = ops.Relu(ops.Add(ops.Conv2D(h, vars[2], 2, 2, 0, 0), vars[3]))
	b := x.Shape()[0]
	flat := h.Shape()[1] * h.Shape()[2] * h.Shape()[3]
	h = ops.Reshape(h, b, flat)
	h = ops.Relu(ops.Add(ops.MatMul(h, vars[4]), vars[5]))
	return ops.Add(ops.MatMul(h, vars[6]), vars[7])
}

// Setup implements core.Model.
func (m *Model) Setup(cfg core.Config) error {
	m.cfg = cfg
	m.dims = dimsFor(cfg.Preset)
	m.dims.batch = cfg.BatchOr(m.dims.batch)
	d := m.dims
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	m.rng = rand.New(rand.NewSource(seed))
	m.env = ale.NewEnv(ale.NewPong(), ale.DefaultFrameSkip, d.hist, seed+1)
	m.replay = newReplayBuffer(d.replayCap)
	m.epsilon = 1.0

	actions := m.env.NumActions()
	g := graph.New()
	m.g = g
	rng := rand.New(rand.NewSource(seed + 2))

	m.stateB = g.Placeholder("states", d.batch, ale.Height, ale.Width, d.hist)
	m.onehotB = g.Placeholder("actions_onehot", d.batch, actions)
	m.targetY = g.Placeholder("target_q", d.batch)
	m.stateOne = g.Placeholder("state1", 1, ale.Height, ale.Width, d.hist)
	m.stateNext = g.Placeholder("next_states", d.batch, ale.Height, ale.Width, d.hist)

	m.qB, m.onlineVars = m.buildNet(g, rng, "online", m.stateB, actions)
	m.qOne = buildShared(m.onlineVars, m.stateOne, d, actions)
	m.qTarget, m.targetVars = m.buildNet(g, rng, "target", m.stateNext, actions)
	m.syncTarget()

	// TD loss: Huber(Q(s,a) − y) with the DQN error clipping.
	qsel := ops.Sum(ops.Mul(m.qB, m.onehotB), 1)
	diff := ops.Sub(qsel, m.targetY)
	m.loss = ops.Mean(ops.Huber(diff, 1))
	var err error
	m.train, err = nn.BuildTraining(g, m.loss, m.onlineVars, nn.RMSProp, d.lr)
	if err != nil {
		return err
	}
	m.trainOp = m.train.TrainOp()
	// Keep every externally fetched Q head materialized: the batch
	// head (TD targets), the batch-1 action path, and the target net.
	m.train.Fuse(m.qB, m.qOne, m.qTarget)

	// Prefill the replay buffer with a random policy (the DQN
	// "replay start size") so the first training step already
	// performs a minibatch update.
	for m.replay.len() < d.batch {
		state := m.env.State().Reshape(1, ale.Height, ale.Width, d.hist)
		a := ale.Action(m.rng.Intn(m.env.NumActions()))
		reward, done := m.env.Step(a)
		next := m.env.State().Reshape(1, ale.Height, ale.Width, d.hist)
		m.replay.add(transition{state: state, action: int(a), reward: float32(reward), next: next, done: done})
		if done {
			m.env.Reset()
		}
	}
	// Start ε below 1 so action selection exercises the network.
	m.epsilon = 0.5
	return nil
}

// syncTarget copies online weights into the target network.
func (m *Model) syncTarget() {
	for i, v := range m.onlineVars {
		m.targetVars[i].SetValue(v.Value().Clone())
	}
}

// act runs ε-greedy action selection through the batch-1 network.
func (m *Model) act(s *runtime.Session) (ale.Action, *tensor.Tensor, error) {
	state := m.env.State().Reshape(1, ale.Height, ale.Width, m.dims.hist)
	if m.rng.Float64() < m.epsilon {
		return ale.Action(m.rng.Intn(m.env.NumActions())), state, nil
	}
	out, err := s.Run([]*graph.Node{m.qOne}, runtime.Feeds{m.stateOne: state})
	if err != nil {
		return 0, nil, err
	}
	q := out[0].Data()
	best := 0
	for a := 1; a < len(q); a++ {
		if q[a] > q[best] {
			best = a
		}
	}
	return ale.Action(best), state, nil
}

// Signature implements core.Model. The serving contract is action-
// value evaluation: feed a batch of preprocessed screen states through
// the online network and get Q-values per action. (Self-driven
// inference stepping — acting in the emulator — goes through
// InferStep instead.)
func (m *Model) Signature(mode core.Mode) core.Signature {
	if mode == core.ModeTraining {
		return core.Signature{
			Inputs: []core.IOSpec{
				core.In("states", m.stateB),
				core.In("actions_onehot", m.onehotB),
				core.In("target_q", m.targetY),
			},
			Outputs: []core.IOSpec{core.ScalarOut("loss", m.loss)},
		}
	}
	return core.Signature{
		Inputs:  []core.IOSpec{core.In("states", m.stateB)},
		Outputs: []core.IOSpec{core.Out("q", m.qB)},
	}
}

// Infer implements core.Inferencer: request-driven Q-value evaluation
// over the online network's batch path.
func (m *Model) Infer(s *runtime.Session, feeds map[string]*tensor.Tensor) (map[string]*tensor.Tensor, error) {
	return core.RunInference(m, s, feeds)
}

// InferStep implements core.InferenceStepper: greedy policy
// evaluation — one nearly-greedy action in the emulator per step, one
// forward pass per action.
func (m *Model) InferStep(s *runtime.Session) error {
	saved := m.epsilon
	m.epsilon = 0.05
	a, _, err := m.act(s)
	m.epsilon = saved
	if err != nil {
		return err
	}
	if _, done := m.env.Step(a); done {
		m.env.Reset()
	}
	return nil
}

// TrainStep implements core.Trainer. A training step acts once in the
// emulator (storing the transition) and performs one minibatch
// Q-learning update.
func (m *Model) TrainStep(s *runtime.Session) (float64, error) {
	s.SetTraining(true)
	d := m.dims

	// Behave in the environment.
	a, state, err := m.act(s)
	if err != nil {
		return 0, err
	}
	reward, done := m.env.Step(a)
	next := m.env.State().Reshape(1, ale.Height, ale.Width, d.hist)
	m.replay.add(transition{state: state, action: int(a), reward: float32(reward), next: next, done: done})
	if done {
		m.env.Reset()
	}
	m.steps++
	// Anneal exploration toward 0.1.
	if m.epsilon > 0.1 {
		m.epsilon -= 0.005
	}

	if m.replay.len() < d.batch {
		return m.lastLoss, nil
	}

	// Assemble the minibatch.
	batch := m.replay.sample(m.rng, d.batch)
	states := tensor.New(d.batch, ale.Height, ale.Width, d.hist)
	nexts := tensor.New(d.batch, ale.Height, ale.Width, d.hist)
	onehot := tensor.New(d.batch, m.env.NumActions())
	stride := ale.Height * ale.Width * d.hist
	for i, tr := range batch {
		copy(states.Data()[i*stride:(i+1)*stride], tr.state.Data())
		copy(nexts.Data()[i*stride:(i+1)*stride], tr.next.Data())
		onehot.Set(1, i, tr.action)
	}

	// Bootstrap targets from the frozen network.
	out, err := s.Run([]*graph.Node{m.qTarget}, runtime.Feeds{m.stateNext: nexts})
	if err != nil {
		return 0, err
	}
	qn := out[0]
	y := tensor.New(d.batch)
	for i, tr := range batch {
		best := qn.At(i, 0)
		for a := 1; a < m.env.NumActions(); a++ {
			if v := qn.At(i, a); v > best {
				best = v
			}
		}
		target := tr.reward
		if !tr.done {
			target += d.gamma * best
		}
		y.Set(target, i)
	}

	outs, err := s.Run([]*graph.Node{m.loss, m.trainOp}, runtime.Feeds{
		m.stateB: states, m.onehotB: onehot, m.targetY: y,
	})
	if err != nil {
		return 0, err
	}
	m.lastLoss = float64(outs[0].Data()[0])

	if m.steps%d.syncEvery == 0 {
		m.syncTarget()
	}
	return m.lastLoss, nil
}

// TrainPlan exposes the training structure (loss, gradient and update
// fetch surface) for data-parallel training (internal/dist).
func (m *Model) TrainPlan() *nn.TrainPlan { return m.train }

// TrainSample implements core.TrainSampler. The self-feeding TrainStep
// interleaves emulator acting with replay sampling — policy-coupled
// state that cannot be partitioned deterministically — so the
// data-parallel path trains the Q-network on synthetic transitions
// instead: screen-shaped uniform states, random actions, DQN-clipped
// rewards {-1, 0, +1} and ~5% terminal flags, all drawn from a
// generator seeded only by seed. Q-targets bootstrap through the
// frozen target network on the provided session (a pure read of its
// variables, which dist keeps in lockstep across replicas), exactly
// like the replay path.
func (m *Model) TrainSample(s *runtime.Session, seed int64) (map[string]*tensor.Tensor, error) {
	d := m.dims
	rng := rand.New(rand.NewSource(seed))
	actions := m.env.NumActions()
	states := tensor.RandUniform(rng, 0, 1, d.batch, ale.Height, ale.Width, d.hist)
	nexts := tensor.RandUniform(rng, 0, 1, d.batch, ale.Height, ale.Width, d.hist)
	onehot := tensor.New(d.batch, actions)
	rewards := make([]float32, d.batch)
	dones := make([]bool, d.batch)
	for i := 0; i < d.batch; i++ {
		onehot.Set(1, i, rng.Intn(actions))
		rewards[i] = float32(rng.Intn(3) - 1)
		dones[i] = rng.Float64() < 0.05
	}
	out, err := s.Run([]*graph.Node{m.qTarget}, runtime.Feeds{m.stateNext: nexts})
	if err != nil {
		return nil, err
	}
	qn := out[0]
	y := tensor.New(d.batch)
	for i := 0; i < d.batch; i++ {
		best := qn.At(i, 0)
		for a := 1; a < actions; a++ {
			if v := qn.At(i, a); v > best {
				best = v
			}
		}
		target := rewards[i]
		if !dones[i] {
			target += d.gamma * best
		}
		y.Set(target, i)
	}
	return map[string]*tensor.Tensor{"states": states, "actions_onehot": onehot, "target_q": y}, nil
}

// OnTrainStep is the data-parallel step hook (dist.StepListener):
// after global optimizer step `step` has been applied on this replica,
// sync the target network every syncEvery steps, mirroring the
// self-feeding TrainStep's cadence. The online variables are in
// lockstep across replicas when dist invokes it, so the copied target
// weights stay in lockstep too.
func (m *Model) OnTrainStep(step int) {
	if (step+1)%m.dims.syncEvery == 0 {
		m.syncTarget()
	}
}

// Env exposes the emulator (examples and tests).
func (m *Model) Env() *ale.Env { return m.env }

// Epsilon returns the current exploration rate.
func (m *Model) Epsilon() float64 { return m.epsilon }

// transition is one replay-buffer entry.
type transition struct {
	state  *tensor.Tensor
	action int
	reward float32
	next   *tensor.Tensor
	done   bool
}

// replayBuffer is the DQN's experience replay: a bounded ring with
// uniform sampling.
type replayBuffer struct {
	buf  []transition
	cap  int
	next int
	full bool
}

func newReplayBuffer(capacity int) *replayBuffer {
	return &replayBuffer{buf: make([]transition, 0, capacity), cap: capacity}
}

func (r *replayBuffer) add(t transition) {
	if len(r.buf) < r.cap {
		r.buf = append(r.buf, t)
		return
	}
	r.buf[r.next] = t
	r.next = (r.next + 1) % r.cap
	r.full = true
}

func (r *replayBuffer) len() int { return len(r.buf) }

func (r *replayBuffer) sample(rng *rand.Rand, n int) []transition {
	out := make([]transition, n)
	for i := range out {
		out[i] = r.buf[rng.Intn(len(r.buf))]
	}
	return out
}
