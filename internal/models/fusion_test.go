package models_test

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"

	_ "repro/internal/models/all"
)

// TestEpilogueFusionFires pins the tier-2 epilogue-fusion pass as an
// active part of every workload's Setup: each graph must contain at
// least one fused node (a MatMul/Conv2D that absorbed an elementwise
// consumer — its op name carries a "+"). A workload dropping to zero
// means the pass regressed or Setup stopped calling TrainPlan.Fuse.
func TestEpilogueFusionFires(t *testing.T) {
	for _, name := range core.Names() {
		m, err := core.New(name)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Setup(core.Config{Preset: core.PresetTiny, Seed: 7}); err != nil {
			t.Fatalf("%s: Setup: %v", name, err)
		}
		fused := 0
		for _, n := range m.Graph().Nodes() {
			if n.Kind() == graph.KindOp && strings.Contains(n.OpName(), "+") {
				fused++
			}
		}
		t.Logf("%s: %d fused nodes", name, fused)
		if fused == 0 {
			t.Errorf("%s: epilogue fusion absorbed nothing", name)
		}
	}
}
