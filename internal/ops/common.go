// Package ops implements the primitive operation library of the Fathom
// reproduction: the analogue of TensorFlow's kernel set. Every op
// implements graph.Op; differentiable ops implement graph.GradOp and
// build their gradients as further primitive operations, so backward
// passes are profiled at the same granularity as forward passes.
//
// For each operation the package exposes a builder function (ops.Add,
// ops.MatMul, ...) that panics on shape errors — model construction
// bugs are programming errors, mirroring how TensorFlow's Python front
// end raises immediately at graph-build time.
package ops

import (
	"fmt"
	"math"

	"repro/internal/graph"
	"repro/internal/tensor"
)

func powf(x, y float64) float64 { return math.Pow(x, y) }

// sameShape returns in[0] copied, validating arity.
func copyShape(s []int) []int { return append([]int(nil), s...) }

func wantInputs(name string, in [][]int, n int) error {
	if len(in) != n {
		return fmt.Errorf("%s expects %d inputs, got %d", name, n, len(in))
	}
	return nil
}

// ScalarConst adds a scalar constant node.
func ScalarConst(g *graph.Graph, v float32) *graph.Node {
	return g.Const(fmt.Sprintf("const_%g", v), tensor.Scalar(v))
}

// ConstTensor adds a tensor constant node.
func ConstTensor(g *graph.Graph, name string, t *tensor.Tensor) *graph.Node {
	return g.Const(name, t)
}

// elemBytes is the storage size of one element.
const elemBytes = 4

func defaultBytes(in [][]int, out []int) int64 {
	var b int64
	for _, s := range in {
		b += int64(tensor.SizeOf(s))
	}
	b += int64(tensor.SizeOf(out))
	return b * elemBytes
}
