package ops

import (
	"fmt"
	"math"

	"repro/internal/graph"
	"repro/internal/tensor"
)

// ---- binary elementwise ops with broadcasting (class C) ----

// binKind enumerates the broadcasting binary arithmetic ops.
type binKind int

const (
	binAdd binKind = iota
	binSub
	binMul
	binDiv
	binMaximum
	binMinimum
)

var binNames = [...]string{"Add", "Sub", "Mul", "Div", "Maximum", "Minimum"}

type binOp struct{ kind binKind }

func (o binOp) Name() string         { return binNames[o.kind] }
func (o binOp) Class() graph.OpClass { return graph.ClassElementwise }

func (o binOp) InferShape(in [][]int) ([]int, error) {
	if err := wantInputs(o.Name(), in, 2); err != nil {
		return nil, err
	}
	return tensor.BroadcastShapes(in[0], in[1])
}

func (o binOp) fn() func(a, b float32) float32 {
	switch o.kind {
	case binAdd:
		return func(a, b float32) float32 { return a + b }
	case binSub:
		return func(a, b float32) float32 { return a - b }
	case binMul:
		return func(a, b float32) float32 { return a * b }
	case binDiv:
		return func(a, b float32) float32 { return a / b }
	case binMaximum:
		return func(a, b float32) float32 {
			if a > b {
				return a
			}
			return b
		}
	case binMinimum:
		return func(a, b float32) float32 {
			if a < b {
				return a
			}
			return b
		}
	}
	panic("ops: unhandled binary kind")
}

func (o binOp) Forward(ctx *graph.ExecContext, in []*tensor.Tensor) (*tensor.Tensor, error) {
	return tensor.BinaryOp(ctx.Pool, in[0], in[1], o.fn())
}

// ForwardInto implements graph.IntoOp.
func (o binOp) ForwardInto(ctx *graph.ExecContext, in []*tensor.Tensor, out *tensor.Tensor) error {
	return tensor.BinaryOpInto(ctx.Pool, out, in[0], in[1], o.fn())
}

func (o binOp) Cost(in [][]int, out []int) (int64, int64) {
	return int64(tensor.SizeOf(out)), defaultBytes(in, out)
}

// sumToShape reduces grad to the given input shape, undoing
// broadcasting. When shapes match it returns grad unchanged, keeping
// profiles free of no-op reductions.
func sumToShape(g *graph.Graph, grad *graph.Node, shape []int) *graph.Node {
	if tensor.SameShape(grad.Shape(), shape) {
		return grad
	}
	return g.MustApply(sumToOp{target: copyShape(shape)}, grad)
}

func (o binOp) Grad(g *graph.Graph, n *graph.Node, grad *graph.Node) ([]*graph.Node, error) {
	a, b := n.Inputs()[0], n.Inputs()[1]
	switch o.kind {
	case binAdd:
		return []*graph.Node{sumToShape(g, grad, a.Shape()), sumToShape(g, grad, b.Shape())}, nil
	case binSub:
		return []*graph.Node{sumToShape(g, grad, a.Shape()), sumToShape(g, Neg(grad), b.Shape())}, nil
	case binMul:
		return []*graph.Node{
			sumToShape(g, Mul(grad, b), a.Shape()),
			sumToShape(g, Mul(grad, a), b.Shape()),
		}, nil
	case binDiv:
		ga := Div(grad, b)
		gb := Neg(Mul(grad, Div(n, b))) // -grad·(a/b)/b
		return []*graph.Node{sumToShape(g, ga, a.Shape()), sumToShape(g, gb, b.Shape())}, nil
	case binMaximum:
		maskA := LessEqual(b, a) // 1 where a wins (ties to a, matching Forward)
		maskB := Sub(ScalarConst(g, 1), maskA)
		return []*graph.Node{
			sumToShape(g, Mul(grad, maskA), a.Shape()),
			sumToShape(g, Mul(grad, maskB), b.Shape()),
		}, nil
	case binMinimum:
		maskA := LessEqual(a, b)
		maskB := Sub(ScalarConst(g, 1), maskA)
		return []*graph.Node{
			sumToShape(g, Mul(grad, maskA), a.Shape()),
			sumToShape(g, Mul(grad, maskB), b.Shape()),
		}, nil
	}
	return nil, fmt.Errorf("unreachable binary kind")
}

// Add returns a+b with broadcasting.
func Add(a, b *graph.Node) *graph.Node { return a.Graph().MustApply(binOp{binAdd}, a, b) }

// Sub returns a-b with broadcasting.
func Sub(a, b *graph.Node) *graph.Node { return a.Graph().MustApply(binOp{binSub}, a, b) }

// Mul returns a*b with broadcasting.
func Mul(a, b *graph.Node) *graph.Node { return a.Graph().MustApply(binOp{binMul}, a, b) }

// Div returns a/b with broadcasting.
func Div(a, b *graph.Node) *graph.Node { return a.Graph().MustApply(binOp{binDiv}, a, b) }

// Maximum returns max(a,b) with broadcasting.
func Maximum(a, b *graph.Node) *graph.Node { return a.Graph().MustApply(binOp{binMaximum}, a, b) }

// Minimum returns min(a,b) with broadcasting.
func Minimum(a, b *graph.Node) *graph.Node { return a.Graph().MustApply(binOp{binMinimum}, a, b) }

// ---- comparisons (class C, non-differentiable masks) ----

type lessEqualOp struct{}

func (lessEqualOp) Name() string         { return "LessEqual" }
func (lessEqualOp) Class() graph.OpClass { return graph.ClassElementwise }
func (lessEqualOp) InferShape(in [][]int) ([]int, error) {
	if err := wantInputs("LessEqual", in, 2); err != nil {
		return nil, err
	}
	return tensor.BroadcastShapes(in[0], in[1])
}
func lessEqualFn(a, b float32) float32 {
	if a <= b {
		return 1
	}
	return 0
}

func (lessEqualOp) Forward(ctx *graph.ExecContext, in []*tensor.Tensor) (*tensor.Tensor, error) {
	return tensor.BinaryOp(ctx.Pool, in[0], in[1], lessEqualFn)
}

// ForwardInto implements graph.IntoOp.
func (lessEqualOp) ForwardInto(ctx *graph.ExecContext, in []*tensor.Tensor, out *tensor.Tensor) error {
	return tensor.BinaryOpInto(ctx.Pool, out, in[0], in[1], lessEqualFn)
}

// LessEqual returns the 0/1 mask of a <= b (no gradient).
func LessEqual(a, b *graph.Node) *graph.Node { return a.Graph().MustApply(lessEqualOp{}, a, b) }

type equalOp struct{}

func (equalOp) Name() string         { return "Equal" }
func (equalOp) Class() graph.OpClass { return graph.ClassElementwise }
func (equalOp) InferShape(in [][]int) ([]int, error) {
	if err := wantInputs("Equal", in, 2); err != nil {
		return nil, err
	}
	return tensor.BroadcastShapes(in[0], in[1])
}
func equalFn(a, b float32) float32 {
	if a == b {
		return 1
	}
	return 0
}

func (equalOp) Forward(ctx *graph.ExecContext, in []*tensor.Tensor) (*tensor.Tensor, error) {
	return tensor.BinaryOp(ctx.Pool, in[0], in[1], equalFn)
}

// ForwardInto implements graph.IntoOp.
func (equalOp) ForwardInto(ctx *graph.ExecContext, in []*tensor.Tensor, out *tensor.Tensor) error {
	return tensor.BinaryOpInto(ctx.Pool, out, in[0], in[1], equalFn)
}

// Equal returns the 0/1 mask of a == b (no gradient).
func Equal(a, b *graph.Node) *graph.Node { return a.Graph().MustApply(equalOp{}, a, b) }

// ---- unary elementwise ops (class C) ----

type unKind int

const (
	unNeg unKind = iota
	unExp
	unLog
	unSqrt
	unSquare
	unTanh
	unSigmoid
	unRelu
)

var unNames = [...]string{"Neg", "Exp", "Log", "Sqrt", "Square", "Tanh", "Sigmoid", "Relu"}

type unOp struct{ kind unKind }

func (o unOp) Name() string         { return unNames[o.kind] }
func (o unOp) Class() graph.OpClass { return graph.ClassElementwise }

func (o unOp) InferShape(in [][]int) ([]int, error) {
	if err := wantInputs(o.Name(), in, 1); err != nil {
		return nil, err
	}
	return copyShape(in[0]), nil
}

func (o unOp) fn() func(x float32) float32 {
	switch o.kind {
	case unNeg:
		return func(x float32) float32 { return -x }
	case unExp:
		return func(x float32) float32 { return float32(math.Exp(float64(x))) }
	case unLog:
		return func(x float32) float32 { return float32(math.Log(float64(x))) }
	case unSqrt:
		return func(x float32) float32 { return float32(math.Sqrt(float64(x))) }
	case unSquare:
		return func(x float32) float32 { return x * x }
	case unTanh:
		return func(x float32) float32 { return float32(math.Tanh(float64(x))) }
	case unSigmoid:
		return func(x float32) float32 { return float32(1 / (1 + math.Exp(-float64(x)))) }
	case unRelu:
		return func(x float32) float32 {
			if x > 0 {
				return x
			}
			return 0
		}
	}
	panic("ops: unhandled unary kind")
}

func (o unOp) Forward(ctx *graph.ExecContext, in []*tensor.Tensor) (*tensor.Tensor, error) {
	return tensor.UnaryOp(ctx.Pool, in[0], o.fn()), nil
}

// ForwardInto implements graph.IntoOp.
func (o unOp) ForwardInto(ctx *graph.ExecContext, in []*tensor.Tensor, out *tensor.Tensor) error {
	return tensor.UnaryOpInto(ctx.Pool, out, in[0], o.fn())
}

func (o unOp) Cost(in [][]int, out []int) (int64, int64) {
	return int64(tensor.SizeOf(out)), defaultBytes(in, out)
}

func (o unOp) Grad(g *graph.Graph, n *graph.Node, grad *graph.Node) ([]*graph.Node, error) {
	x := n.Inputs()[0]
	switch o.kind {
	case unNeg:
		return []*graph.Node{Neg(grad)}, nil
	case unExp:
		return []*graph.Node{Mul(grad, n)}, nil
	case unLog:
		return []*graph.Node{Div(grad, x)}, nil
	case unSqrt:
		half := ScalarConst(g, 0.5)
		return []*graph.Node{Div(Mul(grad, half), n)}, nil
	case unSquare:
		two := ScalarConst(g, 2)
		return []*graph.Node{Mul(grad, Mul(x, two))}, nil
	case unTanh:
		one := ScalarConst(g, 1)
		return []*graph.Node{Mul(grad, Sub(one, Mul(n, n)))}, nil
	case unSigmoid:
		one := ScalarConst(g, 1)
		return []*graph.Node{Mul(grad, Mul(n, Sub(one, n)))}, nil
	case unRelu:
		return []*graph.Node{g.MustApply(reluGradOp{}, grad, x)}, nil
	}
	return nil, fmt.Errorf("unreachable unary kind")
}

// Neg returns -x.
func Neg(x *graph.Node) *graph.Node { return x.Graph().MustApply(unOp{unNeg}, x) }

// Exp returns eˣ.
func Exp(x *graph.Node) *graph.Node { return x.Graph().MustApply(unOp{unExp}, x) }

// Log returns ln x.
func Log(x *graph.Node) *graph.Node { return x.Graph().MustApply(unOp{unLog}, x) }

// Sqrt returns √x.
func Sqrt(x *graph.Node) *graph.Node { return x.Graph().MustApply(unOp{unSqrt}, x) }

// Square returns x².
func Square(x *graph.Node) *graph.Node { return x.Graph().MustApply(unOp{unSquare}, x) }

// Tanh returns tanh x.
func Tanh(x *graph.Node) *graph.Node { return x.Graph().MustApply(unOp{unTanh}, x) }

// Sigmoid returns 1/(1+e⁻ˣ).
func Sigmoid(x *graph.Node) *graph.Node { return x.Graph().MustApply(unOp{unSigmoid}, x) }

// Relu returns max(x, 0).
func Relu(x *graph.Node) *graph.Node { return x.Graph().MustApply(unOp{unRelu}, x) }

// ClippedRelu returns min(max(x,0), cap) — Deep Speech's activation.
func ClippedRelu(x *graph.Node, clipCap float32) *graph.Node {
	return Minimum(Relu(x), ScalarConst(x.Graph(), clipCap))
}

// reluGradOp routes grad where x > 0 (TensorFlow's ReluGrad).
type reluGradOp struct{}

func (reluGradOp) Name() string         { return "ReluGrad" }
func (reluGradOp) Class() graph.OpClass { return graph.ClassElementwise }
func (reluGradOp) InferShape(in [][]int) ([]int, error) {
	if err := wantInputs("ReluGrad", in, 2); err != nil {
		return nil, err
	}
	if !tensor.SameShape(in[0], in[1]) {
		return nil, fmt.Errorf("ReluGrad shapes %v vs %v", in[0], in[1])
	}
	return copyShape(in[0]), nil
}
func reluGradFn(gv, xv float32) float32 {
	if xv > 0 {
		return gv
	}
	return 0
}

func (reluGradOp) Forward(ctx *graph.ExecContext, in []*tensor.Tensor) (*tensor.Tensor, error) {
	return tensor.BinaryOp(ctx.Pool, in[0], in[1], reluGradFn)
}

// ForwardInto implements graph.IntoOp.
func (reluGradOp) ForwardInto(ctx *graph.ExecContext, in []*tensor.Tensor, out *tensor.Tensor) error {
	return tensor.BinaryOpInto(ctx.Pool, out, in[0], in[1], reluGradFn)
}

// ---- Pow with constant exponent (class C) ----

type powOp struct{ e float32 }

func (powOp) Name() string         { return "Pow" }
func (powOp) Class() graph.OpClass { return graph.ClassElementwise }
func (o powOp) InferShape(in [][]int) ([]int, error) {
	if err := wantInputs("Pow", in, 1); err != nil {
		return nil, err
	}
	return copyShape(in[0]), nil
}
func (o powOp) fn() func(x float32) float32 {
	e := float64(o.e)
	return func(x float32) float32 {
		return float32(math.Pow(float64(x), e))
	}
}

func (o powOp) Forward(ctx *graph.ExecContext, in []*tensor.Tensor) (*tensor.Tensor, error) {
	return tensor.UnaryOp(ctx.Pool, in[0], o.fn()), nil
}

// ForwardInto implements graph.IntoOp.
func (o powOp) ForwardInto(ctx *graph.ExecContext, in []*tensor.Tensor, out *tensor.Tensor) error {
	return tensor.UnaryOpInto(ctx.Pool, out, in[0], o.fn())
}
func (o powOp) Grad(g *graph.Graph, n *graph.Node, grad *graph.Node) ([]*graph.Node, error) {
	x := n.Inputs()[0]
	e := ScalarConst(g, o.e)
	xp := g.MustApply(powOp{o.e - 1}, x)
	return []*graph.Node{Mul(grad, Mul(e, xp))}, nil
}

// Pow returns x^e for a constant exponent e.
func Pow(x *graph.Node, e float32) *graph.Node { return x.Graph().MustApply(powOp{e}, x) }

// ---- Huber (class C): 0.5x² for |x|<=δ else δ(|x|-δ/2) ----

type huberOp struct{ delta float32 }

func (huberOp) Name() string         { return "Huber" }
func (huberOp) Class() graph.OpClass { return graph.ClassElementwise }
func (o huberOp) InferShape(in [][]int) ([]int, error) {
	if err := wantInputs("Huber", in, 1); err != nil {
		return nil, err
	}
	return copyShape(in[0]), nil
}
func (o huberOp) fn() func(x float32) float32 {
	d := o.delta
	return func(x float32) float32 {
		a := x
		if a < 0 {
			a = -a
		}
		if a <= d {
			return 0.5 * x * x
		}
		return d * (a - 0.5*d)
	}
}

func (o huberOp) Forward(ctx *graph.ExecContext, in []*tensor.Tensor) (*tensor.Tensor, error) {
	return tensor.UnaryOp(ctx.Pool, in[0], o.fn()), nil
}

// ForwardInto implements graph.IntoOp.
func (o huberOp) ForwardInto(ctx *graph.ExecContext, in []*tensor.Tensor, out *tensor.Tensor) error {
	return tensor.UnaryOpInto(ctx.Pool, out, in[0], o.fn())
}
func (o huberOp) Grad(g *graph.Graph, n *graph.Node, grad *graph.Node) ([]*graph.Node, error) {
	// d/dx Huber = clamp(x, -δ, δ): the DQN error-clipping trick.
	x := n.Inputs()[0]
	clipped := Maximum(Minimum(x, ScalarConst(g, o.delta)), ScalarConst(g, -o.delta))
	return []*graph.Node{Mul(grad, clipped)}, nil
}

// Huber returns the elementwise Huber loss with threshold delta.
func Huber(x *graph.Node, delta float32) *graph.Node {
	return x.Graph().MustApply(huberOp{delta}, x)
}
