package ops

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/tensor"
)

const attnScale = 0.25

func attnOperands(t *testing.T) (q, k, v *tensor.Tensor) {
	t.Helper()
	rng := rand.New(rand.NewSource(41))
	return tensor.RandNormal(rng, 0, 1, 3, 12, 5),
		tensor.RandNormal(rng, 0, 1, 3, 12, 5),
		tensor.RandNormal(rng, 0, 1, 3, 12, 5)
}

func attnGraph(qv, kv, vv *tensor.Tensor) (*graph.Graph, *graph.Node, []*graph.Node) {
	g := graph.New()
	q := g.Variable("q", qv.Clone())
	k := g.Variable("k", kv.Clone())
	v := g.Variable("v", vv.Clone())
	out := NaiveAttention(q, k, v, attnScale)
	return g, out, []*graph.Node{q, k, v}
}

// TestFuseAttentionBitIdentical: graph.FuseAttention rewrites the
// unfused Softmax(BatchMatMul(Q,Kᵀ)·scale)·V chain into one
// FusedAttention node whose output is bit-identical to the unfused
// graph — the streaming kernel applies the same float operations in
// the same order.
func TestFuseAttentionBitIdentical(t *testing.T) {
	qv, kv, vv := attnOperands(t)
	gU, outU, _ := attnGraph(qv, kv, vv)
	gF, outF, _ := attnGraph(qv, kv, vv)
	if fused := graph.FuseAttention(gF, outF); fused != 1 {
		t.Fatalf("expected 1 attention fusion, got %d", fused)
	}
	if outF.OpName() != "FusedAttention" {
		t.Fatalf("fused op name %q", outF.OpName())
	}
	if len(outF.Inputs()) != 3 {
		t.Fatalf("fused node has %d inputs, want Q,K,V", len(outF.Inputs()))
	}
	want := runAll(t, gU, []*graph.Node{outU}, nil)[0]
	got := runAll(t, gF, []*graph.Node{outF}, nil)[0]
	if d := tensor.MaxAbsDiff(got, want); d != 0 {
		t.Fatalf("fused attention differs from unfused chain (max |Δ| %g)", d)
	}
}

// TestFuseAttentionGradBitIdentical: fusing before gradient
// construction must not change training math. The fused op's Grad
// recomputes the probability matrix with the same primitive ops the
// unfused chain materializes, so dQ, dK and dV are bit-identical.
func TestFuseAttentionGradBitIdentical(t *testing.T) {
	qv, kv, vv := attnOperands(t)

	build := func(fuse bool) []*tensor.Tensor {
		g, out, params := attnGraph(qv, kv, vv)
		if fuse {
			if fused := graph.FuseAttention(g); fused != 1 {
				t.Fatalf("expected 1 attention fusion, got %d", fused)
			}
		}
		loss := Sum(Sum(Sum(out, 2), 1), 0)
		grads, err := graph.Gradients(loss, params)
		if err != nil {
			t.Fatal(err)
		}
		return runAll(t, g, append([]*graph.Node{out, loss}, grads...), nil)
	}

	want := build(false)
	got := build(true)
	names := []string{"out", "loss", "dQ", "dK", "dV"}
	for i := range want {
		if d := tensor.MaxAbsDiff(got[i], want[i]); d != 0 {
			t.Errorf("%s differs between fused and unfused training graphs (max |Δ| %g)", names[i], d)
		}
	}
}

// TestFuseAttentionGates pins the conservative gates: a chain
// intermediate that is fetched (keep), multi-read, or not the exact
// pattern stays unfused.
func TestFuseAttentionGates(t *testing.T) {
	qv, kv, vv := attnOperands(t)

	t.Run("keep_probabilities", func(t *testing.T) {
		g := graph.New()
		q := g.Variable("q", qv.Clone())
		k := g.Variable("k", kv.Clone())
		v := g.Variable("v", vv.Clone())
		kt := TransposePerm(k, []int{0, 2, 1})
		w := Softmax(Mul(BatchMatMul(q, kt), ScalarConst(g, attnScale)))
		out := BatchMatMul(w, v)
		if fused := graph.FuseAttention(g, out, w); fused != 0 {
			t.Fatalf("kept probability node was fused (%d)", fused)
		}
	})

	t.Run("multi_reader_probabilities", func(t *testing.T) {
		g := graph.New()
		q := g.Variable("q", qv.Clone())
		k := g.Variable("k", kv.Clone())
		v := g.Variable("v", vv.Clone())
		kt := TransposePerm(k, []int{0, 2, 1})
		w := Softmax(Mul(BatchMatMul(q, kt), ScalarConst(g, attnScale)))
		out := BatchMatMul(w, v)
		tap := Sum(w, 2) // second reader, e.g. a gradient tap
		_ = tap
		if fused := graph.FuseAttention(g, out); fused != 0 {
			t.Fatalf("multi-read probability node was fused (%d)", fused)
		}
	})

	t.Run("non_scalar_scale", func(t *testing.T) {
		g := graph.New()
		q := g.Variable("q", qv.Clone())
		k := g.Variable("k", kv.Clone())
		v := g.Variable("v", vv.Clone())
		kt := TransposePerm(k, []int{0, 2, 1})
		rowScale := g.Const("row_scale", tensor.Full(0.25, 1, 1, 12))
		w := Softmax(Mul(BatchMatMul(q, kt), rowScale))
		out := BatchMatMul(w, v)
		if fused := graph.FuseAttention(g, out); fused != 0 {
			t.Fatalf("non-scalar scale was fused (%d)", fused)
		}
	})

	t.Run("wrong_transpose_perm", func(t *testing.T) {
		g := graph.New()
		q := g.Variable("q", qv.Clone())
		k := g.Variable("k", tensor.RandNormal(rand.New(rand.NewSource(9)), 0, 1, 3, 5, 12))
		v := g.Variable("v", vv.Clone())
		kt := TransposePerm(k, []int{0, 1, 2}) // not the (0,2,1) key transpose
		w := Softmax(Mul(BatchMatMul(q, kt), ScalarConst(g, attnScale)))
		out := BatchMatMul(w, v)
		if fused := graph.FuseAttention(g, out); fused != 0 {
			t.Fatalf("non-(0,2,1) transpose was fused (%d)", fused)
		}
	})
}

// TestOptimizeRunsAttentionFusion: the attention pass is part of the
// standard Optimize pipeline, running before epilogue fusion.
func TestOptimizeRunsAttentionFusion(t *testing.T) {
	qv, kv, vv := attnOperands(t)
	g, out, _ := attnGraph(qv, kv, vv)
	pool := tensor.NewPool(1)
	res, err := graph.Optimize(&graph.ExecContext{Pool: pool, RNG: rand.New(rand.NewSource(1))}, []*graph.Node{out})
	if err != nil {
		t.Fatal(err)
	}
	if res.FusedAttention != 1 {
		t.Fatalf("Optimize fused %d attention chains, want 1", res.FusedAttention)
	}
	if name := res.Fetch(out).OpName(); name != "FusedAttention" {
		t.Fatalf("optimized fetch op %q", name)
	}
	want := runAll(t, g, []*graph.Node{out}, nil)[0]
	got := runAll(t, res.Graph, []*graph.Node{res.Fetch(out)}, nil)[0]
	if d := tensor.MaxAbsDiff(got, want); d != 0 {
		t.Fatalf("optimized graph differs (max |Δ| %g)", d)
	}
}
