package ops

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/tensor"
)

// fusedAttentionOp computes softmax(Q·Kᵀ·scale)·V over rank-3 (G,S,Dh)
// operands in one kernel (tensor.AttentionInto), class A. It is the
// rewrite target of graph.FuseAttention: the streaming-softmax kernel
// never materializes the (G,S,S) score matrix but applies the same
// float operations in the same order as the unfused chain, so results
// are bit-identical with fusion on or off (see the determinism note in
// tensor/attention.go).
type fusedAttentionOp struct{ scale float32 }

func (fusedAttentionOp) Name() string         { return "FusedAttention" }
func (fusedAttentionOp) Class() graph.OpClass { return graph.ClassMatrix }

func (fusedAttentionOp) InferShape(in [][]int) ([]int, error) {
	if err := wantInputs("FusedAttention", in, 3); err != nil {
		return nil, err
	}
	q, k, v := in[0], in[1], in[2]
	if len(q) != 3 || !tensor.SameShape(q, k) || !tensor.SameShape(q, v) {
		return nil, fmt.Errorf("FusedAttention wants three equal rank-3 (G,S,Dh) inputs, got %v %v %v", q, k, v)
	}
	return copyShape(q), nil
}

func (o fusedAttentionOp) Forward(ctx *graph.ExecContext, in []*tensor.Tensor) (*tensor.Tensor, error) {
	return tensor.Attention(ctx.Pool, in[0], in[1], in[2], o.scale)
}

// ForwardInto implements graph.IntoOp.
func (o fusedAttentionOp) ForwardInto(ctx *graph.ExecContext, in []*tensor.Tensor, out *tensor.Tensor) error {
	return tensor.AttentionInto(ctx.Pool, out, in[0], in[1], in[2], o.scale)
}

func (o fusedAttentionOp) Cost(in [][]int, out []int) (int64, int64) {
	q := in[0]
	g, s, dh := int64(q[0]), int64(q[1]), int64(q[2])
	// QKᵀ and P·V mul-adds; bytes are the streamed operands only —
	// the (G,S,S) intermediate never exists.
	return 4 * g * s * s * dh, defaultBytes(in, out)
}

// Grad emits the recompute subgraph: the fused forward discards the
// probability matrix, so the backward pass rebuilds the unfused chain
// W = softmax(Q·Kᵀ·scale) — bit-identical to what the fused kernel
// computed internally — and differentiates through it. The recompute
// trades a second score evaluation for never retaining (G,S,S)
// activations, the same memory/time trade the streaming forward makes.
func (o fusedAttentionOp) Grad(g *graph.Graph, n *graph.Node, grad *graph.Node) ([]*graph.Node, error) {
	q, k, v := n.Inputs()[0], n.Inputs()[1], n.Inputs()[2]
	sc := ScalarConst(g, o.scale)
	kt := TransposePerm(k, []int{0, 2, 1})
	w := Softmax(Mul(BatchMatMul(q, kt), sc)) // (G,S,S) probabilities

	dW := BatchMatMul(grad, TransposePerm(v, []int{0, 2, 1}))
	dS := Mul(g.MustApply(softmaxGradOp{}, w, dW), sc)
	dQ := BatchMatMul(dS, k)
	dK := BatchMatMul(TransposePerm(dS, []int{0, 2, 1}), q)
	dV := BatchMatMul(TransposePerm(w, []int{0, 2, 1}), grad)
	return []*graph.Node{dQ, dK, dV}, nil
}

// FusedAttention applies softmax(Q·Kᵀ·scale)·V as one fused streaming
// op over rank-3 (G,S,Dh) nodes — the form graph.FuseAttention
// rewrites the unfused chain into.
func FusedAttention(q, k, v *graph.Node, scale float32) *graph.Node {
	return q.Graph().MustApply(fusedAttentionOp{scale: scale}, q, k, v)
}

// NaiveAttention builds the unfused batched reference chain
// softmax(Q·Kᵀ·scale)·V — Transpose, BatchMatMul, Mul, Softmax,
// BatchMatMul — retained as the bit-equality baseline for the fused
// kernel and as the pattern graph.FuseAttention recognizes.
func NaiveAttention(q, k, v *graph.Node, scale float32) *graph.Node {
	kt := TransposePerm(k, []int{0, 2, 1})
	scores := BatchMatMul(q, kt)
	w := Softmax(Mul(scores, ScalarConst(q.Graph(), scale)))
	return BatchMatMul(w, v)
}

// ComposeAttention implements graph.AttentionComposer for the final
// probabilities×values BatchMatMul of an attention chain. It inspects
// the ops upstream — Softmax over a scalar Mul over a BatchMatMul
// whose right operand is a (0,2,1) Transpose — and, when they form
// exactly the softmax(Q·Kᵀ·scale)·V pattern, returns the fused
// streaming op. The graph pass has already verified the structural
// gates (single-reader, pure, non-keep intermediates).
func (batchMatMulOp) ComposeAttention(softmax, scale, score, transpose graph.Op, scaleVal *tensor.Tensor) (graph.Op, bool) {
	if _, ok := softmax.(softmaxOp); !ok {
		return nil, false
	}
	if mul, ok := scale.(binOp); !ok || mul.kind != binMul {
		return nil, false
	}
	if _, ok := score.(batchMatMulOp); !ok {
		return nil, false
	}
	tr, ok := transpose.(transposeOp)
	if !ok || len(tr.perm) != 3 || tr.perm[0] != 0 || tr.perm[1] != 2 || tr.perm[2] != 1 {
		return nil, false
	}
	if scaleVal == nil || scaleVal.Size() != 1 {
		return nil, false
	}
	return fusedAttentionOp{scale: scaleVal.Data()[0]}, true
}
