package ops

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/runtime"
	"repro/internal/tensor"
)

// BenchmarkEpilogueFusion runs relu(x·W+b) at a blocked-GEMM size as
// one session fetch per iteration, unfused against fused: the fused
// variant folds the bias add and the relu into the MatMul node, saving
// two graph steps, two intermediate allocations and two full passes
// over the activation tensor. Results are bit-identical by the fusion
// contract, so ns/op is the whole difference.
func BenchmarkEpilogueFusion(b *testing.B) {
	const batch, in, out = 64, 512, 512
	rng := rand.New(rand.NewSource(1))
	wv := tensor.RandNormal(rng, 0, 1, in, out)
	bv := tensor.RandNormal(rng, 0, 1, out)
	xv := tensor.RandNormal(rng, 0, 1, batch, in)

	build := func(fuse bool) (*runtime.Session, []*graph.Node, runtime.Feeds) {
		g := graph.New()
		x := g.Placeholder("x", batch, in)
		w := g.Variable("w", wv.Clone())
		bias := g.Variable("b", bv.Clone())
		y := Relu(Add(MatMul(x, w), bias))
		if fuse {
			if fused := graph.FuseEpilogues(g, y); fused != 2 {
				b.Fatalf("expected 2 fusions, got %d", fused)
			}
		}
		return runtime.NewSession(g, runtime.WithSeed(1)), []*graph.Node{y}, runtime.Feeds{x: xv}
	}

	for _, cfg := range []struct {
		name string
		fuse bool
	}{{"unfused", false}, {"fused", true}} {
		b.Run(cfg.name, func(b *testing.B) {
			s, fetch, feeds := build(cfg.fuse)
			b.SetBytes(int64(2 * batch * in * out))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.Run(fetch, feeds); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
