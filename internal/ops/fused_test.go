package ops

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/runtime"
	"repro/internal/tensor"
)

// runAll fetches several nodes in one deterministic session.
func runAll(t *testing.T, g *graph.Graph, fetch []*graph.Node, feeds runtime.Feeds) []*tensor.Tensor {
	t.Helper()
	s := runtime.NewSession(g, runtime.WithSeed(3))
	s.SetTraining(true)
	out, err := s.Run(fetch, feeds)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestFusedMatMulBiasReluBitIdentical: the canonical inference
// epilogue chain relu(x·W + b) folds into one MatMul+Add+Relu kernel
// and produces the exact bits of the unfused graph — the epilogues run
// in place on the GEMM output, identical float sequence.
func TestFusedMatMulBiasReluBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	wv := tensor.RandNormal(rng, 0, 1, 17, 9)
	bv := tensor.RandNormal(rng, 0, 1, 9)
	xv := tensor.RandNormal(rng, 0, 1, 5, 17)

	build := func() (*graph.Graph, *graph.Node, *graph.Node) {
		g := graph.New()
		x := g.Placeholder("x", 5, 17)
		w := g.Variable("w", wv.Clone())
		b := g.Variable("b", bv.Clone())
		return g, x, Relu(Add(MatMul(x, w), b))
	}
	gU, xU, outU := build()
	gF, xF, outF := build()
	if fused := graph.FuseEpilogues(gF, outF); fused != 2 {
		t.Fatalf("expected MatMul to absorb Add and Relu, got %d fusions", fused)
	}
	if outF.OpName() != "MatMul+Add+Relu" {
		t.Fatalf("fused op name %q", outF.OpName())
	}
	want := runAll(t, gU, []*graph.Node{outU}, runtime.Feeds{xU: xv})[0]
	got := runAll(t, gF, []*graph.Node{outF}, runtime.Feeds{xF: xv})[0]
	if d := tensor.MaxAbsDiff(got, want); d != 0 {
		t.Fatalf("fused relu(x·W+b) differs from unfused (max |Δ| %g)", d)
	}
}

// TestFusedConv2DBiasTanhBitIdentical: the conv variant of the same
// chain — tanh(conv(x, f) + b) — through the im2col Conv2D producer.
func TestFusedConv2DBiasTanhBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	fv := tensor.RandNormal(rng, 0, 1, 3, 3, 4, 8)
	bv := tensor.RandNormal(rng, 0, 1, 8)
	xv := tensor.RandNormal(rng, 0, 1, 2, 10, 10, 4)

	build := func() (*graph.Graph, *graph.Node, *graph.Node) {
		g := graph.New()
		x := g.Placeholder("x", 2, 10, 10, 4)
		f := g.Variable("f", fv.Clone())
		b := g.Variable("b", bv.Clone())
		return g, x, Tanh(Add(Conv2D(x, f, 1, 1, 1, 1), b))
	}
	gU, xU, outU := build()
	gF, xF, outF := build()
	if fused := graph.FuseEpilogues(gF, outF); fused != 2 {
		t.Fatalf("expected Conv2D to absorb Add and Tanh, got %d fusions", fused)
	}
	if outF.OpName() != "Conv2D+Add+Tanh" {
		t.Fatalf("fused op name %q", outF.OpName())
	}
	want := runAll(t, gU, []*graph.Node{outU}, runtime.Feeds{xU: xv})[0]
	got := runAll(t, gF, []*graph.Node{outF}, runtime.Feeds{xF: xv})[0]
	if d := tensor.MaxAbsDiff(got, want); d != 0 {
		t.Fatalf("fused tanh(conv+b) differs from unfused (max |Δ| %g)", d)
	}
}

// TestTrainingFusionRespectsGradientTaps builds a training graph over
// relu(x·W+b) and checks the multi-reader gate against the backward
// pass: ReluGrad reads the pre-activation, so Relu must NOT absorb the
// Add (the pre-activation stays materialized), while the Add still
// absorbs the MatMul (its gradient reads x and W, not the product).
// Loss and gradients must stay bit-identical with fusion on.
func TestTrainingFusionRespectsGradientTaps(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	wv := tensor.RandNormal(rng, 0, 1, 7, 6)
	bv := tensor.RandNormal(rng, 0, 1, 6)
	xv := tensor.RandNormal(rng, 0, 1, 4, 7)

	build := func() (*graph.Graph, *graph.Node, *graph.Node, []*graph.Node) {
		g := graph.New()
		x := g.Placeholder("x", 4, 7)
		w := g.Variable("w", wv.Clone())
		b := g.Variable("b", bv.Clone())
		loss := Sum(Relu(Add(MatMul(x, w), b)))
		grads, err := graph.Gradients(loss, []*graph.Node{w, b})
		if err != nil {
			t.Fatal(err)
		}
		return g, x, loss, grads
	}
	gU, xU, lossU, gradsU := build()
	gF, xF, lossF, gradsF := build()
	keep := append([]*graph.Node{lossF}, gradsF...)
	if fused := graph.FuseEpilogues(gF, keep...); fused == 0 {
		t.Fatal("training graph fused nothing")
	}
	var haveMatMulAdd, haveFusedRelu bool
	for _, n := range gF.Nodes() {
		if n.Kind() != graph.KindOp {
			continue
		}
		if n.OpName() == "MatMul+Add" {
			haveMatMulAdd = true
		}
		if strings.HasSuffix(n.OpName(), "+Relu") {
			haveFusedRelu = true
		}
	}
	if !haveMatMulAdd {
		t.Fatal("MatMul+Add pre-activation fusion missing")
	}
	if haveFusedRelu {
		t.Fatal("Relu absorbed its pre-activation despite the ReluGrad tap")
	}
	want := runAll(t, gU, append([]*graph.Node{lossU}, gradsU...), runtime.Feeds{xU: xv})
	got := runAll(t, gF, append([]*graph.Node{lossF}, gradsF...), runtime.Feeds{xF: xv})
	for i := range want {
		if d := tensor.MaxAbsDiff(got[i], want[i]); d != 0 {
			t.Fatalf("fetch %d differs under training fusion (max |Δ| %g)", i, d)
		}
	}
}

// TestTrainingFusionTanhChainFusesFully: Tanh's gradient reads the
// activation node itself — which fusion preserves (the consumer node
// is mutated in place, keeping its identity) — so the whole
// MatMul+Add+Tanh chain fuses even in a training graph, and the
// backward pass still matches bit for bit.
func TestTrainingFusionTanhChainFusesFully(t *testing.T) {
	rng := rand.New(rand.NewSource(27))
	wv := tensor.RandNormal(rng, 0, 1, 7, 6)
	bv := tensor.RandNormal(rng, 0, 1, 6)
	xv := tensor.RandNormal(rng, 0, 1, 4, 7)

	build := func() (*graph.Graph, *graph.Node, *graph.Node, []*graph.Node) {
		g := graph.New()
		x := g.Placeholder("x", 4, 7)
		w := g.Variable("w", wv.Clone())
		b := g.Variable("b", bv.Clone())
		loss := Sum(Tanh(Add(MatMul(x, w), b)))
		grads, err := graph.Gradients(loss, []*graph.Node{w, b})
		if err != nil {
			t.Fatal(err)
		}
		return g, x, loss, grads
	}
	gU, xU, lossU, gradsU := build()
	gF, xF, lossF, gradsF := build()
	keep := append([]*graph.Node{lossF}, gradsF...)
	graph.FuseEpilogues(gF, keep...)
	var haveChain bool
	for _, n := range gF.Nodes() {
		if n.Kind() == graph.KindOp && n.OpName() == "MatMul+Add+Tanh" {
			haveChain = true
		}
	}
	if !haveChain {
		t.Fatal("Tanh chain did not fuse fully in the training graph")
	}
	want := runAll(t, gU, append([]*graph.Node{lossU}, gradsU...), runtime.Feeds{xU: xv})
	got := runAll(t, gF, append([]*graph.Node{lossF}, gradsF...), runtime.Feeds{xF: xv})
	for i := range want {
		if d := tensor.MaxAbsDiff(got[i], want[i]); d != 0 {
			t.Fatalf("fetch %d differs under tanh-chain fusion (max |Δ| %g)", i, d)
		}
	}
}

// TestOptimizePassRunsFusion: the graph optimizer's pass 4 reports
// fusions through OptimizeResult and the optimized graph computes the
// original bits.
func TestOptimizePassRunsFusion(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	g := graph.New()
	x := g.Placeholder("x", 3, 5)
	w := g.Variable("w", tensor.RandNormal(rng, 0, 1, 5, 4))
	b := g.Variable("b", tensor.RandNormal(rng, 0, 1, 4))
	out := Relu(Add(MatMul(x, w), b))
	ctx := &graph.ExecContext{Pool: tensor.NewPool(1), RNG: rand.New(rand.NewSource(1))}
	res, err := graph.Optimize(ctx, []*graph.Node{out})
	if err != nil {
		t.Fatal(err)
	}
	if res.FusedEpilogues != 2 {
		t.Fatalf("Optimize pass 4 fused %d, want 2", res.FusedEpilogues)
	}
	xv := tensor.RandNormal(rng, 0, 1, 3, 5)
	want := runAll(t, g, []*graph.Node{out}, runtime.Feeds{x: xv})[0]
	// The optimized graph has its own placeholder.
	var nx *graph.Node
	for _, n := range res.Graph.Nodes() {
		if n.Kind() == graph.KindPlaceholder {
			nx = n
		}
	}
	got := runAll(t, res.Graph, []*graph.Node{res.Fetch(out)}, runtime.Feeds{nx: xv})[0]
	if d := tensor.MaxAbsDiff(got, want); d != 0 {
		t.Fatalf("optimized+fused output differs (max |Δ| %g)", d)
	}
}
