package ops

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/tensor"
)

// ---- random sampling (class E) ----

// randomNormalOp draws from N(0,1); shift/scale are done with ordinary
// elementwise ops so the profile shows the sampling separately, as the
// paper's variational-autoencoder analysis expects.
type randomNormalOp struct{ shape []int }

func (randomNormalOp) Name() string         { return "RandomStandardNormal" }
func (randomNormalOp) Class() graph.OpClass { return graph.ClassRandom }
func (o randomNormalOp) InferShape(in [][]int) ([]int, error) {
	if len(in) != 0 {
		return nil, fmt.Errorf("RandomStandardNormal takes no inputs")
	}
	return copyShape(o.shape), nil
}
func (o randomNormalOp) Forward(ctx *graph.ExecContext, in []*tensor.Tensor) (*tensor.Tensor, error) {
	t := tensor.New(o.shape...)
	tensor.FillNormal(t, ctx.RNG, 0, 1)
	return t, nil
}

// Impure implements graph.Impure: sampling must never be folded.
func (randomNormalOp) Impure() {}

// RandomStandardNormal adds a N(0,1) sampling node of the given shape.
func RandomStandardNormal(g *graph.Graph, shape ...int) *graph.Node {
	return g.MustApply(randomNormalOp{shape: append([]int(nil), shape...)})
}

type randomUniformOp struct{ shape []int }

func (randomUniformOp) Name() string         { return "RandomUniform" }
func (randomUniformOp) Class() graph.OpClass { return graph.ClassRandom }
func (o randomUniformOp) InferShape(in [][]int) ([]int, error) {
	if len(in) != 0 {
		return nil, fmt.Errorf("RandomUniform takes no inputs")
	}
	return copyShape(o.shape), nil
}
func (o randomUniformOp) Forward(ctx *graph.ExecContext, in []*tensor.Tensor) (*tensor.Tensor, error) {
	t := tensor.New(o.shape...)
	tensor.FillUniform(t, ctx.RNG, 0, 1)
	return t, nil
}

// Impure implements graph.Impure.
func (randomUniformOp) Impure() {}

// RandomUniform adds a U[0,1) sampling node of the given shape.
func RandomUniform(g *graph.Graph, shape ...int) *graph.Node {
	return g.MustApply(randomUniformOp{shape: append([]int(nil), shape...)})
}

// ---- Dropout (class E) ----
//
// dropoutOp is stateful: the forward pass samples an inverted-dropout
// mask and stores it so the paired DropoutGrad applies the *same* mask.
// This mirrors cuDNN-style fused dropout. The executor runs operations
// sequentially and the gradient is topologically after the forward op,
// so the handoff is safe. In inference mode dropout is the identity.
type dropoutOp struct {
	rate float32
	mask *tensor.Tensor // last sampled mask (training only)
}

func (*dropoutOp) Name() string         { return "Dropout" }
func (*dropoutOp) Class() graph.OpClass { return graph.ClassRandom }
func (o *dropoutOp) InferShape(in [][]int) ([]int, error) {
	if err := wantInputs("Dropout", in, 1); err != nil {
		return nil, err
	}
	return copyShape(in[0]), nil
}
func (o *dropoutOp) Forward(ctx *graph.ExecContext, in []*tensor.Tensor) (*tensor.Tensor, error) {
	x := in[0]
	if !ctx.Training || o.rate <= 0 {
		return x, nil
	}
	keep := 1 - o.rate
	mask := tensor.New(x.Shape()...)
	md := mask.Data()
	inv := 1 / keep
	for i := range md {
		if ctx.RNG.Float32() < keep {
			md[i] = inv
		}
	}
	o.mask = mask
	return tensor.BinaryOp(ctx.Pool, x, mask, func(a, m float32) float32 { return a * m })
}
func (o *dropoutOp) Grad(g *graph.Graph, n *graph.Node, grad *graph.Node) ([]*graph.Node, error) {
	return []*graph.Node{g.MustApply(&dropoutGradOp{src: o}, grad)}, nil
}

type dropoutGradOp struct{ src *dropoutOp }

func (*dropoutGradOp) Name() string         { return "DropoutGrad" }
func (*dropoutGradOp) Class() graph.OpClass { return graph.ClassRandom }
func (o *dropoutGradOp) InferShape(in [][]int) ([]int, error) {
	if err := wantInputs("DropoutGrad", in, 1); err != nil {
		return nil, err
	}
	return copyShape(in[0]), nil
}
func (o *dropoutGradOp) Forward(ctx *graph.ExecContext, in []*tensor.Tensor) (*tensor.Tensor, error) {
	if !ctx.Training || o.src.rate <= 0 || o.src.mask == nil {
		return in[0], nil
	}
	return tensor.BinaryOp(ctx.Pool, in[0], o.src.mask, func(g, m float32) float32 { return g * m })
}

// Impure implements graph.Impure: dropout is stateful and stochastic.
func (*dropoutOp) Impure() {}

// Impure implements graph.Impure.
func (*dropoutGradOp) Impure() {}

// Dropout applies inverted dropout with the given drop rate during
// training and is the identity during inference.
func Dropout(x *graph.Node, rate float32) *graph.Node {
	return x.Graph().MustApply(&dropoutOp{rate: rate}, x)
}
