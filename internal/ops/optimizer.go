package ops

import (
	"fmt"
	"math"

	"repro/internal/graph"
	"repro/internal/tensor"
)

// Optimizer apply-ops (class F) mutate their target Variable in place,
// mirroring TensorFlow's ApplyGradientDescent / ApplyRMSProp /
// ApplyAdam kernels. Slot accumulators (momentum, RMS statistics, the
// Adam step counter) are graph Variables — named "<var>/slot/<name>"
// and created with the op — rather than hidden op state, so
// checkpoints capture them via Graph.Variables() and a resumed run
// continues the exact optimizer trajectory. The output is a scalar
// zero so updates can be grouped behind a NoOp fetch.

// slotVar declares a zero-initialized slot variable for target. The
// name is "<target>/slot/<slot>", uniquified with a "#k" suffix when a
// variable by that name already exists (targets with duplicate names),
// keeping checkpoint keys unambiguous. shape defaults to the target's.
func slotVar(target *graph.Node, slot string, shape ...int) *graph.Node {
	if len(shape) == 0 {
		shape = target.Shape()
	}
	g := target.Graph()
	taken := map[string]bool{}
	for _, v := range g.Variables() {
		taken[v.Name()] = true
	}
	name := target.Name() + "/slot/" + slot
	for k := 2; taken[name]; k++ {
		name = fmt.Sprintf("%s/slot/%s#%d", target.Name(), slot, k)
	}
	return g.Variable(name, tensor.New(shape...))
}

type applySGDOp struct {
	target *graph.Node
	lr     float32
}

func (*applySGDOp) Name() string         { return "ApplyGradientDescent" }
func (*applySGDOp) Class() graph.OpClass { return graph.ClassOptimization }
func (o *applySGDOp) InferShape(in [][]int) ([]int, error) {
	if err := wantInputs("ApplyGradientDescent", in, 1); err != nil {
		return nil, err
	}
	if !tensor.SameShape(in[0], o.target.Shape()) {
		return nil, fmt.Errorf("ApplyGradientDescent grad %v vs var %v", in[0], o.target.Shape())
	}
	return []int{}, nil
}
func (o *applySGDOp) Forward(ctx *graph.ExecContext, in []*tensor.Tensor) (*tensor.Tensor, error) {
	v := o.target.Value().Data()
	g := in[0].Data()
	lr := o.lr
	ctx.Pool.For(len(v), 16384, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			v[i] -= lr * g[i]
		}
	})
	return tensor.Scalar(0), nil
}
func (o *applySGDOp) Cost(in [][]int, out []int) (int64, int64) {
	n := int64(tensor.SizeOf(in[0]))
	return n, 3 * n * elemBytes
}

// Mutates implements graph.Mutator: the op rewrites its target
// variable's storage.
func (o *applySGDOp) Mutates() []*graph.Node { return []*graph.Node{o.target} }

// Impure implements graph.Impure: updates mutate their variable.
func (*applySGDOp) Impure() {}

// ApplySGD adds a gradient-descent update of variable v by grad.
func ApplySGD(v, grad *graph.Node, lr float32) *graph.Node {
	return v.Graph().MustApply(&applySGDOp{target: v, lr: lr}, grad)
}

type applyMomentumOp struct {
	target   *graph.Node
	lr, mom  float32
	velocity *graph.Node
}

func (*applyMomentumOp) Name() string         { return "ApplyMomentum" }
func (*applyMomentumOp) Class() graph.OpClass { return graph.ClassOptimization }
func (o *applyMomentumOp) InferShape(in [][]int) ([]int, error) {
	if err := wantInputs("ApplyMomentum", in, 1); err != nil {
		return nil, err
	}
	if !tensor.SameShape(in[0], o.target.Shape()) {
		return nil, fmt.Errorf("ApplyMomentum grad %v vs var %v", in[0], o.target.Shape())
	}
	return []int{}, nil
}
func (o *applyMomentumOp) Forward(ctx *graph.ExecContext, in []*tensor.Tensor) (*tensor.Tensor, error) {
	v := o.target.Value().Data()
	vel := o.velocity.Value().Data()
	g := in[0].Data()
	lr, mom := o.lr, o.mom
	ctx.Pool.For(len(v), 16384, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			vel[i] = mom*vel[i] + g[i]
			v[i] -= lr * vel[i]
		}
	})
	return tensor.Scalar(0), nil
}
func (o *applyMomentumOp) Cost(in [][]int, out []int) (int64, int64) {
	n := int64(tensor.SizeOf(in[0]))
	return 3 * n, 5 * n * elemBytes
}

// Mutates implements graph.Mutator: the op rewrites its target
// variable and its velocity slot.
func (o *applyMomentumOp) Mutates() []*graph.Node { return []*graph.Node{o.target, o.velocity} }

// Impure implements graph.Impure.
func (*applyMomentumOp) Impure() {}

// ApplyMomentum adds a momentum-SGD update of variable v by grad. The
// velocity accumulator is a "<v>/slot/velocity" graph variable, so it
// rides along in checkpoints.
func ApplyMomentum(v, grad *graph.Node, lr, momentum float32) *graph.Node {
	op := &applyMomentumOp{target: v, lr: lr, mom: momentum, velocity: slotVar(v, "velocity")}
	return v.Graph().MustApply(op, grad)
}

type applyRMSPropOp struct {
	target         *graph.Node
	lr, decay, eps float32
	ms             *graph.Node
}

func (*applyRMSPropOp) Name() string         { return "ApplyRMSProp" }
func (*applyRMSPropOp) Class() graph.OpClass { return graph.ClassOptimization }
func (o *applyRMSPropOp) InferShape(in [][]int) ([]int, error) {
	if err := wantInputs("ApplyRMSProp", in, 1); err != nil {
		return nil, err
	}
	if !tensor.SameShape(in[0], o.target.Shape()) {
		return nil, fmt.Errorf("ApplyRMSProp grad %v vs var %v", in[0], o.target.Shape())
	}
	return []int{}, nil
}
func (o *applyRMSPropOp) Forward(ctx *graph.ExecContext, in []*tensor.Tensor) (*tensor.Tensor, error) {
	v := o.target.Value().Data()
	ms := o.ms.Value().Data()
	g := in[0].Data()
	lr, decay, eps := o.lr, o.decay, o.eps
	ctx.Pool.For(len(v), 8192, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ms[i] = decay*ms[i] + (1-decay)*g[i]*g[i]
			v[i] -= lr * g[i] / float32(math.Sqrt(float64(ms[i]))+float64(eps))
		}
	})
	return tensor.Scalar(0), nil
}
func (o *applyRMSPropOp) Cost(in [][]int, out []int) (int64, int64) {
	n := int64(tensor.SizeOf(in[0]))
	return 6 * n, 5 * n * elemBytes
}

// Mutates implements graph.Mutator: the op rewrites its target
// variable and its mean-square slot.
func (o *applyRMSPropOp) Mutates() []*graph.Node { return []*graph.Node{o.target, o.ms} }

// Impure implements graph.Impure.
func (*applyRMSPropOp) Impure() {}

// ApplyRMSProp adds an RMSProp update of variable v by grad — the
// optimizer DeepMind used for DQN (visible in the paper's Fig. 6a).
// The mean-square accumulator is a "<v>/slot/ms" graph variable.
func ApplyRMSProp(v, grad *graph.Node, lr, decay, eps float32) *graph.Node {
	op := &applyRMSPropOp{target: v, lr: lr, decay: decay, eps: eps, ms: slotVar(v, "ms")}
	return v.Graph().MustApply(op, grad)
}

type applyAdamOp struct {
	target          *graph.Node
	lr, b1, b2, eps float32
	m, v, step      *graph.Node
}

func (*applyAdamOp) Name() string         { return "ApplyAdam" }
func (*applyAdamOp) Class() graph.OpClass { return graph.ClassOptimization }
func (o *applyAdamOp) InferShape(in [][]int) ([]int, error) {
	if err := wantInputs("ApplyAdam", in, 1); err != nil {
		return nil, err
	}
	if !tensor.SameShape(in[0], o.target.Shape()) {
		return nil, fmt.Errorf("ApplyAdam grad %v vs var %v", in[0], o.target.Shape())
	}
	return []int{}, nil
}
func (o *applyAdamOp) Forward(ctx *graph.ExecContext, in []*tensor.Tensor) (*tensor.Tensor, error) {
	// The step counter lives in a shape-{1} variable so checkpoints
	// restore the bias correction along with the moments. float32 holds
	// integer step counts exactly up to 2^24 — far beyond any run here.
	st := o.step.Value().Data()
	st[0]++
	step := float64(st[0])
	w := o.target.Value().Data()
	m, v := o.m.Value().Data(), o.v.Value().Data()
	g := in[0].Data()
	b1, b2 := float64(o.b1), float64(o.b2)
	c1 := 1 - math.Pow(b1, step)
	c2 := 1 - math.Pow(b2, step)
	lr := float64(o.lr) * math.Sqrt(c2) / c1
	eps := float64(o.eps)
	ctx.Pool.For(len(w), 8192, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			gi := float64(g[i])
			mi := b1*float64(m[i]) + (1-b1)*gi
			vi := b2*float64(v[i]) + (1-b2)*gi*gi
			m[i], v[i] = float32(mi), float32(vi)
			w[i] -= float32(lr * mi / (math.Sqrt(vi) + eps))
		}
	})
	return tensor.Scalar(0), nil
}
func (o *applyAdamOp) Cost(in [][]int, out []int) (int64, int64) {
	n := int64(tensor.SizeOf(in[0]))
	return 10 * n, 7 * n * elemBytes
}

// Mutates implements graph.Mutator: the op rewrites its target
// variable and its moment/step slots.
func (o *applyAdamOp) Mutates() []*graph.Node {
	return []*graph.Node{o.target, o.m, o.v, o.step}
}

// Impure implements graph.Impure.
func (*applyAdamOp) Impure() {}

// ApplyAdam adds an Adam update of variable v by grad — the optimizer
// Kingma & Welling's autoencoder work popularized. The first/second
// moments and the step counter are "<v>/slot/{m,v,step}" graph
// variables, so a restored checkpoint resumes the exact trajectory,
// bias correction included.
func ApplyAdam(v, grad *graph.Node, lr, beta1, beta2, eps float32) *graph.Node {
	op := &applyAdamOp{
		target: v, lr: lr, b1: beta1, b2: beta2, eps: eps,
		m: slotVar(v, "m"), v: slotVar(v, "v"), step: slotVar(v, "step", 1),
	}
	return v.Graph().MustApply(op, grad)
}

type applyAdagradOp struct {
	target  *graph.Node
	lr, eps float32
	accum   *graph.Node
}

func (*applyAdagradOp) Name() string         { return "ApplyAdagrad" }
func (*applyAdagradOp) Class() graph.OpClass { return graph.ClassOptimization }
func (o *applyAdagradOp) InferShape(in [][]int) ([]int, error) {
	if err := wantInputs("ApplyAdagrad", in, 1); err != nil {
		return nil, err
	}
	if !tensor.SameShape(in[0], o.target.Shape()) {
		return nil, fmt.Errorf("ApplyAdagrad grad %v vs var %v", in[0], o.target.Shape())
	}
	return []int{}, nil
}
func (o *applyAdagradOp) Forward(ctx *graph.ExecContext, in []*tensor.Tensor) (*tensor.Tensor, error) {
	v := o.target.Value().Data()
	acc := o.accum.Value().Data()
	g := in[0].Data()
	lr, eps := o.lr, o.eps
	ctx.Pool.For(len(v), 8192, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			acc[i] += g[i] * g[i]
			v[i] -= lr * g[i] / (float32(math.Sqrt(float64(acc[i]))) + eps)
		}
	})
	return tensor.Scalar(0), nil
}
func (o *applyAdagradOp) Cost(in [][]int, out []int) (int64, int64) {
	n := int64(tensor.SizeOf(in[0]))
	return 5 * n, 5 * n * elemBytes
}

// Mutates implements graph.Mutator: the op rewrites its target
// variable and its accumulator slot.
func (o *applyAdagradOp) Mutates() []*graph.Node { return []*graph.Node{o.target, o.accum} }

// Impure implements graph.Impure.
func (*applyAdagradOp) Impure() {}

// ApplyAdagrad adds a Duchi et al. AdaGrad update of variable v by
// grad — the per-parameter learning-rate annealing the memory-network
// paper's optimizer family popularized. The gradient-square accumulator
// is a "<v>/slot/accum" graph variable.
func ApplyAdagrad(v, grad *graph.Node, lr, eps float32) *graph.Node {
	op := &applyAdagradOp{target: v, lr: lr, eps: eps, accum: slotVar(v, "accum")}
	return v.Graph().MustApply(op, grad)
}
