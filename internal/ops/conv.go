package ops

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/tensor"
)

// ---- Conv2D and gradients (class B) ----

type conv2DOp struct{ spec tensor.ConvSpec }

func (conv2DOp) Name() string         { return "Conv2D" }
func (conv2DOp) Class() graph.OpClass { return graph.ClassConv }

func (o conv2DOp) InferShape(in [][]int) ([]int, error) {
	if err := wantInputs("Conv2D", in, 2); err != nil {
		return nil, err
	}
	x, f := in[0], in[1]
	if len(x) != 4 || len(f) != 4 {
		return nil, fmt.Errorf("Conv2D wants NHWC input and KHKWCinCout filter, got %v %v", x, f)
	}
	if x[3] != f[2] {
		return nil, fmt.Errorf("Conv2D channels: input %v filter %v", x, f)
	}
	oh := tensor.ConvOutSize(x[1], f[0], o.spec.StrideH, o.spec.PadH)
	ow := tensor.ConvOutSize(x[2], f[1], o.spec.StrideW, o.spec.PadW)
	if oh <= 0 || ow <= 0 {
		return nil, fmt.Errorf("Conv2D produces empty output for %v with filter %v", x, f)
	}
	return []int{x[0], oh, ow, f[3]}, nil
}

func (o conv2DOp) Forward(ctx *graph.ExecContext, in []*tensor.Tensor) (*tensor.Tensor, error) {
	return tensor.Conv2D(ctx.Pool, in[0], in[1], o.spec)
}

// ForwardInto implements graph.IntoOp.
func (o conv2DOp) ForwardInto(ctx *graph.ExecContext, in []*tensor.Tensor, out *tensor.Tensor) error {
	return tensor.Conv2DInto(ctx.Pool, out, in[0], in[1], o.spec)
}

func convFlops(x, f, out []int) int64 {
	// 2 × output cells × filter window × input channels.
	cells := int64(out[0]) * int64(out[1]) * int64(out[2]) * int64(out[3])
	return 2 * cells * int64(f[0]) * int64(f[1]) * int64(f[2])
}

func (o conv2DOp) Cost(in [][]int, out []int) (int64, int64) {
	return convFlops(in[0], in[1], out), defaultBytes(in, out)
}

func (o conv2DOp) Grad(g *graph.Graph, n *graph.Node, grad *graph.Node) ([]*graph.Node, error) {
	x, f := n.Inputs()[0], n.Inputs()[1]
	gi := g.MustApply(conv2DBackInputOp{spec: o.spec, h: x.Shape()[1], w: x.Shape()[2]}, f, grad)
	gf := g.MustApply(conv2DBackFilterOp{spec: o.spec, kh: f.Shape()[0], kw: f.Shape()[1]}, x, grad)
	return []*graph.Node{gi, gf}, nil
}

// Conv2D convolves NHWC input x with filter f.
func Conv2D(x, f *graph.Node, strideH, strideW, padH, padW int) *graph.Node {
	return x.Graph().MustApply(conv2DOp{spec: tensor.ConvSpec{
		StrideH: strideH, StrideW: strideW, PadH: padH, PadW: padW,
	}}, x, f)
}

type conv2DBackFilterOp struct {
	spec   tensor.ConvSpec
	kh, kw int
}

func (conv2DBackFilterOp) Name() string         { return "Conv2DBackFilter" }
func (conv2DBackFilterOp) Class() graph.OpClass { return graph.ClassConv }
func (o conv2DBackFilterOp) InferShape(in [][]int) ([]int, error) {
	if err := wantInputs("Conv2DBackFilter", in, 2); err != nil {
		return nil, err
	}
	return []int{o.kh, o.kw, in[0][3], in[1][3]}, nil
}
func (o conv2DBackFilterOp) Forward(ctx *graph.ExecContext, in []*tensor.Tensor) (*tensor.Tensor, error) {
	return tensor.Conv2DBackFilter(ctx.Pool, in[0], in[1], o.kh, o.kw, o.spec)
}

// ForwardInto implements graph.IntoOp.
func (o conv2DBackFilterOp) ForwardInto(ctx *graph.ExecContext, in []*tensor.Tensor, out *tensor.Tensor) error {
	return tensor.Conv2DBackFilterInto(ctx.Pool, out, in[0], in[1], o.kh, o.kw, o.spec)
}
func (o conv2DBackFilterOp) Cost(in [][]int, out []int) (int64, int64) {
	cells := int64(in[1][0]) * int64(in[1][1]) * int64(in[1][2]) * int64(in[1][3])
	return 2 * cells * int64(o.kh) * int64(o.kw) * int64(in[0][3]), defaultBytes(in, out)
}

type conv2DBackInputOp struct {
	spec tensor.ConvSpec
	h, w int
}

func (conv2DBackInputOp) Name() string         { return "Conv2DBackInput" }
func (conv2DBackInputOp) Class() graph.OpClass { return graph.ClassConv }
func (o conv2DBackInputOp) InferShape(in [][]int) ([]int, error) {
	if err := wantInputs("Conv2DBackInput", in, 2); err != nil {
		return nil, err
	}
	return []int{in[1][0], o.h, o.w, in[0][2]}, nil
}
func (o conv2DBackInputOp) Forward(ctx *graph.ExecContext, in []*tensor.Tensor) (*tensor.Tensor, error) {
	return tensor.Conv2DBackInput(ctx.Pool, in[0], in[1], o.h, o.w, o.spec)
}

// ForwardInto implements graph.IntoOp.
func (o conv2DBackInputOp) ForwardInto(ctx *graph.ExecContext, in []*tensor.Tensor, out *tensor.Tensor) error {
	return tensor.Conv2DBackInputInto(ctx.Pool, out, in[0], in[1], o.h, o.w, o.spec)
}
func (o conv2DBackInputOp) Cost(in [][]int, out []int) (int64, int64) {
	cells := int64(in[1][0]) * int64(in[1][1]) * int64(in[1][2]) * int64(in[1][3])
	return 2 * cells * int64(in[0][0]) * int64(in[0][1]) * int64(in[0][2]), defaultBytes(in, out)
}

// ---- Pooling (class B) ----

type maxPoolOp struct{ k, s, pad int }

func (maxPoolOp) Name() string         { return "MaxPool" }
func (maxPoolOp) Class() graph.OpClass { return graph.ClassConv }
func (o maxPoolOp) InferShape(in [][]int) ([]int, error) {
	if err := wantInputs("MaxPool", in, 1); err != nil {
		return nil, err
	}
	if len(in[0]) != 4 {
		return nil, fmt.Errorf("MaxPool wants NHWC, got %v", in[0])
	}
	oh := tensor.ConvOutSize(in[0][1], o.k, o.s, o.pad)
	ow := tensor.ConvOutSize(in[0][2], o.k, o.s, o.pad)
	if oh <= 0 || ow <= 0 {
		return nil, fmt.Errorf("MaxPool empty output for %v", in[0])
	}
	return []int{in[0][0], oh, ow, in[0][3]}, nil
}
func (o maxPoolOp) Forward(ctx *graph.ExecContext, in []*tensor.Tensor) (*tensor.Tensor, error) {
	return tensor.MaxPool(ctx.Pool, in[0], o.k, o.s, o.pad)
}

// ForwardInto implements graph.IntoOp.
func (o maxPoolOp) ForwardInto(ctx *graph.ExecContext, in []*tensor.Tensor, out *tensor.Tensor) error {
	return tensor.MaxPoolInto(ctx.Pool, out, in[0], o.k, o.s, o.pad)
}
func (o maxPoolOp) Grad(g *graph.Graph, n *graph.Node, grad *graph.Node) ([]*graph.Node, error) {
	return []*graph.Node{g.MustApply(maxPoolGradOp{o.k, o.s, o.pad}, n.Inputs()[0], grad)}, nil
}

type maxPoolGradOp struct{ k, s, pad int }

func (maxPoolGradOp) Name() string         { return "MaxPoolGrad" }
func (maxPoolGradOp) Class() graph.OpClass { return graph.ClassConv }
func (o maxPoolGradOp) InferShape(in [][]int) ([]int, error) {
	if err := wantInputs("MaxPoolGrad", in, 2); err != nil {
		return nil, err
	}
	return copyShape(in[0]), nil
}
func (o maxPoolGradOp) Forward(ctx *graph.ExecContext, in []*tensor.Tensor) (*tensor.Tensor, error) {
	return tensor.MaxPoolGrad(ctx.Pool, in[0], in[1], o.k, o.s, o.pad)
}

// ForwardInto implements graph.IntoOp.
func (o maxPoolGradOp) ForwardInto(ctx *graph.ExecContext, in []*tensor.Tensor, out *tensor.Tensor) error {
	return tensor.MaxPoolGradInto(ctx.Pool, out, in[0], in[1], o.k, o.s, o.pad)
}

// MaxPool applies k×k max pooling with stride s and padding pad.
func MaxPool(x *graph.Node, k, s, pad int) *graph.Node {
	return x.Graph().MustApply(maxPoolOp{k, s, pad}, x)
}

type avgPoolOp struct{ k, s, pad int }

func (avgPoolOp) Name() string         { return "AvgPool" }
func (avgPoolOp) Class() graph.OpClass { return graph.ClassConv }
func (o avgPoolOp) InferShape(in [][]int) ([]int, error) {
	if err := wantInputs("AvgPool", in, 1); err != nil {
		return nil, err
	}
	if len(in[0]) != 4 {
		return nil, fmt.Errorf("AvgPool wants NHWC, got %v", in[0])
	}
	oh := tensor.ConvOutSize(in[0][1], o.k, o.s, o.pad)
	ow := tensor.ConvOutSize(in[0][2], o.k, o.s, o.pad)
	if oh <= 0 || ow <= 0 {
		return nil, fmt.Errorf("AvgPool empty output for %v", in[0])
	}
	return []int{in[0][0], oh, ow, in[0][3]}, nil
}
func (o avgPoolOp) Forward(ctx *graph.ExecContext, in []*tensor.Tensor) (*tensor.Tensor, error) {
	return tensor.AvgPool(ctx.Pool, in[0], o.k, o.s, o.pad)
}

// ForwardInto implements graph.IntoOp.
func (o avgPoolOp) ForwardInto(ctx *graph.ExecContext, in []*tensor.Tensor, out *tensor.Tensor) error {
	return tensor.AvgPoolInto(ctx.Pool, out, in[0], o.k, o.s, o.pad)
}
func (o avgPoolOp) Grad(g *graph.Graph, n *graph.Node, grad *graph.Node) ([]*graph.Node, error) {
	return []*graph.Node{g.MustApply(avgPoolGradOp{o.k, o.s, o.pad, copyShape(n.Inputs()[0].Shape())}, grad)}, nil
}

type avgPoolGradOp struct {
	k, s, pad int
	inShape   []int
}

func (avgPoolGradOp) Name() string         { return "AvgPoolGrad" }
func (avgPoolGradOp) Class() graph.OpClass { return graph.ClassConv }
func (o avgPoolGradOp) InferShape(in [][]int) ([]int, error) {
	if err := wantInputs("AvgPoolGrad", in, 1); err != nil {
		return nil, err
	}
	return copyShape(o.inShape), nil
}
func (o avgPoolGradOp) Forward(ctx *graph.ExecContext, in []*tensor.Tensor) (*tensor.Tensor, error) {
	return tensor.AvgPoolGrad(ctx.Pool, o.inShape, in[0], o.k, o.s, o.pad)
}

// ForwardInto implements graph.IntoOp.
func (o avgPoolGradOp) ForwardInto(ctx *graph.ExecContext, in []*tensor.Tensor, out *tensor.Tensor) error {
	return tensor.AvgPoolGradInto(ctx.Pool, out, in[0], o.k, o.s, o.pad)
}

// AvgPool applies k×k average pooling with stride s and padding pad.
func AvgPool(x *graph.Node, k, s, pad int) *graph.Node {
	return x.Graph().MustApply(avgPoolOp{k, s, pad}, x)
}

// ---- Local Response Normalization (class C) ----
//
// AlexNet's cross-channel normalization:
// y[c] = x[c] / (k + α/n · Σ_{c'∈window} x[c']²)^β.
type lrnOp struct {
	depth       int // window size n
	bias        float32
	alpha, beta float32
}

func (lrnOp) Name() string         { return "LRN" }
func (lrnOp) Class() graph.OpClass { return graph.ClassElementwise }
func (o lrnOp) InferShape(in [][]int) ([]int, error) {
	if err := wantInputs("LRN", in, 1); err != nil {
		return nil, err
	}
	if len(in[0]) != 4 {
		return nil, fmt.Errorf("LRN wants NHWC, got %v", in[0])
	}
	return copyShape(in[0]), nil
}

func (o lrnOp) scaleAt(xd []float32, base, c, nc int) float32 {
	lo := c - o.depth/2
	hi := c + o.depth/2
	if lo < 0 {
		lo = 0
	}
	if hi >= nc {
		hi = nc - 1
	}
	var s float32
	for cc := lo; cc <= hi; cc++ {
		v := xd[base+cc]
		s += v * v
	}
	return o.bias + o.alpha/float32(o.depth)*s
}

func (o lrnOp) Forward(ctx *graph.ExecContext, in []*tensor.Tensor) (*tensor.Tensor, error) {
	x := in[0]
	nc := x.Shape()[3]
	cells := x.Size() / nc
	out := tensor.New(x.Shape()...)
	xd, od := x.Data(), out.Data()
	beta := float64(o.beta)
	ctx.Pool.For(cells, 64, func(lo, hi int) {
		for cell := lo; cell < hi; cell++ {
			base := cell * nc
			for c := 0; c < nc; c++ {
				scale := o.scaleAt(xd, base, c, nc)
				od[base+c] = xd[base+c] * float32(powf(float64(scale), -beta))
			}
		}
	})
	return out, nil
}

func (o lrnOp) Grad(g *graph.Graph, n *graph.Node, grad *graph.Node) ([]*graph.Node, error) {
	return []*graph.Node{g.MustApply(lrnGradOp{o}, n.Inputs()[0], n, grad)}, nil
}

type lrnGradOp struct{ o lrnOp }

func (lrnGradOp) Name() string         { return "LRNGrad" }
func (lrnGradOp) Class() graph.OpClass { return graph.ClassElementwise }
func (lg lrnGradOp) InferShape(in [][]int) ([]int, error) {
	if err := wantInputs("LRNGrad", in, 3); err != nil {
		return nil, err
	}
	return copyShape(in[0]), nil
}

// Forward computes dL/dx for y = x·scale^{-β}:
// dy[c']/dx[c] = δ_{cc'}·scale(c')^{-β}
//
//	− β·scale(c')^{-β-1}·(2α/n)·x[c]·x[c']·[c in window(c')].
func (lg lrnGradOp) Forward(ctx *graph.ExecContext, in []*tensor.Tensor) (*tensor.Tensor, error) {
	o := lg.o
	x, _, grad := in[0], in[1], in[2]
	nc := x.Shape()[3]
	cells := x.Size() / nc
	out := tensor.New(x.Shape()...)
	xd, gd, od := x.Data(), grad.Data(), out.Data()
	ctx.Pool.For(cells, 32, func(lo, hi int) {
		for cell := lo; cell < hi; cell++ {
			base := cell * nc
			for cp := 0; cp < nc; cp++ { // c' — output channel
				scale := float64(o.scaleAt(xd, base, cp, nc))
				sb := powf(scale, -float64(o.beta))
				sb1 := sb / scale
				gv := gd[base+cp]
				// Diagonal term.
				od[base+cp] += gv * float32(sb)
				// Cross terms within c'’s window.
				lo2 := cp - o.depth/2
				hi2 := cp + o.depth/2
				if lo2 < 0 {
					lo2 = 0
				}
				if hi2 >= nc {
					hi2 = nc - 1
				}
				coef := -float64(o.beta) * sb1 * float64(2*o.alpha/float32(o.depth)) * float64(xd[base+cp])
				for c := lo2; c <= hi2; c++ {
					od[base+c] += gv * float32(coef*float64(xd[base+c]))
				}
			}
		}
	})
	return out, nil
}

// LRN applies AlexNet-style local response normalization across
// channels with window depth, bias k, and parameters alpha, beta.
func LRN(x *graph.Node, depth int, bias, alpha, beta float32) *graph.Node {
	return x.Graph().MustApply(lrnOp{depth: depth, bias: bias, alpha: alpha, beta: beta}, x)
}
