package ops

import (
	"fmt"
	"math"

	"repro/internal/graph"
	"repro/internal/tensor"
)

// CTC implements connectionist temporal classification (Graves et al.
// 2006), the loss that lets Deep Speech learn from unsegmented audio.
// Logits have shape (T, B, K) with the blank symbol at index K-1;
// labels have shape (B, L) with -1 padding. The loss is the mean over
// the batch of −log p(label | logits).
//
// Both the loss and its gradient run the full forward–backward dynamic
// program; the gradient is emitted as a fused CTCGrad op so that — as
// the paper observes for speech — "the only other significant
// computations are part of the CTC loss function".

const logZero = -1e30 // log-space additive identity

func logAdd(a, b float64) float64 {
	if a < b {
		a, b = b, a
	}
	if b <= logZero/2 {
		return a
	}
	return a + math.Log1p(math.Exp(b-a))
}

// ctcSequence holds the per-example DP workspace.
type ctcSequence struct {
	ext  []int // extended label sequence with interleaved blanks
	logp float64
}

// extendLabels interleaves blanks: a b c → ∅ a ∅ b ∅ c ∅.
func extendLabels(labels []float32, blank int) []int {
	var u []int
	for _, v := range labels {
		if v < 0 {
			break
		}
		u = append(u, int(v))
	}
	ext := make([]int, 0, 2*len(u)+1)
	ext = append(ext, blank)
	for _, l := range u {
		ext = append(ext, l, blank)
	}
	return ext
}

// ctcForwardBackward computes log p(label|y) and, when gamma is
// non-nil, the posterior state occupancies γ_t(k) = A_t(k)/(p·y_t(k))
// used by the gradient. logY is the per-example log-softmax matrix
// (T, K) in row-major order.
func ctcForwardBackward(logY []float64, T, K int, ext []int, gamma []float64) float64 {
	S := len(ext)
	if S == 0 || T == 0 {
		return logZero
	}
	alpha := make([]float64, T*S)
	beta := make([]float64, T*S)
	for i := range alpha {
		alpha[i] = logZero
		beta[i] = logZero
	}
	// Initialization: the path starts in state 0 (blank) or 1.
	alpha[0] = logY[ext[0]]
	if S > 1 {
		alpha[1] = logY[ext[1]]
	}
	for t := 1; t < T; t++ {
		yRow := logY[t*K : (t+1)*K]
		prev := alpha[(t-1)*S : t*S]
		cur := alpha[t*S : (t+1)*S]
		for s := 0; s < S; s++ {
			a := prev[s]
			if s >= 1 {
				a = logAdd(a, prev[s-1])
			}
			if s >= 2 && ext[s] != ext[s-2] {
				a = logAdd(a, prev[s-2])
			}
			cur[s] = a + yRow[ext[s]]
		}
	}
	logp := alpha[(T-1)*S+S-1]
	if S > 1 {
		logp = logAdd(logp, alpha[(T-1)*S+S-2])
	}
	if gamma == nil {
		return logp
	}
	// Backward pass (β includes y at its own time step).
	beta[(T-1)*S+S-1] = logY[(T-1)*K+ext[S-1]]
	if S > 1 {
		beta[(T-1)*S+S-2] = logY[(T-1)*K+ext[S-2]]
	}
	for t := T - 2; t >= 0; t-- {
		yRow := logY[t*K : (t+1)*K]
		next := beta[(t+1)*S : (t+2)*S]
		cur := beta[t*S : (t+1)*S]
		for s := 0; s < S; s++ {
			b := next[s]
			if s+1 < S {
				b = logAdd(b, next[s+1])
			}
			if s+2 < S && ext[s] != ext[s+2] {
				b = logAdd(b, next[s+2])
			}
			cur[s] = b + yRow[ext[s]]
		}
	}
	// γ_t(k) = Σ_{s: ext[s]=k} exp(α+β − logp − 2·logy + logy)
	//        = Σ exp(α_t(s) + β_t(s) − logp − logY_t(k)).
	if logp <= logZero/2 {
		return logp // no valid alignment: leave γ at zero
	}
	for t := 0; t < T; t++ {
		for s := 0; s < S; s++ {
			k := ext[s]
			v := alpha[t*S+s] + beta[t*S+s] - logp - logY[t*K+k]
			if v > logZero/2 {
				gamma[t*K+k] += math.Exp(v)
			}
		}
	}
	return logp
}

// logSoftmaxRows converts logits rows (length K) to log-softmax.
func logSoftmaxRows(dst []float64, src []float32, rows, K int) {
	for r := 0; r < rows; r++ {
		row := src[r*K : (r+1)*K]
		m := row[0]
		for _, v := range row {
			if v > m {
				m = v
			}
		}
		var sum float64
		for _, v := range row {
			sum += math.Exp(float64(v - m))
		}
		lse := float64(m) + math.Log(sum)
		for k := 0; k < K; k++ {
			dst[r*K+k] = float64(row[k]) - lse
		}
	}
}

type ctcLossOp struct{}

func (ctcLossOp) Name() string         { return "CTCLoss" }
func (ctcLossOp) Class() graph.OpClass { return graph.ClassReduction }
func (ctcLossOp) InferShape(in [][]int) ([]int, error) {
	if err := wantInputs("CTCLoss", in, 2); err != nil {
		return nil, err
	}
	if len(in[0]) != 3 || len(in[1]) != 2 || in[0][1] != in[1][0] {
		return nil, fmt.Errorf("CTCLoss wants logits (T,B,K) and labels (B,L), got %v %v", in[0], in[1])
	}
	return []int{}, nil
}

func (ctcLossOp) Forward(ctx *graph.ExecContext, in []*tensor.Tensor) (*tensor.Tensor, error) {
	logits, labels := in[0], in[1]
	T, B, K := logits.Shape()[0], logits.Shape()[1], logits.Shape()[2]
	L := labels.Shape()[1]
	blank := K - 1
	losses := make([]float64, B)
	ctx.Pool.For(B, 1, func(lo, hi int) {
		logY := make([]float64, T*K)
		for b := lo; b < hi; b++ {
			// Gather this example's (T,K) slice out of (T,B,K).
			seq := make([]float32, T*K)
			for t := 0; t < T; t++ {
				copy(seq[t*K:(t+1)*K], logits.Data()[(t*B+b)*K:(t*B+b)*K+K])
			}
			logSoftmaxRows(logY, seq, T, K)
			ext := extendLabels(labels.Data()[b*L:(b+1)*L], blank)
			logp := ctcForwardBackward(logY, T, K, ext, nil)
			if logp <= logZero/2 {
				losses[b] = 1e4 // impossible alignment: large finite loss
			} else {
				losses[b] = -logp
			}
		}
	})
	var total float64
	for _, l := range losses {
		total += l
	}
	return tensor.Scalar(float32(total / float64(B))), nil
}

func (ctcLossOp) Grad(g *graph.Graph, n *graph.Node, grad *graph.Node) ([]*graph.Node, error) {
	logits, labels := n.Inputs()[0], n.Inputs()[1]
	gl := g.MustApply(ctcGradOp{}, logits, labels, grad)
	return []*graph.Node{gl, nil}, nil
}

type ctcGradOp struct{}

func (ctcGradOp) Name() string         { return "CTCGrad" }
func (ctcGradOp) Class() graph.OpClass { return graph.ClassReduction }
func (ctcGradOp) InferShape(in [][]int) ([]int, error) {
	if err := wantInputs("CTCGrad", in, 3); err != nil {
		return nil, err
	}
	return copyShape(in[0]), nil
}

func (ctcGradOp) Forward(ctx *graph.ExecContext, in []*tensor.Tensor) (*tensor.Tensor, error) {
	logits, labels, grad := in[0], in[1], in[2]
	T, B, K := logits.Shape()[0], logits.Shape()[1], logits.Shape()[2]
	L := labels.Shape()[1]
	blank := K - 1
	gscale := grad.Data()[0] / float32(B)
	out := tensor.New(logits.Shape()...)
	od := out.Data()
	ctx.Pool.For(B, 1, func(lo, hi int) {
		logY := make([]float64, T*K)
		gamma := make([]float64, T*K)
		for b := lo; b < hi; b++ {
			seq := make([]float32, T*K)
			for t := 0; t < T; t++ {
				copy(seq[t*K:(t+1)*K], logits.Data()[(t*B+b)*K:(t*B+b)*K+K])
			}
			logSoftmaxRows(logY, seq, T, K)
			for i := range gamma {
				gamma[i] = 0
			}
			ext := extendLabels(labels.Data()[b*L:(b+1)*L], blank)
			logp := ctcForwardBackward(logY, T, K, ext, gamma)
			// ∂(−log p)/∂u_t(k) = y_t(k) − γ_t(k); zero when no path.
			for t := 0; t < T; t++ {
				for k := 0; k < K; k++ {
					var gv float64
					if logp > logZero/2 {
						gv = math.Exp(logY[t*K+k]) - gamma[t*K+k]
					}
					od[(t*B+b)*K+k] = float32(gv) * gscale
				}
			}
		}
	})
	return out, nil
}

// CTCLoss returns the mean CTC loss of logits (T,B,K) against padded
// labels (B,L); the blank symbol is index K-1.
func CTCLoss(logits, labels *graph.Node) *graph.Node {
	return logits.Graph().MustApply(ctcLossOp{}, logits, labels)
}
