package ops

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/tensor"
)

// ---- reductions (class D) ----

type reduceOp struct {
	kind     string // "sum", "mean", "max"
	axes     []int
	keepDims bool
}

func (o reduceOp) Name() string {
	switch o.kind {
	case "sum":
		return "Sum"
	case "mean":
		return "Mean"
	default:
		return "Max"
	}
}
func (o reduceOp) Class() graph.OpClass { return graph.ClassReduction }

func (o reduceOp) InferShape(in [][]int) ([]int, error) {
	if err := wantInputs(o.Name(), in, 1); err != nil {
		return nil, err
	}
	return tensor.ReducedShape(in[0], o.axes, o.keepDims)
}

func (o reduceOp) Forward(ctx *graph.ExecContext, in []*tensor.Tensor) (*tensor.Tensor, error) {
	return tensor.Reduce(ctx.Pool, in[0], o.axes, o.keepDims, o.kind)
}

// ForwardInto implements graph.IntoOp.
func (o reduceOp) ForwardInto(ctx *graph.ExecContext, in []*tensor.Tensor, out *tensor.Tensor) error {
	return tensor.ReduceInto(ctx.Pool, out, in[0], o.axes, o.keepDims, o.kind)
}

func (o reduceOp) Cost(in [][]int, out []int) (int64, int64) {
	return int64(tensor.SizeOf(in[0])), defaultBytes(in, out)
}

// expandGradToInput reshapes a reduction gradient to the keep-dims
// shape and tiles it back to the input shape: the same Reshape+Tile
// pair TensorFlow emits, which is why Tile features in the paper's
// seq2seq and memnet profiles.
func expandGradToInput(g *graph.Graph, grad *graph.Node, inShape, axes []int) (*graph.Node, error) {
	keep, err := tensor.ReducedShape(inShape, axes, true)
	if err != nil {
		return nil, err
	}
	r := Reshape(grad, keep...)
	mult := make([]int, len(inShape))
	tile := false
	for i := range inShape {
		if keep[i] == inShape[i] {
			mult[i] = 1
		} else {
			mult[i] = inShape[i]
			tile = true
		}
	}
	if !tile {
		return r, nil
	}
	return TileN(r, mult), nil
}

func (o reduceOp) Grad(g *graph.Graph, n *graph.Node, grad *graph.Node) ([]*graph.Node, error) {
	x := n.Inputs()[0]
	switch o.kind {
	case "sum":
		e, err := expandGradToInput(g, grad, x.Shape(), o.axes)
		if err != nil {
			return nil, err
		}
		return []*graph.Node{e}, nil
	case "mean":
		e, err := expandGradToInput(g, grad, x.Shape(), o.axes)
		if err != nil {
			return nil, err
		}
		count := float32(tensor.SizeOf(x.Shape())) / float32(tensor.SizeOf(n.Shape()))
		return []*graph.Node{Div(e, ScalarConst(g, count))}, nil
	case "max":
		// Route the gradient to max positions: mask = (x == broadcast(max)).
		e, err := expandGradToInput(g, n, x.Shape(), o.axes)
		if err != nil {
			return nil, err
		}
		ge, err := expandGradToInput(g, grad, x.Shape(), o.axes)
		if err != nil {
			return nil, err
		}
		mask := Equal(x, e)
		return []*graph.Node{Mul(ge, mask)}, nil
	}
	return nil, fmt.Errorf("unreachable reduce kind")
}

// Sum reduces over the given axes (nil = all axes).
func Sum(x *graph.Node, axes ...int) *graph.Node {
	return x.Graph().MustApply(reduceOp{kind: "sum", axes: axes}, x)
}

// SumKeep reduces over axes keeping reduced dimensions as 1.
func SumKeep(x *graph.Node, axes ...int) *graph.Node {
	return x.Graph().MustApply(reduceOp{kind: "sum", axes: axes, keepDims: true}, x)
}

// Mean averages over the given axes (nil = all axes).
func Mean(x *graph.Node, axes ...int) *graph.Node {
	return x.Graph().MustApply(reduceOp{kind: "mean", axes: axes}, x)
}

// MeanKeep averages over axes keeping reduced dimensions as 1.
func MeanKeep(x *graph.Node, axes ...int) *graph.Node {
	return x.Graph().MustApply(reduceOp{kind: "mean", axes: axes, keepDims: true}, x)
}

// MaxReduce takes the maximum over the given axes (nil = all axes).
func MaxReduce(x *graph.Node, axes ...int) *graph.Node {
	return x.Graph().MustApply(reduceOp{kind: "max", axes: axes}, x)
}

// MaxReduceKeep takes the maximum over axes keeping reduced dims as 1.
func MaxReduceKeep(x *graph.Node, axes ...int) *graph.Node {
	return x.Graph().MustApply(reduceOp{kind: "max", axes: axes, keepDims: true}, x)
}

// ---- sumTo: reduce a broadcast gradient to an input shape ----
//
// Appears in profiles as "Sum", matching how TensorFlow reports the
// reductions its broadcasting gradients insert.
type sumToOp struct{ target []int }

func (sumToOp) Name() string         { return "Sum" }
func (sumToOp) Class() graph.OpClass { return graph.ClassReduction }
func (o sumToOp) InferShape(in [][]int) ([]int, error) {
	if err := wantInputs("Sum", in, 1); err != nil {
		return nil, err
	}
	// The target must be broadcastable to the input.
	b, err := tensor.BroadcastShapes(o.target, in[0])
	if err != nil {
		return nil, err
	}
	if !tensor.SameShape(b, in[0]) {
		return nil, fmt.Errorf("Sum(to): %v does not broadcast to %v", o.target, in[0])
	}
	return copyShape(o.target), nil
}
func (o sumToOp) Forward(ctx *graph.ExecContext, in []*tensor.Tensor) (*tensor.Tensor, error) {
	return tensor.ReduceGradToShape(ctx.Pool, in[0], o.target), nil
}

// ForwardInto implements graph.IntoOp.
func (o sumToOp) ForwardInto(ctx *graph.ExecContext, in []*tensor.Tensor, out *tensor.Tensor) error {
	return tensor.ReduceGradToShapeInto(ctx.Pool, out, in[0])
}

// SumTo reduces x to the given shape (the adjoint of broadcasting).
func SumTo(x *graph.Node, shape []int) *graph.Node {
	return sumToShape(x.Graph(), x, shape)
}

// ---- ArgMax (class D, no gradient) ----

type argMaxOp struct{}

func (argMaxOp) Name() string         { return "ArgMax" }
func (argMaxOp) Class() graph.OpClass { return graph.ClassReduction }
func (argMaxOp) InferShape(in [][]int) ([]int, error) {
	if err := wantInputs("ArgMax", in, 1); err != nil {
		return nil, err
	}
	if len(in[0]) == 0 {
		return nil, fmt.Errorf("ArgMax requires rank >= 1")
	}
	return copyShape(in[0][:len(in[0])-1]), nil
}
func (argMaxOp) Forward(ctx *graph.ExecContext, in []*tensor.Tensor) (*tensor.Tensor, error) {
	return tensor.ArgMax(in[0]), nil
}

// ArgMax returns the index of the maximum along the last axis.
func ArgMax(x *graph.Node) *graph.Node { return x.Graph().MustApply(argMaxOp{}, x) }

// ---- Softmax (class D, fused) ----

type softmaxOp struct{}

func (softmaxOp) Name() string         { return "Softmax" }
func (softmaxOp) Class() graph.OpClass { return graph.ClassReduction }
func (softmaxOp) InferShape(in [][]int) ([]int, error) {
	if err := wantInputs("Softmax", in, 1); err != nil {
		return nil, err
	}
	if len(in[0]) == 0 {
		return nil, fmt.Errorf("Softmax requires rank >= 1")
	}
	return copyShape(in[0]), nil
}
func (softmaxOp) Forward(ctx *graph.ExecContext, in []*tensor.Tensor) (*tensor.Tensor, error) {
	return tensor.Softmax(ctx.Pool, in[0]), nil
}

// ForwardInto implements graph.IntoOp.
func (softmaxOp) ForwardInto(ctx *graph.ExecContext, in []*tensor.Tensor, out *tensor.Tensor) error {
	return tensor.SoftmaxInto(ctx.Pool, out, in[0])
}
func (softmaxOp) Grad(g *graph.Graph, n *graph.Node, grad *graph.Node) ([]*graph.Node, error) {
	return []*graph.Node{g.MustApply(softmaxGradOp{}, n, grad)}, nil
}

// softmaxGradOp computes y*(grad - Σ(grad*y)) rowwise.
type softmaxGradOp struct{}

func (softmaxGradOp) Name() string         { return "SoftmaxGrad" }
func (softmaxGradOp) Class() graph.OpClass { return graph.ClassReduction }
func (softmaxGradOp) InferShape(in [][]int) ([]int, error) {
	if err := wantInputs("SoftmaxGrad", in, 2); err != nil {
		return nil, err
	}
	return copyShape(in[0]), nil
}
func (softmaxGradOp) Forward(ctx *graph.ExecContext, in []*tensor.Tensor) (*tensor.Tensor, error) {
	y, grad := in[0], in[1]
	c := y.Shape()[len(y.Shape())-1]
	rows := y.Size() / c
	out := tensor.New(y.Shape()...)
	yd, gd, od := y.Data(), grad.Data(), out.Data()
	ctx.Pool.For(rows, 64, func(lo, hi int) {
		for r := lo; r < hi; r++ {
			var dot float32
			base := r * c
			for j := 0; j < c; j++ {
				dot += yd[base+j] * gd[base+j]
			}
			for j := 0; j < c; j++ {
				od[base+j] = yd[base+j] * (gd[base+j] - dot)
			}
		}
	})
	return out, nil
}

// Softmax applies a fused row-wise softmax over the last axis.
func Softmax(x *graph.Node) *graph.Node { return x.Graph().MustApply(softmaxOp{}, x) }

// ---- Tile (class D, expansion) ----

type tileOp struct{ multiples []int }

func (tileOp) Name() string         { return "Tile" }
func (tileOp) Class() graph.OpClass { return graph.ClassReduction }
func (o tileOp) InferShape(in [][]int) ([]int, error) {
	if err := wantInputs("Tile", in, 1); err != nil {
		return nil, err
	}
	if len(o.multiples) != len(in[0]) {
		return nil, fmt.Errorf("Tile multiples %v vs rank %d", o.multiples, len(in[0]))
	}
	out := make([]int, len(in[0]))
	for i := range out {
		if o.multiples[i] < 1 {
			return nil, fmt.Errorf("Tile multiple < 1: %v", o.multiples)
		}
		out[i] = in[0][i] * o.multiples[i]
	}
	return out, nil
}
func (o tileOp) Forward(ctx *graph.ExecContext, in []*tensor.Tensor) (*tensor.Tensor, error) {
	return tensor.Tile(ctx.Pool, in[0], o.multiples)
}
func (o tileOp) Grad(g *graph.Graph, n *graph.Node, grad *graph.Node) ([]*graph.Node, error) {
	return []*graph.Node{g.MustApply(tileGradOp{orig: copyShape(n.Inputs()[0].Shape())}, grad)}, nil
}

// tileGradOp sums tiled blocks back to the original shape. TensorFlow
// reports this reduction as a Sum, so we use the same profile name.
type tileGradOp struct{ orig []int }

func (tileGradOp) Name() string         { return "Sum" }
func (tileGradOp) Class() graph.OpClass { return graph.ClassReduction }
func (o tileGradOp) InferShape(in [][]int) ([]int, error) {
	if err := wantInputs("Sum", in, 1); err != nil {
		return nil, err
	}
	if len(in[0]) != len(o.orig) {
		return nil, fmt.Errorf("tile grad rank mismatch")
	}
	return copyShape(o.orig), nil
}
func (o tileGradOp) Forward(ctx *graph.ExecContext, in []*tensor.Tensor) (*tensor.Tensor, error) {
	return tensor.TileGradReduce(ctx.Pool, in[0], o.orig), nil
}

// TileN repeats x multiples[i] times along each axis.
func TileN(x *graph.Node, multiples []int) *graph.Node {
	return x.Graph().MustApply(tileOp{multiples: append([]int(nil), multiples...)}, x)
}
