package ops

import (
	"fmt"
	"math"

	"repro/internal/graph"
	"repro/internal/tensor"
)

// ---- fused softmax cross-entropy (class D) ----
//
// CrossEntropy(logits (B,C), labels (B) int-valued) = mean over batch
// of −log softmax(logits)[label]. The gradient is the classic
// (softmax − onehot)/B, emitted as a fused CrossEntropyGrad op.
type crossEntropyOp struct{}

func (crossEntropyOp) Name() string         { return "CrossEntropy" }
func (crossEntropyOp) Class() graph.OpClass { return graph.ClassReduction }
func (crossEntropyOp) InferShape(in [][]int) ([]int, error) {
	if err := wantInputs("CrossEntropy", in, 2); err != nil {
		return nil, err
	}
	if len(in[0]) != 2 || len(in[1]) != 1 || in[0][0] != in[1][0] {
		return nil, fmt.Errorf("CrossEntropy wants logits (B,C) and labels (B), got %v %v", in[0], in[1])
	}
	return []int{}, nil
}
func (crossEntropyOp) Forward(ctx *graph.ExecContext, in []*tensor.Tensor) (*tensor.Tensor, error) {
	logits, labels := in[0], in[1]
	b, c := logits.Shape()[0], logits.Shape()[1]
	ld := logits.Data()
	var total float64
	for r := 0; r < b; r++ {
		row := ld[r*c : (r+1)*c]
		m := row[0]
		for _, v := range row {
			if v > m {
				m = v
			}
		}
		var sum float64
		for _, v := range row {
			sum += math.Exp(float64(v - m))
		}
		lbl := int(labels.Data()[r])
		if lbl < 0 || lbl >= c {
			return nil, fmt.Errorf("CrossEntropy label %d out of range [0,%d)", lbl, c)
		}
		total += math.Log(sum) - float64(row[lbl]-m)
	}
	return tensor.Scalar(float32(total / float64(b))), nil
}
func (crossEntropyOp) Grad(g *graph.Graph, n *graph.Node, grad *graph.Node) ([]*graph.Node, error) {
	logits, labels := n.Inputs()[0], n.Inputs()[1]
	gl := g.MustApply(crossEntropyGradOp{}, logits, labels, grad)
	return []*graph.Node{gl, nil}, nil
}

type crossEntropyGradOp struct{}

func (crossEntropyGradOp) Name() string         { return "CrossEntropyGrad" }
func (crossEntropyGradOp) Class() graph.OpClass { return graph.ClassReduction }
func (crossEntropyGradOp) InferShape(in [][]int) ([]int, error) {
	if err := wantInputs("CrossEntropyGrad", in, 3); err != nil {
		return nil, err
	}
	return copyShape(in[0]), nil
}
func (crossEntropyGradOp) Forward(ctx *graph.ExecContext, in []*tensor.Tensor) (*tensor.Tensor, error) {
	logits, labels, grad := in[0], in[1], in[2]
	b, c := logits.Shape()[0], logits.Shape()[1]
	gscale := grad.Data()[0] / float32(b)
	sm := tensor.Softmax(ctx.Pool, logits)
	od := sm.Data()
	for r := 0; r < b; r++ {
		od[r*c+int(labels.Data()[r])] -= 1
	}
	for i := range od {
		od[i] *= gscale
	}
	return sm, nil
}

// CrossEntropy returns the mean softmax cross-entropy of logits (B,C)
// against integer labels (B). No gradient flows to labels.
func CrossEntropy(logits, labels *graph.Node) *graph.Node {
	return logits.Graph().MustApply(crossEntropyOp{}, logits, labels)
}

// ---- fused sigmoid cross-entropy (class D) ----
//
// SigmoidCrossEntropy(logits, targets) = mean over batch (axis 0) of
// the summed elementwise BCE: Σ max(x,0) − x·t + log(1+e^{−|x|}).
type sigmoidCrossEntropyOp struct{}

func (sigmoidCrossEntropyOp) Name() string         { return "SigmoidCrossEntropy" }
func (sigmoidCrossEntropyOp) Class() graph.OpClass { return graph.ClassReduction }
func (sigmoidCrossEntropyOp) InferShape(in [][]int) ([]int, error) {
	if err := wantInputs("SigmoidCrossEntropy", in, 2); err != nil {
		return nil, err
	}
	if !tensor.SameShape(in[0], in[1]) || len(in[0]) < 1 {
		return nil, fmt.Errorf("SigmoidCrossEntropy wants same-shaped logits/targets, got %v %v", in[0], in[1])
	}
	return []int{}, nil
}
func (sigmoidCrossEntropyOp) Forward(ctx *graph.ExecContext, in []*tensor.Tensor) (*tensor.Tensor, error) {
	x, t := in[0], in[1]
	b := x.Shape()[0]
	xd, td := x.Data(), t.Data()
	var total float64
	for i := range xd {
		xv, tv := float64(xd[i]), float64(td[i])
		total += math.Max(xv, 0) - xv*tv + math.Log(1+math.Exp(-math.Abs(xv)))
	}
	return tensor.Scalar(float32(total / float64(b))), nil
}
func (sigmoidCrossEntropyOp) Grad(g *graph.Graph, n *graph.Node, grad *graph.Node) ([]*graph.Node, error) {
	x, t := n.Inputs()[0], n.Inputs()[1]
	gl := g.MustApply(sigmoidCrossEntropyGradOp{}, x, t, grad)
	return []*graph.Node{gl, nil}, nil
}

type sigmoidCrossEntropyGradOp struct{}

func (sigmoidCrossEntropyGradOp) Name() string         { return "SigmoidCrossEntropyGrad" }
func (sigmoidCrossEntropyGradOp) Class() graph.OpClass { return graph.ClassReduction }
func (sigmoidCrossEntropyGradOp) InferShape(in [][]int) ([]int, error) {
	if err := wantInputs("SigmoidCrossEntropyGrad", in, 3); err != nil {
		return nil, err
	}
	return copyShape(in[0]), nil
}
func (sigmoidCrossEntropyGradOp) Forward(ctx *graph.ExecContext, in []*tensor.Tensor) (*tensor.Tensor, error) {
	x, t, grad := in[0], in[1], in[2]
	b := x.Shape()[0]
	gscale := grad.Data()[0] / float32(b)
	out := tensor.New(x.Shape()...)
	xd, td, od := x.Data(), t.Data(), out.Data()
	ctx.Pool.For(len(xd), 8192, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			sig := float32(1 / (1 + math.Exp(-float64(xd[i]))))
			od[i] = (sig - td[i]) * gscale
		}
	})
	return out, nil
}

// SigmoidCrossEntropy returns mean-over-batch of summed elementwise
// binary cross-entropy between logits and targets.
func SigmoidCrossEntropy(logits, targets *graph.Node) *graph.Node {
	return logits.Graph().MustApply(sigmoidCrossEntropyOp{}, logits, targets)
}
