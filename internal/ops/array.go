package ops

import (
	"fmt"
	"math"

	"repro/internal/graph"
	"repro/internal/tensor"
)

// Horizontally fused array operations (see internal/fuse). A fused
// graph trains K instances of one workload at once by stacking their
// tensors along a new leading fusion axis of size K. Most fused nodes
// are the ordinary primitive lifted across that axis: ArrayWrap runs
// the wrapped kernel once per trainee on contiguous slice views, so
// every trainee's arithmetic — operation order, chunk grid, float32
// rounding — is exactly what its standalone run performs. That
// per-slice execution is the determinism contract's foundation; the
// batched-GEMM fast path (BatchMatMul) keeps it because its kernel is
// itself a per-slice MatMul loop.
//
// The remaining ops here cover what lifting alone cannot: broadcasting
// a shared (unstacked) tensor across trainees, dropout with one shared
// mask so the RNG stream stays in draw-count lockstep with a
// standalone run, and optimizer apply-ops taking a per-trainee
// learning-rate vector so hyperparameter variants diverge only through
// their scalar step sizes.

// MatMulKind reports whether op is the dense 2-D MatMul primitive,
// and its transpose flags. The fusion transform uses it to route
// no-transpose products of two stacked operands onto BatchMatMul.
func MatMulKind(op graph.Op) (transA, transB, ok bool) {
	m, isMM := op.(matMulOp)
	if !isMM {
		return false, false, false
	}
	return m.transA, m.transB, true
}

// DropoutInfo reports whether op is the stateful Dropout primitive and
// its drop rate.
func DropoutInfo(op graph.Op) (rate float32, ok bool) {
	d, isDrop := op.(*dropoutOp)
	if !isDrop {
		return 0, false
	}
	return d.rate, true
}

// DropoutGradSrc reports whether op is a DropoutGrad and returns the
// forward Dropout op whose mask it replays, so the fusion transform
// can pair the fused gradient with the fused forward instance.
func DropoutGradSrc(op graph.Op) (graph.Op, bool) {
	dg, isGrad := op.(*dropoutGradOp)
	if !isGrad {
		return nil, false
	}
	return dg.src, true
}

// ---- generic lifted primitive ----

// arrayOp lifts a pure primitive across the fusion axis: input i is
// either stacked (leading axis k, sliced per trainee) or shared
// (passed whole to every trainee's invocation). Forward runs the inner
// kernel k times on contiguous views, so each slice's result is
// bit-identical to the standalone op on the same operands.
type arrayOp struct {
	k       int
	inner   graph.Op
	stacked []bool
}

func (o *arrayOp) Name() string         { return "Array" + o.inner.Name() }
func (o *arrayOp) Class() graph.OpClass { return o.inner.Class() }

// stripShapes removes the fusion axis from stacked input shapes,
// validating it, and returns the per-trainee shapes the inner op sees.
func (o *arrayOp) stripShapes(in [][]int) ([][]int, error) {
	if len(in) != len(o.stacked) {
		return nil, fmt.Errorf("%s wants %d inputs, got %d", o.Name(), len(o.stacked), len(in))
	}
	inner := make([][]int, len(in))
	for i, s := range in {
		if !o.stacked[i] {
			inner[i] = s
			continue
		}
		if len(s) == 0 || s[0] != o.k {
			return nil, fmt.Errorf("%s stacked input %d has shape %v, want leading axis %d", o.Name(), i, s, o.k)
		}
		inner[i] = s[1:]
	}
	return inner, nil
}

func (o *arrayOp) InferShape(in [][]int) ([]int, error) {
	inner, err := o.stripShapes(in)
	if err != nil {
		return nil, err
	}
	out, err := o.inner.InferShape(inner)
	if err != nil {
		return nil, err
	}
	return append([]int{o.k}, out...), nil
}

// sliceViews returns trainee kk's view of each input: a contiguous
// slice of the stacked tensors, the whole tensor for shared ones.
func (o *arrayOp) sliceViews(in []*tensor.Tensor, kk int, views []*tensor.Tensor) []*tensor.Tensor {
	for i, t := range in {
		if !o.stacked[i] {
			views[i] = t
			continue
		}
		shape := t.Shape()[1:]
		s := tensor.SizeOf(shape)
		views[i] = tensor.FromSlice(t.Data()[kk*s:(kk+1)*s], shape...)
	}
	return views
}

func (o *arrayOp) Forward(ctx *graph.ExecContext, in []*tensor.Tensor) (*tensor.Tensor, error) {
	shapes := make([][]int, len(in))
	for i, t := range in {
		shapes[i] = t.Shape()
	}
	innerShapes, err := o.stripShapes(shapes)
	if err != nil {
		return nil, err
	}
	innerOut, err := o.inner.InferShape(innerShapes)
	if err != nil {
		return nil, err
	}
	out := tensor.New(append([]int{o.k}, innerOut...)...)
	if err := o.runInto(ctx, in, out, innerOut); err != nil {
		return nil, err
	}
	return out, nil
}

// ForwardInto implements graph.IntoOp: every trainee slice of out is
// fully overwritten, and out never aliases an input (the wrapped op
// receives fresh slice views of distinct tensors).
func (o *arrayOp) ForwardInto(ctx *graph.ExecContext, in []*tensor.Tensor, out *tensor.Tensor) error {
	return o.runInto(ctx, in, out, out.Shape()[1:])
}

func (o *arrayOp) runInto(ctx *graph.ExecContext, in []*tensor.Tensor, out *tensor.Tensor, innerOut []int) error {
	s := tensor.SizeOf(innerOut)
	views := make([]*tensor.Tensor, len(in))
	into, hasInto := o.inner.(graph.IntoOp)
	for kk := 0; kk < o.k; kk++ {
		ins := o.sliceViews(in, kk, views)
		dst := out.Data()[kk*s : (kk+1)*s]
		if hasInto {
			if err := into.ForwardInto(ctx, ins, tensor.FromSlice(dst, innerOut...)); err != nil {
				return err
			}
			continue
		}
		res, err := o.inner.Forward(ctx, ins)
		if err != nil {
			return err
		}
		copy(dst, res.Data())
	}
	return nil
}

func (o *arrayOp) Cost(in [][]int, out []int) (int64, int64) {
	inner, err := o.stripShapes(in)
	if err != nil {
		return 0, defaultBytes(in, out)
	}
	if c, ok := o.inner.(graph.Coster); ok {
		flops, bytes := c.Cost(inner, out[1:])
		return flops * int64(o.k), bytes * int64(o.k)
	}
	return 0, defaultBytes(in, out)
}

// ArrayWrap lifts a pure primitive op across a fusion axis of size k.
// stacked[i] marks inputs carrying the leading axis; the rest are
// shared across trainees. Impure or state-mutating ops are rejected —
// they need the dedicated fused forms (ArrayDropout, ApplyArray*).
func ArrayWrap(k int, inner graph.Op, stacked []bool, inputs ...*graph.Node) (*graph.Node, error) {
	if k < 1 {
		return nil, fmt.Errorf("ops: ArrayWrap fusion width %d", k)
	}
	if len(stacked) != len(inputs) {
		return nil, fmt.Errorf("ops: ArrayWrap %d stacked flags for %d inputs", len(stacked), len(inputs))
	}
	if len(inputs) == 0 {
		return nil, fmt.Errorf("ops: ArrayWrap needs at least one input")
	}
	if _, impure := inner.(graph.Impure); impure {
		return nil, fmt.Errorf("ops: ArrayWrap cannot lift impure op %s", inner.Name())
	}
	if _, mutates := inner.(graph.Mutator); mutates {
		return nil, fmt.Errorf("ops: ArrayWrap cannot lift mutating op %s", inner.Name())
	}
	any := false
	for _, s := range stacked {
		any = any || s
	}
	if !any {
		return nil, fmt.Errorf("ops: ArrayWrap of %s with no stacked input — keep it shared instead", inner.Name())
	}
	return inputs[0].Graph().Apply(&arrayOp{
		k:       k,
		inner:   inner,
		stacked: append([]bool(nil), stacked...),
	}, inputs...)
}

// ---- broadcast: shared tensor → stacked ----

// arrayBroadcastOp tiles a shared tensor K times along a new leading
// fusion axis, for the few sites where a fused op needs every operand
// stacked (BatchMatMul).
type arrayBroadcastOp struct{ k int }

func (o *arrayBroadcastOp) Name() string         { return "ArrayBroadcast" }
func (o *arrayBroadcastOp) Class() graph.OpClass { return graph.ClassDataMovement }
func (o *arrayBroadcastOp) InferShape(in [][]int) ([]int, error) {
	if err := wantInputs("ArrayBroadcast", in, 1); err != nil {
		return nil, err
	}
	return append([]int{o.k}, copyShape(in[0])...), nil
}
func (o *arrayBroadcastOp) Forward(ctx *graph.ExecContext, in []*tensor.Tensor) (*tensor.Tensor, error) {
	out := tensor.New(append([]int{o.k}, in[0].Shape()...)...)
	if err := o.ForwardInto(ctx, in, out); err != nil {
		return nil, err
	}
	return out, nil
}

// ForwardInto implements graph.IntoOp.
func (o *arrayBroadcastOp) ForwardInto(ctx *graph.ExecContext, in []*tensor.Tensor, out *tensor.Tensor) error {
	src := in[0].Data()
	s := len(src)
	od := out.Data()
	for kk := 0; kk < o.k; kk++ {
		copy(od[kk*s:(kk+1)*s], src)
	}
	return nil
}
func (o *arrayBroadcastOp) Cost(in [][]int, out []int) (int64, int64) {
	return 0, defaultBytes(in, out)
}

// ArrayBroadcast stacks a shared tensor K times along a new leading
// fusion axis.
func ArrayBroadcast(k int, x *graph.Node) *graph.Node {
	return x.Graph().MustApply(&arrayBroadcastOp{k: k}, x)
}

// ---- fused dropout ----

// arrayDropoutOp is fused dropout with one shared mask: it samples a
// single per-trainee-shaped mask — the same number of RNG draws a
// standalone run makes, keeping every downstream draw in the shared
// stream aligned — and applies it to all K trainee slices. Trainees
// share the seed by construction (fusion admits only seed-identical
// instances), so the shared mask is exactly the mask each standalone
// run would sample.
type arrayDropoutOp struct {
	k    int
	rate float32
	mask *tensor.Tensor // last sampled per-trainee mask (training only)
}

func (*arrayDropoutOp) Name() string         { return "ArrayDropout" }
func (*arrayDropoutOp) Class() graph.OpClass { return graph.ClassRandom }
func (o *arrayDropoutOp) InferShape(in [][]int) ([]int, error) {
	if err := wantInputs("ArrayDropout", in, 1); err != nil {
		return nil, err
	}
	if len(in[0]) == 0 || in[0][0] != o.k {
		return nil, fmt.Errorf("ArrayDropout input %v, want leading axis %d", in[0], o.k)
	}
	return copyShape(in[0]), nil
}
func (o *arrayDropoutOp) Forward(ctx *graph.ExecContext, in []*tensor.Tensor) (*tensor.Tensor, error) {
	x := in[0]
	if !ctx.Training || o.rate <= 0 {
		return x, nil
	}
	keep := 1 - o.rate
	mask := tensor.New(x.Shape()[1:]...)
	md := mask.Data()
	inv := 1 / keep
	for i := range md {
		if ctx.RNG.Float32() < keep {
			md[i] = inv
		}
	}
	o.mask = mask
	return arrayMaskApply(ctx, x, mask, o.k)
}

// Impure implements graph.Impure: stateful and stochastic — and may
// return its input as a view in inference mode, so no IntoOp.
func (*arrayDropoutOp) Impure() {}

// arrayMaskApply multiplies every trainee slice of x by the shared
// per-trainee mask, each through the same elementwise kernel a
// standalone run uses.
func arrayMaskApply(ctx *graph.ExecContext, x, mask *tensor.Tensor, k int) (*tensor.Tensor, error) {
	out := tensor.New(x.Shape()...)
	s := len(mask.Data())
	shape := mask.Shape()
	for kk := 0; kk < k; kk++ {
		xi := tensor.FromSlice(x.Data()[kk*s:(kk+1)*s], shape...)
		r, err := tensor.BinaryOp(ctx.Pool, xi, mask, func(a, m float32) float32 { return a * m })
		if err != nil {
			return nil, err
		}
		copy(out.Data()[kk*s:(kk+1)*s], r.Data())
	}
	return out, nil
}

type arrayDropoutGradOp struct{ src *arrayDropoutOp }

func (*arrayDropoutGradOp) Name() string         { return "ArrayDropoutGrad" }
func (*arrayDropoutGradOp) Class() graph.OpClass { return graph.ClassRandom }
func (o *arrayDropoutGradOp) InferShape(in [][]int) ([]int, error) {
	if err := wantInputs("ArrayDropoutGrad", in, 1); err != nil {
		return nil, err
	}
	return copyShape(in[0]), nil
}
func (o *arrayDropoutGradOp) Forward(ctx *graph.ExecContext, in []*tensor.Tensor) (*tensor.Tensor, error) {
	if !ctx.Training || o.src.rate <= 0 || o.src.mask == nil {
		return in[0], nil
	}
	return arrayMaskApply(ctx, in[0], o.src.mask, o.src.k)
}

// Impure implements graph.Impure.
func (*arrayDropoutGradOp) Impure() {}

// ArrayDropout applies fused inverted dropout with a single shared
// mask to a stacked (K,...) tensor.
func ArrayDropout(k int, x *graph.Node, rate float32) *graph.Node {
	return x.Graph().MustApply(&arrayDropoutOp{k: k, rate: rate}, x)
}

// ArrayDropoutGrad pairs the fused dropout gradient with its forward
// node, replaying the same shared mask. drop must be a node built by
// ArrayDropout.
func ArrayDropoutGrad(drop, grad *graph.Node) (*graph.Node, error) {
	src, ok := drop.Op().(*arrayDropoutOp)
	if !ok {
		return nil, fmt.Errorf("ops: ArrayDropoutGrad source %s is not an ArrayDropout", drop.OpName())
	}
	return grad.Graph().Apply(&arrayDropoutGradOp{src: src}, grad)
}

// ---- fused optimizer apply-ops ----
//
// Each fused apply-op mirrors its scalar counterpart in
// optimizer.go exactly — same per-element arithmetic, same parallel-For
// grain — but runs it once per trainee slice with that trainee's
// learning rate. The slot tensors (velocity, RMS accumulators, Adam
// moments) live on the stacked (K,...) shape, so trainee kk's slot
// slice evolves bit-identically to its standalone run's slot tensor.

// arrayLRs validates and copies a per-trainee learning-rate vector.
func arrayLRs(lrs []float32) []float32 { return append([]float32(nil), lrs...) }

// checkArrayApply validates a fused apply-op's gradient input against
// its stacked target and the learning-rate vector length.
func checkArrayApply(name string, in [][]int, target *graph.Node, k int) error {
	if err := wantInputs(name, in, 1); err != nil {
		return err
	}
	if !tensor.SameShape(in[0], target.Shape()) {
		return fmt.Errorf("%s grad %v vs var %v", name, in[0], target.Shape())
	}
	if len(target.Shape()) == 0 || target.Shape()[0] != k {
		return fmt.Errorf("%s var %v, want leading fusion axis %d", name, target.Shape(), k)
	}
	return nil
}

type applyArraySGDOp struct {
	target *graph.Node
	lrs    []float32
}

func (*applyArraySGDOp) Name() string         { return "ArrayApplyGradientDescent" }
func (*applyArraySGDOp) Class() graph.OpClass { return graph.ClassOptimization }
func (o *applyArraySGDOp) InferShape(in [][]int) ([]int, error) {
	if err := checkArrayApply("ArrayApplyGradientDescent", in, o.target, len(o.lrs)); err != nil {
		return nil, err
	}
	return []int{}, nil
}
func (o *applyArraySGDOp) Forward(ctx *graph.ExecContext, in []*tensor.Tensor) (*tensor.Tensor, error) {
	v := o.target.Value().Data()
	g := in[0].Data()
	s := len(v) / len(o.lrs)
	for kk, lr := range o.lrs {
		vk, gk := v[kk*s:(kk+1)*s], g[kk*s:(kk+1)*s]
		lr := lr
		ctx.Pool.For(s, 16384, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				vk[i] -= lr * gk[i]
			}
		})
	}
	return tensor.Scalar(0), nil
}
func (o *applyArraySGDOp) Cost(in [][]int, out []int) (int64, int64) {
	n := int64(tensor.SizeOf(in[0]))
	return n, 3 * n * elemBytes
}

// Mutates implements graph.Mutator.
func (o *applyArraySGDOp) Mutates() []*graph.Node { return []*graph.Node{o.target} }

// Impure implements graph.Impure.
func (*applyArraySGDOp) Impure() {}

// ApplyArraySGD adds a fused gradient-descent update of stacked
// variable v by grad, trainee kk stepping with lrs[kk].
func ApplyArraySGD(v, grad *graph.Node, lrs []float32) *graph.Node {
	return v.Graph().MustApply(&applyArraySGDOp{target: v, lrs: arrayLRs(lrs)}, grad)
}

type applyArrayMomentumOp struct {
	target   *graph.Node
	lrs      []float32
	mom      float32
	velocity *graph.Node
}

func (*applyArrayMomentumOp) Name() string         { return "ArrayApplyMomentum" }
func (*applyArrayMomentumOp) Class() graph.OpClass { return graph.ClassOptimization }
func (o *applyArrayMomentumOp) InferShape(in [][]int) ([]int, error) {
	if err := checkArrayApply("ArrayApplyMomentum", in, o.target, len(o.lrs)); err != nil {
		return nil, err
	}
	return []int{}, nil
}
func (o *applyArrayMomentumOp) Forward(ctx *graph.ExecContext, in []*tensor.Tensor) (*tensor.Tensor, error) {
	v := o.target.Value().Data()
	vel := o.velocity.Value().Data()
	g := in[0].Data()
	mom := o.mom
	s := len(v) / len(o.lrs)
	for kk, lr := range o.lrs {
		vk, velk, gk := v[kk*s:(kk+1)*s], vel[kk*s:(kk+1)*s], g[kk*s:(kk+1)*s]
		lr := lr
		ctx.Pool.For(s, 16384, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				velk[i] = mom*velk[i] + gk[i]
				vk[i] -= lr * velk[i]
			}
		})
	}
	return tensor.Scalar(0), nil
}
func (o *applyArrayMomentumOp) Cost(in [][]int, out []int) (int64, int64) {
	n := int64(tensor.SizeOf(in[0]))
	return 3 * n, 5 * n * elemBytes
}

// Mutates implements graph.Mutator.
func (o *applyArrayMomentumOp) Mutates() []*graph.Node {
	return []*graph.Node{o.target, o.velocity}
}

// Impure implements graph.Impure.
func (*applyArrayMomentumOp) Impure() {}

// ApplyArrayMomentum adds a fused momentum-SGD update of stacked
// variable v by grad. The stacked velocity accumulator is a
// "<v>/slot/velocity" graph variable — checkpointed state, like the
// scalar apply-ops' slots — so a restored fused array resumes the
// exact optimizer trajectory.
func ApplyArrayMomentum(v, grad *graph.Node, lrs []float32, momentum float32) *graph.Node {
	op := &applyArrayMomentumOp{target: v, lrs: arrayLRs(lrs), mom: momentum, velocity: slotVar(v, "velocity")}
	return v.Graph().MustApply(op, grad)
}

type applyArrayRMSPropOp struct {
	target     *graph.Node
	lrs        []float32
	decay, eps float32
	ms         *graph.Node
}

func (*applyArrayRMSPropOp) Name() string         { return "ArrayApplyRMSProp" }
func (*applyArrayRMSPropOp) Class() graph.OpClass { return graph.ClassOptimization }
func (o *applyArrayRMSPropOp) InferShape(in [][]int) ([]int, error) {
	if err := checkArrayApply("ArrayApplyRMSProp", in, o.target, len(o.lrs)); err != nil {
		return nil, err
	}
	return []int{}, nil
}
func (o *applyArrayRMSPropOp) Forward(ctx *graph.ExecContext, in []*tensor.Tensor) (*tensor.Tensor, error) {
	v := o.target.Value().Data()
	ms := o.ms.Value().Data()
	g := in[0].Data()
	decay, eps := o.decay, o.eps
	s := len(v) / len(o.lrs)
	for kk, lr := range o.lrs {
		vk, msk, gk := v[kk*s:(kk+1)*s], ms[kk*s:(kk+1)*s], g[kk*s:(kk+1)*s]
		lr := lr
		ctx.Pool.For(s, 8192, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				msk[i] = decay*msk[i] + (1-decay)*gk[i]*gk[i]
				vk[i] -= lr * gk[i] / float32(math.Sqrt(float64(msk[i]))+float64(eps))
			}
		})
	}
	return tensor.Scalar(0), nil
}
func (o *applyArrayRMSPropOp) Cost(in [][]int, out []int) (int64, int64) {
	n := int64(tensor.SizeOf(in[0]))
	return 6 * n, 5 * n * elemBytes
}

// Mutates implements graph.Mutator.
func (o *applyArrayRMSPropOp) Mutates() []*graph.Node { return []*graph.Node{o.target, o.ms} }

// Impure implements graph.Impure.
func (*applyArrayRMSPropOp) Impure() {}

// ApplyArrayRMSProp adds a fused RMSProp update of stacked variable v
// by grad. The stacked RMS statistic is a "<v>/slot/ms" graph
// variable, so it rides along in checkpoints.
func ApplyArrayRMSProp(v, grad *graph.Node, lrs []float32, decay, eps float32) *graph.Node {
	op := &applyArrayRMSPropOp{target: v, lrs: arrayLRs(lrs), decay: decay, eps: eps, ms: slotVar(v, "ms")}
	return v.Graph().MustApply(op, grad)
}

type applyArrayAdamOp struct {
	target      *graph.Node
	lrs         []float32
	b1, b2, eps float32
	m, v, step  *graph.Node
}

func (*applyArrayAdamOp) Name() string         { return "ArrayApplyAdam" }
func (*applyArrayAdamOp) Class() graph.OpClass { return graph.ClassOptimization }
func (o *applyArrayAdamOp) InferShape(in [][]int) ([]int, error) {
	if err := checkArrayApply("ArrayApplyAdam", in, o.target, len(o.lrs)); err != nil {
		return nil, err
	}
	return []int{}, nil
}
func (o *applyArrayAdamOp) Forward(ctx *graph.ExecContext, in []*tensor.Tensor) (*tensor.Tensor, error) {
	// The shared step counter lives in a shape-{1} variable (all
	// trainees step together), so checkpoints restore the bias
	// correction along with the moments — same scheme as ApplyAdam.
	st := o.step.Value().Data()
	st[0]++
	step := float64(st[0])
	w := o.target.Value().Data()
	m, v := o.m.Value().Data(), o.v.Value().Data()
	g := in[0].Data()
	b1, b2 := float64(o.b1), float64(o.b2)
	c1 := 1 - math.Pow(b1, step)
	c2 := 1 - math.Pow(b2, step)
	eps := float64(o.eps)
	s := len(w) / len(o.lrs)
	for kk, lrk := range o.lrs {
		wk, mk, vk, gk := w[kk*s:(kk+1)*s], m[kk*s:(kk+1)*s], v[kk*s:(kk+1)*s], g[kk*s:(kk+1)*s]
		lr := float64(lrk) * math.Sqrt(c2) / c1
		ctx.Pool.For(s, 8192, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				gi := float64(gk[i])
				mi := b1*float64(mk[i]) + (1-b1)*gi
				vi := b2*float64(vk[i]) + (1-b2)*gi*gi
				mk[i], vk[i] = float32(mi), float32(vi)
				wk[i] -= float32(lr * mi / (math.Sqrt(vi) + eps))
			}
		})
	}
	return tensor.Scalar(0), nil
}
func (o *applyArrayAdamOp) Cost(in [][]int, out []int) (int64, int64) {
	n := int64(tensor.SizeOf(in[0]))
	return 10 * n, 7 * n * elemBytes
}

// Mutates implements graph.Mutator.
func (o *applyArrayAdamOp) Mutates() []*graph.Node {
	return []*graph.Node{o.target, o.m, o.v, o.step}
}

// Impure implements graph.Impure.
func (*applyArrayAdamOp) Impure() {}

// ApplyArrayAdam adds a fused Adam update of stacked variable v by
// grad. The bias-correction step counter is shared — all trainees step
// together — so each trainee's effective rate matches its standalone
// schedule. Moments and the step counter are "<v>/slot/{m,v,step}"
// graph variables, so a restored fused array resumes the exact
// trajectory, bias correction included.
func ApplyArrayAdam(v, grad *graph.Node, lrs []float32, beta1, beta2, eps float32) *graph.Node {
	op := &applyArrayAdamOp{
		target: v, lrs: arrayLRs(lrs), b1: beta1, b2: beta2, eps: eps,
		m: slotVar(v, "m"), v: slotVar(v, "v"), step: slotVar(v, "step", 1),
	}
	return v.Graph().MustApply(op, grad)
}

type applyArrayAdagradOp struct {
	target *graph.Node
	lrs    []float32
	eps    float32
	accum  *graph.Node
}

func (*applyArrayAdagradOp) Name() string         { return "ArrayApplyAdagrad" }
func (*applyArrayAdagradOp) Class() graph.OpClass { return graph.ClassOptimization }
func (o *applyArrayAdagradOp) InferShape(in [][]int) ([]int, error) {
	if err := checkArrayApply("ArrayApplyAdagrad", in, o.target, len(o.lrs)); err != nil {
		return nil, err
	}
	return []int{}, nil
}
func (o *applyArrayAdagradOp) Forward(ctx *graph.ExecContext, in []*tensor.Tensor) (*tensor.Tensor, error) {
	v := o.target.Value().Data()
	acc := o.accum.Value().Data()
	g := in[0].Data()
	eps := o.eps
	s := len(v) / len(o.lrs)
	for kk, lr := range o.lrs {
		vk, acck, gk := v[kk*s:(kk+1)*s], acc[kk*s:(kk+1)*s], g[kk*s:(kk+1)*s]
		lr := lr
		ctx.Pool.For(s, 8192, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				acck[i] += gk[i] * gk[i]
				vk[i] -= lr * gk[i] / (float32(math.Sqrt(float64(acck[i]))) + eps)
			}
		})
	}
	return tensor.Scalar(0), nil
}
func (o *applyArrayAdagradOp) Cost(in [][]int, out []int) (int64, int64) {
	n := int64(tensor.SizeOf(in[0]))
	return 5 * n, 5 * n * elemBytes
}

// Mutates implements graph.Mutator.
func (o *applyArrayAdagradOp) Mutates() []*graph.Node { return []*graph.Node{o.target, o.accum} }

// Impure implements graph.Impure.
func (*applyArrayAdagradOp) Impure() {}

// ApplyArrayAdagrad adds a fused AdaGrad update of stacked variable v
// by grad. The stacked gradient-square accumulator is a
// "<v>/slot/accum" graph variable, so it rides along in checkpoints.
func ApplyArrayAdagrad(v, grad *graph.Node, lrs []float32, eps float32) *graph.Node {
	op := &applyArrayAdagradOp{target: v, lrs: arrayLRs(lrs), eps: eps, accum: slotVar(v, "accum")}
	return v.Graph().MustApply(op, grad)
}
