package ops

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/tensor"
)

// batchMatMulOp multiplies stacks of matrices: (B,M,K)·(B,K,N) →
// (B,M,N), class A. Attention mechanisms are its natural consumer;
// the suite's models deliberately use the Mul+Tile+Sum decomposition
// the paper profiles, but the fused form is part of a complete
// operation library (and the ablation benchmarks compare the two).
type batchMatMulOp struct{}

func (batchMatMulOp) Name() string         { return "BatchMatMul" }
func (batchMatMulOp) Class() graph.OpClass { return graph.ClassMatrix }

func (batchMatMulOp) InferShape(in [][]int) ([]int, error) {
	if err := wantInputs("BatchMatMul", in, 2); err != nil {
		return nil, err
	}
	a, b := in[0], in[1]
	if len(a) != 3 || len(b) != 3 {
		return nil, fmt.Errorf("BatchMatMul wants rank-3 inputs, got %v %v", a, b)
	}
	if a[0] != b[0] {
		return nil, fmt.Errorf("BatchMatMul batch dims %d vs %d", a[0], b[0])
	}
	if a[2] != b[1] {
		return nil, fmt.Errorf("BatchMatMul inner dims %v × %v", a, b)
	}
	return []int{a[0], a[1], b[2]}, nil
}

func (batchMatMulOp) Forward(ctx *graph.ExecContext, in []*tensor.Tensor) (*tensor.Tensor, error) {
	a, b := in[0], in[1]
	batch, m, k := a.Shape()[0], a.Shape()[1], a.Shape()[2]
	n := b.Shape()[2]
	out := tensor.New(batch, m, n)
	for i := 0; i < batch; i++ {
		ai := tensor.FromSlice(a.Data()[i*m*k:(i+1)*m*k], m, k)
		bi := tensor.FromSlice(b.Data()[i*k*n:(i+1)*k*n], k, n)
		ci, err := tensor.MatMul(ctx.Pool, ai, bi, false, false)
		if err != nil {
			return nil, err
		}
		copy(out.Data()[i*m*n:(i+1)*m*n], ci.Data())
	}
	return out, nil
}

func (batchMatMulOp) Cost(in [][]int, out []int) (int64, int64) {
	a, b := in[0], in[1]
	return 2 * int64(a[0]) * int64(a[1]) * int64(a[2]) * int64(b[2]), defaultBytes(in, out)
}

func (batchMatMulOp) Grad(g *graph.Graph, n *graph.Node, grad *graph.Node) ([]*graph.Node, error) {
	a, b := n.Inputs()[0], n.Inputs()[1]
	// gA = G·Bᵀ, gB = Aᵀ·G batchwise, via transposed batch products.
	bt := TransposePerm(b, []int{0, 2, 1})
	at := TransposePerm(a, []int{0, 2, 1})
	ga := BatchMatMul(grad, bt)
	gb := BatchMatMul(at, grad)
	return []*graph.Node{ga, gb}, nil
}

// BatchMatMul returns the batched matrix product of rank-3 nodes.
func BatchMatMul(a, b *graph.Node) *graph.Node {
	return a.Graph().MustApply(batchMatMulOp{}, a, b)
}

// ---- OneHot (class G) ----

// oneHotOp expands integer-valued indices (B) to one-hot rows (B,depth).
type oneHotOp struct{ depth int }

func (oneHotOp) Name() string         { return "OneHot" }
func (oneHotOp) Class() graph.OpClass { return graph.ClassDataMovement }
func (o oneHotOp) InferShape(in [][]int) ([]int, error) {
	if err := wantInputs("OneHot", in, 1); err != nil {
		return nil, err
	}
	if o.depth < 1 {
		return nil, fmt.Errorf("OneHot depth must be positive")
	}
	return append(copyShape(in[0]), o.depth), nil
}
func (o oneHotOp) Forward(ctx *graph.ExecContext, in []*tensor.Tensor) (*tensor.Tensor, error) {
	idx := in[0]
	out := tensor.New(append(copyShape(idx.Shape()), o.depth)...)
	od := out.Data()
	for i, v := range idx.Data() {
		k := int(v)
		if k < 0 || k >= o.depth {
			return nil, fmt.Errorf("OneHot index %d out of range [0,%d)", k, o.depth)
		}
		od[i*o.depth+k] = 1
	}
	return out, nil
}

// OneHot expands integer indices to one-hot vectors of the given depth
// (no gradient flows to indices).
func OneHot(indices *graph.Node, depth int) *graph.Node {
	return indices.Graph().MustApply(oneHotOp{depth: depth}, indices)
}

// ---- Split builder: N equal slices along an axis ----

// Split slices x into n equal parts along axis, returning the pieces
// in order. The slices form an exact partition, so autodiff assembles
// their gradients with a single Concat.
func Split(x *graph.Node, axis, n int) []*graph.Node {
	if axis < 0 {
		axis += len(x.Shape())
	}
	total := x.Shape()[axis]
	if n < 1 || total%n != 0 {
		panic(fmt.Sprintf("ops: Split axis %d of length %d into %d parts", axis, total, n))
	}
	part := total / n
	out := make([]*graph.Node, n)
	for i := range out {
		begin := make([]int, len(x.Shape()))
		size := make([]int, len(x.Shape()))
		for j := range size {
			size[j] = -1
		}
		begin[axis] = i * part
		size[axis] = part
		out[i] = SliceN(x, begin, size)
	}
	return out
}

// Stack joins nodes of identical shape along a new leading axis by
// expanding and concatenating (TensorFlow's Pack).
func Stack(xs ...*graph.Node) *graph.Node {
	exp := make([]*graph.Node, len(xs))
	for i, x := range xs {
		exp[i] = ExpandDims(x, 0)
	}
	return ConcatN(0, exp...)
}
