package ops

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/runtime"
	"repro/internal/tensor"
)

// gradCase builds a scalar loss over a set of variables; the checker
// compares symbolic gradients against central finite differences.
type gradCase struct {
	name  string
	build func(g *graph.Graph, rng *rand.Rand) (loss *graph.Node, vars []*graph.Node)
	eps   float64 // finite-difference step (default 1e-2)
	tol   float64 // absolute+relative tolerance (default 2e-2)
}

// weightedSum turns any node into a scalar loss with non-uniform
// upstream gradients: Sum(x ⊙ C) for a fixed random C.
func weightedSum(x *graph.Node, rng *rand.Rand) *graph.Node {
	c := x.Graph().Const("loss_weights", tensor.RandNormal(rng, 0, 1, x.Shape()...))
	return Sum(Mul(x, c))
}

func evalLoss(t *testing.T, loss *graph.Node) float64 {
	t.Helper()
	s := runtime.NewSession(loss.Graph(), runtime.WithSeed(7))
	s.SetTraining(true)
	out, err := s.Run([]*graph.Node{loss}, nil)
	if err != nil {
		t.Fatalf("eval loss: %v", err)
	}
	return float64(out[0].Data()[0])
}

func runGradCheck(t *testing.T, tc gradCase) {
	t.Helper()
	rng := rand.New(rand.NewSource(42))
	g := graph.New()
	loss, vars := tc.build(g, rng)
	grads, err := graph.Gradients(loss, vars)
	if err != nil {
		t.Fatalf("%s: Gradients: %v", tc.name, err)
	}
	eps := tc.eps
	if eps == 0 {
		eps = 1e-2
	}
	tol := tc.tol
	if tol == 0 {
		tol = 2e-2
	}
	// Evaluate analytic gradients once.
	s := runtime.NewSession(g, runtime.WithSeed(7))
	s.SetTraining(true)
	analytic := make([]*tensor.Tensor, len(vars))
	fetches := []*graph.Node{}
	idxOf := map[int]int{}
	for i, gn := range grads {
		if gn == nil {
			t.Fatalf("%s: nil gradient for var %d", tc.name, i)
		}
		idxOf[i] = len(fetches)
		fetches = append(fetches, gn)
	}
	outs, err := s.Run(fetches, nil)
	if err != nil {
		t.Fatalf("%s: eval grads: %v", tc.name, err)
	}
	for i := range vars {
		analytic[i] = outs[idxOf[i]]
	}
	// Spot-check up to 6 coordinates per variable numerically.
	for vi, v := range vars {
		data := v.Value().Data()
		stride := len(data)/6 + 1
		for i := 0; i < len(data); i += stride {
			orig := data[i]
			data[i] = orig + float32(eps)
			lp := evalLoss(t, loss)
			data[i] = orig - float32(eps)
			lm := evalLoss(t, loss)
			data[i] = orig
			num := (lp - lm) / (2 * eps)
			got := float64(analytic[vi].Data()[i])
			diff := num - got
			if diff < 0 {
				diff = -diff
			}
			scale := 1.0
			if a := absf(num); a > scale {
				scale = a
			}
			if diff > tol*scale {
				t.Errorf("%s: var %d [%d]: analytic %.5f numeric %.5f", tc.name, vi, i, got, num)
			}
		}
	}
}

func absf(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// v creates a variable with smooth, kink-free values.
func mkVar(g *graph.Graph, rng *rand.Rand, name string, lo, hi float64, shape ...int) *graph.Node {
	return g.Variable(name, tensor.RandUniform(rng, lo, hi, shape...))
}

func TestGradBinaryOps(t *testing.T) {
	cases := []gradCase{
		{name: "Add", build: func(g *graph.Graph, rng *rand.Rand) (*graph.Node, []*graph.Node) {
			a := mkVar(g, rng, "a", -1, 1, 3, 4)
			b := mkVar(g, rng, "b", -1, 1, 3, 4)
			return weightedSum(Add(a, b), rng), []*graph.Node{a, b}
		}},
		{name: "AddBroadcastBias", build: func(g *graph.Graph, rng *rand.Rand) (*graph.Node, []*graph.Node) {
			a := mkVar(g, rng, "a", -1, 1, 3, 4)
			b := mkVar(g, rng, "b", -1, 1, 4)
			return weightedSum(Add(a, b), rng), []*graph.Node{a, b}
		}},
		{name: "Sub", build: func(g *graph.Graph, rng *rand.Rand) (*graph.Node, []*graph.Node) {
			a := mkVar(g, rng, "a", -1, 1, 2, 3)
			b := mkVar(g, rng, "b", -1, 1, 2, 3)
			return weightedSum(Sub(a, b), rng), []*graph.Node{a, b}
		}},
		{name: "Mul", build: func(g *graph.Graph, rng *rand.Rand) (*graph.Node, []*graph.Node) {
			a := mkVar(g, rng, "a", 0.5, 1.5, 2, 3)
			b := mkVar(g, rng, "b", 0.5, 1.5, 2, 3)
			return weightedSum(Mul(a, b), rng), []*graph.Node{a, b}
		}},
		{name: "MulBroadcastScalar", build: func(g *graph.Graph, rng *rand.Rand) (*graph.Node, []*graph.Node) {
			a := mkVar(g, rng, "a", 0.5, 1.5, 2, 3)
			b := mkVar(g, rng, "b", 0.5, 1.5)
			return weightedSum(Mul(a, b), rng), []*graph.Node{a, b}
		}},
		{name: "Div", build: func(g *graph.Graph, rng *rand.Rand) (*graph.Node, []*graph.Node) {
			a := mkVar(g, rng, "a", 0.5, 1.5, 2, 3)
			b := mkVar(g, rng, "b", 1.0, 2.0, 2, 3)
			return weightedSum(Div(a, b), rng), []*graph.Node{a, b}
		}},
		{name: "Maximum", build: func(g *graph.Graph, rng *rand.Rand) (*graph.Node, []*graph.Node) {
			a := mkVar(g, rng, "a", 0.5, 1.0, 2, 3)
			b := mkVar(g, rng, "b", 1.5, 2.0, 2, 3) // well separated from a
			return weightedSum(Maximum(a, b), rng), []*graph.Node{a, b}
		}},
		{name: "Minimum", build: func(g *graph.Graph, rng *rand.Rand) (*graph.Node, []*graph.Node) {
			a := mkVar(g, rng, "a", 0.5, 1.0, 2, 3)
			b := mkVar(g, rng, "b", 1.5, 2.0, 2, 3)
			return weightedSum(Minimum(a, b), rng), []*graph.Node{a, b}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) { runGradCheck(t, tc) })
	}
}

func TestGradUnaryOps(t *testing.T) {
	cases := []gradCase{
		{name: "Neg", build: func(g *graph.Graph, rng *rand.Rand) (*graph.Node, []*graph.Node) {
			a := mkVar(g, rng, "a", -1, 1, 5)
			return weightedSum(Neg(a), rng), []*graph.Node{a}
		}},
		{name: "Exp", build: func(g *graph.Graph, rng *rand.Rand) (*graph.Node, []*graph.Node) {
			a := mkVar(g, rng, "a", -1, 1, 5)
			return weightedSum(Exp(a), rng), []*graph.Node{a}
		}},
		{name: "Log", build: func(g *graph.Graph, rng *rand.Rand) (*graph.Node, []*graph.Node) {
			a := mkVar(g, rng, "a", 0.5, 2, 5)
			return weightedSum(Log(a), rng), []*graph.Node{a}
		}},
		{name: "Sqrt", build: func(g *graph.Graph, rng *rand.Rand) (*graph.Node, []*graph.Node) {
			a := mkVar(g, rng, "a", 0.5, 2, 5)
			return weightedSum(Sqrt(a), rng), []*graph.Node{a}
		}},
		{name: "Square", build: func(g *graph.Graph, rng *rand.Rand) (*graph.Node, []*graph.Node) {
			a := mkVar(g, rng, "a", -1, 1, 5)
			return weightedSum(Square(a), rng), []*graph.Node{a}
		}},
		{name: "Tanh", build: func(g *graph.Graph, rng *rand.Rand) (*graph.Node, []*graph.Node) {
			a := mkVar(g, rng, "a", -1, 1, 5)
			return weightedSum(Tanh(a), rng), []*graph.Node{a}
		}},
		{name: "Sigmoid", build: func(g *graph.Graph, rng *rand.Rand) (*graph.Node, []*graph.Node) {
			a := mkVar(g, rng, "a", -1, 1, 5)
			return weightedSum(Sigmoid(a), rng), []*graph.Node{a}
		}},
		{name: "Relu", build: func(g *graph.Graph, rng *rand.Rand) (*graph.Node, []*graph.Node) {
			a := mkVar(g, rng, "a", 0.3, 1.5, 5) // away from the kink
			return weightedSum(Relu(a), rng), []*graph.Node{a}
		}},
		{name: "Pow", build: func(g *graph.Graph, rng *rand.Rand) (*graph.Node, []*graph.Node) {
			a := mkVar(g, rng, "a", 0.5, 1.5, 5)
			return weightedSum(Pow(a, 3), rng), []*graph.Node{a}
		}},
		{name: "Huber", build: func(g *graph.Graph, rng *rand.Rand) (*graph.Node, []*graph.Node) {
			a := mkVar(g, rng, "a", -0.5, 0.5, 5) // inside quadratic region
			return weightedSum(Huber(a, 1), rng), []*graph.Node{a}
		}},
		{name: "HuberLinearRegion", build: func(g *graph.Graph, rng *rand.Rand) (*graph.Node, []*graph.Node) {
			a := mkVar(g, rng, "a", 2, 3, 5) // inside linear region
			return weightedSum(Huber(a, 1), rng), []*graph.Node{a}
		}},
		{name: "ClippedRelu", build: func(g *graph.Graph, rng *rand.Rand) (*graph.Node, []*graph.Node) {
			a := mkVar(g, rng, "a", 1, 5, 6) // below the clip at 20
			return weightedSum(ClippedRelu(a, 20), rng), []*graph.Node{a}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) { runGradCheck(t, tc) })
	}
}

func TestGradMatMulAllCombos(t *testing.T) {
	for _, ta := range []bool{false, true} {
		for _, tb := range []bool{false, true} {
			ta, tb := ta, tb
			name := "MatMul"
			if ta {
				name += "_tA"
			}
			if tb {
				name += "_tB"
			}
			runGradCheck(t, gradCase{name: name, build: func(g *graph.Graph, rng *rand.Rand) (*graph.Node, []*graph.Node) {
				ashape := []int{3, 4}
				if ta {
					ashape = []int{4, 3}
				}
				bshape := []int{4, 2}
				if tb {
					bshape = []int{2, 4}
				}
				a := mkVar(g, rng, "a", -1, 1, ashape...)
				b := mkVar(g, rng, "b", -1, 1, bshape...)
				return weightedSum(MatMulT(a, b, ta, tb), rng), []*graph.Node{a, b}
			}})
		}
	}
}

func TestGradConvAndPooling(t *testing.T) {
	cases := []gradCase{
		{name: "Conv2D", build: func(g *graph.Graph, rng *rand.Rand) (*graph.Node, []*graph.Node) {
			x := mkVar(g, rng, "x", -1, 1, 1, 6, 6, 2)
			f := mkVar(g, rng, "f", -0.5, 0.5, 3, 3, 2, 2)
			return weightedSum(Conv2D(x, f, 2, 2, 1, 1), rng), []*graph.Node{x, f}
		}},
		{name: "Conv2DStride1NoPad", build: func(g *graph.Graph, rng *rand.Rand) (*graph.Node, []*graph.Node) {
			x := mkVar(g, rng, "x", -1, 1, 2, 5, 5, 1)
			f := mkVar(g, rng, "f", -0.5, 0.5, 3, 3, 1, 3)
			return weightedSum(Conv2D(x, f, 1, 1, 0, 0), rng), []*graph.Node{x, f}
		}},
		{name: "MaxPool", build: func(g *graph.Graph, rng *rand.Rand) (*graph.Node, []*graph.Node) {
			x := mkVar(g, rng, "x", 0, 10, 1, 4, 4, 2) // widely spread: unique maxima
			return weightedSum(MaxPool(x, 2, 2, 0), rng), []*graph.Node{x}
		}},
		{name: "AvgPool", build: func(g *graph.Graph, rng *rand.Rand) (*graph.Node, []*graph.Node) {
			x := mkVar(g, rng, "x", -1, 1, 1, 4, 4, 2)
			return weightedSum(AvgPool(x, 2, 2, 0), rng), []*graph.Node{x}
		}},
		{name: "LRN", eps: 5e-3, tol: 5e-2, build: func(g *graph.Graph, rng *rand.Rand) (*graph.Node, []*graph.Node) {
			x := mkVar(g, rng, "x", 0.5, 1.5, 1, 2, 2, 6)
			return weightedSum(LRN(x, 5, 2, 1e-3, 0.75), rng), []*graph.Node{x}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) { runGradCheck(t, tc) })
	}
}

func TestGradReductions(t *testing.T) {
	cases := []gradCase{
		{name: "SumAll", build: func(g *graph.Graph, rng *rand.Rand) (*graph.Node, []*graph.Node) {
			a := mkVar(g, rng, "a", -1, 1, 3, 4)
			return Sum(a), []*graph.Node{a}
		}},
		{name: "SumAxis0", build: func(g *graph.Graph, rng *rand.Rand) (*graph.Node, []*graph.Node) {
			a := mkVar(g, rng, "a", -1, 1, 3, 4)
			return weightedSum(Sum(a, 0), rng), []*graph.Node{a}
		}},
		{name: "MeanAxis1", build: func(g *graph.Graph, rng *rand.Rand) (*graph.Node, []*graph.Node) {
			a := mkVar(g, rng, "a", -1, 1, 3, 4)
			return weightedSum(Mean(a, 1), rng), []*graph.Node{a}
		}},
		{name: "MeanAll", build: func(g *graph.Graph, rng *rand.Rand) (*graph.Node, []*graph.Node) {
			a := mkVar(g, rng, "a", -1, 1, 3, 4)
			return Mean(a), []*graph.Node{a}
		}},
		{name: "MaxAxisLast", build: func(g *graph.Graph, rng *rand.Rand) (*graph.Node, []*graph.Node) {
			a := mkVar(g, rng, "a", 0, 10, 3, 4) // spread to avoid ties
			return weightedSum(MaxReduce(a, 1), rng), []*graph.Node{a}
		}},
		{name: "Softmax", build: func(g *graph.Graph, rng *rand.Rand) (*graph.Node, []*graph.Node) {
			a := mkVar(g, rng, "a", -1, 1, 3, 5)
			return weightedSum(Softmax(a), rng), []*graph.Node{a}
		}},
		{name: "Tile", build: func(g *graph.Graph, rng *rand.Rand) (*graph.Node, []*graph.Node) {
			a := mkVar(g, rng, "a", -1, 1, 2, 3)
			return weightedSum(TileN(a, []int{2, 2}), rng), []*graph.Node{a}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) { runGradCheck(t, tc) })
	}
}

func TestGradMovement(t *testing.T) {
	cases := []gradCase{
		{name: "Reshape", build: func(g *graph.Graph, rng *rand.Rand) (*graph.Node, []*graph.Node) {
			a := mkVar(g, rng, "a", -1, 1, 2, 6)
			return weightedSum(Reshape(a, 3, 4), rng), []*graph.Node{a}
		}},
		{name: "ReshapeInferred", build: func(g *graph.Graph, rng *rand.Rand) (*graph.Node, []*graph.Node) {
			a := mkVar(g, rng, "a", -1, 1, 2, 6)
			return weightedSum(Reshape(a, 4, -1), rng), []*graph.Node{a}
		}},
		{name: "Identity", build: func(g *graph.Graph, rng *rand.Rand) (*graph.Node, []*graph.Node) {
			a := mkVar(g, rng, "a", -1, 1, 4)
			return weightedSum(Identity(a), rng), []*graph.Node{a}
		}},
		{name: "Transpose", build: func(g *graph.Graph, rng *rand.Rand) (*graph.Node, []*graph.Node) {
			a := mkVar(g, rng, "a", -1, 1, 3, 4)
			return weightedSum(Transpose(a), rng), []*graph.Node{a}
		}},
		{name: "TransposePerm3D", build: func(g *graph.Graph, rng *rand.Rand) (*graph.Node, []*graph.Node) {
			a := mkVar(g, rng, "a", -1, 1, 2, 3, 4)
			return weightedSum(TransposePerm(a, []int{2, 0, 1}), rng), []*graph.Node{a}
		}},
		{name: "Concat", build: func(g *graph.Graph, rng *rand.Rand) (*graph.Node, []*graph.Node) {
			a := mkVar(g, rng, "a", -1, 1, 2, 3)
			b := mkVar(g, rng, "b", -1, 1, 2, 2)
			return weightedSum(ConcatN(1, a, b), rng), []*graph.Node{a, b}
		}},
		{name: "Slice", build: func(g *graph.Graph, rng *rand.Rand) (*graph.Node, []*graph.Node) {
			a := mkVar(g, rng, "a", -1, 1, 4, 4)
			return weightedSum(SliceN(a, []int{1, 0}, []int{2, 3}), rng), []*graph.Node{a}
		}},
		{name: "Pad", build: func(g *graph.Graph, rng *rand.Rand) (*graph.Node, []*graph.Node) {
			a := mkVar(g, rng, "a", -1, 1, 2, 2)
			return weightedSum(PadN(a, []int{1, 1}, []int{1, 1}), rng), []*graph.Node{a}
		}},
		{name: "Gather", build: func(g *graph.Graph, rng *rand.Rand) (*graph.Node, []*graph.Node) {
			table := mkVar(g, rng, "table", -1, 1, 5, 3)
			idx := g.Const("idx", tensor.FromSlice([]float32{0, 2, 2, 4}, 4))
			return weightedSum(Gather(table, idx), rng), []*graph.Node{table}
		}},
		{name: "ExpandSqueeze", build: func(g *graph.Graph, rng *rand.Rand) (*graph.Node, []*graph.Node) {
			a := mkVar(g, rng, "a", -1, 1, 2, 3)
			return weightedSum(Squeeze(ExpandDims(a, 1)), rng), []*graph.Node{a}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) { runGradCheck(t, tc) })
	}
}

func TestGradLosses(t *testing.T) {
	cases := []gradCase{
		{name: "CrossEntropy", build: func(g *graph.Graph, rng *rand.Rand) (*graph.Node, []*graph.Node) {
			logits := mkVar(g, rng, "logits", -1, 1, 4, 5)
			labels := g.Const("labels", tensor.FromSlice([]float32{0, 2, 4, 1}, 4))
			return CrossEntropy(logits, labels), []*graph.Node{logits}
		}},
		{name: "SigmoidCrossEntropy", build: func(g *graph.Graph, rng *rand.Rand) (*graph.Node, []*graph.Node) {
			logits := mkVar(g, rng, "logits", -1, 1, 3, 4)
			targets := g.Const("targets", tensor.RandUniform(rng, 0, 1, 3, 4))
			return SigmoidCrossEntropy(logits, targets), []*graph.Node{logits}
		}},
		{name: "CTCLoss", eps: 5e-3, tol: 5e-2, build: func(g *graph.Graph, rng *rand.Rand) (*graph.Node, []*graph.Node) {
			logits := mkVar(g, rng, "logits", -1, 1, 6, 2, 4) // T=6, B=2, K=4
			labels := g.Const("labels", tensor.FromSlice([]float32{
				0, 1, -1, // first example: "ab"
				2, -1, -1, // second example: "c"
			}, 2, 3))
			return CTCLoss(logits, labels), []*graph.Node{logits}
		}},
		{name: "SoftmaxPrimitiveComposite", build: func(g *graph.Graph, rng *rand.Rand) (*graph.Node, []*graph.Node) {
			// The primitive softmax pattern used by the recurrent models:
			// exp(x - max)/sum via Max/Sub/Exp/Sum/Div + Reshape/Tile.
			a := mkVar(g, rng, "a", -1, 1, 3, 5)
			m := MaxReduceKeep(a, 1)
			e := Exp(Sub(a, m))
			z := SumKeep(e, 1)
			sm := Div(e, z)
			return weightedSum(sm, rng), []*graph.Node{a}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) { runGradCheck(t, tc) })
	}
}

// TestGradSlicePartitionAssembled checks both the numerical
// correctness of partitioned slice gradients and that autodiff
// assembles them with a Concat rather than padded accumulation.
func TestGradSlicePartitionAssembled(t *testing.T) {
	rng := rand.New(rand.NewSource(50))
	g := graph.New()
	x := g.Variable("x", tensor.RandUniform(rng, -1, 1, 6, 3))
	s1 := SliceN(x, []int{0, 0}, []int{2, 3})
	s2 := SliceN(x, []int{2, 0}, []int{2, 3})
	s3 := SliceN(x, []int{4, 0}, []int{2, 3})
	loss := Sum(Add(Add(Square(s1), Mul(s2, s2)), Square(s3)))
	grads, err := graph.Gradients(loss, []*graph.Node{x})
	if err != nil {
		t.Fatal(err)
	}
	// The gradient of x must be a Concat node (partition assembly).
	if grads[0].OpName() != "Concat" {
		t.Fatalf("partitioned slice grads should assemble via Concat, got %s", grads[0].OpName())
	}
	// And the values must match 2x everywhere.
	s := runtime.NewSession(g, runtime.WithSeed(1))
	out, err := s.Run([]*graph.Node{grads[0]}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out[0].Data() {
		want := 2 * x.Value().Data()[i]
		if d := v - want; d > 1e-5 || d < -1e-5 {
			t.Fatalf("grad[%d] = %v want %v", i, v, want)
		}
	}
}

// TestGradSliceOverlapFallsBackToAddN: overlapping slices must not be
// concat-assembled; the padded AddN path stays numerically correct.
func TestGradSliceOverlapFallsBackToAddN(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	g := graph.New()
	x := g.Variable("x", tensor.RandUniform(rng, 0.5, 1.5, 4, 2))
	a := SliceN(x, []int{0, 0}, []int{3, 2}) // rows 0..2
	b := SliceN(x, []int{1, 0}, []int{3, 2}) // rows 1..3 (overlap)
	loss := Add(Sum(Square(a)), Sum(Square(b)))
	grads, err := graph.Gradients(loss, []*graph.Node{x})
	if err != nil {
		t.Fatal(err)
	}
	if grads[0].OpName() == "Concat" {
		t.Fatal("overlapping slices must not be treated as a partition")
	}
	s := runtime.NewSession(g, runtime.WithSeed(1))
	out, err := s.Run([]*graph.Node{grads[0]}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Rows 0 and 3 are covered once (grad 2x), rows 1-2 twice (grad 4x).
	for i, v := range out[0].Data() {
		mult := float32(2)
		if i >= 2 && i < 6 {
			mult = 4
		}
		want := mult * x.Value().Data()[i]
		if d := v - want; d > 1e-5 || d < -1e-5 {
			t.Fatalf("grad[%d] = %v want %v", i, v, want)
		}
	}
}

func TestGradBatchMatMul(t *testing.T) {
	runGradCheck(t, gradCase{name: "BatchMatMul", build: func(g *graph.Graph, rng *rand.Rand) (*graph.Node, []*graph.Node) {
		a := mkVar(g, rng, "a", -1, 1, 2, 3, 4)
		b := mkVar(g, rng, "b", -1, 1, 2, 4, 2)
		return weightedSum(BatchMatMul(a, b), rng), []*graph.Node{a, b}
	}})
}

// Property: BatchMatMul equals per-batch MatMul (via slicing).
func TestBatchMatMulMatchesSlicedQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(60))
	g := graph.New()
	a := g.Const("a", tensor.RandNormal(rng, 0, 1, 3, 4, 5))
	b := g.Const("b", tensor.RandNormal(rng, 0, 1, 3, 5, 2))
	fused := BatchMatMul(a, b)
	var parts []*graph.Node
	for i := 0; i < 3; i++ {
		ai := Reshape(SliceN(a, []int{i, 0, 0}, []int{1, -1, -1}), 4, 5)
		bi := Reshape(SliceN(b, []int{i, 0, 0}, []int{1, -1, -1}), 5, 2)
		parts = append(parts, ExpandDims(MatMul(ai, bi), 0))
	}
	manual := ConcatN(0, parts...)
	s := runtime.NewSession(g, runtime.WithSeed(1))
	out, err := s.Run([]*graph.Node{fused, manual}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.AllClose(out[0], out[1], 1e-4, 1e-5) {
		t.Fatalf("fused and sliced batch matmul differ by %g", tensor.MaxAbsDiff(out[0], out[1]))
	}
}
