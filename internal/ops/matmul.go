package ops

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/tensor"
)

// matMulOp is the dense 2-D matrix product with optional transposes
// (class A). Its gradient emits further MatMul nodes with adjusted
// transpose flags, as TensorFlow does.
type matMulOp struct{ transA, transB bool }

func (matMulOp) Name() string         { return "MatMul" }
func (matMulOp) Class() graph.OpClass { return graph.ClassMatrix }

func (o matMulOp) dims(in [][]int) (m, k, n int, err error) {
	if len(in) != 2 || len(in[0]) != 2 || len(in[1]) != 2 {
		return 0, 0, 0, fmt.Errorf("MatMul requires two rank-2 inputs, got %v", in)
	}
	m, ka := in[0][0], in[0][1]
	if o.transA {
		m, ka = ka, m
	}
	kb, n := in[1][0], in[1][1]
	if o.transB {
		kb, n = n, kb
	}
	if ka != kb {
		return 0, 0, 0, fmt.Errorf("MatMul inner dims %d vs %d (%v×%v, tA=%v tB=%v)", ka, kb, in[0], in[1], o.transA, o.transB)
	}
	return m, ka, n, nil
}

func (o matMulOp) InferShape(in [][]int) ([]int, error) {
	m, _, n, err := o.dims(in)
	if err != nil {
		return nil, err
	}
	return []int{m, n}, nil
}

func (o matMulOp) Forward(ctx *graph.ExecContext, in []*tensor.Tensor) (*tensor.Tensor, error) {
	return tensor.MatMul(ctx.Pool, in[0], in[1], o.transA, o.transB)
}

// ForwardInto implements graph.IntoOp.
func (o matMulOp) ForwardInto(ctx *graph.ExecContext, in []*tensor.Tensor, out *tensor.Tensor) error {
	return tensor.MatMulInto(ctx.Pool, out, in[0], in[1], o.transA, o.transB)
}

func (o matMulOp) Cost(in [][]int, out []int) (int64, int64) {
	m, k, n, err := o.dims(in)
	if err != nil {
		return 0, 0
	}
	return 2 * int64(m) * int64(n) * int64(k), defaultBytes(in, out)
}

func (o matMulOp) Grad(g *graph.Graph, n *graph.Node, grad *graph.Node) ([]*graph.Node, error) {
	a, b := n.Inputs()[0], n.Inputs()[1]
	var ga, gb *graph.Node
	// C = op(A)·op(B); g_op(A) = G·op(B)ᵀ, g_op(B) = op(A)ᵀ·G, then
	// transpose back if the input was stored transposed.
	if !o.transA {
		ga = matmul(grad, b, false, !o.transB)
	} else {
		ga = matmul(b, grad, o.transB, true)
	}
	if !o.transB {
		gb = matmul(a, grad, !o.transA, false)
	} else {
		gb = matmul(grad, a, true, o.transA)
	}
	_ = g
	return []*graph.Node{ga, gb}, nil
}

func matmul(a, b *graph.Node, transA, transB bool) *graph.Node {
	return a.Graph().MustApply(matMulOp{transA: transA, transB: transB}, a, b)
}

// MatMul returns a·b for rank-2 nodes.
func MatMul(a, b *graph.Node) *graph.Node { return matmul(a, b, false, false) }

// MatMulT returns op(a)·op(b) with explicit transpose flags.
func MatMulT(a, b *graph.Node, transA, transB bool) *graph.Node {
	return matmul(a, b, transA, transB)
}
