package ops

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/tensor"
)

// ---- Reshape (class G) ----

type reshapeOp struct{ target []int }

func (reshapeOp) Name() string         { return "Reshape" }
func (reshapeOp) Class() graph.OpClass { return graph.ClassDataMovement }

// resolveReshape expands a single -1 in target using the input size.
func resolveReshape(target []int, inSize int) ([]int, error) {
	out := append([]int(nil), target...)
	neg := -1
	prod := 1
	for i, d := range out {
		if d == -1 {
			if neg >= 0 {
				return nil, fmt.Errorf("Reshape allows at most one -1: %v", target)
			}
			neg = i
			continue
		}
		if d < 0 {
			return nil, fmt.Errorf("Reshape negative dim: %v", target)
		}
		prod *= d
	}
	if neg >= 0 {
		if prod == 0 || inSize%prod != 0 {
			return nil, fmt.Errorf("Reshape cannot infer -1 for size %d in %v", inSize, target)
		}
		out[neg] = inSize / prod
		prod *= out[neg]
	}
	if prod != inSize {
		return nil, fmt.Errorf("Reshape size mismatch: %v for %d elements", target, inSize)
	}
	return out, nil
}

func (o reshapeOp) InferShape(in [][]int) ([]int, error) {
	if len(in) != 1 && len(in) != 2 {
		return nil, fmt.Errorf("Reshape expects 1 input (plus optional shape input)")
	}
	return resolveReshape(o.target, tensor.SizeOf(in[0]))
}
func (o reshapeOp) Forward(ctx *graph.ExecContext, in []*tensor.Tensor) (*tensor.Tensor, error) {
	shape, err := resolveReshape(o.target, in[0].Size())
	if err != nil {
		return nil, err
	}
	return in[0].Reshape(shape...), nil
}
func (o reshapeOp) Grad(g *graph.Graph, n *graph.Node, grad *graph.Node) ([]*graph.Node, error) {
	back := Reshape(grad, n.Inputs()[0].Shape()...)
	out := make([]*graph.Node, len(n.Inputs()))
	out[0] = back
	return out, nil
}

// Reshape returns x viewed with a new shape; one dimension may be -1.
func Reshape(x *graph.Node, shape ...int) *graph.Node {
	return x.Graph().MustApply(reshapeOp{target: append([]int(nil), shape...)}, x)
}

// ReshapeLike reshapes x to the static shape of template, consuming a
// Shape node the way dynamic TensorFlow reshapes do (the pattern that
// puts Shape ops in the paper's memnet profile).
func ReshapeLike(x, template *graph.Node) *graph.Node {
	sh := ShapeOf(template)
	return x.Graph().MustApply(reshapeOp{target: copyShape(template.Shape())}, x, sh)
}

// ExpandDims inserts a size-1 axis at position axis.
func ExpandDims(x *graph.Node, axis int) *graph.Node {
	s := x.Shape()
	if axis < 0 {
		axis += len(s) + 1
	}
	out := make([]int, 0, len(s)+1)
	out = append(out, s[:axis]...)
	out = append(out, 1)
	out = append(out, s[axis:]...)
	return Reshape(x, out...)
}

// Squeeze removes all size-1 axes (or just the given ones).
func Squeeze(x *graph.Node, axes ...int) *graph.Node {
	s := x.Shape()
	drop := map[int]bool{}
	if len(axes) == 0 {
		for i, d := range s {
			if d == 1 {
				drop[i] = true
			}
		}
	} else {
		for _, a := range axes {
			if a < 0 {
				a += len(s)
			}
			drop[a] = true
		}
	}
	var out []int
	for i, d := range s {
		if drop[i] && d == 1 {
			continue
		}
		out = append(out, d)
	}
	return Reshape(x, out...)
}

// ---- Shape (class G, no gradient) ----

type shapeOp struct{}

func (shapeOp) Name() string         { return "Shape" }
func (shapeOp) Class() graph.OpClass { return graph.ClassDataMovement }
func (shapeOp) InferShape(in [][]int) ([]int, error) {
	if err := wantInputs("Shape", in, 1); err != nil {
		return nil, err
	}
	return []int{len(in[0])}, nil
}
func (shapeOp) Forward(ctx *graph.ExecContext, in []*tensor.Tensor) (*tensor.Tensor, error) {
	s := in[0].Shape()
	out := tensor.New(len(s))
	for i, d := range s {
		out.Data()[i] = float32(d)
	}
	return out, nil
}

// ShapeOf returns the runtime shape of x as a rank-1 tensor.
func ShapeOf(x *graph.Node) *graph.Node { return x.Graph().MustApply(shapeOp{}, x) }

// ---- Identity (class G) ----

type identityOp struct{}

func (identityOp) Name() string         { return "Identity" }
func (identityOp) Class() graph.OpClass { return graph.ClassDataMovement }
func (identityOp) InferShape(in [][]int) ([]int, error) {
	if err := wantInputs("Identity", in, 1); err != nil {
		return nil, err
	}
	return copyShape(in[0]), nil
}
func (identityOp) Forward(ctx *graph.ExecContext, in []*tensor.Tensor) (*tensor.Tensor, error) {
	return in[0], nil
}
func (identityOp) Grad(g *graph.Graph, n *graph.Node, grad *graph.Node) ([]*graph.Node, error) {
	return []*graph.Node{grad}, nil
}

// IsIdentity implements graph.IdentityOp.
func (identityOp) IsIdentity() bool { return true }

// Identity passes x through unchanged.
func Identity(x *graph.Node) *graph.Node { return x.Graph().MustApply(identityOp{}, x) }

// ---- Transpose (class G) ----

type transposeOp struct{ perm []int }

func (transposeOp) Name() string         { return "Transpose" }
func (transposeOp) Class() graph.OpClass { return graph.ClassDataMovement }
func (o transposeOp) InferShape(in [][]int) ([]int, error) {
	if err := wantInputs("Transpose", in, 1); err != nil {
		return nil, err
	}
	if len(o.perm) != len(in[0]) {
		return nil, fmt.Errorf("Transpose perm %v vs rank %d", o.perm, len(in[0]))
	}
	seen := make([]bool, len(o.perm))
	out := make([]int, len(o.perm))
	for i, a := range o.perm {
		if a < 0 || a >= len(o.perm) || seen[a] {
			return nil, fmt.Errorf("Transpose perm %v not a permutation", o.perm)
		}
		seen[a] = true
		out[i] = in[0][a]
	}
	return out, nil
}
func (o transposeOp) Forward(ctx *graph.ExecContext, in []*tensor.Tensor) (*tensor.Tensor, error) {
	return tensor.Transpose(ctx.Pool, in[0], o.perm)
}
func (o transposeOp) Grad(g *graph.Graph, n *graph.Node, grad *graph.Node) ([]*graph.Node, error) {
	inv := make([]int, len(o.perm))
	for i, a := range o.perm {
		inv[a] = i
	}
	return []*graph.Node{TransposePerm(grad, inv)}, nil
}

// Transpose swaps the two axes of a matrix.
func Transpose(x *graph.Node) *graph.Node { return TransposePerm(x, []int{1, 0}) }

// TransposePerm permutes the axes of x.
func TransposePerm(x *graph.Node, perm []int) *graph.Node {
	return x.Graph().MustApply(transposeOp{perm: append([]int(nil), perm...)}, x)
}

// ---- Concat (class G) ----

type concatOp struct{ axis int }

func (concatOp) Name() string         { return "Concat" }
func (concatOp) Class() graph.OpClass { return graph.ClassDataMovement }
func (o concatOp) InferShape(in [][]int) ([]int, error) {
	if len(in) == 0 {
		return nil, fmt.Errorf("Concat requires inputs")
	}
	axis := o.axis
	if axis < 0 {
		axis += len(in[0])
	}
	if axis < 0 || axis >= len(in[0]) {
		return nil, fmt.Errorf("Concat axis %d out of range", o.axis)
	}
	out := copyShape(in[0])
	total := 0
	for _, s := range in {
		if len(s) != len(out) {
			return nil, fmt.Errorf("Concat rank mismatch")
		}
		for i := range s {
			if i != axis && s[i] != out[i] {
				return nil, fmt.Errorf("Concat shape mismatch %v vs %v", s, out)
			}
		}
		total += s[axis]
	}
	out[axis] = total
	return out, nil
}
func (o concatOp) Forward(ctx *graph.ExecContext, in []*tensor.Tensor) (*tensor.Tensor, error) {
	return tensor.Concat(ctx.Pool, o.axis, in...)
}
func (o concatOp) Grad(g *graph.Graph, n *graph.Node, grad *graph.Node) ([]*graph.Node, error) {
	axis := o.axis
	if axis < 0 {
		axis += len(n.Shape())
	}
	outs := make([]*graph.Node, len(n.Inputs()))
	off := 0
	for i, in := range n.Inputs() {
		begin := make([]int, len(n.Shape()))
		size := copyShape(in.Shape())
		begin[axis] = off
		outs[i] = SliceN(grad, begin, size)
		off += in.Shape()[axis]
	}
	return outs, nil
}

// ConcatN joins nodes along axis.
func ConcatN(axis int, xs ...*graph.Node) *graph.Node {
	return xs[0].Graph().MustApply(concatOp{axis: axis}, xs...)
}

// ---- Slice (class G) ----

type sliceOp struct{ begin, size []int }

func (sliceOp) Name() string         { return "Slice" }
func (sliceOp) Class() graph.OpClass { return graph.ClassDataMovement }
func (o sliceOp) InferShape(in [][]int) ([]int, error) {
	if err := wantInputs("Slice", in, 1); err != nil {
		return nil, err
	}
	if len(o.begin) != len(in[0]) || len(o.size) != len(in[0]) {
		return nil, fmt.Errorf("Slice begin/size rank mismatch")
	}
	out := make([]int, len(in[0]))
	for i := range out {
		s := o.size[i]
		if s == -1 {
			s = in[0][i] - o.begin[i]
		}
		if o.begin[i] < 0 || s < 0 || o.begin[i]+s > in[0][i] {
			return nil, fmt.Errorf("Slice [%v:%v] out of bounds for %v", o.begin, o.size, in[0])
		}
		out[i] = s
	}
	return out, nil
}
func (o sliceOp) Forward(ctx *graph.ExecContext, in []*tensor.Tensor) (*tensor.Tensor, error) {
	return tensor.SliceTensor(ctx.Pool, in[0], o.begin, o.size)
}
func (o sliceOp) Grad(g *graph.Graph, n *graph.Node, grad *graph.Node) ([]*graph.Node, error) {
	// The adjoint zero-pads the gradient back into the input extent,
	// which TensorFlow reports as a Pad op.
	in := n.Inputs()[0]
	before := copyShape(o.begin)
	after := make([]int, len(before))
	for i := range after {
		after[i] = in.Shape()[i] - o.begin[i] - n.Shape()[i]
	}
	return []*graph.Node{PadN(grad, before, after)}, nil
}

// SliceN extracts the region [begin, begin+size) from x; -1 in size
// means "through the end of the axis".
func SliceN(x *graph.Node, begin, size []int) *graph.Node {
	return x.Graph().MustApply(sliceOp{
		begin: append([]int(nil), begin...),
		size:  append([]int(nil), size...),
	}, x)
}

// ---- Pad (class G) ----

type padOp struct{ before, after []int }

func (padOp) Name() string         { return "Pad" }
func (padOp) Class() graph.OpClass { return graph.ClassDataMovement }
func (o padOp) InferShape(in [][]int) ([]int, error) {
	if err := wantInputs("Pad", in, 1); err != nil {
		return nil, err
	}
	if len(o.before) != len(in[0]) || len(o.after) != len(in[0]) {
		return nil, fmt.Errorf("Pad rank mismatch")
	}
	out := make([]int, len(in[0]))
	for i := range out {
		if o.before[i] < 0 || o.after[i] < 0 {
			return nil, fmt.Errorf("Pad amounts must be non-negative")
		}
		out[i] = in[0][i] + o.before[i] + o.after[i]
	}
	return out, nil
}
func (o padOp) Forward(ctx *graph.ExecContext, in []*tensor.Tensor) (*tensor.Tensor, error) {
	return tensor.Pad(ctx.Pool, in[0], o.before, o.after)
}
func (o padOp) Grad(g *graph.Graph, n *graph.Node, grad *graph.Node) ([]*graph.Node, error) {
	size := copyShape(n.Inputs()[0].Shape())
	return []*graph.Node{SliceN(grad, o.before, size)}, nil
}

// PadAmounts implements graph.ZeroPadGradOp.
func (o padOp) PadAmounts() (before, after []int) { return o.before, o.after }

// The autodiff engine assembles exact pad partitions (slice gradients
// of an unrolled tensor) with a single Concat; register the hook.
func init() {
	graph.RegisterConcatAssembler(func(g *graph.Graph, axis int, pieces []*graph.Node) (*graph.Node, error) {
		return g.Apply(concatOp{axis: axis}, pieces...)
	})
}

// PadN zero-pads x with before/after amounts per axis.
func PadN(x *graph.Node, before, after []int) *graph.Node {
	return x.Graph().MustApply(padOp{
		before: append([]int(nil), before...),
		after:  append([]int(nil), after...),
	}, x)
}

// ---- Gather / ScatterAdd (class G) ----

type gatherOp struct{}

func (gatherOp) Name() string         { return "Gather" }
func (gatherOp) Class() graph.OpClass { return graph.ClassDataMovement }
func (gatherOp) InferShape(in [][]int) ([]int, error) {
	if err := wantInputs("Gather", in, 2); err != nil {
		return nil, err
	}
	if len(in[0]) < 1 {
		return nil, fmt.Errorf("Gather params must have rank >= 1")
	}
	out := append([]int(nil), in[1]...)
	out = append(out, in[0][1:]...)
	return out, nil
}
func (gatherOp) Forward(ctx *graph.ExecContext, in []*tensor.Tensor) (*tensor.Tensor, error) {
	return tensor.GatherRows(ctx.Pool, in[0], in[1])
}
func (gatherOp) Grad(g *graph.Graph, n *graph.Node, grad *graph.Node) ([]*graph.Node, error) {
	params, idx := n.Inputs()[0], n.Inputs()[1]
	sc := g.MustApply(scatterAddOp{paramShape: copyShape(params.Shape())}, grad, idx)
	return []*graph.Node{sc, nil}, nil
}

// Gather selects rows of params (axis 0) by integer-valued indices;
// the index shape replaces axis 0 (embedding lookup).
func Gather(params, indices *graph.Node) *graph.Node {
	return params.Graph().MustApply(gatherOp{}, params, indices)
}

type scatterAddOp struct{ paramShape []int }

func (scatterAddOp) Name() string         { return "ScatterAdd" }
func (scatterAddOp) Class() graph.OpClass { return graph.ClassDataMovement }
func (o scatterAddOp) InferShape(in [][]int) ([]int, error) {
	if err := wantInputs("ScatterAdd", in, 2); err != nil {
		return nil, err
	}
	return copyShape(o.paramShape), nil
}
func (o scatterAddOp) Forward(ctx *graph.ExecContext, in []*tensor.Tensor) (*tensor.Tensor, error) {
	return tensor.ScatterAddRows(ctx.Pool, in[0], in[1], o.paramShape), nil
}

// ---- NoOp group (class G): joins side-effecting fetches ----

type noOp struct{}

func (noOp) Name() string         { return "NoOp" }
func (noOp) Class() graph.OpClass { return graph.ClassDataMovement }
func (noOp) InferShape(in [][]int) ([]int, error) {
	return []int{}, nil
}
func (noOp) Forward(ctx *graph.ExecContext, in []*tensor.Tensor) (*tensor.Tensor, error) {
	return tensor.Scalar(0), nil
}

// Impure implements graph.Impure: the group exists for its side
// effects (its inputs' execution), so it must never be merged away.
func (noOp) Impure() {}

// Group returns a scalar node that depends on every input, used to
// fetch a set of side-effecting ops (optimizer updates) at once.
func Group(g *graph.Graph, deps ...*graph.Node) *graph.Node {
	return g.MustApply(noOp{}, deps...)
}
