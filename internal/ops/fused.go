package ops

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/tensor"
)

// Epilogue fusion (kernel tier 2): graph.FuseEpilogues folds
// elementwise consumers — bias adds, activations — into their MatMul /
// Conv2D producer, and this file supplies the fused kernel. The fused
// op runs the producer's Into kernel into the output buffer, then
// applies each absorbed epilogue in place on that buffer
// (tensor.BinaryOpInPlace / tensor.UnaryOpInPlace), so the
// intermediate tensor between producer and consumer never exists. The
// float operation sequence per element is identical to the unfused
// chain, keeping results bit-identical with fusion on or off.

// epilogue is one absorbed elementwise step. It stores kind
// descriptors, never closures, so fused ops keep printable,
// CSE-fingerprint-stable attribute structs.
type epilogue struct {
	unary bool
	un    unKind
	bin   binKind
	swap  bool // the producer result is the binary op's right operand
}

func (e epilogue) label() string {
	if e.unary {
		return unNames[e.un]
	}
	return binNames[e.bin]
}

// epilogueFor maps a consumer op onto an epilogue descriptor; pos is
// the consumer input slot fed by the producer. Only the elementwise
// arithmetic ops qualify.
func epilogueFor(consumer graph.Op, pos int) (epilogue, bool) {
	switch c := consumer.(type) {
	case unOp:
		return epilogue{unary: true, un: c.kind}, true
	case binOp:
		return epilogue{bin: c.kind, swap: pos == 1}, true
	}
	return epilogue{}, false
}

// fusedEpilogueOp computes base followed by a chain of elementwise
// epilogues applied in place on the base kernel's output. Inputs are
// the base op's inputs (arity of them) followed by one operand per
// binary epilogue, in fusion order. Pure and stateless like its parts;
// it implements graph.IntoOp, so it is arena-friendly, and
// graph.EpilogueProducer, so chains keep absorbing.
type fusedEpilogueOp struct {
	base  graph.Op // MatMul or Conv2D; must implement graph.IntoOp
	arity int      // base input count
	eps   []epilogue
}

func (o *fusedEpilogueOp) Name() string {
	s := o.base.Name()
	for _, e := range o.eps {
		s += "+" + e.label()
	}
	return s
}

func (o *fusedEpilogueOp) Class() graph.OpClass { return o.base.Class() }

func (o *fusedEpilogueOp) InferShape(in [][]int) ([]int, error) {
	if len(in) < o.arity {
		return nil, fmt.Errorf("%s wants at least %d inputs, got %d", o.Name(), o.arity, len(in))
	}
	shape, err := o.base.InferShape(in[:o.arity])
	if err != nil {
		return nil, err
	}
	next := o.arity
	for _, e := range o.eps {
		if e.unary {
			continue
		}
		if next >= len(in) {
			return nil, fmt.Errorf("%s missing the operand of epilogue %s", o.Name(), e.label())
		}
		bs, err := tensor.BroadcastShapes(shape, in[next])
		if err != nil {
			return nil, err
		}
		if !tensor.SameShape(bs, shape) {
			return nil, fmt.Errorf("%s epilogue %s operand %v broadens the producer shape %v", o.Name(), e.label(), in[next], shape)
		}
		next++
	}
	if next != len(in) {
		return nil, fmt.Errorf("%s wants %d inputs, got %d", o.Name(), next, len(in))
	}
	return shape, nil
}

func (o *fusedEpilogueOp) Forward(ctx *graph.ExecContext, in []*tensor.Tensor) (*tensor.Tensor, error) {
	shapes := make([][]int, len(in))
	for i, t := range in {
		shapes[i] = t.Shape()
	}
	shape, err := o.InferShape(shapes)
	if err != nil {
		return nil, err
	}
	out := tensor.New(shape...)
	if err := o.ForwardInto(ctx, in, out); err != nil {
		return nil, err
	}
	return out, nil
}

// ForwardInto implements graph.IntoOp: the base kernel fully
// overwrites out, and the epilogues rewrite it in place — out never
// aliases an input (the epilogue operands are distinct buffers).
func (o *fusedEpilogueOp) ForwardInto(ctx *graph.ExecContext, in []*tensor.Tensor, out *tensor.Tensor) error {
	if err := o.base.(graph.IntoOp).ForwardInto(ctx, in[:o.arity], out); err != nil {
		return err
	}
	next := o.arity
	for _, e := range o.eps {
		if e.unary {
			tensor.UnaryOpInPlace(ctx.Pool, out, unOp{e.un}.fn())
			continue
		}
		if err := tensor.BinaryOpInPlace(ctx.Pool, out, in[next], e.swap, binOp{e.bin}.fn()); err != nil {
			return err
		}
		next++
	}
	return nil
}

func (o *fusedEpilogueOp) Cost(in [][]int, out []int) (int64, int64) {
	var flops, bytes int64
	if c, ok := o.base.(graph.Coster); ok {
		flops, bytes = c.Cost(in[:o.arity], out)
	} else {
		bytes = defaultBytes(in[:o.arity], out)
	}
	// Each epilogue touches every output element once, in cache.
	flops += int64(tensor.SizeOf(out)) * int64(len(o.eps))
	return flops, bytes
}

// AbsorbEpilogue implements graph.EpilogueProducer: a fused chain
// absorbs further consumers by appending to a copied epilogue list
// (ops are shared across graphs, so the list is never mutated).
func (o *fusedEpilogueOp) AbsorbEpilogue(consumer graph.Op, pos int) (graph.Op, bool) {
	e, ok := epilogueFor(consumer, pos)
	if !ok {
		return nil, false
	}
	eps := make([]epilogue, len(o.eps), len(o.eps)+1)
	copy(eps, o.eps)
	return &fusedEpilogueOp{base: o.base, arity: o.arity, eps: append(eps, e)}, true
}

// AbsorbEpilogue implements graph.EpilogueProducer for the dense GEMM.
func (o matMulOp) AbsorbEpilogue(consumer graph.Op, pos int) (graph.Op, bool) {
	e, ok := epilogueFor(consumer, pos)
	if !ok {
		return nil, false
	}
	return &fusedEpilogueOp{base: o, arity: 2, eps: []epilogue{e}}, true
}

// AbsorbEpilogue implements graph.EpilogueProducer for Conv2D (the
// im2col + GEMM lowering makes the bias/activation epilogue exactly as
// profitable as on the plain GEMM).
func (o conv2DOp) AbsorbEpilogue(consumer graph.Op, pos int) (graph.Op, bool) {
	e, ok := epilogueFor(consumer, pos)
	if !ok {
		return nil, false
	}
	return &fusedEpilogueOp{base: o, arity: 2, eps: []epilogue{e}}, true
}
