package ops

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/runtime"
	"repro/internal/tensor"
)

func runOne(t *testing.T, n *graph.Node, feeds runtime.Feeds) *tensor.Tensor {
	t.Helper()
	s := runtime.NewSession(n.Graph(), runtime.WithSeed(3))
	s.SetTraining(true)
	out, err := s.Run([]*graph.Node{n}, feeds)
	if err != nil {
		t.Fatal(err)
	}
	return out[0]
}

func TestCrossEntropyKnownValue(t *testing.T) {
	g := graph.New()
	// Uniform logits over 4 classes: loss = ln 4 regardless of label.
	logits := g.Const("l", tensor.New(2, 4))
	labels := g.Const("y", tensor.FromSlice([]float32{1, 3}, 2))
	out := runOne(t, CrossEntropy(logits, labels), nil)
	if math.Abs(float64(out.Data()[0])-math.Log(4)) > 1e-5 {
		t.Fatalf("uniform CE = %v, want ln4", out.Data()[0])
	}
}

func TestCrossEntropyLabelOutOfRange(t *testing.T) {
	g := graph.New()
	logits := g.Const("l", tensor.New(1, 3))
	labels := g.Const("y", tensor.FromSlice([]float32{7}, 1))
	s := runtime.NewSession(g)
	if _, err := s.Run([]*graph.Node{CrossEntropy(logits, labels)}, nil); err == nil {
		t.Fatal("expected label range error")
	}
}

func TestSigmoidCrossEntropyKnownValue(t *testing.T) {
	g := graph.New()
	// Zero logits, targets 0.5 → per-element loss = ln 2; shape (1,3).
	logits := g.Const("l", tensor.New(1, 3))
	targets := g.Const("t", tensor.Full(0.5, 1, 3))
	out := runOne(t, SigmoidCrossEntropy(logits, targets), nil)
	if math.Abs(float64(out.Data()[0])-3*math.Log(2)) > 1e-5 {
		t.Fatalf("BCE = %v, want 3·ln2", out.Data()[0])
	}
}

// bruteForceCTC enumerates all alignment paths of length T over K
// symbols and sums probabilities of those that collapse to the label.
func bruteForceCTC(probs [][]float64, label []int, blank int) float64 {
	T := len(probs)
	K := len(probs[0])
	var total float64
	path := make([]int, T)
	var rec func(t int, p float64)
	collapse := func(path []int) []int {
		var out []int
		prev := -1
		for _, s := range path {
			if s != prev && s != blank {
				out = append(out, s)
			}
			prev = s
		}
		return out
	}
	rec = func(t int, p float64) {
		if t == T {
			c := collapse(path)
			if len(c) == len(label) {
				same := true
				for i := range c {
					if c[i] != label[i] {
						same = false
						break
					}
				}
				if same {
					total += p
				}
			}
			return
		}
		for k := 0; k < K; k++ {
			path[t] = k
			rec(t+1, p*probs[t][k])
		}
	}
	rec(0, 1)
	return total
}

func TestCTCLossMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	T, B, K := 4, 1, 3
	g := graph.New()
	logitsT := tensor.RandNormal(rng, 0, 1, T, B, K)
	logits := g.Const("logits", logitsT)
	labels := g.Const("labels", tensor.FromSlice([]float32{0, 1, -1}, 1, 3))
	out := runOne(t, CTCLoss(logits, labels), nil)

	// Reference: softmax rows then brute-force path enumeration.
	probs := make([][]float64, T)
	for tt := 0; tt < T; tt++ {
		probs[tt] = make([]float64, K)
		var m float64 = -1e30
		for k := 0; k < K; k++ {
			if v := float64(logitsT.At(tt, 0, k)); v > m {
				m = v
			}
		}
		var sum float64
		for k := 0; k < K; k++ {
			probs[tt][k] = math.Exp(float64(logitsT.At(tt, 0, k)) - m)
			sum += probs[tt][k]
		}
		for k := 0; k < K; k++ {
			probs[tt][k] /= sum
		}
	}
	p := bruteForceCTC(probs, []int{0, 1}, K-1)
	want := -math.Log(p)
	if math.Abs(float64(out.Data()[0])-want) > 1e-4 {
		t.Fatalf("CTC loss = %v, brute force %v", out.Data()[0], want)
	}
}

func TestCTCImpossibleAlignment(t *testing.T) {
	// T=1 but label needs 2 symbols → no valid path → large loss.
	g := graph.New()
	logits := g.Const("logits", tensor.New(1, 1, 3))
	labels := g.Const("labels", tensor.FromSlice([]float32{0, 1}, 1, 2))
	out := runOne(t, CTCLoss(logits, labels), nil)
	if out.Data()[0] < 1e3 {
		t.Fatalf("impossible alignment should yield large loss, got %v", out.Data()[0])
	}
}

func TestApplySGD(t *testing.T) {
	g := graph.New()
	v := g.Variable("v", tensor.FromSlice([]float32{1, 2}, 2))
	grad := g.Const("g", tensor.FromSlice([]float32{0.5, -0.5}, 2))
	up := ApplySGD(v, grad, 0.1)
	runOne(t, up, nil)
	want := []float32{0.95, 2.05}
	for i := range want {
		if math.Abs(float64(v.Value().Data()[i]-want[i])) > 1e-6 {
			t.Fatalf("SGD update = %v want %v", v.Value().Data(), want)
		}
	}
}

func TestApplyMomentumAccumulates(t *testing.T) {
	g := graph.New()
	v := g.Variable("v", tensor.New(1))
	grad := g.Const("g", tensor.FromSlice([]float32{1}, 1))
	up := ApplyMomentum(v, grad, 0.1, 0.9)
	s := runtime.NewSession(g)
	s.MustRun([]*graph.Node{up}, nil) // vel=1, v=-0.1
	s.MustRun([]*graph.Node{up}, nil) // vel=1.9, v=-0.29
	if math.Abs(float64(v.Value().Data()[0])+0.29) > 1e-5 {
		t.Fatalf("momentum after 2 steps = %v want -0.29", v.Value().Data()[0])
	}
}

func TestApplyRMSPropNormalizesStepSize(t *testing.T) {
	g := graph.New()
	v := g.Variable("v", tensor.New(2))
	grad := g.Const("g", tensor.FromSlice([]float32{100, 0.01}, 2))
	up := ApplyRMSProp(v, grad, 0.01, 0.9, 1e-10)
	s := runtime.NewSession(g)
	s.MustRun([]*graph.Node{up}, nil)
	d := v.Value().Data()
	// Both coordinates should move ≈ lr/sqrt(1-decay) regardless of
	// gradient magnitude.
	ratio := float64(d[0] / d[1])
	if math.Abs(ratio-1) > 0.01 {
		t.Fatalf("RMSProp steps should be scale-free: %v (ratio %v)", d, ratio)
	}
}

func TestApplyAdamBiasCorrection(t *testing.T) {
	g := graph.New()
	v := g.Variable("v", tensor.New(1))
	grad := g.Const("g", tensor.FromSlice([]float32{1}, 1))
	up := ApplyAdam(v, grad, 0.1, 0.9, 0.999, 1e-8)
	s := runtime.NewSession(g)
	s.MustRun([]*graph.Node{up}, nil)
	// First Adam step with constant gradient moves by ≈ lr.
	if math.Abs(float64(v.Value().Data()[0])+0.1) > 1e-3 {
		t.Fatalf("first Adam step = %v want ≈ -0.1", v.Value().Data()[0])
	}
}

func TestDropoutTrainingAndInference(t *testing.T) {
	g := graph.New()
	x := g.Const("x", tensor.Ones(1000))
	d := Dropout(x, 0.5)
	s := runtime.NewSession(g, runtime.WithSeed(5))
	s.SetTraining(true)
	out := s.MustRun([]*graph.Node{d}, nil)[0]
	zeros, twos := 0, 0
	for _, v := range out.Data() {
		switch v {
		case 0:
			zeros++
		case 2:
			twos++
		default:
			t.Fatalf("inverted dropout should emit 0 or 1/keep, got %v", v)
		}
	}
	if zeros < 350 || zeros > 650 {
		t.Fatalf("dropout rate ~0.5 expected, got %d/1000 zeros", zeros)
	}
	if zeros+twos != 1000 {
		t.Fatal("dropout element count mismatch")
	}
	s.SetTraining(false)
	out = s.MustRun([]*graph.Node{d}, nil)[0]
	for _, v := range out.Data() {
		if v != 1 {
			t.Fatalf("inference dropout must be identity, got %v", v)
		}
	}
}

func TestDropoutGradUsesSameMask(t *testing.T) {
	g := graph.New()
	x := g.Variable("x", tensor.Ones(100))
	d := Dropout(x, 0.5)
	loss := Sum(d)
	grads, err := graph.Gradients(loss, []*graph.Node{x})
	if err != nil {
		t.Fatal(err)
	}
	s := runtime.NewSession(g, runtime.WithSeed(6))
	s.SetTraining(true)
	outs := s.MustRun([]*graph.Node{d, grads[0]}, nil)
	fw, gd := outs[0].Data(), outs[1].Data()
	for i := range fw {
		if (fw[i] == 0) != (gd[i] == 0) {
			t.Fatalf("gradient mask differs from forward mask at %d: fw=%v gd=%v", i, fw[i], gd[i])
		}
	}
}

func TestRandomOpsDeterministicBySeed(t *testing.T) {
	g := graph.New()
	n := RandomStandardNormal(g, 4, 4)
	u := RandomUniform(g, 4, 4)
	run := func(seed int64) ([]float32, []float32) {
		s := runtime.NewSession(g, runtime.WithSeed(seed))
		out := s.MustRun([]*graph.Node{n, u}, nil)
		return out[0].Data(), out[1].Data()
	}
	a1, b1 := run(9)
	a2, b2 := run(9)
	for i := range a1 {
		if a1[i] != a2[i] || b1[i] != b2[i] {
			t.Fatal("same seed must reproduce random tensors")
		}
	}
	a3, _ := run(10)
	same := true
	for i := range a1 {
		if a1[i] != a3[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds should differ")
	}
}

func TestRandomUniformRange(t *testing.T) {
	g := graph.New()
	u := RandomUniform(g, 1000)
	out := runOne(t, u, nil)
	for _, v := range out.Data() {
		if v < 0 || v >= 1 {
			t.Fatalf("uniform sample out of range: %v", v)
		}
	}
}

func TestLRNKnownValue(t *testing.T) {
	// Single cell, one channel: y = x / (k + α/n·x²)^β.
	g := graph.New()
	x := g.Const("x", tensor.FromSlice([]float32{2}, 1, 1, 1, 1))
	out := runOne(t, LRN(x, 1, 2, 1, 0.5), nil)
	want := 2 / math.Sqrt(2+4)
	if math.Abs(float64(out.Data()[0])-want) > 1e-5 {
		t.Fatalf("LRN = %v want %v", out.Data()[0], want)
	}
}

func TestOpNamesAndClasses(t *testing.T) {
	g := graph.New()
	a := g.Const("a", tensor.Ones(2, 2))
	b := g.Const("b", tensor.Ones(2, 2))
	idx := g.Const("i", tensor.New(1))
	cases := []struct {
		n     *graph.Node
		name  string
		class graph.OpClass
	}{
		{MatMul(a, b), "MatMul", graph.ClassMatrix},
		{Conv2D(Reshape(a, 1, 2, 2, 1), g.Const("f", tensor.Ones(1, 1, 1, 1)), 1, 1, 0, 0), "Conv2D", graph.ClassConv},
		{Add(a, b), "Add", graph.ClassElementwise},
		{Sum(a), "Sum", graph.ClassReduction},
		{TileN(a, []int{1, 2}), "Tile", graph.ClassReduction},
		{Softmax(a), "Softmax", graph.ClassReduction},
		{RandomUniform(g, 2), "RandomUniform", graph.ClassRandom},
		{Dropout(a, 0.1), "Dropout", graph.ClassRandom},
		{ApplySGD(g.Variable("v", tensor.Ones(2, 2)), a, 0.1), "ApplyGradientDescent", graph.ClassOptimization},
		{Reshape(a, 4), "Reshape", graph.ClassDataMovement},
		{Transpose(a), "Transpose", graph.ClassDataMovement},
		{Gather(a, idx), "Gather", graph.ClassDataMovement},
		{ShapeOf(a), "Shape", graph.ClassDataMovement},
	}
	for _, c := range cases {
		if c.n.OpName() != c.name {
			t.Errorf("op name %q want %q", c.n.OpName(), c.name)
		}
		if c.n.Op().Class() != c.class {
			t.Errorf("%s class %v want %v", c.name, c.n.Op().Class(), c.class)
		}
	}
}

func TestShapeOfRuntimeValue(t *testing.T) {
	g := graph.New()
	a := g.Const("a", tensor.New(3, 5))
	out := runOne(t, ShapeOf(a), nil)
	if out.Data()[0] != 3 || out.Data()[1] != 5 {
		t.Fatalf("ShapeOf = %v", out.Data())
	}
}

func TestReshapeLike(t *testing.T) {
	g := graph.New()
	a := g.Const("a", tensor.Ones(6))
	tmpl := g.Const("t", tensor.New(2, 3))
	r := ReshapeLike(a, tmpl)
	out := runOne(t, r, nil)
	if !tensor.SameShape(out.Shape(), []int{2, 3}) {
		t.Fatalf("ReshapeLike shape %v", out.Shape())
	}
	// The graph must contain a Shape node (the dynamic-reshape pattern).
	found := false
	for _, n := range g.Nodes() {
		if n.OpName() == "Shape" {
			found = true
		}
	}
	if !found {
		t.Fatal("ReshapeLike should consume a Shape node")
	}
}

func TestGroupFetchesAllUpdates(t *testing.T) {
	g := graph.New()
	v1 := g.Variable("v1", tensor.Ones(1))
	v2 := g.Variable("v2", tensor.Ones(1))
	gr := g.Const("g", tensor.Ones(1))
	u1 := ApplySGD(v1, gr, 0.5)
	u2 := ApplySGD(v2, gr, 0.25)
	grp := Group(g, u1, u2)
	runOne(t, grp, nil)
	if v1.Value().Data()[0] != 0.5 || v2.Value().Data()[0] != 0.75 {
		t.Fatalf("group did not run both updates: %v %v", v1.Value().Data(), v2.Value().Data())
	}
}

func TestEqualAndLessEqual(t *testing.T) {
	g := graph.New()
	a := g.Const("a", tensor.FromSlice([]float32{1, 2, 3}, 3))
	b := g.Const("b", tensor.FromSlice([]float32{1, 5, 2}, 3))
	eq := runOne(t, Equal(a, b), nil)
	le := runOne(t, LessEqual(a, b), nil)
	if eq.Data()[0] != 1 || eq.Data()[1] != 0 || eq.Data()[2] != 0 {
		t.Fatalf("Equal = %v", eq.Data())
	}
	if le.Data()[0] != 1 || le.Data()[1] != 1 || le.Data()[2] != 0 {
		t.Fatalf("LessEqual = %v", le.Data())
	}
}

func TestArgMaxOp(t *testing.T) {
	g := graph.New()
	a := g.Const("a", tensor.FromSlice([]float32{1, 9, 3, 8, 2, 1}, 2, 3))
	out := runOne(t, ArgMax(a), nil)
	if out.Data()[0] != 1 || out.Data()[1] != 0 {
		t.Fatalf("ArgMax = %v", out.Data())
	}
}

func TestBatchMatMulForward(t *testing.T) {
	g := graph.New()
	a := g.Const("a", tensor.FromSlice([]float32{
		1, 2, 3, 4, // batch 0: [[1,2],[3,4]]
		5, 6, 7, 8, // batch 1
	}, 2, 2, 2))
	b := g.Const("b", tensor.FromSlice([]float32{
		1, 0, 0, 1, // identity
		2, 0, 0, 2, // 2·identity
	}, 2, 2, 2))
	out := runOne(t, BatchMatMul(a, b), nil)
	want := []float32{1, 2, 3, 4, 10, 12, 14, 16}
	for i := range want {
		if out.Data()[i] != want[i] {
			t.Fatalf("BatchMatMul = %v want %v", out.Data(), want)
		}
	}
}

func TestBatchMatMulShapeErrors(t *testing.T) {
	g := graph.New()
	a := g.Const("a", tensor.New(2, 3, 4))
	b := g.Const("b", tensor.New(3, 4, 5))
	if _, err := g.Apply(batchMatMulOp{}, a, b); err == nil {
		t.Fatal("batch mismatch should error")
	}
	c := g.Const("c", tensor.New(2, 5, 6))
	if _, err := g.Apply(batchMatMulOp{}, a, c); err == nil {
		t.Fatal("inner-dim mismatch should error")
	}
}

func TestOneHot(t *testing.T) {
	g := graph.New()
	idx := g.Const("i", tensor.FromSlice([]float32{2, 0}, 2))
	out := runOne(t, OneHot(idx, 3), nil)
	want := []float32{0, 0, 1, 1, 0, 0}
	for i := range want {
		if out.Data()[i] != want[i] {
			t.Fatalf("OneHot = %v want %v", out.Data(), want)
		}
	}
}

func TestOneHotOutOfRange(t *testing.T) {
	g := graph.New()
	idx := g.Const("i", tensor.FromSlice([]float32{5}, 1))
	n := OneHot(idx, 3)
	s := runtime.NewSession(g)
	if _, err := s.Run([]*graph.Node{n}, nil); err == nil {
		t.Fatal("out-of-range index should error at run time")
	}
}

func TestSplitPartition(t *testing.T) {
	g := graph.New()
	x := g.Const("x", tensor.FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3))
	parts := Split(x, 1, 3)
	if len(parts) != 3 {
		t.Fatalf("expected 3 parts")
	}
	for i, p := range parts {
		out := runOne(t, p, nil)
		if out.Data()[0] != float32(i+1) || out.Data()[1] != float32(i+4) {
			t.Fatalf("part %d = %v", i, out.Data())
		}
	}
}

func TestSplitUnevenPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("uneven split should panic")
		}
	}()
	g := graph.New()
	Split(g.Const("x", tensor.New(2, 3)), 1, 2)
}

func TestStack(t *testing.T) {
	g := graph.New()
	a := g.Const("a", tensor.FromSlice([]float32{1, 2}, 2))
	b := g.Const("b", tensor.FromSlice([]float32{3, 4}, 2))
	out := runOne(t, Stack(a, b), nil)
	if !tensor.SameShape(out.Shape(), []int{2, 2}) || out.At(1, 0) != 3 {
		t.Fatalf("Stack = %v %v", out.Shape(), out.Data())
	}
}

func TestApplyAdagradAnnealsStepSize(t *testing.T) {
	g := graph.New()
	v := g.Variable("v", tensor.New(1))
	grad := g.Const("g", tensor.FromSlice([]float32{1}, 1))
	up := ApplyAdagrad(v, grad, 0.1, 1e-8)
	s := runtime.NewSession(g)
	s.MustRun([]*graph.Node{up}, nil)
	first := -v.Value().Data()[0] // ≈ lr
	before := v.Value().Data()[0]
	s.MustRun([]*graph.Node{up}, nil)
	second := before - v.Value().Data()[0]
	if first <= 0 || second <= 0 {
		t.Fatalf("updates should move downhill: %v %v", first, second)
	}
	if second >= first {
		t.Fatalf("AdaGrad step should shrink: first %v second %v", first, second)
	}
}
