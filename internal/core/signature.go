package core

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/runtime"
	"repro/internal/tensor"
)

// IOSpec names one tensor of a workload's request contract: an input
// placeholder a caller must feed, or an output node the run returns.
// BatchDim is the axis that indexes independent examples (0 for
// batch-major image tensors, 1 for the time-major (T, B, …) layouts of
// the recurrent workloads, BatchNone for whole-batch scalars such as a
// mean loss). Serving systems use it to coalesce single-example
// requests into one graph execution and split the results back apart.
type IOSpec struct {
	Name     string
	Node     *graph.Node
	BatchDim int
}

// BatchNone marks an IOSpec with no per-example axis (scalar losses).
const BatchNone = -1

// In declares a batch-major input (BatchDim 0).
func In(name string, n *graph.Node) IOSpec { return IOSpec{Name: name, Node: n, BatchDim: 0} }

// InAt declares an input whose example axis is dim.
func InAt(name string, n *graph.Node, dim int) IOSpec {
	return IOSpec{Name: name, Node: n, BatchDim: dim}
}

// Out declares a batch-major output (BatchDim 0).
func Out(name string, n *graph.Node) IOSpec { return IOSpec{Name: name, Node: n, BatchDim: 0} }

// OutAt declares an output whose example axis is dim.
func OutAt(name string, n *graph.Node, dim int) IOSpec {
	return IOSpec{Name: name, Node: n, BatchDim: dim}
}

// ScalarOut declares a whole-batch output with no example axis.
func ScalarOut(name string, n *graph.Node) IOSpec {
	return IOSpec{Name: name, Node: n, BatchDim: BatchNone}
}

// Shape returns the full graph shape of the spec's node.
func (s IOSpec) Shape() []int { return s.Node.Shape() }

// ExampleShape returns the shape of one example: the node shape with
// the batch axis removed (nil slice for a scalar example).
func (s IOSpec) ExampleShape() []int {
	if s.BatchDim == BatchNone {
		return s.Node.Shape()
	}
	full := s.Node.Shape()
	out := make([]int, 0, len(full)-1)
	for i, d := range full {
		if i != s.BatchDim {
			out = append(out, d)
		}
	}
	return out
}

// Signature is a workload's explicit I/O contract for one mode: the
// named placeholders a request must feed and the named nodes an
// execution returns, in fetch order. It is the request-driven half of
// the standard model interface — where Step-style self-feeding drives
// the graph from the workload's synthetic dataset, a Signature lets an
// external caller (test, benchmark, serving engine) supply real inputs
// and receive real outputs.
type Signature struct {
	Inputs  []IOSpec
	Outputs []IOSpec
}

// Input returns the input spec with the given name.
func (sig Signature) Input(name string) (IOSpec, bool) {
	for _, s := range sig.Inputs {
		if s.Name == name {
			return s, true
		}
	}
	return IOSpec{}, false
}

// Output returns the output spec with the given name.
func (sig Signature) Output(name string) (IOSpec, bool) {
	for _, s := range sig.Outputs {
		if s.Name == name {
			return s, true
		}
	}
	return IOSpec{}, false
}

// BatchCapacity returns the number of examples one graph execution
// carries: the extent of the first batched input's batch axis (1 if
// the signature has no batched inputs).
func (sig Signature) BatchCapacity() int {
	for _, s := range sig.Inputs {
		if s.BatchDim != BatchNone {
			return s.Node.Shape()[s.BatchDim]
		}
	}
	return 1
}

// Run executes the signature against a session: every input must be
// fed (by name, with the exact placeholder shape), every output is
// fetched, and the results come back keyed by output name. Unknown
// feed names are rejected so request typos fail loudly. Run is how
// workloads implement Inferencer; it works for any mode's signature.
func (sig Signature) Run(s *runtime.Session, feeds map[string]*tensor.Tensor) (map[string]*tensor.Tensor, error) {
	rf := make(runtime.Feeds, len(sig.Inputs))
	for _, in := range sig.Inputs {
		t, ok := feeds[in.Name]
		if !ok {
			return nil, fmt.Errorf("core: missing input %q (signature inputs: %v)", in.Name, sig.InputNames())
		}
		rf[in.Node] = t
	}
	if len(feeds) > len(sig.Inputs) {
		for name := range feeds {
			if _, ok := sig.Input(name); !ok {
				return nil, fmt.Errorf("core: unknown input %q (signature inputs: %v)", name, sig.InputNames())
			}
		}
	}
	fetches := make([]*graph.Node, len(sig.Outputs))
	for i, out := range sig.Outputs {
		fetches[i] = out.Node
	}
	vals, err := s.Run(fetches, rf)
	if err != nil {
		return nil, err
	}
	out := make(map[string]*tensor.Tensor, len(vals))
	for i, spec := range sig.Outputs {
		out[spec.Name] = vals[i]
	}
	return out, nil
}

// RunInference executes one forward pass over m's inference signature
// — the shared body of every workload's Inferencer implementation, so
// inference semantics (mode flag, feed validation, output naming) live
// in one place.
func RunInference(m Model, s *runtime.Session, feeds map[string]*tensor.Tensor) (map[string]*tensor.Tensor, error) {
	s.SetTraining(false)
	return m.Signature(ModeInference).Run(s, feeds)
}

// InputNames returns the input names in declaration order.
func (sig Signature) InputNames() []string {
	out := make([]string, len(sig.Inputs))
	for i, s := range sig.Inputs {
		out[i] = s.Name
	}
	return out
}

// OutputNames returns the output names in fetch order.
func (sig Signature) OutputNames() []string {
	out := make([]string, len(sig.Outputs))
	for i, s := range sig.Outputs {
		out[i] = s.Name
	}
	return out
}
