package core

import (
	"fmt"
	"testing"

	"repro/internal/graph"
	"repro/internal/ops"
	"repro/internal/runtime"
	"repro/internal/tensor"
)

// toy is a minimal Model for exercising the runner without importing
// the real workloads (which would create an import cycle in tests).
type toy struct {
	g     *graph.Graph
	x     *graph.Node
	y     *graph.Node
	loss  *graph.Node
	train *graph.Node
	steps int
}

func (t *toy) Name() string { return "toy" }
func (t *toy) Meta() Meta {
	return Meta{Name: "toy", Year: 2016, Style: "Full", Layers: 1, Task: "Supervised", Dataset: "none"}
}
func (t *toy) Graph() *graph.Graph { return t.g }
func (t *toy) Setup(cfg Config) error {
	g := graph.New()
	t.g = g
	t.x = g.Placeholder("x", 4, 8)
	w := g.Variable("w", tensor.Ones(8, 2))
	t.y = ops.MatMul(t.x, w)
	t.loss = ops.Sum(ops.Square(t.y))
	grads, err := graph.Gradients(t.loss, []*graph.Node{w})
	if err != nil {
		return err
	}
	t.train = ops.ApplySGD(w, grads[0], 1e-4)
	return nil
}
func (t *toy) Signature(mode Mode) Signature {
	if mode == ModeTraining {
		return Signature{
			Inputs:  []IOSpec{In("x", t.x)},
			Outputs: []IOSpec{ScalarOut("loss", t.loss)},
		}
	}
	return Signature{
		Inputs:  []IOSpec{In("x", t.x)},
		Outputs: []IOSpec{Out("y", t.y)},
	}
}
func (t *toy) Infer(s *runtime.Session, feeds map[string]*tensor.Tensor) (map[string]*tensor.Tensor, error) {
	t.steps++
	s.SetTraining(false)
	return t.Signature(ModeInference).Run(s, feeds)
}
func (t *toy) TrainStep(s *runtime.Session) (float64, error) {
	t.steps++
	s.SetTraining(true)
	out, err := s.Run([]*graph.Node{t.loss, t.train}, runtime.Feeds{t.x: tensor.Ones(4, 8)})
	if err != nil {
		return 0, err
	}
	return float64(out[0].Data()[0]), nil
}
func (t *toy) Sample() map[string]*tensor.Tensor {
	return map[string]*tensor.Tensor{"x": tensor.Ones(4, 8)}
}

func TestModeAndPresetStrings(t *testing.T) {
	if ModeTraining.String() != "training" || ModeInference.String() != "inference" {
		t.Fatal("mode strings")
	}
	if PresetRef.String() != "ref" || PresetSmall.String() != "small" || PresetTiny.String() != "tiny" {
		t.Fatal("preset strings")
	}
}

func TestParsePreset(t *testing.T) {
	for s, want := range map[string]Preset{"ref": PresetRef, "": PresetRef, "small": PresetSmall, "tiny": PresetTiny} {
		got, err := ParsePreset(s)
		if err != nil || got != want {
			t.Fatalf("ParsePreset(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParsePreset("gigantic"); err == nil {
		t.Fatal("bad preset should error")
	}
}

func TestParseMode(t *testing.T) {
	for s, want := range map[string]Mode{"training": ModeTraining, "train": ModeTraining, "inference": ModeInference, "infer": ModeInference} {
		got, err := ParseMode(s)
		if err != nil || got != want {
			t.Fatalf("ParseMode(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseMode("dreaming"); err == nil {
		t.Fatal("bad mode should error")
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	Register("core-test-dup", func() Model { return &toy{} })
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration must panic")
		}
		delete(registry, "core-test-dup")
	}()
	Register("core-test-dup", func() Model { return &toy{} })
}

func TestNewDevice(t *testing.T) {
	if d, err := NewDevice("cpu"); err != nil || d.Name() != "cpu" {
		t.Fatal("cpu device")
	}
	if d, err := NewDevice(""); err != nil || d.Name() != "cpu" {
		t.Fatal("default device")
	}
	if d, err := NewDevice("gpu"); err != nil || d.Name() != "gpu" {
		t.Fatal("gpu device")
	}
	if _, err := NewDevice("tpu"); err == nil {
		t.Fatal("unknown device should error")
	}
}

func TestRunWarmupExcludedFromTrace(t *testing.T) {
	m := &toy{}
	if err := m.Setup(Config{}); err != nil {
		t.Fatal(err)
	}
	res, err := Run(m, RunOptions{Mode: ModeTraining, Steps: 3, Warmup: 2})
	if err != nil {
		t.Fatal(err)
	}
	if m.steps != 5 {
		t.Fatalf("expected 5 total steps, got %d", m.steps)
	}
	if res.Profile.Steps != 3 {
		t.Fatalf("profile steps = %d", res.Profile.Steps)
	}
	// Events carry only the measured steps (warmup trace was reset):
	// 3 steps × 4 ops (MatMul, Square, Sum grad path... at minimum > 0
	// and divisible by 3).
	if len(res.Events) == 0 || len(res.Events)%3 != 0 {
		t.Fatalf("events should cover exactly the 3 measured steps, got %d", len(res.Events))
	}
	if res.SimTime <= 0 || res.WallTime <= 0 {
		t.Fatal("run must report positive times")
	}
}

func TestRunDefaultsApplied(t *testing.T) {
	m := &toy{}
	if err := m.Setup(Config{}); err != nil {
		t.Fatal(err)
	}
	res, err := Run(m, RunOptions{Mode: ModeInference}) // Steps default 1
	if err != nil {
		t.Fatal(err)
	}
	if res.Profile.Steps != 1 {
		t.Fatalf("default steps = %d", res.Profile.Steps)
	}
	if res.Mode != ModeInference || res.Model != "toy" {
		t.Fatal("result metadata")
	}
}

func TestRunRejectsBadDevice(t *testing.T) {
	m := &toy{}
	if err := m.Setup(Config{}); err != nil {
		t.Fatal(err)
	}
	if _, err := Run(m, RunOptions{Device: "quantum"}); err == nil {
		t.Fatal("bad device should error")
	}
}

func TestRunOnGPUDevice(t *testing.T) {
	m := &toy{}
	if err := m.Setup(Config{}); err != nil {
		t.Fatal(err)
	}
	res, err := Run(m, RunOptions{Mode: ModeTraining, Steps: 2, Device: "gpu"})
	if err != nil {
		t.Fatal(err)
	}
	if res.SimTime <= 0 {
		t.Fatal("GPU run must produce modeled time")
	}
}

func TestSetupAndRunUnknownModel(t *testing.T) {
	if _, err := SetupAndRun("nonexistent", Config{}, RunOptions{}); err == nil {
		t.Fatal("unknown model should error")
	}
}

func TestSignatureShapesAndCapacity(t *testing.T) {
	m := &toy{}
	if err := m.Setup(Config{}); err != nil {
		t.Fatal(err)
	}
	sig := m.Signature(ModeInference)
	in, ok := sig.Input("x")
	if !ok {
		t.Fatal("missing input x")
	}
	if got := in.ExampleShape(); len(got) != 1 || got[0] != 8 {
		t.Fatalf("example shape = %v, want [8]", got)
	}
	if sig.BatchCapacity() != 4 {
		t.Fatalf("capacity = %d, want 4", sig.BatchCapacity())
	}
	out, ok := sig.Output("y")
	if !ok || out.BatchDim != 0 {
		t.Fatal("missing batched output y")
	}
	loss, ok := m.Signature(ModeTraining).Output("loss")
	if !ok || loss.BatchDim != BatchNone {
		t.Fatal("training loss must be a whole-batch scalar")
	}
}

func TestSignatureRunValidatesFeeds(t *testing.T) {
	m := &toy{}
	if err := m.Setup(Config{}); err != nil {
		t.Fatal(err)
	}
	s := runtime.NewSession(m.Graph())
	sig := m.Signature(ModeInference)
	if _, err := sig.Run(s, map[string]*tensor.Tensor{}); err == nil {
		t.Fatal("missing input must error")
	}
	if _, err := sig.Run(s, map[string]*tensor.Tensor{
		"x": tensor.Ones(4, 8), "bogus": tensor.Ones(1),
	}); err == nil {
		t.Fatal("unknown input must error")
	}
	out, err := sig.Run(s, map[string]*tensor.Tensor{"x": tensor.Ones(4, 8)})
	if err != nil {
		t.Fatal(err)
	}
	y, ok := out["y"]
	if !ok || y.Dim(0) != 4 || y.Dim(1) != 2 {
		t.Fatalf("output y = %v", out)
	}
}

func TestStepAdapterDrivesCapabilities(t *testing.T) {
	m := &toy{}
	if err := m.Setup(Config{}); err != nil {
		t.Fatal(err)
	}
	s := runtime.NewSession(m.Graph())
	if err := Step(m, s, ModeTraining); err != nil {
		t.Fatal(err)
	}
	if err := Step(m, s, ModeInference); err != nil {
		t.Fatal(err)
	}
	if m.steps != 2 {
		t.Fatalf("adapter should have driven 2 steps, got %d", m.steps)
	}
}

var _ = fmt.Sprint // keep fmt for debugging variants
