// Package core defines the Fathom suite itself: the standard model
// interface every workload implements (the paper's answer to the
// "model zoos have no standard interface" problem), the registry of
// the eight workloads, and the instrumented runner that produces
// operation-level profiles.
package core

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/graph"
	"repro/internal/profiling"
	"repro/internal/runtime"
	"repro/internal/tensor"
)

// Mode selects the phase a step executes.
type Mode int

const (
	// ModeInference runs only the forward phase.
	ModeInference Mode = iota
	// ModeTraining runs forward, backward and parameter updates.
	ModeTraining
)

func (m Mode) String() string {
	if m == ModeTraining {
		return "training"
	}
	return "inference"
}

// Preset selects a configuration scale.
type Preset int

const (
	// PresetRef is the reference configuration: structurally faithful
	// to the original paper with dimensions scaled for a pure-Go,
	// single-core substrate (see DESIGN.md §4.4).
	PresetRef Preset = iota
	// PresetSmall further shrinks dimensions for benchmarks.
	PresetSmall
	// PresetTiny is minimal, for unit tests.
	PresetTiny
)

func (p Preset) String() string {
	switch p {
	case PresetSmall:
		return "small"
	case PresetTiny:
		return "tiny"
	default:
		return "ref"
	}
}

// ParseMode converts a mode name.
func ParseMode(s string) (Mode, error) {
	switch s {
	case "training", "train", "":
		return ModeTraining, nil
	case "inference", "infer":
		return ModeInference, nil
	}
	return ModeTraining, fmt.Errorf("core: unknown mode %q", s)
}

// ParsePreset converts a preset name.
func ParsePreset(s string) (Preset, error) {
	switch s {
	case "ref", "":
		return PresetRef, nil
	case "small":
		return PresetSmall, nil
	case "tiny":
		return PresetTiny, nil
	}
	return PresetRef, fmt.Errorf("core: unknown preset %q", s)
}

// Config configures a workload build.
type Config struct {
	Preset Preset
	Seed   int64
	// Batch, when positive, overrides the preset's batch (minibatch)
	// size. Serving engines use it to build a graph whose batch axis
	// matches their micro-batching window (see internal/serve).
	Batch int
	// Heads, when positive, overrides the preset's attention head
	// count for workloads with multi-head attention. The workload's
	// Setup validates divisibility (embed % heads == 0) and rejects
	// impossible configurations.
	Heads int
}

// BatchOr resolves the batch override: the configured Batch if
// positive, else the preset default def.
func (c Config) BatchOr(def int) int {
	if c.Batch > 0 {
		return c.Batch
	}
	return def
}

// HeadsOr resolves the head-count override: the configured Heads if
// positive, else the preset default def.
func (c Config) HeadsOr(def int) int {
	if c.Heads > 0 {
		return c.Heads
	}
	return def
}

// Meta is a workload's Table-II row.
type Meta struct {
	Name    string
	Year    int
	Ref     string // original publication
	Style   string // neuronal style
	Layers  int    // layer depth as reported by the paper
	Task    string // Supervised / Unsupervised / Reinforcement
	Dataset string // original dataset (we substitute synthetically)
	Purpose string // purpose and legacy
}

// Model is the standard interface every Fathom workload implements.
// It is deliberately request-driven: a workload describes its named
// inputs and outputs through Signature, and the capability interfaces
// (Inferencer, Trainer) execute against those. Self-feeding
// profile-style stepping — the original Step behavior — lives in the
// package-level Step adapter, which drives the same methods from the
// workload's synthetic dataset.
type Model interface {
	// Name returns the canonical workload name (e.g. "seq2seq").
	Name() string
	// Meta returns the workload's Table-II metadata.
	Meta() Meta
	// Setup builds the dataflow graph and data pipeline.
	Setup(cfg Config) error
	// Graph returns the built graph (after Setup).
	Graph() *graph.Graph
	// Signature returns the workload's explicit I/O contract for the
	// mode (after Setup): the placeholders a request must feed and
	// the nodes an execution returns, in fetch order.
	Signature(mode Mode) Signature
}

// Inferencer is the serving capability: execute one forward pass over
// the inference signature, feeding the named inputs and returning the
// named outputs. Implementations must be stateless with respect to the
// model value (all per-run state lives in the session), so one model
// may be shared by many sessions on concurrent goroutines — the
// property serve.Engine's session pool relies on.
type Inferencer interface {
	Infer(s *runtime.Session, feeds map[string]*tensor.Tensor) (map[string]*tensor.Tensor, error)
}

// Trainer is the training capability: execute one optimizer update,
// drawing a minibatch from the workload's synthetic dataset, and
// report the step's loss.
type Trainer interface {
	TrainStep(s *runtime.Session) (float64, error)
}

// Sampler provides one synthetic batch of the workload's inference
// inputs, keyed by signature input name. The Step adapter uses it to
// preserve the original self-feeding inference behavior on top of
// Inferencer.
type Sampler interface {
	Sample() map[string]*tensor.Tensor
}

// TrainSampler is the data surface of data-parallel training
// (internal/dist): one training minibatch — feeds for the training
// signature, keyed by input name — drawn from a generator derived
// entirely from seed. The same seed must yield the same batch
// regardless of model history or which replica asks, so any partition
// of a chunk grid over replicas sees identical data (the dist driver
// derives one seed per (step, chunk) via dataset.ChunkSeed). The
// session is provided for workloads whose batch assembly needs a
// forward pass — deepq bootstraps its Q-targets through its frozen
// target network — and implementations may only read variables
// through it, never mutate them.
type TrainSampler interface {
	TrainSample(s *runtime.Session, seed int64) (map[string]*tensor.Tensor, error)
}

// InferenceStepper is implemented by workloads whose self-driven
// inference step is more than Infer on a sampled batch — deepq's
// greedy policy evaluation acts in its emulator. Step prefers it over
// the Sampler+Inferencer path.
type InferenceStepper interface {
	InferStep(s *runtime.Session) error
}

// BatchCoupled is implemented by workloads whose graphs couple
// examples across the batch axis even at inference — residual's
// primitive-op batch normalization computes statistics over the whole
// batch — so per-example outputs depend on what shares the batch.
// Serving engines must not coalesce requests from different callers
// into one execution for such workloads.
type BatchCoupled interface {
	BatchCoupled() bool
}

// LossReporter is implemented by workloads that can report the loss
// of their most recent training step (used by convergence tests).
type LossReporter interface {
	LastLoss() float64
}

// Step executes one self-feeding step — one optimizer update
// (training) or one batched inference (inference) drawn from the
// workload's synthetic dataset — by driving the model's Trainer /
// Inferencer capabilities. It is the adapter that preserves the
// original monolithic Step contract for the profiling tooling
// (experiments, fathom run) on top of the request-driven interface.
func Step(m Model, s *runtime.Session, mode Mode) error {
	if mode == ModeTraining {
		tr, ok := m.(Trainer)
		if !ok {
			return fmt.Errorf("core: workload %s does not support training", m.Name())
		}
		_, err := tr.TrainStep(s)
		return err
	}
	if st, ok := m.(InferenceStepper); ok {
		s.SetTraining(false)
		return st.InferStep(s)
	}
	smp, okS := m.(Sampler)
	inf, okI := m.(Inferencer)
	if !okS || !okI {
		return fmt.Errorf("core: workload %s does not support self-feeding inference", m.Name())
	}
	_, err := inf.Infer(s, smp.Sample())
	return err
}

// registry of workload factories.
var registry = map[string]func() Model{}

// Register installs a workload factory; it panics on duplicates
// (registration happens in package init functions).
func Register(name string, factory func() Model) {
	if _, dup := registry[name]; dup {
		panic("core: duplicate workload " + name)
	}
	registry[name] = factory
}

// Names returns the registered workload names, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// New instantiates a registered workload.
func New(name string) (Model, error) {
	f, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("core: unknown workload %q (have %v)", name, Names())
	}
	return f(), nil
}

// RunOptions configures an instrumented run.
type RunOptions struct {
	Mode    Mode
	Steps   int // measured steps
	Warmup  int // untraced warmup steps
	Workers int // modeled intra-op workers (default 1)
	IntraOp int // real intra-op workers on the shared pool (default 1; overrides Workers)
	InterOp int // inter-op scheduler width (default 1 = serial)
	Device  string
	Seed    int64
}

// RunResult is the outcome of an instrumented run.
type RunResult struct {
	Model   string
	Mode    Mode
	Profile *profiling.Profile
	Events  []runtime.Event
	// SimTime is the simulated op time of the measured steps.
	SimTime time.Duration
	// WallTime is the host wall time of the measured steps.
	WallTime time.Duration
}

// NewDevice builds a device by name ("cpu" or "gpu").
func NewDevice(name string) (runtime.Device, error) {
	switch name {
	case "cpu", "":
		return runtime.CPUDevice{}, nil
	case "gpu":
		return runtime.NewGTX960(), nil
	}
	return nil, fmt.Errorf("core: unknown device %q", name)
}

// Run executes warmup + measured self-feeding steps under tracing and
// returns the profile. Run never calls Setup: the model must already
// have been Setup by the caller (SetupAndRun is the convenience path
// that does both). Each run drives the model through the Step adapter
// on a fresh traced session.
func Run(m Model, opt RunOptions) (*RunResult, error) {
	if opt.Steps <= 0 {
		opt.Steps = 1
	}
	if opt.Workers <= 0 {
		opt.Workers = 1
	}
	dev, err := NewDevice(opt.Device)
	if err != nil {
		return nil, err
	}
	seed := opt.Seed
	if seed == 0 {
		seed = 1
	}
	if opt.InterOp <= 0 {
		opt.InterOp = 1
	}
	sessOpts := []runtime.Option{
		runtime.WithDevice(dev),
		runtime.WithWorkers(opt.Workers),
		runtime.WithInterOpWorkers(opt.InterOp),
		runtime.WithSeed(seed),
		runtime.WithTrace(),
	}
	if opt.IntraOp > 1 {
		sessOpts = append(sessOpts, runtime.WithIntraOpWorkers(opt.IntraOp))
	}
	sess := runtime.NewSession(m.Graph(), sessOpts...)
	defer sess.Close()
	for i := 0; i < opt.Warmup; i++ {
		if err := Step(m, sess, opt.Mode); err != nil {
			return nil, fmt.Errorf("core: %s warmup step: %w", m.Name(), err)
		}
	}
	sess.ResetTrace()
	t0 := time.Now()
	for i := 0; i < opt.Steps; i++ {
		if err := Step(m, sess, opt.Mode); err != nil {
			return nil, fmt.Errorf("core: %s step %d: %w", m.Name(), i, err)
		}
	}
	wall := time.Since(t0)
	events := sess.Trace()
	prof := profiling.Collect(m.Name(), opt.Mode.String(), opt.Steps, events)
	return &RunResult{
		Model:    m.Name(),
		Mode:     opt.Mode,
		Profile:  prof,
		Events:   events,
		SimTime:  sess.SimTime(),
		WallTime: wall,
	}, nil
}

// SetupAndRun is the convenience path: instantiate, set up, run.
func SetupAndRun(name string, cfg Config, opt RunOptions) (*RunResult, error) {
	m, err := New(name)
	if err != nil {
		return nil, err
	}
	if err := m.Setup(cfg); err != nil {
		return nil, fmt.Errorf("core: setup %s: %w", name, err)
	}
	return Run(m, opt)
}
