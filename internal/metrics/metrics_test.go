package metrics

import (
	"testing"

	"repro/internal/tensor"
)

// logitsFor builds a (T,1,K) tensor whose argmax path is the given
// symbol sequence.
func logitsFor(path []int, k int) *tensor.Tensor {
	t := tensor.New(len(path), 1, k)
	for i, s := range path {
		t.Set(10, i, 0, s)
	}
	return t
}

func TestCTCGreedyDecodeCollapses(t *testing.T) {
	// Path: a a ∅ a b b ∅ (blank = 2 with K=3)... use K=3, blank=2.
	path := []int{0, 0, 2, 0, 1, 1, 2}
	got := CTCGreedyDecode(logitsFor(path, 3))
	want := []int{0, 0, 1} // aa∅ab b∅ → a, a, b
	if len(got) != 1 || len(got[0]) != 3 {
		t.Fatalf("decode = %v", got)
	}
	for i := range want {
		if got[0][i] != want[i] {
			t.Fatalf("decode = %v want %v", got[0], want)
		}
	}
}

func TestCTCGreedyDecodeAllBlanks(t *testing.T) {
	path := []int{2, 2, 2}
	got := CTCGreedyDecode(logitsFor(path, 3))
	if len(got[0]) != 0 {
		t.Fatalf("all-blank path should decode empty, got %v", got[0])
	}
}

func TestCTCGreedyDecodeBatch(t *testing.T) {
	lg := tensor.New(2, 2, 3)
	lg.Set(5, 0, 0, 0) // batch 0: symbol 0 then blank
	lg.Set(5, 1, 0, 2)
	lg.Set(5, 0, 1, 1) // batch 1: symbol 1 twice (merges)
	lg.Set(5, 1, 1, 1)
	got := CTCGreedyDecode(lg)
	if len(got[0]) != 1 || got[0][0] != 0 {
		t.Fatalf("batch 0 decode %v", got[0])
	}
	if len(got[1]) != 1 || got[1][0] != 1 {
		t.Fatalf("batch 1 decode %v", got[1])
	}
}

func TestEditDistance(t *testing.T) {
	cases := []struct {
		a, b []int
		want int
	}{
		{nil, nil, 0},
		{[]int{1, 2, 3}, []int{1, 2, 3}, 0},
		{[]int{1, 2, 3}, []int{1, 3}, 1},    // deletion
		{[]int{1, 3}, []int{1, 2, 3}, 1},    // insertion
		{[]int{1, 2, 3}, []int{1, 9, 3}, 1}, // substitution
		{[]int{1, 2, 3}, nil, 3},            // all deleted
		{nil, []int{7}, 1},                  // all inserted
		{[]int{5, 6, 7, 8}, []int{8, 7, 6, 5}, 4},
	}
	for _, c := range cases {
		if got := EditDistance(c.a, c.b); got != c.want {
			t.Fatalf("EditDistance(%v,%v) = %d want %d", c.a, c.b, got, c.want)
		}
	}
	// Symmetry.
	if EditDistance([]int{1, 2}, []int{2}) != EditDistance([]int{2}, []int{1, 2}) {
		t.Fatal("edit distance must be symmetric")
	}
}

func TestLabelErrorRate(t *testing.T) {
	refs := [][]int{{1, 2, 3}, {4, 5}}
	hyps := [][]int{{1, 2, 3}, {4, 9}}
	if ler := LabelErrorRate(refs, hyps); ler != 0.2 { // 1 error / 5 labels
		t.Fatalf("LER = %v want 0.2", ler)
	}
	if LabelErrorRate(nil, nil) != 0 {
		t.Fatal("empty LER should be 0")
	}
	// Missing hypotheses count as full deletions.
	if ler := LabelErrorRate([][]int{{1, 2}}, nil); ler != 1 {
		t.Fatalf("missing hyp LER = %v want 1", ler)
	}
}

func TestAccuracy(t *testing.T) {
	logits := tensor.FromSlice([]float32{
		0.1, 0.9, // predicts 1
		0.8, 0.2, // predicts 0
		0.3, 0.7, // predicts 1
	}, 3, 2)
	labels := tensor.FromSlice([]float32{1, 0, 0}, 3)
	if acc := Accuracy(logits, labels); acc < 0.66 || acc > 0.67 {
		t.Fatalf("accuracy = %v want 2/3", acc)
	}
}

func TestPaddedLabels(t *testing.T) {
	lt := tensor.FromSlice([]float32{
		1, 2, -1,
		3, -1, -1,
	}, 2, 3)
	got := PaddedLabels(lt)
	if len(got[0]) != 2 || got[0][1] != 2 || len(got[1]) != 1 || got[1][0] != 3 {
		t.Fatalf("padded labels = %v", got)
	}
}
