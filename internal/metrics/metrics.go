// Package metrics provides task-level evaluation utilities for the
// workloads: greedy CTC decoding and edit distance for speech
// (phoneme/label error rate, the metric Deep Speech reports),
// classification accuracy, and sequence token accuracy.
package metrics

import "repro/internal/tensor"

// CTCGreedyDecode collapses the framewise argmax path of logits
// (T, B, K) into label sequences: repeated symbols merge and blanks
// (index K-1) drop, the standard best-path decoding.
func CTCGreedyDecode(logits *tensor.Tensor) [][]int {
	T, B, K := logits.Dim(0), logits.Dim(1), logits.Dim(2)
	blank := K - 1
	out := make([][]int, B)
	for b := 0; b < B; b++ {
		prev := -1
		var seq []int
		for t := 0; t < T; t++ {
			best, bestV := 0, logits.At(t, b, 0)
			for k := 1; k < K; k++ {
				if v := logits.At(t, b, k); v > bestV {
					best, bestV = k, v
				}
			}
			if best != prev && best != blank {
				seq = append(seq, best)
			}
			prev = best
		}
		out[b] = seq
	}
	return out
}

// EditDistance returns the Levenshtein distance between two label
// sequences.
func EditDistance(a, b []int) int {
	if len(a) == 0 {
		return len(b)
	}
	if len(b) == 0 {
		return len(a)
	}
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = i
		for j := 1; j <= len(b); j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			cur[j] = min3(prev[j]+1, cur[j-1]+1, prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}

// LabelErrorRate is the total edit distance over total reference
// length across a batch — the phoneme-error-rate style metric.
func LabelErrorRate(refs, hyps [][]int) float64 {
	var dist, total int
	for i := range refs {
		var hyp []int
		if i < len(hyps) {
			hyp = hyps[i]
		}
		dist += EditDistance(refs[i], hyp)
		total += len(refs[i])
	}
	if total == 0 {
		return 0
	}
	return float64(dist) / float64(total)
}

// Accuracy compares argmax rows of logits (B, C) against integer
// labels (B), returning the fraction correct.
func Accuracy(logits, labels *tensor.Tensor) float64 {
	b := logits.Dim(0)
	c := logits.Dim(1)
	correct := 0
	for i := 0; i < b; i++ {
		best, bestV := 0, logits.At(i, 0)
		for k := 1; k < c; k++ {
			if v := logits.At(i, k); v > bestV {
				best, bestV = k, v
			}
		}
		if best == int(labels.At(i)) {
			correct++
		}
	}
	return float64(correct) / float64(b)
}

// PaddedLabels converts a (B, L) tensor with -1 padding into label
// sequences.
func PaddedLabels(t *tensor.Tensor) [][]int {
	b, l := t.Dim(0), t.Dim(1)
	out := make([][]int, b)
	for i := 0; i < b; i++ {
		for j := 0; j < l; j++ {
			v := t.At(i, j)
			if v < 0 {
				break
			}
			out[i] = append(out[i], int(v))
		}
	}
	return out
}
