// Telemetry integration tests: a sampled request must yield a
// well-formed span tree whose op spans came from its own batch run,
// the /metrics endpoint must expose the serve/pool/arena families, and
// enabling tracing must not leak goroutines across engine lifecycles.
package serve

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	goruntime "runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/sched"
	"repro/internal/telemetry"
)

// traceByName indexes a trace's spans by name, failing on absence.
func spansByName(t *testing.T, spans []telemetry.Span) map[string][]telemetry.Span {
	t.Helper()
	out := map[string][]telemetry.Span{}
	for _, s := range spans {
		out[s.Name] = append(out[s.Name], s)
	}
	return out
}

// TestEngineTraceSpanTree samples every request and checks the span
// tree the ISSUE acceptance demands: request -> admission + queue +
// batch -> run -> per-op spans, no orphan parent IDs, and op spans on
// worker lanes.
func TestEngineTraceSpanTree(t *testing.T) {
	tc := telemetry.NewTraceCollector(1, 16)
	m := buildModel(t, "memnet", 2)
	e, err := New(m, Options{
		Sessions: 1, MaxBatch: 2, MaxDelay: time.Millisecond,
		InterOpWorkers: 2, IntraOpWorkers: 1, Trace: tc,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	examples := sampleExamples(t, m, 3)
	for _, ex := range examples {
		if _, err := e.Infer(context.Background(), ex); err != nil {
			t.Fatal(err)
		}
	}
	traces := tc.Drain()
	if len(traces) != len(examples) {
		t.Fatalf("sampled %d traces at every=1 for %d requests", len(traces), len(examples))
	}
	for _, tr := range traces {
		spans := tr.Spans()
		byID := map[telemetry.SpanID]telemetry.Span{}
		for _, s := range spans {
			if s.ID == 0 {
				t.Fatalf("trace %d: span %q with zero ID", tr.ID, s.Name)
			}
			byID[s.ID] = s
		}
		var roots int
		for _, s := range spans {
			if s.Parent == 0 {
				roots++
				if s.Name != "request" {
					t.Errorf("trace %d: root span named %q, want request", tr.ID, s.Name)
				}
				continue
			}
			if _, ok := byID[s.Parent]; !ok {
				t.Errorf("trace %d: span %q has orphan parent %d", tr.ID, s.Name, s.Parent)
			}
		}
		if roots != 1 {
			t.Errorf("trace %d: %d roots, want 1", tr.ID, roots)
		}
		names := spansByName(t, spans)
		for _, want := range []string{"request", "admission", "queue", "batch", "run"} {
			if len(names[want]) == 0 {
				t.Errorf("trace %d: no %q span (have %v)", tr.ID, want, keys(names))
			}
		}
		if len(names["run"]) == 0 {
			continue
		}
		run := names["run"][0]
		// Every op span must be a direct child of this request's run
		// span, on a worker lane.
		ops := 0
		for _, s := range spans {
			if s.Parent == run.ID && s.Lane >= 1 {
				ops++
			}
		}
		if ops == 0 {
			t.Errorf("trace %d: run span has no op children", tr.ID)
		}
	}
}

func keys(m map[string][]telemetry.Span) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

// TestServerTelemetryEndpoints drives /metrics and /debug/trace over
// HTTP: after real traffic the exposition must cover the serve, pool
// and arena families with the model label, and the trace endpoint must
// return a one-shot Chrome-trace document.
func TestServerTelemetryEndpoints(t *testing.T) {
	reg := telemetry.NewRegistry()
	tc := telemetry.NewTraceCollector(1, 16)
	m := buildModel(t, "memnet", 2)
	e, err := New(m, Options{MaxBatch: 2, MaxDelay: time.Millisecond, Trace: tc})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	defer e.UnregisterMetrics(reg)
	srv := NewServer()
	srv.Register(e)
	srv.EnableTelemetry(reg, tc)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	ex := sampleExamples(t, m, 1)[0]
	body, _ := json.Marshal(inferRequest{Inputs: map[string]jsonTensor{
		"stories": toJSONTensor(ex["stories"]), "query": toJSONTensor(ex["query"]),
	}})
	resp, err := http.Post(ts.URL+"/v1/models/memnet:infer", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("infer status %d", resp.StatusCode)
	}

	mr, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mr.Body.Close()
	if ct := mr.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("/metrics Content-Type = %q", ct)
	}
	text, _ := io.ReadAll(mr.Body)
	for _, want := range []string{
		`fathom_serve_requests_total{model="memnet"} 1`,
		`fathom_serve_latency_seconds_count{lane="interactive",model="memnet"} 1`,
		`fathom_serve_queue_wait_seconds_count{model="memnet"} 1`,
		"fathom_pool_size",
		`fathom_arena_bytes{model="memnet"}`,
		"# TYPE fathom_serve_latency_seconds histogram",
	} {
		if !strings.Contains(string(text), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// /stats carries the arena block satellite.
	sr, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer sr.Body.Close()
	var stats map[string]map[string]any
	if err := json.NewDecoder(sr.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if _, ok := stats["memnet"]["arena_bytes"]; !ok {
		t.Errorf("/stats missing arena_bytes: %v", stats["memnet"])
	}
	if _, ok := stats["memnet"]["queue_wait_p99_ns"]; !ok {
		t.Errorf("/stats missing queue_wait_p99_ns: %v", stats["memnet"])
	}

	// /debug/trace drains the ring exactly once.
	tr, err := http.Get(ts.URL + "/debug/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Body.Close()
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.NewDecoder(tr.Body).Decode(&doc); err != nil {
		t.Fatalf("/debug/trace is not Chrome-trace JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Error("/debug/trace returned no events for a sampled request")
	}
	if tc.Len() != 0 {
		t.Errorf("collector still holds %d traces after drain", tc.Len())
	}
}

// TestEngineTracingShutdownReleasesGoroutines extends the leak gate to
// the trace path: engines with sampling enabled must wind down to the
// same baseline as untraced ones, with every sampled trace finished.
func TestEngineTracingShutdownReleasesGoroutines(t *testing.T) {
	pool := sched.New(2)
	defer pool.Close()
	base := goruntime.NumGoroutine()
	for round := 0; round < 3; round++ {
		tc := telemetry.NewTraceCollector(1, 8)
		m := buildModel(t, "memnet", 2)
		e, err := New(m, Options{
			Sessions: 2, MaxBatch: 2, MaxDelay: 200 * time.Microsecond,
			InterOpWorkers: 2, Trace: tc, WorkerPool: pool,
		})
		if err != nil {
			t.Fatal(err)
		}
		examples := sampleExamples(t, m, 4)
		var wg sync.WaitGroup
		for c := 0; c < 4; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				if _, err := e.Infer(context.Background(), examples[c]); err != nil {
					t.Error(err)
				}
			}(c)
		}
		wg.Wait()
		e.Close()
		if got := tc.Len(); got != 4 {
			t.Errorf("round %d: %d finished traces, want 4", round, got)
		}
	}
	deadline := time.Now().Add(3 * time.Second)
	for goruntime.NumGoroutine() > base+pool.Size()+1 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := goruntime.NumGoroutine(); got > base+pool.Size()+1 {
		t.Fatalf("goroutines %d after 3 traced engine lifecycles (baseline %d, pool %d): leak",
			got, base, pool.Size())
	}
}
