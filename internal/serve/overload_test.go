// Overload-behavior tests: the admission layer's contract under burst
// load, dead deadlines, cancelled callers, and saturated batch lanes.
// Run with -race — admission counters, queue gauges, and the EWMA
// estimate are all racing with workers here.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/sched"
)

// TestEngineQueueCapRejects pins the reject-early policy in
// isolation: with the dispatcher stopped (white box — the Engine is
// assembled by hand, nothing drains), QueueLen requests enqueue and
// the next one must fail immediately with ErrOverloaded. Deterministic
// on any scheduler, single-core included.
func TestEngineQueueCapRejects(t *testing.T) {
	m := buildModel(t, "memnet", 1)
	e := &Engine{
		model:    m,
		sig:      m.Signature(core.ModeInference),
		maxBatch: 1,
		done:     make(chan struct{}),
		stopped:  make(chan struct{}),
		pool:     sched.Default(),
	}
	for lane := range e.lanes {
		e.lanes[lane] = make(chan *request, 2)
	}
	e.stats.reset()
	examples := sampleExamples(t, m, 3)

	queued := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func(i int) {
			_, err := e.Infer(context.Background(), examples[i])
			queued <- err
		}(i)
	}
	deadline := time.Now().Add(5 * time.Second)
	for e.Stats().QueueDepth < 2 && time.Now().Before(deadline) {
		time.Sleep(50 * time.Microsecond)
	}
	if d := e.Stats().QueueDepth; d != 2 {
		t.Fatalf("queue depth = %d, want 2", d)
	}
	// Queue full: the next request must be refused, not blocked.
	start := time.Now()
	if _, err := e.Infer(context.Background(), examples[2]); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("err = %v, want ErrOverloaded", err)
	}
	if d := time.Since(start); d > time.Second {
		t.Fatalf("overloaded rejection took %v; must be immediate", d)
	}
	if s := e.Stats(); s.Rejected != 1 {
		t.Fatalf("rejected = %d, want 1", s.Rejected)
	}
	// Release the two queued callers the way shutdown does.
	close(e.done)
	close(e.stopped)
	for i := 0; i < 2; i++ {
		if err := <-queued; !errors.Is(err, ErrClosed) {
			t.Fatalf("queued caller %d: err = %v, want ErrClosed", i, err)
		}
	}
}

// TestEngineBurstAccounting fires 200 concurrent requests at a
// QueueLen-2, single-slot live engine under -race: whatever mix of
// completions and rejections the scheduler produces (on a single-core
// host the channel handoffs serialize the pipeline and nothing may
// overflow; on multicore the queue overflows constantly), nothing may
// block, no request may fail with anything but ErrOverloaded, and the
// counters must account for every submission exactly once.
func TestEngineBurstAccounting(t *testing.T) {
	m := buildModel(t, "memnet", 1)
	e, err := New(m, Options{Sessions: 1, MaxBatch: 1, MaxDelay: 100 * time.Microsecond, QueueLen: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	examples := sampleExamples(t, m, 4)

	const n = 200
	var ok, overloaded, other atomic.Uint64
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, err := e.Infer(context.Background(), examples[i%len(examples)])
			switch {
			case err == nil:
				ok.Add(1)
			case errors.Is(err, ErrOverloaded):
				overloaded.Add(1)
			default:
				other.Add(1)
				t.Errorf("unexpected error: %v", err)
			}
		}(i)
	}
	wg.Wait()
	if other.Load() != 0 {
		t.Fatalf("%d requests failed with neither success nor ErrOverloaded", other.Load())
	}
	if ok.Load()+overloaded.Load() != n {
		t.Fatalf("accounting: ok %d + overloaded %d != %d", ok.Load(), overloaded.Load(), n)
	}
	s := e.Stats()
	if s.Requests != ok.Load() {
		t.Fatalf("stats requests %d != observed successes %d", s.Requests, ok.Load())
	}
	// No deadlines in play, so engine-side refusals can only be queue
	// rejections — never sheds or expiries.
	if s.Shed != 0 || s.Expired != 0 {
		t.Fatalf("deadline-free burst must not shed/expire: shed %d expired %d", s.Shed, s.Expired)
	}
	if s.Rejected != overloaded.Load() {
		t.Fatalf("stats rejected %d != observed rejections %d", s.Rejected, overloaded.Load())
	}
	if s.QueueDepth != 0 || s.Interactive.QueueDepth != 0 || s.BatchLane.QueueDepth != 0 {
		t.Fatalf("queue depth must return to 0 after the burst drains: %+v", s)
	}
}

// TestEngineExpiresQueuedDeadRequests: a request whose deadline dies
// while queued must come back ErrExpired from the dispatcher — and
// must never occupy a batch slot or skew the fill stats. DefaultDeadline
// of 1ns passes admission (the deadline is measured from the same
// instant) but is always dead by dispatch.
func TestEngineExpiresQueuedDeadRequests(t *testing.T) {
	m := buildModel(t, "memnet", 1)
	e, err := New(m, Options{Sessions: 1, MaxBatch: 1, DefaultDeadline: time.Nanosecond})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	ex := sampleExamples(t, m, 1)[0]
	const n = 20
	for i := 0; i < n; i++ {
		if _, err := e.Infer(context.Background(), ex); !errors.Is(err, ErrExpired) {
			t.Fatalf("request %d: err = %v, want ErrExpired", i, err)
		}
	}
	s := e.Stats()
	if s.Expired != n {
		t.Fatalf("expired = %d, want %d", s.Expired, n)
	}
	if s.Batches != 0 || s.MaxBatchFill != 0 || s.Requests != 0 {
		t.Fatalf("dead requests occupied batch slots: batches %d fill %d requests %d",
			s.Batches, s.MaxBatchFill, s.Requests)
	}
}

// TestEngineCancelledRequestsSkipBatches: a request whose context is
// cancelled returns context.Canceled (whether the cancellation is seen
// at admission or by the dispatcher) and never reaches execution.
func TestEngineCancelledRequestsSkipBatches(t *testing.T) {
	m := buildModel(t, "memnet", 1)
	e, err := New(m, Options{Sessions: 1, MaxBatch: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	ex := sampleExamples(t, m, 1)[0]
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for i := 0; i < 10; i++ {
		if _, err := e.Infer(ctx, ex); !errors.Is(err, context.Canceled) {
			t.Fatalf("request %d: err = %v, want context.Canceled", i, err)
		}
	}
	s := e.Stats()
	if s.Batches != 0 || s.MaxBatchFill != 0 {
		t.Fatalf("cancelled requests occupied batch slots: batches %d fill %d", s.Batches, s.MaxBatchFill)
	}
}

// TestEngineShedsOnBudgetEstimate pins the load-shedding gate: when
// the EWMA-based wait estimate exceeds a request's budget, admission
// fails fast with ErrOverloaded and counts a shed. The EWMA is planted
// directly (white box) so the decision is deterministic; the probe
// slot is consumed first — the probe exemption is tested on its own.
func TestEngineShedsOnBudgetEstimate(t *testing.T) {
	m := buildModel(t, "memnet", 1)
	e, err := New(m, Options{Sessions: 1, MaxBatch: 1, DefaultDeadline: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	e.stats.ewmaBatchUS.Store(uint64(time.Hour / time.Microsecond))
	e.lastProbeNano.Store(time.Now().UnixNano()) // probe slot used up
	ex := sampleExamples(t, m, 1)[0]
	if _, err := e.Infer(context.Background(), ex); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("err = %v, want ErrOverloaded", err)
	}
	if s := e.Stats(); s.Shed != 1 || s.Rejected != 0 {
		t.Fatalf("shed = %d rejected = %d, want 1/0", s.Shed, s.Rejected)
	}
	// With the estimate back to cold the same request admits: a cold
	// engine never sheds on budget.
	e.stats.ewmaBatchUS.Store(0)
	if _, err := e.Infer(context.Background(), ex); err != nil {
		t.Fatalf("cold estimate must admit: %v", err)
	}
}

// TestEngineProbeKeepsEstimateLive pins the self-healing path: with a
// poisoned-high EWMA every deadlined request would shed forever (the
// estimate only refreshes when batches run). The rationed probe
// admission must let one request through to execution, pulling the
// EWMA back toward reality.
func TestEngineProbeKeepsEstimateLive(t *testing.T) {
	m := buildModel(t, "memnet", 1)
	e, err := New(m, Options{Sessions: 1, MaxBatch: 1, DefaultDeadline: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	ex := sampleExamples(t, m, 1)[0]
	if _, err := e.Infer(context.Background(), ex); err != nil { // warm plan cache
		t.Fatal(err)
	}
	poisoned := uint64(time.Hour / time.Microsecond)
	e.stats.ewmaBatchUS.Store(poisoned)
	e.lastProbeNano.Store(0) // a probe is due immediately
	if _, err := e.Infer(context.Background(), ex); err != nil {
		t.Fatalf("probe request must execute, got %v", err)
	}
	if got := e.stats.ewmaBatchUS.Load(); got >= poisoned {
		t.Fatalf("probe did not refresh the EWMA: still %d µs", got)
	}
}

// TestEnginePriorityInteractiveOvertakesBatch is the starvation check:
// with the batch lane saturated, an interactive request must jump the
// queue (strict interactive-first dispatch) instead of waiting behind
// the backlog.
func TestEnginePriorityInteractiveOvertakesBatch(t *testing.T) {
	m := buildModel(t, "memnet", 1)
	// Stall the dispatch loop on demand. On a warm machine one memnet
	// execution is far faster than goroutine submission, so without a
	// stall the single-session engine drains every batch request as it
	// arrives and a backlog never builds — the stall parks the
	// dispatcher at the top of its loop while the test queues a
	// deterministic backlog.
	var stallArmed atomic.Bool
	stall := make(chan struct{})
	var stallOnce sync.Once
	release := func() { stallOnce.Do(func() { close(stall) }) }
	testHookDispatch = func() {
		if stallArmed.Load() {
			<-stall
		}
	}
	e, err := New(m, Options{Sessions: 1, MaxBatch: 1, MaxDelay: 100 * time.Microsecond, QueueLen: 64})
	if err != nil {
		testHookDispatch = nil
		t.Fatal(err)
	}
	defer func() { testHookDispatch = nil }() // after Close has joined the dispatch loop
	defer e.Close()
	defer release() // before Close: a stalled dispatcher cannot shut down
	examples := sampleExamples(t, m, 4)
	if _, err := e.Infer(context.Background(), examples[0]); err != nil { // warm plan cache
		t.Fatal(err)
	}
	stallArmed.Store(true)

	const nBatch = 64
	var batchDone atomic.Uint64
	var wg sync.WaitGroup
	for i := 0; i < nBatch; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := e.InferPriority(context.Background(), examples[i%len(examples)], PriorityBatch); err != nil {
				t.Error(err)
			}
			batchDone.Add(1)
		}(i)
	}
	waitFor := func(what string, cond func(Stats) bool) {
		deadline := time.Now().Add(5 * time.Second)
		for !cond(e.Stats()) {
			if time.Now().After(deadline) {
				t.Fatalf("%s; stats: %v", what, e.Stats())
			}
			time.Sleep(50 * time.Microsecond)
		}
	}
	// The dispatcher was parked waiting for work before the stall was
	// armed, so it may pull (and run) the first request on its way to
	// the stall; every later one must queue. Once the backlog is up,
	// put an interactive request in its lane, then let dispatch go:
	// strict interactive-first dequeue must serve it ahead of the
	// whole batch backlog.
	waitFor("batch backlog never built", func(s Stats) bool {
		return s.BatchLane.QueueDepth >= nBatch-1
	})
	interDone := make(chan error, 1)
	go func() {
		_, err := e.Infer(context.Background(), examples[0])
		interDone <- err
	}()
	waitFor("interactive request never queued", func(s Stats) bool {
		return s.Interactive.QueueDepth == 1
	})
	release()
	if err := <-interDone; err != nil {
		t.Fatalf("interactive request failed under batch saturation: %v", err)
	}
	overtaken := nBatch - batchDone.Load()
	wg.Wait()
	if overtaken == 0 {
		t.Fatal("interactive request finished after the entire batch backlog; priority lanes are broken")
	}
	s := e.Stats()
	if s.BatchLane.Requests != nBatch || s.Interactive.Requests != 2 {
		t.Fatalf("lane counters: interactive %d batch %d, want 2/%d",
			s.Interactive.Requests, s.BatchLane.Requests, nBatch)
	}
}

// TestStatsJSONCarriesAdmissionFields: the /stats wire format exposes
// the new admission counters, queue gauges, and p999 — per engine and
// per lane.
func TestStatsJSONCarriesAdmissionFields(t *testing.T) {
	out, err := json.Marshal(Stats{})
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(out, &m); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{
		"rejected", "shed", "expired", "p999_latency_ns",
		"queue_depth", "queue_wait_ewma_ns", "batch_latency_ewma_ns",
		"interactive", "batch",
	} {
		if _, ok := m[key]; !ok {
			t.Fatalf("stats JSON misses %q: %s", key, out)
		}
	}
	lane, ok := m["interactive"].(map[string]any)
	if !ok {
		t.Fatalf("interactive lane is not an object: %s", out)
	}
	for _, key := range []string{"requests", "queue_depth", "p50_latency_ns", "p99_latency_ns", "p999_latency_ns"} {
		if _, ok := lane[key]; !ok {
			t.Fatalf("lane JSON misses %q: %s", key, out)
		}
	}
}

// postInfer sends one inference request and returns the HTTP status
// and decoded error body (code empty on 200).
func postInfer(t *testing.T, url, model, body string) (int, jsonError) {
	t.Helper()
	resp, err := http.Post(url+"/v1/models/"+model+":infer", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var je jsonError
	if resp.StatusCode != http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&je); err != nil {
			t.Fatalf("error response is not the JSON contract: %v", err)
		}
		if je.Code == "" {
			t.Fatalf("error response carries no code (status %d)", resp.StatusCode)
		}
	}
	return resp.StatusCode, je
}

// TestHTTPErrorContract drives each machine-readable error code end to
// end: invalid_input, overloaded (+Retry-After), deadline_exceeded,
// and closed.
func TestHTTPErrorContract(t *testing.T) {
	m := buildModel(t, "memnet", 1)
	e, err := New(m, Options{Sessions: 1, MaxBatch: 1, DefaultDeadline: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	srv := NewServer()
	srv.Register(e)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	ex := sampleExamples(t, m, 1)[0]
	good, _ := json.Marshal(inferRequest{Inputs: map[string]jsonTensor{
		"stories": toJSONTensor(ex["stories"]),
		"query":   toJSONTensor(ex["query"]),
	}})

	if status, je := postInfer(t, ts.URL, "memnet", `{"inputs":{},"priority":"bogus"}`); status != http.StatusBadRequest || je.Code != CodeInvalidInput {
		t.Fatalf("bad priority: status %d code %q, want 400 %q", status, je.Code, CodeInvalidInput)
	}
	if status, je := postInfer(t, ts.URL, "memnet", `{"inputs":{}}`); status != http.StatusBadRequest || je.Code != CodeInvalidInput {
		t.Fatalf("missing inputs: status %d code %q, want 400 %q", status, je.Code, CodeInvalidInput)
	}

	// Overloaded: plant a wait estimate far past the deadline budget
	// (and use up the probe slot so the shed is deterministic).
	e.stats.ewmaBatchUS.Store(uint64(time.Hour / time.Microsecond))
	e.lastProbeNano.Store(time.Now().UnixNano())
	resp, err := http.Post(ts.URL+"/v1/models/memnet:infer", "application/json", strings.NewReader(string(good)))
	if err != nil {
		t.Fatal(err)
	}
	var je jsonError
	if err := json.NewDecoder(resp.Body).Decode(&je); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || je.Code != CodeOverloaded {
		t.Fatalf("overload: status %d code %q, want 503 %q", resp.StatusCode, je.Code, CodeOverloaded)
	}
	if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err != nil || ra < 1 {
		t.Fatalf("503 must carry a Retry-After of at least 1s, got %q", resp.Header.Get("Retry-After"))
	}
	e.stats.ewmaBatchUS.Store(0) // estimate back to cold

	// Deadline exceeded: a 1ns engine deadline is always dead by
	// dispatch (same mechanism as TestEngineExpiresQueuedDeadRequests).
	m2 := buildModel(t, "alexnet", 1)
	e2, err := New(m2, Options{Sessions: 1, MaxBatch: 1, DefaultDeadline: time.Nanosecond})
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	srv2 := NewServer()
	srv2.Register(e2)
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	ex2 := sampleExamples(t, m2, 1)[0]
	good2, _ := json.Marshal(inferRequest{Inputs: map[string]jsonTensor{
		"images": toJSONTensor(ex2["images"]),
	}})
	if status, je := postInfer(t, ts2.URL, "alexnet", string(good2)); status != http.StatusGatewayTimeout || je.Code != CodeDeadlineExceeded {
		t.Fatalf("expiry: status %d code %q, want 504 %q", status, je.Code, CodeDeadlineExceeded)
	}

	// Closed: a shut-down engine refuses with its own code.
	e2.Close()
	if status, je := postInfer(t, ts2.URL, "alexnet", string(good2)); status != http.StatusServiceUnavailable || je.Code != CodeClosed {
		t.Fatalf("closed: status %d code %q, want 503 %q", status, je.Code, CodeClosed)
	}
}
