package serve

import (
	"repro/internal/telemetry"
)

// RegisterMetrics exposes the engine's counter block, its latency and
// queue-wait histograms, its sessions' arena utilization, and the
// shared worker pool's gauges on reg as Prometheus families. Every
// series is a scrape-time reader over the atomics the engine already
// maintains, so registration adds nothing to the request hot path.
// Series carry a model label; pool gauges are unlabeled (the pool is
// shared), and re-registration by co-tenant engines is idempotent.
//
// Engines with bounded lifetimes should call UnregisterMetrics from
// their teardown so the registry never scrapes a closed engine.
func (e *Engine) RegisterMetrics(reg *telemetry.Registry) {
	model := telemetry.Labels{"model": e.model.Name()}
	lane := func(p Priority) telemetry.Labels {
		return telemetry.Labels{"model": e.model.Name(), "lane": p.String()}
	}

	reg.CounterFunc("fathom_serve_requests_total", "Requests answered successfully.", model,
		func() uint64 { return e.stats.requests.Load() })
	reg.CounterFunc("fathom_serve_errors_total", "Requests failed by execution faults.", model,
		func() uint64 { return e.stats.errors.Load() })
	reg.CounterFunc("fathom_serve_cancelled_total", "Requests abandoned by their callers.", model,
		func() uint64 { return e.stats.cancels.Load() })
	reg.CounterFunc("fathom_serve_rejected_total", "Requests refused at the door (admission queue full).", model,
		func() uint64 { return e.stats.rejected.Load() })
	reg.CounterFunc("fathom_serve_shed_total", "Requests shed (deadline budget below the wait estimate).", model,
		func() uint64 { return e.stats.shed.Load() })
	reg.CounterFunc("fathom_serve_expired_total", "Requests whose deadline passed before execution.", model,
		func() uint64 { return e.stats.expired.Load() })
	reg.CounterFunc("fathom_serve_batches_total", "Micro-batches executed.", model,
		func() uint64 { return e.stats.batches.Load() })
	reg.GaugeFunc("fathom_serve_queue_depth", "Queued requests across both admission lanes.", model,
		func() float64 {
			return float64(e.stats.qdepth[PriorityInteractive].Load() + e.stats.qdepth[PriorityBatch].Load())
		})
	reg.GaugeFunc("fathom_serve_batch_latency_ewma_seconds", "Smoothed batch execution latency (the shedding estimate).", model,
		func() float64 { return e.stats.batchEWMA().Seconds() })
	for p := Priority(0); p < numLanes; p++ {
		reg.Histogram("fathom_serve_latency_seconds", "End-to-end request latency by lane.", lane(p),
			&e.stats.latHist[p])
	}
	reg.Histogram("fathom_serve_queue_wait_seconds", "Queue wait of dispatched requests.", model,
		&e.stats.waitHist)

	// Arena utilization, summed over the worker sessions.
	reg.GaugeFunc("fathom_arena_live_buffers", "Plan-arena buffers currently checked out.", model,
		func() float64 { return float64(arenaSum(e).LiveBuffers) })
	reg.GaugeFunc("fathom_arena_bytes", "Plan-arena heap footprint in bytes.", model,
		func() float64 { return float64(arenaSum(e).TotalBytes) })
	reg.CounterFunc("fathom_arena_reuses_total", "Arena buffer requests served by recycling.", model,
		func() uint64 { return uint64(arenaSum(e).Reuses) })
	reg.CounterFunc("fathom_arena_allocs_total", "Arena buffers allocated from the heap.", model,
		func() uint64 { return uint64(arenaSum(e).TotalBuffers) })

	// Shared worker-pool gauges. Unlabeled: the pool is process-wide,
	// and the registry's replace-on-duplicate semantics make co-tenant
	// engines' registrations collapse into one series.
	reg.GaugeFunc("fathom_pool_size", "Shared worker pool size.", nil,
		func() float64 { return float64(e.pool.Size()) })
	reg.GaugeFunc("fathom_pool_busy", "Shared worker pool slots executing now.", nil,
		func() float64 { return float64(e.pool.Busy()) })
	reg.GaugeFunc("fathom_pool_spawned", "Shared worker pool goroutines in existence.", nil,
		func() float64 { return float64(e.pool.Spawned()) })
	reg.GaugeFunc("fathom_lease_granted", "Helpers the adaptive lease negotiation grants this engine.", model,
		func() float64 {
			granted := 0
			for _, ls := range e.pool.LeaseStats() {
				if ls.Name == e.leaseName {
					granted += ls.Granted
				}
			}
			return float64(granted)
		})
}

// arenaSum aggregates the worker sessions' arena stats.
func arenaSum(e *Engine) (out struct {
	LiveBuffers  int
	TotalBuffers int
	TotalBytes   int64
	Reuses       int
}) {
	for _, sess := range e.sessions {
		as := sess.Arena().Stats()
		out.LiveBuffers += as.LiveBuffers
		out.TotalBuffers += as.TotalBuffers
		out.TotalBytes += as.TotalBytes
		out.Reuses += as.Reuses
	}
	return out
}

// UnregisterMetrics removes every series RegisterMetrics added for
// this engine (the shared pool gauges stay: another tenant may still
// be exporting them).
func (e *Engine) UnregisterMetrics(reg *telemetry.Registry) {
	model := telemetry.Labels{"model": e.model.Name()}
	for _, name := range []string{
		"fathom_serve_requests_total", "fathom_serve_errors_total",
		"fathom_serve_cancelled_total", "fathom_serve_rejected_total",
		"fathom_serve_shed_total", "fathom_serve_expired_total",
		"fathom_serve_batches_total", "fathom_serve_queue_depth",
		"fathom_serve_batch_latency_ewma_seconds",
		"fathom_serve_queue_wait_seconds",
		"fathom_arena_live_buffers", "fathom_arena_bytes",
		"fathom_arena_reuses_total", "fathom_arena_allocs_total",
		"fathom_lease_granted",
	} {
		reg.Unregister(name, model)
	}
	for p := Priority(0); p < numLanes; p++ {
		reg.Unregister("fathom_serve_latency_seconds",
			telemetry.Labels{"model": e.model.Name(), "lane": p.String()})
	}
}
