package serve

import (
	"fmt"
	"sync/atomic"
	"time"
)

// latBuckets is the latency histogram resolution: bucket k holds
// durations in [2^k, 2^(k+1)) microseconds, so 40 buckets cover
// sub-microsecond to ~12 days.
const latBuckets = 40

// stats is the engine's lock-free counter block. Everything is
// atomics so workers and Infer callers update it concurrently without
// serializing the hot path.
type stats struct {
	startNano atomic.Int64
	requests  atomic.Uint64 // completed successfully
	errors    atomic.Uint64 // execution faults
	cancels   atomic.Uint64 // caller gave up (context cancelled, shutdown)
	batches   atomic.Uint64
	slots     atomic.Uint64 // sum of batch fills
	maxFill   atomic.Uint64
	latSumUS  atomic.Uint64
	latHist   [latBuckets]atomic.Uint64
}

func (s *stats) reset() { s.startNano.Store(time.Now().UnixNano()) }

// zero clears every counter and restarts the clock.
func (s *stats) zero() {
	s.requests.Store(0)
	s.errors.Store(0)
	s.cancels.Store(0)
	s.batches.Store(0)
	s.slots.Store(0)
	s.maxFill.Store(0)
	s.latSumUS.Store(0)
	for i := range s.latHist {
		s.latHist[i].Store(0)
	}
	s.reset()
}

// record logs one successfully answered request's end-to-end latency.
func (s *stats) record(d time.Duration) {
	s.requests.Add(1)
	us := uint64(d.Microseconds())
	s.latSumUS.Add(us)
	k := 0
	for v := us; v > 1 && k < latBuckets-1; v >>= 1 {
		k++
	}
	s.latHist[k].Add(1)
}

// recordBatch logs one executed micro-batch and its fill.
func (s *stats) recordBatch(fill int) {
	s.batches.Add(1)
	s.slots.Add(uint64(fill))
	for {
		cur := s.maxFill.Load()
		if uint64(fill) <= cur || s.maxFill.CompareAndSwap(cur, uint64(fill)) {
			return
		}
	}
}

// quantile returns the upper bound of the histogram bucket containing
// the q-quantile request.
func (s *stats) quantile(q float64) time.Duration {
	var total uint64
	var hist [latBuckets]uint64
	for i := range hist {
		hist[i] = s.latHist[i].Load()
		total += hist[i]
	}
	if total == 0 {
		return 0
	}
	want := uint64(q * float64(total))
	if want >= total {
		want = total - 1
	}
	var seen uint64
	for i, c := range hist {
		seen += c
		if seen > want {
			return time.Duration(uint64(1)<<uint(i+1)) * time.Microsecond
		}
	}
	return time.Duration(uint64(1)<<latBuckets) * time.Microsecond
}

// Stats is a point-in-time snapshot of an Engine's counters.
type Stats struct {
	Uptime        time.Duration `json:"uptime_ns"`
	Requests      uint64        `json:"requests"`
	Errors        uint64        `json:"errors"`
	Cancelled     uint64        `json:"cancelled"`
	Batches       uint64        `json:"batches"`
	MeanBatchFill float64       `json:"mean_batch_fill"`
	MaxBatchFill  int           `json:"max_batch_fill"`
	ThroughputRPS float64       `json:"throughput_rps"`
	MeanLatency   time.Duration `json:"mean_latency_ns"`
	P50Latency    time.Duration `json:"p50_latency_ns"`
	P99Latency    time.Duration `json:"p99_latency_ns"`

	// Shared worker-pool gauges (filled by Engine.Stats, not part of
	// the atomic counter block): the pool's configured size, how many
	// workers are executing right now, how many goroutines exist, and
	// this engine's total lease claim — sessions × (inter-op ×
	// intra-op − 1). Busy ≈ Size means helper acquisition is failing
	// and execution is degrading to serial; load shedders key off it.
	PoolSize    int `json:"pool_size"`
	PoolBusy    int `json:"pool_busy"`
	PoolSpawned int `json:"pool_spawned"`
	LeaseClaim  int `json:"lease_claim"`
}

func (s *stats) snapshot() Stats {
	up := time.Since(time.Unix(0, s.startNano.Load()))
	out := Stats{
		Uptime:       up,
		Requests:     s.requests.Load(),
		Errors:       s.errors.Load(),
		Cancelled:    s.cancels.Load(),
		Batches:      s.batches.Load(),
		MaxBatchFill: int(s.maxFill.Load()),
		P50Latency:   s.quantile(0.50),
		P99Latency:   s.quantile(0.99),
	}
	if out.Batches > 0 {
		out.MeanBatchFill = float64(s.slots.Load()) / float64(out.Batches)
	}
	if out.Requests > 0 {
		out.MeanLatency = time.Duration(s.latSumUS.Load()/out.Requests) * time.Microsecond
		if sec := up.Seconds(); sec > 0 {
			out.ThroughputRPS = float64(out.Requests) / sec
		}
	}
	return out
}

// String renders the snapshot for the CLI and logs.
func (s Stats) String() string {
	return fmt.Sprintf(
		"requests=%d errors=%d cancelled=%d batches=%d fill(mean=%.2f max=%d) rps=%.1f latency(mean=%v p50=%v p99=%v) pool(busy=%d/%d spawned=%d claim=%d)",
		s.Requests, s.Errors, s.Cancelled, s.Batches, s.MeanBatchFill, s.MaxBatchFill,
		s.ThroughputRPS, s.MeanLatency, s.P50Latency, s.P99Latency,
		s.PoolBusy, s.PoolSize, s.PoolSpawned, s.LeaseClaim)
}
