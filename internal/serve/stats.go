package serve

import (
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/telemetry"
)

// latBuckets is the latency histogram resolution, now provided by the
// telemetry package the histogram was generalized into: bucket k holds
// durations in [2^k, 2^(k+1)) microseconds, so 40 buckets cover
// sub-microsecond to ~12 days.
const latBuckets = telemetry.LogBuckets

// ewmaShift is the EWMA smoothing factor for the batch-latency and
// queue-wait gauges: new = old + (sample − old)/2^ewmaShift. 1/8 reacts
// within a few batches without letting one outlier swing the admission
// estimate.
const ewmaShift = 3

// stats is the engine's lock-free counter block. Everything is
// atomics so workers and Infer callers update it concurrently without
// serializing the hot path.
type stats struct {
	startNano atomic.Int64
	requests  atomic.Uint64 // completed successfully (all lanes)
	errors    atomic.Uint64 // execution faults
	cancels   atomic.Uint64 // caller gave up (context cancelled, shutdown)
	rejected  atomic.Uint64 // admission-queue full: refused at the door
	shed      atomic.Uint64 // deadline budget < estimated queue+exec time
	expired   atomic.Uint64 // deadline passed before execution
	batches   atomic.Uint64
	slots     atomic.Uint64 // sum of batch fills
	maxFill   atomic.Uint64
	latSumUS  atomic.Uint64

	// Per-lane request counters and latency histograms (interactive,
	// batch), so the lanes' p50/p99/p999 are observable separately —
	// the whole point of priority lanes is that these diverge under
	// overload.
	laneReqs [numLanes]atomic.Uint64
	latHist  [numLanes]telemetry.LogHistogram

	// waitHist records every dispatched request's queue wait next to
	// the EWMA gauge, so loadtest stages can separate queueing from
	// execution with real quantiles instead of one smoothed number.
	waitHist telemetry.LogHistogram

	// Gauges. qdepth tracks each lane's admission-queue occupancy;
	// ewmaBatchUS is the smoothed batch execution latency feeding the
	// shedding estimate; ewmaWaitUS is the smoothed queue wait of
	// dispatched requests.
	qdepth      [numLanes]atomic.Int64
	ewmaBatchUS atomic.Uint64
	ewmaWaitUS  atomic.Uint64
}

func (s *stats) reset() { s.startNano.Store(time.Now().UnixNano()) }

// zero clears every counter and restarts the clock. The queue-depth
// gauges and EWMAs are left alone: they describe present state, and
// the admission estimate must not go blind after a stats reset.
func (s *stats) zero() {
	s.requests.Store(0)
	s.errors.Store(0)
	s.cancels.Store(0)
	s.rejected.Store(0)
	s.shed.Store(0)
	s.expired.Store(0)
	s.batches.Store(0)
	s.slots.Store(0)
	s.maxFill.Store(0)
	s.latSumUS.Store(0)
	for lane := range s.latHist {
		s.laneReqs[lane].Store(0)
		s.latHist[lane].Reset()
	}
	s.waitHist.Reset()
	s.reset()
}

// record logs one successfully answered request's end-to-end latency
// on its lane.
func (s *stats) record(lane Priority, d time.Duration) {
	s.requests.Add(1)
	s.laneReqs[lane].Add(1)
	s.latSumUS.Add(uint64(d.Microseconds()))
	s.latHist[lane].Observe(d)
}

// recordBatch logs one executed micro-batch and its fill.
func (s *stats) recordBatch(fill int) {
	s.batches.Add(1)
	s.slots.Add(uint64(fill))
	for {
		cur := s.maxFill.Load()
		if uint64(fill) <= cur || s.maxFill.CompareAndSwap(cur, uint64(fill)) {
			return
		}
	}
}

// ewmaUpdate folds one sample into an EWMA gauge with a CAS loop (the
// workers race on it).
func ewmaUpdate(g *atomic.Uint64, sample uint64) {
	for {
		old := g.Load()
		nw := sample
		if old != 0 {
			nw = uint64(int64(old) + (int64(sample)-int64(old))>>ewmaShift)
			if nw == 0 {
				nw = 1 // a warmed gauge never reads as cold again
			}
		}
		if g.CompareAndSwap(old, nw) {
			return
		}
	}
}

// recordBatchExec feeds one batch's execution wall time into the
// admission estimate.
func (s *stats) recordBatchExec(d time.Duration) {
	us := uint64(d.Microseconds())
	if us == 0 {
		us = 1
	}
	ewmaUpdate(&s.ewmaBatchUS, us)
}

// recordWait feeds one dispatched request's queue wait into the EWMA
// gauge and the wait histogram.
func (s *stats) recordWait(d time.Duration) {
	us := uint64(d.Microseconds())
	if us == 0 {
		us = 1
	}
	ewmaUpdate(&s.ewmaWaitUS, us)
	s.waitHist.Observe(d)
}

// batchEWMA is the smoothed batch execution latency; zero means no
// batch has completed yet (a cold engine never sheds on estimates).
func (s *stats) batchEWMA() time.Duration {
	return time.Duration(s.ewmaBatchUS.Load()) * time.Microsecond
}

// LaneStats is one priority lane's share of the snapshot.
type LaneStats struct {
	Requests   uint64        `json:"requests"`
	QueueDepth int           `json:"queue_depth"`
	P50Latency time.Duration `json:"p50_latency_ns"`
	P99Latency time.Duration `json:"p99_latency_ns"`
	P999       time.Duration `json:"p999_latency_ns"`
}

// Stats is a point-in-time snapshot of an Engine's counters.
type Stats struct {
	Uptime        time.Duration `json:"uptime_ns"`
	Requests      uint64        `json:"requests"`
	Errors        uint64        `json:"errors"`
	Cancelled     uint64        `json:"cancelled"`
	Rejected      uint64        `json:"rejected"` // admission queue full
	Shed          uint64        `json:"shed"`     // budget < estimated wait
	Expired       uint64        `json:"expired"`  // deadline passed unserved
	Batches       uint64        `json:"batches"`
	MeanBatchFill float64       `json:"mean_batch_fill"`
	MaxBatchFill  int           `json:"max_batch_fill"`
	ThroughputRPS float64       `json:"throughput_rps"`
	MeanLatency   time.Duration `json:"mean_latency_ns"`
	P50Latency    time.Duration `json:"p50_latency_ns"`
	P99Latency    time.Duration `json:"p99_latency_ns"`
	P999Latency   time.Duration `json:"p999_latency_ns"`

	// Admission gauges: total queued requests across both lanes, the
	// EWMA queue wait of dispatched requests, and the EWMA batch
	// execution latency the shedding estimate multiplies.
	QueueDepth       int           `json:"queue_depth"`
	QueueWaitEWMA    time.Duration `json:"queue_wait_ewma_ns"`
	BatchLatencyEWMA time.Duration `json:"batch_latency_ewma_ns"`

	// Queue-wait quantiles over every dispatched request since the
	// last reset, separating time-in-queue from execution time.
	// WaitHist is the raw histogram snapshot the quantiles derive
	// from; loadgen diffs two snapshots for per-stage quantiles.
	QueueWaitP50  time.Duration                `json:"queue_wait_p50_ns"`
	QueueWaitP99  time.Duration                `json:"queue_wait_p99_ns"`
	QueueWaitP999 time.Duration                `json:"queue_wait_p999_ns"`
	WaitHist      [telemetry.LogBuckets]uint64 `json:"-"`

	// Arena utilization aggregated over the engine's session arenas
	// (filled by Engine.Stats): checked-out and ever-allocated buffer
	// counts, total heap footprint, and the fraction of buffer
	// requests served by recycling — steady-state serving should sit
	// near 1.0, and a drift down means plans are allocating.
	ArenaLiveBuffers  int     `json:"arena_live_buffers"`
	ArenaTotalBuffers int     `json:"arena_total_buffers"`
	ArenaBytes        int64   `json:"arena_bytes"`
	ArenaReuses       int     `json:"arena_reuses"`
	ArenaReuseRatio   float64 `json:"arena_reuse_ratio"`

	// Per-lane views: interactive is dispatched first; batch queues,
	// sheds, and expires first under overload.
	Interactive LaneStats `json:"interactive"`
	BatchLane   LaneStats `json:"batch"`

	// Shared worker-pool gauges (filled by Engine.Stats, not part of
	// the atomic counter block): the pool's configured size, how many
	// workers are executing right now, how many goroutines exist, and
	// this engine's total lease claim — sessions × (inter-op ×
	// intra-op − 1). Busy ≈ Size means helper acquisition is failing
	// and execution is degrading to serial; the admission estimate and
	// load shedders key off it.
	PoolSize    int `json:"pool_size"`
	PoolBusy    int `json:"pool_busy"`
	PoolSpawned int `json:"pool_spawned"`
	LeaseClaim  int `json:"lease_claim"`

	// Adaptive lease view (also filled by Engine.Stats): LeaseGranted
	// is the helper count the pool's occupancy-driven negotiation
	// currently grants this engine's sessions — under contention it
	// tracks demand, not the static claim above — and Tenants lists
	// every tenant sharing the pool (engine, dist trainer, fused
	// array) with its aggregate ask/grant/occupancy.
	LeaseGranted int           `json:"lease_granted"`
	Tenants      []TenantStats `json:"tenants,omitempty"`
}

// TenantStats aggregates the shared pool's adaptive leases for one
// tenant name: how many leases it holds, their summed ask, what the
// occupancy negotiation currently grants, and how many granted slots
// are executing right now.
type TenantStats struct {
	Name    string `json:"name"`
	Leases  int    `json:"leases"`
	Want    int    `json:"want"`
	Granted int    `json:"granted"`
	Active  int    `json:"active"`
}

func (s *stats) snapshot() Stats {
	up := time.Since(time.Unix(0, s.startNano.Load()))
	// Load each lane's histogram once; the merged view feeds the
	// engine-wide quantiles.
	var lanes [numLanes][latBuckets]uint64
	var merged [latBuckets]uint64
	for lane := range lanes {
		s.latHist[lane].Buckets(&lanes[lane])
		for i := range lanes[lane] {
			merged[i] += lanes[lane][i]
		}
	}
	laneStats := func(lane Priority) LaneStats {
		return LaneStats{
			Requests:   s.laneReqs[lane].Load(),
			QueueDepth: int(s.qdepth[lane].Load()),
			P50Latency: telemetry.QuantileOf(&lanes[lane], 0.50),
			P99Latency: telemetry.QuantileOf(&lanes[lane], 0.99),
			P999:       telemetry.QuantileOf(&lanes[lane], 0.999),
		}
	}
	out := Stats{
		Uptime:           up,
		Requests:         s.requests.Load(),
		Errors:           s.errors.Load(),
		Cancelled:        s.cancels.Load(),
		Rejected:         s.rejected.Load(),
		Shed:             s.shed.Load(),
		Expired:          s.expired.Load(),
		Batches:          s.batches.Load(),
		MaxBatchFill:     int(s.maxFill.Load()),
		P50Latency:       telemetry.QuantileOf(&merged, 0.50),
		P99Latency:       telemetry.QuantileOf(&merged, 0.99),
		P999Latency:      telemetry.QuantileOf(&merged, 0.999),
		QueueWaitEWMA:    time.Duration(s.ewmaWaitUS.Load()) * time.Microsecond,
		BatchLatencyEWMA: s.batchEWMA(),
		Interactive:      laneStats(PriorityInteractive),
		BatchLane:        laneStats(PriorityBatch),
	}
	s.waitHist.Buckets(&out.WaitHist)
	out.QueueWaitP50 = telemetry.QuantileOf(&out.WaitHist, 0.50)
	out.QueueWaitP99 = telemetry.QuantileOf(&out.WaitHist, 0.99)
	out.QueueWaitP999 = telemetry.QuantileOf(&out.WaitHist, 0.999)
	out.QueueDepth = out.Interactive.QueueDepth + out.BatchLane.QueueDepth
	if out.Batches > 0 {
		out.MeanBatchFill = float64(s.slots.Load()) / float64(out.Batches)
	}
	if out.Requests > 0 {
		out.MeanLatency = time.Duration(s.latSumUS.Load()/out.Requests) * time.Microsecond
		if sec := up.Seconds(); sec > 0 {
			out.ThroughputRPS = float64(out.Requests) / sec
		}
	}
	return out
}

// String renders the snapshot for the CLI and logs.
func (s Stats) String() string {
	return fmt.Sprintf(
		"requests=%d errors=%d cancelled=%d admit(rejected=%d shed=%d expired=%d) batches=%d fill(mean=%.2f max=%d) rps=%.1f latency(mean=%v p50=%v p99=%v p999=%v) queue(depth=%d wait=%v p50=%v p99=%v batch-ewma=%v) lanes(interactive p99=%v, batch p99=%v) pool(busy=%d/%d spawned=%d claim=%d granted=%d) arena(live=%d total=%d bytes=%d reuse=%.3f)%s",
		s.Requests, s.Errors, s.Cancelled, s.Rejected, s.Shed, s.Expired,
		s.Batches, s.MeanBatchFill, s.MaxBatchFill,
		s.ThroughputRPS, s.MeanLatency, s.P50Latency, s.P99Latency, s.P999Latency,
		s.QueueDepth, s.QueueWaitEWMA, s.QueueWaitP50, s.QueueWaitP99, s.BatchLatencyEWMA,
		s.Interactive.P99Latency, s.BatchLane.P99Latency,
		s.PoolBusy, s.PoolSize, s.PoolSpawned, s.LeaseClaim, s.LeaseGranted,
		s.ArenaLiveBuffers, s.ArenaTotalBuffers, s.ArenaBytes, s.ArenaReuseRatio,
		s.tenantString())
}

// tenantString renders the per-tenant adaptive grants, e.g.
// " tenants(engine/alexnet granted=3/6 active=1, dist/vgg granted=1/3 active=0)".
func (s Stats) tenantString() string {
	if len(s.Tenants) == 0 {
		return ""
	}
	out := " tenants("
	for i, t := range s.Tenants {
		if i > 0 {
			out += ", "
		}
		out += fmt.Sprintf("%s granted=%d/%d active=%d", t.Name, t.Granted, t.Want, t.Active)
	}
	return out + ")"
}
