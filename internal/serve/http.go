package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/telemetry"
	"repro/internal/tensor"
)

// Server exposes one or more Engines over HTTP/JSON:
//
//	GET  /healthz                     liveness + served model names
//	GET  /stats                       per-model Stats snapshots
//	GET  /v1/models                   model list with I/O signatures
//	GET  /v1/models/<name>            one model's signature
//	POST /v1/models/<name>:infer      single-example inference
//
// An inference request body is {"inputs": {<name>: {"shape": [...],
// "data": [...]}}} with each tensor in the input's example shape; the
// response mirrors it under "outputs". Two optional fields select the
// admission lane and deadline budget: "priority" ("interactive", the
// default, or "batch") and "deadline_ms" (a per-request deadline
// overriding the engine's DefaultDeadline when earlier). Register
// every engine before calling Handler — the map is read-only while
// serving.
//
// # Error contract
//
// Every error response is a JSON object {"error": <message>, "code":
// <machine-readable code>}. The codes and their statuses:
//
//	invalid_input       400  malformed body, bad tensor shape, unknown
//	                         input or priority
//	not_found           404  unknown model
//	method_not_allowed  405  :infer with a method other than POST
//	request_too_large   413  body exceeded the per-example budget
//	overloaded          503  admission queue full or deadline budget
//	                         below the estimated queue+execution time;
//	                         carries a Retry-After header (seconds)
//	closed              503  engine shut down
//	deadline_exceeded   504  the deadline passed before execution
//	internal            500  execution fault
type Server struct {
	engines map[string]*Engine

	// Telemetry, all optional (see EnableTelemetry / EnablePprof):
	// reg backs GET /metrics, trace backs GET /debug/trace and the
	// per-request sampling at handleInfer admission, and pprofOn
	// mounts net/http/pprof under /debug/pprof/.
	reg     *telemetry.Registry
	trace   *telemetry.TraceCollector
	pprofOn bool
}

// Error codes of the JSON error contract above.
const (
	CodeInvalidInput     = "invalid_input"
	CodeNotFound         = "not_found"
	CodeMethodNotAllowed = "method_not_allowed"
	CodeTooLarge         = "request_too_large"
	CodeOverloaded       = "overloaded"
	CodeClosed           = "closed"
	CodeDeadlineExceeded = "deadline_exceeded"
	CodeInternal         = "internal"
)

// NewServer returns an empty server.
func NewServer() *Server { return &Server{engines: map[string]*Engine{}} }

// Register adds an engine under its workload name; it panics on a
// duplicate name (a replaced engine's goroutines and sessions would
// leak for the process lifetime), mirroring core.Register.
func (srv *Server) Register(e *Engine) {
	name := e.Model().Name()
	if _, dup := srv.engines[name]; dup {
		panic("serve: duplicate engine for model " + name)
	}
	srv.engines[name] = e
}

// EnableTelemetry wires the server's observability endpoints: reg
// (when non-nil) is exposed at GET /metrics in Prometheus text format,
// with every registered engine's metric families added to it; tc (when
// non-nil) samples requests at handleInfer admission and backs GET
// /debug/trace, which drains the collector's ring as one Chrome-trace
// JSON document (one-shot: a drained trace is gone). Call after
// registering engines and before Handler.
func (srv *Server) EnableTelemetry(reg *telemetry.Registry, tc *telemetry.TraceCollector) {
	srv.reg = reg
	srv.trace = tc
	if reg != nil {
		for _, e := range srv.engines {
			e.RegisterMetrics(reg)
		}
	}
}

// EnablePprof mounts net/http/pprof under /debug/pprof/ on the next
// Handler call — CPU and heap profiles over the same mux, for chasing
// a live engine's overheads without redeploying.
func (srv *Server) EnablePprof() { srv.pprofOn = true }

// Names returns the served workload names, sorted.
func (srv *Server) Names() []string {
	out := make([]string, 0, len(srv.engines))
	for n := range srv.engines {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// jsonTensor is the wire form of a tensor.
type jsonTensor struct {
	Shape []int     `json:"shape"`
	Data  []float32 `json:"data"`
}

func toJSONTensor(t *tensor.Tensor) jsonTensor {
	return jsonTensor{Shape: t.Shape(), Data: t.Data()}
}

func fromJSONTensor(jt jsonTensor) (*tensor.Tensor, error) {
	size := 1
	for _, d := range jt.Shape {
		if d <= 0 {
			return nil, fmt.Errorf("bad dimension %d in shape %v", d, jt.Shape)
		}
		size *= d
	}
	if len(jt.Data) != size {
		return nil, fmt.Errorf("shape %v wants %d values, got %d", jt.Shape, size, len(jt.Data))
	}
	return tensor.FromSlice(jt.Data, jt.Shape...), nil
}

type inferRequest struct {
	Inputs map[string]jsonTensor `json:"inputs"`
	// Priority selects the admission lane: "interactive" (default) or
	// "batch" (dispatched after interactive traffic, shed first).
	Priority string `json:"priority,omitempty"`
	// DeadlineMS is this request's deadline budget in milliseconds;
	// the engine uses the earlier of it and its DefaultDeadline.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
}

type inferResponse struct {
	Model   string                `json:"model"`
	Outputs map[string]jsonTensor `json:"outputs"`
}

// ioJSON describes one signature entry for discovery endpoints.
// Served is false for whole-batch scalar outputs (losses), which the
// signature declares but :infer responses omit — they have no
// per-example rows to return.
type ioJSON struct {
	Name         string `json:"name"`
	ExampleShape []int  `json:"example_shape"`
	BatchDim     int    `json:"batch_dim"`
	Served       bool   `json:"served"`
}

type modelJSON struct {
	Name     string   `json:"name"`
	MaxBatch int      `json:"max_batch"`
	Inputs   []ioJSON `json:"inputs"`
	Outputs  []ioJSON `json:"outputs"`
}

func (srv *Server) modelJSON(name string) modelJSON {
	e := srv.engines[name]
	mj := modelJSON{Name: name, MaxBatch: e.MaxBatch()}
	sig := e.Signature()
	for _, in := range sig.Inputs {
		mj.Inputs = append(mj.Inputs, ioJSON{Name: in.Name, ExampleShape: in.ExampleShape(), BatchDim: in.BatchDim, Served: true})
	}
	for _, out := range sig.Outputs {
		mj.Outputs = append(mj.Outputs, ioJSON{
			Name: out.Name, ExampleShape: out.ExampleShape(), BatchDim: out.BatchDim,
			Served: out.BatchDim != core.BatchNone,
		})
	}
	return mj
}

// Handler returns the HTTP mux serving the endpoints above.
func (srv *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"status": "ok", "models": srv.Names()})
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		out := make(map[string]Stats, len(srv.engines))
		for n, e := range srv.engines {
			out[n] = e.Stats()
		}
		writeJSON(w, http.StatusOK, out)
	})
	mux.HandleFunc("/v1/models", func(w http.ResponseWriter, r *http.Request) {
		out := make([]modelJSON, 0, len(srv.engines))
		for _, n := range srv.Names() {
			out = append(out, srv.modelJSON(n))
		}
		writeJSON(w, http.StatusOK, map[string]any{"models": out})
	})
	mux.HandleFunc("/v1/models/", srv.handleModel)
	if srv.reg != nil {
		mux.Handle("/metrics", srv.reg)
	}
	if srv.trace != nil {
		mux.HandleFunc("/debug/trace", func(w http.ResponseWriter, r *http.Request) {
			traces := srv.trace.Drain()
			w.Header().Set("Content-Type", "application/json")
			_ = telemetry.WriteChromeTraces(w, traces)
		})
	}
	if srv.pprofOn {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

func (srv *Server) handleModel(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/v1/models/")
	if name, ok := strings.CutSuffix(rest, ":infer"); ok {
		srv.handleInfer(w, r, name)
		return
	}
	if _, ok := srv.engines[rest]; !ok {
		writeError(w, http.StatusNotFound, CodeNotFound, fmt.Errorf("unknown model %q (have %v)", rest, srv.Names()))
		return
	}
	writeJSON(w, http.StatusOK, srv.modelJSON(rest))
}

func (srv *Server) handleInfer(w http.ResponseWriter, r *http.Request, name string) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, CodeMethodNotAllowed, fmt.Errorf("infer requires POST"))
		return
	}
	e, ok := srv.engines[name]
	if !ok {
		writeError(w, http.StatusNotFound, CodeNotFound, fmt.Errorf("unknown model %q (have %v)", name, srv.Names()))
		return
	}
	// Bound the body before decoding: a well-formed request is one
	// example per input, so budget ~32 bytes per JSON float plus slack
	// — an oversized body must not be buffered into memory.
	var elems int64
	for _, in := range e.Signature().Inputs {
		n := int64(1)
		for _, d := range in.ExampleShape() {
			n *= int64(d)
		}
		elems += n
	}
	r.Body = http.MaxBytesReader(w, r.Body, 1<<20+elems*32)
	var req inferRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge, CodeTooLarge, err)
			return
		}
		writeError(w, http.StatusBadRequest, CodeInvalidInput, fmt.Errorf("bad request body: %w", err))
		return
	}
	pri, err := ParsePriority(req.Priority)
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeInvalidInput, err)
		return
	}
	inputs := make(map[string]*tensor.Tensor, len(req.Inputs))
	for n, jt := range req.Inputs {
		t, err := fromJSONTensor(jt)
		if err != nil {
			writeError(w, http.StatusBadRequest, CodeInvalidInput, fmt.Errorf("input %q: %w", n, err))
			return
		}
		inputs[n] = t
	}
	ctx := r.Context()
	if req.DeadlineMS > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(req.DeadlineMS)*time.Millisecond)
		defer cancel()
	}
	// Trace sampling is decided here, at HTTP admission: the minted
	// trace (or the nil "not sampled" decision) rides the context into
	// the engine, which builds the span tree under it. The engine sees
	// the decision and never re-samples.
	if srv.trace != nil {
		var tr *telemetry.Trace
		if srv.trace.Sample() {
			tr = srv.trace.New(name)
		}
		ctx = telemetry.ContextWithTrace(ctx, tr)
	}
	outs, err := e.InferPriority(ctx, inputs, pri)
	var ie *InputError
	switch {
	case err == nil:
	case errors.As(err, &ie):
		writeError(w, http.StatusBadRequest, CodeInvalidInput, err)
		return
	case errors.Is(err, ErrOverloaded):
		// Hint how long a batch's worth of backlog takes to drain; a
		// client that honors it arrives when the queue has moved.
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(e)))
		writeError(w, http.StatusServiceUnavailable, CodeOverloaded, err)
		return
	case errors.Is(err, ErrExpired) || errors.Is(err, context.DeadlineExceeded):
		writeError(w, http.StatusGatewayTimeout, CodeDeadlineExceeded, err)
		return
	case errors.Is(err, ErrClosed):
		writeError(w, http.StatusServiceUnavailable, CodeClosed, err)
		return
	case r.Context().Err() != nil:
		// Client went away; nothing useful to write.
		return
	default:
		// Post-enqueue failures are execution faults, not request
		// mistakes.
		writeError(w, http.StatusInternalServerError, CodeInternal, err)
		return
	}
	resp := inferResponse{Model: name, Outputs: make(map[string]jsonTensor, len(outs))}
	for n, t := range outs {
		resp.Outputs[n] = toJSONTensor(t)
	}
	writeJSON(w, http.StatusOK, resp)
}

// retryAfterSeconds turns the engine's queue estimate into a whole-
// second Retry-After hint, at least 1 (the header has second
// granularity and 0 would invite an immediate hammer).
func retryAfterSeconds(e *Engine) int {
	est := e.estimatedWait(PriorityBatch) // full-queue view
	secs := int((est + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return secs
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// jsonError is the wire form of every error response; Code is the
// machine-readable half of the contract documented on Server.
type jsonError struct {
	Error string `json:"error"`
	Code  string `json:"code"`
}

func writeError(w http.ResponseWriter, status int, code string, err error) {
	writeJSON(w, status, jsonError{Error: err.Error(), Code: code})
}
