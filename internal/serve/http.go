package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/tensor"
)

// Server exposes one or more Engines over HTTP/JSON:
//
//	GET  /healthz                     liveness + served model names
//	GET  /stats                       per-model Stats snapshots
//	GET  /v1/models                   model list with I/O signatures
//	GET  /v1/models/<name>            one model's signature
//	POST /v1/models/<name>:infer      single-example inference
//
// An inference request body is {"inputs": {<name>: {"shape": [...],
// "data": [...]}}} with each tensor in the input's example shape; the
// response mirrors it under "outputs". Register every engine before
// calling Handler — the map is read-only while serving.
type Server struct {
	engines map[string]*Engine
}

// NewServer returns an empty server.
func NewServer() *Server { return &Server{engines: map[string]*Engine{}} }

// Register adds an engine under its workload name; it panics on a
// duplicate name (a replaced engine's goroutines and sessions would
// leak for the process lifetime), mirroring core.Register.
func (srv *Server) Register(e *Engine) {
	name := e.Model().Name()
	if _, dup := srv.engines[name]; dup {
		panic("serve: duplicate engine for model " + name)
	}
	srv.engines[name] = e
}

// Names returns the served workload names, sorted.
func (srv *Server) Names() []string {
	out := make([]string, 0, len(srv.engines))
	for n := range srv.engines {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// jsonTensor is the wire form of a tensor.
type jsonTensor struct {
	Shape []int     `json:"shape"`
	Data  []float32 `json:"data"`
}

func toJSONTensor(t *tensor.Tensor) jsonTensor {
	return jsonTensor{Shape: t.Shape(), Data: t.Data()}
}

func fromJSONTensor(jt jsonTensor) (*tensor.Tensor, error) {
	size := 1
	for _, d := range jt.Shape {
		if d <= 0 {
			return nil, fmt.Errorf("bad dimension %d in shape %v", d, jt.Shape)
		}
		size *= d
	}
	if len(jt.Data) != size {
		return nil, fmt.Errorf("shape %v wants %d values, got %d", jt.Shape, size, len(jt.Data))
	}
	return tensor.FromSlice(jt.Data, jt.Shape...), nil
}

type inferRequest struct {
	Inputs map[string]jsonTensor `json:"inputs"`
}

type inferResponse struct {
	Model   string                `json:"model"`
	Outputs map[string]jsonTensor `json:"outputs"`
}

// ioJSON describes one signature entry for discovery endpoints.
// Served is false for whole-batch scalar outputs (losses), which the
// signature declares but :infer responses omit — they have no
// per-example rows to return.
type ioJSON struct {
	Name         string `json:"name"`
	ExampleShape []int  `json:"example_shape"`
	BatchDim     int    `json:"batch_dim"`
	Served       bool   `json:"served"`
}

type modelJSON struct {
	Name     string   `json:"name"`
	MaxBatch int      `json:"max_batch"`
	Inputs   []ioJSON `json:"inputs"`
	Outputs  []ioJSON `json:"outputs"`
}

func (srv *Server) modelJSON(name string) modelJSON {
	e := srv.engines[name]
	mj := modelJSON{Name: name, MaxBatch: e.MaxBatch()}
	sig := e.Signature()
	for _, in := range sig.Inputs {
		mj.Inputs = append(mj.Inputs, ioJSON{Name: in.Name, ExampleShape: in.ExampleShape(), BatchDim: in.BatchDim, Served: true})
	}
	for _, out := range sig.Outputs {
		mj.Outputs = append(mj.Outputs, ioJSON{
			Name: out.Name, ExampleShape: out.ExampleShape(), BatchDim: out.BatchDim,
			Served: out.BatchDim != core.BatchNone,
		})
	}
	return mj
}

// Handler returns the HTTP mux serving the endpoints above.
func (srv *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"status": "ok", "models": srv.Names()})
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		out := make(map[string]Stats, len(srv.engines))
		for n, e := range srv.engines {
			out[n] = e.Stats()
		}
		writeJSON(w, http.StatusOK, out)
	})
	mux.HandleFunc("/v1/models", func(w http.ResponseWriter, r *http.Request) {
		out := make([]modelJSON, 0, len(srv.engines))
		for _, n := range srv.Names() {
			out = append(out, srv.modelJSON(n))
		}
		writeJSON(w, http.StatusOK, map[string]any{"models": out})
	})
	mux.HandleFunc("/v1/models/", srv.handleModel)
	return mux
}

func (srv *Server) handleModel(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/v1/models/")
	if name, ok := strings.CutSuffix(rest, ":infer"); ok {
		srv.handleInfer(w, r, name)
		return
	}
	if _, ok := srv.engines[rest]; !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown model %q (have %v)", rest, srv.Names()))
		return
	}
	writeJSON(w, http.StatusOK, srv.modelJSON(rest))
}

func (srv *Server) handleInfer(w http.ResponseWriter, r *http.Request, name string) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("infer requires POST"))
		return
	}
	e, ok := srv.engines[name]
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown model %q (have %v)", name, srv.Names()))
		return
	}
	// Bound the body before decoding: a well-formed request is one
	// example per input, so budget ~32 bytes per JSON float plus slack
	// — an oversized body must not be buffered into memory.
	var elems int64
	for _, in := range e.Signature().Inputs {
		n := int64(1)
		for _, d := range in.ExampleShape() {
			n *= int64(d)
		}
		elems += n
	}
	r.Body = http.MaxBytesReader(w, r.Body, 1<<20+elems*32)
	var req inferRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge, err)
			return
		}
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	inputs := make(map[string]*tensor.Tensor, len(req.Inputs))
	for n, jt := range req.Inputs {
		t, err := fromJSONTensor(jt)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("input %q: %w", n, err))
			return
		}
		inputs[n] = t
	}
	outs, err := e.Infer(r.Context(), inputs)
	var ie *InputError
	switch {
	case err == nil:
	case errors.As(err, &ie):
		writeError(w, http.StatusBadRequest, err)
		return
	case errors.Is(err, ErrClosed):
		writeError(w, http.StatusServiceUnavailable, err)
		return
	case r.Context().Err() != nil:
		// Client went away; nothing useful to write.
		return
	default:
		// Post-enqueue failures are execution faults, not request
		// mistakes.
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	resp := inferResponse{Model: name, Outputs: make(map[string]jsonTensor, len(outs))}
	for n, t := range outs {
		resp.Outputs[n] = toJSONTensor(t)
	}
	writeJSON(w, http.StatusOK, resp)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
