// Package serve's tests pin the concurrency contract: pooled
// micro-batched inference must return exactly what sequential
// single-session inference returns, batching must respect
// MaxBatch/MaxDelay, and cancellation must return promptly. Run with
// -race: these tests are the suite's concurrency safety net.
package serve

import (
	"context"
	"net/http"
	"net/http/httptest"
	goruntime "runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"encoding/json"

	"repro/internal/core"
	"repro/internal/runtime"
	"repro/internal/sched"
	"repro/internal/tensor"

	_ "repro/internal/models/all"
)

// buildModel constructs a Setup workload at the tiny preset with the
// graph's batch axis widened to batch.
func buildModel(t testing.TB, name string, batch int) core.Model {
	t.Helper()
	m, err := core.New(name)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Setup(core.Config{Preset: core.PresetTiny, Seed: 3, Batch: batch}); err != nil {
		t.Fatal(err)
	}
	return m
}

// sampleExamples draws n single-example input sets from the
// workload's synthetic dataset by splitting sampled batches.
func sampleExamples(t testing.TB, m core.Model, n int) []map[string]*tensor.Tensor {
	t.Helper()
	sig := m.Signature(core.ModeInference)
	smp, ok := m.(core.Sampler)
	if !ok {
		t.Fatalf("%s is not a Sampler", m.Name())
	}
	var out []map[string]*tensor.Tensor
	for len(out) < n {
		batch := smp.Sample()
		for i := 0; i < sig.BatchCapacity() && len(out) < n; i++ {
			ex := map[string]*tensor.Tensor{}
			for _, in := range sig.Inputs {
				ex[in.Name] = getExample(batch[in.Name], in.BatchDim, i)
			}
			out = append(out, ex)
		}
	}
	return out
}

// referenceInfer runs one example through a single session the
// sequential way: packed alone into a zero-padded batch, exactly as
// the engine packs a fill-1 micro-batch.
func referenceInfer(t testing.TB, m core.Model, s *runtime.Session, ex map[string]*tensor.Tensor) map[string]*tensor.Tensor {
	t.Helper()
	sig := m.Signature(core.ModeInference)
	feeds := map[string]*tensor.Tensor{}
	for _, in := range sig.Inputs {
		packed := tensor.New(in.Shape()...)
		putExample(packed, in.BatchDim, 0, ex[in.Name])
		feeds[in.Name] = packed
	}
	outs, err := m.(core.Inferencer).Infer(s, feeds)
	if err != nil {
		t.Fatal(err)
	}
	result := map[string]*tensor.Tensor{}
	for _, out := range sig.Outputs {
		if out.BatchDim == core.BatchNone {
			continue
		}
		result[out.Name] = getExample(outs[out.Name], out.BatchDim, 0)
	}
	return result
}

func tensorsEqual(a, b *tensor.Tensor) bool {
	if !tensor.SameShape(a.Shape(), b.Shape()) {
		return false
	}
	ad, bd := a.Data(), b.Data()
	for i := range ad {
		if ad[i] != bd[i] {
			return false
		}
	}
	return true
}

// TestEngineMatchesSequential is the correctness contract: N
// concurrent clients against a pooled, micro-batched engine get
// bit-identical results to sequential single-session inference.
// (alexnet and memnet are example-independent graphs, so batch
// composition and padding cannot perturb a request's rows.)
func TestEngineMatchesSequential(t *testing.T) {
	for _, name := range []string{"alexnet", "memnet"} {
		name := name
		t.Run(name, func(t *testing.T) {
			const clients, perClient = 8, 3
			m := buildModel(t, name, 4)
			examples := sampleExamples(t, m, clients*perClient)

			// Sequential reference on an independent session.
			ref := runtime.NewSession(m.Graph(), runtime.WithSeed(99))
			want := make([]map[string]*tensor.Tensor, len(examples))
			for i, ex := range examples {
				want[i] = referenceInfer(t, m, ref, ex)
			}

			e, err := New(m, Options{Sessions: 2, MaxBatch: 4, MaxDelay: time.Millisecond})
			if err != nil {
				t.Fatal(err)
			}
			defer e.Close()

			got := make([]map[string]*tensor.Tensor, len(examples))
			errs := make([]error, len(examples))
			var wg sync.WaitGroup
			for c := 0; c < clients; c++ {
				wg.Add(1)
				go func(c int) {
					defer wg.Done()
					for k := 0; k < perClient; k++ {
						i := c*perClient + k
						got[i], errs[i] = e.Infer(context.Background(), examples[i])
					}
				}(c)
			}
			wg.Wait()
			for i := range examples {
				if errs[i] != nil {
					t.Fatalf("request %d: %v", i, errs[i])
				}
				for outName, w := range want[i] {
					g, ok := got[i][outName]
					if !ok {
						t.Fatalf("request %d missing output %q", i, outName)
					}
					if !tensorsEqual(w, g) {
						t.Fatalf("request %d output %q differs from sequential inference", i, outName)
					}
				}
			}
			if s := e.Stats(); s.Requests != clients*perClient {
				t.Fatalf("stats requests = %d, want %d", s.Requests, clients*perClient)
			}
		})
	}
}

// TestEngineBatchingRespectsMaxBatch checks coalescing: concurrent
// requests fill micro-batches above 1 but never above MaxBatch.
func TestEngineBatchingRespectsMaxBatch(t *testing.T) {
	m := buildModel(t, "memnet", 8)
	e, err := New(m, Options{Sessions: 1, MaxBatch: 4, MaxDelay: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if e.MaxBatch() != 4 {
		t.Fatalf("MaxBatch = %d, want 4", e.MaxBatch())
	}

	const n = 16
	examples := sampleExamples(t, m, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := e.Infer(context.Background(), examples[i]); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	s := e.Stats()
	if s.Requests != n {
		t.Fatalf("requests = %d, want %d", s.Requests, n)
	}
	if s.MaxBatchFill > 4 {
		t.Fatalf("a batch exceeded MaxBatch: fill %d", s.MaxBatchFill)
	}
	if s.MeanBatchFill <= 1 {
		t.Fatalf("16 concurrent clients should coalesce: mean fill %.2f", s.MeanBatchFill)
	}
	if s.Batches < n/4 {
		t.Fatalf("batches = %d, want >= %d", s.Batches, n/4)
	}
}

// TestEngineStatsPoolGauges: /stats carries the shared pool's
// busy/spawned gauges and the engine's lease claim, sized sessions ×
// (inter-op × intra-op − 1) — the load-shedding signals.
func TestEngineStatsPoolGauges(t *testing.T) {
	pool := sched.New(3)
	defer pool.Close()
	m := buildModel(t, "memnet", 4)
	e, err := New(m, Options{Sessions: 2, InterOpWorkers: 2, IntraOpWorkers: 2, WorkerPool: pool})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	s := e.Stats()
	if s.PoolSize != 3 {
		t.Fatalf("PoolSize = %d, want 3", s.PoolSize)
	}
	if want := 2 * (2*2 - 1); s.LeaseClaim != want {
		t.Fatalf("LeaseClaim = %d, want %d", s.LeaseClaim, want)
	}
	if s.PoolBusy < 0 || s.PoolBusy > s.PoolSize || s.PoolSpawned < 0 || s.PoolSpawned > s.PoolSize {
		t.Fatalf("pool gauges out of range: busy %d spawned %d size %d", s.PoolBusy, s.PoolSpawned, s.PoolSize)
	}
	if !strings.Contains(s.String(), "pool(busy=") {
		t.Fatalf("Stats.String misses pool gauges: %s", s)
	}
}

// TestEngineMaxDelayFlushesPartialBatch: a lone request must not wait
// for a full batch.
func TestEngineMaxDelayFlushesPartialBatch(t *testing.T) {
	m := buildModel(t, "memnet", 8)
	e, err := New(m, Options{MaxBatch: 8, MaxDelay: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	ex := sampleExamples(t, m, 1)[0]
	start := time.Now()
	if _, err := e.Infer(context.Background(), ex); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d > 3*time.Second {
		t.Fatalf("partial batch took %v; MaxDelay flush is broken", d)
	}
	if s := e.Stats(); s.MaxBatchFill != 1 {
		t.Fatalf("fill = %d, want 1", s.MaxBatchFill)
	}
}

// TestEngineCancellation: a context cancelled while the request sits
// in the batching window must return promptly, not after MaxDelay.
func TestEngineCancellation(t *testing.T) {
	m := buildModel(t, "memnet", 8)
	e, err := New(m, Options{MaxBatch: 8, MaxDelay: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	ex := sampleExamples(t, m, 1)[0]
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = e.Infer(ctx, ex)
	if err != context.DeadlineExceeded {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("cancellation took %v; must be prompt", d)
	}
}

// TestEngineCloseFailsPending: Close fails queued requests with
// ErrClosed and Infer afterwards refuses immediately.
func TestEngineCloseFailsPending(t *testing.T) {
	m := buildModel(t, "memnet", 2)
	e, err := New(m, Options{MaxBatch: 2, MaxDelay: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	e.Close()
	if _, err := e.Infer(context.Background(), sampleExamples(t, m, 1)[0]); err != ErrClosed {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
}

// TestEngineRefusesBatchCoupledCoalescing: residual's primitive batch
// normalization couples examples, so the engine must refuse to serve
// it with a batch capacity above 1 (results would depend on batch
// composition) but accept the unbatched configuration.
func TestEngineRefusesBatchCoupledCoalescing(t *testing.T) {
	m := buildModel(t, "residual", 4)
	if _, err := New(m, Options{MaxBatch: 4}); err == nil {
		t.Fatal("batch-coupled workload at capacity 4 must be refused")
	}
	m1 := buildModel(t, "residual", 1)
	e, err := New(m1, Options{})
	if err != nil {
		t.Fatalf("unbatched batch-coupled serving must work: %v", err)
	}
	defer e.Close()
	ex := sampleExamples(t, m1, 1)[0]
	if _, err := e.Infer(context.Background(), ex); err != nil {
		t.Fatal(err)
	}
}

// TestEngineValidatesInputs: request-shape errors surface before
// anything is enqueued.
func TestEngineValidatesInputs(t *testing.T) {
	m := buildModel(t, "alexnet", 2)
	e, err := New(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	ctx := context.Background()
	if _, err := e.Infer(ctx, map[string]*tensor.Tensor{}); err == nil {
		t.Fatal("missing input must error")
	}
	if _, err := e.Infer(ctx, map[string]*tensor.Tensor{"images": nil}); err == nil {
		t.Fatal("nil input must error, not panic")
	}
	if _, err := e.Infer(ctx, map[string]*tensor.Tensor{"images": tensor.New(3, 3, 3)}); err == nil {
		t.Fatal("wrong shape must error")
	}
	ex := sampleExamples(t, m, 1)[0]
	ex["bogus"] = tensor.New(1)
	if _, err := e.Infer(ctx, ex); err == nil {
		t.Fatal("unknown input must error")
	}
}

// TestExamplePackRoundTrip pins the strided pack/unpack helpers on a
// non-leading batch axis.
func TestExamplePackRoundTrip(t *testing.T) {
	src := tensor.New(3, 4, 2) // batch axis 1
	for i := range src.Data() {
		src.Data()[i] = float32(i)
	}
	for i := 0; i < 4; i++ {
		ex := getExample(src, 1, i)
		if !tensor.SameShape(ex.Shape(), []int{3, 2}) {
			t.Fatalf("example shape = %v", ex.Shape())
		}
		dst := tensor.New(3, 4, 2)
		putExample(dst, 1, i, ex)
		for o := 0; o < 3; o++ {
			for k := 0; k < 2; k++ {
				if dst.At(o, i, k) != src.At(o, i, k) {
					t.Fatalf("roundtrip mismatch at (%d,%d,%d)", o, i, k)
				}
			}
		}
	}
}

// TestHTTPServer drives the JSON API end to end: discovery, health,
// inference, stats.
func TestHTTPServer(t *testing.T) {
	m := buildModel(t, "alexnet", 2)
	e, err := New(m, Options{MaxBatch: 2, MaxDelay: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	srv := NewServer()
	srv.Register(e)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var health struct {
		Status string   `json:"status"`
		Models []string `json:"models"`
	}
	getJSON(t, ts.URL+"/healthz", &health)
	if health.Status != "ok" || len(health.Models) != 1 || health.Models[0] != "alexnet" {
		t.Fatalf("healthz = %+v", health)
	}

	var mj modelJSON
	getJSON(t, ts.URL+"/v1/models/alexnet", &mj)
	if mj.Name != "alexnet" || len(mj.Inputs) != 1 || mj.Inputs[0].Name != "images" {
		t.Fatalf("model json = %+v", mj)
	}

	ex := sampleExamples(t, m, 1)[0]
	body, _ := json.Marshal(inferRequest{Inputs: map[string]jsonTensor{
		"images": toJSONTensor(ex["images"]),
	}})
	resp, err := http.Post(ts.URL+"/v1/models/alexnet:infer", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("infer status = %d", resp.StatusCode)
	}
	var ir inferResponse
	if err := json.NewDecoder(resp.Body).Decode(&ir); err != nil {
		t.Fatal(err)
	}
	probs, ok := ir.Outputs["probs"]
	if !ok {
		t.Fatalf("no probs in %v", ir.Outputs)
	}
	var sum float32
	for _, v := range probs.Data {
		sum += v
	}
	if sum < 0.99 || sum > 1.01 {
		t.Fatalf("probs must sum to 1, got %v", sum)
	}

	var stats map[string]Stats
	getJSON(t, ts.URL+"/stats", &stats)
	if stats["alexnet"].Requests != 1 {
		t.Fatalf("stats = %+v", stats)
	}

	// Error paths.
	r1, err := http.Get(ts.URL + "/v1/models/nonexistent")
	if err != nil {
		t.Fatal(err)
	}
	r1.Body.Close()
	if r1.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown model status = %d", r1.StatusCode)
	}
	r2, err := http.Post(ts.URL+"/v1/models/alexnet:infer", "application/json",
		strings.NewReader(`{"inputs":{}}`))
	if err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	if r2.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty inputs status = %d", r2.StatusCode)
	}
}

func getJSON(t *testing.T, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s = %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
}

// TestEngineInterOpWorkersMatchesSequential: the engine's inter-op
// scheduling knob composes with pooling and micro-batching without
// perturbing results — Infer through inter-op-4 worker sessions is
// bit-identical to sequential single-session inference.
func TestEngineInterOpWorkersMatchesSequential(t *testing.T) {
	const clients, perClient = 6, 3
	m := buildModel(t, "memnet", 4)
	examples := sampleExamples(t, m, clients*perClient)

	ref := runtime.NewSession(m.Graph(), runtime.WithSeed(99))
	want := make([]map[string]*tensor.Tensor, len(examples))
	for i, ex := range examples {
		want[i] = referenceInfer(t, m, ref, ex)
	}

	e, err := New(m, Options{Sessions: 2, MaxBatch: 4, MaxDelay: time.Millisecond, InterOpWorkers: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	got := make([]map[string]*tensor.Tensor, len(examples))
	errs := make([]error, len(examples))
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for k := 0; k < perClient; k++ {
				i := c*perClient + k
				got[i], errs[i] = e.Infer(context.Background(), examples[i])
			}
		}(c)
	}
	wg.Wait()
	for i := range examples {
		if errs[i] != nil {
			t.Fatalf("request %d: %v", i, errs[i])
		}
		for outName, w := range want[i] {
			if !tensorsEqual(w, got[i][outName]) {
				t.Fatalf("request %d output %q differs under inter-op workers", i, outName)
			}
		}
	}
}

// TestEngineIntraOpWorkersMatchesSequential: real intra-op kernel
// parallelism on the shared pool composes with pooling, micro-batching
// and inter-op scheduling without perturbing a single bit.
func TestEngineIntraOpWorkersMatchesSequential(t *testing.T) {
	const clients, perClient = 6, 3
	m := buildModel(t, "memnet", 4)
	examples := sampleExamples(t, m, clients*perClient)

	ref := runtime.NewSession(m.Graph(), runtime.WithSeed(99))
	want := make([]map[string]*tensor.Tensor, len(examples))
	for i, ex := range examples {
		want[i] = referenceInfer(t, m, ref, ex)
	}

	pool := sched.New(3)
	defer pool.Close()
	e, err := New(m, Options{
		Sessions: 2, MaxBatch: 4, MaxDelay: time.Millisecond,
		InterOpWorkers: 2, IntraOpWorkers: 4, WorkerPool: pool,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	got := make([]map[string]*tensor.Tensor, len(examples))
	errs := make([]error, len(examples))
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for k := 0; k < perClient; k++ {
				i := c*perClient + k
				got[i], errs[i] = e.Infer(context.Background(), examples[i])
			}
		}(c)
	}
	wg.Wait()
	for i := range examples {
		if errs[i] != nil {
			t.Fatalf("request %d: %v", i, errs[i])
		}
		for outName, w := range want[i] {
			if !tensorsEqual(got[i][outName], w) {
				t.Fatalf("request %d output %q differs from sequential reference", i, outName)
			}
		}
	}
}

// TestManyEnginesOneSharedPool hammers one bounded pool from several
// engines' worth of parallel sessions at once — the race detector
// checks every handoff, and the pool must bound execution goroutines
// across all engines combined.
func TestManyEnginesOneSharedPool(t *testing.T) {
	pool := sched.New(3)
	defer pool.Close()
	const engines = 3
	var es []*Engine
	var exs [][]map[string]*tensor.Tensor
	for i := 0; i < engines; i++ {
		m := buildModel(t, "memnet", 4)
		e, err := New(m, Options{
			Sessions: 2, MaxBatch: 4, MaxDelay: 500 * time.Microsecond,
			InterOpWorkers: 2, IntraOpWorkers: 2, WorkerPool: pool,
		})
		if err != nil {
			t.Fatal(err)
		}
		es = append(es, e)
		exs = append(exs, sampleExamples(t, m, 8))
	}
	var wg sync.WaitGroup
	for i, e := range es {
		for c := 0; c < 4; c++ {
			wg.Add(1)
			go func(e *Engine, examples []map[string]*tensor.Tensor) {
				defer wg.Done()
				for r := 0; r < 6; r++ {
					if _, err := e.Infer(context.Background(), examples[r%len(examples)]); err != nil {
						t.Error(err)
						return
					}
				}
			}(e, exs[i])
		}
	}
	wg.Wait()
	if pool.Spawned() > pool.Size() {
		t.Fatalf("pool spawned %d workers, size %d", pool.Spawned(), pool.Size())
	}
	for _, e := range es {
		e.Close()
	}
}

// TestEngineShutdownReleasesGoroutines is the leak check: engine
// workers, dispatcher and session leases all wind down on Close, and
// the only persistent goroutines left are the shared pool's bounded
// workers.
func TestEngineShutdownReleasesGoroutines(t *testing.T) {
	pool := sched.New(2)
	defer pool.Close()
	base := goruntime.NumGoroutine()
	for round := 0; round < 3; round++ {
		m := buildModel(t, "memnet", 2)
		e, err := New(m, Options{
			Sessions: 3, MaxBatch: 2, MaxDelay: 200 * time.Microsecond,
			InterOpWorkers: 2, IntraOpWorkers: 2, WorkerPool: pool,
		})
		if err != nil {
			t.Fatal(err)
		}
		examples := sampleExamples(t, m, 4)
		var wg sync.WaitGroup
		for c := 0; c < 4; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				if _, err := e.Infer(context.Background(), examples[c]); err != nil {
					t.Error(err)
				}
			}(c)
		}
		wg.Wait()
		e.Close()
	}
	// Everything engine-owned is gone; at most the pool's persistent
	// workers (plus test-runtime slack) remain.
	deadline := time.Now().Add(3 * time.Second)
	for goruntime.NumGoroutine() > base+pool.Size()+1 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := goruntime.NumGoroutine(); got > base+pool.Size()+1 {
		t.Fatalf("goroutines %d after 3 engine lifecycles (baseline %d, pool %d): leak",
			got, base, pool.Size())
	}
}
