// Package serve is the suite's serving subsystem: a concurrent
// inference engine that exposes any Fathom workload's request-driven
// signature (core.Signature) to many simultaneous clients.
//
// # Architecture
//
// A runtime.Session is single-goroutine (its plan cache and buffer
// arena are unsynchronized), so the Engine owns a pool of sessions —
// one per worker goroutine — over one shared model graph. Sharing the
// graph is safe for inference: forward execution only reads variable
// values, and the mode-dependent stateful ops (dropout masks,
// optimizer slots) mutate state exclusively in training mode. The
// Engine therefore runs inference only; training on the same model
// must remain exclusive with serving.
//
// Requests carry one example each. A dispatcher goroutine coalesces
// concurrent requests into micro-batches: up to MaxBatch examples,
// waiting at most MaxDelay after the first arrival for more (when all
// workers are busy, a flushed batch keeps filling until one frees, so
// saturation converts queue time into batch fill) — packs them along
// each input's batch axis (IOSpec.BatchDim), executes one compiled-
// plan run of the inference signature's fetch set (the execution the
// workload's Inferencer performs), and splits the batched
// outputs back into per-request responses. Unfilled batch slots are
// zero-padded. Workloads that couple examples across the batch
// (core.BatchCoupled — residual's primitive batch normalization) are
// refused unless built at batch capacity 1, so batch composition and
// padding never perturb a request's rows. Stochastic inference graphs
// (autoenc's reparameterization sampling) are served batched: their
// noise is drawn i.i.d. per element from the worker session's RNG, so
// results are distributionally equivalent to sequential inference but
// — as inherent to sampling — not bitwise reproducible across calls.
//
// The Engine records an atomic stats block: request/batch counters,
// mean and max batch fill, throughput, and a log-bucketed latency
// histogram for p50/p99.
package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/runtime"
	"repro/internal/sched"
	"repro/internal/tensor"
)

// ErrClosed is returned by Infer after Close.
var ErrClosed = errors.New("serve: engine closed")

// InputError reports a malformed request: a missing or unknown input
// name, or a tensor that does not match its input's example shape.
// The HTTP layer maps it to 400; anything else from Infer is an
// execution fault.
type InputError struct{ msg string }

func (e *InputError) Error() string { return e.msg }

func inputErrorf(format string, args ...any) *InputError {
	return &InputError{msg: fmt.Sprintf(format, args...)}
}

// Options configures an Engine.
type Options struct {
	// Sessions is the worker-session pool size (default 1). Each
	// worker owns one runtime.Session; batches are executed by
	// whichever worker is free.
	Sessions int
	// MaxBatch caps how many requests one graph execution coalesces.
	// It is clamped to the signature's batch capacity (the graph's
	// batch-axis extent); 0 means "use the full capacity".
	MaxBatch int
	// MaxDelay bounds how long the dispatcher holds the first request
	// of a batch while waiting for more (default 2ms).
	MaxDelay time.Duration
	// Seed seeds the worker sessions (worker i gets Seed+i).
	Seed int64
	// Device selects the execution device (default CPU).
	Device runtime.Device
	// InterOpWorkers is the inter-op scheduler width each worker
	// session executes its plan with (default 1 = serial). Inter-op
	// parallelism composes with the session pool: Sessions spreads
	// independent batches, InterOpWorkers spreads independent
	// operations inside one batch, and results stay bit-identical to
	// serial execution.
	InterOpWorkers int
	// IntraOpWorkers is the real intra-op width of each worker
	// session's kernel pools (default 1 = serial kernels). Helpers
	// come from the shared process-wide worker pool, so the engine's
	// total execution goroutines stay bounded by that pool's size no
	// matter how many sessions or engines run — and results stay
	// bit-identical to serial execution (deterministic chunking and
	// reduction order; see tensor.Pool).
	IntraOpWorkers int
	// WorkerPool overrides the shared execution pool sessions lease
	// helpers from (default sched.Default()); tests use scoped pools.
	WorkerPool *sched.Pool
	// QueueLen is the pending-request buffer (default 4×MaxBatch).
	QueueLen int
}

// request is one queued inference call.
type request struct {
	inputs map[string]*tensor.Tensor
	ctx    context.Context
	resp   chan response // buffered(1): workers never block on delivery
	enq    time.Time
}

type response struct {
	outputs map[string]*tensor.Tensor
	err     error
}

// finish answers the request once; a duplicate answer (panic-recovery
// sweeping a batch that was partially delivered) is dropped rather
// than blocking on the full buffer.
func (r *request) finish(out map[string]*tensor.Tensor, err error) {
	select {
	case r.resp <- response{outputs: out, err: err}:
	default:
	}
}

// Engine serves one workload's inference signature to concurrent
// callers with dynamic micro-batching over a session pool. It is the
// sanctioned concurrent entry point to the runtime: callers on any
// goroutine call Infer; sessions stay confined to their workers.
type Engine struct {
	model    core.Model
	sig      core.Signature
	fetches  []*graph.Node // sig.Outputs in fetch order, bound once
	capacity int
	maxBatch int
	maxDelay time.Duration

	reqs      chan *request
	batches   chan []*request
	done      chan struct{}
	stopped   chan struct{} // closed when dispatcher+workers have exited
	closeOnce sync.Once

	// sessions are the worker sessions, retained so shutdown can Close
	// them — releasing each session's lease on the shared worker pool.
	sessions []*runtime.Session

	// pool is the shared worker pool the sessions lease helpers from;
	// claim is the engine's total lease claim on it (sessions ×
	// per-session helper claim). Both feed the /stats gauges load
	// shedders watch.
	pool  *sched.Pool
	claim int

	stats stats
}

// New builds and starts an engine for a Setup model. The model must
// implement core.Inferencer, and its inference-signature batched
// inputs must agree on their batch extent. Combine with
// core.Config.Batch to build the graph at the micro-batching window
// you want to serve.
func New(m core.Model, opts Options) (*Engine, error) {
	if m.Graph() == nil {
		return nil, fmt.Errorf("serve: model %s has no graph (call Setup first)", m.Name())
	}
	if _, ok := m.(core.Inferencer); !ok {
		return nil, fmt.Errorf("serve: workload %s does not implement core.Inferencer", m.Name())
	}
	sig := m.Signature(core.ModeInference)
	if len(sig.Inputs) == 0 || len(sig.Outputs) == 0 {
		return nil, fmt.Errorf("serve: workload %s has an empty inference signature", m.Name())
	}
	capacity := sig.BatchCapacity()
	if bc, ok := m.(core.BatchCoupled); ok && bc.BatchCoupled() && capacity > 1 {
		return nil, fmt.Errorf(
			"serve: %s couples examples across the batch (its per-example outputs depend on batch composition); serve it unbatched by building with core.Config{Batch: 1} / -maxbatch 1",
			m.Name())
	}
	for _, in := range sig.Inputs {
		if in.BatchDim == core.BatchNone {
			return nil, fmt.Errorf("serve: input %q has no batch axis; cannot micro-batch %s", in.Name, m.Name())
		}
		if in.BatchDim < 0 || in.BatchDim >= len(in.Shape()) {
			return nil, fmt.Errorf("serve: input %q batch axis %d out of range for shape %v", in.Name, in.BatchDim, in.Shape())
		}
		if got := in.Shape()[in.BatchDim]; got != capacity {
			return nil, fmt.Errorf("serve: input %q batch extent %d != capacity %d", in.Name, got, capacity)
		}
	}
	for _, out := range sig.Outputs {
		if out.BatchDim == core.BatchNone {
			continue // whole-batch scalars are never unbatched
		}
		if out.BatchDim < 0 || out.BatchDim >= len(out.Shape()) {
			return nil, fmt.Errorf("serve: output %q batch axis %d out of range for shape %v", out.Name, out.BatchDim, out.Shape())
		}
		if got := out.Shape()[out.BatchDim]; got != capacity {
			return nil, fmt.Errorf("serve: output %q batch extent %d != capacity %d", out.Name, got, capacity)
		}
	}
	if opts.Sessions <= 0 {
		opts.Sessions = 1
	}
	if opts.MaxBatch <= 0 || opts.MaxBatch > capacity {
		opts.MaxBatch = capacity
	}
	if opts.MaxDelay <= 0 {
		opts.MaxDelay = 2 * time.Millisecond
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	if opts.QueueLen <= 0 {
		opts.QueueLen = 4 * opts.MaxBatch
	}
	e := &Engine{
		model:    m,
		sig:      sig,
		capacity: capacity,
		maxBatch: opts.MaxBatch,
		maxDelay: opts.MaxDelay,
		reqs:     make(chan *request, opts.QueueLen),
		batches:  make(chan []*request),
		done:     make(chan struct{}),
		stopped:  make(chan struct{}),
	}
	for _, out := range sig.Outputs {
		e.fetches = append(e.fetches, out.Node)
	}
	e.pool = opts.WorkerPool
	if e.pool == nil {
		e.pool = sched.Default()
	}
	interOp, intraOp := opts.InterOpWorkers, opts.IntraOpWorkers
	if interOp < 1 {
		interOp = 1
	}
	if intraOp < 1 {
		intraOp = 1
	}
	e.claim = opts.Sessions * (interOp*intraOp - 1)
	e.stats.reset()
	var workers sync.WaitGroup
	for i := 0; i < opts.Sessions; i++ {
		sessOpts := []runtime.Option{runtime.WithSeed(opts.Seed + int64(i))}
		if opts.Device != nil {
			sessOpts = append(sessOpts, runtime.WithDevice(opts.Device))
		}
		if opts.InterOpWorkers > 1 {
			sessOpts = append(sessOpts, runtime.WithInterOpWorkers(opts.InterOpWorkers))
		}
		if opts.IntraOpWorkers > 1 {
			sessOpts = append(sessOpts, runtime.WithIntraOpWorkers(opts.IntraOpWorkers))
		}
		if opts.WorkerPool != nil {
			sessOpts = append(sessOpts, runtime.WithWorkerPool(opts.WorkerPool))
		}
		sess := runtime.NewSession(m.Graph(), sessOpts...)
		e.sessions = append(e.sessions, sess)
		ws := newWorkerState(e, sess)
		workers.Add(1)
		go func() {
			defer workers.Done()
			for batch := range e.batches {
				e.runBatch(ws, batch)
			}
		}()
	}
	go func() {
		e.dispatch()
		workers.Wait() // workers finish the already-dispatched batches
		for _, sess := range e.sessions {
			sess.Close() // release each session's shared-pool lease
		}
		close(e.stopped)
	}()
	return e, nil
}

// Model returns the served workload.
func (e *Engine) Model() core.Model { return e.model }

// Signature returns the served inference signature.
func (e *Engine) Signature() core.Signature { return e.sig }

// MaxBatch returns the effective micro-batch cap.
func (e *Engine) MaxBatch() int { return e.maxBatch }

// Infer submits one single-example request and blocks until its
// result, the context's cancellation, or engine shutdown. Inputs are
// keyed by signature input name; each tensor must have the input's
// ExampleShape (the placeholder shape with the batch axis removed).
// Infer takes ownership of the input tensors: a worker may still be
// packing them after a cancelled return, so the caller must not
// mutate or reuse them afterwards (pass fresh tensors per call, as
// the HTTP layer does). Outputs are the signature's batched outputs,
// one example each; whole-batch scalar outputs (losses) are omitted.
// Infer is safe for concurrent use from any number of goroutines.
func (e *Engine) Infer(ctx context.Context, inputs map[string]*tensor.Tensor) (map[string]*tensor.Tensor, error) {
	for _, in := range e.sig.Inputs {
		t, ok := inputs[in.Name]
		if !ok || t == nil {
			return nil, inputErrorf("serve: missing input %q (want %v)", in.Name, e.sig.InputNames())
		}
		want := in.ExampleShape()
		if !tensor.SameShape(t.Shape(), want) {
			return nil, inputErrorf("serve: input %q has shape %v, want example shape %v", in.Name, t.Shape(), want)
		}
	}
	if len(inputs) > len(e.sig.Inputs) {
		for name := range inputs {
			if _, ok := e.sig.Input(name); !ok {
				return nil, inputErrorf("serve: unknown input %q (want %v)", name, e.sig.InputNames())
			}
		}
	}
	r := &request{
		inputs: inputs,
		ctx:    ctx,
		resp:   make(chan response, 1),
		enq:    time.Now(),
	}
	select {
	case e.reqs <- r:
	case <-e.done:
		return nil, ErrClosed
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	var resp response
	select {
	case resp = <-r.resp:
	case <-ctx.Done():
		// The batch may still execute; the buffered resp channel lets
		// the worker complete without us.
		e.stats.cancels.Add(1)
		return nil, ctx.Err()
	case <-e.stopped:
		// Dispatcher and workers have exited, so nothing will answer —
		// unless a response raced in just before shutdown. (The submit
		// select may legitimately enqueue concurrently with Close: the
		// buffered reqs send and the closed done channel are both
		// ready, and select picks either.)
		select {
		case resp = <-r.resp:
		default:
			e.stats.cancels.Add(1)
			return nil, ErrClosed
		}
	}
	if resp.err != nil {
		// Caller-side aborts (the dispatcher or a worker observed the
		// request's context already cancelled) are not engine faults.
		if errors.Is(resp.err, context.Canceled) || errors.Is(resp.err, context.DeadlineExceeded) || errors.Is(resp.err, ErrClosed) {
			e.stats.cancels.Add(1)
		} else {
			e.stats.errors.Add(1)
		}
		return nil, resp.err
	}
	e.stats.record(time.Since(r.enq))
	return resp.outputs, nil
}

// Close stops accepting requests, fails queued ones with ErrClosed,
// and waits for in-flight batches to finish.
func (e *Engine) Close() {
	e.closeOnce.Do(func() { close(e.done) })
	<-e.stopped
}

// Stats returns a snapshot of the engine's counters, plus the shared
// worker pool's busy/spawned gauges and the engine's lease claim on it
// — the load signals a shedding layer in front of /stats needs: when
// PoolBusy sits at PoolSize, every engine on the pool is executing
// degraded (serial) and added load only queues.
func (e *Engine) Stats() Stats {
	s := e.stats.snapshot()
	s.PoolSize = e.pool.Size()
	s.PoolBusy = e.pool.Busy()
	s.PoolSpawned = e.pool.Spawned()
	s.LeaseClaim = e.claim
	return s
}

// ResetStats zeroes the counters and restarts the uptime clock —
// e.g. after warmup, so steady-state metrics exclude one-time plan
// compilation.
func (e *Engine) ResetStats() { e.stats.zero() }

// dispatch is the micro-batching loop: take the first pending request,
// then collect more until the batch is full or MaxDelay elapses.
func (e *Engine) dispatch() {
	defer close(e.batches)
	for {
		var first *request
		select {
		case first = <-e.reqs:
		case <-e.done:
			e.drain()
			return
		}
		if err := first.ctx.Err(); err != nil {
			first.finish(nil, err)
			continue
		}
		batch := []*request{first}
		if len(batch) < e.maxBatch { // MaxBatch 1 never waits
			timer := time.NewTimer(e.maxDelay)
		collect:
			for len(batch) < e.maxBatch {
				select {
				case r := <-e.reqs:
					if err := r.ctx.Err(); err != nil {
						r.finish(nil, err)
						continue
					}
					batch = append(batch, r)
				case <-timer.C:
					break collect
				case <-e.done:
					break collect
				}
			}
			timer.Stop()
		}
		// Hand off. While every worker is busy, keep topping the batch
		// up to MaxBatch — queue wait converts into batch fill instead
		// of under-filled runs.
		sent := false
		for !sent && len(batch) < e.maxBatch {
			select {
			case e.batches <- batch:
				sent = true
			case r := <-e.reqs:
				if err := r.ctx.Err(); err != nil {
					r.finish(nil, err)
					continue
				}
				batch = append(batch, r)
			case <-e.done:
				e.batches <- batch
				e.drain()
				return
			}
		}
		if !sent {
			e.batches <- batch
		}
		select {
		case <-e.done:
			e.drain()
			return
		default:
		}
	}
}

// drain fails every still-queued request after shutdown.
func (e *Engine) drain() {
	for {
		select {
		case r := <-e.reqs:
			r.finish(nil, ErrClosed)
		default:
			return
		}
	}
}

// workerState is one worker's execution kit, built once: its session
// (inference mode), reusable full-batch input buffers (parallel to
// sig.Inputs), and the feeds map binding those buffers to their
// placeholders. Per batch, the steady-state path allocates only the
// per-request output examples.
type workerState struct {
	sess   *runtime.Session
	packed []*tensor.Tensor
	feeds  runtime.Feeds
}

func newWorkerState(e *Engine, sess *runtime.Session) *workerState {
	sess.SetTraining(false)
	ws := &workerState{sess: sess, feeds: make(runtime.Feeds, len(e.sig.Inputs))}
	for _, in := range e.sig.Inputs {
		buf := tensor.New(in.Shape()...)
		ws.packed = append(ws.packed, buf)
		ws.feeds[in.Node] = buf
	}
	return ws
}

// runBatch executes one micro-batch on a worker, packing requests into
// the worker's input buffers and running the signature's fetch set
// directly (the same execution the workload's Inferencer performs). A
// panic out of graph execution fails the batch's requests instead of
// killing the worker (and with it the process).
func (e *Engine) runBatch(ws *workerState, batch []*request) {
	var live []*request
	defer func() {
		if p := recover(); p != nil {
			for _, r := range live {
				r.finish(nil, fmt.Errorf("serve: %s: panic during batch execution: %v", e.model.Name(), p))
			}
		}
	}()
	live = batch[:0]
	for _, r := range batch {
		if err := r.ctx.Err(); err != nil {
			r.finish(nil, err)
			continue
		}
		live = append(live, r)
	}
	if len(live) == 0 {
		return
	}
	for ii, in := range e.sig.Inputs {
		buf := ws.packed[ii]
		for i, r := range live {
			putExample(buf, in.BatchDim, i, r.inputs[in.Name])
		}
		// Slots past the fill keep stale rows from earlier batches;
		// zero just that tail (a full batch clears nothing).
		clearTail(buf, in.BatchDim, len(live))
	}
	vals, err := ws.sess.Run(e.fetches, ws.feeds)
	if err != nil {
		for _, r := range live {
			r.finish(nil, fmt.Errorf("serve: %s: %w", e.model.Name(), err))
		}
		return
	}
	e.stats.recordBatch(len(live))
	for i, r := range live {
		result := make(map[string]*tensor.Tensor, len(e.sig.Outputs))
		for oi, out := range e.sig.Outputs {
			if out.BatchDim == core.BatchNone {
				continue // whole-batch scalars are not per-request
			}
			result[out.Name] = getExample(vals[oi], out.BatchDim, i)
		}
		r.finish(result, nil)
	}
}
