// Package serve is the suite's serving subsystem: a concurrent
// inference engine that exposes any Fathom workload's request-driven
// signature (core.Signature) to many simultaneous clients.
//
// # Architecture
//
// A runtime.Session is single-goroutine (its plan cache and buffer
// arena are unsynchronized), so the Engine owns a pool of sessions —
// one per worker goroutine — over one shared model graph. Sharing the
// graph is safe for inference: forward execution only reads variable
// values, and the mode-dependent stateful ops (dropout masks,
// optimizer slots) mutate state exclusively in training mode. The
// Engine therefore runs inference only; training on the same model
// must remain exclusive with serving.
//
// Requests carry one example each. A dispatcher goroutine coalesces
// concurrent requests into micro-batches: up to MaxBatch examples,
// waiting at most MaxDelay after the first arrival for more (when all
// workers are busy, a flushed batch keeps filling until one frees, so
// saturation converts queue time into batch fill) — packs them along
// each input's batch axis (IOSpec.BatchDim), executes one compiled-
// plan run of the inference signature's fetch set (the execution the
// workload's Inferencer performs), and splits the batched
// outputs back into per-request responses. Unfilled batch slots are
// zero-padded. Workloads that couple examples across the batch
// (core.BatchCoupled — residual's primitive batch normalization) are
// refused unless built at batch capacity 1, so batch composition and
// padding never perturb a request's rows. Stochastic inference graphs
// (autoenc's reparameterization sampling) are served batched: their
// noise is drawn i.i.d. per element from the worker session's RNG, so
// results are distributionally equivalent to sequential inference but
// — as inherent to sampling — not bitwise reproducible across calls.
//
// # Admission control and overload behavior
//
// Nothing about a production queue is allowed to be unbounded. Each
// engine runs two priority lanes — PriorityInteractive and
// PriorityBatch — each a bounded admission queue of QueueLen requests.
// When a lane's queue is full, Infer rejects immediately with
// ErrOverloaded instead of blocking: under overload the engine sheds
// early and cheaply at the door rather than letting every request's
// latency collapse. The dispatcher always drains the interactive lane
// first, so batch traffic absorbs queueing delay (and is shed first)
// while interactive latency stays bounded by roughly one batch
// execution.
//
// # Deadline budgets and load shedding
//
// A request's deadline is the earlier of its context deadline and
// Options.DefaultDeadline from admission time. The engine tracks an
// EWMA of batch execution latency; a request is shed with
// ErrOverloaded — at admission or when the dispatcher dequeues it —
// if its remaining budget cannot cover the estimated queue wait plus
// one execution (queued-batches-ahead × EWMA batch latency, inflated
// when the shared worker pool is saturated). A request whose deadline
// has already passed fails with ErrExpired and never occupies a batch
// slot. Because the pool busy/spawned gauges feed the estimate,
// multiple engines sharing one pool apply admission cooperatively:
// when the pool saturates, every engine's estimates grow and batch-
// lane traffic is rejected earlier.
//
// The estimate only updates when batches execute, so a poisoned-high
// EWMA (one slow compile, a GC stall) with all-deadlined traffic could
// otherwise shed everything forever and never observe a fresh sample.
// To stay self-healing, the engine admits one probe request past the
// budget gate every probeInterval: the probe executes (or honestly
// expires), refreshing the estimate toward reality.
//
// The Engine records an atomic stats block: request/batch/shed
// counters, queue depth and queue-wait gauges, mean and max batch
// fill, throughput, and per-lane log-bucketed latency histograms for
// p50/p99/p999.
package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/runtime"
	"repro/internal/sched"
	"repro/internal/telemetry"
	"repro/internal/tensor"
)

// ErrClosed is returned by Infer after Close.
var ErrClosed = errors.New("serve: engine closed")

// ErrOverloaded reports that the engine refused a request to protect
// itself: the lane's admission queue was full, or the request's
// deadline budget cannot cover the estimated queue + execution time.
// Clients should back off and retry (the HTTP layer maps it to 503
// with a Retry-After hint).
var ErrOverloaded = errors.New("serve: overloaded")

// ErrExpired reports that a request's deadline budget ran out before
// it executed. The HTTP layer maps it to 504.
var ErrExpired = errors.New("serve: deadline exceeded")

// Priority selects a request's admission lane. The dispatcher always
// serves the interactive lane first, so under load the batch lane is
// the one that queues, sheds, and expires.
type Priority uint8

const (
	// PriorityInteractive is the latency-sensitive default lane.
	PriorityInteractive Priority = iota
	// PriorityBatch is the throughput lane: shed first under overload.
	PriorityBatch

	numLanes = 2
)

// String names the lane for stats and logs.
func (p Priority) String() string {
	if p == PriorityBatch {
		return "batch"
	}
	return "interactive"
}

// ParsePriority maps the wire names to a Priority; the empty string is
// interactive (the default lane).
func ParsePriority(s string) (Priority, error) {
	switch s {
	case "", "interactive":
		return PriorityInteractive, nil
	case "batch":
		return PriorityBatch, nil
	}
	return 0, fmt.Errorf("unknown priority %q (want interactive or batch)", s)
}

// InputError reports a malformed request: a missing or unknown input
// name, a tensor that does not match its input's example shape, or an
// invalid priority. The HTTP layer maps it to 400; anything else from
// Infer is an execution fault.
type InputError struct{ msg string }

func (e *InputError) Error() string { return e.msg }

func inputErrorf(format string, args ...any) *InputError {
	return &InputError{msg: fmt.Sprintf(format, args...)}
}

// Options configures an Engine.
type Options struct {
	// Sessions is the worker-session pool size (default 1). Each
	// worker owns one runtime.Session; batches are executed by
	// whichever worker is free.
	Sessions int
	// MaxBatch caps how many requests one graph execution coalesces.
	// It is clamped to the signature's batch capacity (the graph's
	// batch-axis extent); 0 means "use the full capacity".
	MaxBatch int
	// MaxDelay bounds how long the dispatcher holds the first request
	// of a batch while waiting for more (default 2ms).
	MaxDelay time.Duration
	// Seed seeds the worker sessions (worker i gets Seed+i).
	Seed int64
	// Device selects the execution device (default CPU).
	Device runtime.Device
	// InterOpWorkers is the inter-op scheduler width each worker
	// session executes its plan with (default 1 = serial). Inter-op
	// parallelism composes with the session pool: Sessions spreads
	// independent batches, InterOpWorkers spreads independent
	// operations inside one batch, and results stay bit-identical to
	// serial execution.
	InterOpWorkers int
	// IntraOpWorkers is the real intra-op width of each worker
	// session's kernel pools (default 1 = serial kernels). Helpers
	// come from the shared process-wide worker pool, so the engine's
	// total execution goroutines stay bounded by that pool's size no
	// matter how many sessions or engines run — and results stay
	// bit-identical to serial execution (deterministic chunking and
	// reduction order; see tensor.Pool).
	IntraOpWorkers int
	// WorkerPool overrides the shared execution pool sessions lease
	// helpers from (default sched.Default()); tests use scoped pools.
	WorkerPool *sched.Pool
	// QueueLen caps each priority lane's admission queue (default
	// 4×MaxBatch). A full lane rejects new requests with
	// ErrOverloaded instead of queueing them — the queue cap is the
	// engine's hard bound on buffered work.
	QueueLen int
	// DefaultDeadline is the per-model deadline budget applied to
	// requests whose context carries no (or a later) deadline. Zero
	// means requests without a context deadline never expire or shed
	// on budget.
	DefaultDeadline time.Duration
	// Trace, when non-nil, enables request-scoped tracing: the
	// collector decides at admission whether a request is sampled (one
	// atomic increment; unsampled requests pay two nil checks), and
	// each sampled request yields a span tree — admission → queue →
	// batch → run → per-op children — retained in the collector's ring
	// for /debug/trace or -trace-dir export.
	Trace *telemetry.TraceCollector
}

// request is one queued inference call.
type request struct {
	inputs   map[string]*tensor.Tensor
	ctx      context.Context
	resp     chan response // buffered(1): workers never block on delivery
	enq      time.Time
	deadline time.Time // zero = no budget
	lane     Priority
	probe    bool // admitted past the budget gate to refresh the EWMA

	// trace is non-nil for the sampled 1-in-N: the request's span
	// tree, with rootSpan the whole-request span and queueSpan the
	// open queue-wait span the executing worker closes at batch start.
	trace     *telemetry.Trace
	rootSpan  telemetry.SpanID
	queueSpan telemetry.SpanID
}

// endAdmission terminates a trace whose request failed admission:
// closes the admission span, marks the disposition as a zero-width
// span, and finishes the trace.
func (r *request) endAdmission(adm telemetry.SpanID, disposition string) {
	if r.trace == nil {
		return
	}
	r.trace.EndSpan(adm)
	r.trace.AddSpan(disposition, r.rootSpan, 0, time.Now(), 0)
	r.finishTrace()
}

// finishTrace closes the request's remaining open spans and hands the
// trace to the collector; safe (and a no-op) for untraced requests and
// on duplicate calls from racing exit paths.
func (r *request) finishTrace() {
	if r.trace == nil {
		return
	}
	r.trace.EndSpan(r.queueSpan)
	r.trace.EndSpan(r.rootSpan)
	r.trace.Finish()
}

type response struct {
	outputs map[string]*tensor.Tensor
	err     error
}

// finish answers the request once; a duplicate answer (panic-recovery
// sweeping a batch that was partially delivered) is dropped rather
// than blocking on the full buffer.
func (r *request) finish(out map[string]*tensor.Tensor, err error) {
	select {
	case r.resp <- response{outputs: out, err: err}:
	default:
	}
}

// Engine serves one workload's inference signature to concurrent
// callers with dynamic micro-batching over a session pool. It is the
// sanctioned concurrent entry point to the runtime: callers on any
// goroutine call Infer; sessions stay confined to their workers.
type Engine struct {
	model    core.Model
	sig      core.Signature
	fetches  []*graph.Node // sig.Outputs in fetch order, bound once
	capacity int
	maxBatch int
	maxDelay time.Duration
	deadline time.Duration // DefaultDeadline

	lanes     [numLanes]chan *request
	batches   chan []*request
	done      chan struct{}
	stopped   chan struct{} // closed when dispatcher+workers have exited
	closeOnce sync.Once

	// sessions are the worker sessions, retained so shutdown can Close
	// them — releasing each session's lease on the shared worker pool.
	sessions []*runtime.Session

	// pool is the shared worker pool the sessions lease helpers from;
	// claim is the engine's total lease claim on it (sessions ×
	// per-session helper claim). Both feed the /stats gauges and the
	// admission estimate, so engines sharing a pool shed cooperatively.
	pool      *sched.Pool
	claim     int
	leaseName string

	// lastProbeNano rations budget-gate probes: when every request
	// would shed, one per probeInterval is admitted anyway so the batch
	// EWMA keeps seeing fresh samples (see the package doc).
	lastProbeNano atomic.Int64

	// trace is the sampling trace collector (nil = tracing off).
	trace *telemetry.TraceCollector

	stats stats
}

// New builds and starts an engine for a Setup model. The model must
// implement core.Inferencer, and its inference-signature batched
// inputs must agree on their batch extent. Combine with
// core.Config.Batch to build the graph at the micro-batching window
// you want to serve.
func New(m core.Model, opts Options) (*Engine, error) {
	if m.Graph() == nil {
		return nil, fmt.Errorf("serve: model %s has no graph (call Setup first)", m.Name())
	}
	if _, ok := m.(core.Inferencer); !ok {
		return nil, fmt.Errorf("serve: workload %s does not implement core.Inferencer", m.Name())
	}
	sig := m.Signature(core.ModeInference)
	if len(sig.Inputs) == 0 || len(sig.Outputs) == 0 {
		return nil, fmt.Errorf("serve: workload %s has an empty inference signature", m.Name())
	}
	capacity := sig.BatchCapacity()
	if bc, ok := m.(core.BatchCoupled); ok && bc.BatchCoupled() && capacity > 1 {
		return nil, fmt.Errorf(
			"serve: %s couples examples across the batch (its per-example outputs depend on batch composition); serve it unbatched by building with core.Config{Batch: 1} / -maxbatch 1",
			m.Name())
	}
	for _, in := range sig.Inputs {
		if in.BatchDim == core.BatchNone {
			return nil, fmt.Errorf("serve: input %q has no batch axis; cannot micro-batch %s", in.Name, m.Name())
		}
		if in.BatchDim < 0 || in.BatchDim >= len(in.Shape()) {
			return nil, fmt.Errorf("serve: input %q batch axis %d out of range for shape %v", in.Name, in.BatchDim, in.Shape())
		}
		if got := in.Shape()[in.BatchDim]; got != capacity {
			return nil, fmt.Errorf("serve: input %q batch extent %d != capacity %d", in.Name, got, capacity)
		}
	}
	for _, out := range sig.Outputs {
		if out.BatchDim == core.BatchNone {
			continue // whole-batch scalars are never unbatched
		}
		if out.BatchDim < 0 || out.BatchDim >= len(out.Shape()) {
			return nil, fmt.Errorf("serve: output %q batch axis %d out of range for shape %v", out.Name, out.BatchDim, out.Shape())
		}
		if got := out.Shape()[out.BatchDim]; got != capacity {
			return nil, fmt.Errorf("serve: output %q batch extent %d != capacity %d", out.Name, got, capacity)
		}
	}
	if opts.Sessions <= 0 {
		opts.Sessions = 1
	}
	if opts.MaxBatch <= 0 || opts.MaxBatch > capacity {
		opts.MaxBatch = capacity
	}
	if opts.MaxDelay <= 0 {
		opts.MaxDelay = 2 * time.Millisecond
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	if opts.QueueLen <= 0 {
		opts.QueueLen = 4 * opts.MaxBatch
	}
	e := &Engine{
		model:    m,
		sig:      sig,
		capacity: capacity,
		maxBatch: opts.MaxBatch,
		maxDelay: opts.MaxDelay,
		deadline: opts.DefaultDeadline,
		batches:  make(chan []*request),
		done:     make(chan struct{}),
		stopped:  make(chan struct{}),
	}
	for lane := range e.lanes {
		e.lanes[lane] = make(chan *request, opts.QueueLen)
	}
	for _, out := range sig.Outputs {
		e.fetches = append(e.fetches, out.Node)
	}
	e.pool = opts.WorkerPool
	if e.pool == nil {
		e.pool = sched.Default()
	}
	interOp, intraOp := opts.InterOpWorkers, opts.IntraOpWorkers
	if interOp < 1 {
		interOp = 1
	}
	if intraOp < 1 {
		intraOp = 1
	}
	e.claim = opts.Sessions * (interOp*intraOp - 1)
	e.leaseName = "engine/" + m.Name()
	e.trace = opts.Trace
	e.stats.reset()
	var workers sync.WaitGroup
	for i := 0; i < opts.Sessions; i++ {
		sessOpts := []runtime.Option{
			runtime.WithSeed(opts.Seed + int64(i)),
			runtime.WithLeaseName(e.leaseName),
		}
		if opts.Device != nil {
			sessOpts = append(sessOpts, runtime.WithDevice(opts.Device))
		}
		if opts.InterOpWorkers > 1 {
			sessOpts = append(sessOpts, runtime.WithInterOpWorkers(opts.InterOpWorkers))
		}
		if opts.IntraOpWorkers > 1 {
			sessOpts = append(sessOpts, runtime.WithIntraOpWorkers(opts.IntraOpWorkers))
		}
		if opts.WorkerPool != nil {
			sessOpts = append(sessOpts, runtime.WithWorkerPool(opts.WorkerPool))
		}
		sess := runtime.NewSession(m.Graph(), sessOpts...)
		e.sessions = append(e.sessions, sess)
		ws := newWorkerState(e, sess)
		workers.Add(1)
		go func() {
			defer workers.Done()
			for batch := range e.batches {
				e.runBatch(ws, batch)
			}
		}()
	}
	go func() {
		e.dispatch()
		workers.Wait() // workers finish the already-dispatched batches
		for _, sess := range e.sessions {
			sess.Close() // release each session's shared-pool lease
		}
		close(e.stopped)
	}()
	return e, nil
}

// Model returns the served workload.
func (e *Engine) Model() core.Model { return e.model }

// Signature returns the served inference signature.
func (e *Engine) Signature() core.Signature { return e.sig }

// MaxBatch returns the effective micro-batch cap.
func (e *Engine) MaxBatch() int { return e.maxBatch }

// DefaultDeadline returns the engine's per-request deadline budget
// (zero when unset).
func (e *Engine) DefaultDeadline() time.Duration { return e.deadline }

// requestDeadline resolves a request's deadline: the earlier of the
// context's deadline and now + DefaultDeadline. Zero means none.
func (e *Engine) requestDeadline(ctx context.Context, now time.Time) time.Time {
	dl, ok := ctx.Deadline()
	if e.deadline > 0 {
		if own := now.Add(e.deadline); !ok || own.Before(dl) {
			return own
		}
	}
	if !ok {
		return time.Time{}
	}
	return dl
}

// estimatedWait predicts how long a request admitted to lane now would
// wait before its batch completes: queued-batches-ahead × the EWMA
// batch latency, plus one execution. Interactive requests only wait on
// interactive traffic (the dispatcher serves that lane first); batch
// requests wait on everything. When the shared worker pool is
// saturated — every engine on it is executing, helpers degrade to
// serial — the estimate doubles, which is how co-tenant engines shed
// cooperatively. A cold engine (no batch measured yet) predicts zero.
func (e *Engine) estimatedWait(lane Priority) time.Duration {
	ew := e.stats.batchEWMA()
	if ew <= 0 {
		return 0
	}
	depth := int(e.stats.qdepth[PriorityInteractive].Load())
	if lane == PriorityBatch {
		depth += int(e.stats.qdepth[PriorityBatch].Load())
	}
	est := time.Duration(depth/e.maxBatch+1) * ew
	if e.pool.Size() > 0 && e.pool.Busy() >= e.pool.Size() {
		est *= 2
	}
	return est
}

// Infer submits one single-example request on the interactive lane and
// blocks until its result, the context's cancellation, or engine
// shutdown. Inputs are keyed by signature input name; each tensor must
// have the input's ExampleShape (the placeholder shape with the batch
// axis removed). Infer takes ownership of the input tensors: a worker
// may still be packing them after a cancelled return, so the caller
// must not mutate or reuse them afterwards (pass fresh tensors per
// call, as the HTTP layer does). Outputs are the signature's batched
// outputs, one example each; whole-batch scalar outputs (losses) are
// omitted. Infer is safe for concurrent use from any number of
// goroutines.
//
// Infer never queues unboundedly: when the lane's admission queue is
// full, or the request's deadline budget cannot cover the estimated
// queue + execution time, it fails fast with ErrOverloaded; a request
// whose deadline has already passed fails with ErrExpired.
func (e *Engine) Infer(ctx context.Context, inputs map[string]*tensor.Tensor) (map[string]*tensor.Tensor, error) {
	return e.InferPriority(ctx, inputs, PriorityInteractive)
}

// InferPriority is Infer on an explicit admission lane. Batch-lane
// requests are dispatched only when the interactive lane is empty and
// are shed first under overload.
func (e *Engine) InferPriority(ctx context.Context, inputs map[string]*tensor.Tensor, lane Priority) (map[string]*tensor.Tensor, error) {
	if lane >= numLanes {
		return nil, inputErrorf("serve: unknown priority %d", lane)
	}
	for _, in := range e.sig.Inputs {
		t, ok := inputs[in.Name]
		if !ok || t == nil {
			return nil, inputErrorf("serve: missing input %q (want %v)", in.Name, e.sig.InputNames())
		}
		want := in.ExampleShape()
		if !tensor.SameShape(t.Shape(), want) {
			return nil, inputErrorf("serve: input %q has shape %v, want example shape %v", in.Name, t.Shape(), want)
		}
	}
	if len(inputs) > len(e.sig.Inputs) {
		for name := range inputs {
			if _, ok := e.sig.Input(name); !ok {
				return nil, inputErrorf("serve: unknown input %q (want %v)", name, e.sig.InputNames())
			}
		}
	}
	now := time.Now()
	r := &request{
		inputs:   inputs,
		ctx:      ctx,
		resp:     make(chan response, 1),
		enq:      now,
		deadline: e.requestDeadline(ctx, now),
		lane:     lane,
	}
	// Trace sampling is decided here, once per request: either an
	// outer layer (HTTP admission) already minted a trace into the
	// context, or — for direct engine callers — the collector draws a
	// fresh 1-in-N sample. Unsampled requests pay only nil checks.
	if tr := telemetry.TraceFrom(ctx); tr != nil {
		r.trace = tr
	} else if e.trace != nil && !telemetry.TraceDecided(ctx) && e.trace.Sample() {
		r.trace = e.trace.New(e.model.Name())
	}
	var admSpan telemetry.SpanID
	if r.trace != nil {
		r.rootSpan = r.trace.StartSpanAt("request", 0, now)
		admSpan = r.trace.StartSpanAt("admission", r.rootSpan, now)
	}
	// Admission control, cheapest checks first: an already-dead
	// deadline, then the budget-vs-estimate shed, then the bounded
	// queue. All three fail fast — the caller never blocks to learn
	// the engine is overloaded.
	if !r.deadline.IsZero() {
		if !now.Before(r.deadline) {
			e.stats.expired.Add(1)
			r.endAdmission(admSpan, "expired")
			return nil, ErrExpired
		}
		if est := e.estimatedWait(lane); est > 0 && now.Add(est).After(r.deadline) {
			if !e.tryProbe(now) {
				e.stats.shed.Add(1)
				r.endAdmission(admSpan, "shed")
				return nil, ErrOverloaded
			}
			r.probe = true
		}
	}
	if r.trace != nil {
		// The queue span must exist before the request is published to
		// the lane channel: the batch worker closes it the moment it
		// picks the request up, and the send below is the only
		// happens-before edge between this goroutine and that worker.
		// On a failed send the disposition span records the outcome and
		// the never-waited queue span closes at ~zero duration.
		r.trace.EndSpan(admSpan)
		r.queueSpan = r.trace.StartSpan("queue", r.rootSpan)
	}
	select {
	case e.lanes[lane] <- r:
		e.stats.qdepth[lane].Add(1)
	case <-e.done:
		r.endAdmission(admSpan, "closed")
		return nil, ErrClosed
	case <-ctx.Done():
		r.endAdmission(admSpan, "cancelled")
		return nil, ctx.Err()
	default:
		// Lane queue full: reject early rather than queue unboundedly.
		e.stats.rejected.Add(1)
		r.endAdmission(admSpan, "rejected")
		return nil, ErrOverloaded
	}
	if r.trace != nil {
		defer r.finishTrace()
	}
	var resp response
	select {
	case resp = <-r.resp:
	case <-ctx.Done():
		// The batch may still execute; the buffered resp channel lets
		// the worker complete without us.
		e.stats.cancels.Add(1)
		return nil, ctx.Err()
	case <-e.stopped:
		// Dispatcher and workers have exited, so nothing will answer —
		// unless a response raced in just before shutdown. (The submit
		// select may legitimately enqueue concurrently with Close: the
		// buffered reqs send and the closed done channel are both
		// ready, and select picks either.)
		select {
		case resp = <-r.resp:
		default:
			e.stats.cancels.Add(1)
			return nil, ErrClosed
		}
	}
	if resp.err != nil {
		switch {
		case errors.Is(resp.err, ErrOverloaded) || errors.Is(resp.err, ErrExpired):
			// Shed/expired dispositions were counted where they were
			// decided (dispatcher or worker) — not engine faults.
		case errors.Is(resp.err, context.Canceled) || errors.Is(resp.err, context.DeadlineExceeded) || errors.Is(resp.err, ErrClosed):
			// Caller-side aborts (the dispatcher or a worker observed
			// the request's context already cancelled) are not engine
			// faults either.
			e.stats.cancels.Add(1)
		default:
			e.stats.errors.Add(1)
		}
		return nil, resp.err
	}
	e.stats.record(lane, time.Since(r.enq))
	return resp.outputs, nil
}

// Close stops accepting requests, fails queued ones with ErrClosed,
// and waits for in-flight batches to finish.
func (e *Engine) Close() {
	e.closeOnce.Do(func() { close(e.done) })
	<-e.stopped
}

// Stats returns a snapshot of the engine's counters, plus the shared
// worker pool's busy/spawned gauges and the engine's lease claim on it
// — the load signals the admission estimate and any shedding layer in
// front of /stats key off: when PoolBusy sits at PoolSize, every
// engine on the pool is executing degraded (serial) and added load
// only queues.
func (e *Engine) Stats() Stats {
	s := e.stats.snapshot()
	s.PoolSize = e.pool.Size()
	s.PoolBusy = e.pool.Busy()
	s.PoolSpawned = e.pool.Spawned()
	s.LeaseClaim = e.claim
	// Arena utilization summed over the worker sessions' plan arenas
	// (Arena.Stats is the one concurrency-safe arena read).
	var gets int
	for _, sess := range e.sessions {
		as := sess.Arena().Stats()
		s.ArenaLiveBuffers += as.LiveBuffers
		s.ArenaTotalBuffers += as.TotalBuffers
		s.ArenaBytes += as.TotalBytes
		s.ArenaReuses += as.Reuses
		gets += as.Reuses + as.TotalBuffers
	}
	if gets > 0 {
		s.ArenaReuseRatio = float64(s.ArenaReuses) / float64(gets)
	}
	// Per-tenant adaptive grants: every lease on the shared pool,
	// aggregated by tenant name — the engine's own sessions appear as
	// "engine/<model>" next to any co-resident dist trainer
	// ("dist/<model>") or fused array ("fuse/<model>"). LeaseGranted is
	// this engine's slice: what the occupancy negotiation currently
	// grants it, as opposed to the static claim it asked for.
	for _, ls := range e.pool.LeaseStats() {
		if ls.Name == e.leaseName {
			s.LeaseGranted += ls.Granted
		}
		i := 0
		for ; i < len(s.Tenants); i++ {
			if s.Tenants[i].Name == ls.Name {
				break
			}
		}
		if i == len(s.Tenants) {
			s.Tenants = append(s.Tenants, TenantStats{Name: ls.Name})
		}
		s.Tenants[i].Leases++
		s.Tenants[i].Want += ls.Want
		s.Tenants[i].Granted += ls.Granted
		s.Tenants[i].Active += ls.Active
	}
	return s
}

// ResetStats zeroes the counters and restarts the uptime clock —
// e.g. after warmup, so steady-state metrics exclude one-time plan
// compilation. The queue-depth gauges and latency EWMAs survive: they
// describe the engine's current state, not its history.
func (e *Engine) ResetStats() { e.stats.zero() }

// probeInterval rations the budget-gate probe admissions that keep the
// batch EWMA self-healing when everything else sheds.
const probeInterval = 100 * time.Millisecond

// tryProbe claims the probe slot if one is due (CAS so concurrent
// shedding callers admit at most one per interval).
func (e *Engine) tryProbe(now time.Time) bool {
	last := e.lastProbeNano.Load()
	return now.UnixNano()-last >= int64(probeInterval) &&
		e.lastProbeNano.CompareAndSwap(last, now.UnixNano())
}

// admit decides one dequeued request's fate at dispatch time: drop it
// if its context is done or its deadline has passed (it must never
// occupy a batch slot), shed it if the remaining budget cannot cover
// even one batch execution (probes are exempt — their job is to reach
// execution and refresh the estimate). Reports whether the request may
// join a batch.
func (e *Engine) admit(r *request, now time.Time) bool {
	if err := r.ctx.Err(); err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			e.stats.expired.Add(1)
			r.finish(nil, ErrExpired)
		} else {
			r.finish(nil, err)
		}
		return false
	}
	if !r.deadline.IsZero() {
		if !now.Before(r.deadline) {
			e.stats.expired.Add(1)
			r.finish(nil, ErrExpired)
			return false
		}
		if ew := e.stats.batchEWMA(); !r.probe && ew > 0 && now.Add(ew).After(r.deadline) {
			e.stats.shed.Add(1)
			r.finish(nil, ErrOverloaded)
			return false
		}
	}
	return true
}

// tryNext dequeues the next request without blocking, always draining
// the interactive lane before the batch lane — the priority rule.
func (e *Engine) tryNext() *request {
	select {
	case r := <-e.lanes[PriorityInteractive]:
		e.stats.qdepth[PriorityInteractive].Add(-1)
		return r
	default:
	}
	select {
	case r := <-e.lanes[PriorityBatch]:
		e.stats.qdepth[PriorityBatch].Add(-1)
		return r
	default:
	}
	return nil
}

// next blocks for the first request of a batch; nil means shutdown.
func (e *Engine) next() *request {
	if r := e.tryNext(); r != nil {
		return r
	}
	select {
	case r := <-e.lanes[PriorityInteractive]:
		e.stats.qdepth[PriorityInteractive].Add(-1)
		return r
	case r := <-e.lanes[PriorityBatch]:
		e.stats.qdepth[PriorityBatch].Add(-1)
		return r
	case <-e.done:
		return nil
	}
}

// testHookDispatch, when non-nil, runs at the top of every dispatch
// iteration. Tests install it before New — and clear it only after
// Close has joined the dispatch loop — to stall dequeueing while they
// build a deterministic backlog.
var testHookDispatch func()

// dispatch is the micro-batching loop: take the first pending request,
// then collect more until the batch is full or MaxDelay elapses.
// Every dequeue goes through admit, so cancelled, expired, and
// unserviceable requests are dropped here — they never occupy a batch
// slot or skew the batch-fill stats.
func (e *Engine) dispatch() {
	defer close(e.batches)
	for {
		if h := testHookDispatch; h != nil {
			h()
		}
		first := e.next()
		if first == nil {
			e.drain()
			return
		}
		if !e.admit(first, time.Now()) {
			continue
		}
		batch := []*request{first}
		if len(batch) < e.maxBatch { // MaxBatch 1 never waits
			timer := time.NewTimer(e.maxDelay)
		collect:
			for len(batch) < e.maxBatch {
				if r := e.tryNext(); r != nil {
					if e.admit(r, time.Now()) {
						batch = append(batch, r)
					}
					continue
				}
				select {
				case r := <-e.lanes[PriorityInteractive]:
					e.stats.qdepth[PriorityInteractive].Add(-1)
					if e.admit(r, time.Now()) {
						batch = append(batch, r)
					}
				case r := <-e.lanes[PriorityBatch]:
					e.stats.qdepth[PriorityBatch].Add(-1)
					if e.admit(r, time.Now()) {
						batch = append(batch, r)
					}
				case <-timer.C:
					break collect
				case <-e.done:
					break collect
				}
			}
			timer.Stop()
		}
		// Hand off. While every worker is busy, keep topping the batch
		// up to MaxBatch — queue wait converts into batch fill instead
		// of under-filled runs.
		sent := false
		for !sent && len(batch) < e.maxBatch {
			if r := e.tryNext(); r != nil {
				if e.admit(r, time.Now()) {
					batch = append(batch, r)
				}
				continue
			}
			select {
			case e.batches <- batch:
				sent = true
			case r := <-e.lanes[PriorityInteractive]:
				e.stats.qdepth[PriorityInteractive].Add(-1)
				if e.admit(r, time.Now()) {
					batch = append(batch, r)
				}
			case r := <-e.lanes[PriorityBatch]:
				e.stats.qdepth[PriorityBatch].Add(-1)
				if e.admit(r, time.Now()) {
					batch = append(batch, r)
				}
			case <-e.done:
				e.batches <- batch
				e.drain()
				return
			}
		}
		if !sent {
			e.batches <- batch
		}
		select {
		case <-e.done:
			e.drain()
			return
		default:
		}
	}
}

// drain fails every still-queued request after shutdown.
func (e *Engine) drain() {
	for lane := range e.lanes {
	laneDrain:
		for {
			select {
			case r := <-e.lanes[lane]:
				e.stats.qdepth[lane].Add(-1)
				r.finish(nil, ErrClosed)
			default:
				break laneDrain
			}
		}
	}
}

// workerState is one worker's execution kit, built once: its session
// (inference mode), reusable full-batch input buffers (parallel to
// sig.Inputs), and the feeds map binding those buffers to their
// placeholders. Per batch, the steady-state path allocates only the
// per-request output examples.
type workerState struct {
	sess   *runtime.Session
	packed []*tensor.Tensor
	feeds  runtime.Feeds
}

func newWorkerState(e *Engine, sess *runtime.Session) *workerState {
	sess.SetTraining(false)
	ws := &workerState{sess: sess, feeds: make(runtime.Feeds, len(e.sig.Inputs))}
	for _, in := range e.sig.Inputs {
		buf := tensor.New(in.Shape()...)
		ws.packed = append(ws.packed, buf)
		ws.feeds[in.Node] = buf
	}
	return ws
}

// attachRunSpans replicates one executed batch's span subtree — batch
// → run → per-op events — into every traced request it served. A
// batch rarely carries more than one sampled request, so the
// duplication is cheap; each trace stays self-contained. Op spans land
// on lane 1+Event.Worker, so a traced request renders its inter-op
// parallelism; request-level spans stay on lane 0.
func attachRunSpans(traced []*request, batchStart, runStart time.Time, runDur time.Duration, events []runtime.Event) {
	batchDur := time.Since(batchStart)
	for _, r := range traced {
		bs := r.trace.AddSpan("batch", r.rootSpan, 0, batchStart, batchDur)
		rs := r.trace.AddSpan("run", bs, 0, runStart, runDur)
		for i := range events {
			ev := &events[i]
			r.trace.AddSpan(ev.Op, rs, 1+ev.Worker, ev.WallStart, ev.Wall)
		}
	}
}

// runBatch executes one micro-batch on a worker, packing requests into
// the worker's input buffers and running the signature's fetch set
// directly (the same execution the workload's Inferencer performs). A
// panic out of graph execution fails the batch's requests instead of
// killing the worker (and with it the process).
func (e *Engine) runBatch(ws *workerState, batch []*request) {
	var live []*request
	defer func() {
		if p := recover(); p != nil {
			for _, r := range live {
				r.finish(nil, fmt.Errorf("serve: %s: panic during batch execution: %v", e.model.Name(), p))
			}
		}
	}()
	start := time.Now()
	live = batch[:0]
	var traced []*request
	for _, r := range batch {
		// Last gate before a slot is spent: requests that died between
		// dispatch and execution are skipped so they never skew fill.
		if err := r.ctx.Err(); err != nil {
			if errors.Is(err, context.DeadlineExceeded) {
				e.stats.expired.Add(1)
				r.finish(nil, ErrExpired)
			} else {
				r.finish(nil, err)
			}
			continue
		}
		if !r.deadline.IsZero() && !start.Before(r.deadline) {
			e.stats.expired.Add(1)
			r.finish(nil, ErrExpired)
			continue
		}
		live = append(live, r)
		e.stats.recordWait(start.Sub(r.enq))
		if r.trace != nil {
			r.trace.EndSpanAt(r.queueSpan, start)
			traced = append(traced, r)
		}
	}
	if len(live) == 0 {
		return
	}
	for ii, in := range e.sig.Inputs {
		buf := ws.packed[ii]
		for i, r := range live {
			putExample(buf, in.BatchDim, i, r.inputs[in.Name])
		}
		// Slots past the fill keep stale rows from earlier batches;
		// zero just that tail (a full batch clears nothing).
		clearTail(buf, in.BatchDim, len(live))
	}
	// The traced path — only when this batch carries a sampled request
	// — runs with one-shot event capture so each traced request's span
	// tree gets the run's per-op events as children.
	var vals []*tensor.Tensor
	var err error
	if len(traced) > 0 {
		runStart := time.Now()
		var events []runtime.Event
		vals, events, err = ws.sess.RunTraced(e.fetches, ws.feeds)
		attachRunSpans(traced, start, runStart, time.Since(runStart), events)
	} else {
		vals, err = ws.sess.Run(e.fetches, ws.feeds)
	}
	e.stats.recordBatchExec(time.Since(start))
	if err != nil {
		for _, r := range live {
			r.finish(nil, fmt.Errorf("serve: %s: %w", e.model.Name(), err))
		}
		return
	}
	e.stats.recordBatch(len(live))
	for i, r := range live {
		result := make(map[string]*tensor.Tensor, len(e.sig.Outputs))
		for oi, out := range e.sig.Outputs {
			if out.BatchDim == core.BatchNone {
				continue // whole-batch scalars are not per-request
			}
			result[out.Name] = getExample(vals[oi], out.BatchDim, i)
		}
		r.finish(result, nil)
	}
}
