package serve

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/tensor"
)

// Examples draws n single-example input sets for m's inference
// signature by splitting batches from the workload's synthetic
// dataset (core.Sampler) along each input's batch axis. It is the
// standard way to feed Engine.Infer outside an HTTP client — the load
// harness and benchmarks both use it.
func Examples(m core.Model, n int) ([]map[string]*tensor.Tensor, error) {
	smp, ok := m.(core.Sampler)
	if !ok {
		return nil, fmt.Errorf("serve: workload %s does not implement core.Sampler", m.Name())
	}
	sig := m.Signature(core.ModeInference)
	if len(sig.Inputs) == 0 {
		return nil, fmt.Errorf("serve: workload %s has an empty inference signature", m.Name())
	}
	cap := sig.BatchCapacity()
	if cap < 1 {
		return nil, fmt.Errorf("serve: workload %s has batch capacity %d", m.Name(), cap)
	}
	out := make([]map[string]*tensor.Tensor, 0, n)
	for len(out) < n {
		batch := smp.Sample()
		for i := 0; i < cap && len(out) < n; i++ {
			ex := make(map[string]*tensor.Tensor, len(sig.Inputs))
			for _, in := range sig.Inputs {
				t, ok := batch[in.Name]
				if !ok {
					return nil, fmt.Errorf("serve: %s sample misses input %q", m.Name(), in.Name)
				}
				ex[in.Name] = getExample(t, in.BatchDim, i)
			}
			out = append(out, ex)
		}
	}
	return out, nil
}

// Tensors are dense row-major, so a batched tensor viewed around its
// batch axis dim factors into outer × n × inner scalars: `outer` blocks
// (the dimensions before dim), `n` examples, and `inner` contiguous
// scalars per example per block. One example is the strided selection
// [o, i, :] for every o — these two helpers copy it in and out.

func axisFactors(shape []int, dim int) (outer, n, inner int) {
	outer, inner = 1, 1
	for _, d := range shape[:dim] {
		outer *= d
	}
	n = shape[dim]
	for _, d := range shape[dim+1:] {
		inner *= d
	}
	return outer, n, inner
}

// putExample copies example-shaped ex into position i of dst's batch
// axis dim.
func putExample(dst *tensor.Tensor, dim, i int, ex *tensor.Tensor) {
	outer, n, inner := axisFactors(dst.Shape(), dim)
	dd, ed := dst.Data(), ex.Data()
	for o := 0; o < outer; o++ {
		copy(dd[(o*n+i)*inner:(o*n+i+1)*inner], ed[o*inner:(o+1)*inner])
	}
}

// clearTail zeroes examples [from, n) along t's batch axis dim.
func clearTail(t *tensor.Tensor, dim, from int) {
	outer, n, inner := axisFactors(t.Shape(), dim)
	if from >= n {
		return
	}
	td := t.Data()
	for o := 0; o < outer; o++ {
		tail := td[(o*n+from)*inner : (o+1)*n*inner]
		for i := range tail {
			tail[i] = 0
		}
	}
}

// getExample extracts example i along src's batch axis dim into a
// freshly allocated example-shaped tensor.
func getExample(src *tensor.Tensor, dim, i int) *tensor.Tensor {
	shape := src.Shape()
	exShape := make([]int, 0, len(shape)-1)
	for d, v := range shape {
		if d != dim {
			exShape = append(exShape, v)
		}
	}
	out := tensor.New(exShape...)
	outer, n, inner := axisFactors(shape, dim)
	sd, od := src.Data(), out.Data()
	for o := 0; o < outer; o++ {
		copy(od[o*inner:(o+1)*inner], sd[(o*n+i)*inner:(o*n+i+1)*inner])
	}
	return out
}
