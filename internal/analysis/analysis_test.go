package analysis

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestCosineDistanceBasics(t *testing.T) {
	a := []float64{1, 0, 0}
	b := []float64{0, 1, 0}
	if d := CosineDistance(a, a); d > 1e-12 {
		t.Fatalf("self distance = %v", d)
	}
	if d := CosineDistance(a, b); math.Abs(d-1) > 1e-12 {
		t.Fatalf("orthogonal distance = %v, want 1", d)
	}
	c := []float64{2, 0, 0}
	if d := CosineDistance(a, c); d > 1e-12 {
		t.Fatalf("scale invariance violated: %v", d)
	}
	z := []float64{0, 0, 0}
	if d := CosineDistance(a, z); d != 1 {
		t.Fatalf("zero vector distance = %v, want 1", d)
	}
}

func TestCosineDistanceDimMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	CosineDistance([]float64{1}, []float64{1, 2})
}

// Properties: symmetry, range [0, 2] (non-negative inputs ⇒ [0, 1]).
func TestCosineDistancePropertiesQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(n0 uint8) bool {
		n := int(n0%8) + 1
		a := make([]float64, n)
		b := make([]float64, n)
		for i := range a {
			a[i] = rng.Float64()
			b[i] = rng.Float64()
		}
		d1 := CosineDistance(a, b)
		d2 := CosineDistance(b, a)
		return math.Abs(d1-d2) < 1e-12 && d1 >= 0 && d1 <= 1+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestAgglomerateMergesClosestFirst(t *testing.T) {
	// Three vectors: v0 and v1 nearly parallel, v2 orthogonal.
	vectors := [][]float64{
		{1, 0.02},
		{1, 0.01},
		{0, 1},
	}
	merges := Agglomerate(vectors)
	if len(merges) != 2 {
		t.Fatalf("3 clusters need 2 merges, got %d", len(merges))
	}
	first := merges[0]
	if !((first.A == 0 && first.B == 1) || (first.A == 1 && first.B == 0)) {
		t.Fatalf("first merge should join 0 and 1, got %+v", first)
	}
	if merges[0].Dist > merges[1].Dist {
		t.Fatal("merge distances should be non-decreasing here")
	}
}

func TestAgglomerateEdgeCases(t *testing.T) {
	if m := Agglomerate(nil); m != nil {
		t.Fatal("empty input should produce no merges")
	}
	if m := Agglomerate([][]float64{{1, 2}}); len(m) != 0 {
		t.Fatal("single vector should produce no merges")
	}
}

func TestDistanceMatrixSymmetric(t *testing.T) {
	vectors := [][]float64{{1, 0}, {0.5, 0.5}, {0, 1}}
	m := DistanceMatrix(vectors)
	for i := range m {
		if m[i][i] != 0 {
			t.Fatal("diagonal must be zero")
		}
		for j := range m {
			if math.Abs(m[i][j]-m[j][i]) > 1e-12 {
				t.Fatal("matrix must be symmetric")
			}
		}
	}
}

func TestRenderDendrogramContainsAllLabels(t *testing.T) {
	labels := []string{"alexnet", "vgg", "residual", "speech"}
	vectors := [][]float64{
		{0.9, 0.1, 0, 0},
		{0.85, 0.15, 0, 0},
		{0.8, 0.2, 0, 0},
		{0, 0, 1, 0},
	}
	merges := Agglomerate(vectors)
	out := RenderDendrogram(labels, merges, 60)
	for _, l := range labels {
		if !strings.Contains(out, l) {
			t.Fatalf("dendrogram missing label %q:\n%s", l, out)
		}
	}
	if !strings.Contains(out, "+") || !strings.Contains(out, "|") {
		t.Fatalf("dendrogram should contain merge brackets:\n%s", out)
	}
	// The three similar conv-net profiles should be adjacent lines
	// (speech first or last).
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	dataLines := lines[:4]
	speechRow := -1
	for i, l := range dataLines {
		if strings.Contains(l, "speech") {
			speechRow = i
		}
	}
	if speechRow != 0 && speechRow != 3 {
		t.Fatalf("outlier should sit at an edge of the dendrogram:\n%s", out)
	}
}

func TestRenderDendrogramSingleLabel(t *testing.T) {
	out := RenderDendrogram([]string{"only"}, nil, 40)
	if !strings.Contains(out, "only") {
		t.Fatal("single-label dendrogram")
	}
}

func TestSortedPairs(t *testing.T) {
	labels := []string{"a", "b", "c"}
	vectors := [][]float64{{1, 0}, {1, 0.1}, {0, 1}}
	ps := SortedPairs(labels, vectors)
	if len(ps) != 3 {
		t.Fatalf("3 pairs expected, got %d", len(ps))
	}
	if !strings.Contains(ps[0], "a") || !strings.Contains(ps[0], "b") {
		t.Fatalf("closest pair should be a↔b: %v", ps)
	}
}
