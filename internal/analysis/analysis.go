// Package analysis implements the workload-similarity machinery of the
// paper's Figure 4: cosine distance between op-type profiles and
// agglomerative clustering with centroidal linkage, rendered as an
// ASCII dendrogram.
package analysis

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// CosineDistance returns 1 − (a·b)/(|a||b|): the paper's profile
// distance metric. Zero vectors are at distance 1 from everything.
func CosineDistance(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("analysis: CosineDistance dimension mismatch")
	}
	var dot, na, nb float64
	for i := range a {
		dot += a[i] * b[i]
		na += a[i] * a[i]
		nb += b[i] * b[i]
	}
	if na == 0 || nb == 0 {
		return 1
	}
	d := 1 - dot/(math.Sqrt(na)*math.Sqrt(nb))
	if d < 0 {
		d = 0 // numerical noise
	}
	return d
}

// Merge records one step of agglomerative clustering. Cluster ids 0..n-1
// are the input vectors; merge i creates cluster n+i from A and B.
type Merge struct {
	A, B int
	Dist float64
}

// Agglomerate clusters vectors bottom-up with centroidal linkage:
// repeatedly merge the two closest clusters (by cosine distance
// between centroids) and replace them with their centroid.
func Agglomerate(vectors [][]float64) []Merge {
	n := len(vectors)
	if n == 0 {
		return nil
	}
	type cluster struct {
		id       int
		centroid []float64
		size     int
	}
	active := make([]cluster, 0, n)
	for i, v := range vectors {
		c := make([]float64, len(v))
		copy(c, v)
		active = append(active, cluster{id: i, centroid: c, size: 1})
	}
	var merges []Merge
	next := n
	for len(active) > 1 {
		bi, bj := -1, -1
		best := math.Inf(1)
		for i := 0; i < len(active); i++ {
			for j := i + 1; j < len(active); j++ {
				d := CosineDistance(active[i].centroid, active[j].centroid)
				if d < best {
					best, bi, bj = d, i, j
				}
			}
		}
		a, b := active[bi], active[bj]
		// Weighted centroid of the merged cluster.
		cen := make([]float64, len(a.centroid))
		for k := range cen {
			cen[k] = (a.centroid[k]*float64(a.size) + b.centroid[k]*float64(b.size)) / float64(a.size+b.size)
		}
		merges = append(merges, Merge{A: a.id, B: b.id, Dist: best})
		// Remove j first (higher index), then i.
		active = append(active[:bj], active[bj+1:]...)
		active = append(active[:bi], active[bi+1:]...)
		active = append(active, cluster{id: next, centroid: cen, size: a.size + b.size})
		next++
	}
	return merges
}

// DistanceMatrix returns the pairwise cosine distances.
func DistanceMatrix(vectors [][]float64) [][]float64 {
	n := len(vectors)
	m := make([][]float64, n)
	for i := range m {
		m[i] = make([]float64, n)
		for j := range m[i] {
			if i != j {
				m[i][j] = CosineDistance(vectors[i], vectors[j])
			}
		}
	}
	return m
}

// dendroNode is a cluster in the rendered tree.
type dendroNode struct {
	label  string
	dist   float64 // merge height (0 for leaves)
	leaves []int   // original indices, in display order
	left   *dendroNode
	right  *dendroNode
}

// buildTree reconstructs the merge tree.
func buildTree(labels []string, merges []Merge) *dendroNode {
	nodes := map[int]*dendroNode{}
	for i, l := range labels {
		nodes[i] = &dendroNode{label: l, leaves: []int{i}}
	}
	next := len(labels)
	var root *dendroNode
	for _, m := range merges {
		a, b := nodes[m.A], nodes[m.B]
		nd := &dendroNode{dist: m.Dist, left: a, right: b,
			leaves: append(append([]int{}, a.leaves...), b.leaves...)}
		nodes[next] = nd
		root = nd
		next++
	}
	return root
}

// RenderDendrogram draws the clustering as ASCII art, one leaf per
// line, with merge brackets placed proportionally to cosine distance —
// a textual Figure 4. maxWidth is the drawing width in columns
// (minimum 20).
func RenderDendrogram(labels []string, merges []Merge, maxWidth int) string {
	if len(labels) == 0 {
		return ""
	}
	if maxWidth < 20 {
		maxWidth = 20
	}
	if len(labels) == 1 {
		return labels[0] + "\n"
	}
	root := buildTree(labels, merges)
	maxDist := 0.0
	for _, m := range merges {
		if m.Dist > maxDist {
			maxDist = m.Dist
		}
	}
	if maxDist == 0 {
		maxDist = 1
	}
	labelW := 0
	for _, l := range labels {
		if len(l) > labelW {
			labelW = len(l)
		}
	}
	plotW := maxWidth - labelW - 2
	if plotW < 10 {
		plotW = 10
	}
	col := func(d float64) int {
		c := int(d / maxDist * float64(plotW-1))
		if c < 0 {
			c = 0
		}
		if c >= plotW {
			c = plotW - 1
		}
		return c
	}
	// Leaf order from the tree (keeps merged items adjacent).
	order := root.leaves
	rowOf := map[int]int{}
	for r, leaf := range order {
		rowOf[leaf] = r
	}
	rows := len(order)
	grid := make([][]byte, rows)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", plotW))
	}
	// Recursive drawing: each node occupies the rows of its leaves;
	// returns the row where its horizontal connector lives.
	var draw func(n *dendroNode) (row int, x int)
	draw = func(n *dendroNode) (int, int) {
		if n.left == nil {
			return rowOf[n.leaves[0]], 0
		}
		lr, lx := draw(n.left)
		rr, rx := draw(n.right)
		x := col(n.dist)
		if x <= lx {
			x = lx + 1
		}
		if x <= rx {
			x = rx + 1
		}
		if x >= plotW {
			x = plotW - 1
		}
		// Horizontal lines from child connectors to this merge column,
		// never overwriting existing brackets.
		for c := lx + 1; c < x; c++ {
			if grid[lr][c] == ' ' {
				grid[lr][c] = '-'
			}
		}
		for c := rx + 1; c < x; c++ {
			if grid[rr][c] == ' ' {
				grid[rr][c] = '-'
			}
		}
		// Vertical line joining the two children at column x.
		top, bot := lr, rr
		if top > bot {
			top, bot = bot, top
		}
		for r := top; r <= bot; r++ {
			if grid[r][x] == ' ' {
				grid[r][x] = '|'
			}
		}
		grid[lr][x] = '+'
		grid[rr][x] = '+'
		// The connector row of this cluster is the midpoint of its
		// leaf span, which keeps verticals visible in deeper trees.
		row := (rowOf[n.leaves[0]] + rowOf[n.leaves[len(n.leaves)-1]]) / 2
		return row, x
	}
	draw(root)
	var b strings.Builder
	for r, leaf := range order {
		fmt.Fprintf(&b, "%-*s %s\n", labelW, labels[leaf], string(grid[r]))
	}
	// Distance scale.
	fmt.Fprintf(&b, "%-*s %s\n", labelW, "", scaleLine(plotW, maxDist))
	return b.String()
}

func scaleLine(w int, maxDist float64) string {
	line := []byte(strings.Repeat(" ", w))
	line[0] = '0'
	end := fmt.Sprintf("%.2f", maxDist)
	if len(end) < w {
		copy(line[w-len(end):], end)
	}
	return string(line)
}

// SortedPairs lists all pairs by ascending distance (diagnostics).
func SortedPairs(labels []string, vectors [][]float64) []string {
	type pair struct {
		a, b string
		d    float64
	}
	var ps []pair
	for i := 0; i < len(vectors); i++ {
		for j := i + 1; j < len(vectors); j++ {
			ps = append(ps, pair{labels[i], labels[j], CosineDistance(vectors[i], vectors[j])})
		}
	}
	sort.Slice(ps, func(i, j int) bool { return ps[i].d < ps[j].d })
	out := make([]string, len(ps))
	for i, p := range ps {
		out[i] = fmt.Sprintf("%.4f %s ↔ %s", p.d, p.a, p.b)
	}
	return out
}
