package survey

import (
	"strings"
	"testing"

	"repro/internal/core"
	_ "repro/internal/models/all"
)

func suiteMetas(t *testing.T) []core.Meta {
	t.Helper()
	var metas []core.Meta
	for _, name := range core.Names() {
		m, err := core.New(name)
		if err != nil {
			t.Fatal(err)
		}
		metas = append(metas, m.Meta())
	}
	return metas
}

func TestSixteenPapers(t *testing.T) {
	if len(Papers()) != 16 {
		t.Fatalf("the paper surveys 16 works, got %d", len(Papers()))
	}
}

// TestRowTotalsMatchPublishedTable pins the row totals of Table I:
// the published counts that motivate the paper (in particular, zero
// unsupervised and zero reinforcement learning papers, and recurrent
// networks in exactly two).
func TestRowTotalsMatchPublishedTable(t *testing.T) {
	totals := Totals()
	want := map[Feature]int{
		FullyConnected:        12,
		Convolutional:         10,
		Recurrent:             2,
		Inference:             16,
		Supervised:            7,
		Unsupervised:          0,
		Reinforcement:         0,
		Vision:                13,
		Speech:                2,
		LanguageModeling:      4,
		FunctionApproximation: 2,
	}
	for f, n := range want {
		if totals[f] != n {
			t.Errorf("%s total = %d, want %d", f, totals[f], n)
		}
	}
}

func TestPublishedDepths(t *testing.T) {
	wantDepths := []int{4, 4, 3, 3, 5, 16, 7, 3, 13, 6, 9, 4, 26, 2, 5, 5}
	for i, p := range Papers() {
		if p.Depth != wantDepths[i] {
			t.Errorf("paper %s depth = %d, want %d", p.Cite, p.Depth, wantDepths[i])
		}
	}
}

func TestFathomColumnCoversEverything(t *testing.T) {
	col := FathomColumn(suiteMetas(t))
	for f := FullyConnected; f <= FunctionApproximation; f++ {
		if !col.Features[f] {
			t.Errorf("Fathom column should cover %s", f)
		}
	}
	if col.Depth != 34 {
		t.Errorf("Fathom max depth = %d, want 34 (residual)", col.Depth)
	}
}

func TestRenderContainsRowsAndFathom(t *testing.T) {
	out := Render(suiteMetas(t))
	for _, want := range []string{"Fully-connected", "Reinforcement", "Layer Depth", "Fathom", "[24]"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered table missing %q:\n%s", want, out)
		}
	}
	// Exactly one x in the Unsupervised row (Fathom's column).
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "Unsupervised") {
			if n := strings.Count(line, "x"); n != 1 {
				t.Fatalf("Unsupervised row should have exactly 1 mark (Fathom): %q", line)
			}
		}
	}
}
