// Package survey reproduces Table I of the paper: the survey of 16
// architecture papers (2010–2016) showing how narrow the deep-learning
// coverage of the hardware literature was, contrasted with the Fathom
// column. The per-paper feature assignments are reconstructed from the
// cited papers' content; the row totals match the published table
// (e.g. recurrent networks appear in exactly two papers, and no paper
// covers unsupervised or reinforcement learning). The Fathom column is
// derived live from the registered workloads' metadata.
package survey

import (
	"fmt"
	"strings"

	"repro/internal/core"
)

// Feature identifies one row of Table I.
type Feature int

// Table I rows.
const (
	FullyConnected Feature = iota
	Convolutional
	Recurrent
	Inference
	Supervised
	Unsupervised
	Reinforcement
	Vision
	Speech
	LanguageModeling
	FunctionApproximation
	numFeatures
)

var featureNames = [...]string{
	"Fully-connected", "Convolutional", "Recurrent",
	"Inference", "Supervised", "Unsupervised", "Reinforcement",
	"Vision", "Speech", "Language Modeling", "Function Approximation",
}

// String returns the row label.
func (f Feature) String() string { return featureNames[f] }

// Paper is one surveyed publication.
type Paper struct {
	Cite     string // bracketed citation number from the paper
	Name     string
	Depth    int // maximum layer depth evaluated
	Features map[Feature]bool
}

func paper(cite, name string, depth int, fs ...Feature) Paper {
	m := map[Feature]bool{}
	for _, f := range fs {
		m[f] = true
	}
	return Paper{Cite: cite, Name: name, Depth: depth, Features: m}
}

// Papers returns the 16 surveyed works in citation order.
func Papers() []Paper {
	return []Paper{
		paper("[8]", "Chakradhar (conv coprocessor)", 4, FullyConnected, Convolutional, Inference, Vision),
		paper("[9]", "BenchNN", 4, FullyConnected, Inference, Supervised, FunctionApproximation),
		paper("[10]", "DianNao", 3, FullyConnected, Convolutional, Inference, Supervised, Vision),
		paper("[11]", "DaDianNao", 3, FullyConnected, Convolutional, Inference, Supervised, Vision),
		paper("[12]", "Eyeriss", 5, Convolutional, Inference, Vision),
		paper("[14]", "PRIME", 16, FullyConnected, Convolutional, Inference, Vision),
		paper("[21]", "ShiDianNao", 7, Convolutional, Inference, Vision),
		paper("[24]", "EIE", 3, FullyConnected, Convolutional, Recurrent, Inference, Vision, LanguageModeling),
		paper("[26]", "DjiNN and Tonic", 13, FullyConnected, Inference, Supervised, Vision, Speech, LanguageModeling),
		paper("[35]", "PuDianNao", 6, FullyConnected, Inference, Supervised, Vision, LanguageModeling),
		paper("[38]", "Ovtcharov (FPGA CNN)", 9, FullyConnected, Convolutional, Inference, Vision),
		paper("[39]", "Minerva", 4, FullyConnected, Inference, Vision),
		paper("[40]", "ISAAC", 26, Convolutional, Inference, Vision),
		paper("[44]", "CortexSuite", 2, FullyConnected, Recurrent, Inference, Supervised, Speech, LanguageModeling),
		paper("[47]", "Yazdanbakhsh (NGPU)", 5, FullyConnected, Inference, Supervised, FunctionApproximation),
		paper("[49]", "Zhang (FPGA CNN)", 5, Convolutional, Inference, Vision),
	}
}

// FathomColumn derives the Fathom column from the registered models'
// metadata (depth, styles, tasks, domains).
func FathomColumn(metas []core.Meta) Paper {
	p := Paper{Cite: "Fathom", Name: "Fathom", Features: map[Feature]bool{}}
	for _, m := range metas {
		if m.Layers > p.Depth {
			p.Depth = m.Layers
		}
		style := strings.ToLower(m.Style)
		if strings.Contains(style, "full") || strings.Contains(style, "memory") {
			p.Features[FullyConnected] = true
		}
		if strings.Contains(style, "convolutional") {
			p.Features[Convolutional] = true
		}
		if strings.Contains(style, "recurrent") || strings.Contains(style, "memory") {
			p.Features[Recurrent] = true
		}
		p.Features[Inference] = true // every workload runs inference
		switch m.Task {
		case "Supervised":
			p.Features[Supervised] = true
		case "Unsupervised":
			p.Features[Unsupervised] = true
		case "Reinforcement":
			p.Features[Reinforcement] = true
		}
		switch m.Dataset {
		case "ImageNet", "MNIST":
			p.Features[Vision] = true
		case "TIMIT":
			p.Features[Speech] = true
		case "WMT-15", "bAbI":
			p.Features[LanguageModeling] = true
		case "Atari ALE":
			p.Features[Vision] = true
			p.Features[FunctionApproximation] = true // Q-value regression
		}
	}
	return p
}

// Render formats the survey as the paper's Table I (rows = features,
// columns = papers + Fathom).
func Render(metas []core.Meta) string {
	papers := append(Papers(), FathomColumn(metas))
	var b strings.Builder
	fmt.Fprintf(&b, "%-24s", "Feature")
	for _, p := range papers {
		fmt.Fprintf(&b, "%8s", p.Cite)
	}
	b.WriteString("\n")
	for f := Feature(0); f < numFeatures; f++ {
		fmt.Fprintf(&b, "%-24s", f.String())
		for _, p := range papers {
			mark := ""
			if p.Features[f] {
				mark = "x"
			}
			fmt.Fprintf(&b, "%8s", mark)
		}
		b.WriteString("\n")
		if f == Recurrent {
			fmt.Fprintf(&b, "%-24s", "Layer Depth (Maximum)")
			for _, p := range papers {
				fmt.Fprintf(&b, "%8d", p.Depth)
			}
			b.WriteString("\n")
		}
	}
	return b.String()
}

// Totals returns per-feature counts across the 16 surveyed papers
// (excluding Fathom), used by tests to pin the published row totals.
func Totals() map[Feature]int {
	out := map[Feature]int{}
	for _, p := range Papers() {
		for f, ok := range p.Features {
			if ok {
				out[f]++
			}
		}
	}
	return out
}
