package dataset

import (
	"math/rand"

	"repro/internal/tensor"
)

// MNIST generates synthetic 28×28 grayscale digit images standing in
// for LeCun's handwritten-digit corpus. Digits are rendered as
// seven-segment glyphs with random translation, per-stroke intensity
// jitter, and pixel noise — a ten-class image family with enough
// intra-class variation to make reconstruction (autoencoding) and
// classification non-trivial.
type MNIST struct {
	rng *rand.Rand
}

// MNISTSide is the image edge length.
const MNISTSide = 28

// NewMNIST creates the generator.
func NewMNIST(seed int64) *MNIST { return &MNIST{rng: newRNG(seed)} }

// Seven-segment encodings of digits 0–9. Segments:
//
//	 _0_
//	5|   |1
//	 -6-
//	4|   |2
//	 _3_
var segOf = [10][7]bool{
	{true, true, true, true, true, true, false},     // 0
	{false, true, true, false, false, false, false}, // 1
	{true, true, false, true, true, false, true},    // 2
	{true, true, true, true, false, false, true},    // 3
	{false, true, true, false, false, true, true},   // 4
	{true, false, true, true, false, true, true},    // 5
	{true, false, true, true, true, true, true},     // 6
	{true, true, true, false, false, false, false},  // 7
	{true, true, true, true, true, true, true},      // 8
	{true, true, true, true, false, true, true},     // 9
}

// drawSeg paints one segment into a 28×28 image with the glyph's
// top-left at (ox, oy); the glyph box is 12 wide × 20 tall.
func drawSeg(img []float32, seg, ox, oy int, intensity float32) {
	hline := func(x, y, w int) {
		for i := 0; i < w; i++ {
			px, py := x+i, y
			if px >= 0 && px < MNISTSide && py >= 0 && py < MNISTSide {
				img[py*MNISTSide+px] += intensity
			}
		}
	}
	vline := func(x, y, h int) {
		for i := 0; i < h; i++ {
			px, py := x, y+i
			if px >= 0 && px < MNISTSide && py >= 0 && py < MNISTSide {
				img[py*MNISTSide+px] += intensity
			}
		}
	}
	const w, h = 12, 10 // half-height segments
	switch seg {
	case 0:
		hline(ox, oy, w)
	case 1:
		vline(ox+w-1, oy, h)
	case 2:
		vline(ox+w-1, oy+h, h)
	case 3:
		hline(ox, oy+2*h-1, w)
	case 4:
		vline(ox, oy+h, h)
	case 5:
		vline(ox, oy, h)
	case 6:
		hline(ox, oy+h-1, w)
	}
}

// Sample renders one digit image; returns the flattened 784 pixels in
// [0,1] and the class label.
func (d *MNIST) Sample() ([]float32, int) {
	img := make([]float32, MNISTSide*MNISTSide)
	digit := d.rng.Intn(10)
	ox := 4 + d.rng.Intn(9) // random translation
	oy := 2 + d.rng.Intn(5)
	for s := 0; s < 7; s++ {
		if segOf[digit][s] {
			in := 0.7 + 0.3*d.rng.Float32()
			drawSeg(img, s, ox, oy, in)
		}
	}
	for i := range img {
		img[i] += 0.08 * d.rng.Float32() // sensor noise
		if img[i] > 1 {
			img[i] = 1
		}
	}
	return img, digit
}

// Batch materializes images (B, 784) and labels (B).
func (d *MNIST) Batch(b int) (images, labels *tensor.Tensor) {
	images = tensor.New(b, MNISTSide*MNISTSide)
	labels = tensor.New(b)
	for j := 0; j < b; j++ {
		img, y := d.Sample()
		copy(images.Data()[j*len(img):(j+1)*len(img)], img)
		labels.Set(float32(y), j)
	}
	return images, labels
}
