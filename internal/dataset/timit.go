package dataset

import (
	"math"
	"math/rand"

	"repro/internal/tensor"
)

// TIMIT generates synthetic speech utterances standing in for the
// TIMIT corpus: each phoneme class has a characteristic set of formant
// frequencies; an utterance is a phoneme sequence where each phoneme
// emits several spectrogram frames of Gaussian bumps at its formants
// plus noise. This gives CTC-trainable (spectrogram, transcript)
// pairs with the same (time × frequency-bins) shape as real
// preprocessed speech.
type TIMIT struct {
	Phonemes  int // number of phoneme classes (excluding CTC blank)
	FreqBins  int // spectrogram height F
	Frames    int // frames per utterance T
	MaxLabels int // max transcript length L
	rng       *rand.Rand
	formants  [][]float64 // per phoneme, formant center bins
}

// NewTIMIT creates the generator. Frames should comfortably exceed
// 2·MaxLabels+1 so CTC alignments exist.
func NewTIMIT(phonemes, freqBins, frames, maxLabels int, seed int64) *TIMIT {
	rng := newRNG(seed)
	formants := make([][]float64, phonemes)
	for p := range formants {
		// Two or three formants per phoneme, stable across samples.
		nf := 2 + rng.Intn(2)
		f := make([]float64, nf)
		for i := range f {
			f[i] = rng.Float64() * float64(freqBins-1)
		}
		formants[p] = f
	}
	return &TIMIT{
		Phonemes: phonemes, FreqBins: freqBins, Frames: frames,
		MaxLabels: maxLabels, rng: rng, formants: formants,
	}
}

// Utterance is one synthetic speech example.
type Utterance struct {
	Frames [][]float32 // T × F spectrogram
	Labels []int       // phoneme transcript (length ≤ MaxLabels)
}

// Sample generates one utterance.
func (d *TIMIT) Sample() Utterance {
	nLabels := 1 + d.rng.Intn(d.MaxLabels)
	// Ensure a CTC path exists: T ≥ 2·U+1.
	for 2*nLabels+1 > d.Frames {
		nLabels--
	}
	if nLabels < 1 {
		nLabels = 1
	}
	labels := make([]int, nLabels)
	prev := -1
	for i := range labels {
		p := d.rng.Intn(d.Phonemes)
		for p == prev { // avoid repeats so transcripts stay CTC-friendly
			p = d.rng.Intn(d.Phonemes)
		}
		labels[i] = p
		prev = p
	}
	// Distribute frames over phonemes (with silence at the edges).
	frames := make([][]float32, d.Frames)
	perPhoneme := d.Frames / (nLabels + 1)
	if perPhoneme < 1 {
		perPhoneme = 1
	}
	for t := 0; t < d.Frames; t++ {
		f := make([]float32, d.FreqBins)
		// Background noise floor.
		for i := range f {
			f[i] = float32(d.rng.Float64() * 0.05)
		}
		ph := t / perPhoneme
		if ph < nLabels { // trailing frames stay silence
			for _, center := range d.formants[labels[ph]] {
				// Gaussian bump with slight jitter.
				c := center + d.rng.NormFloat64()*0.5
				for i := range f {
					x := (float64(i) - c) / 1.5
					f[i] += float32(math.Exp(-x * x))
				}
			}
		}
		frames[t] = f
	}
	return Utterance{Frames: frames, Labels: labels}
}

// Batch materializes CTC training tensors: spectrograms (T, B, F) and
// padded labels (B, L) with -1 padding.
func (d *TIMIT) Batch(b int) (spec, labels *tensor.Tensor) {
	spec = tensor.New(d.Frames, b, d.FreqBins)
	labels = tensor.Full(-1, b, d.MaxLabels)
	for j := 0; j < b; j++ {
		u := d.Sample()
		for t, frame := range u.Frames {
			for i, v := range frame {
				spec.Set(v, t, j, i)
			}
		}
		for i, l := range u.Labels {
			labels.Set(float32(l), j, i)
		}
	}
	return spec, labels
}
