// Package dataset provides deterministic synthetic substitutes for the
// corpora used by the Fathom paper (WMT-15, bAbI, TIMIT, MNIST,
// ImageNet), which are unavailable offline. Each generator reproduces
// the tensor shapes, vocabulary structure and statistical role of the
// original data: the paper's characterization depends on operation
// shapes and sequence lengths, not on semantic content (DESIGN.md
// §4.3). All generators are seeded and reproducible.
package dataset

import "math/rand"

// newRNG builds the package's seeded source.
func newRNG(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
