package dataset

import (
	"testing"

	"repro/internal/tensor"
)

func TestTranslationPairStructure(t *testing.T) {
	tr := NewTranslation(100, 8, 1)
	src, dst := tr.Pair()
	if len(src) != 9 || len(dst) != 10 {
		t.Fatalf("lengths src=%d dst=%d", len(src), len(dst))
	}
	if src[8] != EOS || dst[0] != BOS || dst[9] != EOS {
		t.Fatalf("special tokens wrong: src=%v dst=%v", src, dst)
	}
	// Target body is permuted reversal of the source body.
	for i := 0; i < 8; i++ {
		w := src[7-i]
		want := FirstWord + tr.perm[w-FirstWord]
		if dst[i+1] != want {
			t.Fatalf("dst[%d]=%d want %d", i+1, dst[i+1], want)
		}
	}
	for _, w := range src[:8] {
		if w < FirstWord || w >= tr.Vocab {
			t.Fatalf("source word %d out of range", w)
		}
	}
}

func TestTranslationDeterministicBySeed(t *testing.T) {
	a1, b1 := NewTranslation(50, 5, 7).Pair()
	a2, b2 := NewTranslation(50, 5, 7).Pair()
	for i := range a1 {
		if a1[i] != a2[i] || b1[i] != b2[i] {
			t.Fatal("same seed must reproduce pairs")
		}
	}
}

func TestTranslationBatchShapes(t *testing.T) {
	tr := NewTranslation(64, 6, 2)
	src, dst := tr.Batch(4)
	if !tensor.SameShape(src.Shape(), []int{7, 4}) || !tensor.SameShape(dst.Shape(), []int{8, 4}) {
		t.Fatalf("batch shapes %v %v", src.Shape(), dst.Shape())
	}
}

func TestTranslationZipfSkew(t *testing.T) {
	tr := NewTranslation(1000, 20, 3)
	counts := make([]int, tr.Vocab)
	for i := 0; i < 500; i++ {
		src, _ := tr.Pair()
		for _, w := range src[:20] {
			counts[w]++
		}
	}
	lowRank, highRank := 0, 0
	for w := FirstWord; w < tr.Vocab; w++ {
		if w < FirstWord+(tr.Vocab-FirstWord)/5 {
			lowRank += counts[w]
		} else {
			highRank += counts[w]
		}
	}
	if lowRank <= highRank {
		t.Fatalf("token distribution should be skewed: low=%d high=%d", lowRank, highRank)
	}
}

func TestBABISampleConsistency(t *testing.T) {
	b := NewBABI(10, 6, 1)
	for trial := 0; trial < 50; trial++ {
		st := b.Sample()
		if len(st.Sentences) != 10 {
			t.Fatalf("story length %d", len(st.Sentences))
		}
		// Recompute the answer by scanning the story.
		qe := st.Query[2]
		last := -1
		for _, s := range st.Sentences {
			if s[0] == qe {
				last = s[4]
			}
		}
		if last == -1 {
			t.Fatal("queried entity never moved")
		}
		wantLoc := BABIWord(last)
		gotLoc := babiLocations[st.Answer]
		if wantLoc != gotLoc {
			t.Fatalf("answer %q but last location is %q", gotLoc, wantLoc)
		}
	}
}

func TestBABIBatchShapesAndRanges(t *testing.T) {
	b := NewBABI(8, 6, 2)
	stories, queries, answers := b.Batch(5)
	if !tensor.SameShape(stories.Shape(), []int{5, 8, 6}) {
		t.Fatalf("stories shape %v", stories.Shape())
	}
	if !tensor.SameShape(queries.Shape(), []int{5, 6}) {
		t.Fatalf("queries shape %v", queries.Shape())
	}
	if !tensor.SameShape(answers.Shape(), []int{5}) {
		t.Fatalf("answers shape %v", answers.Shape())
	}
	for _, v := range stories.Data() {
		if int(v) < 0 || int(v) >= BABIVocabSize() {
			t.Fatalf("token %v out of vocab", v)
		}
	}
	for _, v := range answers.Data() {
		if int(v) < 0 || int(v) >= BABIAnswerClasses() {
			t.Fatalf("answer %v out of range", v)
		}
	}
}

func TestBABIVocab(t *testing.T) {
	if BABIVocabSize() != 1+8+6+4+4 {
		t.Fatalf("vocab size %d", BABIVocabSize())
	}
	if BABIWord(0) != "<pad>" {
		t.Fatal("pad token")
	}
	if BABIWord(999) != "<999>" {
		t.Fatal("out-of-range word")
	}
}

func TestTIMITSampleStructure(t *testing.T) {
	d := NewTIMIT(10, 20, 30, 6, 1)
	u := d.Sample()
	if len(u.Frames) != 30 {
		t.Fatalf("frames %d", len(u.Frames))
	}
	if len(u.Labels) < 1 || len(u.Labels) > 6 {
		t.Fatalf("labels %v", u.Labels)
	}
	if 2*len(u.Labels)+1 > 30 {
		t.Fatal("CTC alignment must exist: T >= 2U+1")
	}
	for i := 1; i < len(u.Labels); i++ {
		if u.Labels[i] == u.Labels[i-1] {
			t.Fatal("adjacent phonemes should differ")
		}
	}
	for _, f := range u.Frames {
		if len(f) != 20 {
			t.Fatalf("frame width %d", len(f))
		}
	}
}

func TestTIMITFormantsDistinguishPhonemes(t *testing.T) {
	d := NewTIMIT(5, 24, 40, 4, 2)
	// The energy profile of frames of phoneme p should correlate with
	// its formant pattern: check that spectra are not flat noise.
	u := d.Sample()
	var peak, mean float32
	n := 0
	for _, f := range u.Frames {
		for _, v := range f {
			if v > peak {
				peak = v
			}
			mean += v
			n++
		}
	}
	mean /= float32(n)
	if peak < 5*mean {
		t.Fatalf("spectrogram should have formant peaks: peak=%v mean=%v", peak, mean)
	}
}

func TestTIMITBatchShapes(t *testing.T) {
	d := NewTIMIT(8, 16, 25, 5, 3)
	spec, labels := d.Batch(3)
	if !tensor.SameShape(spec.Shape(), []int{25, 3, 16}) {
		t.Fatalf("spec shape %v", spec.Shape())
	}
	if !tensor.SameShape(labels.Shape(), []int{3, 5}) {
		t.Fatalf("labels shape %v", labels.Shape())
	}
	// Padding must be -1.
	foundPad := false
	for _, v := range labels.Data() {
		if v == -1 {
			foundPad = true
		}
		if v < -1 || v >= 8 {
			t.Fatalf("label %v out of range", v)
		}
	}
	if !foundPad {
		t.Fatal("expected some -1 padding in labels")
	}
}

func TestMNISTSampleRangeAndVariation(t *testing.T) {
	d := NewMNIST(1)
	img1, y1 := d.Sample()
	if len(img1) != 784 {
		t.Fatalf("image length %d", len(img1))
	}
	if y1 < 0 || y1 > 9 {
		t.Fatalf("label %d", y1)
	}
	var lit int
	for _, v := range img1 {
		if v < 0 || v > 1 {
			t.Fatalf("pixel %v out of range", v)
		}
		if v > 0.5 {
			lit++
		}
	}
	if lit < 10 || lit > 400 {
		t.Fatalf("glyph should light a moderate pixel count, got %d", lit)
	}
	// Two samples of the same class should differ (translation jitter).
	d2 := NewMNIST(2)
	var imgs [][]float32
	for len(imgs) < 2 {
		img, y := d2.Sample()
		if y == y1 {
			cp := make([]float32, len(img))
			copy(cp, img)
			imgs = append(imgs, cp)
		}
	}
	same := true
	for i := range imgs[0] {
		if imgs[0][i] != imgs[1][i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("same-class samples should vary")
	}
}

func TestMNISTBatchShapes(t *testing.T) {
	d := NewMNIST(3)
	images, labels := d.Batch(6)
	if !tensor.SameShape(images.Shape(), []int{6, 784}) {
		t.Fatalf("images shape %v", images.Shape())
	}
	if !tensor.SameShape(labels.Shape(), []int{6}) {
		t.Fatalf("labels shape %v", labels.Shape())
	}
}

func TestImageNetSampleAndBatch(t *testing.T) {
	d := NewImageNet(10, 32, 1)
	img := make([]float32, 32*32*3)
	c := d.Sample(img)
	if c < 0 || c >= 10 {
		t.Fatalf("class %d", c)
	}
	for _, v := range img {
		if v < 0 || v > 1 {
			t.Fatalf("pixel %v out of range", v)
		}
	}
	images, labels := d.Batch(4)
	if !tensor.SameShape(images.Shape(), []int{4, 32, 32, 3}) {
		t.Fatalf("images shape %v", images.Shape())
	}
	if !tensor.SameShape(labels.Shape(), []int{4}) {
		t.Fatalf("labels shape %v", labels.Shape())
	}
}

func TestImageNetClassTexturesDiffer(t *testing.T) {
	d := NewImageNet(4, 16, 2)
	// Mean image per class should differ across classes.
	sums := make([][]float64, 4)
	counts := make([]int, 4)
	img := make([]float32, 16*16*3)
	for i := range sums {
		sums[i] = make([]float64, len(img))
	}
	for n := 0; n < 200; n++ {
		c := d.Sample(img)
		for i, v := range img {
			sums[c][i] += float64(v)
		}
		counts[c]++
	}
	// Compare class 0 and class 1 mean images.
	var diff float64
	for i := range img {
		a := sums[0][i] / float64(counts[0])
		b := sums[1][i] / float64(counts[1])
		if a > b {
			diff += a - b
		} else {
			diff += b - a
		}
	}
	if diff/float64(len(img)) < 0.01 {
		t.Fatalf("class textures too similar: mean abs diff %v", diff/float64(len(img)))
	}
}
