package dataset

import "testing"

func TestNewPartitionValidation(t *testing.T) {
	if _, err := NewPartition(8, 4, 2); err != nil {
		t.Fatalf("valid partition rejected: %v", err)
	}
	bad := [][3]int{
		{0, 4, 2},  // empty batch
		{8, 0, 1},  // no chunks
		{8, 4, 0},  // no replicas
		{10, 4, 2}, // chunks do not divide batch
		{8, 4, 3},  // replicas do not divide chunks
	}
	for _, b := range bad {
		if _, err := NewPartition(b[0], b[1], b[2]); err == nil {
			t.Errorf("NewPartition(%d,%d,%d): want error", b[0], b[1], b[2])
		}
	}
}

// TestPartitionCoversChunkGrid pins the ascending-replica,
// ascending-chunk walk: replica ranges are contiguous, ascending and
// cover every chunk exactly once, for every replica count dividing the
// chunk grid.
func TestPartitionCoversChunkGrid(t *testing.T) {
	for _, replicas := range []int{1, 2, 4} {
		p, err := NewPartition(16, 4, replicas)
		if err != nil {
			t.Fatal(err)
		}
		next := 0
		for r := 0; r < replicas; r++ {
			lo, hi := p.Range(r)
			if lo != next {
				t.Fatalf("replicas=%d: replica %d range starts at %d, want %d", replicas, r, lo, next)
			}
			for c := lo; c < hi; c++ {
				if p.Owner(c) != r {
					t.Fatalf("replicas=%d: Owner(%d)=%d, want %d", replicas, c, p.Owner(c), r)
				}
			}
			next = hi
		}
		if next != p.Chunks {
			t.Fatalf("replicas=%d: ranges cover %d chunks, want %d", replicas, next, p.Chunks)
		}
		if p.ChunkBatch() != 4 {
			t.Fatalf("ChunkBatch = %d, want 4", p.ChunkBatch())
		}
	}
}

// TestChunkSeedIsCoordinatePure pins that chunk seeds depend only on
// (base, step, chunk): equal coordinates agree, any differing
// coordinate disagrees, and seeds are usable (positive).
func TestChunkSeedIsCoordinatePure(t *testing.T) {
	if ChunkSeed(3, 1, 2) != ChunkSeed(3, 1, 2) {
		t.Fatal("ChunkSeed not deterministic")
	}
	base := ChunkSeed(3, 1, 2)
	for _, other := range []int64{ChunkSeed(4, 1, 2), ChunkSeed(3, 2, 2), ChunkSeed(3, 1, 3)} {
		if other == base {
			t.Fatal("ChunkSeed collision across differing coordinates")
		}
	}
	seen := map[int64]bool{}
	for step := 0; step < 16; step++ {
		for chunk := 0; chunk < 8; chunk++ {
			s := ChunkSeed(7, step, chunk)
			if s <= 0 {
				t.Fatalf("ChunkSeed(7,%d,%d) = %d, want positive", step, chunk, s)
			}
			if seen[s] {
				t.Fatalf("duplicate seed %d at step %d chunk %d", s, step, chunk)
			}
			seen[s] = true
		}
	}
	// Data drawn through per-chunk seeds is replica-placement
	// independent by construction: same seed, same generator, same
	// batch.
	a, _ := NewMNIST(ChunkSeed(7, 0, 3)).Batch(2)
	b, _ := NewMNIST(ChunkSeed(7, 0, 3)).Batch(2)
	for i, v := range a.Data() {
		if b.Data()[i] != v {
			t.Fatalf("same chunk seed produced different data at %d", i)
		}
	}
}
