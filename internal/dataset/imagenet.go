package dataset

import (
	"math"
	"math/rand"

	"repro/internal/tensor"
)

// ImageNet generates procedural RGB images standing in for the
// ImageNet classification corpus. Each class is a family of oriented
// sinusoidal textures with class-specific frequency, orientation and
// color balance, perturbed per sample by phase shifts and noise. The
// classes are linearly non-trivial but learnable by a convolutional
// network, and the tensors have the NHWC shape of real preprocessed
// ImageNet input.
type ImageNet struct {
	Classes int
	Side    int // square image edge H = W
	rng     *rand.Rand
	params  []texParams
}

type texParams struct {
	freq   float64 // cycles across the image
	angle  float64 // orientation of the texture
	rgb    [3]float64
	stripe float64 // square-wave hardness
}

// NewImageNet creates the generator with stable per-class textures.
func NewImageNet(classes, side int, seed int64) *ImageNet {
	rng := newRNG(seed)
	params := make([]texParams, classes)
	for c := range params {
		params[c] = texParams{
			freq:   2 + rng.Float64()*6,
			angle:  rng.Float64() * math.Pi,
			rgb:    [3]float64{0.4 + 0.6*rng.Float64(), 0.4 + 0.6*rng.Float64(), 0.4 + 0.6*rng.Float64()},
			stripe: rng.Float64(),
		}
	}
	return &ImageNet{Classes: classes, Side: side, rng: rng, params: params}
}

// Sample renders one image (H, W, 3) into dst and returns its label.
// dst must have length Side*Side*3.
func (d *ImageNet) Sample(dst []float32) int {
	c := d.rng.Intn(d.Classes)
	p := d.params[c]
	phase := d.rng.Float64() * 2 * math.Pi
	jitter := d.rng.NormFloat64() * 0.1
	sin, cos := math.Sin(p.angle+jitter), math.Cos(p.angle+jitter)
	s := float64(d.Side)
	i := 0
	for y := 0; y < d.Side; y++ {
		for x := 0; x < d.Side; x++ {
			u := (cos*float64(x) + sin*float64(y)) / s
			v := math.Sin(2*math.Pi*p.freq*u + phase)
			// Blend sine and square wave by the class's stripe factor.
			if v > 0 {
				v = (1-p.stripe)*v + p.stripe
			} else {
				v = (1-p.stripe)*v - p.stripe
			}
			base := 0.5 + 0.4*v
			for ch := 0; ch < 3; ch++ {
				val := base*p.rgb[ch] + 0.05*d.rng.Float64()
				if val > 1 {
					val = 1
				}
				dst[i] = float32(val)
				i++
			}
		}
	}
	return c
}

// Batch materializes images (B, H, W, 3) and labels (B).
func (d *ImageNet) Batch(b int) (images, labels *tensor.Tensor) {
	images = tensor.New(b, d.Side, d.Side, 3)
	labels = tensor.New(b)
	stride := d.Side * d.Side * 3
	for j := 0; j < b; j++ {
		y := d.Sample(images.Data()[j*stride : (j+1)*stride])
		labels.Set(float32(y), j)
	}
	return images, labels
}
