package dataset

import (
	"fmt"
	"math/rand"

	"repro/internal/tensor"
)

// BABI generates task-1 style question-answering stories in the spirit
// of Facebook's bAbI corpus: a sequence of entity-movement statements
// ("mary went to the kitchen") followed by a "where is mary?" query
// whose answer is the entity's most recent location. This reproduces
// the real reasoning structure of the dataset, so the memory network
// has a genuine signal to learn, not just noise of the right shape.
type BABI struct {
	Sentences   int // story length M (memory slots)
	SentenceLen int // tokens per sentence (padded)
	rng         *rand.Rand
}

var babiEntities = []string{
	"mary", "john", "sandra", "daniel", "emily", "frank", "george", "helen",
}

var babiLocations = []string{
	"kitchen", "garden", "office", "bathroom", "hallway", "bedroom",
}

var babiVerbs = []string{"went", "moved", "journeyed", "travelled"}

var babiFillers = []string{"to", "the", "where", "is"}

// babiVocab is the full token list; id 0 is PAD.
var babiVocab = buildBabiVocab()

func buildBabiVocab() []string {
	v := []string{"<pad>"}
	v = append(v, babiEntities...)
	v = append(v, babiLocations...)
	v = append(v, babiVerbs...)
	v = append(v, babiFillers...)
	return v
}

// BABIVocabSize returns the generator's vocabulary size.
func BABIVocabSize() int { return len(babiVocab) }

// BABIAnswerClasses returns the number of possible answers (locations).
func BABIAnswerClasses() int { return len(babiLocations) }

// BABIWord returns the token string for an id (diagnostics).
func BABIWord(id int) string {
	if id < 0 || id >= len(babiVocab) {
		return fmt.Sprintf("<%d>", id)
	}
	return babiVocab[id]
}

func babiID(w string) int {
	for i, v := range babiVocab {
		if v == w {
			return i
		}
	}
	panic("dataset: unknown bAbI token " + w)
}

// NewBABI creates the story generator. SentenceLen must be ≥ 5 (the
// longest statement is "entity verb to the location").
func NewBABI(sentences, sentenceLen int, seed int64) *BABI {
	if sentenceLen < 5 {
		sentenceLen = 5
	}
	return &BABI{Sentences: sentences, SentenceLen: sentenceLen, rng: newRNG(seed)}
}

// Story is one generated example.
type Story struct {
	Sentences [][]int // M × SentenceLen token ids (PAD-padded)
	Query     []int   // SentenceLen token ids ("where is X")
	Answer    int     // location index in [0, BABIAnswerClasses)
}

// Sample generates a story. The queried entity is guaranteed to have
// moved at least once; the answer is its latest location.
func (b *BABI) Sample() Story {
	loc := map[int]int{} // entity index → latest location index
	story := Story{Sentences: make([][]int, b.Sentences)}
	var movedOrder []int
	for m := 0; m < b.Sentences; m++ {
		e := b.rng.Intn(len(babiEntities))
		l := b.rng.Intn(len(babiLocations))
		v := b.rng.Intn(len(babiVerbs))
		loc[e] = l
		movedOrder = append(movedOrder, e)
		s := make([]int, b.SentenceLen)
		s[0] = babiID(babiEntities[e])
		s[1] = babiID(babiVerbs[v])
		s[2] = babiID("to")
		s[3] = babiID("the")
		s[4] = babiID(babiLocations[l])
		story.Sentences[m] = s
	}
	// Query an entity that actually appears.
	qe := movedOrder[b.rng.Intn(len(movedOrder))]
	q := make([]int, b.SentenceLen)
	q[0] = babiID("where")
	q[1] = babiID("is")
	q[2] = babiID(babiEntities[qe])
	story.Query = q
	story.Answer = loc[qe]
	return story
}

// Batch materializes tensors for a memory network:
// stories (B, M, L), queries (B, L), answers (B).
func (b *BABI) Batch(batch int) (stories, queries, answers *tensor.Tensor) {
	stories = tensor.New(batch, b.Sentences, b.SentenceLen)
	queries = tensor.New(batch, b.SentenceLen)
	answers = tensor.New(batch)
	for i := 0; i < batch; i++ {
		st := b.Sample()
		for m, s := range st.Sentences {
			for t, w := range s {
				stories.Set(float32(w), i, m, t)
			}
		}
		for t, w := range st.Query {
			queries.Set(float32(w), i, t)
		}
		answers.Set(float32(st.Answer), i)
	}
	return stories, queries, answers
}
