package dataset

import (
	"math/rand"

	"repro/internal/tensor"
)

// Translation is a WMT-style synthetic parallel corpus for
// sequence-to-sequence models. Source sentences are Zipf-distributed
// token sequences; the "translation" is the reversed source mapped
// through a fixed token permutation — a deterministic bijective
// language pair that an attention encoder–decoder can genuinely learn
// (reversal exercises attention; the permutation exercises the output
// embedding).
//
// Token conventions (shared by both vocabularies):
//
//	0: PAD   1: BOS   2: EOS   3..V-1: words
type Translation struct {
	Vocab  int // vocabulary size (≥ 8)
	SrcLen int // source length excluding EOS
	rng    *rand.Rand
	perm   []int // word permutation for the target language
}

// Special token ids.
const (
	PAD = 0
	BOS = 1
	EOS = 2
	// FirstWord is the first ordinary token id.
	FirstWord = 3
)

// NewTranslation creates the corpus generator.
func NewTranslation(vocab, srcLen int, seed int64) *Translation {
	if vocab < 8 {
		vocab = 8
	}
	rng := newRNG(seed)
	perm := rng.Perm(vocab - FirstWord)
	return &Translation{Vocab: vocab, SrcLen: srcLen, rng: rng, perm: perm}
}

// zipfWord draws a word id with a rank distribution skewed toward low
// ranks, matching natural-language token frequencies: rank = ⌊n·u³⌋
// concentrates ~58% of the mass in the first fifth of the vocabulary.
func (tr *Translation) zipfWord() int {
	n := tr.Vocab - FirstWord
	u := tr.rng.Float64()
	r := int(float64(n) * u * u * u)
	if r >= n {
		r = n - 1
	}
	return FirstWord + r
}

// Pair returns one (source, target) pair. The target is
// BOS + permuted(reversed(source)) + EOS; the source ends with EOS.
// Both are exactly SrcLen+1 tokens (target SrcLen+2 with BOS).
func (tr *Translation) Pair() (src, dst []int) {
	src = make([]int, tr.SrcLen+1)
	for i := 0; i < tr.SrcLen; i++ {
		src[i] = tr.zipfWord()
	}
	src[tr.SrcLen] = EOS
	dst = make([]int, tr.SrcLen+2)
	dst[0] = BOS
	for i := 0; i < tr.SrcLen; i++ {
		w := src[tr.SrcLen-1-i]
		dst[i+1] = FirstWord + tr.perm[w-FirstWord]
	}
	dst[tr.SrcLen+1] = EOS
	return src, dst
}

// Batch materializes a training batch in time-major layout:
// src (Tsrc, B) and dst (Tdst, B), both float32 token ids.
func (tr *Translation) Batch(b int) (src, dst *tensor.Tensor) {
	tsrc, tdst := tr.SrcLen+1, tr.SrcLen+2
	src = tensor.New(tsrc, b)
	dst = tensor.New(tdst, b)
	for j := 0; j < b; j++ {
		s, d := tr.Pair()
		for t := 0; t < tsrc; t++ {
			src.Set(float32(s[t]), t, j)
		}
		for t := 0; t < tdst; t++ {
			dst.Set(float32(d[t]), t, j)
		}
	}
	return src, dst
}
