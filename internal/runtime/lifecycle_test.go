package runtime

import (
	goruntime "runtime"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/ops"
	"repro/internal/sched"
	"repro/internal/tensor"
)

// buildFan returns buildWide's fan-out graph with the placeholder
// pre-bound to a constant feed, for tests that only care about the
// fetch.
func buildFan(lanes, depth int) (*graph.Graph, Feeds, *graph.Node) {
	g, x, y := buildWide(lanes, depth)
	return g, Feeds{x: tensor.Ones(16, 16)}, y
}

// TestSessionCloseSemantics: Close is idempotent, bars further Runs
// with ErrClosed, and releases the lease.
func TestSessionCloseSemantics(t *testing.T) {
	pool := sched.New(2)
	defer pool.Close()
	g, feeds, y := buildFan(3, 2)
	s := NewSession(g, WithInterOpWorkers(4), WithIntraOpWorkers(2), WithWorkerPool(pool))
	want := s.MustRun([]*graph.Node{y}, feeds)[0].Clone()
	s.Close()
	s.Close() // idempotent
	if _, err := s.Run([]*graph.Node{y}, nil); err != ErrClosed {
		t.Fatalf("Run after Close = %v, want ErrClosed", err)
	}
	// A fresh session over the same graph still works and agrees.
	s2 := NewSession(g, WithWorkerPool(pool))
	defer s2.Close()
	got := s2.MustRun([]*graph.Node{y}, feeds)[0]
	if tensor.MaxAbsDiff(got, want) != 0 {
		t.Fatal("parallel session result differs from serial replacement")
	}
}

// TestParallelDrainOnSharedPool: the inter-op drain is correct at any
// pool size, including zero helpers (caller-only execution).
func TestParallelDrainOnSharedPool(t *testing.T) {
	g, feeds, y := buildFan(4, 3)
	want := NewSession(g).MustRun([]*graph.Node{y}, feeds)[0].Clone()
	for _, size := range []int{0, 1, 4} {
		pool := sched.New(size)
		s := NewSession(g, WithInterOpWorkers(4), WithWorkerPool(pool))
		for rep := 0; rep < 3; rep++ {
			got := s.MustRun([]*graph.Node{y}, feeds)[0]
			if tensor.MaxAbsDiff(got, want) != 0 {
				t.Fatalf("pool size %d rep %d: parallel differs from serial", size, rep)
			}
		}
		s.Close()
		pool.Close()
	}
}

// TestIntraOpSessionBitIdentical: a session with real intra-op kernel
// pools reproduces the serial session bit for bit, alone and combined
// with inter-op width.
func TestIntraOpSessionBitIdentical(t *testing.T) {
	pool := sched.New(4)
	defer pool.Close()
	g := graph.New()
	a := g.Const("a", tensor.RandNormal(newTestRNG(), 0, 1, 96, 96))
	b := g.Const("b", tensor.RandNormal(newTestRNG(), 0, 1, 96, 96))
	y := ops.Mean(ops.Relu(ops.MatMul(a, b)))
	want := NewSession(g).MustRun([]*graph.Node{y}, nil)[0].Data()[0]
	for _, cfg := range []struct{ intra, inter int }{{4, 1}, {1, 4}, {4, 4}} {
		s := NewSession(g,
			WithIntraOpWorkers(cfg.intra),
			WithInterOpWorkers(cfg.inter),
			WithWorkerPool(pool),
		)
		got := s.MustRun([]*graph.Node{y}, nil)[0].Data()[0]
		s.Close()
		if got != want {
			t.Fatalf("intra=%d inter=%d: %v != serial %v", cfg.intra, cfg.inter, got, want)
		}
	}
}

// TestPlanPrioritiesFavorCriticalPath: the compile-time LPT keys rank
// the head of a long chain above an independent leaf, and a parallel
// run refreshes them with measured durations.
func TestPlanPrioritiesFavorCriticalPath(t *testing.T) {
	g := graph.New()
	// A deep chain and a single shallow op, merged at the end.
	x := g.Const("x", tensor.Full(0.5, 8, 8))
	chain := x
	for i := 0; i < 6; i++ {
		chain = ops.Relu(ops.MatMul(chain, x))
	}
	leaf := ops.Relu(x)
	y := ops.Add(chain, ops.MatMul(leaf, x))
	s := NewSession(g, WithInterOpWorkers(2), WithWorkerPool(sched.New(1)))
	defer s.Close()
	plan := s.Plan([]*graph.Node{y})
	var chainHead, leafPos = -1, -1
	for i, st := range plan.steps {
		if st.kind != graph.KindOp {
			continue
		}
		if chainHead == -1 {
			chainHead = i // first op of the deep chain in schedule order
		}
		if st.node == leaf {
			leafPos = i
		}
	}
	if chainHead < 0 || leafPos < 0 {
		t.Fatal("did not locate chain head and leaf")
	}
	if plan.prio[chainHead] <= plan.prio[leafPos] {
		t.Fatalf("chain head prio %d should exceed leaf prio %d", plan.prio[chainHead], plan.prio[leafPos])
	}
	before := append([]int64(nil), plan.prio...)
	s.MustRun([]*graph.Node{y}, nil)
	refreshed := false
	for i := range before {
		if plan.prio[i] != before[i] {
			refreshed = true
			break
		}
	}
	if !refreshed {
		t.Fatal("parallel run should refresh priorities with measured durations")
	}
	// Still LPT-shaped: the chain head dominates the leaf.
	if plan.prio[chainHead] <= plan.prio[leafPos] {
		t.Fatal("refreshed priorities lost the critical-path ordering")
	}
}

// TestSessionsShareBoundedPool: many concurrent parallel sessions on
// one shared pool never push the process goroutine count past
// baseline + pool size + one goroutine per session, and everything
// returns to baseline after Close.
func TestSessionsShareBoundedPool(t *testing.T) {
	pool := sched.New(3)
	defer pool.Close()
	g, feeds, y := buildFan(4, 2)
	want := NewSession(g).MustRun([]*graph.Node{y}, feeds)[0].Clone()

	base := goruntime.NumGoroutine()
	const sessions = 6
	done := make(chan error, sessions)
	var peak atomic.Int64
	stop := make(chan struct{})
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
			}
			if n := int64(goruntime.NumGoroutine()); n > peak.Load() {
				peak.Store(n)
			}
			time.Sleep(100 * time.Microsecond)
		}
	}()
	for i := 0; i < sessions; i++ {
		go func() {
			s := NewSession(g, WithInterOpWorkers(4), WithIntraOpWorkers(2), WithWorkerPool(pool))
			defer s.Close()
			for rep := 0; rep < 5; rep++ {
				got, err := s.Run([]*graph.Node{y}, feeds)
				if err != nil {
					done <- err
					return
				}
				if tensor.MaxAbsDiff(got[0], want) != 0 {
					done <- ErrClosed // any sentinel: mismatch
					return
				}
			}
			done <- nil
		}()
	}
	for i := 0; i < sessions; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	// Goroutines: sessions + pool workers + monitor + slack. Without
	// the shared pool this would be sessions×(interOp-1 + intraOp
	// helpers) extra; with it the execution helpers are capped at 3.
	if p := int(peak.Load()); p > base+sessions+pool.Size()+4 {
		t.Fatalf("goroutine peak %d (baseline %d): pool bound leaked", p, base)
	}
	deadline := time.Now().Add(2 * time.Second)
	for goruntime.NumGoroutine() > base+pool.Size()+1 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := goruntime.NumGoroutine(); got > base+pool.Size()+1 {
		t.Fatalf("goroutines %d did not return near baseline %d after Close", got, base)
	}
}
