package runtime

import (
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// Chrome-trace export: the paper's Related Work describes EEG,
// Google's internal tool that "can reconstruct the dynamic execution
// timeline of TensorFlow operations" but was never released. This is
// the equivalent for this runtime: events serialize to the Chrome
// trace-event format (chrome://tracing, Perfetto) with one lane per
// operation class, so a session's simulated timeline can be inspected
// visually.

// chromeEvent is one "complete" (ph=X) trace-event record.
type chromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat"`
	Ph   string            `json:"ph"`
	TS   float64           `json:"ts"`  // microseconds
	Dur  float64           `json:"dur"` // microseconds
	PID  int               `json:"pid"`
	TID  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

type chromeMeta struct {
	Name string            `json:"name"`
	Ph   string            `json:"ph"`
	PID  int               `json:"pid"`
	TID  int               `json:"tid"`
	Args map[string]string `json:"args"`
}

// WriteChromeTrace serializes events as a Chrome trace-event JSON
// array. Each operation class gets its own thread lane; timestamps
// are the session's simulated timeline.
func WriteChromeTrace(w io.Writer, events []Event) error {
	out := make([]interface{}, 0, len(events)+8)
	seen := map[int]bool{}
	for _, e := range events {
		tid := int(e.Class)
		if !seen[tid] {
			seen[tid] = true
			out = append(out, chromeMeta{
				Name: "thread_name", Ph: "M", PID: 1, TID: tid,
				Args: map[string]string{"name": e.Class.Letter() + ": " + e.Class.String()},
			})
		}
		out = append(out, chromeEvent{
			Name: e.Op,
			Cat:  e.Class.String(),
			Ph:   "X",
			TS:   float64(e.Start.Nanoseconds()) / 1e3,
			Dur:  float64(e.Dur.Nanoseconds()) / 1e3,
			PID:  1,
			TID:  tid,
			Args: map[string]string{"node": e.Node.String()},
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// WriteChromeTraceWall serializes events on the measured wall-clock
// timeline with one thread lane per inter-op worker (Event.Worker),
// using Event.WallStart/Event.Wall instead of the simulated clock —
// the inspection view for real parallel runs, where lane occupancy
// shows the achieved (not modeled) inter-op overlap. Events without a
// wall start (traced before this field existed, or synthetic) are
// skipped.
func WriteChromeTraceWall(w io.Writer, events []Event) error {
	var t0 time.Time
	for _, e := range events {
		if e.WallStart.IsZero() {
			continue
		}
		if t0.IsZero() || e.WallStart.Before(t0) {
			t0 = e.WallStart
		}
	}
	out := make([]interface{}, 0, len(events)+8)
	seen := map[int]bool{}
	for _, e := range events {
		if e.WallStart.IsZero() {
			continue
		}
		tid := e.Worker
		if !seen[tid] {
			seen[tid] = true
			out = append(out, chromeMeta{
				Name: "thread_name", Ph: "M", PID: 1, TID: tid,
				Args: map[string]string{"name": fmt.Sprintf("worker %d", tid)},
			})
		}
		out = append(out, chromeEvent{
			Name: e.Op,
			Cat:  e.Class.String(),
			Ph:   "X",
			TS:   float64(e.WallStart.Sub(t0).Nanoseconds()) / 1e3,
			Dur:  float64(e.Wall.Nanoseconds()) / 1e3,
			PID:  1,
			TID:  tid,
			Args: map[string]string{"node": e.Node.String()},
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}
