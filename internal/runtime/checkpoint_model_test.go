// Checkpoint round-trip over a real workload: save → load → resume
// must continue exactly where the original run would have. The test
// lives in an external package so it can drive a registered model
// (autoenc) without an import cycle.
package runtime_test

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/runtime"
	"repro/internal/tensor"

	_ "repro/internal/models/all"
)

// newAutoenc builds a fresh tiny autoenc with a fixed config seed.
func newAutoenc(t *testing.T) core.Model {
	t.Helper()
	m, err := core.New("autoenc")
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Setup(core.Config{Preset: core.PresetTiny, Seed: 5}); err != nil {
		t.Fatal(err)
	}
	return m
}

// TestCheckpointResumeIdenticalLosses drives two identical autoenc
// trajectories to the same point, saves a checkpoint from the first,
// corrupts the second's weights, restores them from the checkpoint,
// and verifies the two runs then produce bit-identical losses — the
// save→load→resume equality a checkpoint must provide.
func TestCheckpointResumeIdenticalLosses(t *testing.T) {
	const warm, resume = 2, 3

	mA := newAutoenc(t)
	mB := newAutoenc(t)
	sA := runtime.NewSession(mA.Graph(), runtime.WithSeed(9))
	sB := runtime.NewSession(mB.Graph(), runtime.WithSeed(9))
	trA := mA.(core.Trainer)
	trB := mB.(core.Trainer)

	// Identical warmup on both instances: weights, data cursor and
	// session RNG advance in lockstep.
	for i := 0; i < warm; i++ {
		la, err := trA.TrainStep(sA)
		if err != nil {
			t.Fatal(err)
		}
		lb, err := trB.TrainStep(sB)
		if err != nil {
			t.Fatal(err)
		}
		if la != lb {
			t.Fatalf("warmup step %d diverged before the checkpoint: %v vs %v", i, la, lb)
		}
	}

	var ckpt bytes.Buffer
	if err := runtime.SaveCheckpoint(&ckpt, mA.Graph()); err != nil {
		t.Fatal(err)
	}

	// Corrupt B's weights, then restore from A's checkpoint.
	for _, v := range mB.Graph().Variables() {
		v.Value().Zero()
	}
	if err := runtime.LoadCheckpoint(bytes.NewReader(ckpt.Bytes()), mB.Graph(), false); err != nil {
		t.Fatal(err)
	}
	for _, va := range mA.Graph().Variables() {
		for _, vb := range mB.Graph().Variables() {
			if va.Name() == vb.Name() {
				if tensor.MaxAbsDiff(va.Value(), vb.Value()) != 0 {
					t.Fatalf("variable %q not restored bit-exactly", va.Name())
				}
			}
		}
	}

	// Resumed training must match the uninterrupted run bit for bit.
	for i := 0; i < resume; i++ {
		la, err := trA.TrainStep(sA)
		if err != nil {
			t.Fatal(err)
		}
		lb, err := trB.TrainStep(sB)
		if err != nil {
			t.Fatal(err)
		}
		if la != lb {
			t.Fatalf("resumed step %d loss %v != uninterrupted %v", i, lb, la)
		}
	}
}

// TestCheckpointCoversOptimizerSlots pins the slotful-optimizer
// contract: autoenc trains with Adam, whose moment accumulators and
// step counter are "<var>/slot/{m,v,step}" graph variables since
// kernel tier 2 — so SaveCheckpoint captures them and a restore
// resumes the exact optimizer trajectory. The test zeroes ONLY the
// slot variables on the resuming instance (weights intact — the state
// a pre-tier-2 checkpoint would leave behind) and requires the restore
// to bring the runs back into bit-exact lockstep; a zeroed Adam step
// counter alone would change the bias correction and diverge.
func TestCheckpointCoversOptimizerSlots(t *testing.T) {
	mA := newAutoenc(t)
	mB := newAutoenc(t)

	slots := 0
	for _, v := range mA.Graph().Variables() {
		if strings.Contains(v.Name(), "/slot/") {
			slots++
		}
	}
	if slots == 0 {
		t.Fatal("Adam optimizer slots are not graph variables")
	}
	var haveStep bool
	for _, v := range mA.Graph().Variables() {
		if strings.HasSuffix(v.Name(), "/slot/step") {
			haveStep = true
		}
	}
	if !haveStep {
		t.Fatal("Adam step counter is not a checkpointed variable")
	}

	sA := runtime.NewSession(mA.Graph(), runtime.WithSeed(9))
	sB := runtime.NewSession(mB.Graph(), runtime.WithSeed(9))
	trA := mA.(core.Trainer)
	trB := mB.(core.Trainer)
	for i := 0; i < 2; i++ {
		if _, err := trA.TrainStep(sA); err != nil {
			t.Fatal(err)
		}
		if _, err := trB.TrainStep(sB); err != nil {
			t.Fatal(err)
		}
	}
	var ckpt bytes.Buffer
	if err := runtime.SaveCheckpoint(&ckpt, mA.Graph()); err != nil {
		t.Fatal(err)
	}
	// Lose only the optimizer state on B.
	for _, v := range mB.Graph().Variables() {
		if strings.Contains(v.Name(), "/slot/") {
			v.Value().Zero()
		}
	}
	if err := runtime.LoadCheckpoint(bytes.NewReader(ckpt.Bytes()), mB.Graph(), false); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		la, err := trA.TrainStep(sA)
		if err != nil {
			t.Fatal(err)
		}
		lb, err := trB.TrainStep(sB)
		if err != nil {
			t.Fatal(err)
		}
		if la != lb {
			t.Fatalf("slot-restored step %d loss %v != uninterrupted %v", i, lb, la)
		}
	}
}

// TestCheckpointResumeUnderParallelScheduler: the same round-trip,
// resumed at inter-op width 4 — checkpoint restore composes with the
// parallel scheduler's determinism contract.
func TestCheckpointResumeUnderParallelScheduler(t *testing.T) {
	mA := newAutoenc(t)
	mB := newAutoenc(t)
	sA := runtime.NewSession(mA.Graph(), runtime.WithSeed(9))
	sB := runtime.NewSession(mB.Graph(), runtime.WithSeed(9), runtime.WithInterOpWorkers(4))
	trA := mA.(core.Trainer)
	trB := mB.(core.Trainer)
	for i := 0; i < 2; i++ {
		if _, err := trA.TrainStep(sA); err != nil {
			t.Fatal(err)
		}
		if _, err := trB.TrainStep(sB); err != nil {
			t.Fatal(err)
		}
	}
	var ckpt bytes.Buffer
	if err := runtime.SaveCheckpoint(&ckpt, mA.Graph()); err != nil {
		t.Fatal(err)
	}
	for _, v := range mB.Graph().Variables() {
		v.Value().Zero()
	}
	if err := runtime.LoadCheckpoint(bytes.NewReader(ckpt.Bytes()), mB.Graph(), false); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		la, err := trA.TrainStep(sA)
		if err != nil {
			t.Fatal(err)
		}
		lb, err := trB.TrainStep(sB)
		if err != nil {
			t.Fatal(err)
		}
		if la != lb {
			t.Fatalf("parallel resumed step %d loss %v != serial %v", i, lb, la)
		}
	}
}
