package runtime

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/ops"
	"repro/internal/tensor"
)

// assertSameTensors fails if a and b differ bitwise.
func assertSameTensors(t *testing.T, label string, a, b []*tensor.Tensor) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: %d vs %d tensors", label, len(a), len(b))
	}
	for i := range a {
		if !tensor.SameShape(a[i].Shape(), b[i].Shape()) {
			t.Fatalf("%s[%d]: shape %v vs %v", label, i, a[i].Shape(), b[i].Shape())
		}
		ad, bd := a[i].Data(), b[i].Data()
		for j := range ad {
			if ad[j] != bd[j] {
				t.Fatalf("%s[%d]: element %d differs: %v vs %v", label, i, j, ad[j], bd[j])
			}
		}
	}
}

func assertSameVariables(t *testing.T, ga, gb *graph.Graph) {
	t.Helper()
	va, vb := ga.Variables(), gb.Variables()
	if len(va) != len(vb) {
		t.Fatalf("variable count %d vs %d", len(va), len(vb))
	}
	for i := range va {
		assertSameTensors(t, "variable "+va[i].Name(), []*tensor.Tensor{va[i].Value()}, []*tensor.Tensor{vb[i].Value()})
	}
}

// TestParallelMatchesSequentialChain: a linear chain leaves no
// parallelism, but the scheduler must still produce identical results.
func TestParallelMatchesSequentialChain(t *testing.T) {
	g1, x1, _, y1 := buildChain()
	g2, x2, _, y2 := buildChain()
	_, _ = g1, g2
	feedA := Feeds{x1: tensor.Ones(4, 8)}
	feedB := Feeds{x2: tensor.Ones(4, 8)}
	ser := NewSession(g1)
	par := NewSession(g2, WithInterOpWorkers(4))
	for i := 0; i < 3; i++ {
		a := ser.MustRun([]*graph.Node{y1}, feedA)
		b := par.MustRun([]*graph.Node{y2}, feedB)
		assertSameTensors(t, "chain run", a, b)
	}
}

// buildWide constructs a graph with many independent branches summed
// at the end — the residual/memnet shape the scheduler exists for.
func buildWide(branches, depth int) (*graph.Graph, *graph.Node, *graph.Node) {
	g := graph.New()
	x := g.Placeholder("x", 16, 16)
	var tails []*graph.Node
	for b := 0; b < branches; b++ {
		w := g.Variable(fmt.Sprintf("w%d", b), tensor.Full(0.05+0.01*float32(b), 16, 16))
		h := x
		for d := 0; d < depth; d++ {
			h = ops.Relu(ops.MatMul(h, w))
		}
		tails = append(tails, h)
	}
	sum := tails[0]
	for _, tl := range tails[1:] {
		sum = ops.Add(sum, tl)
	}
	return g, x, sum
}

// TestParallelWideGraphBitIdentical: independent branches execute
// concurrently yet produce bit-identical fetches, with the arena
// guard attached to catch any buffer-lifetime violation.
func TestParallelWideGraphBitIdentical(t *testing.T) {
	g1, x1, y1 := buildWide(6, 4)
	g2, x2, y2 := buildWide(6, 4)
	feed1 := Feeds{x1: tensor.Ones(16, 16)}
	feed2 := Feeds{x2: tensor.Ones(16, 16)}
	ser := NewSession(g1)
	par := NewSession(g2, WithInterOpWorkers(4))
	guard := tensor.NewBufferGuard()
	par.Arena().SetGuard(guard)
	for i := 0; i < 4; i++ {
		a := ser.MustRun([]*graph.Node{y1}, feed1)
		b := par.MustRun([]*graph.Node{y2}, feed2)
		assertSameTensors(t, "wide run", a, b)
	}
	if v := guard.Violations(); len(v) != 0 {
		t.Fatalf("arena guard violations: %v", v)
	}
}

// TestParallelSeedReplay: stochastic graphs must replay identically
// for any inter-op width — the serial Impure lane contract.
func TestParallelSeedReplay(t *testing.T) {
	build := func() (*graph.Graph, *graph.Node) {
		g := graph.New()
		a := ops.RandomStandardNormal(g, 8, 8)
		b := ops.RandomUniform(g, 8, 8)
		c := ops.RandomUniform(g, 8, 8)
		// Independent consumers of independent samples: without the
		// serial lane, draw order (and thus values) would race.
		y := ops.Add(ops.Relu(a), ops.Add(ops.Square(b), ops.Relu(c)))
		return g, y
	}
	run := func(interop int) [][]*tensor.Tensor {
		g, y := build()
		s := NewSession(g, WithSeed(42), WithInterOpWorkers(interop))
		var out [][]*tensor.Tensor
		for i := 0; i < 3; i++ {
			out = append(out, s.MustRun([]*graph.Node{y}, nil))
		}
		return out
	}
	serial := run(1)
	serialAgain := run(1)
	par := run(4)
	for i := range serial {
		assertSameTensors(t, "serial replay", serial[i], serialAgain[i])
		assertSameTensors(t, "parallel replay", serial[i], par[i])
	}
}

// TestParallelTrainingBitIdentical: a training step with dropout and
// in-place optimizer updates — the full hazard surface (RNG order,
// variable read/write serialization, arena reuse) — must leave
// bit-identical weights and losses for any worker count.
func TestParallelTrainingBitIdentical(t *testing.T) {
	build := func() (*graph.Graph, *graph.Node, []*graph.Node, *graph.Node) {
		g := graph.New()
		x := g.Placeholder("x", 4, 8)
		w1 := g.Variable("w1", tensor.Full(0.1, 8, 8))
		w2 := g.Variable("w2", tensor.Full(0.2, 8, 8))
		h := ops.Dropout(ops.Relu(ops.MatMul(x, w1)), 0.3)
		y := ops.MatMul(h, w2)
		loss := ops.Sum(ops.Square(y))
		grads, err := graph.Gradients(loss, []*graph.Node{w1, w2})
		if err != nil {
			panic(err)
		}
		u1 := ops.ApplySGD(w1, grads[0], 0.01)
		u2 := ops.ApplySGD(w2, grads[1], 0.01)
		return g, x, []*graph.Node{loss, u1, u2}, loss
	}
	run := func(interop int) (*graph.Graph, []float32) {
		g, x, fetches, _ := build()
		s := NewSession(g, WithSeed(7), WithInterOpWorkers(interop))
		s.SetTraining(true)
		guard := tensor.NewBufferGuard()
		s.Arena().SetGuard(guard)
		var losses []float32
		feed := Feeds{x: tensor.Full(0.5, 4, 8)}
		for i := 0; i < 5; i++ {
			out := s.MustRun(fetches, feed)
			losses = append(losses, out[0].Data()[0])
		}
		if v := guard.Violations(); len(v) != 0 {
			t.Fatalf("arena guard violations: %v", v)
		}
		return g, losses
	}
	gSer, lossSer := run(1)
	gPar, lossPar := run(4)
	for i := range lossSer {
		if lossSer[i] != lossPar[i] {
			t.Fatalf("step %d loss diverges: serial %v parallel %v", i, lossSer[i], lossPar[i])
		}
	}
	assertSameVariables(t, gSer, gPar)
}

// TestPlanRecordsSchedulingEdges: the compile-time dependency analysis
// must include variable hazard edges (the gradient kernel reading w2
// is ordered before w2's in-place update) and count the op steps.
func TestPlanRecordsSchedulingEdges(t *testing.T) {
	g := graph.New()
	x := g.Placeholder("x", 2, 4)
	w1 := g.Variable("w1", tensor.Full(0.1, 4, 4))
	w2 := g.Variable("w2", tensor.Full(0.2, 4, 4))
	y := ops.MatMul(ops.MatMul(x, w1), w2)
	loss := ops.Sum(y)
	grads, err := graph.Gradients(loss, []*graph.Node{w1, w2})
	if err != nil {
		t.Fatal(err)
	}
	u1 := ops.ApplySGD(w1, grads[0], 0.1)
	u2 := ops.ApplySGD(w2, grads[1], 0.1)
	s := NewSession(g)
	plan := s.Plan([]*graph.Node{loss, u1, u2})
	if plan.Ops() == 0 || plan.Edges() == 0 {
		t.Fatalf("plan should record ops and edges, got %d/%d", plan.Ops(), plan.Edges())
	}
	// Locate the update of w2 and the MatMul gradient that reads w2;
	// the hazard analysis must have ordered reader before writer.
	var upPos, readerPos = -1, -1
	for i, st := range plan.steps {
		if st.kind != graph.KindOp {
			continue
		}
		if st.node == u2 {
			upPos = i
		}
		if st.node != u2 && st.node != y {
			for _, in := range st.node.Inputs() {
				if in == w2 {
					readerPos = i
				}
			}
		}
	}
	if upPos < 0 || readerPos < 0 {
		t.Fatalf("did not find update (%d) or reader (%d) steps", upPos, readerPos)
	}
	// The reader must reach the update through scheduling edges.
	reach := map[int32]bool{}
	var stack []int32
	push := func(js []int32) {
		for _, j := range js {
			if !reach[j] {
				reach[j] = true
				stack = append(stack, j)
			}
		}
	}
	push(plan.succs[readerPos])
	for len(stack) > 0 {
		j := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		push(plan.succs[j])
	}
	if !reach[int32(upPos)] {
		t.Fatalf("variable reader at %d is not ordered before update at %d", readerPos, upPos)
	}
}

// TestParallelTraceTimeline: trace events carry worker ids, wall
// times, and critical-path finishes; the simulated clock advances by
// the parallel makespan, which on a wide graph is strictly less than
// the serial op-time sum.
func TestParallelTraceTimeline(t *testing.T) {
	g, x, y := buildWide(6, 3)
	s := NewSession(g, WithInterOpWorkers(4), WithTrace())
	s.MustRun([]*graph.Node{y}, Feeds{x: tensor.Ones(16, 16)})
	events := s.Trace()
	if len(events) == 0 {
		t.Fatal("no events traced")
	}
	var serial, maxCP time.Duration
	workers := map[int]bool{}
	for _, e := range events {
		serial += e.Dur
		if e.CP > maxCP {
			maxCP = e.CP
		}
		workers[e.Worker] = true
		if e.CP < e.Dur {
			t.Fatalf("critical path %v below own duration %v", e.CP, e.Dur)
		}
	}
	makespan := s.SimTime()
	if makespan > serial {
		t.Fatalf("parallel makespan %v exceeds serial sum %v", makespan, serial)
	}
	if makespan < maxCP {
		t.Fatalf("makespan %v below critical path %v", makespan, maxCP)
	}
	if makespan >= serial {
		t.Fatalf("6 independent branches on 4 workers should overlap: makespan %v, serial %v", makespan, serial)
	}
	if len(workers) < 2 {
		t.Fatalf("expected multiple workers to execute, saw %v", workers)
	}
}

// TestParallelMissingFeedAndErrors: the parallel path must report the
// same feed validation errors as sequential execution.
func TestParallelMissingFeedAndErrors(t *testing.T) {
	g, x, _, y := buildChain()
	_, _ = g, x
	s := NewSession(g, WithInterOpWorkers(4))
	if _, err := s.Run([]*graph.Node{y}, nil); err == nil {
		t.Fatal("expected missing-feed error")
	}
	if _, err := s.Run([]*graph.Node{y}, Feeds{x: tensor.Ones(9, 9)}); err == nil {
		t.Fatal("expected feed shape error")
	}
	// After errors, a correct run must still work (scheduler state is
	// per-run).
	out := s.MustRun([]*graph.Node{y}, Feeds{x: tensor.Ones(4, 8)})
	if len(out) != 1 {
		t.Fatal("recovery run failed")
	}
}

// failingOp errors in Forward on demand (after shape inference).
type failingOp struct{}

func (failingOp) Name() string         { return "Failing" }
func (failingOp) Class() graph.OpClass { return graph.ClassElementwise }
func (failingOp) InferShape(in [][]int) ([]int, error) {
	return append([]int(nil), in[0]...), nil
}
func (failingOp) Forward(ctx *graph.ExecContext, in []*tensor.Tensor) (*tensor.Tensor, error) {
	return nil, fmt.Errorf("deliberate failure")
}

// panickyOp panics in Forward.
type panickyOp struct{}

func (panickyOp) Name() string         { return "Panicky" }
func (panickyOp) Class() graph.OpClass { return graph.ClassElementwise }
func (panickyOp) InferShape(in [][]int) ([]int, error) {
	return append([]int(nil), in[0]...), nil
}
func (panickyOp) Forward(ctx *graph.ExecContext, in []*tensor.Tensor) (*tensor.Tensor, error) {
	panic("deliberate panic")
}

// TestParallelOpErrorPropagates: an op error inside a worker fails the
// Run with the sequential error format and stops the scheduler.
func TestParallelOpErrorPropagates(t *testing.T) {
	g := graph.New()
	x := g.Placeholder("x", 4, 4)
	bad := g.MustApply(failingOp{}, ops.Relu(x))
	y := ops.Add(ops.Square(x), bad)
	s := NewSession(g, WithInterOpWorkers(3))
	_, err := s.Run([]*graph.Node{y}, Feeds{x: tensor.Ones(4, 4)})
	if err == nil {
		t.Fatal("expected op error")
	}
}

// TestParallelPanicRethrown: a panic inside a worker is re-raised on
// the calling goroutine, matching sequential Run semantics (and the
// serving engine's batch containment relies on it being catchable).
func TestParallelPanicRethrown(t *testing.T) {
	g := graph.New()
	x := g.Placeholder("x", 4, 4)
	bad := g.MustApply(panickyOp{}, ops.Relu(x))
	y := ops.Add(ops.Square(x), bad)
	s := NewSession(g, WithInterOpWorkers(3))
	defer func() {
		if recover() == nil {
			t.Fatal("expected the worker panic to be re-raised on the caller")
		}
	}()
	_, _ = s.Run([]*graph.Node{y}, Feeds{x: tensor.Ones(4, 4)})
}

// ---- property/fuzz test: random DAGs ----

// randomDAG builds a deterministic pseudo-random training graph:
// random fan-in/fan-out over (4,6) tensors with a stateful-op mix
// (dropout, RNG sampling, in-place SGD updates) plus view chains, a
// loss, and gradient-descent updates. Built twice with the same seed
// it yields structurally identical graphs.
func randomDAG(seed int64, size int) (*graph.Graph, *graph.Node, []*graph.Node) {
	r := rand.New(rand.NewSource(seed))
	g := graph.New()
	x := g.Placeholder("x", 4, 6)
	v1 := g.Variable("v1", tensor.Full(0.07, 4, 6))
	v2 := g.Variable("v2", tensor.Full(-0.05, 4, 6))
	w := g.Variable("w", tensor.Full(0.11, 6, 6))
	cur := ops.Add(ops.MatMul(ops.Add(x, v1), w), v2)
	pool := []*graph.Node{cur}
	pick := func() *graph.Node { return pool[r.Intn(len(pool))] }
	for i := 0; i < size; i++ {
		var nd *graph.Node
		switch r.Intn(8) {
		case 0:
			nd = ops.Relu(pick())
		case 1:
			nd = ops.Square(pick())
		case 2:
			nd = ops.Add(pick(), pick())
		case 3:
			nd = ops.Mul(pick(), pick())
		case 4:
			nd = ops.MatMul(pick(), w)
		case 5:
			nd = ops.Dropout(pick(), 0.2)
		case 6:
			nd = ops.Add(pick(), ops.RandomUniform(g, 4, 6))
		case 7:
			// View chain: exercises the alias analysis and anti-edges.
			nd = ops.Reshape(ops.Reshape(pick(), 6, 4), 4, 6)
		}
		pool = append(pool, nd)
	}
	// Sum a few tails so late nodes reach the loss.
	loss := ops.Sum(pool[len(pool)-1])
	for i := 0; i < 2; i++ {
		loss = ops.Add(loss, ops.Sum(pick()))
	}
	grads, err := graph.Gradients(loss, []*graph.Node{v1, v2, w})
	if err != nil {
		panic(err)
	}
	fetches := []*graph.Node{loss, pick(), pick()}
	for i, v := range []*graph.Node{v1, v2, w} {
		fetches = append(fetches, ops.ApplySGD(v, grads[i], 0.003))
	}
	return g, x, fetches
}

// TestSchedulerPropertyRandomDAGs is the scheduler's property test:
// for a sweep of random graphs, parallel execution must equal
// sequential execution bitwise — fetches and trained variables — and
// the arena guard must observe no buffer being written while readers
// of its previous value are outstanding.
func TestSchedulerPropertyRandomDAGs(t *testing.T) {
	seeds := 12
	if testing.Short() {
		seeds = 4
	}
	for seed := int64(1); seed <= int64(seeds); seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			size := 10 + int(seed*7)%30
			gSer, xSer, fSer := randomDAG(seed, size)
			gPar, xPar, fPar := randomDAG(seed, size)
			ser := NewSession(gSer, WithSeed(100+seed))
			par := NewSession(gPar, WithSeed(100+seed), WithInterOpWorkers(4))
			ser.SetTraining(true)
			par.SetTraining(true)
			guard := tensor.NewBufferGuard()
			par.Arena().SetGuard(guard)
			feedS := Feeds{xSer: tensor.Full(0.3, 4, 6)}
			feedP := Feeds{xPar: tensor.Full(0.3, 4, 6)}
			for run := 0; run < 3; run++ {
				a, err := ser.Run(fSer, feedS)
				if err != nil {
					t.Fatal(err)
				}
				b, err := par.Run(fPar, feedP)
				if err != nil {
					t.Fatal(err)
				}
				assertSameTensors(t, fmt.Sprintf("run %d fetches", run), a, b)
			}
			assertSameVariables(t, gSer, gPar)
			if v := guard.Violations(); len(v) != 0 {
				t.Fatalf("arena guard violations: %v", v)
			}
		})
	}
}

// TestParallelWorkloadSessionOptions: inter-op width composes with the
// other session options (device, intra-op workers, trace).
func TestParallelComposesWithGPUDevice(t *testing.T) {
	g1, x1, y1 := buildWide(4, 2)
	g2, x2, y2 := buildWide(4, 2)
	ser := NewSession(g1, WithDevice(NewGTX960()), WithWorkers(2))
	par := NewSession(g2, WithDevice(NewGTX960()), WithWorkers(2), WithInterOpWorkers(3))
	a := ser.MustRun([]*graph.Node{y1}, Feeds{x1: tensor.Ones(16, 16)})
	b := par.MustRun([]*graph.Node{y2}, Feeds{x2: tensor.Ones(16, 16)})
	assertSameTensors(t, "gpu wide", a, b)
}

// TestVariableReadThroughViewIsHazardOrdered: an op that reads a
// variable through a view (MatMul of Reshape(w)) on a side branch that
// does not feed the gradient chain must still be ordered against w's
// in-place update — the alias-propagating hazard analysis, not just
// direct-input detection.
func TestVariableReadThroughViewIsHazardOrdered(t *testing.T) {
	build := func() (*graph.Graph, *graph.Node, []*graph.Node) {
		g := graph.New()
		x := g.Placeholder("x", 4, 4)
		w := g.Variable("w", tensor.Full(0.2, 4, 4))
		// Side output reading w only through a view; not an ancestor
		// of the loss, so no data edge orders it against the update.
		side := ops.MatMul(x, ops.Reshape(w, 4, 4))
		loss := ops.Sum(ops.MatMul(x, w))
		grads, err := graph.Gradients(loss, []*graph.Node{w})
		if err != nil {
			panic(err)
		}
		up := ops.ApplySGD(w, grads[0], 0.1)
		return g, x, []*graph.Node{loss, side, up}
	}

	// Structural check: the view reader reaches the update through
	// scheduling edges.
	g, _, fetches := build()
	s := NewSession(g)
	plan := s.Plan(fetches)
	var readerPos, upPos = -1, -1
	for i, st := range plan.steps {
		if st.kind != graph.KindOp {
			continue
		}
		if st.node == fetches[1] {
			readerPos = i
		}
		if st.node == fetches[2] {
			upPos = i
		}
	}
	if readerPos < 0 || upPos < 0 {
		t.Fatalf("missing reader (%d) or update (%d)", readerPos, upPos)
	}
	reach := map[int32]bool{}
	stack := append([]int32(nil), plan.succs[readerPos]...)
	for len(stack) > 0 {
		j := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if reach[j] {
			continue
		}
		reach[j] = true
		stack = append(stack, plan.succs[j]...)
	}
	if !reach[int32(upPos)] {
		t.Fatal("view-mediated variable reader is not ordered before the in-place update")
	}

	// Behavioral check: serial and parallel stay bit-identical across
	// update steps (the side fetch must read pre-update w each step).
	gS, xS, fS := build()
	gP, xP, fP := build()
	ser := NewSession(gS)
	par := NewSession(gP, WithInterOpWorkers(4))
	for i := 0; i < 4; i++ {
		a := ser.MustRun(fS, Feeds{xS: tensor.Ones(4, 4)})
		b := par.MustRun(fP, Feeds{xP: tensor.Ones(4, 4)})
		assertSameTensors(t, fmt.Sprintf("run %d", i), a, b)
	}
	assertSameVariables(t, gS, gP)
}

// TestParallelSimTimelineDeterministic: with a fully modeled device
// (roofline GPU), the simulated makespan, lane assignment and
// critical path must be identical across repeated identical runs —
// the post-execution list-scheduling pass is independent of host
// goroutine interleaving.
func TestParallelSimTimelineDeterministic(t *testing.T) {
	measure := func() (time.Duration, []Event) {
		g, x, y := buildWide(6, 3)
		s := NewSession(g, WithDevice(NewGTX960()), WithInterOpWorkers(4), WithTrace())
		s.MustRun([]*graph.Node{y}, Feeds{x: tensor.Ones(16, 16)})
		return s.SimTime(), s.Trace()
	}
	sim1, ev1 := measure()
	sim2, ev2 := measure()
	if sim1 != sim2 {
		t.Fatalf("modeled makespan not reproducible: %v vs %v", sim1, sim2)
	}
	if len(ev1) != len(ev2) {
		t.Fatalf("event counts differ: %d vs %d", len(ev1), len(ev2))
	}
	for i := range ev1 {
		if ev1[i].Op != ev2[i].Op || ev1[i].Start != ev2[i].Start ||
			ev1[i].Worker != ev2[i].Worker || ev1[i].CP != ev2[i].CP {
			t.Fatalf("event %d differs: %+v vs %+v", i, ev1[i], ev2[i])
		}
	}
}
