package runtime

// Parallel inter-op plan scheduler.
//
// A compiled Plan carries, besides its sequential schedule, the
// dependency-counting structure of a ready-queue scheduler: per-step
// successor lists and in-degrees over four edge classes —
//
//   - data edges (an op waits for its inputs);
//   - variable hazard edges (every access to a node a graph.Mutator
//     rewrites is serialized in schedule order, so gradient kernels
//     never race an in-place optimizer update and replay reads the
//     same values sequential execution would);
//   - the serial Impure lane (stateful/RNG ops — random sampling,
//     dropout's mask handoff, optimizer slot state — are chained in
//     schedule order, which keeps WithSeed replay bit-identical for
//     any worker count);
//   - arena anti-dependency edges (a buffer's next writer waits for
//     the previous holder and all of its readers to retire —
//     completion-count gating of the liveness pass's slot reuse).
//
// runParallel drains the ready queue with the session goroutine plus
// up to interOp-1 helpers leased from the shared worker pool
// (internal/sched) — no goroutines are spawned per Run. Helper
// acquisition is non-blocking: under pool pressure fewer helpers
// arrive and the caller absorbs the work, so progress never depends
// on other tenants of the pool. The queue is a max-heap ordered by
// longest processing time to a sink (critical-path-aware priority):
// among simultaneously ready steps the drain starts the one heading
// the heaviest remaining chain, which shrinks trailing stragglers and
// closes part of the achieved-vs-achievable gap `fathom profile`
// reports. Priorities start as compile-time chain lengths and are
// refreshed with measured durations after each parallel run; the
// determinism contract makes results independent of pop order, so the
// priority is pure scheduling policy.
//
// Each helper owns a private ExecContext (its own tensor.Pool, so
// kernel scratch space and timing accumulators stay
// goroutine-confined); the RNG is deliberately shared, protected by
// the serial Impure lane. Completion releases successors via atomic
// in-degree decrements; the heap's mutex plus the atomics establish
// the happens-before edges that make value propagation race-free.
//
// Timing follows the package's simulation philosophy: N simulated
// worker lanes each keep a clock, an op is assigned the lane that can
// start it earliest (list scheduling) at max(inputs' simulated
// finish, lane free), and the run's simulated makespan — not the sum
// of op durations — advances the session clock. Lanes are modeled
// rather than tied to host goroutines so the reported schedule
// reflects the configured width even on a single-core host, exactly
// as tensor.Pool's serial strategy models intra-op workers (with
// WithIntraOpWorkers the op durations themselves are measured wall
// times instead). Trace events record the lane, the measured wall
// time, and the critical-path finish, from which internal/profiling
// derives achieved and achievable inter-op speedup per workload.

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/graph"
	"repro/internal/tensor"
)

// readyHeap is the scheduler's ready queue: a mutex-protected max-heap
// keyed by plan priority (ties broken by schedule position, earliest
// first). pop blocks until an item arrives or the queue halts; halt
// wakes every waiter and makes pop fail fast even if items remain
// (error paths prefer stopping over draining).
type readyHeap struct {
	mu     sync.Mutex
	cond   *sync.Cond
	items  []int32
	prio   []int64
	halted bool
}

func newReadyHeap(prio []int64, capHint int) *readyHeap {
	h := &readyHeap{prio: prio, items: make([]int32, 0, capHint)}
	h.cond = sync.NewCond(&h.mu)
	return h
}

// less orders the max-heap: higher priority first, then earlier
// schedule position.
func (h *readyHeap) less(a, b int32) bool {
	if h.prio[a] != h.prio[b] {
		return h.prio[a] > h.prio[b]
	}
	return a < b
}

func (h *readyHeap) push(i int32) {
	h.mu.Lock()
	h.items = append(h.items, i)
	// Sift up.
	c := len(h.items) - 1
	for c > 0 {
		p := (c - 1) / 2
		if !h.less(h.items[c], h.items[p]) {
			break
		}
		h.items[c], h.items[p] = h.items[p], h.items[c]
		c = p
	}
	h.mu.Unlock()
	h.cond.Signal()
}

// pop blocks until an item or halt: the session goroutine's accessor,
// safe because that goroutine never occupies a shared-pool worker.
func (h *readyHeap) pop() (int32, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for len(h.items) == 0 && !h.halted {
		h.cond.Wait()
	}
	if h.halted {
		return 0, false
	}
	return h.popLocked(), true
}

// tryPop never blocks: helpers use it so an empty queue releases the
// pool worker instead of parking on it.
func (h *readyHeap) tryPop() (int32, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.halted || len(h.items) == 0 {
		return 0, false
	}
	return h.popLocked(), true
}

// hasWork reports whether a helper could be usefully acquired.
func (h *readyHeap) hasWork() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return !h.halted && len(h.items) > 0
}

func (h *readyHeap) popLocked() int32 {
	top := h.items[0]
	last := len(h.items) - 1
	h.items[0] = h.items[last]
	h.items = h.items[:last]
	// Sift down.
	p := 0
	for {
		l, r := 2*p+1, 2*p+2
		m := p
		if l < last && h.less(h.items[l], h.items[m]) {
			m = l
		}
		if r < last && h.less(h.items[r], h.items[m]) {
			m = r
		}
		if m == p {
			break
		}
		h.items[p], h.items[m] = h.items[m], h.items[p]
		p = m
	}
	return top
}

func (h *readyHeap) halt() {
	h.mu.Lock()
	h.halted = true
	h.mu.Unlock()
	h.cond.Broadcast()
}

// parRun is the shared state of one parallel Run's drain.
type parRun struct {
	plan      *Plan
	ready     *readyHeap
	indeg     []int32
	remaining atomic.Int32
	guard     *tensor.BufferGuard

	// Helper management: freeCtx holds the per-helper ExecContexts not
	// currently driving a helper; wg tracks live helpers. Helpers are
	// acquired lazily whenever ready work exists and returned to the
	// shared pool the moment the queue runs dry, so a drain stuck on a
	// serial stretch (the Impure lane, a long dependency chain) holds
	// zero pool workers for other tenants.
	ctxMu   sync.Mutex
	freeCtx []*graph.ExecContext
	wg      sync.WaitGroup

	mu       sync.Mutex // first error/panic
	firstErr error
	panicVal any
}

// runParallel executes the plan with the session goroutine plus up to
// s.interOp-1 leased helpers. It must only be called with plan.nOps >
// 1 and s.interOp > 1.
//
// On error the scheduler stops promptly, but independent operations
// already released — or in flight on other workers — may still
// execute before Run returns, so (unlike the sequential driver, which
// stops at the first error) variable state after a failed parallel
// Run is indeterminate. Successful Runs are bit-identical to
// sequential execution.
func (s *Session) runParallel(plan *Plan, feeds Feeds) error {
	if err := resolveNonOps(plan, feeds); err != nil {
		return err
	}

	workers := s.interOp
	if workers > plan.nOps {
		workers = plan.nOps
	}
	hctx := s.helperContexts(workers - 1)
	guard := s.arena.Guard()

	indeg := plan.indegRun
	copy(indeg, plan.indeg)
	durs := plan.durs
	walls := plan.walls
	for i := range durs {
		durs[i] = 0
		walls[i] = 0
		plan.wallT0[i] = time.Time{}
	}

	pr := &parRun{
		plan:    plan,
		ready:   newReadyHeap(plan.prio, plan.nOps),
		indeg:   indeg,
		guard:   guard,
		freeCtx: append(make([]*graph.ExecContext, 0, len(hctx)), hctx...),
	}
	pr.remaining.Store(int32(plan.nOps))
	for i := range plan.steps {
		if plan.steps[i].kind == graph.KindOp && indeg[i] == 0 {
			pr.ready.push(int32(i))
		}
	}

	// Helpers come from the session's lease on the shared pool —
	// acquisition is non-blocking, and the caller participates in the
	// drain regardless, so a saturated pool degrades to (correct)
	// caller-only execution. topUpHelpers is called again whenever
	// steps become ready, so helpers released during serial stretches
	// come back as parallelism reappears.
	s.topUpHelpers(pr)
	s.callerDrain(pr)
	pr.wg.Wait()

	if pr.panicVal != nil {
		panic(pr.panicVal)
	}
	if pr.firstErr != nil {
		return pr.firstErr
	}
	s.simulateSchedule(plan, workers)
	s.refreshPriorities(plan)
	return nil
}

// topUpHelpers acquires one leased helper per free helper context
// while ready work exists. Callers are always drain participants (the
// session goroutine or a live helper), so the WaitGroup counter can
// never be awaited concurrently with an Add from here.
func (s *Session) topUpHelpers(pr *parRun) {
	for pr.ready.hasWork() {
		pr.ctxMu.Lock()
		n := len(pr.freeCtx)
		if n == 0 {
			pr.ctxMu.Unlock()
			return
		}
		ctx := pr.freeCtx[n-1]
		pr.freeCtx = pr.freeCtx[:n-1]
		pr.ctxMu.Unlock()
		pr.wg.Add(1)
		ok := s.lease.TryRun(func() {
			defer pr.wg.Done()
			s.helperDrain(pr, ctx)
			pr.ctxMu.Lock()
			pr.freeCtx = append(pr.freeCtx, ctx)
			pr.ctxMu.Unlock()
		})
		if !ok {
			pr.wg.Done()
			pr.ctxMu.Lock()
			pr.freeCtx = append(pr.freeCtx, ctx)
			pr.ctxMu.Unlock()
			return
		}
	}
}

// callerDrain is the session goroutine's participation: it may block
// on the ready queue (it occupies no pool worker), so it runs until
// the queue halts on completion or error.
func (s *Session) callerDrain(pr *parRun) {
	for {
		i, ok := pr.ready.pop()
		if !ok {
			return
		}
		if !s.execReady(pr, i, s.ctx) {
			return
		}
	}
}

// helperDrain is a leased helper's participation: it drains with
// non-blocking pops and returns as soon as the queue is empty or
// halted, handing the pool worker back instead of parking on it.
func (s *Session) helperDrain(pr *parRun, ctx *graph.ExecContext) {
	for {
		i, ok := pr.ready.tryPop()
		if !ok {
			return
		}
		if !s.execReady(pr, i, ctx) {
			return
		}
	}
}

// execReady executes one ready step on ctx, releases its successors,
// and reports whether the drain should continue.
func (s *Session) execReady(pr *parRun, i int32, ctx *graph.ExecContext) bool {
	plan := pr.plan
	values := plan.values
	st := &plan.steps[i]
	in := st.in
	for j, p := range st.ins {
		in[j] = values[p]
	}
	var out *tensor.Tensor
	var dur, wall time.Duration
	var t0 time.Time
	var err error
	func() {
		// An op panic must not kill a pool worker's process; it is
		// re-raised on the calling goroutine after the drain joins,
		// preserving sequential Run semantics.
		defer func() {
			if p := recover(); p != nil {
				pr.mu.Lock()
				if pr.panicVal == nil {
					pr.panicVal = p
				}
				pr.mu.Unlock()
				err = fmt.Errorf("panic: %v", p)
			}
		}()
		t0 = time.Now()
		out, dur, err = s.execStep(ctx, st, in, pr.guard)
		wall = time.Since(t0)
	}()
	if err != nil {
		pr.mu.Lock()
		if pr.firstErr == nil {
			pr.firstErr = fmt.Errorf("runtime: %v: %w", st.node, err)
		}
		pr.mu.Unlock()
		pr.ready.halt()
		return false
	}
	values[i] = out
	plan.durs[i] = dur
	plan.walls[i] = wall
	plan.wallT0[i] = t0

	released := false
	for _, sc := range plan.succs[i] {
		if atomic.AddInt32(&pr.indeg[sc], -1) == 0 {
			pr.ready.push(sc)
			released = true
		}
	}
	if pr.remaining.Add(-1) == 0 {
		pr.ready.halt()
		return false
	}
	if released {
		s.topUpHelpers(pr)
	}
	return true
}

// refreshPriorities recomputes the ready queue's LPT keys from the
// run's measured durations: a step's priority becomes its duration
// plus the heaviest successor chain, so the next Run's drain orders
// ready steps by real remaining work rather than chain length.
func (s *Session) refreshPriorities(plan *Plan) {
	prio := plan.prio
	for i := len(plan.steps) - 1; i >= 0; i-- {
		if plan.steps[i].kind != graph.KindOp {
			continue
		}
		var h int64
		for _, sc := range plan.succs[i] {
			if p := prio[sc]; p > h {
				h = p
			}
		}
		prio[i] = h + int64(plan.durs[i])
	}
}

// simulateSchedule computes the run's simulated parallel timeline
// after execution: list scheduling of the measured op durations over
// `workers` modeled lanes, in schedule order, constrained by the
// plan's full scheduling edge set (data, hazard, serial-lane and
// anti-dependency edges) — the same constraints the real scheduler
// enforces, so the modeled makespan is always a schedule the
// determinism contract permits. Decoupling the model from host
// goroutine interleaving makes the reported makespan, lane assignment
// and critical path deterministic given the durations (so a fully
// modeled device, like the roofline GPU, reproduces its profile
// exactly), and it reflects the configured width even on a
// single-core host — the same philosophy as tensor.Pool's intra-op
// model. Trace events are emitted in schedule order; the session
// clock advances by the makespan.
func (s *Session) simulateSchedule(plan *Plan, workers int) {
	finish := plan.finish
	cp := plan.cp
	for i := range finish {
		finish[i] = 0
		cp[i] = 0
	}
	lanes := make([]time.Duration, workers)
	base := s.clock
	var makespan time.Duration
	for i := range plan.steps {
		st := &plan.steps[i]
		if st.kind != graph.KindOp {
			continue
		}
		dur := plan.durs[i]
		var rdy, cpIn time.Duration
		for _, p := range plan.preds[i] {
			if f := finish[p]; f > rdy {
				rdy = f
			}
		}
		// Critical path over semantic constraints only, so the
		// achievable bound does not vary with this plan's (width-
		// dependent) buffer assignment.
		for _, p := range plan.predsCP[i] {
			if c := cp[p]; c > cpIn {
				cpIn = c
			}
		}
		lane := 0
		for l := 1; l < len(lanes); l++ {
			if lanes[l] < lanes[lane] {
				lane = l
			}
		}
		start := rdy
		if lanes[lane] > start {
			start = lanes[lane]
		}
		fin := start + dur
		lanes[lane] = fin
		finish[i] = fin
		cp[i] = cpIn + dur
		if fin > makespan {
			makespan = fin
		}
		if s.traceOn {
			s.trace = append(s.trace, Event{
				Node: st.node, Op: st.node.OpName(), Class: st.node.Op().Class(),
				Start: base + start, Dur: dur, Step: s.step,
				Worker: lane, Wall: plan.walls[i], WallStart: plan.wallT0[i], CP: cp[i],
			})
		}
	}
	s.clock = base + makespan
}

// helperContexts returns n execution contexts for drain helpers (the
// session goroutine itself uses s.ctx), creating them on first use
// and syncing the run-scoped fields. Each helper owns a distinct
// tensor.Pool — built once at the session's configured width, which
// is immutable thereafter (tensor.Pool freezes it) — so kernel
// scratch buffers and timing accumulators stay goroutine-confined;
// the RNG pointer is shared deliberately — the plan's serial Impure
// lane guarantees at most one RNG consumer runs at a time, in
// schedule order, so WithSeed replay matches sequential execution.
func (s *Session) helperContexts(n int) []*graph.ExecContext {
	for len(s.wctx) < n {
		s.wctx = append(s.wctx, &graph.ExecContext{Pool: s.newKernelPool()})
	}
	out := s.wctx[:n]
	for _, c := range out {
		c.RNG = s.ctx.RNG
		c.Training = s.ctx.Training
		c.Step = s.ctx.Step
	}
	return out
}

// newKernelPool builds a kernel pool matching the session's intra-op
// configuration: a real parallel pool over the session's lease when
// WithIntraOpWorkers is set, otherwise a serial pool modeling the
// session's WithWorkers width.
func (s *Session) newKernelPool() *tensor.Pool {
	if s.intraOp > 1 {
		return tensor.NewParallelPool(s.intraOp, s.lease)
	}
	return tensor.NewPool(s.ctx.Pool.Workers())
}
